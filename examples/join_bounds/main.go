// Join bounds: triangle counting and chain joins over predicate-constrained
// edge tables (Section 5 / Figure 12).
//
// The example generates a random directed edge table, derives a
// predicate-constraint set for it, and bounds the triangle-counting query
// |R(a,b) ⋈ S(b,c) ⋈ T(c,a)| three ways:
//
//   - naive Cartesian product (Section 5.1),
//   - elastic sensitivity (the Figure 12 baseline),
//   - the fractional-edge-cover bound from Friedgut's inequality
//     (Section 5.2) — tighter by orders of magnitude.
//
// It also shows the weighted (SUM) variant and the naive PC-product set.
//
// Run with: go run ./examples/join_bounds
package main

import (
	"fmt"
	"log"

	"pcbound/internal/core"
	"pcbound/internal/data"
	"pcbound/internal/join"
	"pcbound/internal/pcgen"
	"pcbound/internal/table"
)

func main() {
	const n = 1000
	edges := data.Edges(n, 64, 7)

	// Bound |R| from an actual constraint set over the edge table (exact
	// here, since the partition carries exact counts).
	set, err := pcgen.CorrPC(edges, []string{"src"}, 32)
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(set, nil, core.Options{})
	cnt, err := engine.Count(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge relation: %d rows, PC COUNT bound [%.0f, %.0f]\n\n", edges.Len(), cnt.Lo, cnt.Hi)

	// Triangle counting: same edge table joined three times.
	tri := join.Triangle(cnt.Hi)
	fec, err := join.CountBound(tri)
	if err != nil {
		log.Fatal(err)
	}
	cover, err := join.FractionalEdgeCover(tri, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("triangle count |R(a,b) ⋈ S(b,c) ⋈ T(c,a)|:")
	fmt.Printf("  Cartesian product bound:   %.3g\n", join.CartesianCount(tri))
	fmt.Printf("  elastic sensitivity bound: %.3g\n", join.ElasticCountBound(tri))
	fmt.Printf("  fractional edge cover:     %.3g  (cover %v = N^1.5)\n\n", fec, cover)

	// True triangle count for reference (cubic scan is fine at this size).
	truth := countTriangles(edges)
	fmt.Printf("  actual triangles in this instance: %d (all bounds hold)\n\n", truth)
	if float64(truth) > fec {
		log.Fatal("BUG: FEC bound violated")
	}

	// Acyclic 5-chain: R1(x1,x2) ⋈ … ⋈ R5(x5,x6).
	chain := join.Chain(5, cnt.Hi)
	cfec, err := join.CountBound(chain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("acyclic 5-chain join size:")
	fmt.Printf("  Cartesian / elastic sensitivity: %.3g\n", join.ElasticCountBound(chain))
	fmt.Printf("  fractional edge cover:           %.3g  (N^3 vs N^5)\n\n", cfec)

	// Weighted join: SUM over an attribute of R across the triangle join.
	wtri := join.Triangle(cnt.Hi)
	wtri.Rels[0].Sum = 50000 // hard SUM bound on R from its PC set
	sb, err := join.SumBound(wtri, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted triangle SUM bound: %.3g (Cartesian %.3g)\n\n",
		sb, join.CartesianSum(wtri, 0))

	// The Section 5.1 naive method as an actual constraint set: the direct
	// product of two PC sets bounds any join of the two relations.
	other := data.Edges(200, 64, 8)
	setB, err := pcgen.CorrPC(other, []string{"src"}, 16)
	if err != nil {
		log.Fatal(err)
	}
	prod, _, err := join.Product(set, setB, "R", "S")
	if err != nil {
		log.Fatal(err)
	}
	pe := core.NewEngine(prod, nil, core.Options{})
	pc, err := pe.Count(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive PC-product set: %d product constraints, join COUNT bound [%.0f, %.0f]\n",
		prod.Len(), pc.Lo, pc.Hi)
}

func countTriangles(edges *table.T) int {
	type e struct{ a, b int }
	es := make([]e, edges.Len())
	for i := range es {
		r := edges.Row(i)
		es[i] = e{int(r[0]), int(r[1])}
	}
	count := 0
	for _, e1 := range es {
		for _, e2 := range es {
			if e2.a != e1.b {
				continue
			}
			for _, e3 := range es {
				if e3.a == e2.b && e3.b == e1.a {
					count++
				}
			}
		}
	}
	return count
}
