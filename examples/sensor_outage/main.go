// Sensor outage contingency analysis — the paper's motivating scenario
// (Section 1): a lab's sensor feed is stored in partitions, one of which
// failed to load. The analyst wants to know how many readings exceeded a
// temperature-like threshold, and whether losing the partition could change
// her conclusion.
//
// The example:
//  1. generates the Intel-Wireless twin and drops one "partition" (a device
//     range) as the missing rows,
//  2. derives predicate-constraints for the missing partition from last
//     week's (historical) data and validates them,
//  3. bounds COUNT(*) WHERE light >= threshold over the missing rows,
//  4. combines the bound with the present rows into a decision-ready range,
//     and contrasts it with simple extrapolation.
//
// Run with: go run ./examples/sensor_outage
package main

import (
	"fmt"
	"log"

	"pcbound/internal/baselines"
	"pcbound/internal/core"
	"pcbound/internal/data"
	"pcbound/internal/pcgen"
	"pcbound/internal/predicate"
	"pcbound/internal/sat"
	"pcbound/internal/table"
)

func main() {
	const threshold = 900.0

	// This week's readings; devices 10-18's partition failed to load.
	week := data.Intel(40000, 2024)
	schema := week.Schema()
	lostPartition := predicate.NewBuilder(schema).Range("device", 10, 18).Build()
	present := week.Filter(predicate.NewBuilder(schema).Lt("device", 10).Build())
	for i := 0; i < week.Len(); i++ {
		r := week.Row(i)
		if r[schema.MustIndex("device")] > 18 {
			present.MustAppend(r)
		}
	}
	missing := week.Filter(lostPartition)

	// Last week's data is intact; the analyst derives constraints for the
	// lost partition from it. Frequencies are padded 25% to allow for load
	// growth — the padding is an explicit, testable assumption.
	lastWeek := data.Intel(40000, 2023)
	// Rebind last week's rows to this week's schema object: constraint sets
	// are tied to one schema instance.
	historical := table.FromRows(schema, lastWeek.Filter(lostPartition).Rows())
	derived, err := pcgen.CorrPC(historical, []string{"device", "light"}, 128)
	if err != nil {
		log.Fatal(err)
	}
	set := core.NewSet(schema)
	for _, pc := range derived.PCs() {
		pc.KLo = 0
		pc.KHi = pc.KHi + pc.KHi/4 + 3
		// Light levels may drift: widen the hull by 10%.
		li := schema.MustIndex("light")
		w := pc.Values[li].Width()
		pc.Values[li].Lo = maxf(0, pc.Values[li].Lo-0.1*w)
		pc.Values[li].Hi = pc.Values[li].Hi + 0.1*w
		set.MustAdd(pc)
	}

	// The constraints are testable: verify they hold on last week's data.
	if errs := set.Validate(historical.Rows()); len(errs) > 0 {
		log.Fatalf("derived constraints do not hold on history: %v", errs[0])
	}
	solver := sat.New(schema)
	fmt.Printf("constraints: %d, closed over the domain: %v\n", set.Len(), set.Closed(solver))

	// Bound the missing partition's contribution to the analysis query:
	// COUNT(*) WHERE light >= threshold (readings over the threshold).
	hot := predicate.NewBuilder(schema).Ge("light", threshold).Build()
	engine := core.NewEngine(set, solver, core.Options{})
	bound, err := engine.Count(hot.And(lostPartition))
	if err != nil {
		log.Fatal(err)
	}

	presentHot := present.Count(hot)
	trueMissingHot := missing.Count(hot)
	fmt.Printf("\npresent partitions: %.0f readings over %.0f lux\n", presentHot, threshold)
	fmt.Printf("lost partition contribution is in [%.0f, %.0f] (truth: %.0f)\n",
		bound.Lo, bound.Hi, trueMissingHot)
	fmt.Printf("TOTAL is guaranteed within [%.0f, %.0f]; actual total: %.0f\n",
		presentHot+bound.Lo, presentHot+bound.Hi, presentHot+trueMissingHot)

	if !bound.Contains(trueMissingHot) {
		log.Fatal("BUG: hard bound failed")
	}

	// Contrast with simple extrapolation: one number, no uncertainty, and
	// biased whenever the lost partition differs from the rest.
	extrapolated := presentHot / float64(present.Len()) * float64(week.Len())
	fmt.Printf("\nsimple extrapolation would report %.0f (error %.1f%%, and no range)\n",
		extrapolated,
		100*baselines.RelativeError(extrapolated, presentHot+trueMissingHot))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
