// Sales audit with conflicting, overlapping constraints.
//
// A retailer's November sales feed lost the Nov 10-13 window for the New
// York and Chicago branches (the paper's Section 2.1 scenario). Different
// teams contribute constraints about the lost rows — a per-branch cap from
// operations, a global cap from finance, and a price ceiling from the
// catalog. The constraints overlap and partially conflict; the framework
// reconciles them by always enforcing the most restrictive combination
// (Section 3.1's c1/c2 interaction), and GROUP BY is answered as a union of
// per-group queries (Section 2).
//
// Run with: go run ./examples/sales_audit
package main

import (
	"fmt"
	"log"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

func main() {
	branches := domain.NewCategories([]string{"Chicago", "New York", "Trenton"})
	schema := domain.NewSchema(
		domain.Attr{Name: "day", Kind: domain.Integral, Domain: domain.NewInterval(1, 30)},
		domain.Attr{Name: "branch", Kind: domain.Integral, Domain: branches.Domain()},
		domain.Attr{Name: "price", Kind: domain.Continuous, Domain: domain.NewInterval(0, 5000)},
	)
	chicago := float64(branches.Code("Chicago"))
	newYork := float64(branches.Code("New York"))

	outage := predicate.NewBuilder(schema).Range("day", 10, 13).Build()

	set := core.NewSet(schema)
	set.MustAdd(
		// Operations: each affected branch does 20-300 sales/day over the
		// 4-day outage (80-1200 rows per branch).
		core.MustPC(
			predicate.NewBuilder(schema).Range("day", 10, 13).Eq("branch", chicago).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 5000)},
			80, 1200),
		core.MustPC(
			predicate.NewBuilder(schema).Range("day", 10, 13).Eq("branch", newYork).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 5000)},
			80, 1200),
		// Catalog: nothing sells above 149.99 in Chicago.
		core.MustPC(
			predicate.NewBuilder(schema).Eq("branch", chicago).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 149.99)},
			0, 100000),
		// Finance: at most 1500 transactions were lost in total, none above
		// 999.99. Overlaps BOTH per-branch constraints.
		core.MustPC(
			outage,
			map[string]domain.Interval{"price": domain.NewInterval(0, 999.99)},
			160, 1500),
	)

	engine := core.NewEngine(set, nil, core.Options{})

	total, err := engine.Sum("price", outage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lost revenue, all branches:")
	fmt.Printf("  SUM(price) in [%.2f, %.2f]  (%d cells", total.Lo, total.Hi, total.Cells)
	if total.Reconciled {
		fmt.Print(", constraints reconciled")
	}
	fmt.Println(")")
	// The global 999.99 ceiling beats the per-branch 5000 one, and the
	// global 1500-row cap beats 2×1200: the most restrictive constraints
	// win inside every cell.

	fmt.Println("\nGROUP BY branch (union of per-group queries):")
	for _, name := range []string{"Chicago", "New York"} {
		group := predicate.NewBuilder(schema).
			Range("day", 10, 13).Eq("branch", float64(branches.Code(name))).Build()
		r, err := engine.Sum("price", group)
		if err != nil {
			log.Fatal(err)
		}
		cnt, err := engine.Count(group)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s SUM in [%10.2f, %12.2f]   COUNT in [%4.0f, %5.0f]\n",
			name, r.Lo, r.Hi, cnt.Lo, cnt.Hi)
	}
	// Chicago's upper bound uses the 149.99 catalog ceiling; New York's
	// uses finance's 999.99 — each cell gets its tightest applicable bound.

	// What-if: the catalog team was wrong and Chicago stocked a 4999.99
	// item. Contingency analysis is just editing the constraint store: swap
	// the catalog constraint in place and rebind. The original engine stays
	// pinned to its snapshot, so both worlds can be compared side by side.
	catalogID := set.IDs()[2]
	if err := set.Replace(catalogID, core.MustPC(
		predicate.NewBuilder(schema).Eq("branch", chicago).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(0, 4999.99)},
		0, 100000)); err != nil {
		log.Fatal(err)
	}
	engine2 := engine.Rebind()
	total2, err := engine2.Sum("price", outage)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := engine.Sum("price", outage) // pinned pre-edit snapshot
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhat-if (Chicago ceiling 4999.99): SUM upper bound %.2f -> %.2f\n",
		baseline.Hi, total2.Hi)
}
