// Streaming audit of an evolving outage.
//
// Contingency analysis is rarely one-shot: as an incident unfolds, analysts
// add constraints when reports arrive, tighten them when better numbers come
// in, and retract the ones that turn out to be wrong. This example drives
// that workflow through the versioned ConstraintStore:
//
//   - constraints arrive over three "report waves" (Add / Replace / Remove),
//   - after every wave the engine is rebound to the store's new snapshot and
//     the result ranges narrow,
//   - the decomposition cache is NOT flushed by mutations: regions untouched
//     by a wave keep their cached decomposition (scoped invalidation), which
//     the cache counters make visible,
//   - an auditor engine stays pinned to the first snapshot and keeps
//     reproducing the initial numbers bit-for-bit, no matter what the
//     analysts do to the store concurrently.
//
// Run with: go run ./examples/streaming_audit
package main

import (
	"fmt"
	"log"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

func main() {
	// A payment gateway lost telemetry for minutes 0-59 in two regions;
	// region 2 (EU) stayed healthy, so its feed is complete and every query
	// over it is unaffected by the outage constraints' churn.
	schema := domain.NewSchema(
		domain.Attr{Name: "minute", Kind: domain.Integral, Domain: domain.NewInterval(0, 59)},
		domain.Attr{Name: "region", Kind: domain.Integral, Domain: domain.NewInterval(0, 2)},
		domain.Attr{Name: "amount", Kind: domain.Continuous, Domain: domain.NewInterval(0, 500)},
	)
	store := core.NewStore(schema)

	// Wave 0 — SRE's first coarse estimate: the whole outage window lost at
	// most 30 tx/minute overall, amounts unknown.
	coarse := core.MustPC(
		predicate.NewBuilder(schema).Range("region", 0, 1).Build(),
		map[string]domain.Interval{"amount": domain.NewInterval(0, 500)},
		0, 1800)
	ids, err := store.AddPCs(coarse)
	if err != nil {
		log.Fatal(err)
	}
	coarseID := ids[0]

	outage := predicate.NewBuilder(schema).Range("region", 0, 1).Build()
	euOnly := predicate.NewBuilder(schema).Eq("region", 2).Build()

	engine := core.NewEngine(store, nil, core.Options{})
	auditor := engine // pinned to the wave-0 snapshot for the whole session

	report := func(tag string) {
		sum, err := engine.Sum("amount", outage)
		if err != nil {
			log.Fatal(err)
		}
		cnt, err := engine.Count(outage)
		if err != nil {
			log.Fatal(err)
		}
		eu, err := engine.Count(euOnly)
		if err != nil {
			log.Fatal(err)
		}
		st := engine.CacheStats()
		fmt.Printf("%-28s epoch %d: lost SUM(amount) in [%.0f, %.0f], COUNT in [%.0f, %.0f]; EU COUNT %v\n",
			tag, store.Epoch(), sum.Lo, sum.Hi, cnt.Lo, cnt.Hi, eu)
		fmt.Printf("%-28s cache: %d hits / %d misses, %d retained across epochs, %d invalidated\n",
			"", st.Hits, st.Misses, st.Retained, st.Invalidated)
	}
	report("wave 0 (coarse estimate)")
	wave0Sum, err := auditor.Sum("amount", outage)
	if err != nil {
		log.Fatal(err)
	}

	// Wave 1 — per-region reports land: US (region 0) processed 400-900 lost
	// transactions none above 120; APAC (region 1) 100-300, none above 80.
	_, err = store.AddPCs(
		core.MustPC(
			predicate.NewBuilder(schema).Eq("region", 0).Build(),
			map[string]domain.Interval{"amount": domain.NewInterval(0, 120)},
			400, 900),
		core.MustPC(
			predicate.NewBuilder(schema).Eq("region", 1).Build(),
			map[string]domain.Interval{"amount": domain.NewInterval(0, 80)},
			100, 300),
	)
	if err != nil {
		log.Fatal(err)
	}
	engine = engine.Rebind()
	report("wave 1 (regional reports)")

	// Wave 2 — finance revises the coarse cap downward (tighten in place),
	// and the APAC report is found to double-count a replay window: retract
	// it and file the corrected numbers.
	if err := store.Replace(coarseID, core.MustPC(
		predicate.NewBuilder(schema).Range("region", 0, 1).Build(),
		map[string]domain.Interval{"amount": domain.NewInterval(0, 500)},
		500, 1100)); err != nil {
		log.Fatal(err)
	}
	snap := store.Snapshot()
	apacID := snap.IDs()[2] // wave-1 APAC constraint
	if err := store.Remove(apacID); err != nil {
		log.Fatal(err)
	}
	if _, err := store.AddPCs(core.MustPC(
		predicate.NewBuilder(schema).Eq("region", 1).Build(),
		map[string]domain.Interval{"amount": domain.NewInterval(0, 80)},
		60, 180)); err != nil {
		log.Fatal(err)
	}
	engine = engine.Rebind()
	report("wave 2 (tighten + retract)")

	// The EU query's decomposition was retained across every wave: no
	// mutated predicate box overlaps region 2, so the cache never recomputed
	// it (see the "retained" counter climbing while EU COUNT stays cached).

	// The pinned auditor still reproduces the wave-0 numbers bit-for-bit.
	again, err := auditor.Sum("amount", outage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nauditor pinned at epoch %d: SUM(amount) in [%.0f, %.0f] (unchanged: %v)\n",
		auditor.Snapshot().Epoch(), again.Lo, again.Hi, again == wave0Sum)
}
