// Auditing a live pcserved instance over HTTP.
//
// The serving layer gives every response an epoch, and lets any later read
// pin itself to a retained epoch — so an auditor talking plain HTTP gets the
// same guarantee a linked-in engine gets from a pinned snapshot: their
// numbers cannot drift underneath them while analysts mutate the store.
//
// This example starts pcserved's handler in-process on a loopback port
// (so it is runnable with no setup) and then speaks to it only through the
// HTTP API, exactly as an external client would:
//
//   - bound SUM/COUNT over an incident window, recording the epoch,
//   - analysts add and then tighten a constraint (each mutation returns the
//     new epoch and the stable constraint id),
//   - re-bounding at the latest epoch shows the range move,
//   - the auditor re-runs their query pinned to the original epoch and gets
//     the original range back, bit for bit,
//   - /metrics shows the per-endpoint latency and cache counters the whole
//     session produced.
//
// Run with: go run ./examples/http_audit
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/server"
)

func main() {
	// --- Server side: a store of delivery-outage constraints, served over
	// loopback. In production this block is just `pcserved -spec …`.
	schema := domain.NewSchema(
		domain.Attr{Name: "hour", Kind: domain.Integral, Domain: domain.NewInterval(0, 23)},
		domain.Attr{Name: "zone", Kind: domain.Integral, Domain: domain.NewInterval(0, 3)},
		domain.Attr{Name: "weight", Kind: domain.Continuous, Domain: domain.NewInterval(0, 40)},
	)
	store := core.NewStore(schema)
	store.MustAdd(
		core.MustPC(predicate.True(schema).Named("baseline"),
			map[string]domain.Interval{"weight": domain.NewInterval(0, 40)}, 0, 80),
		core.MustPC(predicate.NewBuilder(schema).Range("hour", 8, 17).Build().Named("business-hours"),
			map[string]domain.Interval{"weight": domain.NewInterval(0.5, 25)}, 5, 40),
	)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(store, nil, server.Config{}).Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("pcserved serving %d constraints at %s\n\n", store.Len(), base)

	// --- Client side: everything below uses only the HTTP API.
	query := server.BoundRequest{Query: core.QueryJSON{
		Agg: "SUM", Attr: "weight", Where: map[string][2]float64{"hour": {8, 17}},
	}}

	var first server.BoundResponse
	mustCall(base+"/v1/bound", query, &first)
	fmt.Printf("auditor's first read  (epoch %d): SUM(weight) in [%g, %g]\n",
		first.Epoch, float64(first.Range.Lo), float64(first.Range.Hi))

	// An analyst learns zone 2's afternoon manifest is missing: add it.
	var added server.AddResponse
	mustCall(base+"/v1/store/add", server.AddRequest{Constraints: []core.PCJSON{{
		Name:      "zone2-manifest",
		Predicate: map[string][2]float64{"hour": {12, 17}, "zone": {2, 2}},
		Values:    map[string][2]float64{"weight": {2, 30}},
		KLo:       4, KHi: 12,
	}}}, &added)
	fmt.Printf("analyst adds constraint id %d   -> epoch %d\n", added.IDs[0], added.Epoch)

	// Better numbers arrive: tighten the same constraint in place.
	var tightened server.MutateResponse
	mustCall(base+"/v1/store/replace", server.ReplaceRequest{ID: added.IDs[0], Constraint: core.PCJSON{
		Name:      "zone2-manifest",
		Predicate: map[string][2]float64{"hour": {12, 17}, "zone": {2, 2}},
		Values:    map[string][2]float64{"weight": {2, 30}},
		KLo:       6, KHi: 9,
	}}, &tightened)
	fmt.Printf("analyst tightens id %d          -> epoch %d\n", added.IDs[0], tightened.Epoch)

	var latest server.BoundResponse
	mustCall(base+"/v1/bound", query, &latest)
	fmt.Printf("analyst's read        (epoch %d): SUM(weight) in [%g, %g]\n",
		latest.Epoch, float64(latest.Range.Lo), float64(latest.Range.Hi))

	// The auditor re-checks their original numbers, pinned to the epoch of
	// their first read: bit-identical, no matter what happened since.
	pinned := query
	pinned.Epoch = &first.Epoch
	var replay server.BoundResponse
	mustCall(base+"/v1/bound", pinned, &replay)
	fmt.Printf("auditor's replay      (epoch %d): SUM(weight) in [%g, %g]\n",
		replay.Epoch, float64(replay.Range.Lo), float64(replay.Range.Hi))
	if replay.Range != first.Range {
		log.Fatalf("pinned replay diverged: %+v vs %+v", replay.Range, first.Range)
	}
	fmt.Printf("pinned replay is bit-identical to the first read\n\n")

	// What the session cost, as operators see it.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if strings.HasPrefix(line, "pcserved_store_") ||
			strings.HasPrefix(line, "pcserved_cache_") ||
			strings.HasPrefix(line, "pcserved_requests_total") {
			fmt.Println(line)
		}
	}
}

// mustCall POSTs a JSON request and decodes the 200 response into out.
func mustCall(url string, req, out any) {
	raw, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: status %d (%s)", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		log.Fatalf("%s: %v (%s)", url, err, body)
	}
}
