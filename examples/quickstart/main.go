// Quickstart: the paper's running example (Sections 2.1 and 4.4) end to end.
//
// A sales table lost the rows for Nov 11-12. We write down two
// predicate-constraints describing what the missing rows could look like and
// ask for the hard range of SELECT SUM(price), first with disjoint
// constraints, then with overlapping ones that must be reconciled through
// cell decomposition + MILP.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

func main() {
	// Sales(utc, branch, price): utc is the day number of November,
	// branch a coded city, price a dollar amount.
	branches := domain.NewCategories([]string{"Chicago", "New York", "Trenton"})
	schema := domain.NewSchema(
		domain.Attr{Name: "utc", Kind: domain.Integral, Domain: domain.NewInterval(1, 30)},
		domain.Attr{Name: "branch", Kind: domain.Integral, Domain: branches.Domain()},
		domain.Attr{Name: "price", Kind: domain.Continuous, Domain: domain.NewInterval(0, 10000)},
	)

	// --- Disjoint constraints (Section 4.4, first example) ---
	// t1: Nov-11 => 0.99 <= price <= 129.99, 50-100 rows
	// t2: Nov-12 => 0.99 <= price <= 149.99, 50-100 rows
	set := core.NewSet(schema)
	set.MustAdd(
		core.MustPC(
			predicate.NewBuilder(schema).Eq("utc", 11).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0.99, 129.99)},
			50, 100),
		core.MustPC(
			predicate.NewBuilder(schema).Eq("utc", 12).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0.99, 149.99)},
			50, 100),
	)
	engine := core.NewEngine(set, nil, core.Options{})
	sum, err := engine.Sum("price", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("disjoint constraints (expect [99, 27998]):")
	fmt.Printf("  SUM(price) over the missing days is in %v\n\n", sum)

	// --- Overlapping constraints (Section 4.4, second example) ---
	// t1: Nov-11         => 0.99 <= price <= 129.99, 50-100 rows
	// t2: Nov-11..Nov-12 => 0.99 <= price <= 149.99, 75-125 rows
	overlapping := core.NewSet(schema)
	overlapping.MustAdd(
		core.MustPC(
			predicate.NewBuilder(schema).Eq("utc", 11).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0.99, 129.99)},
			50, 100),
		core.MustPC(
			predicate.NewBuilder(schema).Range("utc", 11, 12).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0.99, 149.99)},
			75, 125),
	)
	engine2 := core.NewEngine(overlapping, nil, core.Options{})
	sum2, err := engine2.Sum("price", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("overlapping constraints (expect [74.25, 17748.75]):")
	fmt.Printf("  SUM(price) over the missing days is in %v\n", sum2)
	fmt.Printf("  (%d satisfiable cells, %d SAT checks)\n\n", sum2.Cells, sum2.SATChecks)

	// Every other aggregate works the same way.
	for _, q := range []core.Query{
		{Agg: core.Count, Where: nil},
		{Agg: core.Avg, Attr: "price"},
		{Agg: core.Min, Attr: "price"},
		{Agg: core.Max, Attr: "price"},
	} {
		r, err := engine2.Bound(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5v -> %v\n", q.Agg, r)
	}
}
