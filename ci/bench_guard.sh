#!/usr/bin/env bash
# bench_guard.sh BASELINE.json CURRENT.json [TOLERANCE]
#
# Compares a pcbench -json report against the previous run's artifact.
# Benchmarks in the summary-tier suite (names under the `tiered/` prefix)
# FAIL the job when their ns/op regresses beyond the tolerance factor
# (default 2.5x): the summary tier's whole reason to exist is answering in
# microseconds, so an order-of-magnitude regression there is a contract
# break, not jitter. Every other suite (the exact solver paths, whose
# latency is dominated by SAT/MILP work and far noisier on shared runners)
# stays warn-only: a ::warning annotation, never a red X.
#
# On the first run (no baseline yet) it just says so.
set -euo pipefail

baseline="${1:?usage: bench_guard.sh baseline.json current.json [tolerance]}"
current="${2:?usage: bench_guard.sh baseline.json current.json [tolerance]}"
tolerance="${3:-2.5}"

if [ ! -f "$current" ]; then
  echo "bench_guard: current report $current missing" >&2
  exit 1
fi
if [ ! -f "$baseline" ]; then
  echo "bench_guard: no baseline yet ($baseline) — first run, nothing to compare"
  exit 0
fi

base_txt=$(mktemp)
cur_txt=$(mktemp)
trap 'rm -f "$base_txt" "$cur_txt"' EXIT
jq -r '.results[] | "\(.name) \(.ns_per_op)"' "$baseline" | sort > "$base_txt"
jq -r '.results[] | "\(.name) \(.ns_per_op)"' "$current" | sort > "$cur_txt"

warnings=0
failures=0
while read -r name cur_ns; do
  base_ns=$(awk -v n="$name" '$1 == n { print $2 }' "$base_txt")
  if [ -z "$base_ns" ]; then
    echo "bench_guard: $name is new (no baseline entry)"
    continue
  fi
  ratio=$(awk -v c="$cur_ns" -v b="$base_ns" 'BEGIN { if (b > 0) printf "%.2f", c / b; else print "0" }')
  over=$(awk -v r="$ratio" -v t="$tolerance" 'BEGIN { if (r > t) print 1; else print 0 }')
  if [ "$over" = "1" ]; then
    case "$name" in
      tiered/*)
        echo "::error title=bench regression (summary tier)::$name: $cur_ns ns/op vs baseline $base_ns ns/op (${ratio}x, tolerance ${tolerance}x)"
        failures=$((failures + 1))
        ;;
      *)
        echo "::warning title=bench regression::$name: $cur_ns ns/op vs baseline $base_ns ns/op (${ratio}x, tolerance ${tolerance}x)"
        warnings=$((warnings + 1))
        ;;
    esac
  else
    echo "bench_guard: $name ok (${ratio}x of baseline)"
  fi
done < "$cur_txt"

echo "bench_guard: $failures summary-tier failure(s), $warnings warning(s) beyond ${tolerance}x"
if [ "$failures" -gt 0 ]; then
  echo "bench_guard: tiered/ suite regressed beyond ${tolerance}x — failing the job" >&2
  exit 1
fi
