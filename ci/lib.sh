# shellcheck shell=bash
# ci/lib.sh — shared scaffolding for the e2e gauntlets (serve, crash, repl).
# Source it from a script that has already cd'ed to the repo root:
#
#   source ci/lib.sh
#
# It provides binary builds into ./bin, pcserved spawn/await/stop helpers,
# and an EXIT trap that SIGKILLs every server the script spawned — a failing
# assertion can never leak a stray pcserved holding a port for the next run.
# A script that needs extra teardown (temp dirs, scratch files) defines
# cleanup_hook(); it runs before the kill sweep.

BIN=./bin
E2E_PIDS=()

# e2e_require TOOL... — fail fast when a host tool the gauntlet needs is
# missing, with the script's own name in the message.
e2e_require() {
  local tool
  for tool in "$@"; do
    command -v "$tool" >/dev/null || { echo "${0##*/}: $tool is required" >&2; exit 1; }
  done
}

# e2e_build [-race] CMD... — build ./cmd/CMD into $BIN/CMD.
e2e_build() {
  local flags=()
  if [[ "${1:-}" == "-race" ]]; then
    flags+=(-race)
    shift
  fi
  mkdir -p "$BIN"
  local cmd
  for cmd in "$@"; do
    go build "${flags[@]}" -o "$BIN/$cmd" "./cmd/$cmd"
  done
}

# spawn_bin LOG CMD ARGS... — start $BIN/CMD in the background with the race
# detector halting on its first report, appending output to LOG. Sets
# SPAWNED_PID and registers it for the EXIT kill sweep.
spawn_bin() {
  local log="$1" cmd="$2"
  shift 2
  GORACE="halt_on_error=1" "$BIN/$cmd" "$@" >>"$log" 2>&1 &
  SPAWNED_PID=$!
  E2E_PIDS+=("$SPAWNED_PID")
}

# spawn_pcserved LOG ARGS... — spawn_bin specialised to the server.
spawn_pcserved() {
  local log="$1"
  shift
  spawn_bin "$log" pcserved "$@"
}

# wait_healthy BASE PID LOG — poll BASE/healthz until .status == "ok" (15s),
# failing fast with the server log if the process dies first.
wait_healthy() {
  local base="$1" pid="$2" log="$3"
  local _i
  for _i in $(seq 150); do
    if curl -fsS "$base/healthz" 2>/dev/null | jq -e '.status == "ok"' >/dev/null 2>&1; then
      return 0
    fi
    kill -0 "$pid" 2>/dev/null || { echo "server on $base died at boot:" >&2; cat "$log" >&2; exit 1; }
    sleep 0.1
  done
  echo "server on $base never became healthy:" >&2
  cat "$log" >&2
  exit 1
}

# stop_server PID — graceful SIGTERM, then wait; propagates the exit status
# so callers can assert a clean drain.
stop_server() {
  local pid="$1"
  kill -TERM "$pid" 2>/dev/null || true
  wait "$pid"
}

# kill_server PID — SIGKILL and reap, for crash phases and teardown.
kill_server() {
  local pid="$1"
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
}

# post BASE PATH JSON — POST a JSON body, failing the script on non-2xx.
post() {
  curl -fsS -X POST -H 'Content-Type: application/json' -d "$3" "$1$2"
}

e2e_cleanup() {
  if declare -F cleanup_hook >/dev/null; then
    cleanup_hook
  fi
  local pid
  for pid in ${E2E_PIDS[@]+"${E2E_PIDS[@]}"}; do
    if kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
}
trap e2e_cleanup EXIT
