#!/usr/bin/env bash
# serve_e2e.sh — the end-to-end serving gauntlet CI runs (and developers can
# run locally: `bash ci/serve_e2e.sh`). It builds pcserved with the race
# detector, boots it on the sample spec, asserts the snapshot/epoch serving
# semantics with curl, hammers it with pcload (closed-loop bound/batch/mutate
# mix plus a bit-identity verification phase against a local engine), and
# finishes with a graceful-shutdown drain of an in-flight batch.
#
# Any non-2xx response (other than pcload-accounted 429 backpressure), any
# mismatched range, or a dropped in-flight request fails the script.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

ADDR="127.0.0.1:${PCSERVED_PORT:-18091}"
BASE="http://$ADDR"
SPEC=cmd/pcserved/testdata/sample_spec.json
BIN=./bin
LOG=pcserved-e2e.log

command -v jq >/dev/null || { echo "serve_e2e: jq is required" >&2; exit 1; }

echo "== build (pcserved under -race, pcload plain)"
mkdir -p "$BIN"
go build -race -o "$BIN/pcserved" ./cmd/pcserved
go build -o "$BIN/pcload" ./cmd/pcload
go build -o "$BIN/pcrange" ./cmd/pcrange

cleanup() {
  if [[ -n "${SERVER_PID:-}" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

echo "== boot pcserved on $ADDR"
GORACE="halt_on_error=1" "$BIN/pcserved" -addr "$ADDR" -spec "$SPEC" >"$LOG" 2>&1 &
SERVER_PID=$!
for _ in $(seq 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "pcserved died at boot:"; cat "$LOG"; exit 1; }
  sleep 0.1
done
curl -fsS "$BASE/healthz" | jq -e '.status == "ok"' >/dev/null

post() { curl -fsS -X POST -H 'Content-Type: application/json' -d "$2" "$BASE$1"; }

echo "== serving semantics: bound -> mutate -> rebound sees new epoch, pinned snapshot does not"
Q='{"query":{"agg":"SUM","attr":"price","where":{"utc":[6,14]}}}'
R0=$(post /v1/bound "$Q")
E0=$(jq -r .epoch <<<"$R0")

# Cross-check the served range against a direct engine bound on the same
# spec via pcrange. pcrange prints %g (6 significant digits), so this check
# uses a 1e-6 relative tolerance; the *bitwise* identity check against a
# direct Engine.Bound runs inside `pcload -verify` below, over the full
# wire encoding.
SERVED_RANGE=$(jq -c '[.range.lo, .range.hi]' <<<"$R0")
DIRECT_RANGE=$("$BIN/pcrange" -spec "$SPEC" -agg SUM -attr price -where "utc:6:14" | sed -n 's/^SUM range: \(\[.*\]\)$/\1/p')
[[ -n "$DIRECT_RANGE" ]] || { echo "could not parse pcrange output" >&2; exit 1; }
jq -ne --argjson a "$SERVED_RANGE" --argjson b "$DIRECT_RANGE" '
  def abs: if . < 0 then -. else . end;
  [0,1] | all(. as $i |
    (($a[$i] - $b[$i]) | abs) <= 1e-6 * ([($a[$i]|abs), ($b[$i]|abs), 1] | max))' >/dev/null \
  || { echo "served range $SERVED_RANGE != direct engine range $DIRECT_RANGE" >&2; exit 1; }
echo "   bound at epoch $E0: $SERVED_RANGE (matches direct engine)"

ADD=$(post /v1/store/add '{"constraints":[{"name":"surge","predicate":{"utc":[7,10]},"values":{"price":[100,400]},"klo":2,"khi":6}]}')
E1=$(jq -r .epoch <<<"$ADD")
ID=$(jq -r '.ids[0]' <<<"$ADD")
[[ "$E1" -gt "$E0" ]] || { echo "mutation did not advance the epoch ($E0 -> $E1)" >&2; exit 1; }

R1=$(post /v1/bound "$Q")
[[ "$(jq -r .epoch <<<"$R1")" == "$E1" ]] || { echo "rebound did not see epoch $E1: $R1" >&2; exit 1; }
jq -e --argjson r0 "$(jq .range <<<"$R0")" '.range != $r0' <<<"$R1" >/dev/null \
  || { echo "rebound range identical despite new constraint: $R1" >&2; exit 1; }

RP=$(post /v1/bound "$(jq -c --argjson e "$E0" '. + {epoch: $e}' <<<"$Q")")
[[ "$(jq -r .epoch <<<"$RP")" == "$E0" ]] || { echo "pinned read not at epoch $E0: $RP" >&2; exit 1; }
jq -e --argjson r0 "$(jq .range <<<"$R0")" '.range == $r0' <<<"$RP" >/dev/null \
  || { echo "pinned range differs from original: $RP vs $R0" >&2; exit 1; }
echo "   mutate -> epoch $E1, rebound moved, pinned read at $E0 bit-identical"

post /v1/store/remove "{\"id\":$ID}" >/dev/null

echo "== pcload gauntlet (verify phase + concurrent bound/batch/mutate)"
"$BIN/pcload" -addr "$BASE" -quick

echo "== error surface"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"query":{"agg":"MEDIAN"}}' "$BASE/v1/bound")
[[ "$CODE" == 400 ]] || { echo "bad aggregate returned $CODE, want 400" >&2; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"query":{"agg":"COUNT"},"epoch":999999}' "$BASE/v1/bound")
[[ "$CODE" == 410 ]] || { echo "unretained epoch returned $CODE, want 410" >&2; exit 1; }

echo "== metrics surface"
METRICS=$(curl -fsS "$BASE/metrics")
for metric in pcserved_store_epoch pcserved_cache_hits_total 'pcserved_requests_total{endpoint="bound",code="200"}' 'pcserved_request_seconds{endpoint="batch",quantile="0.99"}'; do
  grep -qF "$metric" <<<"$METRICS" || { echo "metrics missing $metric" >&2; exit 1; }
done

echo "== graceful shutdown drains an in-flight batch"
BATCH=$(jq -nc '{queries: [range(200) | {agg: "SUM", attr: "price", where: {utc: [(. % 12), ((. % 12) + 6)]}}], parallelism: 1}')
DRAIN_OUT=$(mktemp)
curl -fsS -X POST -d "$BATCH" "$BASE/v1/batch" >"$DRAIN_OUT" &
CURL_PID=$!
sleep 0.3
kill -TERM "$SERVER_PID"
wait "$CURL_PID" || { echo "in-flight batch was dropped during shutdown" >&2; cat "$LOG"; exit 1; }
jq -e '.ranges | length == 200' "$DRAIN_OUT" >/dev/null \
  || { echo "drained batch response incomplete: $(head -c 200 "$DRAIN_OUT")" >&2; exit 1; }
wait "$SERVER_PID" || { echo "pcserved exited non-zero after drain:" >&2; cat "$LOG"; exit 1; }
SERVER_PID=""
grep -q "drained cleanly" "$LOG" || { echo "no clean-drain log line:" >&2; cat "$LOG"; exit 1; }
rm -f "$DRAIN_OUT"

echo "serve-e2e: all checks passed"
