#!/usr/bin/env bash
# serve_e2e.sh — the end-to-end serving gauntlet CI runs (and developers can
# run locally: `bash ci/serve_e2e.sh`). It builds pcserved with the race
# detector, boots it on the sample spec, asserts the snapshot/epoch serving
# semantics with curl, hammers it with pcload (closed-loop bound/batch/mutate
# mix plus a verification phase that checks bit-identity against a local
# engine and summary-tier responses against the exact range), asserts
# degrade-before-shed on a saturated single-slot instance (tier-opted reads
# are answered from the summary tier with 200 + precision "summary"; exact
# reads still shed with 429), and finishes with a graceful-shutdown drain of
# an in-flight batch.
#
# Any non-2xx response (other than pcload-accounted 429 backpressure), any
# mismatched range, or a dropped in-flight request fails the script.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
# shellcheck source=ci/lib.sh
source ci/lib.sh

ADDR="127.0.0.1:${PCSERVED_PORT:-18091}"
BASE="http://$ADDR"
SPEC=cmd/pcserved/testdata/sample_spec.json
LOG=pcserved-e2e.log

e2e_require jq curl

echo "== build (pcserved under -race, pcload plain)"
e2e_build -race pcserved
e2e_build pcload pcrange

echo "== boot pcserved on $ADDR"
spawn_pcserved "$LOG" -addr "$ADDR" -spec "$SPEC"
SERVER_PID=$SPAWNED_PID
wait_healthy "$BASE" "$SERVER_PID" "$LOG"

echo "== serving semantics: bound -> mutate -> rebound sees new epoch, pinned snapshot does not"
Q='{"query":{"agg":"SUM","attr":"price","where":{"utc":[6,14]}}}'
R0=$(post "$BASE" /v1/bound "$Q")
E0=$(jq -r .epoch <<<"$R0")

# Cross-check the served range against a direct engine bound on the same
# spec via pcrange. pcrange prints %g (6 significant digits), so this check
# uses a 1e-6 relative tolerance; the *bitwise* identity check against a
# direct Engine.Bound runs inside `pcload -verify` below, over the full
# wire encoding.
SERVED_RANGE=$(jq -c '[.range.lo, .range.hi]' <<<"$R0")
DIRECT_RANGE=$("$BIN/pcrange" -spec "$SPEC" -agg SUM -attr price -where "utc:6:14" | sed -n 's/^SUM range: \(\[.*\]\)$/\1/p')
[[ -n "$DIRECT_RANGE" ]] || { echo "could not parse pcrange output" >&2; exit 1; }
jq -ne --argjson a "$SERVED_RANGE" --argjson b "$DIRECT_RANGE" '
  def abs: if . < 0 then -. else . end;
  [0,1] | all(. as $i |
    (($a[$i] - $b[$i]) | abs) <= 1e-6 * ([($a[$i]|abs), ($b[$i]|abs), 1] | max))' >/dev/null \
  || { echo "served range $SERVED_RANGE != direct engine range $DIRECT_RANGE" >&2; exit 1; }
echo "   bound at epoch $E0: $SERVED_RANGE (matches direct engine)"

ADD=$(post "$BASE" /v1/store/add '{"constraints":[{"name":"surge","predicate":{"utc":[7,10]},"values":{"price":[100,400]},"klo":2,"khi":6}]}')
E1=$(jq -r .epoch <<<"$ADD")
ID=$(jq -r '.ids[0]' <<<"$ADD")
[[ "$E1" -gt "$E0" ]] || { echo "mutation did not advance the epoch ($E0 -> $E1)" >&2; exit 1; }

R1=$(post "$BASE" /v1/bound "$Q")
[[ "$(jq -r .epoch <<<"$R1")" == "$E1" ]] || { echo "rebound did not see epoch $E1: $R1" >&2; exit 1; }
jq -e --argjson r0 "$(jq .range <<<"$R0")" '.range != $r0' <<<"$R1" >/dev/null \
  || { echo "rebound range identical despite new constraint: $R1" >&2; exit 1; }

RP=$(post "$BASE" /v1/bound "$(jq -c --argjson e "$E0" '. + {epoch: $e}' <<<"$Q")")
[[ "$(jq -r .epoch <<<"$RP")" == "$E0" ]] || { echo "pinned read not at epoch $E0: $RP" >&2; exit 1; }
jq -e --argjson r0 "$(jq .range <<<"$R0")" '.range == $r0' <<<"$RP" >/dev/null \
  || { echo "pinned range differs from original: $RP vs $R0" >&2; exit 1; }
echo "   mutate -> epoch $E1, rebound moved, pinned read at $E0 bit-identical"

post "$BASE" /v1/store/remove "{\"id\":$ID}" >/dev/null

echo "== pcload gauntlet (verify phase + concurrent bound/batch/mutate)"
"$BIN/pcload" -addr "$BASE" -quick

echo "== pcload gauntlet (skewed, tier-opted: auto precision under a width budget)"
"$BIN/pcload" -addr "$BASE" -quick -verify 0 -skew 1.2 -precision auto -max-width 250

echo "== error surface"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"query":{"agg":"MEDIAN"}}' "$BASE/v1/bound")
[[ "$CODE" == 400 ]] || { echo "bad aggregate returned $CODE, want 400" >&2; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"query":{"agg":"COUNT"},"epoch":999999}' "$BASE/v1/bound")
[[ "$CODE" == 410 ]] || { echo "unretained epoch returned $CODE, want 410" >&2; exit 1; }

echo "== metrics surface"
METRICS=$(curl -fsS "$BASE/metrics")
for metric in pcserved_store_epoch pcserved_cache_hits_total 'pcserved_requests_total{endpoint="bound",code="200"}' 'pcserved_request_seconds{endpoint="batch",quantile="0.99"}'; do
  grep -qF "$metric" <<<"$METRICS" || { echo "metrics missing $metric" >&2; exit 1; }
done

echo "== degrade-before-shed: saturation answers tier-opted reads from the summary tier"
# A second instance with a single admission slot, occupied by a long batch in
# the background, makes saturation deterministic: while the batch holds the
# slot, a width-budgeted bound must come back 200 + precision "summary" (no
# solver work, sound outer interval) and an exact-only bound must 429.
SAT_ADDR="127.0.0.1:$(( ${PCSERVED_PORT:-18091} + 1 ))"
SAT_BASE="http://$SAT_ADDR"
SAT_LOG=pcserved-e2e-sat.log
spawn_pcserved "$SAT_LOG" -addr "$SAT_ADDR" -spec "$SPEC" -max-inflight 1
SAT_PID=$SPAWNED_PID
wait_healthy "$SAT_BASE" "$SAT_PID" "$SAT_LOG"

# The slot-holding batch races the probes (a warm cache can finish it in
# milliseconds), so the probe pair retries with a fresh batch until one
# attempt observes true saturation. pcserved_tier_degraded_total is the
# ground truth that the summary answer came from the degrade path, not from
# a normally admitted auto-tier request.
# Every query gets its own price window so neither the decomposition cache
# nor the cell-bound cache can collapse the batch to microseconds — the
# slot stays held long enough for both probes.
SAT_BATCH=$(jq -nc '{queries: [range(1500) | {agg: "SUM", attr: "price", where: {price: [(. * 0.1), (. * 0.1 + 53.7)], utc: [(. % 12), ((. % 12) + 6)]}}], parallelism: 1}')
SAT_OK=""
for attempt in $(seq 10); do
  curl -fsS -X POST -d "$SAT_BATCH" "$SAT_BASE/v1/batch" >/dev/null &
  SAT_CURL=$!
  sleep 0.1

  DEGRADED=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"query":{"agg":"SUM","attr":"price","where":{"utc":[6,14]}},"max_width":1e15}' "$SAT_BASE/v1/bound")
  jq -e '.precision == "summary" and (.range.lo <= .range.hi)' <<<"$DEGRADED" >/dev/null \
    || { echo "tier-opted bound on the single-slot server answered: $DEGRADED" >&2; exit 1; }
  CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -d '{"query":{"agg":"SUM","attr":"price","where":{"utc":[6,14]}}}' "$SAT_BASE/v1/bound")

  wait "$SAT_CURL" || { echo "saturation batch failed" >&2; cat "$SAT_LOG"; exit 1; }
  DEG_COUNT=$(curl -fsS "$SAT_BASE/metrics" | awk '$1 == "pcserved_tier_degraded_total" { print $2 }')
  if [[ "$CODE" == 429 && "${DEG_COUNT:-0}" -ge 1 ]]; then
    SAT_OK=1
    break
  fi
  echo "   attempt $attempt: batch drained before the probes (exact probe $CODE, degraded_total ${DEG_COUNT:-0}); retrying"
done
[[ -n "$SAT_OK" ]] || { echo "never observed saturation in 10 attempts" >&2; exit 1; }
echo "   degraded summary answer served under saturation; exact-only sheds 429 (degraded_total=$DEG_COUNT)"
stop_server "$SAT_PID" || { echo "saturation pcserved exited non-zero:" >&2; cat "$SAT_LOG"; exit 1; }
rm -f "$SAT_LOG"

echo "== graceful shutdown drains an in-flight batch"
BATCH=$(jq -nc '{queries: [range(200) | {agg: "SUM", attr: "price", where: {utc: [(. % 12), ((. % 12) + 6)]}}], parallelism: 1}')
DRAIN_OUT=$(mktemp)
curl -fsS -X POST -d "$BATCH" "$BASE/v1/batch" >"$DRAIN_OUT" &
CURL_PID=$!
sleep 0.3
kill -TERM "$SERVER_PID"
wait "$CURL_PID" || { echo "in-flight batch was dropped during shutdown" >&2; cat "$LOG"; exit 1; }
jq -e '.ranges | length == 200' "$DRAIN_OUT" >/dev/null \
  || { echo "drained batch response incomplete: $(head -c 200 "$DRAIN_OUT")" >&2; exit 1; }
wait "$SERVER_PID" || { echo "pcserved exited non-zero after drain:" >&2; cat "$LOG"; exit 1; }
grep -q "drained cleanly" "$LOG" || { echo "no clean-drain log line:" >&2; cat "$LOG"; exit 1; }
rm -f "$DRAIN_OUT"

echo "serve-e2e: all checks passed"
