#!/usr/bin/env bash
# crash_e2e.sh — the crash-recovery gauntlet CI runs (and developers can run
# locally: `bash ci/crash_e2e.sh`). It boots a real pcserved with a data
# directory, SIGKILLs it under mutate-heavy pcload traffic, and proves the
# durability contract three independent ways:
#
#   1. offline: pcwal verify/dump recover the directory read-only, even after
#      garbage is appended to the newest segment (a synthetic torn tail);
#   2. restart: a new pcserved replays the same directory and its /v1/store
#      is byte-identical to the offline dump;
#   3. serving: pcload's verify phase checks bounds from the recovered server
#      are bit-identical to a local engine over the fetched constraint state.
#
# A final SIGTERM phase asserts the graceful path: what the drained server
# last served is exactly what the directory recovers to.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
# shellcheck source=ci/lib.sh
source ci/lib.sh

ADDR="127.0.0.1:${PCSERVED_PORT:-18093}"
BASE="http://$ADDR"
SPEC=cmd/pcserved/testdata/sample_spec.json
LOG=pcserved-crash.log
DATA=$(mktemp -d)
SERVER_PID=""

e2e_require jq curl

cleanup_hook() {
  rm -rf "$DATA"
}

echo "== build (pcserved under -race, pcload and pcwal plain)"
e2e_build -race pcserved
e2e_build pcload pcwal

boot() {
  spawn_pcserved "$LOG" -addr "$ADDR" -spec "$SPEC" \
    -data-dir "$DATA" -checkpoint-every 32 "$@"
  SERVER_PID=$SPAWNED_PID
}

echo "== phase 1: boot on a fresh data dir, verified warm-up load"
boot
wait_healthy "$BASE" "$SERVER_PID" "$LOG"
curl -fsS "$BASE/healthz" | jq -e '.durability.mode == "always"' >/dev/null \
  || { echo "healthz is missing the durability block" >&2; exit 1; }
"$BIN/pcload" -addr "$BASE" -quick -seed 7

echo "== phase 2: SIGKILL under mutate-heavy load"
"$BIN/pcload" -addr "$BASE" -duration 15s -concurrency 8 \
  -mix bound=2,batch=1,mutate=7 -verify 0 -seed 11 >pcload-crash.log 2>&1 &
LOAD_PID=$!
sleep 2
kill_server "$SERVER_PID"
SERVER_PID=""
# The load generator's fate is not the assertion here — its retries are
# pointed at a server that stays down — but it must not hang.
kill "$LOAD_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true

echo "== phase 3: offline recovery, with a synthetic torn tail on top"
"$BIN/pcwal" info "$DATA"
NEWEST_SEG=$(ls "$DATA"/wal-*.log | sort | tail -1)
printf '\x17\x00\x00' >>"$NEWEST_SEG" # a torn frame header: length field cut short
"$BIN/pcwal" info "$DATA" | grep -q "torn tail" \
  || { echo "pcwal info did not report the torn tail" >&2; exit 1; }
"$BIN/pcwal" verify "$DATA"
"$BIN/pcwal" dump "$DATA" >offline-dump.json
KILL_EPOCH=$(jq -r .epoch offline-dump.json)
echo "   offline recovery reached epoch $KILL_EPOCH"

echo "== phase 4: restart on the crashed dir; served state must equal the offline dump byte-for-byte"
boot
wait_healthy "$BASE" "$SERVER_PID" "$LOG"
grep -q "recovered epoch $KILL_EPOCH" "$LOG" \
  || { echo "server log does not show recovery to epoch $KILL_EPOCH:" >&2; tail "$LOG" >&2; exit 1; }
curl -fsS "$BASE/v1/store" >post-crash.json
cmp offline-dump.json post-crash.json \
  || { echo "recovered server state differs from offline recovery" >&2; exit 1; }
curl -fsS "$BASE/healthz" | jq -e ".durability.recovered_epoch == $KILL_EPOCH" >/dev/null

echo "== phase 5: recovered server serves bit-identical bounds under verified load"
"$BIN/pcload" -addr "$BASE" -quick -seed 23

echo "== phase 6: graceful SIGTERM drain loses nothing"
curl -fsS "$BASE/v1/store" >pre-drain.json
DRAIN_EPOCH=$(jq -r .epoch pre-drain.json)
stop_server "$SERVER_PID" || { echo "pcserved exited non-zero on drain:" >&2; tail "$LOG" >&2; exit 1; }
SERVER_PID=""
grep -q "drained cleanly" "$LOG" || { echo "no clean drain in log:" >&2; tail "$LOG" >&2; exit 1; }
"$BIN/pcwal" verify -epoch "$DRAIN_EPOCH" "$DATA"
"$BIN/pcwal" dump "$DATA" >offline-drain.json
cmp pre-drain.json offline-drain.json \
  || { echo "drained state differs from what the directory recovers to" >&2; exit 1; }

echo "== phase 7: one more boot to prove the parting checkpoint replays instantly"
boot
wait_healthy "$BASE" "$SERVER_PID" "$LOG"
curl -fsS "$BASE/healthz" | jq -e '.durability.replayed_records == 0' >/dev/null \
  || { echo "replay after a clean drain should be zero records (parting checkpoint)" >&2; exit 1; }
curl -fsS "$BASE/v1/store" >post-drain.json
cmp pre-drain.json post-drain.json \
  || { echo "state changed across a clean drain + reboot" >&2; exit 1; }
stop_server "$SERVER_PID" || true
SERVER_PID=""

rm -f offline-dump.json post-crash.json pre-drain.json offline-drain.json post-drain.json pcload-crash.log
echo "crash_e2e: all phases passed (crash epoch $KILL_EPOCH, drain epoch $DRAIN_EPOCH)"
