#!/usr/bin/env bash
# repl_e2e.sh — the replication gauntlet CI runs (and developers can run
# locally: `bash ci/repl_e2e.sh`). It boots a primary pcserved with a data
# directory and a read-only follower tailing the primary's WAL over the
# /v1/wal HTTP endpoints, then proves the log-shipping contract end to end:
#
#   1. the follower bootstraps from the primary's checkpoint and reports
#      role "follower" (mutations on it get 503 + the primary's address);
#   2. under a mutate-heavy pcload with reads fanned to the replica, pinned
#      reads are bit-identical across nodes (pcload -target ... -verify) and
#      the replication lag drains to zero afterwards, with /v1/store
#      byte-identical across nodes at the shared frontier;
#   3. SIGKILLing the primary mid-stream leaves the follower serving a
#      durable prefix (its frontier never exceeds what offline recovery of
#      the primary's directory reaches);
#   4. restarting the primary on the same directory lets the tail resume and
#      reconverge byte-for-byte; restarting the follower re-bootstraps and
#      reconverges the same way.
#
# The primary runs with -checkpoint-every 0: periodic checkpoints truncate
# the log, and a follower lagging past a truncation can only re-bootstrap —
# this gauntlet pins the streaming path, so truncation stays out of frame
# (the fell-behind path is covered by unit tests in internal/wal).
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
# shellcheck source=ci/lib.sh
source ci/lib.sh

P_ADDR="127.0.0.1:${PCSERVED_PORT:-18095}"
R_ADDR="127.0.0.1:$(( ${PCSERVED_PORT:-18095} + 1 ))"
P_BASE="http://$P_ADDR"
R_BASE="http://$R_ADDR"
SPEC=cmd/pcserved/testdata/sample_spec.json
P_LOG=pcserved-repl-primary.log
R_LOG=pcserved-repl-follower.log
DATA=$(mktemp -d)
P_PID=""
R_PID=""

e2e_require jq curl

cleanup_hook() {
  rm -rf "$DATA"
  rm -f repl-primary-store.json repl-replica-store.json repl-durable.json \
    repl-pin-primary.json repl-pin-replica.json pcload-repl.log
}

boot_primary() {
  spawn_pcserved "$P_LOG" -addr "$P_ADDR" -spec "$SPEC" \
    -data-dir "$DATA" -checkpoint-every 0
  P_PID=$SPAWNED_PID
}

boot_follower() {
  spawn_pcserved "$R_LOG" -addr "$R_ADDR" -follow "$P_BASE" \
    -staleness-budget 10s
  R_PID=$SPAWNED_PID
}

# wait_caught_up — poll until the follower's applied epoch equals the
# primary's current epoch and the lag gauge reads zero.
wait_caught_up() {
  local p_epoch
  p_epoch=$(curl -fsS "$P_BASE/healthz" | jq -r .epoch)
  for _ in $(seq 300); do
    local applied lag
    applied=$(curl -fsS "$R_BASE/healthz" | jq -r .replication.applied_epoch)
    lag=$(curl -fsS "$R_BASE/metrics" | awk '$1 == "pcserved_repl_lag_records" { print $2 }')
    if [[ "$applied" -ge "$p_epoch" && "${lag:-1}" == 0 ]]; then
      return 0
    fi
    sleep 0.1
  done
  echo "follower never caught up to primary epoch $p_epoch:" >&2
  curl -fsS "$R_BASE/healthz" >&2 || true
  echo >&2; tail "$R_LOG" >&2
  exit 1
}

# require_stores_identical LABEL — /v1/store must be byte-identical across
# the two nodes (both emit the same json.Encoder framing, so cmp is exact).
require_stores_identical() {
  curl -fsS "$P_BASE/v1/store" >repl-primary-store.json
  curl -fsS "$R_BASE/v1/store" >repl-replica-store.json
  cmp repl-primary-store.json repl-replica-store.json \
    || { echo "$1: follower store differs from primary" >&2; exit 1; }
}

echo "== build (pcserved under -race, pcload and pcwal plain)"
e2e_build -race pcserved
e2e_build pcload pcwal

echo "== phase 1: boot primary (data dir) and follower (-follow over HTTP)"
boot_primary
wait_healthy "$P_BASE" "$P_PID" "$P_LOG"
curl -fsS "$P_BASE/healthz" | jq -e '.role == "primary"' >/dev/null \
  || { echo "primary healthz does not report role primary" >&2; exit 1; }
boot_follower
wait_healthy "$R_BASE" "$R_PID" "$R_LOG"
curl -fsS "$R_BASE/healthz" | jq -e '.role == "follower" and .replication.source != ""' >/dev/null \
  || { echo "follower healthz does not report role follower" >&2; exit 1; }

echo "== phase 2: mutations on the follower are rejected with the primary's address"
CODE=$(curl -s -o repl-pin-replica.json -w '%{http_code}' -X POST \
  -d '{"constraints":[{"name":"x","predicate":{},"values":{"price":[1,2]},"klo":0,"khi":1}]}' \
  "$R_BASE/v1/store/add")
[[ "$CODE" == 503 ]] || { echo "follower add returned $CODE, want 503" >&2; exit 1; }
jq -e --arg p "$P_BASE" '.primary == $p' repl-pin-replica.json >/dev/null \
  || { echo "follower rejection is missing the primary hint: $(cat repl-pin-replica.json)" >&2; exit 1; }

echo "== phase 3: verified load with reads fanned to the replica"
"$BIN/pcload" -target "$P_BASE,$R_BASE" -quick -seed 7
wait_caught_up
require_stores_identical "after verified load"

echo "== phase 4: mutate-heavy stream, then drain the lag to zero"
"$BIN/pcload" -target "$P_BASE,$R_BASE" -duration 8s -concurrency 8 \
  -mix bound=2,batch=1,mutate=6 -verify 0 -seed 11
wait_caught_up
require_stores_identical "after mutate-heavy stream"

echo "== phase 5: epoch-pinned bound is byte-identical across nodes"
PIN_EPOCH=$(curl -fsS "$P_BASE/healthz" | jq -r .epoch)
for Q in \
  '{"agg":"SUM","attr":"price","where":{"utc":[6,14]}}' \
  '{"agg":"COUNT"}' \
  '{"agg":"AVG","attr":"price","where":{"branch":[1,3]}}'; do
  BODY=$(jq -nc --argjson q "$Q" --argjson e "$PIN_EPOCH" '{query: $q, epoch: $e}')
  post "$P_BASE" /v1/bound "$BODY" >repl-pin-primary.json
  post "$R_BASE" /v1/bound "$BODY" >repl-pin-replica.json
  cmp repl-pin-primary.json repl-pin-replica.json \
    || { echo "pinned bound at epoch $PIN_EPOCH differs across nodes for $Q" >&2; exit 1; }
done
echo "   pinned bounds at epoch $PIN_EPOCH byte-identical on both nodes"

echo "== phase 6: SIGKILL the primary mid-stream; the follower holds a durable prefix"
"$BIN/pcload" -addr "$P_BASE" -duration 15s -concurrency 8 \
  -mix bound=1,batch=1,mutate=8 -verify 0 -seed 13 >pcload-repl.log 2>&1 &
LOAD_PID=$!
sleep 2
kill_server "$P_PID"
P_PID=""
kill "$LOAD_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true

# The follower keeps serving its frozen frontier while the primary is down.
curl -fsS "$R_BASE/healthz" | jq -e '.status == "ok" and .role == "follower"' >/dev/null \
  || { echo "follower unhealthy after primary SIGKILL" >&2; exit 1; }
FOLLOWER_EPOCH=$(curl -fsS "$R_BASE/healthz" | jq -r .replication.applied_epoch)
"$BIN/pcwal" verify "$DATA"
"$BIN/pcwal" dump "$DATA" >repl-durable.json
DURABLE_EPOCH=$(jq -r .epoch repl-durable.json)
[[ "$FOLLOWER_EPOCH" -le "$DURABLE_EPOCH" ]] \
  || { echo "follower frontier $FOLLOWER_EPOCH exceeds durable epoch $DURABLE_EPOCH: applied unacknowledged history" >&2; exit 1; }
echo "   follower frontier $FOLLOWER_EPOCH <= durable epoch $DURABLE_EPOCH"

echo "== phase 7: primary restarts on the same directory; the tail resumes and reconverges"
boot_primary
wait_healthy "$P_BASE" "$P_PID" "$P_LOG"
wait_caught_up
require_stores_identical "after primary restart"
curl -fsS "$R_BASE/healthz" | jq -e '.replication.tail_restarts >= 1' >/dev/null \
  || { echo "follower never counted a tail restart across the primary outage" >&2; exit 1; }

echo "== phase 8: follower restart re-bootstraps and reconverges"
kill_server "$R_PID"
R_PID=""
boot_follower
wait_healthy "$R_BASE" "$R_PID" "$R_LOG"
wait_caught_up
require_stores_identical "after follower restart"

echo "== phase 9: final verified pass (pinned reads bit-identical across nodes)"
"$BIN/pcload" -target "$P_BASE,$R_BASE" -quick -verify 50 -seed 23
LAG=$(curl -fsS "$R_BASE/metrics" | awk '$1 == "pcserved_repl_lag_records" { print $2 }')
APPLIED=$(curl -fsS "$R_BASE/metrics" | awk '$1 == "pcserved_repl_applied_records_total" { print $2 }')
[[ "${APPLIED:-0}" -gt 0 ]] || { echo "follower applied_records_total is $APPLIED" >&2; exit 1; }

stop_server "$R_PID" || { echo "follower exited non-zero on drain:" >&2; tail "$R_LOG" >&2; exit 1; }
R_PID=""
stop_server "$P_PID" || { echo "primary exited non-zero on drain:" >&2; tail "$P_LOG" >&2; exit 1; }
P_PID=""

echo "repl_e2e: all phases passed (pinned epoch $PIN_EPOCH, crash frontier $FOLLOWER_EPOCH/$DURABLE_EPOCH, final lag ${LAG:-?}, $APPLIED records shipped)"
