#!/usr/bin/env bash
# chaos_e2e.sh — the fleet-survival gauntlet CI runs (and developers can run
# locally: `bash ci/chaos_e2e.sh`). It boots a full fleet — one pcrouter in
# front of a durable primary and two HTTP-tailing followers — and proves that
# the router, the lease-aware truncation, and the follower self-healing
# together keep the fleet serving through every failure the design claims to
# survive:
#
#   1. SIGKILLing a follower mid-load loses zero reads: the router ejects it
#      on the first failure and fails the read over to a live backend, and
#      the restarted follower rejoins and reconverges;
#   2. SIGKILLing the primary leaves reads serving through the router while
#      mutations fail fast with 503 + Retry-After + the primary's address
#      (never retried — they are not idempotent); the restarted primary
#      recovers from its log and the fleet reconverges;
#   3. a SIGSTOPped (live-but-silent) follower's lease holds checkpoint
#      truncation — visible in wal_* metrics, the /v1/wal listing, and
#      `pcwal info` — until the -max-replica-lag cap overrides the hold;
#      the follower, now truncated past, self-heals in place: same PID,
#      re-bootstrap counted in /metrics, store byte-identical afterwards;
#   4. a lease that stops heartbeating past -lease-expiry is expired and
#      releases its hold on the log.
#
# Every load phase runs through the router, so the zero-failed-reads
# assertions are the router's to earn, not pcload's retry layer alone.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
# shellcheck source=ci/lib.sh
source ci/lib.sh

PORT=${PCSERVED_PORT:-18110}
RT_ADDR="127.0.0.1:$PORT"
P_ADDR="127.0.0.1:$((PORT + 1))"
F1_ADDR="127.0.0.1:$((PORT + 2))"
F2_ADDR="127.0.0.1:$((PORT + 3))"
RT_BASE="http://$RT_ADDR"
P_BASE="http://$P_ADDR"
F1_BASE="http://$F1_ADDR"
F2_BASE="http://$F2_ADDR"
SPEC=cmd/pcserved/testdata/sample_spec.json
RT_LOG=pcrouter-chaos.log
P_LOG=pcserved-chaos-primary.log
F1_LOG=pcserved-chaos-f1.log
F2_LOG=pcserved-chaos-f2.log
DATA=$(mktemp -d)
RT_PID="" P_PID="" F1_PID="" F2_PID=""

e2e_require jq curl

cleanup_hook() {
  rm -rf "$DATA"
  rm -f chaos-store-*.json chaos-mut.json pcload-chaos.log
}

# boot_primary [EXTRA...] — durable primary with aggressive checkpointing so
# truncation pressure builds within seconds, and a lag cap the stalled
# follower of phase 5 is pushed past.
boot_primary() {
  spawn_pcserved "$P_LOG" -addr "$P_ADDR" -spec "$SPEC" -data-dir "$DATA" \
    -checkpoint-every 16 -max-replica-lag 64 "$@"
  P_PID=$SPAWNED_PID
}

boot_follower() { # boot_follower ADDR LOG LEASE_ID -> SPAWNED_PID
  spawn_pcserved "$2" -addr "$1" -follow "$P_BASE" -staleness-budget 10s \
    -lease-id "$3"
}

# wait_router_healthy N — poll the router until exactly N backends are
# healthy (and the router itself answers).
wait_router_healthy() {
  local want="$1"
  for _ in $(seq 150); do
    local got
    got=$(curl -s "$RT_BASE/healthz" | jq -r '[.backends[] | select(.healthy)] | length' 2>/dev/null || echo "")
    [[ "$got" == "$want" ]] && return 0
    sleep 0.1
  done
  echo "router never reached $want healthy backends:" >&2
  curl -s "$RT_BASE/healthz" >&2 || true
  echo >&2; tail "$RT_LOG" >&2
  exit 1
}

# wait_applied BASE — poll BASE until its applied frontier reaches the
# primary's current epoch.
wait_applied() {
  local base="$1" p_epoch
  p_epoch=$(curl -fsS "$P_BASE/healthz" | jq -r .epoch)
  for _ in $(seq 300); do
    local applied
    applied=$(curl -s "$base/healthz" | jq -r '.replication.applied_epoch' 2>/dev/null || echo 0)
    [[ "${applied:-0}" -ge "$p_epoch" ]] && return 0
    sleep 0.1
  done
  echo "follower on $base never caught up to primary epoch $p_epoch:" >&2
  curl -s "$base/healthz" >&2 || true
  exit 1
}

# metric BASE NAME — scrape one /metrics value (empty when absent).
metric() {
  curl -fsS "$1/metrics" | awk -v n="$2" '$1 == n { print $2 }'
}

# add_n N PREFIX — N single-constraint mutations through the router, each
# bumping the epoch by one; the controlled way to build truncation pressure.
add_n() {
  local i
  for i in $(seq "$1"); do
    post "$RT_BASE" /v1/store/add \
      "{\"constraints\":[{\"name\":\"$2-$i\",\"predicate\":{},\"values\":{\"price\":[1,2]},\"klo\":0,\"khi\":1}]}" >/dev/null
  done
}

# require_fleet_identical LABEL — GET /v1/store must be byte-identical on
# all three nodes (same json.Encoder framing everywhere, so cmp is exact).
require_fleet_identical() {
  curl -fsS "$P_BASE/v1/store" >chaos-store-p.json
  curl -fsS "$F1_BASE/v1/store" >chaos-store-f1.json
  curl -fsS "$F2_BASE/v1/store" >chaos-store-f2.json
  cmp chaos-store-p.json chaos-store-f1.json \
    || { echo "$1: follower 1 store differs from primary" >&2; exit 1; }
  cmp chaos-store-p.json chaos-store-f2.json \
    || { echo "$1: follower 2 store differs from primary" >&2; exit 1; }
}

echo "== build (pcserved and pcrouter under -race, pcload and pcwal plain)"
e2e_build -race pcserved pcrouter
e2e_build pcload pcwal

echo "== phase 1: boot the fleet — primary, two followers, router in front"
boot_primary -lease-expiry 60s
wait_healthy "$P_BASE" "$P_PID" "$P_LOG"
boot_follower "$F1_ADDR" "$F1_LOG" chaos-f1; F1_PID=$SPAWNED_PID
boot_follower "$F2_ADDR" "$F2_LOG" chaos-f2; F2_PID=$SPAWNED_PID
wait_healthy "$F1_BASE" "$F1_PID" "$F1_LOG"
wait_healthy "$F2_BASE" "$F2_PID" "$F2_LOG"
spawn_bin "$RT_LOG" pcrouter -addr "$RT_ADDR" -primary "$P_BASE" \
  -replica "$F1_BASE" -replica "$F2_BASE" \
  -check-interval 100ms -check-timeout 1s -probe-backoff-max 1s
RT_PID=$SPAWNED_PID
wait_healthy "$RT_BASE" "$RT_PID" "$RT_LOG"
wait_router_healthy 3

# A read through the router names the backend that served it, and a mutation
# lands on the primary (its epoch advances).
curl -fsS -D - -o /dev/null -X POST -H 'Content-Type: application/json' \
  -d '{"query":{"agg":"COUNT"}}' "$RT_BASE/v1/bound" | grep -qi '^X-Pcrouter-Backend:' \
  || { echo "routed read is missing the X-Pcrouter-Backend header" >&2; exit 1; }
E0=$(curl -fsS "$P_BASE/healthz" | jq -r .epoch)
add_n 1 smoke
E1=$(curl -fsS "$P_BASE/healthz" | jq -r .epoch)
[[ "$E1" -gt "$E0" ]] || { echo "mutation through the router never reached the primary" >&2; exit 1; }

echo "== phase 2: verified pcload through the router; reads land on followers"
"$BIN/pcload" -addr "$RT_BASE" -quick -seed 31
wait_applied "$F1_BASE"
wait_applied "$F2_BASE"
F1_ROUTED=$(metric "$RT_BASE" "pcrouter_backend_routed_total{backend=\"$F1_BASE\"}")
F2_ROUTED=$(metric "$RT_BASE" "pcrouter_backend_routed_total{backend=\"$F2_BASE\"}")
[[ "${F1_ROUTED:-0}" -gt 0 && "${F2_ROUTED:-0}" -gt 0 ]] \
  || { echo "router never balanced reads across both followers (f1=$F1_ROUTED f2=$F2_ROUTED)" >&2; exit 1; }
require_fleet_identical "after verified load"

echo "== phase 3: SIGKILL follower 1 mid-load — zero failed reads via the router"
"$BIN/pcload" -addr "$RT_BASE" -duration 8s -concurrency 8 \
  -mix bound=6,batch=2,mutate=2 -verify 0 -seed 33 >pcload-chaos.log 2>&1 &
LOAD_PID=$!
sleep 2
kill_server "$F1_PID"
F1_PID=""
if ! wait "$LOAD_PID"; then
  echo "pcload reported hard failures while a follower died under it:" >&2
  cat pcload-chaos.log >&2
  exit 1
fi
grep -q ', 0 failed,' pcload-chaos.log \
  || { echo "load summary shows failed reads:" >&2; cat pcload-chaos.log >&2; exit 1; }
wait_router_healthy 2
curl -fsS "$RT_BASE/healthz" | jq -e '.status == "ok"' >/dev/null \
  || { echo "router not ok with one follower down" >&2; exit 1; }
RETRIES=$(metric "$RT_BASE" pcrouter_read_retries_total)
echo "   zero failed reads; router failed over $RETRIES read(s) around the dead follower"

boot_follower "$F1_ADDR" "$F1_LOG" chaos-f1; F1_PID=$SPAWNED_PID
wait_healthy "$F1_BASE" "$F1_PID" "$F1_LOG"
wait_applied "$F1_BASE"
wait_router_healthy 3

echo "== phase 4: SIGKILL the primary — mutations fail fast, reads keep serving"
kill_server "$P_PID"
P_PID=""
for _ in $(seq 150); do
  curl -s "$RT_BASE/healthz" | jq -e '.status == "degraded"' >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$RT_BASE/healthz" | jq -e '.status == "degraded"' >/dev/null \
  || { echo "router never reported degraded with the primary dead" >&2; exit 1; }
CODE=$(curl -s -o chaos-mut.json -D chaos-mut-headers.txt -w '%{http_code}' -X POST \
  -H 'Content-Type: application/json' \
  -d '{"constraints":[{"name":"downed","predicate":{},"values":{"price":[1,2]},"klo":0,"khi":1}]}' \
  "$RT_BASE/v1/store/add")
[[ "$CODE" == 503 ]] || { echo "mutation with primary down returned $CODE, want 503" >&2; exit 1; }
grep -qi '^Retry-After:' chaos-mut-headers.txt \
  || { echo "fail-fast mutation rejection is missing Retry-After" >&2; exit 1; }
jq -e --arg p "$P_BASE" '.primary == $p' chaos-mut.json >/dev/null \
  || { echo "fail-fast rejection is missing the primary hint: $(cat chaos-mut.json)" >&2; exit 1; }
rm -f chaos-mut-headers.txt
for _ in $(seq 20); do
  post "$RT_BASE" /v1/bound '{"query":{"agg":"COUNT"}}' >/dev/null
done
echo "   20/20 reads served through the router with the primary dead"

boot_primary -lease-expiry 60s
wait_healthy "$P_BASE" "$P_PID" "$P_LOG"
wait_router_healthy 3
add_n 1 revived
wait_applied "$F1_BASE"
wait_applied "$F2_BASE"
require_fleet_identical "after primary crash and restart"

echo "== phase 5: SIGSTOP follower 1 — its lease holds truncation, the lag cap overrides, it self-heals in place"
STALL_EPOCH=$(curl -fsS "$F1_BASE/healthz" | jq -r '.replication.applied_epoch')
kill -STOP "$F1_PID"
add_n 40 hold
HELD=$(metric "$P_BASE" wal_truncations_held_total)
HELD_SEGS=$(metric "$P_BASE" wal_held_segments)
[[ "${HELD:-0}" -ge 1 && "${HELD_SEGS:-0}" -ge 1 ]] \
  || { echo "stalled lease did not hold truncation (held=$HELD segments=$HELD_SEGS)" >&2; exit 1; }
curl -fsS "$P_BASE/v1/wal" | jq -e '[.leases[]?.id] | index("chaos-f1") != null' >/dev/null \
  || { echo "/v1/wal listing does not show the chaos-f1 lease" >&2; exit 1; }
# Capture before grepping: `pcwal | grep -q` would die of SIGPIPE under
# pipefail when grep exits at the first match.
INFO=$("$BIN/pcwal" info "$DATA")
grep -q 'chaos-f1' <<<"$INFO" \
  || { echo "pcwal info does not show the chaos-f1 lease:" >&2; echo "$INFO" >&2; exit 1; }
echo "   lease chaos-f1 (acked $STALL_EPOCH) held $HELD_SEGS segment(s) across $HELD checkpoint(s)"

add_n 80 cap
kill -CONT "$F1_PID"
for _ in $(seq 300); do
  RB=$(metric "$F1_BASE" pcserved_repl_rebootstraps_total || echo "")
  [[ "${RB:-0}" -ge 1 ]] && break
  sleep 0.1
done
[[ "${RB:-0}" -ge 1 ]] \
  || { echo "follower 1 never re-bootstrapped after being truncated past:" >&2; tail "$F1_LOG" >&2; exit 1; }
kill -0 "$F1_PID" || { echo "follower 1 is gone — self-healing must not need a restart" >&2; exit 1; }
curl -fsS "$F1_BASE/healthz" | jq -e '.replication.rebootstraps >= 1' >/dev/null \
  || { echo "follower 1 healthz does not count the re-bootstrap" >&2; exit 1; }
wait_applied "$F1_BASE"
wait_applied "$F2_BASE"
require_fleet_identical "after in-place re-bootstrap"
echo "   follower 1 (pid $F1_PID, unchanged) re-bootstrapped in place and reconverged byte-identically"

echo "== phase 6: a silent lease expires past -lease-expiry and releases the log"
stop_server "$P_PID" || { echo "primary exited non-zero on drain:" >&2; tail "$P_LOG" >&2; exit 1; }
boot_primary -lease-expiry 2s
wait_healthy "$P_BASE" "$P_PID" "$P_LOG"
wait_router_healthy 3
add_n 1 reattach
wait_applied "$F1_BASE"
wait_applied "$F2_BASE"
kill -STOP "$F2_PID"
sleep 3
add_n 20 expire
EXPIRED=$(metric "$P_BASE" wal_lease_expirations_total)
[[ "${EXPIRED:-0}" -ge 1 ]] \
  || { echo "silent lease never expired (wal_lease_expirations_total=$EXPIRED)" >&2; exit 1; }
kill -CONT "$F2_PID"
wait_applied "$F2_BASE"
echo "   lease expired after 2s of silence ($EXPIRED expiration(s)); follower 2 recovered on SIGCONT"

echo "== phase 7: final verified pass and clean drains"
"$BIN/pcload" -addr "$RT_BASE" -quick -seed 41
wait_applied "$F1_BASE"
wait_applied "$F2_BASE"
require_fleet_identical "final"
FINAL_RB=$(metric "$F1_BASE" pcserved_repl_rebootstraps_total)

stop_server "$RT_PID" || { echo "router exited non-zero on drain:" >&2; tail "$RT_LOG" >&2; exit 1; }
RT_PID=""
stop_server "$F1_PID" || { echo "follower 1 exited non-zero on drain:" >&2; tail "$F1_LOG" >&2; exit 1; }
F1_PID=""
stop_server "$F2_PID" || { echo "follower 2 exited non-zero on drain:" >&2; tail "$F2_LOG" >&2; exit 1; }
F2_PID=""
stop_server "$P_PID" || { echo "primary exited non-zero on drain:" >&2; tail "$P_LOG" >&2; exit 1; }
P_PID=""

echo "chaos_e2e: all phases passed (router retries $RETRIES, truncation holds $HELD, re-bootstraps $FINAL_RB, lease expirations $EXPIRED)"
