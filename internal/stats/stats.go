// Package stats provides the small statistical toolkit the baselines and
// experiment harness need: moments, quantiles, correlation, the normal
// distribution (CDF, inverse CDF, sampling helpers) and Hoeffding-style
// concentration bounds. Everything is implemented from scratch on the
// standard library.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extremes of xs (inf/-inf for empty input).
func MinMax(xs []float64) (mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs by linear
// interpolation; xs need not be sorted. Returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile over pre-sorted input.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Pearson returns the Pearson correlation coefficient between xs and ys
// (0 when either side is constant or the lengths differ).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the inverse standard normal CDF via the
// Acklam rational approximation (absolute error < 1.15e-9), refined with
// one Halley step.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// HoeffdingEpsilon returns the one-sample Hoeffding deviation bound for the
// mean of n observations in a range of the given width at confidence
// 1-delta: with probability >= 1-delta, |mean - truth| <= epsilon.
func HoeffdingEpsilon(n int, width, delta float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	if delta <= 0 {
		return math.Inf(1)
	}
	if delta >= 1 {
		return 0
	}
	return width * math.Sqrt(math.Log(2/delta)/(2*float64(n)))
}

// NormalPDF returns the standard normal density at z.
func NormalPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}
