package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := Sum(xs); s != 40 {
		t.Errorf("Sum = %v", s)
	}
	// Sample variance of this classic set is 32/7.
	if v := Variance(xs); !almost(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if sd := StdDev(xs); !almost(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", sd)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/singleton moments should be 0")
	}
}

func TestMinMax(t *testing.T) {
	mn, mx := MinMax([]float64{3, -1, 7, 0})
	if mn != -1 || mx != 7 {
		t.Errorf("MinMax = %v %v", mn, mx)
	}
	mn, mx = MinMax(nil)
	if !math.IsInf(mn, 1) || !math.IsInf(mx, -1) {
		t.Error("empty MinMax should be inverted infinities")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almost(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	if m := Median([]float64{1, 3, 2}); m != 2 {
		t.Errorf("Median = %v", m)
	}
	// Interpolation between points.
	if got := Quantile([]float64{0, 10}, 0.3); !almost(got, 3, 1e-12) {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almost(r, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almost(r, -1, 1e-12) {
		t.Errorf("perfect anti-correlation = %v", r)
	}
	if r := Pearson(xs, []float64{1, 1, 1, 1, 1}); r != 0 {
		t.Errorf("constant series correlation = %v, want 0", r)
	}
	if r := Pearson(xs, []float64{1, 2}); r != 0 {
		t.Errorf("length mismatch = %v, want 0", r)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.z); !almost(got, tt.want, 1e-9) {
			t.Errorf("NormalCDF(%v) = %v, want %v", tt.z, got, tt.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.0001, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.99, 0.9999} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); !almost(got, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("edge quantiles should be infinite")
	}
	// Property: monotonicity.
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa == 0 || pb == 0 || pa == pb {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalQuantile(pa) <= NormalQuantile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	if z := NormalQuantile(0.975); !almost(z, 1.959963984540054, 1e-8) {
		t.Errorf("z(0.975) = %v", z)
	}
	if z := NormalQuantile(0.995); !almost(z, 2.575829303548901, 1e-8) {
		t.Errorf("z(0.995) = %v", z)
	}
}

func TestHoeffdingEpsilon(t *testing.T) {
	// Known identity: eps = width*sqrt(ln(2/delta)/(2n)).
	eps := HoeffdingEpsilon(100, 1, 0.05)
	want := math.Sqrt(math.Log(2/0.05) / 200)
	if !almost(eps, want, 1e-12) {
		t.Errorf("eps = %v, want %v", eps, want)
	}
	if !math.IsInf(HoeffdingEpsilon(0, 1, 0.05), 1) {
		t.Error("n=0 should be infinite")
	}
	if !math.IsInf(HoeffdingEpsilon(10, 1, 0), 1) {
		t.Error("delta=0 should be infinite")
	}
	if HoeffdingEpsilon(10, 1, 1) != 0 {
		t.Error("delta=1 should be 0")
	}
	// Tightens with n and loosens as delta shrinks.
	if HoeffdingEpsilon(1000, 1, 0.05) >= HoeffdingEpsilon(100, 1, 0.05) {
		t.Error("epsilon should shrink with n")
	}
	if HoeffdingEpsilon(100, 1, 0.001) <= HoeffdingEpsilon(100, 1, 0.1) {
		t.Error("epsilon should grow as delta shrinks")
	}
}

// TestHoeffdingCoverage empirically verifies the concentration bound: the
// empirical mean of bounded variables stays within epsilon of the true mean
// at least 1-delta of the time.
func TestHoeffdingCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const trials = 2000
	const n = 50
	const delta = 0.1
	eps := HoeffdingEpsilon(n, 1, delta)
	failures := 0
	for i := 0; i < trials; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += rng.Float64() // uniform [0,1], true mean 0.5
		}
		if math.Abs(s/n-0.5) > eps {
			failures++
		}
	}
	if rate := float64(failures) / trials; rate > delta {
		t.Errorf("failure rate %v exceeds delta %v", rate, delta)
	}
}

func TestNormalPDF(t *testing.T) {
	if got := NormalPDF(0); !almost(got, 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Errorf("pdf(0) = %v", got)
	}
	if NormalPDF(10) > 1e-20 {
		t.Error("far tail should be tiny")
	}
}

func TestQuantileSortedBounds(t *testing.T) {
	if QuantileSorted(nil, 0.5) != 0 {
		t.Error("empty sorted quantile")
	}
	if QuantileSorted([]float64{7}, 0.99) != 7 {
		t.Error("singleton quantile")
	}
}
