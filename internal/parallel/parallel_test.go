package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEachIndexOnce(t *testing.T) {
	for _, par := range []int{-1, 0, 1, 3, 8, 100} {
		const n = 37
		var counts [n]atomic.Int32
		maxWorker := int32(-1)
		var mw atomic.Int32
		mw.Store(-1)
		For(n, par, func(w, i int) {
			counts[i].Add(1)
			for {
				cur := mw.Load()
				if int32(w) <= cur || mw.CompareAndSwap(cur, int32(w)) {
					break
				}
			}
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("par=%d: index %d ran %d times", par, i, c)
			}
		}
		maxWorker = mw.Load()
		limit := par
		if limit > n {
			limit = n
		}
		if limit < 1 {
			limit = 1
		}
		if int(maxWorker) >= limit {
			t.Errorf("par=%d: worker id %d out of range [0, %d)", par, maxWorker, limit)
		}
	}
}

func TestForZeroTasks(t *testing.T) {
	called := false
	For(0, 4, func(_, _ int) { called = true })
	if called {
		t.Error("fn called with n=0")
	}
}
