// Package parallel provides the small work-distribution primitive shared by
// the batch-bounding engine and the experiment harness: a fixed pool of
// workers draining indexed tasks from an atomic counter.
//
// It is the coarse-grained, query-level counterpart of internal/sched: For
// fans a fixed index space over private workers and has no ordering or
// sharing, which suits homogeneous per-query work (BoundBatch, experiment
// sweeps). Work *within* a query — per-cell LP/MILP solves with heavy skew,
// fed by many queries at once — goes through sched's shared cost-ordered
// scheduler instead.
package parallel

import (
	"sync"
	"sync/atomic"
)

// For runs fn(worker, i) for every i in [0, n), fanned out over par worker
// goroutines, and returns when all calls have completed. par is clamped to
// [1, n]; with par <= 1 the calls run sequentially on the caller's
// goroutine. Each index is passed to exactly one call; worker identifies
// the goroutine in [0, clamped par), runs its calls sequentially, and lets
// callers keep cheap per-worker state (e.g. a solver clone) without
// synchronization. fn must be safe for concurrent invocation when par > 1.
func For(n, par int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
