package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pcbound/internal/core"
)

// limiter is the admission controller: a weighted counting semaphore over
// in-flight query work. A single bound weighs 1; a batch weighs its worker
// fan-out, so admitting requests bounds actual concurrent solver work, not
// just request count. Acquisition never blocks — when the server is
// saturated the request is rejected immediately with 429 so the client can
// back off, instead of queueing without bound and turning overload into
// latency collapse.
type limiter struct {
	mu   sync.Mutex
	used int // guarded by mu
	cap  int
}

func newLimiter(n int) *limiter {
	return &limiter{cap: n}
}

// tryAcquire reserves n units of capacity (clamped to the total, so a
// full-width batch is admittable on an idle server). It returns the granted
// weight — which the caller must pass back to release — and whether the
// reservation succeeded.
func (l *limiter) tryAcquire(n int) (int, bool) {
	if n > l.cap {
		n = l.cap
	}
	if n < 1 {
		n = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.used+n > l.cap {
		return 0, false
	}
	l.used += n
	return n, true
}

func (l *limiter) release(n int) {
	l.mu.Lock()
	l.used -= n
	l.mu.Unlock()
}

func (l *limiter) inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

func (l *limiter) capacity() int { return l.cap }

// latencyBuckets are the histogram upper bounds in seconds (an implicit
// +Inf bucket catches the rest). Exponential-ish from 100µs to 10s: bound
// queries on small stores land in the first few buckets, heavy batches and
// cold decompositions in the middle, so p50/p99 interpolation stays sane at
// both ends.
var latencyBuckets = [numLatencyBuckets]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

const numLatencyBuckets = 16

// histogram is a fixed-bucket latency histogram. Quantiles are estimated by
// linear interpolation inside the containing bucket — coarse but bounded
// memory, which is what a serving loop wants.
type histogram struct {
	mu      sync.Mutex
	buckets [numLatencyBuckets + 1]int64 // guarded by mu
	count   int64                        // guarded by mu
	sum     float64                      // guarded by mu
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets[:], seconds)
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += seconds
	h.mu.Unlock()
}

// quantile returns the estimated q-quantile in seconds (0 when empty). The
// overflow bucket reports the last finite bound — a floor, not an estimate.
func (h *histogram) quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum int64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(latencyBuckets) {
				return latencyBuckets[len(latencyBuckets)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = latencyBuckets[i-1]
			}
			hi := latencyBuckets[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

func (h *histogram) snapshot() (count int64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum
}

// endpointMetrics aggregates one endpoint's request counts (by status code)
// and latency distribution.
type endpointMetrics struct {
	mu    sync.Mutex
	codes map[int]int64 // guarded by mu
	lat   histogram
}

// metrics is the server-wide registry. Endpoints register lazily on first
// request; /metrics renders everything in deterministic (sorted) order.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics // guarded by mu
	rejected  atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[name]
	if em == nil {
		em = &endpointMetrics{codes: make(map[int]int64)}
		m.endpoints[name] = em
	}
	return em
}

func (m *metrics) observe(name string, code int, d time.Duration) {
	em := m.endpoint(name)
	em.mu.Lock()
	em.codes[code]++
	em.mu.Unlock()
	if code == http.StatusTooManyRequests {
		// Rejections are near-instant by design; folding them into the
		// latency histogram would make p50/p99 look *better* during an
		// overload event. They are visible via the per-code counter and
		// pcserved_rejected_total instead.
		return
	}
	em.lat.observe(d.Seconds())
}

// writeTo renders the registry in Prometheus text format.
func (m *metrics) writeTo(w io.Writer) {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)
	fmt.Fprintf(w, "pcserved_rejected_total %d\n", m.rejected.Load())
	for _, name := range names {
		em := m.endpoint(name)
		em.mu.Lock()
		codes := make([]int, 0, len(em.codes))
		for code := range em.codes {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "pcserved_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, code, em.codes[code])
		}
		em.mu.Unlock()
		count, sum := em.lat.snapshot()
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "pcserved_request_seconds{endpoint=%q,quantile=\"%g\"} %g\n", name, q, em.lat.quantile(q))
		}
		fmt.Fprintf(w, "pcserved_request_seconds_sum{endpoint=%q} %g\n", name, sum)
		fmt.Fprintf(w, "pcserved_request_seconds_count{endpoint=%q} %d\n", name, count)
	}
}

// statusRecorder captures the status code a handler writes, for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-endpoint request/latency accounting.
func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.met.observe(name, rec.code, time.Since(start))
	})
}

// tierMetrics counts tiered-precision serving outcomes at query
// granularity (a batch moves the counters once per query).
type tierMetrics struct {
	// summaryServed counts queries answered from the summary tier,
	// including degraded ones.
	summaryServed atomic.Int64
	// exactServed counts queries answered from the exact path.
	exactServed atomic.Int64
	// escalated counts tier-opted queries whose summary interval missed
	// the width budget (or had no summary answer) and fell through to the
	// exact path; escalatedCells accumulates the decomposition cells those
	// escalations solved.
	escalated      atomic.Int64
	escalatedCells atomic.Int64
	// degraded counts requests answered from the summary tier because
	// admission control was at capacity (degrade-before-shed activations).
	degraded atomic.Int64
}

// observe records one admitted query's outcome under the requested spec.
func (t *tierMetrics) observe(spec core.TierSpec, prec core.Precision, rng core.Range) {
	if prec == core.PrecisionSummary {
		t.summaryServed.Add(1)
		return
	}
	t.exactServed.Add(1)
	if spec.Mode != core.TierExact {
		t.escalated.Add(1)
		t.escalatedCells.Add(int64(rng.Cells))
	}
}

// rejectOverCapacity writes the standard 429 backpressure response.
func (s *Server) rejectOverCapacity(w http.ResponseWriter) {
	s.met.rejected.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests,
		fmt.Sprintf("server at capacity (%d units of in-flight query work); retry later", s.lim.capacity()))
}
