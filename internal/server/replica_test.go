package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pcbound/internal/core"
	"pcbound/internal/domain"
)

var errTest = errors.New("wal: tailer fell behind the primary's log truncation (test)")

// reship re-encodes a captured record's constraints against the follower's
// schema instance — the same wire round-trip the WAL tailer performs, since
// a store only accepts constraints built over its own schema.
func reship(t *testing.T, rec core.MutationRecord, from, to *domain.Schema) core.MutationRecord {
	t.Helper()
	out := rec
	out.PCs = make([]core.PC, len(rec.PCs))
	for i, pc := range rec.PCs {
		npc, err := core.PCFromJSON(to, core.EncodePC(from, pc))
		if err != nil {
			t.Fatal(err)
		}
		out.PCs[i] = npc
	}
	return out
}

// newFollowerPair builds the replication test rig: a primary server and a
// follower server over two independently-built but identical stores, with
// the primary's commit records captured so the test can ship them to the
// follower by hand — a deterministic stand-in for the WAL tail.
func newFollowerPair(t *testing.T, cfg Replica) (primary *core.Store, pts *httptest.Server, follower *Server, fts *httptest.Server, recs func() []core.MutationRecord) {
	t.Helper()
	primary = testStore(t)
	pts = newTestServer(t, primary, Config{})

	var mu sync.Mutex
	var captured []core.MutationRecord
	primary.AddCommitHook(func(rec core.MutationRecord) {
		mu.Lock()
		defer mu.Unlock()
		captured = append(captured, rec)
	})

	follower = New(testStore(t), nil, Config{Replica: &cfg})
	fts = httptest.NewServer(follower.Handler())
	t.Cleanup(fts.Close)
	return primary, pts, follower, fts, func() []core.MutationRecord {
		mu.Lock()
		defer mu.Unlock()
		return append([]core.MutationRecord(nil), captured...)
	}
}

// TestFollowerRejectsMutations: every mutating endpoint on a follower is
// refused with 503 and the primary's address, before any body validation —
// a replica must never fork its replicated history.
func TestFollowerRejectsMutations(t *testing.T) {
	_, _, _, fts, _ := newFollowerPair(t, Replica{Primary: "http://primary.example:8080"})
	for _, tc := range []struct {
		path string
		body any
	}{
		{"/v1/store/add", AddRequest{}},
		{"/v1/store/remove", RemoveRequest{ID: 1}},
		{"/v1/store/replace", ReplaceRequest{ID: 1}},
	} {
		var er ErrorResponse
		code, raw := doJSON(t, "POST", fts.URL+tc.path, tc.body, nil)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s on follower: code %d, want 503 (body %s)", tc.path, code, raw)
		}
		if err := json.Unmarshal(raw, &er); err != nil {
			t.Fatalf("%s error body: %v", tc.path, err)
		}
		if er.Primary != "http://primary.example:8080" {
			t.Fatalf("%s rejection primary hint %q, want the configured primary", tc.path, er.Primary)
		}
		if !strings.Contains(er.Error, "primary") {
			t.Fatalf("%s rejection should point at the primary: %q", tc.path, er.Error)
		}
	}
}

// TestFollowerBitIdenticalAtSharedEpochs is the replication acceptance
// criterion in miniature: after shipping the primary's records, an
// epoch-pinned read answers byte-for-byte identically on both nodes, at
// every shared epoch — the pin, not the node, names the result.
func TestFollowerBitIdenticalAtSharedEpochs(t *testing.T) {
	primary, pts, follower, fts, recs := newFollowerPair(t, Replica{Primary: "http://primary"})
	boot := primary.Epoch()

	// Mutate through the primary's API so it registers every epoch as
	// pinnable, exactly as a real primary does.
	for _, pc := range []core.PCJSON{
		{Name: "evening", Predicate: map[string][2]float64{"utc": {18, 22}},
			Values: map[string][2]float64{"price": {50, 450}}, KLo: 3, KHi: 9},
		{Name: "late", Predicate: map[string][2]float64{"utc": {12, 16}},
			Values: map[string][2]float64{"price": {30, 300}}, KLo: 1, KHi: 7},
	} {
		if code, raw := doJSON(t, "POST", pts.URL+"/v1/store/add",
			AddRequest{Constraints: []core.PCJSON{pc}}, nil); code != http.StatusOK {
			t.Fatalf("primary add: %d %s", code, raw)
		}
	}
	for _, rec := range recs() {
		if err := follower.ApplyReplicated(reship(t, rec, primary.Schema(), follower.Store().Schema())); err != nil {
			t.Fatalf("apply epoch %d: %v", rec.Epoch, err)
		}
	}

	for epoch := boot; epoch <= primary.Epoch(); epoch++ {
		e := epoch
		for qi, q := range testQueries() {
			req := BoundRequest{Query: q, Epoch: &e}
			pcode, praw := doJSON(t, "POST", pts.URL+"/v1/bound", req, nil)
			fcode, fraw := doJSON(t, "POST", fts.URL+"/v1/bound", req, nil)
			if pcode != http.StatusOK || fcode != http.StatusOK {
				t.Fatalf("epoch %d query %d: primary %d, follower %d (%s / %s)", e, qi, pcode, fcode, praw, fraw)
			}
			if !bytes.Equal(praw, fraw) {
				t.Fatalf("epoch %d query %d: responses differ\nprimary  %s\nfollower %s", e, qi, praw, fraw)
			}
		}
	}

	var hr HealthResponse
	if code, raw := doJSON(t, "GET", fts.URL+"/healthz", nil, &hr); code != http.StatusOK {
		t.Fatalf("follower healthz: %d %s", code, raw)
	}
	if hr.Role != "follower" || hr.Replication == nil {
		t.Fatalf("follower healthz role %q, replication %v", hr.Role, hr.Replication)
	}
	if hr.Replication.AppliedEpoch != primary.Epoch() || hr.Replication.LagRecords != 0 {
		t.Fatalf("follower healthz: applied %d lag %d, want applied %d lag 0",
			hr.Replication.AppliedEpoch, hr.Replication.LagRecords, primary.Epoch())
	}
	if hr.Replication.AppliedRecords != uint64(len(recs())) {
		t.Fatalf("applied_records %d, want %d", hr.Replication.AppliedRecords, len(recs()))
	}

	resp, err := http.Get(fts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "pcserved_repl_lag_records 0") {
		t.Fatalf("follower metrics missing zero lag gauge:\n%s", raw)
	}
}

// TestFollowerMinEpochGate: a min_epoch read behind the frontier waits for
// the tail; if the record arrives within the staleness budget the read runs
// at (or past) the target, otherwise it fails with 412 and a Retry-After.
func TestFollowerMinEpochGate(t *testing.T) {
	primary, _, follower, fts, recs := newFollowerPair(t,
		Replica{Primary: "http://primary", StalenessBudget: 250 * time.Millisecond})

	// Budget expires first: 412.
	want := primary.Epoch() + 1
	req := BoundRequest{Query: testQueries()[0], MinEpoch: &want}
	start := time.Now()
	code, raw := doJSON(t, "POST", fts.URL+"/v1/bound", req, nil)
	if code != http.StatusPreconditionFailed {
		t.Fatalf("stale min_epoch: code %d, want 412 (body %s)", code, raw)
	}
	if waited := time.Since(start); waited < 200*time.Millisecond {
		t.Fatalf("412 after %s: the gate must wait out the staleness budget first", waited)
	}
	var hr HealthResponse
	doJSON(t, "GET", fts.URL+"/healthz", nil, &hr)
	if hr.Replication.StaleRejects != 1 {
		t.Fatalf("stale_rejects %d, want 1", hr.Replication.StaleRejects)
	}

	// The record arrives mid-wait: the read unblocks and serves >= target.
	mutateStore(t, primary)
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		if err := follower.ApplyReplicated(reship(t, recs()[0], primary.Schema(), follower.Store().Schema())); err != nil {
			t.Error(err)
		}
	}()
	var br BoundResponse
	code, raw = doJSON(t, "POST", fts.URL+"/v1/bound", req, &br)
	<-done
	if code != http.StatusOK {
		t.Fatalf("min_epoch read after catch-up: code %d (body %s)", code, raw)
	}
	if br.Epoch < want {
		t.Fatalf("gated read served epoch %d, want >= %d", br.Epoch, want)
	}

	// A pinned epoch ahead of the follower's frontier implies the same gate
	// (and 412s once the budget runs out, rather than 410ing instantly).
	ahead := primary.Epoch() + 5
	code, raw = doJSON(t, "POST", fts.URL+"/v1/bound", BoundRequest{Query: testQueries()[0], Epoch: &ahead}, nil)
	if code != http.StatusPreconditionFailed {
		t.Fatalf("pinned-ahead read on follower: code %d, want 412 (body %s)", code, raw)
	}
}

// TestPrimaryMinEpochImmediate: the primary IS the frontier, so a min_epoch
// it has not reached can never be satisfied by waiting — 412 immediately.
func TestPrimaryMinEpochImmediate(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	want := store.Epoch() + 1
	start := time.Now()
	code, raw := doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: testQueries()[0], MinEpoch: &want}, nil)
	if code != http.StatusPreconditionFailed {
		t.Fatalf("primary min_epoch ahead: code %d, want 412 (body %s)", code, raw)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("primary 412 took %s: must not wait", time.Since(start))
	}

	// A satisfiable min_epoch is a no-op.
	now := store.Epoch()
	code, _ = doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: testQueries()[0], MinEpoch: &now}, nil)
	if code != http.StatusOK {
		t.Fatalf("primary satisfiable min_epoch: code %d, want 200", code)
	}
}

// TestFollowerReplicationFailure: a terminal tail error freezes the
// follower at its frontier — plain reads keep serving, epoch-gated reads
// fail fast, and /healthz flips to 503 replication_failed.
func TestFollowerReplicationFailure(t *testing.T) {
	primary, _, follower, fts, _ := newFollowerPair(t,
		Replica{Primary: "http://primary", StalenessBudget: 10 * time.Second})
	follower.ReplicationFailed(errTest)

	code, _ := doJSON(t, "POST", fts.URL+"/v1/bound", BoundRequest{Query: testQueries()[0]}, nil)
	if code != http.StatusOK {
		t.Fatalf("plain read on failed follower: code %d, want 200 (frozen frontier still serves)", code)
	}

	want := primary.Epoch() + 1
	start := time.Now()
	code, raw := doJSON(t, "POST", fts.URL+"/v1/bound", BoundRequest{Query: testQueries()[0], MinEpoch: &want}, nil)
	if code != http.StatusPreconditionFailed {
		t.Fatalf("gated read on failed follower: code %d, want 412 (body %s)", code, raw)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("gated read waited %s despite failed replication: must fail fast", time.Since(start))
	}

	resp, err := http.Get(fts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || hr.Status != "replication_failed" {
		t.Fatalf("failed follower healthz: %d %q, want 503 replication_failed", resp.StatusCode, hr.Status)
	}
	if hr.Replication.Error == "" {
		t.Fatal("failed follower healthz must carry the tail error")
	}
}
