package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/wal"
)

// durableTestServer wires a Server to a wal.Manager over an in-memory
// filesystem, the same shape pcserved builds with -data-dir.
func durableTestServer(t testing.TB, fs *wal.MemFS, checkpointEvery int) (*Server, *wal.Manager, *httptest.Server) {
	t.Helper()
	m, err := wal.Open(wal.Options{
		Dir:             "data",
		FS:              fs,
		Mode:            wal.SyncAlways,
		Window:          200 * time.Microsecond,
		CheckpointEvery: checkpointEvery,
		Boot:            testStore(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(m.Store(), nil, Config{Durability: m})
	ts := httptest.NewServer(s.Handler())
	return s, m, ts
}

// drainPC builds a distinct, schema-valid constraint per (worker, iteration).
func drainPC(schema *domain.Schema, worker, i int) core.PCJSON {
	lo := float64((worker*7 + i) % 20)
	pc := core.MustPC(
		predicate.NewBuilder(schema).Range("utc", float64(worker%12), float64(worker%12+4)).Build().
			Named(fmt.Sprintf("w%d-i%d", worker, i)),
		map[string]domain.Interval{"price": domain.NewInterval(lo, lo+100)}, 0, 5)
	return core.EncodePC(schema, pc)
}

// storeState is a bitwise fingerprint of a store: JSON map keys sort and
// floats use shortest-round-trip encoding, so byte equality is bit equality.
func storeState(t testing.TB, st *core.Store) string {
	t.Helper()
	sn := st.Snapshot()
	raw, err := json.Marshal(struct {
		Epoch  uint64
		NextID core.PCID
		IDs    []core.PCID
		Spec   core.SpecJSON
	}{sn.Epoch(), sn.NextID(), sn.IDs(), sn.Spec()})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestDrainWithInFlightMutations is the graceful-drain durability contract:
// with adds racing StartDraining + http.Server.Shutdown, every mutation acked
// with a 200 must survive recovery from the durable filesystem image, and the
// log must replay cleanly — a request caught by the drain is either fully
// logged or rejected, never a half-applied epoch.
func TestDrainWithInFlightMutations(t *testing.T) {
	fs := wal.NewMemFS()
	s, m, ts := durableTestServer(t, fs, 8)

	type ack struct {
		epoch uint64
		ids   []uint64
	}
	var (
		mu   sync.Mutex
		acks []ack
	)
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			schema := m.Schema()
			for i := 0; i < 500; i++ {
				var resp AddResponse
				code, _ := tryJSON(t, "POST", ts.URL+"/v1/store/add",
					AddRequest{Constraints: []core.PCJSON{drainPC(schema, w, i)}}, &resp)
				if code != http.StatusOK {
					return // rejected by the drain (conn closed or 5xx): fine
				}
				mu.Lock()
				acks = append(acks, ack{resp.Epoch, resp.IDs})
				mu.Unlock()
			}
		}(w)
	}

	time.Sleep(30 * time.Millisecond) // let traffic build before pulling the plug
	s.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	live := storeState(t, m.Store())
	liveEpoch := m.Store().Epoch()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	if len(acks) == 0 {
		t.Fatal("no mutation was acked before the drain; test exercised nothing")
	}
	st, info, err := wal.Recover("data", fs.DurableImage())
	if err != nil {
		t.Fatalf("recovery after drain: %v", err)
	}
	var maxAcked uint64
	for _, a := range acks {
		if a.epoch > maxAcked {
			maxAcked = a.epoch
		}
		for _, id := range a.ids {
			if _, ok := st.Get(core.PCID(id)); !ok {
				t.Fatalf("acked id %d (epoch %d) missing after recovery", id, a.epoch)
			}
		}
	}
	if st.Epoch() < maxAcked {
		t.Fatalf("recovered epoch %d < highest acked epoch %d", st.Epoch(), maxAcked)
	}
	// In always mode a drained shutdown leaves nothing buffered: recovery
	// lands bit-identically on the live store's final state.
	if st.Epoch() != liveEpoch {
		t.Fatalf("recovered epoch %d != drained server's epoch %d", st.Epoch(), liveEpoch)
	}
	if got := storeState(t, st); got != live {
		t.Fatalf("recovered store differs from drained server's store\n got %s\nwant %s", got, live)
	}
	t.Logf("acked %d mutations across %d workers; recovered epoch %d (%d replayed)",
		len(acks), workers, st.Epoch(), info.Replayed)
}

// tryJSON is doJSON minus the t.Fatal on transport errors: a request racing
// shutdown may see its connection die, which for this test means "rejected".
func tryJSON(t testing.TB, method, url string, body, out any) (int, error) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(context.Background(), method, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return 0, err
		}
	}
	return resp.StatusCode, nil
}

// TestMutations503WhenWedged: after an fsync failure the server must refuse
// further mutations with a 503 and report "wedged" on /healthz, while reads
// keep serving.
func TestMutations503WhenWedged(t *testing.T) {
	fs := wal.NewMemFS()
	_, m, ts := durableTestServer(t, fs, 0)
	defer ts.Close()
	schema := m.Schema()

	var resp AddResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/store/add",
		AddRequest{Constraints: []core.PCJSON{drainPC(schema, 0, 0)}}, &resp); code != http.StatusOK {
		t.Fatalf("healthy add: %d %s", code, raw)
	}

	wedge := errors.New("injected fsync fault")
	fs.SetOpHook(func(op wal.Op) error {
		if op.Kind == "sync" {
			return wedge
		}
		return nil
	})
	code, raw := doJSON(t, "POST", ts.URL+"/v1/store/add",
		AddRequest{Constraints: []core.PCJSON{drainPC(schema, 0, 1)}}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("add past fsync failure: got %d %s, want 503", code, raw)
	}
	// The wedge is sticky: the next attempt is refused before touching the
	// store at all.
	epoch := m.Store().Epoch()
	code, _ = doJSON(t, "POST", ts.URL+"/v1/store/add",
		AddRequest{Constraints: []core.PCJSON{drainPC(schema, 0, 2)}}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("add while wedged: got %d, want 503", code)
	}
	if got := m.Store().Epoch(); got != epoch {
		t.Fatalf("wedged add still mutated the store: epoch %d -> %d", epoch, got)
	}

	var health HealthResponse
	hcode, hraw := doJSON(t, "GET", ts.URL+"/healthz", nil, &health)
	if hcode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while wedged: got %d %s, want 503", hcode, hraw)
	}
	if err := json.Unmarshal(hraw, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "wedged" || health.Durability == nil || !health.Durability.Wedged {
		t.Fatalf("healthz while wedged: %s", hraw)
	}

	if code, raw := doJSON(t, "POST", ts.URL+"/v1/bound",
		BoundRequest{Query: core.QueryJSON{Agg: "COUNT"}}, nil); code != http.StatusOK {
		t.Fatalf("read while wedged: %d %s (reads must keep serving)", code, raw)
	}
}

// TestRecoveryGate503UntilActivated covers the boot window: before Activate
// every request is refused with Retry-After, /healthz reports "recovering",
// and after Activate the gate is transparent.
func TestRecoveryGate503UntilActivated(t *testing.T) {
	gate := &RecoveryGate{}
	ts := httptest.NewServer(gate)
	defer ts.Close()

	var health HealthResponse
	code, raw := doJSON(t, "GET", ts.URL+"/healthz", nil, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz before activation: %d", code)
	}
	if err := json.Unmarshal(raw, &health); err != nil || health.Status != "recovering" {
		t.Fatalf("healthz before activation: %s (err %v)", raw, err)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/store/add", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("mutation before activation: %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	store := testStore(t)
	gate.Activate(New(store, nil, Config{}).Handler())
	if code, raw := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz after activation: %d %s", code, raw)
	}
}
