package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// testStore builds a small closed store: a catch-all constraint covers the
// whole domain (so bounds are unconditional) and overlapping specific
// constraints force the general DFS+SAT+MILP path.
func testStore(t testing.TB) *core.Store {
	t.Helper()
	schema := domain.NewSchema(
		domain.Attr{Name: "utc", Kind: domain.Integral, Domain: domain.NewInterval(0, 23)},
		domain.Attr{Name: "branch", Kind: domain.Integral, Domain: domain.NewInterval(0, 4)},
		domain.Attr{Name: "price", Kind: domain.Continuous, Domain: domain.NewInterval(0, 500)},
	)
	store := core.NewStore(schema)
	store.MustAdd(
		core.MustPC(predicate.True(schema).Named("catchall"),
			map[string]domain.Interval{"price": domain.NewInterval(0, 500)}, 0, 50),
		core.MustPC(predicate.NewBuilder(schema).Range("utc", 6, 11).Build().Named("morning"),
			map[string]domain.Interval{"price": domain.NewInterval(5, 80)}, 2, 12),
		core.MustPC(predicate.NewBuilder(schema).Eq("branch", 2).Build().Named("branch2"),
			map[string]domain.Interval{"price": domain.NewInterval(10, 200)}, 0, 8),
		core.MustPC(predicate.NewBuilder(schema).Range("utc", 11, 14).Range("branch", 0, 1).Build().Named("peak"),
			map[string]domain.Interval{"price": domain.NewInterval(20, 120)}, 1, 6),
	)
	return store
}

// mutateStore adds one constraint that provably moves full-domain SUM(price)
// bounds (new frequency lower bound, new high-value rows).
func mutateStore(t testing.TB, store *core.Store) core.PCID {
	t.Helper()
	schema := store.Schema()
	pc := core.MustPC(predicate.NewBuilder(schema).Range("utc", 18, 22).Build().Named("evening"),
		map[string]domain.Interval{"price": domain.NewInterval(50, 450)}, 3, 9)
	ids, err := store.AddPCs(pc)
	if err != nil {
		t.Fatal(err)
	}
	return ids[0]
}

func newTestServer(t testing.TB, store *core.Store, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(store, nil, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t testing.TB, method, url string, body, out any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s: %v (body %q)", url, err, raw)
		}
	}
	return resp.StatusCode, raw
}

// testQueries mixes all five aggregates over several regions.
func testQueries() []core.QueryJSON {
	return []core.QueryJSON{
		{Agg: "COUNT"},
		{Agg: "SUM", Attr: "price"},
		{Agg: "AVG", Attr: "price", Where: map[string][2]float64{"utc": {8, 13}}},
		{Agg: "MIN", Attr: "price", Where: map[string][2]float64{"branch": {2, 2}}},
		{Agg: "MAX", Attr: "price", Where: map[string][2]float64{"utc": {0, 12}, "branch": {0, 2}}},
		{Agg: "COUNT", Where: map[string][2]float64{"price": {100, 400}}},
	}
}

// TestBoundBitIdenticalToEngine is the serving acceptance criterion: every
// range served over HTTP must be bit-identical to a direct Engine.Bound on
// the same snapshot, for every aggregate.
func TestBoundBitIdenticalToEngine(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	ref := core.NewEngine(store, nil, core.Options{})
	for i, qj := range testQueries() {
		var resp BoundResponse
		code, raw := doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: qj}, &resp)
		if code != http.StatusOK {
			t.Fatalf("query %d: status %d (%s)", i, code, raw)
		}
		q, err := core.QueryFromJSON(store.Schema(), qj)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Bound(q)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Range.Range()
		if math.Float64bits(got.Lo) != math.Float64bits(want.Lo) ||
			math.Float64bits(got.Hi) != math.Float64bits(want.Hi) ||
			got.LoExact != want.LoExact || got.HiExact != want.HiExact ||
			got.MaybeEmpty != want.MaybeEmpty || got.Reconciled != want.Reconciled {
			t.Fatalf("query %d: HTTP range %+v, engine range %+v", i, got, want)
		}
		if resp.Epoch != store.Epoch() {
			t.Fatalf("query %d: epoch %d, store at %d", i, resp.Epoch, store.Epoch())
		}
	}
}

// TestBatchMatchesBound checks that /v1/batch returns, per query, the exact
// range /v1/bound returns, at several parallelism levels.
func TestBatchMatchesBound(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	queries := testQueries()
	want := make([]RangeJSON, len(queries))
	for i, qj := range queries {
		var resp BoundResponse
		code, raw := doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: qj}, &resp)
		if code != http.StatusOK {
			t.Fatalf("bound %d: status %d (%s)", i, code, raw)
		}
		want[i] = resp.Range
	}
	for _, par := range []int{0, 1, 2, -1} {
		var resp BatchResponse
		code, raw := doJSON(t, "POST", ts.URL+"/v1/batch",
			BatchRequest{Queries: queries, Parallelism: par}, &resp)
		if code != http.StatusOK {
			t.Fatalf("par=%d: status %d (%s)", par, code, raw)
		}
		if len(resp.Ranges) != len(queries) {
			t.Fatalf("par=%d: %d ranges for %d queries", par, len(resp.Ranges), len(queries))
		}
		for i := range want {
			if resp.Ranges[i] != want[i] {
				t.Fatalf("par=%d query %d: %+v vs %+v", par, i, resp.Ranges[i], want[i])
			}
		}
	}
}

// TestMutateAndPinnedReads drives the bound → mutate → rebound cycle: the
// rebound read sees the new epoch and a moved range, the pinned read
// reproduces the old range bit-exactly, and removing the constraint again
// restores the original range at a third epoch.
func TestMutateAndPinnedReads(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	q := core.QueryJSON{Agg: "SUM", Attr: "price"}

	var before BoundResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: q}, &before); code != 200 {
		t.Fatalf("bound: %d (%s)", code, raw)
	}

	schema := store.Schema()
	add := AddRequest{Constraints: []core.PCJSON{core.EncodePC(schema, core.MustPC(
		predicate.NewBuilder(schema).Range("utc", 18, 22).Build().Named("evening"),
		map[string]domain.Interval{"price": domain.NewInterval(50, 450)}, 3, 9))}}
	var added AddResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/store/add", add, &added); code != 200 {
		t.Fatalf("add: %d (%s)", code, raw)
	}
	if added.Epoch <= before.Epoch || len(added.IDs) != 1 {
		t.Fatalf("add response %+v after epoch %d", added, before.Epoch)
	}

	var after BoundResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: q}, &after); code != 200 {
		t.Fatalf("rebound: %d (%s)", code, raw)
	}
	if after.Epoch != added.Epoch {
		t.Fatalf("rebound epoch %d, want %d", after.Epoch, added.Epoch)
	}
	if after.Range == before.Range {
		t.Fatal("mutation did not move the SUM range; fixture too weak")
	}

	var pinned BoundResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/bound",
		BoundRequest{Query: q, Epoch: &before.Epoch}, &pinned); code != 200 {
		t.Fatalf("pinned bound: %d (%s)", code, raw)
	}
	if pinned.Epoch != before.Epoch || pinned.Range != before.Range {
		t.Fatalf("pinned read %+v, want %+v", pinned, before)
	}

	var removed MutateResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/store/remove",
		RemoveRequest{ID: added.IDs[0]}, &removed); code != 200 {
		t.Fatalf("remove: %d (%s)", code, raw)
	}
	var restored BoundResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: q}, &restored); code != 200 {
		t.Fatal("bound after remove failed")
	}
	if restored.Epoch != removed.Epoch || restored.Range != before.Range {
		t.Fatalf("after remove: %+v, want range %+v at epoch %d", restored, before.Range, removed.Epoch)
	}
}

// TestMutationEpochPinnableWithoutRead checks the race-free mutate →
// pinned-read chain: an epoch returned by a mutation must stay pinnable
// even when further mutations land before any read binds it.
func TestMutationEpochPinnableWithoutRead(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	schema := store.Schema()
	mk := func(name string, khi int) AddRequest {
		return AddRequest{Constraints: []core.PCJSON{core.EncodePC(schema, core.MustPC(
			predicate.NewBuilder(schema).Range("utc", 2, 4).Build().Named(name),
			map[string]domain.Interval{"price": domain.NewInterval(0, 100)}, 0, khi))}}
	}
	var first, second AddResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/store/add", mk("a", 3), &first); code != 200 {
		t.Fatalf("add: %d (%s)", code, raw)
	}
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/store/add", mk("b", 5), &second); code != 200 {
		t.Fatalf("add: %d (%s)", code, raw)
	}
	if second.Epoch != first.Epoch+1 {
		t.Fatalf("epochs %d, %d: not consecutive", first.Epoch, second.Epoch)
	}
	// Pin to the first mutation's epoch: no read ever bound it, but the
	// mutation itself must have registered it.
	var pinned BoundResponse
	code, raw := doJSON(t, "POST", ts.URL+"/v1/bound",
		BoundRequest{Query: core.QueryJSON{Agg: "COUNT"}, Epoch: &first.Epoch}, &pinned)
	if code != 200 {
		t.Fatalf("pinned bound at mutation epoch %d: %d (%s)", first.Epoch, code, raw)
	}
	if pinned.Epoch != first.Epoch {
		t.Fatalf("pinned read at epoch %d, want %d", pinned.Epoch, first.Epoch)
	}
}

// TestReplaceEndpoint swaps a constraint in place and checks the epoch and
// 404 behaviour for unknown ids.
func TestReplaceEndpoint(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	var st StoreResponse
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/store", nil, &st); code != 200 {
		t.Fatalf("store: %d (%s)", code, raw)
	}
	if len(st.IDs) != store.Len() || !st.Closed {
		t.Fatalf("store response %+v", st)
	}
	// Tighten the "morning" constraint (index 1).
	repl := ReplaceRequest{ID: st.IDs[1], Constraint: st.Constraints[1]}
	repl.Constraint.KHi = 10
	var mresp MutateResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/store/replace", repl, &mresp); code != 200 {
		t.Fatalf("replace: %d (%s)", code, raw)
	}
	if mresp.Epoch != store.Epoch() {
		t.Fatalf("replace epoch %d, store at %d", mresp.Epoch, store.Epoch())
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/store/replace",
		ReplaceRequest{ID: 9999, Constraint: st.Constraints[1]}, nil); code != http.StatusNotFound {
		t.Fatalf("replace unknown id: status %d, want 404", code)
	}
}

// TestMalformedRequests table-drives the 4xx surface: bad JSON, bad queries,
// bad constraints, unknown ids, missing epochs, wrong methods.
func TestMalformedRequests(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"bound not json", "POST", "/v1/bound", "not json", 400, "parsing request body"},
		{"bound unknown agg", "POST", "/v1/bound", `{"query":{"agg":"MEDIAN"}}`, 400, "unknown aggregate"},
		{"bound missing attr", "POST", "/v1/bound", `{"query":{"agg":"SUM"}}`, 400, "needs an attr"},
		{"bound unknown attr", "POST", "/v1/bound", `{"query":{"agg":"SUM","attr":"weight"}}`, 400, "unknown attribute"},
		{"bound unknown where attr", "POST", "/v1/bound", `{"query":{"agg":"COUNT","where":{"weight":[0,1]}}}`, 400, "unknown where attribute"},
		{"bound unretained epoch", "POST", "/v1/bound", `{"query":{"agg":"COUNT"},"epoch":999}`, 410, "not retained"},
		{"batch empty", "POST", "/v1/batch", `{"queries":[]}`, 400, "no queries"},
		{"batch bad query", "POST", "/v1/batch", `{"queries":[{"agg":"COUNT"},{"agg":"NOPE"}]}`, 400, "query 1"},
		{"batch bad parallelism", "POST", "/v1/batch", `{"queries":[{"agg":"COUNT"}],"parallelism":-2}`, 400, "parallelism"},
		{"add empty", "POST", "/v1/store/add", `{"constraints":[]}`, 400, "no constraints"},
		{"add bad window", "POST", "/v1/store/add", `{"constraints":[{"predicate":{"utc":[1,2]},"klo":5,"khi":2}]}`, 400, "frequency window"},
		{"add unknown attr", "POST", "/v1/store/add", `{"constraints":[{"predicate":{"weight":[1,2]},"khi":2}]}`, 400, "unknown predicate attribute"},
		{"remove not json", "POST", "/v1/store/remove", `{`, 400, "parsing request body"},
		{"remove unknown id", "POST", "/v1/store/remove", `{"id":424242}`, 404, "no constraint"},
		{"replace bad constraint", "POST", "/v1/store/replace", `{"id":1,"constraint":{"predicate":{"utc":[1,2]},"klo":3,"khi":1}}`, 400, "frequency window"},
		{"bound wrong method", "GET", "/v1/bound", "", 405, ""},
		{"unknown path", "POST", "/v1/nope", "{}", 404, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, raw, tc.wantCode)
			}
			if tc.wantErr == "" {
				return
			}
			var er ErrorResponse
			if err := json.Unmarshal(raw, &er); err != nil {
				t.Fatalf("error body %q is not an ErrorResponse: %v", raw, err)
			}
			if !strings.Contains(er.Error, tc.wantErr) {
				t.Fatalf("error %q, want substring %q", er.Error, tc.wantErr)
			}
		})
	}
	// Mutations must not have slipped through: the store is untouched (the
	// boot-time MustAdd accounts for epoch 1).
	if store.Epoch() != 1 || store.Len() != 4 {
		t.Fatalf("malformed requests mutated the store: epoch %d, len %d", store.Epoch(), store.Len())
	}
}

// TestBackpressure429 saturates the limiter directly and checks that query
// endpoints shed load with 429 + Retry-After while mutations and health
// stay available, then recover once capacity frees up.
func TestBackpressure429(t *testing.T) {
	store := testStore(t)
	s := New(store, nil, Config{MaxInflight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	granted, ok := s.lim.tryAcquire(1)
	if !ok {
		t.Fatal("could not saturate the limiter")
	}
	code, raw := doJSON(t, "POST", ts.URL+"/v1/bound",
		BoundRequest{Query: core.QueryJSON{Agg: "COUNT"}}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated bound: status %d (%s), want 429", code, raw)
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || !strings.Contains(er.Error, "capacity") {
		t.Fatalf("429 body %q", raw)
	}
	resp, err := http.Post(ts.URL+"/v1/bound", "application/json",
		strings.NewReader(`{"query":{"agg":"COUNT"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Batches self-admit by fan-out weight, so a saturated limiter rejects
	// them too.
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/batch",
		BatchRequest{Queries: testQueries()}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: status %d (%s), want 429", code, raw)
	}
	// Health and mutations are not admission-controlled.
	if code, _ := doJSON(t, "GET", ts.URL+"/healthz", nil, nil); code != 200 {
		t.Fatalf("healthz during saturation: %d", code)
	}
	s.lim.release(granted)
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/bound",
		BoundRequest{Query: core.QueryJSON{Agg: "COUNT"}}, nil); code != 200 {
		t.Fatalf("bound after release: %d (%s)", code, raw)
	}
	if got, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, nil); got != 200 {
		t.Fatal("metrics failed")
	}
}

// TestConcurrentTraffic hammers bound/batch/mutate from many goroutines
// (run under -race in CI): every response must be well-formed, and reads
// must never observe a torn store.
func TestConcurrentTraffic(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch (w + i) % 3 {
				case 0:
					var resp BoundResponse
					code, raw := doJSON(t, "POST", ts.URL+"/v1/bound",
						BoundRequest{Query: core.QueryJSON{Agg: "SUM", Attr: "price"}}, &resp)
					if code != 200 && code != 429 {
						errCh <- fmt.Errorf("bound: %d (%s)", code, raw)
					}
					if code == 200 && resp.Range.Lo > resp.Range.Hi {
						errCh <- fmt.Errorf("inverted SUM range %+v", resp.Range)
					}
				case 1:
					code, raw := doJSON(t, "POST", ts.URL+"/v1/batch",
						BatchRequest{Queries: testQueries()}, nil)
					if code != 200 && code != 429 {
						errCh <- fmt.Errorf("batch: %d (%s)", code, raw)
					}
				case 2:
					var added AddResponse
					schema := store.Schema()
					add := AddRequest{Constraints: []core.PCJSON{core.EncodePC(schema, core.MustPC(
						predicate.NewBuilder(schema).Range("utc", float64(w), float64(w+2)).Build(),
						map[string]domain.Interval{"price": domain.NewInterval(0, 100)}, 0, 3))}}
					if code, raw := doJSON(t, "POST", ts.URL+"/v1/store/add", add, &added); code != 200 {
						errCh <- fmt.Errorf("add: %d (%s)", code, raw)
						continue
					}
					if code, raw := doJSON(t, "POST", ts.URL+"/v1/store/remove",
						RemoveRequest{ID: added.IDs[0]}, nil); code != 200 {
						errCh <- fmt.Errorf("remove: %d (%s)", code, raw)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestGracefulShutdownDrain starts a heavy batch, waits until it is
// in-flight (the limiter slot is held), then shuts the server down: the
// batch must complete with 200 — drained, not dropped — and Shutdown must
// return cleanly.
func TestGracefulShutdownDrain(t *testing.T) {
	store := testStore(t)
	s := New(store, nil, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// A batch heavy enough to still be running when Shutdown begins:
	// sequential on purpose, repeated queries defeat neither MILP nor LP work.
	queries := make([]core.QueryJSON, 400)
	for i := range queries {
		queries[i] = testQueries()[i%len(testQueries())]
	}
	type result struct {
		code int
		resp BatchResponse
		err  error
	}
	done := make(chan result, 1)
	go func() {
		raw, _ := json.Marshal(BatchRequest{Queries: queries, Parallelism: 1})
		resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(raw))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var br BatchResponse
		body, _ := io.ReadAll(resp.Body)
		_ = json.Unmarshal(body, &br)
		done <- result{code: resp.StatusCode, resp: br}
	}()

	// Wait for the batch to hold its admission slot (or, if the machine is
	// absurdly fast, to have finished already — the assertion below covers
	// both).
	deadline := time.Now().Add(5 * time.Second)
	for s.lim.inflight() == 0 && time.Now().Before(deadline) {
		select {
		case r := <-done:
			done <- r
			deadline = time.Now() // already finished; proceed to shutdown
		default:
			time.Sleep(time.Millisecond)
		}
	}

	s.StartDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight batch dropped during shutdown: %v", r.err)
	}
	if r.code != http.StatusOK || len(r.resp.Ranges) != len(queries) {
		t.Fatalf("in-flight batch: status %d, %d ranges (want 200, %d)", r.code, len(r.resp.Ranges), len(queries))
	}
}

// TestHealthzDraining checks the ok → draining transition.
func TestHealthzDraining(t *testing.T) {
	store := testStore(t)
	s := New(store, nil, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var h HealthResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/healthz", nil, &h); code != 200 || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, h)
	}
	s.StartDraining()
	code, raw := doJSON(t, "GET", ts.URL+"/healthz", nil, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d (%s), want 503", code, raw)
	}
	var dr HealthResponse
	if err := json.Unmarshal(raw, &dr); err != nil || dr.Status != "draining" {
		t.Fatalf("draining body %q", raw)
	}
}

// TestMetricsEndpoint checks the gauge/counter surface the CI gauntlet and
// dashboards scrape.
func TestMetricsEndpoint(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: core.QueryJSON{Agg: "COUNT"}}, nil)
	mutateStore(t, store)
	doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: core.QueryJSON{Agg: "COUNT"}}, nil)
	code, raw := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	body := string(raw)
	for _, want := range []string{
		"pcserved_store_epoch 2",
		"pcserved_store_constraints 5",
		`pcserved_requests_total{endpoint="bound",code="200"} 2`,
		`pcserved_request_seconds{endpoint="bound",quantile="0.99"}`,
		"pcserved_cache_hits_total",
		"pcserved_inflight_capacity",
		"pcserved_rejected_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestBound400NamesQuery is the wire-layer regression test for actionable
// /v1/bound errors: a 400 body must identify the query that caused it —
// aggregate, attribute, and where clause — not just the validation failure.
func TestBound400NamesQuery(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	code, raw := doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{
		Query: core.QueryJSON{Agg: "MEDIAN", Attr: "price",
			Where: map[string][2]float64{"utc": {3, 9}}},
	}, nil)
	if code != 400 {
		t.Fatalf("status %d, want 400 (body %s)", code, raw)
	}
	body := string(raw)
	for _, want := range []string{"MEDIAN", "price", "utc in [3, 9]", "unknown aggregate"} {
		if !strings.Contains(body, want) {
			t.Errorf("400 body %q does not identify the query (missing %q)", body, want)
		}
	}
	// Same contract for batch entries: the failing query's index and body.
	code, raw = doJSON(t, "POST", ts.URL+"/v1/batch", BatchRequest{
		Queries: []core.QueryJSON{{Agg: "COUNT"}, {Agg: "NOPE", Attr: "price"}},
	}, nil)
	if code != 400 {
		t.Fatalf("batch status %d, want 400 (body %s)", code, raw)
	}
	for _, want := range []string{"query 1", "NOPE(price)"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("batch 400 body %q missing %q", raw, want)
		}
	}
}

// TestMetricsSchedulerAndCellCache: /metrics exports the shared scheduler's
// counters and the cell-bound cache's hit/miss counters, and repeated
// traffic actually hits the cell cache.
func TestMetricsSchedulerAndCellCache(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	q := core.QueryJSON{Agg: "MIN", Attr: "price", Where: map[string][2]float64{"utc": {0, 12}}}
	for i := 0; i < 3; i++ {
		if code, raw := doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: q}, nil); code != 200 {
			t.Fatalf("bound: %d (%s)", code, raw)
		}
	}
	code, raw := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	body := string(raw)
	for _, want := range []string{
		"pcserved_sched_workers ",
		"pcserved_sched_queue_depth ",
		"pcserved_sched_tasks_total ",
		"pcserved_cellcache_hits_total ",
		"pcserved_cellcache_misses_total ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
	var hits int64
	for _, line := range strings.Split(body, "\n") {
		if n, err := fmt.Sscanf(line, "pcserved_cellcache_hits_total %d", &hits); n == 1 && err == nil {
			break
		}
	}
	if hits == 0 {
		t.Errorf("repeated MIN traffic produced no cell-cache hits:\n%s", body)
	}
}
