package server

import (
	"encoding/json"
	"math"
	"testing"

	"pcbound/internal/core"
)

// TestNumRoundTrip checks the non-finite-aware float encoding: finite values
// must round-trip bit-exactly, and ±Inf/NaN must survive as their string
// forms (plain JSON numbers cannot carry them).
func TestNumRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		v    float64
		want string
	}{
		{"zero", 0, "0"},
		{"negative zero", math.Copysign(0, -1), "-0"},
		{"integer", 42, "42"},
		{"fraction", 129.99, "129.99"},
		{"tiny", 5e-324, "5e-324"},
		{"huge", 1.7976931348623157e+308, "1.7976931348623157e+308"},
		{"pos inf", math.Inf(1), `"+Inf"`},
		{"neg inf", math.Inf(-1), `"-Inf"`},
		{"nan", math.NaN(), `"NaN"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw, err := json.Marshal(Num(tc.v))
			if err != nil {
				t.Fatal(err)
			}
			if string(raw) != tc.want {
				t.Fatalf("encoded %q, want %q", raw, tc.want)
			}
			var back Num
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(tc.v) {
				if !math.IsNaN(float64(back)) {
					t.Fatalf("NaN decoded to %v", back)
				}
				return
			}
			if math.Float64bits(float64(back)) != math.Float64bits(tc.v) {
				t.Fatalf("round trip %v -> %v (bits differ)", tc.v, float64(back))
			}
		})
	}
}

// TestNumDecodeForms checks accepted and rejected textual forms.
func TestNumDecodeForms(t *testing.T) {
	var n Num
	if err := json.Unmarshal([]byte(`"Inf"`), &n); err != nil || !math.IsInf(float64(n), 1) {
		t.Fatalf(`"Inf" decoded to %v, %v`, n, nil)
	}
	for _, bad := range []string{`"infinity"`, `"1.5"`, `"nan "`, `{}`, `[1]`, `true`} {
		if err := json.Unmarshal([]byte(bad), &n); err == nil {
			t.Errorf("decoding %s succeeded, want error", bad)
		}
	}
}

// TestRangeJSONRoundTrip table-drives the range wire type over finite,
// infinite, inverted (empty), and flag-carrying ranges: the reconstructed
// core.Range must be bit-identical.
func TestRangeJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		r    core.Range
	}{
		{"zero", core.Range{}},
		{"finite exact", core.Range{Lo: -12.5, Hi: 99.875, LoExact: true, HiExact: true, Cells: 7, SATChecks: 123}},
		{"loose with flags", core.Range{Lo: 0.1, Hi: 0.2, MaybeEmpty: true, Reconciled: true}},
		{"unbounded above", core.Range{Lo: 3, Hi: math.Inf(1), LoExact: true}},
		{"unbounded below", core.Range{Lo: math.Inf(-1), Hi: -7}},
		{"empty inverted", core.Range{Lo: math.Inf(1), Hi: math.Inf(-1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw, err := json.Marshal(RangeToJSON(tc.r))
			if err != nil {
				t.Fatal(err)
			}
			var rj RangeJSON
			if err := json.Unmarshal(raw, &rj); err != nil {
				t.Fatal(err)
			}
			got := rj.Range()
			if math.Float64bits(got.Lo) != math.Float64bits(tc.r.Lo) ||
				math.Float64bits(got.Hi) != math.Float64bits(tc.r.Hi) {
				t.Fatalf("endpoints %v, want %v", got, tc.r)
			}
			got.Lo, got.Hi = tc.r.Lo, tc.r.Hi // compare the rest structurally
			if got != tc.r {
				t.Fatalf("flags %+v, want %+v", got, tc.r)
			}
		})
	}
}

// TestRequestWireRoundTrip checks the request envelopes: the optional epoch
// pointer must survive (and stay absent when unset), and query/constraint
// payloads must ride the shared core wire types unchanged.
func TestRequestWireRoundTrip(t *testing.T) {
	epoch := uint64(42)
	breq := BoundRequest{
		Query: core.QueryJSON{Agg: "SUM", Attr: "price", Where: map[string][2]float64{"utc": {3, 9}}},
		Epoch: &epoch,
	}
	raw, _ := json.Marshal(breq)
	var back BoundRequest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Epoch == nil || *back.Epoch != epoch || back.Query.Agg != "SUM" || back.Query.Where["utc"] != [2]float64{3, 9} {
		t.Fatalf("bound request round trip: %+v", back)
	}

	raw, _ = json.Marshal(BoundRequest{Query: core.QueryJSON{Agg: "COUNT"}})
	var unpinned BoundRequest
	if err := json.Unmarshal(raw, &unpinned); err != nil {
		t.Fatal(err)
	}
	if unpinned.Epoch != nil {
		t.Fatalf("absent epoch decoded as %d", *unpinned.Epoch)
	}

	areq := AddRequest{Constraints: []core.PCJSON{{
		Name:      "late",
		Predicate: map[string][2]float64{"utc": {21, 23}},
		Values:    map[string][2]float64{"price": {0, 80}},
		KLo:       1, KHi: 9,
	}}}
	raw, _ = json.Marshal(areq)
	var aback AddRequest
	if err := json.Unmarshal(raw, &aback); err != nil {
		t.Fatal(err)
	}
	if len(aback.Constraints) != 1 {
		t.Fatalf("add request round trip: %+v", aback)
	}
	c, d := areq.Constraints[0], aback.Constraints[0]
	if c.Name != d.Name || c.KLo != d.KLo || c.KHi != d.KHi ||
		d.Predicate["utc"] != c.Predicate["utc"] || d.Values["price"] != c.Values["price"] {
		t.Fatalf("add request round trip: %+v", aback)
	}

	rreq := ReplaceRequest{ID: 7, Constraint: areq.Constraints[0]}
	raw, _ = json.Marshal(rreq)
	var rback ReplaceRequest
	if err := json.Unmarshal(raw, &rback); err != nil {
		t.Fatal(err)
	}
	if rback.ID != 7 || rback.Constraint.KHi != 9 {
		t.Fatalf("replace request round trip: %+v", rback)
	}
}
