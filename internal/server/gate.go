package server

import (
	"net/http"
	"sync/atomic"
)

// RecoveryGate lets pcserved bind its listener and answer health checks
// while WAL recovery is still replaying. Until Activate is called every
// request — mutations and reads alike, since neither has a store to run
// against yet — gets a 503 with Retry-After, and /healthz reports
// "recovering" so orchestrators can tell a replaying server from a dead
// one. Activate atomically swaps in the real server's handler.
type RecoveryGate struct {
	inner atomic.Pointer[http.Handler]
}

// Activate routes all subsequent requests to h. Call it once, after
// recovery completes and the Server is built.
func (g *RecoveryGate) Activate(h http.Handler) {
	g.inner.Store(&h)
}

func (g *RecoveryGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := g.inner.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	if r.Method == http.MethodGet && r.URL.Path == "/healthz" {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "recovering"})
		return
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "recovering: replaying write-ahead log")
}
