// Package server implements pcserved's HTTP JSON API over a core.Store and
// its engines: hard aggregate ranges as a network service.
//
// The serving contract mirrors the library's snapshot semantics. Every read
// request (/v1/bound, /v1/batch) is pinned to one Store snapshot: either the
// latest (the default) or, via the request's "epoch" field, an older
// snapshot the server still retains — so an auditor can keep re-asking
// questions of a frozen constraint state while writers mutate the store
// underneath. Mutations (/v1/store/add|remove|replace) return the stable
// PCIDs they touched and the store epoch they produced. Engines come from a
// rebind-on-demand pool that shares one SAT solver lineage, solve-context
// pool, and scoped decomposition cache across all requests and epochs, so a
// mutate→rebound cycle keeps unrelated cached decompositions live.
//
// Tiered precision: reads may carry "precision" ("exact", "auto" or
// "summary") and "max_width" fields. "auto" answers from the store's summary
// tier (core.AttachSummary — sound outer intervals in microseconds, no
// solver work) whenever the loose interval fits the width budget, and
// escalates to the exact path otherwise; every response tags which tier
// produced it. The exact path stays bit-identical to a server without the
// tier.
//
// Production posture: admission control bounds in-flight query requests
// (excess load is rejected with 429 + Retry-After rather than queued without
// bound), with a degrade mode in between: tier-opted requests that would be
// rejected at capacity are answered from the summary tier instead — sound,
// tagged "summary", no solver work — so 429 is the last resort, not the
// overload behavior. /metrics exposes per-endpoint latency quantiles,
// store/cache and tier counters in Prometheus text format, /healthz flips to
// 503 once draining begins, and shutdown drains in-flight bounds (an
// accepted request always completes; see core.BoundBatchCtx for the
// cancellation granularity).
//
// Replication: a server constructed with Config.Replica is a read-only
// follower. Mutations are refused with 503 plus the primary's address; the
// replication driver feeds it durable WAL records through ApplyReplicated,
// which commits them on the same path as recovery — so every applied epoch
// is pinnable, and an epoch-pinned read on the follower is byte-identical
// to the primary's at the same epoch. Reads default to the applied
// frontier; a request carrying "min_epoch" waits (up to the staleness
// budget) for the frontier to reach it, then 412s rather than answer
// stale. A durable primary serves the other side of the link: /v1/wal
// endpoints expose its checkpoints and segments, long-polling at the live
// edge. /healthz gains a role and a replication block; /metrics gains
// pcserved_repl_* gauges.
package server

import (
	"encoding/json"
	"fmt"
	"math"

	"pcbound/internal/core"
)

// Wire types. Constraints ride core.PCJSON and queries core.QueryJSON — the
// same encoding used by spec files and pcrange scripts (internal/core's
// json.go), so a spec checked into version control can be POSTed verbatim.

// Num is a float64 that also round-trips the non-finite values JSON numbers
// cannot carry: ±Inf and NaN are encoded as the strings "+Inf", "-Inf" and
// "NaN". Finite values use the standard shortest round-trip encoding, so
// decoding reproduces the exact bits — the serving layer's ranges are
// bit-identical to the engine's, not approximately equal.
type Num float64

// MarshalJSON implements json.Marshaler.
func (n Num) MarshalJSON() ([]byte, error) {
	f := float64(n)
	switch {
	case math.IsInf(f, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(f, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(f):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(f)
}

// UnmarshalJSON implements json.Unmarshaler.
func (n *Num) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*n = Num(math.Inf(1))
		case "-Inf":
			*n = Num(math.Inf(-1))
		case "NaN":
			*n = Num(math.NaN())
		default:
			return fmt.Errorf("server: invalid numeric string %q", s)
		}
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*n = Num(f)
	return nil
}

// RangeJSON serializes a core.Range.
type RangeJSON struct {
	Lo         Num   `json:"lo"`
	Hi         Num   `json:"hi"`
	LoExact    bool  `json:"lo_exact,omitempty"`
	HiExact    bool  `json:"hi_exact,omitempty"`
	MaybeEmpty bool  `json:"maybe_empty,omitempty"`
	Reconciled bool  `json:"reconciled,omitempty"`
	Cells      int   `json:"cells,omitempty"`
	SATChecks  int64 `json:"sat_checks,omitempty"`
}

// RangeToJSON converts an engine range to its wire form.
func RangeToJSON(r core.Range) RangeJSON {
	return RangeJSON{
		Lo:         Num(r.Lo),
		Hi:         Num(r.Hi),
		LoExact:    r.LoExact,
		HiExact:    r.HiExact,
		MaybeEmpty: r.MaybeEmpty,
		Reconciled: r.Reconciled,
		Cells:      r.Cells,
		SATChecks:  r.SATChecks,
	}
}

// Range converts back to the engine type.
func (rj RangeJSON) Range() core.Range {
	return core.Range{
		Lo:         float64(rj.Lo),
		Hi:         float64(rj.Hi),
		LoExact:    rj.LoExact,
		HiExact:    rj.HiExact,
		MaybeEmpty: rj.MaybeEmpty,
		Reconciled: rj.Reconciled,
		Cells:      rj.Cells,
		SATChecks:  rj.SATChecks,
	}
}

// BoundRequest is the body of POST /v1/bound. A nil Epoch reads the store's
// latest snapshot; a non-nil Epoch pins the read to that retained snapshot
// (410 Gone if the server no longer retains it).
//
// Precision and MaxWidth select the tiered-precision policy. Precision may
// be "exact" (default: the full solver, bit-identical to pre-tiering
// responses), "auto" (answer from the summary tier when its sound-but-loose
// interval is no wider than MaxWidth, escalate to exact otherwise), or
// "summary" (always prefer the summary tier). Setting MaxWidth alone
// implies "auto". Tier-opted requests also opt into degrade-before-shed: at
// capacity the server answers them from the summary tier instead of 429.
// MinEpoch is the read-your-writes gate for replicated reads: the request
// does not run until the serving node's frontier has reached that epoch. On
// a follower the request waits up to the staleness budget for the tail to
// catch up (then 412 Precondition Failed); on a primary — which IS the
// frontier — a min_epoch it has not reached is 412 immediately. A pinned
// Epoch on a follower implies min_epoch of the same value, so pin-and-read
// works against a replica that has not yet applied that epoch.
type BoundRequest struct {
	Query     core.QueryJSON `json:"query"`
	Epoch     *uint64        `json:"epoch,omitempty"`
	MinEpoch  *uint64        `json:"min_epoch,omitempty"`
	Precision string         `json:"precision,omitempty"`
	MaxWidth  *Num           `json:"max_width,omitempty"`
}

// BoundResponse reports the range, the snapshot epoch that produced it, and
// which tier answered: "exact" or "summary" (a sound outer interval).
type BoundResponse struct {
	Range     RangeJSON `json:"range"`
	Epoch     uint64    `json:"epoch"`
	Precision string    `json:"precision"`
}

// BatchRequest is the body of POST /v1/batch. Parallelism limits the worker
// fan-out for this batch: 0 uses the server default, -1 all cores; values
// are clamped to the server's configured ceiling. Precision/MaxWidth apply
// the tiered-precision policy (see BoundRequest) to every query in the
// batch; each query escalates independently.
type BatchRequest struct {
	Queries     []core.QueryJSON `json:"queries"`
	Epoch       *uint64          `json:"epoch,omitempty"`
	MinEpoch    *uint64          `json:"min_epoch,omitempty"`
	Parallelism int              `json:"parallelism,omitempty"`
	Precision   string           `json:"precision,omitempty"`
	MaxWidth    *Num             `json:"max_width,omitempty"`
}

// BatchResponse reports one range per query, in request order. Precisions
// is positionally aligned with Ranges and tags the tier that answered each
// query.
type BatchResponse struct {
	Ranges     []RangeJSON `json:"ranges"`
	Epoch      uint64      `json:"epoch"`
	Precisions []string    `json:"precisions"`
}

// tierSpecOf parses a request's precision/max_width pair into the engine's
// tiering policy. A bare max_width implies "auto"; an explicit "exact"
// ignores the budget.
func tierSpecOf(precision string, maxWidth *Num) (core.TierSpec, error) {
	var spec core.TierSpec
	switch precision {
	case "", "exact":
		spec.Mode = core.TierExact
	case "auto":
		spec.Mode = core.TierAuto
	case "summary":
		spec.Mode = core.TierForceSummary
	default:
		return spec, fmt.Errorf("invalid precision %q (want \"exact\", \"auto\" or \"summary\")", precision)
	}
	if maxWidth != nil {
		w := float64(*maxWidth)
		if math.IsNaN(w) || w < 0 {
			return spec, fmt.Errorf("invalid max_width %v (want a width >= 0)", w)
		}
		spec.MaxWidth = w
		if precision == "" {
			spec.Mode = core.TierAuto
		}
	}
	return spec, nil
}

// AddRequest is the body of POST /v1/store/add.
type AddRequest struct {
	Constraints []core.PCJSON `json:"constraints"`
}

// AddResponse reports the stable ids assigned to the added constraints
// (in request order) and the store epoch the mutation produced.
type AddResponse struct {
	IDs   []uint64 `json:"ids"`
	Epoch uint64   `json:"epoch"`
}

// RemoveRequest is the body of POST /v1/store/remove.
type RemoveRequest struct {
	ID uint64 `json:"id"`
}

// ReplaceRequest is the body of POST /v1/store/replace: the constraint with
// the given stable id is swapped in place (id and position survive).
type ReplaceRequest struct {
	ID         uint64      `json:"id"`
	Constraint core.PCJSON `json:"constraint"`
}

// MutateResponse reports the store epoch a remove/replace produced.
type MutateResponse struct {
	Epoch uint64 `json:"epoch"`
}

// StoreResponse is the body of GET /v1/store: a spec-file-compatible view of
// one snapshot (DecodeSet on Schema+Constraints rebuilds the exact constraint
// multiset) plus the stable ids, positionally aligned with Constraints, and
// the snapshot's epoch.
type StoreResponse struct {
	Schema      []core.AttrJSON `json:"schema"`
	Constraints []core.PCJSON   `json:"constraints"`
	IDs         []uint64        `json:"ids"`
	Epoch       uint64          `json:"epoch"`
	Closed      bool            `json:"closed"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status      string           `json:"status"` // "ok", "recovering", "wedged", "draining" or "replication_failed"
	Role        string           `json:"role"`   // "primary" or "follower"
	Epoch       uint64           `json:"epoch"`
	Constraints int              `json:"constraints"`
	Durability  *DurabilityJSON  `json:"durability,omitempty"`
	Replication *ReplicationJSON `json:"replication,omitempty"`
}

// ReplicationJSON reports a follower's tail progress on /healthz.
type ReplicationJSON struct {
	// Primary is the advertised primary base URL (also returned with
	// rejected mutations).
	Primary string `json:"primary,omitempty"`
	// Source is where the tail reads the log from (directory or URL).
	Source string `json:"source,omitempty"`
	// AppliedEpoch is the follower's frontier: reads serve at this epoch.
	AppliedEpoch uint64 `json:"applied_epoch"`
	// PrimaryEpoch is the primary's frontier as last observed by the tail.
	PrimaryEpoch uint64 `json:"primary_epoch"`
	// LagRecords is PrimaryEpoch - AppliedEpoch (every record is one epoch),
	// clamped at zero; LagSeconds is how long the frontier has been stuck
	// while lagging (0 when caught up).
	LagRecords uint64  `json:"lag_records"`
	LagSeconds float64 `json:"lag_seconds"`
	// AppliedRecords counts records applied since this process started.
	AppliedRecords uint64 `json:"applied_records"`
	// TailRestarts counts transient tail failures the apply loop retried.
	TailRestarts uint64 `json:"tail_restarts"`
	// StaleRejects counts epoch-gated reads that 412ed.
	StaleRejects uint64 `json:"stale_rejects"`
	// Rebootstraps counts in-place recoveries from falling behind
	// truncation: the tail re-bootstrapped from a newer checkpoint and the
	// serving state was swapped without restarting the process.
	Rebootstraps uint64 `json:"rebootstraps"`
	// Error, when set, means replication failed terminally: the follower
	// serves its frozen frontier but will not advance.
	Error string `json:"error,omitempty"`
}

// DurabilityJSON reports WAL and recovery state on /healthz when the server
// runs with a data directory.
type DurabilityJSON struct {
	// Mode is the ack contract: "always" (fsync before ack) or "none".
	Mode string `json:"mode"`
	// DurableEpoch is the highest epoch durable per the mode.
	DurableEpoch uint64 `json:"durable_epoch"`
	// CheckpointEpoch is the checkpoint this process recovered from.
	CheckpointEpoch uint64 `json:"checkpoint_epoch"`
	// RecoveredEpoch is the epoch reached after replaying the log tail.
	RecoveredEpoch uint64 `json:"recovered_epoch"`
	// ReplayedRecords counts log records replayed on top of the checkpoint.
	ReplayedRecords int `json:"replayed_records"`
	// TornTailHealed reports that recovery found (and truncated away) a
	// partial final record — the expected residue of a crash mid-append.
	TornTailHealed bool `json:"torn_tail_healed,omitempty"`
	// SkippedCheckpoints counts corrupt checkpoints recovery fell past.
	SkippedCheckpoints int `json:"skipped_checkpoints,omitempty"`
	// Wedged means a write or fsync failed: mutations are disabled until
	// restart, reads still serve.
	Wedged bool `json:"wedged,omitempty"`
}

// ErrorResponse is the body of every non-2xx response. Primary is set on a
// replica's mutation rejections: the base URL writes should go to.
type ErrorResponse struct {
	Error   string `json:"error"`
	Primary string `json:"primary,omitempty"`
}
