package server

import (
	"errors"
	"testing"

	"pcbound/internal/core"
)

// TestPoolRebindOnDemand checks that Latest only rebinds when the store
// moved, and that the whole pool stays one Rebind lineage (shared cache:
// CacheStats from any engine reflect the lineage's counters).
func TestPoolRebindOnDemand(t *testing.T) {
	store := testStore(t)
	p := newEnginePool(store, nil, core.Options{}, 4)
	e0 := p.Latest()
	if again := p.Latest(); again != e0 {
		t.Fatal("Latest rebound without a mutation")
	}
	mutateStore(t, store)
	e1 := p.Latest()
	if e1 == e0 {
		t.Fatal("Latest did not rebind after a mutation")
	}
	if e1.Snapshot().Epoch() != store.Epoch() {
		t.Fatalf("latest engine at epoch %d, store at %d", e1.Snapshot().Epoch(), store.Epoch())
	}
}

// TestPoolPinnedEpochs checks retention: epochs a request bound stay
// servable until the cap evicts them, oldest first.
func TestPoolPinnedEpochs(t *testing.T) {
	store := testStore(t)
	p := newEnginePool(store, nil, core.Options{}, 2)
	e0 := p.Latest()
	epoch0 := e0.Snapshot().Epoch()
	mutateStore(t, store)
	if _, err := p.At(store.Epoch()); err != nil {
		// At must roll forward on its own: the mutation's epoch is pinnable
		// even though no unpinned read happened in between.
		t.Fatalf("At(current) after mutation: %v", err)
	}
	if got, err := p.At(epoch0); err != nil || got != e0 {
		t.Fatalf("At(%d) = %v, %v; want the original engine", epoch0, got, err)
	}
	// A second mutation overflows retain=2: epoch0 must be evicted.
	mutateStore(t, store)
	if _, err := p.At(store.Epoch()); err != nil {
		t.Fatalf("At(current): %v", err)
	}
	if _, err := p.At(epoch0); !errors.Is(err, ErrEpochNotRetained) {
		t.Fatalf("At(evicted epoch %d) err = %v, want ErrEpochNotRetained", epoch0, err)
	}
	// Epochs never snapshotted by any request are not retained either.
	if _, err := p.At(999); !errors.Is(err, ErrEpochNotRetained) {
		t.Fatalf("At(999) err = %v, want ErrEpochNotRetained", err)
	}
}

// TestPoolPinnedResultsStable is the serving-layer version of the snapshot
// guarantee: after mutations, a pinned engine must return bit-identical
// ranges to what it returned before the store moved.
func TestPoolPinnedResultsStable(t *testing.T) {
	store := testStore(t)
	p := newEnginePool(store, nil, core.Options{}, 4)
	e0 := p.Latest()
	epoch0 := e0.Snapshot().Epoch()
	q := core.Query{Agg: core.Sum, Attr: "price"}
	before, err := e0.Bound(q)
	if err != nil {
		t.Fatal(err)
	}
	mutateStore(t, store)
	latest, err2 := p.Latest().Bound(q)
	if err2 != nil {
		t.Fatal(err2)
	}
	if latest == before {
		t.Fatal("mutation did not change the latest SUM range; fixture too weak")
	}
	pinned, err := p.At(epoch0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := pinned.Bound(q)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("pinned range moved: %v vs %v", after, before)
	}
}
