package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"pcbound/internal/core"
	"pcbound/internal/sat"
	"pcbound/internal/wal"
)

// Config tunes a Server. The zero value is serviceable.
type Config struct {
	// MaxInflight bounds in-flight query work in weighted units: a single
	// bound weighs 1, a batch weighs its worker fan-out, so the limit caps
	// concurrent solver work rather than request count. Excess requests get
	// 429. <= 0 means 4×GOMAXPROCS — enough to keep every core busy, small
	// enough that overload turns into backpressure instead of memory growth.
	MaxInflight int
	// RetainEpochs caps the snapshot-pinned engines kept for old epochs
	// (<= 0 means DefaultRetainEpochs). The latest engine always counts as
	// one of them.
	RetainEpochs int
	// MaxParallelism caps a batch request's worker fan-out (and is the
	// default when a request leaves Parallelism at 0). <= 0 means
	// GOMAXPROCS.
	MaxParallelism int
	// MaxBatch caps the queries accepted in one /v1/batch request
	// (<= 0 means 4096).
	MaxBatch int
	// Engine configures the engines the pool creates (cache size, MILP
	// options…).
	Engine core.Options
	// Durability, when set, gates every mutation ack on the WAL: the
	// response is written only after the mutation's epoch is durable per the
	// manager's fsync mode. A wedged log (failed write or fsync) turns all
	// further mutations into 503s while reads keep serving.
	Durability *wal.Manager
	// DisableSummary turns off the tiered-precision overlay: requests with
	// precision/max_width fields always escalate to the exact path, and the
	// degrade-before-shed mode is unavailable (saturation always 429s).
	DisableSummary bool
	// Replica, when set, runs this server as a read-only log-shipping
	// follower (see Replica): mutations 503 with a primary hint, reads serve
	// the applied frontier, and the owner feeds ApplyReplicated from a
	// wal.Tailer. Mutually exclusive with Durability in practice — a
	// follower's log lives on the primary.
	Replica *Replica
}

// maxBodyBytes bounds request bodies; a constraint batch some orders of
// magnitude beyond realistic use is a client bug, not a workload.
const maxBodyBytes = 8 << 20

// serving is the swappable half of a Server: the store and everything bound
// to it (engine pool, closure solver, summary tier). Handlers snapshot it
// once per request via Server.serving(), so a follower's re-bootstrap can
// atomically replace the whole bundle while in-flight reads finish against
// the immutable snapshots they already hold.
type serving struct {
	store *core.Store
	pool  *enginePool
	// closure is the solver backing /v1/store closure checks, separate from
	// the engine pool's solver lineage only so closure SAT work never skews
	// the serving-path solver statistics exported at /metrics. (Solvers are
	// safe for concurrent use.)
	closure *sat.Solver
	// tier is the summary overlay every pooled engine shares (nil when
	// Config.DisableSummary).
	tier *core.SummaryOverlay
}

// Server serves the pcserved HTTP API over one Store. Create with New,
// mount via Handler, and call StartDraining before http.Server.Shutdown so
// health checks report the drain.
type Server struct {
	// sv is the current serving state. Swapped only by Rebootstrap (under
	// mutMu); read lock-free by handlers, one load per request.
	sv atomic.Pointer[serving]
	// engineCfg, retain, summaryOn are what newServing needs to rebuild the
	// serving bundle around a re-bootstrapped store.
	engineCfg core.Options
	retain    int
	summaryOn bool

	lim *limiter
	met *metrics
	// mutMu serializes this server's mutations so each response reports
	// exactly the epoch its mutation produced, and so that epoch's engine is
	// registered in the pool before the next mutation can commit — which is
	// what makes the documented mutate → pinned-read chain race-free for
	// HTTP clients. Library-level writers sharing the store bypass this, so
	// pcserved must be the store's only writer. Rebootstrap also swaps sv
	// under it, so a swap never interleaves with a replicated apply.
	mutMu    sync.Mutex
	dur      *wal.Manager // nil when running without durability
	maxPar   int
	maxBatch int
	draining atomic.Bool
	mux      *http.ServeMux
	// tmet counts summary-tier outcomes for /metrics.
	tmet tierMetrics
	// repl is the follower-mode replication state (nil on a primary).
	repl *replState
}

// newServing bundles a store with a fresh engine pool, closure solver, and
// summary tier per the server's configuration.
func (s *Server) newServing(store *core.Store, solver *sat.Solver) *serving {
	opts := s.engineCfg
	var tier *core.SummaryOverlay
	if s.summaryOn {
		// The summary overlay rides Options.Summary into every engine the
		// pool creates, so tiered answers and escalations share one tier per
		// store.
		tier = core.AttachSummary(store)
		opts.Summary = tier
	}
	return &serving{
		store:   store,
		pool:    newEnginePool(store, solver, opts, s.retain),
		closure: sat.New(store.Schema()),
		tier:    tier,
	}
}

// serving returns the current serving state. Handlers call it once and use
// the same snapshot throughout a request: a concurrent re-bootstrap swap
// must never split one request across two stores.
func (s *Server) serving() *serving { return s.sv.Load() }

// Store returns the store currently being served. On a follower this can
// change across a Rebootstrap; callers must not cache it across mutations.
func (s *Server) Store() *core.Store { return s.serving().store }

// New builds a server over the store. The solver seeds the pool's engine
// lineage (nil for a fresh one).
func New(store *core.Store, solver *sat.Solver, cfg Config) *Server {
	maxInflight := cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	maxPar := cfg.MaxParallelism
	if maxPar <= 0 {
		maxPar = runtime.GOMAXPROCS(0)
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 4096
	}
	s := &Server{
		engineCfg: cfg.Engine,
		retain:    cfg.RetainEpochs,
		summaryOn: !cfg.DisableSummary,
		lim:       newLimiter(maxInflight),
		met:       newMetrics(),
		dur:       cfg.Durability,
		maxPar:    maxPar,
		maxBatch:  maxBatch,
	}
	s.sv.Store(s.newServing(store, solver))
	if cfg.Replica != nil {
		s.repl = newReplState(*cfg.Replica, store.Epoch())
	}
	mux := http.NewServeMux()
	// Both query endpoints self-admit after parsing: admission must see the
	// request's tier opt-in to degrade over-capacity load to summary
	// answers instead of shedding it (see handleBound).
	mux.Handle("POST /v1/bound", s.instrument("bound", s.handleBound))
	mux.Handle("POST /v1/batch", s.instrument("batch", s.handleBatch))
	mux.Handle("POST /v1/store/add", s.instrument("store_add", s.handleAdd))
	mux.Handle("POST /v1/store/remove", s.instrument("store_remove", s.handleRemove))
	mux.Handle("POST /v1/store/replace", s.instrument("store_replace", s.handleReplace))
	mux.Handle("GET /v1/store", s.instrument("store_get", s.handleStore))
	mux.Handle("GET /healthz", http.HandlerFunc(s.handleHealth))
	mux.Handle("GET /metrics", http.HandlerFunc(s.handleMetrics))
	if cfg.Durability != nil {
		// Log shipping: followers tail this node's WAL over HTTP. Like
		// healthz/metrics these stay uninstrumented — a long-polled segment
		// fetch parked at the live edge would swamp the latency quantiles.
		mux.Handle("GET /v1/wal", http.HandlerFunc(s.handleWALList))
		mux.Handle("GET /v1/wal/checkpoint/{epoch}", http.HandlerFunc(s.handleWALCheckpoint))
		mux.Handle("GET /v1/wal/segment/{start}", http.HandlerFunc(s.handleWALSegment))
	}
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDraining flips /healthz to 503 so load balancers stop routing here
// while http.Server.Shutdown lets in-flight requests finish.
func (s *Server) StartDraining() { s.draining.Store(true) }

// writeJSON serializes v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}

// decodeBody parses a JSON request body into v, with a size cap. Returns
// false after writing the 400 (or 413) response.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parsing request body: %v", err))
		return false
	}
	return true
}

// engineFor resolves the engine a read request runs against: the latest
// snapshot by default, a retained pinned one when the request names an
// epoch. Returns nil after writing the 410 response. The caller passes the
// serving snapshot it already loaded: after a follower re-bootstrap the
// fresh pool retains only the new lineage, so pins into the pre-swap
// lineage answer 410 here — never a mixed-lineage result.
func (s *Server) engineFor(w http.ResponseWriter, sv *serving, epoch *uint64) *core.Engine {
	if epoch == nil {
		return sv.pool.Latest()
	}
	e, err := sv.pool.At(*epoch)
	if err != nil {
		writeError(w, http.StatusGone, err.Error())
		return nil
	}
	return e
}

// gateMinEpoch enforces the read-your-writes gate before a read runs (see
// BoundRequest.MinEpoch). On a follower a pinned epoch implies a min_epoch
// of the same value, so a client can mutate on the primary and immediately
// pin-read the result on a replica: the read waits for the tail (up to the
// staleness budget) instead of 410ing on an epoch the replica has not
// applied yet. Requests with no epoch demands — including force-summary
// reads — never enter the gate, which is how summary answers stay available
// while a follower catches up. Returns false after writing the 412.
func (s *Server) gateMinEpoch(w http.ResponseWriter, r *http.Request, minEpoch, pinned *uint64) bool {
	var target uint64
	if minEpoch != nil {
		target = *minEpoch
	}
	if s.repl != nil && pinned != nil && *pinned > target {
		target = *pinned
	}
	if target == 0 {
		return true
	}
	if s.repl == nil {
		// A primary is the frontier: either it has reached the epoch or no
		// amount of waiting here will produce it.
		if cur := s.serving().store.Epoch(); target > cur {
			writeError(w, http.StatusPreconditionFailed,
				fmt.Sprintf("min_epoch %d is ahead of the primary's epoch %d", target, cur))
			return false
		}
		return true
	}
	if err := s.repl.await(r.Context(), target); err != nil {
		s.repl.noteStaleReject()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusPreconditionFailed, err.Error())
		return false
	}
	return true
}

func (s *Server) handleBound(w http.ResponseWriter, r *http.Request) {
	var req BoundRequest
	if !decodeBody(w, r, &req) {
		return
	}
	spec, err := tierSpecOf(req.Precision, req.MaxWidth)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !s.gateMinEpoch(w, r, req.MinEpoch, req.Epoch) {
		return
	}
	sv := s.serving()
	q, err := core.QueryFromJSON(sv.store.Schema(), req.Query)
	if err != nil {
		// Echo the query back: 400s must be actionable from the client's
		// log alone, not require request/response correlation.
		writeError(w, http.StatusBadRequest, fmt.Sprintf("query %s: %v", req.Query, err))
		return
	}
	e := s.engineFor(w, sv, req.Epoch)
	if e == nil {
		return
	}
	granted, ok := s.lim.tryAcquire(1)
	if !ok {
		// Degrade before shed: a tier-opted request at capacity is answered
		// from the summary tier — sound, tagged, and solver-free, so it
		// costs none of the capacity the limiter is protecting. 429 is the
		// last resort for exact-only requests (or when no summary exists,
		// e.g. a pinned epoch).
		if spec.Mode != core.TierExact {
			if rng, ok := e.BoundSummary(q); ok {
				s.tmet.degraded.Add(1)
				s.tmet.summaryServed.Add(1)
				writeJSON(w, http.StatusOK, BoundResponse{
					Range:     RangeToJSON(rng),
					Epoch:     e.Snapshot().Epoch(),
					Precision: core.PrecisionSummary.String(),
				})
				return
			}
		}
		s.rejectOverCapacity(w)
		return
	}
	defer s.lim.release(granted)
	rng, prec, err := e.BoundTieredCtx(r.Context(), q, spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.tmet.observe(spec, prec, rng)
	writeJSON(w, http.StatusOK, BoundResponse{
		Range:     RangeToJSON(rng),
		Epoch:     e.Snapshot().Epoch(),
		Precision: prec.String(),
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no queries")
		return
	}
	if len(req.Queries) > s.maxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d queries, cap is %d", len(req.Queries), s.maxBatch))
		return
	}
	if req.Parallelism < -1 {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("parallelism must be >= -1, got %d", req.Parallelism))
		return
	}
	spec, err := tierSpecOf(req.Precision, req.MaxWidth)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Gate before parsing: the gate can wait on the replication tail, and a
	// re-bootstrap during that wait swaps the serving state — loading it
	// after the gate keeps the parse schema and the engine on one bundle.
	if !s.gateMinEpoch(w, r, req.MinEpoch, req.Epoch) {
		return
	}
	sv := s.serving()
	queries := make([]core.Query, len(req.Queries))
	for i, qj := range req.Queries {
		q, err := core.QueryFromJSON(sv.store.Schema(), qj)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("query %d (%s): %v", i, qj, err))
			return
		}
		queries[i] = q
	}
	par := req.Parallelism
	switch {
	case par == 0:
		par = s.maxPar
	case par < 0 || par > s.maxPar:
		par = s.maxPar
	}
	if par > len(req.Queries) {
		par = len(req.Queries)
	}
	e := s.engineFor(w, sv, req.Epoch)
	if e == nil {
		return
	}
	// Admission is weighted by the batch's actual worker fan-out, so the
	// limiter bounds concurrent solver work rather than request count — a
	// flood of wide batches sheds load instead of multiplying threads.
	granted, ok := s.lim.tryAcquire(par)
	if !ok {
		// Degrade before shed, batch form: a tier-opted batch at capacity
		// is served if the summary tier can answer every query (a partial
		// batch would silently mix budget-respecting and degraded entries
		// with no way to retry just the degraded half).
		if spec.Mode != core.TierExact {
			if out, ok := s.summaryBatch(e, queries); ok {
				s.tmet.degraded.Add(1)
				s.tmet.summaryServed.Add(int64(len(queries)))
				precisions := make([]string, len(queries))
				for i := range precisions {
					precisions[i] = core.PrecisionSummary.String()
				}
				writeJSON(w, http.StatusOK, BatchResponse{
					Ranges: out, Epoch: e.Snapshot().Epoch(), Precisions: precisions,
				})
				return
			}
		}
		s.rejectOverCapacity(w)
		return
	}
	defer s.lim.release(granted)
	// The request context cancels when the client disconnects: queries not
	// yet started are skipped (there is nobody to read their ranges), while
	// in-flight bounds complete — that, plus http.Server.Shutdown waiting on
	// active handlers, is what makes shutdown drain instead of drop.
	ranges, precs, err := e.BoundBatchTieredCtx(r.Context(), queries, spec, core.BatchOptions{Parallelism: par})
	if err != nil {
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			return // client went away; nothing to report
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	out := make([]RangeJSON, len(ranges))
	precisions := make([]string, len(ranges))
	for i, rng := range ranges {
		out[i] = RangeToJSON(rng)
		precisions[i] = precs[i].String()
		s.tmet.observe(spec, precs[i], rng)
	}
	writeJSON(w, http.StatusOK, BatchResponse{
		Ranges: out, Epoch: e.Snapshot().Epoch(), Precisions: precisions,
	})
}

// summaryBatch answers every query from the summary tier, or reports it
// cannot (ok=false leaves admission control to shed the batch).
func (s *Server) summaryBatch(e *core.Engine, queries []core.Query) ([]RangeJSON, bool) {
	out := make([]RangeJSON, len(queries))
	for i, q := range queries {
		rng, ok := e.BoundSummary(q)
		if !ok {
			return nil, false
		}
		out[i] = RangeToJSON(rng)
	}
	return out, true
}

// mutationAllowed rejects mutations up front while the WAL is wedged: once
// a write or fsync has failed, disk can no longer be trusted to record what
// we acknowledge, so the store is read-only until an operator restarts the
// process (recovery reopens from what is actually durable).
func (s *Server) mutationAllowed(w http.ResponseWriter) bool {
	if s.repl != nil {
		// Followers are read-only: the log flows one way, so a local write
		// would fork history the tail can never reconcile. The hint tells
		// clients where writes go, and Retry-After tells retrying clients
		// (and the router) this is a routing error, not a transient fault —
		// redirect now, or back off briefly if no primary is reachable.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error:   "read-only replica: mutations must go to the primary",
			Primary: s.repl.cfg.Primary,
		})
		return false
	}
	if s.dur == nil {
		return true
	}
	if err := s.dur.Err(); err != nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("durability wedged, mutations disabled: %v", err))
		return false
	}
	return true
}

// ackDurable holds a mutation's 200 until its epoch is durable. It runs
// after mutMu is released — group commit batches the fsync across every
// mutation that landed meanwhile, so holding the mutation lock here would
// serialize exactly the work the window exists to coalesce. On failure the
// client gets a 503 and must treat the mutation as not applied: the wedge
// blocks all later mutations, and restart-recovery replays only the log.
func (s *Server) ackDurable(w http.ResponseWriter, epoch uint64) bool {
	if s.dur == nil {
		return true
	}
	if err := s.dur.WaitDurable(epoch); err != nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("mutation not durable: %v", err))
		return false
	}
	return true
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req AddRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !s.mutationAllowed(w) {
		return
	}
	if len(req.Constraints) == 0 {
		writeError(w, http.StatusBadRequest, "add has no constraints")
		return
	}
	sv := s.serving()
	pcs := make([]core.PC, len(req.Constraints))
	for i, cj := range req.Constraints {
		pc, err := core.PCFromJSON(sv.store.Schema(), cj)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("constraint %d: %v", i, err))
			return
		}
		pcs[i] = pc
	}
	s.mutMu.Lock()
	ids, err := sv.store.AddPCs(pcs...)
	if err != nil {
		s.mutMu.Unlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	epoch := s.commitEpochLocked()
	s.mutMu.Unlock()
	if !s.ackDurable(w, epoch) {
		return
	}
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	writeJSON(w, http.StatusOK, AddResponse{IDs: out, Epoch: epoch})
}

// commitEpochLocked finishes a mutation made under mutMu: it binds (and
// thereby retains) an engine at the store's new frontier and returns that
// epoch. Because mutMu is still held, no later HTTP mutation can have
// advanced the store, so the returned epoch is exactly the one the caller's
// mutation produced — and it is pinnable from this moment on.
func (s *Server) commitEpochLocked() uint64 {
	// mutMu is held, and Rebootstrap swaps sv only under mutMu, so this load
	// observes the same serving state the caller just mutated.
	return s.serving().pool.Latest().Snapshot().Epoch()
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req RemoveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !s.mutationAllowed(w) {
		return
	}
	s.mutMu.Lock()
	if err := s.serving().store.Remove(core.PCID(req.ID)); err != nil {
		s.mutMu.Unlock()
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	epoch := s.commitEpochLocked()
	s.mutMu.Unlock()
	if !s.ackDurable(w, epoch) {
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{Epoch: epoch})
}

func (s *Server) handleReplace(w http.ResponseWriter, r *http.Request) {
	var req ReplaceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	pc, err := core.PCFromJSON(s.serving().store.Schema(), req.Constraint)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !s.mutationAllowed(w) {
		return
	}
	// The constraint decoded against the store's own schema, so a Replace
	// failure can only be a missing id. (Only a primary reaches the mutation
	// below, and a primary's serving state is never swapped, so the schema
	// load above and the store here cannot disagree.)
	s.mutMu.Lock()
	if err := s.serving().store.Replace(core.PCID(req.ID), pc); err != nil {
		s.mutMu.Unlock()
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	epoch := s.commitEpochLocked()
	s.mutMu.Unlock()
	if !s.ackDurable(w, epoch) {
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{Epoch: epoch})
}

func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	// mutMu keeps the snapshot and the closure answer at the same epoch:
	// pcserved is the store's only writer (see mutMu), so with mutations
	// excluded, Store.Closed — incremental, far cheaper than a per-request
	// stateless re-solve — describes exactly the snapshot taken here.
	s.mutMu.Lock()
	sv := s.serving()
	snap := sv.store.Snapshot()
	closed := sv.store.Closed(sv.closure)
	s.mutMu.Unlock()
	spec := snap.Spec()
	ids := snap.IDs()
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	writeJSON(w, http.StatusOK, StoreResponse{
		Schema:      spec.Schema,
		Constraints: spec.Constraints,
		IDs:         out,
		Epoch:       snap.Epoch(),
		Closed:      closed,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	sv := s.serving()
	resp := HealthResponse{Status: "ok", Role: "primary", Epoch: sv.store.Epoch(), Constraints: sv.store.Len()}
	code := http.StatusOK
	if s.repl != nil {
		resp.Role = "follower"
		resp.Replication = s.replicationJSON()
		if resp.Replication.Error != "" {
			// The frozen frontier still serves, but balancers should stop
			// preferring a replica that will never catch up again.
			resp.Status = "replication_failed"
			code = http.StatusServiceUnavailable
		}
	}
	if s.dur != nil {
		info := s.dur.Info()
		met := s.dur.Metrics()
		resp.Durability = &DurabilityJSON{
			Mode:               s.dur.Mode().String(),
			DurableEpoch:       met.DurableEpoch,
			CheckpointEpoch:    info.CheckpointEpoch,
			RecoveredEpoch:     info.Epoch,
			ReplayedRecords:    info.Replayed,
			TornTailHealed:     info.TornTail,
			SkippedCheckpoints: info.SkippedCheckpoints,
			Wedged:             met.Wedged,
		}
		if met.Wedged {
			resp.Status = "wedged"
			code = http.StatusServiceUnavailable
		}
	}
	if s.draining.Load() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	sv := s.serving()
	e := sv.pool.Current()
	cs := e.CacheStats()
	ccs := e.CellCacheStats()
	ss := e.Solver().Stats()
	fmt.Fprintf(w, "pcserved_store_epoch %d\n", sv.store.Epoch())
	fmt.Fprintf(w, "pcserved_store_constraints %d\n", sv.store.Len())
	fmt.Fprintf(w, "pcserved_retained_epochs %d\n", len(sv.pool.Epochs()))
	fmt.Fprintf(w, "pcserved_inflight_queries %d\n", s.lim.inflight())
	fmt.Fprintf(w, "pcserved_inflight_capacity %d\n", s.lim.capacity())
	fmt.Fprintf(w, "pcserved_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "pcserved_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "pcserved_cache_retained_total %d\n", cs.Retained)
	fmt.Fprintf(w, "pcserved_cache_invalidated_total %d\n", cs.Invalidated)
	fmt.Fprintf(w, "pcserved_cellcache_hits_total %d\n", ccs.Hits)
	fmt.Fprintf(w, "pcserved_cellcache_misses_total %d\n", ccs.Misses)
	fmt.Fprintf(w, "pcserved_cellcache_retained_total %d\n", ccs.Retained)
	fmt.Fprintf(w, "pcserved_cellcache_invalidated_total %d\n", ccs.Invalidated)
	if sch := e.Scheduler(); sch != nil {
		// The scheduler is shared by every engine in the pool (and any other
		// engine in the process pointed at it): one queue, so queue depth is
		// the live intra-query backlog across all in-flight requests.
		st := sch.Stats()
		fmt.Fprintf(w, "pcserved_sched_workers %d\n", st.Workers)
		fmt.Fprintf(w, "pcserved_sched_queue_depth %d\n", st.QueueDepth)
		fmt.Fprintf(w, "pcserved_sched_queue_depth_max %d\n", st.MaxQueueDepth)
		fmt.Fprintf(w, "pcserved_sched_tasks_total %d\n", st.Executed)
		fmt.Fprintf(w, "pcserved_sched_caller_tasks_total %d\n", st.CallerRan)
	}
	fmt.Fprintf(w, "pcserved_sat_checks_total %d\n", ss.Checks)
	fmt.Fprintf(w, "pcserved_sat_nodes_total %d\n", ss.Nodes)
	fmt.Fprintf(w, "pcserved_tier_summary_served_total %d\n", s.tmet.summaryServed.Load())
	fmt.Fprintf(w, "pcserved_tier_exact_served_total %d\n", s.tmet.exactServed.Load())
	fmt.Fprintf(w, "pcserved_tier_escalated_total %d\n", s.tmet.escalated.Load())
	fmt.Fprintf(w, "pcserved_tier_escalated_cells_total %d\n", s.tmet.escalatedCells.Load())
	fmt.Fprintf(w, "pcserved_tier_degraded_total %d\n", s.tmet.degraded.Load())
	if sv.tier != nil {
		ts := sv.tier.Stats()
		disjoint := 0
		if ts.Disjoint {
			disjoint = 1
		}
		fmt.Fprintf(w, "pcserved_tier_summary_entries %d\n", ts.Entries)
		fmt.Fprintf(w, "pcserved_tier_summary_epoch %d\n", ts.Epoch)
		fmt.Fprintf(w, "pcserved_tier_summary_mutations_total %d\n", ts.Mutations)
		fmt.Fprintf(w, "pcserved_tier_summary_overlap_pairs %d\n", ts.OverlapPairs)
		fmt.Fprintf(w, "pcserved_tier_summary_disjoint %d\n", disjoint)
		fmt.Fprintf(w, "pcserved_tier_summary_evals_total %d\n", ts.Evals)
		fmt.Fprintf(w, "pcserved_tier_summary_sketch_evals_total %d\n", ts.SketchEvals)
	}
	if s.repl != nil {
		rj := s.replicationJSON()
		wedged := 0
		if rj.Error != "" {
			wedged = 1
		}
		fmt.Fprintf(w, "pcserved_repl_applied_epoch %d\n", rj.AppliedEpoch)
		fmt.Fprintf(w, "pcserved_repl_primary_epoch %d\n", rj.PrimaryEpoch)
		fmt.Fprintf(w, "pcserved_repl_lag_records %d\n", rj.LagRecords)
		fmt.Fprintf(w, "pcserved_repl_lag_seconds %g\n", rj.LagSeconds)
		fmt.Fprintf(w, "pcserved_repl_applied_records_total %d\n", rj.AppliedRecords)
		fmt.Fprintf(w, "pcserved_repl_tail_restarts_total %d\n", rj.TailRestarts)
		fmt.Fprintf(w, "pcserved_repl_stale_rejects_total %d\n", rj.StaleRejects)
		fmt.Fprintf(w, "pcserved_repl_rebootstraps_total %d\n", rj.Rebootstraps)
		fmt.Fprintf(w, "pcserved_repl_wedged %d\n", wedged)
	}
	if s.dur != nil {
		wm := s.dur.Metrics()
		fmt.Fprintf(w, "wal_appends_total %d\n", wm.Appends)
		fmt.Fprintf(w, "wal_flushes_total %d\n", wm.Flushes)
		fmt.Fprintf(w, "wal_fsyncs_total %d\n", wm.Fsyncs)
		fmt.Fprintf(w, "wal_rotations_total %d\n", wm.Rotations)
		fmt.Fprintf(w, "wal_bytes_written_total %d\n", wm.BytesWritten)
		fmt.Fprintf(w, "wal_checkpoints_total %d\n", wm.Checkpoints)
		fmt.Fprintf(w, "wal_checkpoint_failures_total %d\n", wm.CheckpointFailures)
		fmt.Fprintf(w, "wal_durable_epoch %d\n", wm.DurableEpoch)
		fmt.Fprintf(w, "wal_segment_start_epoch %d\n", wm.SegmentStart)
		fmt.Fprintf(w, "wal_last_checkpoint_epoch %d\n", wm.LastCheckpointEpoch)
		fmt.Fprintf(w, "wal_replayed_records_total %d\n", wm.Replayed)
		fmt.Fprintf(w, "wal_leases_active %d\n", wm.LeasesActive)
		fmt.Fprintf(w, "wal_lease_min_acked_epoch %d\n", wm.LeaseMinAcked)
		fmt.Fprintf(w, "wal_lease_expirations_total %d\n", wm.LeaseExpirations)
		fmt.Fprintf(w, "wal_held_segments %d\n", wm.HeldSegments)
		fmt.Fprintf(w, "wal_truncations_held_total %d\n", wm.TruncationsHeld)
		wedged := 0
		if wm.Wedged {
			wedged = 1
		}
		fmt.Fprintf(w, "wal_wedged %d\n", wedged)
	}
	s.met.writeTo(w)
}
