package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestFollowerMutationRetryAfter pins the routing contract on a follower's
// mutation rejection: the 503 carries a Retry-After header and the primary's
// address in a structured field, so a router (or a bare retrying client) can
// redirect instead of hammering the replica.
func TestFollowerMutationRetryAfter(t *testing.T) {
	_, _, _, fts, _ := newFollowerPair(t, Replica{Primary: "http://primary.example:8080"})
	body, _ := json.Marshal(AddRequest{})
	resp, err := http.Post(fts.URL+"/v1/store/add", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("code %d, want 503 (body %s)", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q", got, "1")
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if er.Primary != "http://primary.example:8080" {
		t.Fatalf("primary hint = %q, want the configured primary", er.Primary)
	}
}

// TestRebootstrapSwapsServing exercises the follower self-healing swap: a
// follower whose replication terminally failed is handed a freshly
// bootstrapped store via Rebootstrap and must (a) clear the failure and
// serve again, (b) answer 410 for pins into the pre-swap lineage the fresh
// pool no longer retains, (c) answer the frontier pin bit-identically to the
// primary, and (d) report the recovery in /healthz and /metrics.
func TestRebootstrapSwapsServing(t *testing.T) {
	primary, pts, follower, fts, recs := newFollowerPair(t, Replica{Primary: "http://primary"})
	boot := follower.Store().Epoch()

	mutateStore(t, primary)
	mutateStore(t, primary)
	for _, rec := range recs() {
		if err := follower.ApplyReplicated(reship(t, rec, primary.Schema(), follower.Store().Schema())); err != nil {
			t.Fatal(err)
		}
	}
	frontier := primary.Epoch()

	// Pre-swap: the boot epoch is retained and pinnable.
	pinned := boot
	req := BoundRequest{Query: testQueries()[0], Epoch: &pinned}
	if code, raw := doJSON(t, "POST", fts.URL+"/v1/bound", req, nil); code != http.StatusOK {
		t.Fatalf("pre-swap pinned read: %d (body %s)", code, raw)
	}

	// The tail falls behind truncation: replication fails terminally and
	// the follower advertises it.
	follower.ReplicationFailed(errTest)
	var hr HealthResponse
	if code, _ := doJSON(t, "GET", fts.URL+"/healthz", nil, &hr); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after terminal failure: %d, want 503", code)
	}

	// Self-heal: re-bootstrap a fresh store at the primary's frontier (the
	// same records a checkpoint + tail replay would produce) and swap it in.
	fresh := testStore(t)
	for _, rec := range recs() {
		if err := fresh.ApplyReplicated(reship(t, rec, primary.Schema(), fresh.Schema())); err != nil {
			t.Fatal(err)
		}
	}
	if err := follower.Rebootstrap(fresh, nil); err != nil {
		t.Fatal(err)
	}

	hr = HealthResponse{}
	if code, raw := doJSON(t, "GET", fts.URL+"/healthz", nil, &hr); code != http.StatusOK {
		t.Fatalf("healthz after rebootstrap: %d (body %s)", code, raw)
	}
	if hr.Replication == nil || hr.Replication.Rebootstraps != 1 {
		t.Fatalf("replication block = %+v, want rebootstraps 1", hr.Replication)
	}
	if hr.Replication.Error != "" {
		t.Fatalf("rebootstrap must clear the terminal error, got %q", hr.Replication.Error)
	}
	if hr.Replication.AppliedEpoch != frontier {
		t.Fatalf("applied epoch %d, want frontier %d", hr.Replication.AppliedEpoch, frontier)
	}

	// The fresh pool retains only the new lineage: a pin into the pre-swap
	// lineage answers 410, never a mixed-lineage result.
	if code, raw := doJSON(t, "POST", fts.URL+"/v1/bound", req, nil); code != http.StatusGone {
		t.Fatalf("old-lineage pin after swap: %d, want 410 (body %s)", code, raw)
	}

	// The frontier pin serves, bit-identical to the primary.
	for qi, q := range testQueries() {
		e := frontier
		freq := BoundRequest{Query: q, Epoch: &e}
		var pbr, fbr BoundResponse
		pcode, praw := doJSON(t, "POST", pts.URL+"/v1/bound", freq, &pbr)
		fcode, fraw := doJSON(t, "POST", fts.URL+"/v1/bound", freq, &fbr)
		if pcode != http.StatusOK || fcode != http.StatusOK {
			t.Fatalf("query %d: primary %d, follower %d (%s / %s)", qi, pcode, fcode, praw, fraw)
		}
		if pbr.Range != fbr.Range || pbr.Epoch != fbr.Epoch {
			t.Fatalf("query %d diverged after rebootstrap: primary %+v, follower %+v", qi, pbr, fbr)
		}
	}

	resp, err := http.Get(fts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	met, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(met), "pcserved_repl_rebootstraps_total 1\n") {
		t.Fatal("metrics missing pcserved_repl_rebootstraps_total 1")
	}
}
