package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBoundThreadsRequestContext is the regression test for the context
// drop pcvet's ctxflow analyzer caught in handleBound: the handler called
// the context-free Engine.Bound, so a client that hung up still paid for a
// full solve. With the context threaded, an already-canceled request must
// not start the solver.
func TestBoundThreadsRequestContext(t *testing.T) {
	s := New(testStore(t), nil, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/bound",
		strings.NewReader(`{"query":{"agg":"SUM","attr":"price"}}`)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code == 200 {
		t.Fatalf("canceled request still solved: %d %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "context canceled") {
		t.Fatalf("expected a context cancellation error, got: %d %s", rec.Code, rec.Body.String())
	}
}
