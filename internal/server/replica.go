package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pcbound/internal/core"
	"pcbound/internal/sat"
)

// Replica configures a server as a log-shipping follower: it has no WAL of
// its own, applies the primary's records as they arrive (ApplyReplicated),
// rejects mutations with a hint at the primary, and serves reads at its
// applied frontier. Epoch-pinned and min_epoch reads behind that frontier
// wait up to the staleness budget for the tail to catch up, then 412 — the
// bridge that keeps a client's mutate-on-primary → pinned-read-on-replica
// chain coherent without the replica ever inventing history.
type Replica struct {
	// Primary is the advertised primary base URL, returned alongside the 503
	// a rejected mutation gets so clients can redirect.
	Primary string
	// Source describes where the tail reads from (a directory or the
	// primary's URL); reporting only.
	Source string
	// StalenessBudget bounds how long an epoch-gated read waits for the tail
	// to reach its target epoch before failing with 412. <= 0 means 2s.
	StalenessBudget time.Duration
}

func (r Replica) budget() time.Duration {
	if r.StalenessBudget <= 0 {
		return 2 * time.Second
	}
	return r.StalenessBudget
}

// replState is a follower's replication progress, shared between the apply
// loop (one goroutine feeding ApplyReplicated) and request handlers reading
// or awaiting the frontier.
type replState struct {
	cfg Replica

	mu sync.Mutex
	// applied is the follower's frontier: the store epoch after the last
	// replicated record. guarded by mu
	applied uint64
	// appliedAt is when applied last advanced. guarded by mu
	appliedAt time.Time
	// primary is the primary's last observed frontier epoch. guarded by mu
	primary uint64
	// records counts replicated records applied. guarded by mu
	records uint64
	// restarts counts tail restarts after transient source errors. guarded by mu
	restarts uint64
	// staleRejects counts reads that 412ed waiting for an epoch. guarded by mu
	staleRejects uint64
	// rebootstraps counts in-place recoveries from ErrFellBehind: the tail
	// re-bootstrapped from a newer checkpoint and the serving state was
	// swapped without a restart. guarded by mu
	rebootstraps uint64
	// err, once set, marks replication permanently failed (the tail hit a
	// terminal condition); epoch-gated reads fail fast. guarded by mu
	err error
	// ch is closed and remade each time applied advances (or err is set), so
	// awaiters can select on progress with a timeout. guarded by mu
	ch chan struct{}
}

func newReplState(cfg Replica, applied uint64) *replState {
	return &replState{
		cfg:       cfg,
		applied:   applied,
		appliedAt: time.Now(),
		ch:        make(chan struct{}),
	}
}

// wake closes and remakes the progress channel. Callers hold mu.
func (rs *replState) wakeLocked() {
	close(rs.ch)
	rs.ch = make(chan struct{})
}

func (rs *replState) advance(epoch uint64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.applied = epoch
	rs.appliedAt = time.Now()
	rs.records++
	if epoch > rs.primary {
		rs.primary = epoch
	}
	rs.wakeLocked()
}

func (rs *replState) observePrimary(frontier uint64) {
	if frontier == 0 {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if frontier > rs.primary {
		rs.primary = frontier
	}
}

func (rs *replState) noteRestart() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.restarts++
}

func (rs *replState) noteStaleReject() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.staleRejects++
}

// rebootstrapped resets progress to a freshly bootstrapped frontier. Any
// pending terminal error is cleared: the follower recovered in place, so
// epoch-gated reads should wait on the new tail, not fail fast forever.
func (rs *replState) rebootstrapped(epoch uint64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.applied = epoch
	rs.appliedAt = time.Now()
	rs.rebootstraps++
	if epoch > rs.primary {
		rs.primary = epoch
	}
	rs.err = nil
	rs.wakeLocked()
}

func (rs *replState) fail(err error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.err == nil {
		rs.err = err
		rs.wakeLocked()
	}
}

// replSnapshot is a consistent copy of the counters for health/metrics.
type replSnapshot struct {
	applied, primary, records, restarts, staleRejects, rebootstraps uint64
	appliedAt                                                       time.Time
	err                                                             error
}

func (rs *replState) snapshot() replSnapshot {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return replSnapshot{
		applied: rs.applied, primary: rs.primary, records: rs.records,
		restarts: rs.restarts, staleRejects: rs.staleRejects,
		rebootstraps: rs.rebootstraps, appliedAt: rs.appliedAt, err: rs.err,
	}
}

// await blocks until the applied frontier reaches target, the staleness
// budget runs out, replication fails, or ctx is done.
func (rs *replState) await(ctx context.Context, target uint64) error {
	deadline := time.Now().Add(rs.cfg.budget())
	for {
		rs.mu.Lock()
		applied, err, ch := rs.applied, rs.err, rs.ch
		rs.mu.Unlock()
		if applied >= target {
			return nil
		}
		if err != nil {
			return fmt.Errorf("replication failed at epoch %d (want %d): %v", applied, target, err)
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("replica frontier is epoch %d after waiting %s for epoch %d; retry or read the primary",
				applied, rs.cfg.budget(), target)
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			// Re-check once: the frontier may have advanced at the wire.
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
	}
}

// errNotFollower guards the replication entry points on a non-replica server.
var errNotFollower = errors.New("server: not configured as a follower")

// ApplyReplicated applies one record shipped from the primary's log and
// registers the resulting epoch as pinnable, exactly like a local mutation:
// under mutMu the store advances and the new engine is bound before the
// next record can commit, so the moment a replicated epoch is visible it is
// also pinnable — the property the cross-node bit-identity check leans on.
// Called by the follower's apply loop, in log order.
func (s *Server) ApplyReplicated(rec core.MutationRecord) error {
	if s.repl == nil {
		return errNotFollower
	}
	s.mutMu.Lock()
	if err := s.serving().store.ApplyReplicated(rec); err != nil {
		s.mutMu.Unlock()
		return err
	}
	epoch := s.commitEpochLocked()
	s.mutMu.Unlock()
	s.repl.advance(epoch)
	return nil
}

// Rebootstrap swaps the follower's serving state for a freshly bootstrapped
// store — the self-healing path out of ErrFellBehind, when the primary
// truncated records this follower had not applied yet. The swap happens
// under mutMu so it never interleaves with a replicated apply; handlers that
// loaded the old serving state finish on its immutable snapshots (answering
// bit-identically for the epochs they pinned), while new pins into the
// pre-swap lineage answer 410 from the fresh pool. Reads never mix lineages.
func (s *Server) Rebootstrap(store *core.Store, solver *sat.Solver) error {
	if s.repl == nil {
		return errNotFollower
	}
	s.mutMu.Lock()
	s.sv.Store(s.newServing(store, solver))
	s.mutMu.Unlock()
	s.repl.rebootstrapped(store.Epoch())
	return nil
}

// ObservePrimary records the primary's frontier epoch as last seen by the
// tail (lag is computed against it).
func (s *Server) ObservePrimary(frontier uint64) {
	if s.repl != nil {
		s.repl.observePrimary(frontier)
	}
}

// NoteTailRestart counts a transient tail failure the apply loop recovered
// from by retrying.
func (s *Server) NoteTailRestart() {
	if s.repl != nil {
		s.repl.noteRestart()
	}
}

// ReplicationFailed marks replication permanently broken (the tail hit a
// terminal condition: fell behind truncation, or the log diverged). The
// follower keeps serving reads at its frozen frontier; epoch-gated reads
// fail fast and /healthz flips to 503 so balancers stop preferring it.
func (s *Server) ReplicationFailed(err error) {
	if s.repl != nil {
		s.repl.fail(err)
	}
}

// AppliedEpoch returns the follower's applied frontier (reporting).
func (s *Server) AppliedEpoch() uint64 {
	if s.repl == nil {
		return s.serving().store.Epoch()
	}
	return s.repl.snapshot().applied
}

// replicationJSON builds the healthz replication block. nil on primaries.
func (s *Server) replicationJSON() *ReplicationJSON {
	if s.repl == nil {
		return nil
	}
	sn := s.repl.snapshot()
	rj := &ReplicationJSON{
		Primary:        s.repl.cfg.Primary,
		Source:         s.repl.cfg.Source,
		AppliedEpoch:   sn.applied,
		PrimaryEpoch:   sn.primary,
		AppliedRecords: sn.records,
		TailRestarts:   sn.restarts,
		StaleRejects:   sn.staleRejects,
		Rebootstraps:   sn.rebootstraps,
	}
	if sn.primary > sn.applied {
		rj.LagRecords = sn.primary - sn.applied
		rj.LagSeconds = time.Since(sn.appliedAt).Seconds()
	}
	if sn.err != nil {
		rj.Error = sn.err.Error()
	}
	return rj
}
