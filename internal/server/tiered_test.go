package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pcbound/internal/core"
)

func numPtr(v float64) *Num {
	n := Num(v)
	return &n
}

// TestBoundTieredTagging: precision/max_width select the tier, responses
// tag the tier that answered, summary answers contain the exact range, and
// requests without tier fields keep getting bit-identical exact answers
// tagged "exact".
func TestBoundTieredTagging(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	ref := core.NewEngine(store, nil, core.Options{})
	for i, qj := range testQueries() {
		q, err := core.QueryFromJSON(store.Schema(), qj)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ref.Bound(q)
		if err != nil {
			t.Fatal(err)
		}

		// Default: exact, bit-identical, tagged.
		var resp BoundResponse
		code, raw := doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: qj}, &resp)
		if code != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, code, raw)
		}
		if resp.Precision != "exact" || resp.Range.Range() != exact {
			t.Fatalf("query %d: default response %+v not tagged exact/bit-identical to %+v", i, resp, exact)
		}

		// Forced summary: tagged, sound.
		code, raw = doJSON(t, "POST", ts.URL+"/v1/bound",
			BoundRequest{Query: qj, Precision: "summary"}, &resp)
		if code != http.StatusOK {
			t.Fatalf("query %d forced summary: %d %s", i, code, raw)
		}
		if resp.Precision != "summary" {
			t.Fatalf("query %d: forced summary answered %q", i, resp.Precision)
		}
		sr := resp.Range.Range()
		if sr.Lo > exact.Lo || sr.Hi < exact.Hi {
			t.Fatalf("query %d: summary [%v,%v] does not contain exact [%v,%v]",
				i, sr.Lo, sr.Hi, exact.Lo, exact.Hi)
		}
		if !sr.MaybeEmpty && exact.MaybeEmpty {
			t.Fatalf("query %d: summary claims non-empty, exact may be empty", i)
		}

		// An infinite budget (bare max_width implies auto) fits everything
		// finite; a zero budget escalates anything with real width.
		code, _ = doJSON(t, "POST", ts.URL+"/v1/bound",
			BoundRequest{Query: qj, Precision: "auto", MaxWidth: numPtr(0)}, &resp)
		if code != http.StatusOK {
			t.Fatalf("query %d auto/0: %d", i, code)
		}
		if sr.Lo <= sr.Hi && sr.Hi-sr.Lo > 0 {
			if resp.Precision != "exact" || resp.Range.Range() != exact {
				t.Fatalf("query %d: zero budget served %q range %+v, want exact %+v",
					i, resp.Precision, resp.Range.Range(), exact)
			}
		}
	}
}

// TestTierSpecValidation: malformed tier fields are 400s, not silent
// fallbacks.
func TestTierSpecValidation(t *testing.T) {
	ts := newTestServer(t, testStore(t), Config{})
	q := core.QueryJSON{Agg: "COUNT"}
	code, raw := doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: q, Precision: "fuzzy"}, nil)
	if code != http.StatusBadRequest || !strings.Contains(string(raw), "invalid precision") {
		t.Fatalf("bad precision: %d %s", code, raw)
	}
	code, raw = doJSON(t, "POST", ts.URL+"/v1/bound",
		BoundRequest{Query: q, MaxWidth: numPtr(-1)}, nil)
	if code != http.StatusBadRequest || !strings.Contains(string(raw), "max_width") {
		t.Fatalf("negative budget: %d %s", code, raw)
	}
	code, raw = doJSON(t, "POST", ts.URL+"/v1/batch",
		BatchRequest{Queries: testQueries(), Precision: "fuzzy"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad batch precision: %d %s", code, raw)
	}
}

// TestBatchTieredPrecisions: batch responses carry a positionally aligned
// precision per query; exact entries are bit-identical to an untiered
// batch and summary entries contain them.
func TestBatchTieredPrecisions(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	queries := testQueries()

	var base BatchResponse
	code, raw := doJSON(t, "POST", ts.URL+"/v1/batch", BatchRequest{Queries: queries}, &base)
	if code != http.StatusOK {
		t.Fatalf("plain batch: %d %s", code, raw)
	}
	if len(base.Precisions) != len(queries) {
		t.Fatalf("plain batch precisions: %v", base.Precisions)
	}
	for i, p := range base.Precisions {
		if p != "exact" {
			t.Fatalf("plain batch query %d tagged %q", i, p)
		}
	}

	var sum BatchResponse
	code, raw = doJSON(t, "POST", ts.URL+"/v1/batch",
		BatchRequest{Queries: queries, Precision: "summary"}, &sum)
	if code != http.StatusOK {
		t.Fatalf("summary batch: %d %s", code, raw)
	}
	for i := range queries {
		if sum.Precisions[i] != "summary" {
			t.Fatalf("summary batch query %d tagged %q", i, sum.Precisions[i])
		}
		sr, er := sum.Ranges[i].Range(), base.Ranges[i].Range()
		if sr.Lo > er.Lo || sr.Hi < er.Hi {
			t.Fatalf("summary batch query %d: [%v,%v] does not contain [%v,%v]",
				i, sr.Lo, sr.Hi, er.Lo, er.Hi)
		}
	}
}

// TestDegradeBeforeShed is the saturation contract: with the limiter full,
// tier-opted requests are answered from the summary tier with 200 +
// precision "summary", while exact-only requests still get the 429 last
// resort. Draining the limiter restores exact serving.
func TestDegradeBeforeShed(t *testing.T) {
	store := testStore(t)
	srv := New(store, nil, Config{MaxInflight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Saturate: occupy the limiter's only unit.
	granted, ok := srv.lim.tryAcquire(1)
	if !ok {
		t.Fatal("fresh limiter refused")
	}

	q := core.QueryJSON{Agg: "SUM", Attr: "price"}
	var resp BoundResponse
	code, raw := doJSON(t, "POST", ts.URL+"/v1/bound",
		BoundRequest{Query: q, MaxWidth: numPtr(1e9)}, &resp)
	if code != http.StatusOK || resp.Precision != "summary" {
		t.Fatalf("saturated tier-opted bound: %d %s (want 200 summary)", code, raw)
	}
	code, _ = doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: q}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated exact bound: %d, want 429", code)
	}

	var bresp BatchResponse
	code, raw = doJSON(t, "POST", ts.URL+"/v1/batch",
		BatchRequest{Queries: testQueries(), Precision: "summary"}, &bresp)
	if code != http.StatusOK {
		t.Fatalf("saturated tier-opted batch: %d %s", code, raw)
	}
	for i, p := range bresp.Precisions {
		if p != "summary" {
			t.Fatalf("degraded batch query %d tagged %q", i, p)
		}
	}
	code, _ = doJSON(t, "POST", ts.URL+"/v1/batch", BatchRequest{Queries: testQueries()}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated exact batch: %d, want 429", code)
	}

	// A pinned read behind the frontier has no summary at that epoch: even
	// tier-opted it must shed rather than serve a wrong-epoch answer.
	pinned := store.Epoch()
	mutateStore(t, store)
	code, _ = doJSON(t, "POST", ts.URL+"/v1/bound",
		BoundRequest{Query: q, Epoch: &pinned, Precision: "summary"}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated pinned bound: %d, want 429", code)
	}

	if got := srv.tmet.degraded.Load(); got < 2 {
		t.Fatalf("degrade activations: %d, want >= 2", got)
	}

	srv.lim.release(granted)
	code, _ = doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: q}, &resp)
	if code != http.StatusOK || resp.Precision != "exact" {
		t.Fatalf("drained bound: %d %q, want 200 exact", code, resp.Precision)
	}
}

// TestDisableSummary: with the overlay disabled, tier-opted requests
// silently escalate to exact answers and saturation always sheds.
func TestDisableSummary(t *testing.T) {
	store := testStore(t)
	srv := New(store, nil, Config{MaxInflight: 1, DisableSummary: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := core.QueryJSON{Agg: "COUNT"}
	var resp BoundResponse
	code, _ := doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: q, Precision: "summary"}, &resp)
	if code != http.StatusOK || resp.Precision != "exact" {
		t.Fatalf("tier-opted bound without overlay: %d %q, want 200 exact", code, resp.Precision)
	}
	granted, _ := srv.lim.tryAcquire(1)
	defer srv.lim.release(granted)
	code, _ = doJSON(t, "POST", ts.URL+"/v1/bound", BoundRequest{Query: q, MaxWidth: numPtr(1e9)}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated bound without overlay: %d, want 429", code)
	}
}

// TestMetricsTierSurface: the pcserved_tier_* family is exported and moves
// with traffic.
func TestMetricsTierSurface(t *testing.T) {
	store := testStore(t)
	ts := newTestServer(t, store, Config{})
	q := core.QueryJSON{Agg: "SUM", Attr: "price"}
	for _, req := range []BoundRequest{
		{Query: q, Precision: "summary"},
		{Query: q, Precision: "auto", MaxWidth: numPtr(0)},
		{Query: q},
	} {
		if code, raw := doJSON(t, "POST", ts.URL+"/v1/bound", req, nil); code != http.StatusOK {
			t.Fatalf("bound: %d %s", code, raw)
		}
	}
	code, raw := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	body := string(raw)
	for _, frag := range []string{
		"pcserved_tier_summary_served_total 1",
		"pcserved_tier_escalated_total 1",
		"pcserved_tier_exact_served_total 2",
		"pcserved_tier_degraded_total 0",
		"pcserved_tier_summary_entries 4",
		"pcserved_tier_summary_disjoint 0",
		"pcserved_tier_summary_evals_total",
		"pcserved_tier_escalated_cells_total",
	} {
		if !strings.Contains(body, frag) {
			t.Fatalf("metrics missing %q in:\n%s", frag, body)
		}
	}
}
