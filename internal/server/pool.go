package server

import (
	"errors"
	"fmt"
	"sync"

	"pcbound/internal/core"
	"pcbound/internal/sat"
)

// ErrEpochNotRetained is returned (wrapped with the offending epoch) when a
// request pins a snapshot epoch the pool no longer — or never — retained.
// The store keeps no history of its own: the epochs servable for pinned
// reads are ones at which an engine was bound — every served read and every
// HTTP mutation (see Server.commitEpochLocked) binds one — up to the pool's
// retention cap. Handlers map it to 410 Gone.
var ErrEpochNotRetained = errors.New("snapshot epoch not retained")

// DefaultRetainEpochs is the engine retention cap used when
// Config.RetainEpochs is zero: the latest engine plus seven older
// snapshot-pinned ones.
const DefaultRetainEpochs = 8

// enginePool hands out engines bound to store snapshots, rebinding on demand
// rather than on mutation: the first read after a mutation pays the (cheap,
// scoped-invalidation) Rebind, and an idle store costs nothing. All engines
// in the pool are one Rebind lineage, so they share the SAT solver, the
// solve-context pool, and the decomposition cache — a snapshot-pinned reader
// and the frontier serve from the same cache without perturbing each other
// (see decompCache's per-key epoch intervals in internal/core).
//
// Older engines are retained by epoch, capped at retain entries, so clients
// can keep querying the snapshot a previous response reported. Eviction just
// drops the pool's reference: requests already holding the engine finish
// unaffected (snapshots are immutable), later pins get ErrEpochNotRetained.
type enginePool struct {
	mu      sync.Mutex
	latest  *core.Engine            // guarded by mu
	byEpoch map[uint64]*core.Engine // guarded by mu
	order   []uint64                // guarded by mu; retained epochs, oldest first
	retain  int
}

func newEnginePool(store *core.Store, solver *sat.Solver, opts core.Options, retain int) *enginePool {
	if retain <= 0 {
		retain = DefaultRetainEpochs
	}
	p := &enginePool{byEpoch: make(map[uint64]*core.Engine), retain: retain}
	p.latest = core.NewEngine(store, solver, opts)
	p.registerLocked(p.latest)
	return p
}

// Latest returns an engine bound to the store's current snapshot, rebinding
// (and retaining the new epoch) if the store moved since the last call.
func (p *enginePool) Latest() *core.Engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rollForwardLocked()
}

// At returns the retained engine pinned to the given epoch. It first rolls
// the frontier forward so "pin to the epoch my mutation just returned" works
// even when no unpinned read has happened in between.
func (p *enginePool) At(epoch uint64) (*core.Engine, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rollForwardLocked()
	if e, ok := p.byEpoch[epoch]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("%w: epoch %d (retained: %v)", ErrEpochNotRetained, epoch, p.order)
}

// Current returns the most recently bound engine without rolling forward
// (for metrics: reading counters must not itself take snapshots).
func (p *enginePool) Current() *core.Engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latest
}

// Epochs returns the retained epochs, oldest first.
func (p *enginePool) Epochs() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]uint64(nil), p.order...)
}

func (p *enginePool) rollForwardLocked() *core.Engine {
	e := p.latest.Rebind()
	if e != p.latest {
		p.latest = e
		p.registerLocked(e)
	}
	return e
}

func (p *enginePool) registerLocked(e *core.Engine) {
	epoch := e.Snapshot().Epoch()
	if _, ok := p.byEpoch[epoch]; ok {
		return
	}
	p.byEpoch[epoch] = e
	p.order = append(p.order, epoch)
	for len(p.order) > p.retain {
		delete(p.byEpoch, p.order[0])
		p.order = p.order[1:]
	}
}
