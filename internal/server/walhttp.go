package server

import (
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"strconv"
	"time"

	"pcbound/internal/wal"
)

// The primary's side of HTTP log shipping: /v1/wal endpoints exposing the
// data directory read-only so followers can tail it from another host (see
// internal/wal's HTTPSource for the client). Responses are the on-disk
// bytes verbatim — the WAL's CRC framing travels with them, so a follower
// validates an HTTP chunk exactly like a shared-disk read. Segments are
// append-only and checkpoints rename-published, which is what makes serving
// them without locks sound: a concurrent read sees a prefix or the
// published file, both of which the tailer tolerates.

// maxWALPoll caps how long one segment fetch may long-poll.
const maxWALPoll = 30 * time.Second

func (s *Server) walSource() wal.DirSource {
	return wal.DirSource{FS: s.dur.FS(), Dir: s.dur.Dir()}
}

// leaseHeartbeat registers the follower lease a WAL request piggybacks as
// lease_id/acked query parameters (see HTTPSource.SetLease). Every tailing
// request doubles as a heartbeat, so a live follower holds its lease with no
// extra RPC — and a silent one expires out of the truncation floor.
func (s *Server) leaseHeartbeat(r *http.Request) {
	id := r.URL.Query().Get("lease_id")
	if id == "" {
		return
	}
	acked, err := strconv.ParseUint(r.URL.Query().Get("acked"), 10, 64)
	if err != nil {
		return
	}
	s.dur.Leases().Heartbeat(id, acked)
}

func (s *Server) handleWALList(w http.ResponseWriter, r *http.Request) {
	s.leaseHeartbeat(r)
	l, err := s.walSource().List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	lj := wal.ListingJSON{
		Segments:     l.Segments,
		Checkpoints:  l.Checkpoints,
		Epoch:        s.serving().store.Epoch(),
		DurableEpoch: s.dur.Metrics().DurableEpoch,
		Leases:       s.dur.Leases().SnapshotJSON(),
	}
	if lj.Segments == nil {
		lj.Segments = []uint64{}
	}
	if lj.Checkpoints == nil {
		lj.Checkpoints = []uint64{}
	}
	writeJSON(w, http.StatusOK, lj)
}

func (s *Server) handleWALCheckpoint(w http.ResponseWriter, r *http.Request) {
	epoch, err := strconv.ParseUint(r.PathValue("epoch"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid checkpoint epoch: %v", err))
		return
	}
	s.leaseHeartbeat(r)
	data, err := s.walSource().ReadCheckpoint(epoch)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		writeError(w, http.StatusNotFound, fmt.Sprintf("no checkpoint at epoch %d", epoch))
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleWALSegment serves segment bytes from a byte offset, long-polling up
// to wait_ms for new bytes at the live edge so an idle follower costs one
// open request instead of a poll storm. A sealed segment (rotation moved
// the writer past it) returns immediately: it will never grow again.
func (s *Server) handleWALSegment(w http.ResponseWriter, r *http.Request) {
	start, err := strconv.ParseUint(r.PathValue("start"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid segment start: %v", err))
		return
	}
	s.leaseHeartbeat(r)
	var off int64
	if v := r.URL.Query().Get("off"); v != "" {
		off, err = strconv.ParseInt(v, 10, 64)
		if err != nil || off < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid offset %q", v))
			return
		}
	}
	var wait time.Duration
	if v := r.URL.Query().Get("wait_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid wait_ms %q", v))
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > maxWALPoll {
			wait = maxWALPoll
		}
	}

	src := s.walSource()
	deadline := time.Now().Add(wait)
	var chunk wal.SegmentChunk
	for {
		chunk, err = src.ReadSegment(start, off, 0)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			writeError(w, http.StatusNotFound, fmt.Sprintf("no segment starting at epoch %d", start))
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if len(chunk.Data) > 0 || time.Now().After(deadline) {
			break
		}
		if s.dur.Metrics().SegmentStart != start {
			// Sealed: the writer rotated past this segment, no byte will
			// ever be appended to it — holding the poll open would only
			// delay the follower's advance to the successor.
			break
		}
		t := time.NewTimer(20 * time.Millisecond)
		select {
		case <-r.Context().Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
	w.Header().Set(wal.HeaderFrontierEpoch, strconv.FormatUint(s.serving().store.Epoch(), 10))
	w.Header().Set(wal.HeaderDurableEpoch, strconv.FormatUint(s.dur.Metrics().DurableEpoch, 10))
	w.Header().Set(wal.HeaderSegmentSize, strconv.FormatInt(chunk.Size, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(chunk.Data)
}
