package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCallerOnly: with zero workers every task runs inline on the waiting
// caller, costliest first — the parallelism-1 reference configuration.
func TestCallerOnly(t *testing.T) {
	s := New(0)
	defer s.Close()
	g := s.NewGroup()
	var order []float64
	for _, c := range []float64{1, 5, 3, 4, 2} {
		c := c
		g.Submit(c, func(ws *Workspace) { order = append(order, c) })
	}
	g.Wait(nil)
	want := []float64{5, 4, 3, 2, 1}
	if len(order) != len(want) {
		t.Fatalf("ran %d tasks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want cost-descending %v", order, want)
		}
	}
	st := s.Stats()
	if st.Executed != 5 || st.CallerRan != 5 || st.QueueDepth != 0 {
		t.Fatalf("stats %+v, want 5 executed, 5 caller-ran, empty queue", st)
	}
}

// TestEmptyGroup: Wait on a group with no tasks returns immediately.
func TestEmptyGroup(t *testing.T) {
	s := New(1)
	defer s.Close()
	s.NewGroup().Wait(nil)
}

// TestSlotDeterminism: index-addressed slots receive exactly their task's
// result regardless of worker count and interleaving.
func TestSlotDeterminism(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		s := New(workers)
		const n = 200
		out := make([]int, n)
		g := s.NewGroup()
		for i := 0; i < n; i++ {
			i := i
			g.Submit(float64(i%7), func(ws *Workspace) { out[i] = i * i })
		}
		g.Wait(nil)
		for i := 0; i < n; i++ {
			if out[i] != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, out[i], i*i)
			}
		}
		s.Close()
	}
}

// TestWorkspaceLocalsAreExecutorPrivate: Local values are never shared
// between concurrently running tasks.
func TestWorkspaceLocalsAreExecutorPrivate(t *testing.T) {
	s := New(4)
	defer s.Close()
	type local struct{ inUse atomic.Bool }
	var created atomic.Int64
	g := s.NewGroup()
	for i := 0; i < 500; i++ {
		g.Submit(1, func(ws *Workspace) {
			l, ok := ws.Local.(*local)
			if !ok {
				l = &local{}
				ws.Local = l
				created.Add(1)
			}
			if !l.inUse.CompareAndSwap(false, true) {
				t.Error("workspace local used by two tasks at once")
				return
			}
			defer l.inUse.Store(false)
			runtime.Gosched() // widen the overlap window
		})
	}
	g.Wait(nil)
	// 4 workers + 1 caller is the executor ceiling for one group.
	if c := created.Load(); c < 1 || c > 5 {
		t.Fatalf("created %d locals, want 1..5", c)
	}
}

// TestSharedAcrossGroups: many concurrent groups on one scheduler all
// complete, and steals (worker-run tasks from any group) happen.
func TestSharedAcrossGroups(t *testing.T) {
	s := New(2)
	defer s.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for gi := 0; gi < 8; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := s.NewGroup()
			for i := 0; i < 50; i++ {
				g.Submit(float64(i), func(ws *Workspace) { total.Add(1) })
			}
			g.Wait(nil)
		}()
	}
	wg.Wait()
	if total.Load() != 8*50 {
		t.Fatalf("ran %d tasks, want %d", total.Load(), 8*50)
	}
	st := s.Stats()
	if st.Executed != 8*50 {
		t.Fatalf("executed %d, want %d", st.Executed, 8*50)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after all groups done, want 0", st.QueueDepth)
	}
	if st.MaxQueueDepth == 0 {
		t.Fatalf("max queue depth never rose above 0")
	}
}

// TestCallerWorkspacePassthrough: the caller's own scratch is used for
// caller-run tasks.
func TestCallerWorkspacePassthrough(t *testing.T) {
	s := New(0)
	defer s.Close()
	g := s.NewGroup()
	marker := "caller-scratch"
	seen := ""
	g.Submit(1, func(ws *Workspace) { seen, _ = ws.Local.(string) })
	g.Wait(&Workspace{Local: marker})
	if seen != marker {
		t.Fatalf("task saw Local %q, want the caller workspace %q", seen, marker)
	}
}

func TestShared(t *testing.T) {
	a, b := Shared(), Shared()
	if a != b {
		t.Fatal("Shared() returned two schedulers")
	}
	if a.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("shared workers = %d, want GOMAXPROCS = %d", a.Workers(), runtime.GOMAXPROCS(0))
	}
	g := a.NewGroup()
	ran := false
	g.Submit(1, func(ws *Workspace) { ran = true })
	g.Wait(nil)
	if !ran {
		t.Fatal("shared scheduler did not run the task")
	}
}

// TestPanicPropagation: a panicking task never kills a worker or the
// process — it is recovered and re-raised from Wait on the submitting
// goroutine, and the scheduler keeps serving other groups afterwards.
func TestPanicPropagation(t *testing.T) {
	s := New(2)
	defer s.Close()
	g := s.NewGroup()
	var ran atomic.Int64
	for i := 0; i < 20; i++ {
		i := i
		g.Submit(float64(i), func(ws *Workspace) {
			if i == 7 {
				panic("poisoned solve")
			}
			ran.Add(1)
		})
	}
	func() {
		defer func() {
			if p := recover(); p != "poisoned solve" {
				t.Errorf("Wait re-raised %v, want the task's panic value", p)
			}
		}()
		g.Wait(nil)
		t.Error("Wait returned instead of re-raising the task panic")
	}()
	if got := ran.Load(); got != 19 {
		t.Fatalf("%d non-panicking tasks ran, want 19", got)
	}
	// The pool must still be alive for later groups.
	g2 := s.NewGroup()
	ok := false
	g2.Submit(1, func(ws *Workspace) { ok = true })
	g2.Wait(nil)
	if !ok {
		t.Fatal("scheduler dead after a task panic")
	}
}

// TestSubmitRacesCompletion: workers drain tasks concurrently with the
// submitting goroutine, so the group's first tasks can complete before the
// later Submits happen. The group must not treat that transient
// all-done-so-far state as completion (it used to close its done channel
// then, and the next completion closed it again — "close of closed
// channel"). Tiny tasks, many rounds, and an oversubscribed worker pool
// make the interleaving likely; yield amplifies it further.
func TestSubmitRacesCompletion(t *testing.T) {
	s := New(8)
	defer s.Close()
	for round := 0; round < 200; round++ {
		g := s.NewGroup()
		var ran atomic.Int64
		for i := 0; i < 20; i++ {
			g.Submit(1, func(ws *Workspace) { ran.Add(1) })
			runtime.Gosched() // let a worker finish this task before the next Submit
		}
		g.Wait(nil)
		if got := ran.Load(); got != 20 {
			t.Fatalf("round %d: %d tasks ran, want 20", round, got)
		}
	}
}
