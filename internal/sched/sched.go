// Package sched implements the shared cell-solve scheduler: the unit of
// scheduled work in the bounding engine is one LP/MILP task (typically a
// single decomposition cell's solve), not a whole query.
//
// Motivation (skew): parallelizing only *across* queries leaves a single
// MILP-heavy query pegging one core while the rest idle — the classic
// straggler problem in parallel query processing. Here every in-flight query
// (and every engine sharing the scheduler, e.g. all engines in a server
// pool) feeds its per-cell tasks into one shared queue, and the scheduler
// dispatches them cost-ordered: the costliest tasks (widest, most
// constraint-coupled cells) start first, so a skewed cell distribution
// finishes in near-balanced time instead of serializing behind the heaviest
// cell (greedy longest-processing-time scheduling).
//
// Execution model:
//
//   - A fixed pool of worker goroutines drains a global max-cost heap. An
//     idle worker steals the globally costliest pending task no matter which
//     query submitted it.
//   - The submitting goroutine does not idle while it waits: Group.Wait
//     runs the caller's own still-pending tasks (costliest first), stealing
//     them back from the shared queue, and only blocks when every one of its
//     tasks is already executing elsewhere. With zero workers the caller
//     simply runs its whole group inline — that is the parallelism-1
//     configuration the differential tests pin against.
//   - Each executor (worker or waiting caller) owns a Workspace whose Local
//     field caches consumer scratch (the engine stores its LP solve context
//     there), so tasks get warm per-executor LP/MILP arenas without any
//     cross-task locking.
//
// Determinism: the scheduler never aggregates results itself. Tasks write
// into caller-owned, index-addressed slots, and the caller reduces them in
// a fixed order after Wait returns — so results are bit-identical to the
// sequential path at any worker count and under any interleaving.
package sched

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workspace is one executor's scratch space. Local caches an arbitrary
// consumer value (e.g. a reusable LP solve context) across every task this
// executor runs; tasks on the same Workspace run strictly sequentially, so
// Local needs no locking.
type Workspace struct {
	// Local is consumer-owned per-executor state; nil until a task sets it.
	Local any
}

// task is one schedulable unit of work.
type task struct {
	cost  float64
	seq   uint64 // submission order; FIFO tiebreak among equal costs
	run   func(*Workspace)
	g     *Group
	index int // heap index; -1 once removed from the heap
	taken atomic.Bool
}

// taskHeap is a max-heap by cost (submission order breaks ties).
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost > h[j].cost
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *taskHeap) Push(x any) {
	t := x.(*task)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Scheduler is a shared cost-ordered task pool. One Scheduler is meant to be
// shared by every engine in a process (or server pool): tasks from all
// in-flight queries compete in one queue, so total solver concurrency is
// bounded by the worker count plus the number of waiting callers regardless
// of how many queries are in flight.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	heap    taskHeap // guarded by mu
	seq     uint64   // guarded by mu
	workers int
	closed  bool // guarded by mu

	depth     atomic.Int64 // submitted, not yet started
	maxDepth  atomic.Int64
	executed  atomic.Int64
	callerRan atomic.Int64
}

// New creates a scheduler with the given number of background workers.
// workers may be 0: tasks then run only on goroutines blocked in Group.Wait
// (strictly sequential per group — the reference configuration). Call Close
// when a non-shared scheduler is no longer needed.
func New(workers int) *Scheduler {
	if workers < 0 {
		workers = 0
	}
	s := &Scheduler{workers: workers}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

var (
	sharedOnce sync.Once
	shared     *Scheduler
)

// Shared returns the process-wide scheduler, created on first use with
// GOMAXPROCS workers. Engines default to it, so every engine in the process
// feeds one queue; it is never closed.
func Shared() *Scheduler {
	sharedOnce.Do(func() { shared = New(runtime.GOMAXPROCS(0)) })
	return shared
}

// Workers returns the scheduler's background worker count.
func (s *Scheduler) Workers() int { return s.workers }

// Close stops the background workers after the queue drains. Groups with
// un-run tasks still complete (their waiting callers run them). Close is for
// test- or tool-local schedulers; the Shared scheduler lives for the process.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Stats is a point-in-time snapshot of scheduler activity.
type Stats struct {
	// Workers is the background worker count.
	Workers int
	// QueueDepth is the number of submitted tasks not yet started.
	QueueDepth int64
	// MaxQueueDepth is the high-water mark of QueueDepth.
	MaxQueueDepth int64
	// Executed counts tasks completed (by workers and callers).
	Executed int64
	// CallerRan counts tasks a waiting caller stole back and ran itself.
	CallerRan int64
}

// Stats returns current counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Workers:       s.workers,
		QueueDepth:    s.depth.Load(),
		MaxQueueDepth: s.maxDepth.Load(),
		Executed:      s.executed.Load(),
		CallerRan:     s.callerRan.Load(),
	}
}

func (s *Scheduler) worker() {
	ws := &Workspace{}
	for {
		s.mu.Lock()
		for len(s.heap) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.heap) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		t := heap.Pop(&s.heap).(*task)
		s.mu.Unlock()
		// A waiting caller may have stolen the task back between our pop and
		// this claim; exactly one claimant runs it.
		if !t.taken.CompareAndSwap(false, true) {
			continue
		}
		s.depth.Add(-1)
		t.g.runTask(t, ws, false)
	}
}

// Group collects the tasks of one logical operation (one query's cell
// solves). All Submits must precede Wait; a Group is not reusable.
type Group struct {
	s         *Scheduler
	mu        sync.Mutex
	own       []*task // guarded by mu
	submitted int     // guarded by mu
	panicVal  any     // guarded by mu; first task panic, re-raised from Wait
	panicked  bool    // guarded by mu
	remaining atomic.Int64
	done      chan struct{}
}

// NewGroup creates an empty task group.
func (s *Scheduler) NewGroup() *Group {
	g := &Group{s: s, done: make(chan struct{})}
	// The submission-phase hold: workers race the submitting goroutine, so
	// without it a fast worker could drain the first task to remaining==0 —
	// closing done — while the caller is still submitting, and the next
	// completion would close done a second time. Wait releases it once
	// submission is over.
	g.remaining.Store(1)
	return g
}

// Submit adds one task. cost orders dispatch: across all groups on the
// scheduler, higher-cost tasks start first. fn must not call Wait (tasks
// never block on the scheduler) and must confine its effects to
// caller-owned slots for deterministic reduction.
func (g *Group) Submit(cost float64, fn func(*Workspace)) {
	t := &task{cost: cost, run: fn, g: g, index: -1}
	g.remaining.Add(1)
	g.mu.Lock()
	g.own = append(g.own, t)
	g.submitted++
	g.mu.Unlock()

	s := g.s
	s.mu.Lock()
	t.seq = s.seq
	s.seq++
	heap.Push(&s.heap, t)
	s.mu.Unlock()
	d := s.depth.Add(1)
	for {
		m := s.maxDepth.Load()
		if d <= m || s.maxDepth.CompareAndSwap(m, d) {
			break
		}
	}
	s.cond.Signal()
}

// Wait runs the group to completion. The caller first steals back and runs
// its own still-pending tasks (costliest first) on ws — pass a Workspace
// wrapping the caller's scratch, or nil for a fresh one — then blocks until
// tasks claimed by other executors finish. On return every task has
// completed, and all their writes are visible to the caller.
//
// A panic inside a task is recovered on whichever executor ran it and
// re-raised here, on the submitting goroutine: a poisoned solve kills its
// own query (where, in a server, the per-request recover contains it), not
// the shared worker pool or the whole process. The original panic value is
// preserved; the original stack is in the worker's recover frame, not the
// re-raise.
func (g *Group) Wait(ws *Workspace) {
	if ws == nil {
		ws = &Workspace{}
	}
	g.mu.Lock()
	own := make([]*task, len(g.own))
	copy(own, g.own)
	submitted := g.submitted
	g.mu.Unlock()
	if submitted == 0 {
		return
	}
	// Costliest-first over our own tasks, mirroring the global dispatch
	// order so the caller attacks its skewed cells first too.
	for i := 1; i < len(own); i++ {
		for j := i; j > 0 && own[j].cost > own[j-1].cost; j-- {
			own[j], own[j-1] = own[j-1], own[j]
		}
	}
	s := g.s
	for _, t := range own {
		if t.taken.Load() {
			continue
		}
		// Remove from the shared heap first so an idle worker doesn't pop a
		// task we are about to claim (cheap under the same lock either way).
		s.mu.Lock()
		if t.index >= 0 {
			heap.Remove(&s.heap, t.index)
		}
		s.mu.Unlock()
		if !t.taken.CompareAndSwap(false, true) {
			continue
		}
		s.depth.Add(-1)
		t.g.runTask(t, ws, true)
	}
	// Release the submission-phase hold (see NewGroup). If every task has
	// already finished, the group is complete and the close falls to us.
	if g.remaining.Add(-1) == 0 {
		close(g.done)
	}
	<-g.done
	g.mu.Lock()
	p, panicked := g.panicVal, g.panicked
	g.mu.Unlock()
	if panicked {
		panic(p)
	}
}

// runTask executes a claimed task and accounts its completion. The closing
// of done is what publishes every task's writes to the waiting caller. A
// panicking task is recovered (workers must survive any query's failure)
// and its panic value parked on the group for Wait to re-raise.
func (g *Group) runTask(t *task, ws *Workspace, byCaller bool) {
	defer func() {
		if p := recover(); p != nil {
			g.mu.Lock()
			if !g.panicked {
				g.panicked = true
				g.panicVal = p
			}
			g.mu.Unlock()
		}
		s := g.s
		s.executed.Add(1)
		if byCaller {
			s.callerRan.Add(1)
		}
		if g.remaining.Add(-1) == 0 {
			close(g.done)
		}
	}()
	t.run(ws)
}
