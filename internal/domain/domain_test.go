package domain

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntervalEmpty(t *testing.T) {
	tests := []struct {
		name string
		iv   Interval
		want bool
	}{
		{"normal", NewInterval(0, 1), false},
		{"point", Point(3), false},
		{"inverted", NewInterval(1, 0), true},
		{"full", Full, false},
		{"neg-point", Point(-7.5), false},
	}
	for _, tt := range tests {
		if got := tt.iv.Empty(); got != tt.want {
			t.Errorf("%s: Empty() = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestIntervalEmptyForIntegral(t *testing.T) {
	tests := []struct {
		iv   Interval
		want bool
	}{
		{NewInterval(0.2, 0.8), true},
		{NewInterval(0.2, 1.0), false},
		{NewInterval(1, 1), false},
		{NewInterval(1.1, 1.9), true},
		{NewInterval(-0.5, 0.5), false},
		{NewInterval(2, 1), true},
	}
	for _, tt := range tests {
		if got := tt.iv.EmptyFor(Integral); got != tt.want {
			t.Errorf("EmptyFor(Integral) on %v = %v, want %v", tt.iv, got, tt.want)
		}
	}
	// Continuous attributes never have lattice holes.
	if NewInterval(0.2, 0.8).EmptyFor(Continuous) {
		t.Error("continuous interval (0.2,0.8) reported empty")
	}
}

func TestIntervalIntersectHull(t *testing.T) {
	a := NewInterval(0, 10)
	b := NewInterval(5, 15)
	got := a.Intersect(b)
	if got.Lo != 5 || got.Hi != 10 {
		t.Errorf("Intersect = %v, want [5,10]", got)
	}
	h := a.Hull(b)
	if h.Lo != 0 || h.Hi != 15 {
		t.Errorf("Hull = %v, want [0,15]", h)
	}
	if !a.Overlaps(b) {
		t.Error("expected overlap")
	}
	c := NewInterval(20, 30)
	if a.Overlaps(c) {
		t.Error("unexpected overlap")
	}
	if !a.Intersect(c).Empty() {
		t.Error("expected empty intersection")
	}
	// Hull with empty operands.
	if h := (Interval{1, 0}).Hull(a); h != a {
		t.Errorf("empty.Hull(a) = %v, want %v", h, a)
	}
	if h := a.Hull(Interval{1, 0}); h != a {
		t.Errorf("a.Hull(empty) = %v, want %v", h, a)
	}
}

func TestIntervalIntersectProperties(t *testing.T) {
	// Intersection is commutative and contained in both operands.
	f := func(a1, a2, b1, b2 float64) bool {
		a := Interval{math.Min(a1, a2), math.Max(a1, a2)}
		b := Interval{math.Min(b1, b2), math.Max(b1, b2)}
		x := a.Intersect(b)
		y := b.Intersect(a)
		if x != y {
			return false
		}
		if x.Empty() {
			return true
		}
		return a.ContainsInterval(x) && b.ContainsInterval(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalHullProperties(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		a := Interval{math.Min(a1, a2), math.Max(a1, a2)}
		b := Interval{math.Min(b1, b2), math.Max(b1, b2)}
		h := a.Hull(b)
		return h.ContainsInterval(a) && h.ContainsInterval(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalMidRepresentative(t *testing.T) {
	if m := NewInterval(2, 4).Mid(); m != 3 {
		t.Errorf("Mid = %v, want 3", m)
	}
	if m := Full.Mid(); math.IsInf(m, 0) || math.IsNaN(m) {
		t.Errorf("Mid of Full = %v, want finite", m)
	}
	if m := (Interval{math.Inf(-1), 5}).Mid(); !(m <= 5) || math.IsInf(m, 0) {
		t.Errorf("Mid of (-inf,5] = %v", m)
	}
	if m := (Interval{5, math.Inf(1)}).Mid(); !(m >= 5) || math.IsInf(m, 0) {
		t.Errorf("Mid of [5,inf) = %v", m)
	}
	// Integral representative must land on an integer inside.
	iv := NewInterval(1.2, 3.7)
	r := iv.RepresentativeFor(Integral)
	if r != math.Trunc(r) || !iv.Contains(r) {
		t.Errorf("RepresentativeFor(Integral) = %v, want integer in %v", r, iv)
	}
	iv2 := NewInterval(2.0, 2.9)
	r2 := iv2.RepresentativeFor(Integral)
	if r2 != 2 {
		t.Errorf("RepresentativeFor = %v, want 2", r2)
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(
		Attr{Name: "a", Kind: Continuous, Domain: NewInterval(0, 1)},
		Attr{Name: "b", Kind: Integral, Domain: NewInterval(0, 9)},
	)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i := s.MustIndex("b"); i != 1 {
		t.Errorf("MustIndex(b) = %d", i)
	}
	if _, ok := s.Index("missing"); ok {
		t.Error("Index found missing attribute")
	}
	fb := s.FullBox()
	if len(fb) != 2 || fb[1].Hi != 9 {
		t.Errorf("FullBox = %v", fb)
	}
	names := s.Names()
	if names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestSchemaPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate", func() {
		NewSchema(Attr{Name: "x", Domain: Full}, Attr{Name: "x", Domain: Full})
	})
	mustPanic("empty name", func() {
		NewSchema(Attr{Name: "", Domain: Full})
	})
}

func TestBoxOperations(t *testing.T) {
	s := NewSchema(
		Attr{Name: "x", Kind: Continuous, Domain: NewInterval(0, 100)},
		Attr{Name: "y", Kind: Continuous, Domain: NewInterval(0, 100)},
	)
	a := Box{NewInterval(0, 10), NewInterval(0, 10)}
	b := Box{NewInterval(5, 20), NewInterval(5, 20)}
	c := a.Intersect(b)
	want := Box{NewInterval(5, 10), NewInterval(5, 10)}
	for i := range c {
		if c[i] != want[i] {
			t.Errorf("Intersect dim %d = %v, want %v", i, c[i], want[i])
		}
	}
	if c.Empty() {
		t.Error("intersection should be non-empty")
	}
	d := Box{NewInterval(50, 60), NewInterval(0, 10)}
	if a.Overlaps(d) {
		t.Error("unexpected overlap")
	}
	if !a.Contains(Row{5, 5}) || a.Contains(Row{11, 5}) {
		t.Error("Contains misbehaves")
	}
	if !s.FullBox().ContainsBox(a) {
		t.Error("full box should contain a")
	}
	if a.ContainsBox(s.FullBox()) {
		t.Error("a should not contain full box")
	}
	rep := a.Representative(s)
	if !a.Contains(rep) {
		t.Errorf("Representative %v not inside %v", rep, a)
	}
}

func TestBoxContainsBoxEmpty(t *testing.T) {
	a := Box{NewInterval(0, 1)}
	empty := Box{NewInterval(2, 1)}
	if !a.ContainsBox(empty) {
		t.Error("every box contains the empty box")
	}
	if !empty.Empty() {
		t.Error("empty box not reported empty")
	}
}

func TestBoxEmptyForIntegralLattice(t *testing.T) {
	s := NewSchema(Attr{Name: "k", Kind: Integral, Domain: NewInterval(0, 10)})
	b := Box{NewInterval(1.2, 1.8)}
	if !b.EmptyFor(s) {
		t.Error("box with integer-free interval should be empty for integral schema")
	}
	if b.Empty() {
		t.Error("same box is not empty over the reals")
	}
}

func TestBoxIntersectDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	Box{Full}.Intersect(Box{Full, Full})
}

func TestCategories(t *testing.T) {
	c := NewCategories([]string{"Chicago", "New York", "Chicago", "Trenton"})
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (dedup)", c.Len())
	}
	// Sorted stable codes.
	if c.Code("Chicago") != 0 || c.Code("New York") != 1 || c.Code("Trenton") != 2 {
		t.Errorf("unexpected codes: %d %d %d", c.Code("Chicago"), c.Code("New York"), c.Code("Trenton"))
	}
	if c.Label(1) != "New York" {
		t.Errorf("Label(1) = %q", c.Label(1))
	}
	// Adding a new label extends the domain.
	code := c.Code("Boston")
	if code != 3 || c.Len() != 4 {
		t.Errorf("new code = %d len = %d", code, c.Len())
	}
	d := c.Domain()
	if d.Lo != 0 || d.Hi != 3 {
		t.Errorf("Domain = %v", d)
	}
	if got := c.Label(99); got == "" {
		t.Error("out-of-range label should return placeholder")
	}
}

func TestCategoriesEmptyDomain(t *testing.T) {
	c := NewCategories(nil)
	if !c.Domain().Empty() {
		t.Error("empty categories should have empty domain")
	}
}
