// Package domain defines the value domain shared by every layer of the
// predicate-constraint framework: attributes, schemas, closed numeric
// intervals, and rows.
//
// The paper ("Fast and Reliable Missing Data Contingency Analysis with
// Predicate-Constraints", SIGMOD 2020) restricts predicates to conjunctions
// of ranges and inequalities over numeric attributes (Section 3.1); we model
// categorical attributes by coding category labels to integers, so every
// attribute domain is an interval of float64s. This keeps satisfiability
// checking exact and cheap (see internal/sat).
package domain

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind describes how an attribute's float64 encoding should be interpreted.
type Kind int

const (
	// Continuous attributes take any real value in their domain.
	Continuous Kind = iota
	// Integral attributes take integer values only (timestamps, counts,
	// category codes). Interval emptiness tests take the integer lattice
	// into account: (0.2, 0.8) is empty for an Integral attribute.
	Integral
)

func (k Kind) String() string {
	switch k {
	case Continuous:
		return "continuous"
	case Integral:
		return "integral"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attr is a named, typed attribute with a bounded domain.
type Attr struct {
	Name string
	Kind Kind
	// Domain is the full range of values the attribute may take. Predicates
	// and value constraints are clipped against it.
	Domain Interval
}

// Schema is an ordered list of attributes. Order matters: rows are stored as
// positional float64 slices.
type Schema struct {
	attrs []Attr
	index map[string]int
}

// NewSchema builds a schema from the given attributes.
// It panics on duplicate attribute names, which are always a programming
// error rather than a data error.
func NewSchema(attrs ...Attr) *Schema {
	s := &Schema{attrs: append([]Attr(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			panic("domain: attribute with empty name")
		}
		if _, dup := s.index[a.Name]; dup {
			panic("domain: duplicate attribute " + a.Name)
		}
		s.index[a.Name] = i
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attr { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attr { return append([]Attr(nil), s.attrs...) }

// Index returns the position of the named attribute and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex is Index that panics on unknown names.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic("domain: unknown attribute " + name)
	}
	return i
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// FullBox returns the box covering the entire schema domain.
func (s *Schema) FullBox() Box {
	b := make(Box, len(s.attrs))
	for i, a := range s.attrs {
		b[i] = a.Domain
	}
	return b
}

func (s *Schema) String() string {
	var sb strings.Builder
	sb.WriteString("Schema(")
	for i, a := range s.attrs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s:%s%v", a.Name, a.Kind, a.Domain)
	}
	sb.WriteString(")")
	return sb.String()
}

// Row is a tuple positionally aligned with a Schema.
type Row []float64

// Interval is a closed numeric interval [Lo, Hi]. An interval with Lo > Hi
// is empty. Infinite endpoints are allowed.
type Interval struct {
	Lo, Hi float64
}

// Full is the interval covering all of R.
var Full = Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval { return Interval{Lo: v, Hi: v} }

// NewInterval returns [lo, hi].
func NewInterval(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi} }

// Empty reports whether the interval contains no real point.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// EmptyFor reports whether the interval contains no point of the attribute
// kind's lattice: for Integral attributes an interval with no integer inside
// is empty even if Lo <= Hi.
func (iv Interval) EmptyFor(k Kind) bool {
	if iv.Empty() {
		return true
	}
	if k == Integral {
		return math.Ceil(iv.Lo) > math.Floor(iv.Hi)
	}
	return false
}

// Contains reports whether v lies in the closed interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// ContainsInterval reports whether other is a subset of iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.Empty() {
		return true
	}
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Intersect returns the intersection of two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Lo: math.Max(iv.Lo, other.Lo), Hi: math.Min(iv.Hi, other.Hi)}
}

// Overlaps reports whether the two closed intervals share at least one point.
func (iv Interval) Overlaps(other Interval) bool { return !iv.Intersect(other).Empty() }

// Hull returns the smallest interval containing both.
func (iv Interval) Hull(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{Lo: math.Min(iv.Lo, other.Lo), Hi: math.Max(iv.Hi, other.Hi)}
}

// Width returns Hi-Lo, or 0 for empty intervals.
func (iv Interval) Width() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Mid returns the midpoint of the interval; for half-infinite intervals it
// returns a finite representative point.
func (iv Interval) Mid() float64 {
	switch {
	case math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1):
		return 0
	case math.IsInf(iv.Lo, -1):
		return iv.Hi - 1
	case math.IsInf(iv.Hi, 1):
		return iv.Lo + 1
	default:
		return iv.Lo + (iv.Hi-iv.Lo)/2
	}
}

// RepresentativeFor returns a point of the interval on the attribute kind's
// lattice, assuming EmptyFor(k) is false.
func (iv Interval) RepresentativeFor(k Kind) float64 {
	m := iv.Mid()
	if k != Integral {
		return m
	}
	r := math.Round(m)
	if r < iv.Lo {
		r = math.Ceil(iv.Lo)
	}
	if r > iv.Hi {
		r = math.Floor(iv.Hi)
	}
	return r
}

func (iv Interval) String() string {
	if iv.Empty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi)
}

// Box is an axis-aligned box: one interval per schema attribute, positionally
// aligned. A nil interval set is not allowed; use Full per attribute instead.
type Box []Interval

// Clone returns a deep copy of the box.
func (b Box) Clone() Box { return append(Box(nil), b...) }

// Empty reports whether any dimension is an empty interval.
func (b Box) Empty() bool {
	for _, iv := range b {
		if iv.Empty() {
			return true
		}
	}
	return false
}

// EmptyFor reports emptiness taking attribute kinds from the schema into
// account (integer lattice holes count as empty).
func (b Box) EmptyFor(s *Schema) bool {
	for i, iv := range b {
		if iv.EmptyFor(s.Attr(i).Kind) {
			return true
		}
	}
	return false
}

// Intersect returns the per-dimension intersection of two boxes of equal
// dimensionality.
func (b Box) Intersect(other Box) Box {
	if len(b) != len(other) {
		panic("domain: box dimension mismatch")
	}
	out := make(Box, len(b))
	for i := range b {
		out[i] = b[i].Intersect(other[i])
	}
	return out
}

// Contains reports whether the row lies inside the box.
func (b Box) Contains(r Row) bool {
	for i, iv := range b {
		if !iv.Contains(r[i]) {
			return false
		}
	}
	return true
}

// ContainsBox reports whether other ⊆ b (empty boxes are subsets of
// everything).
func (b Box) ContainsBox(other Box) bool {
	if other.Empty() {
		return true
	}
	for i := range b {
		if !b[i].ContainsInterval(other[i]) {
			return false
		}
	}
	return true
}

// Overlaps reports whether the two boxes share at least one point.
func (b Box) Overlaps(other Box) bool { return !b.Intersect(other).Empty() }

// Representative returns a point inside the box on the schema's lattice,
// assuming the box is non-empty for the schema.
func (b Box) Representative(s *Schema) Row {
	r := make(Row, len(b))
	for i, iv := range b {
		r[i] = iv.RepresentativeFor(s.Attr(i).Kind)
	}
	return r
}

func (b Box) String() string {
	parts := make([]string, len(b))
	for i, iv := range b {
		parts[i] = iv.String()
	}
	return "Box{" + strings.Join(parts, " × ") + "}"
}

// Categories maps string category labels to stable integer codes, so
// categorical attributes (branch names, port codes, device ids) fit the
// numeric predicate language.
type Categories struct {
	codes  map[string]int
	labels []string
}

// NewCategories builds a coder over the given labels, sorted for stability.
func NewCategories(labels []string) *Categories {
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	c := &Categories{codes: make(map[string]int, len(sorted))}
	for _, l := range sorted {
		if _, ok := c.codes[l]; ok {
			continue
		}
		c.codes[l] = len(c.labels)
		c.labels = append(c.labels, l)
	}
	return c
}

// Code returns the integer code for a label, adding it if unseen.
func (c *Categories) Code(label string) int {
	if i, ok := c.codes[label]; ok {
		return i
	}
	c.codes[label] = len(c.labels)
	c.labels = append(c.labels, label)
	return len(c.labels) - 1
}

// Label returns the label for a code.
func (c *Categories) Label(code int) string {
	if code < 0 || code >= len(c.labels) {
		return fmt.Sprintf("<code %d>", code)
	}
	return c.labels[code]
}

// Len returns the number of known categories.
func (c *Categories) Len() int { return len(c.labels) }

// Domain returns the interval of valid codes, suitable for an Integral Attr.
func (c *Categories) Domain() Interval {
	if len(c.labels) == 0 {
		return Interval{Lo: 0, Hi: -1}
	}
	return Interval{Lo: 0, Hi: float64(len(c.labels) - 1)}
}
