package milp

import (
	"math"
	"math/rand"
	"testing"

	"pcbound/internal/lp"
)

// randomMILP builds a bounded random integer program shaped like the cell
// allocation problems internal/core produces: non-negative integer counts,
// window rows over variable subsets, per-variable caps.
func randomMILP(rng *rand.Rand) (Problem, bool) {
	n := 2 + rng.Intn(5)
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.Float64()*20 - 5
	}
	maximize := rng.Intn(2) == 0
	var base *lp.Problem
	if maximize {
		base = lp.NewMaximize(c)
	} else {
		base = lp.NewMinimize(c)
	}
	rows := 1 + rng.Intn(4)
	for r := 0; r < rows; r++ {
		nnz := 1 + rng.Intn(n)
		idx := make([]int, 0, nnz)
		val := make([]float64, 0, nnz)
		for k := 0; k < nnz; k++ {
			idx = append(idx, rng.Intn(n))
			val = append(val, 1)
		}
		hi := float64(2 + rng.Intn(30))
		_ = base.AddSparse(idx, val, lp.LE, hi)
		if rng.Intn(2) == 0 {
			lo := math.Floor(hi * rng.Float64() * 0.6)
			if lo > 0 {
				_ = base.AddSparse(idx, val, lp.GE, lo)
			}
		}
	}
	for j := 0; j < n; j++ {
		_ = base.AddUpperBound(j, float64(3+rng.Intn(25))+0.5) // fractional caps force branching
	}
	return Problem{LP: base}, maximize
}

func run(p Problem, opts Options, maximize bool) Solution {
	if maximize {
		return SolveMax(p, opts)
	}
	return SolveMin(p, opts)
}

func sameMILPSolution(a, b Solution) bool {
	if a.Status != b.Status || a.Objective != b.Objective || a.Bound != b.Bound || a.Nodes != b.Nodes {
		return false
	}
	if len(a.X) != len(b.X) {
		return false
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			return false
		}
	}
	return true
}

// TestSolveMatchesReference verifies the shared-problem, cached-solution
// branch-and-bound explores the same tree as the clone-based reference:
// status, objective, bound, incumbent and node count are all bit-identical.
func TestSolveMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var cx lp.Context
	for trial := 0; trial < 200; trial++ {
		p, maximize := randomMILP(rng)
		got := run(p, Options{Ctx: &cx}, maximize)
		want := run(p, Options{Reference: true}, maximize)
		if !sameMILPSolution(got, want) {
			t.Fatalf("trial %d (max=%v):\n got  %+v\n want %+v", trial, maximize, got, want)
		}
	}
}

// TestSolveRestoresProblem confirms the push/pop materialization leaves the
// base LP with its original rows, so callers can reuse it.
func TestSolveRestoresProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		p, maximize := randomMILP(rng)
		before := p.LP.NumConstraints()
		first := run(p, Options{}, maximize)
		if p.LP.NumConstraints() != before {
			t.Fatalf("trial %d: solve left %d rows, want %d", trial, p.LP.NumConstraints(), before)
		}
		second := run(p, Options{}, maximize)
		if !sameMILPSolution(first, second) {
			t.Fatalf("trial %d: repeat solve diverged", trial)
		}
	}
}

// TestWarmStartAgreesWithCold checks Options.WarmStart: same statuses and
// node-for-node equal objectives up to LP tolerance. Warm starts may pivot
// differently, so exact float equality is not required — but any optimal
// incumbent must be a genuinely optimal objective value.
func TestWarmStartAgreesWithCold(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	var cx lp.Context
	warmed := 0
	for trial := 0; trial < 200; trial++ {
		p, maximize := randomMILP(rng)
		cold := run(p, Options{}, maximize)
		warm := run(p, Options{WarmStart: true, Ctx: &cx}, maximize)
		if cold.Status != warm.Status {
			t.Fatalf("trial %d: warm status %v != cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status == Optimal {
			warmed++
			if math.Abs(cold.Objective-warm.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("trial %d: warm objective %v != cold %v", trial, warm.Objective, cold.Objective)
			}
		}
	}
	if warmed < 100 {
		t.Fatalf("only %d optimal warm-started solves; generator too restrictive", warmed)
	}
}
