package milp

import (
	"container/heap"
	"math"

	"pcbound/internal/lp"
)

// This file preserves the original branch-and-bound implementation — a deep
// problem clone per child and a second LP solve when a node is popped — as a
// reference for differential tests and the BenchmarkHotPath baseline
// (enable with Options.Reference). The optimized path in milp.go explores
// the same tree with the same pruning decisions and returns bit-identical
// solutions.

type refNode struct {
	prob  *lp.Problem
	bound float64 // LP relaxation objective (in maximization orientation)
	depth int
}

type refNodeQueue []*refNode

func (q refNodeQueue) Len() int            { return len(q) }
func (q refNodeQueue) Less(i, j int) bool  { return q[i].bound > q[j].bound } // best-first
func (q refNodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refNodeQueue) Push(x interface{}) { *q = append(*q, x.(*refNode)) }
func (q *refNodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

func solveReference(p Problem, opts Options, maximize bool) Solution {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = DefaultMaxNodes
	}
	if opts.IntTol <= 0 {
		opts.IntTol = 1e-6
	}
	isInt := func(i int) bool {
		if p.Integer == nil {
			return true
		}
		return p.Integer[i]
	}
	// dir converts objectives into "maximization orientation" so the
	// best-first queue and pruning logic are direction-free.
	dir := 1.0
	if !maximize {
		dir = -1.0
	}

	root := &refNode{prob: p.LP}
	sol := lp.Solve(root.prob)
	switch sol.Status {
	case lp.Infeasible:
		return Solution{Status: Infeasible, Nodes: 1}
	case lp.Unbounded:
		return Solution{Status: Unbounded, Nodes: 1, Bound: dir * math.Inf(1)}
	case lp.IterLimit:
		// Extremely rare; treat conservatively as an unbounded relaxation.
		return Solution{Status: BoundOnly, Bound: dir * math.Inf(1), Nodes: 1}
	}
	root.bound = dir * sol.Objective

	var (
		best      []float64
		bestObj   = math.Inf(-1) // in maximization orientation
		haveBest  bool
		nodes     int
		openQueue = &refNodeQueue{}
	)
	heap.Init(openQueue)

	process := func(n *refNode, lpSol lp.Solution) {
		// Find the most fractional integer variable.
		frac, fracIdx := -1.0, -1
		for i, v := range lpSol.X {
			if !isInt(i) {
				continue
			}
			f := math.Abs(v - math.Round(v))
			if f > opts.IntTol && f > frac {
				frac, fracIdx = f, i
			}
		}
		if fracIdx < 0 {
			// Integer-feasible.
			obj := dir * lpSol.Objective
			if obj > bestObj {
				bestObj = obj
				best = append([]float64(nil), lpSol.X...)
				// Snap near-integers exactly.
				for i := range best {
					if isInt(i) {
						best[i] = math.Round(best[i])
					}
				}
				haveBest = true
			}
			return
		}
		v := lpSol.X[fracIdx]
		down := n.prob.Clone()
		_ = down.AddSparse([]int{fracIdx}, []float64{1}, lp.LE, math.Floor(v))
		up := n.prob.Clone()
		_ = up.AddSparse([]int{fracIdx}, []float64{1}, lp.GE, math.Ceil(v))
		for _, child := range []*lp.Problem{down, up} {
			cs := lp.Solve(child)
			nodes++
			if cs.Status != lp.Optimal {
				continue
			}
			cb := dir * cs.Objective
			if haveBest && cb <= bestObj+1e-9 {
				continue // pruned by bound
			}
			heap.Push(openQueue, &refNode{prob: child, bound: cb, depth: n.depth + 1})
		}
	}

	nodes = 1
	process(root, sol)
	for openQueue.Len() > 0 && nodes < opts.MaxNodes {
		n := heap.Pop(openQueue).(*refNode)
		if haveBest && n.bound <= bestObj+1e-9 {
			continue
		}
		ns := lp.Solve(n.prob)
		if ns.Status != lp.Optimal {
			continue
		}
		process(n, ns)
	}

	// The global outer bound is the max of the incumbent and all open nodes.
	globalBound := bestObj
	if !haveBest {
		globalBound = math.Inf(-1)
	}
	if openQueue.Len() > 0 {
		for _, n := range *openQueue {
			if n.bound > globalBound {
				globalBound = n.bound
			}
		}
	} else if !haveBest {
		// Search exhausted with no incumbent: the MILP is integer-infeasible.
		return Solution{Status: Infeasible, Nodes: nodes}
	}
	if math.IsInf(globalBound, -1) {
		globalBound = root.bound
	}

	out := Solution{Nodes: nodes, Bound: dir * globalBound}
	if haveBest {
		out.Objective = dir * bestObj
		out.X = best
		if openQueue.Len() == 0 || globalBound <= bestObj+1e-9 {
			out.Status = Optimal
			out.Bound = out.Objective
		} else {
			out.Status = Feasible
		}
		return out
	}
	out.Status = BoundOnly
	return out
}
