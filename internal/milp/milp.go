// Package milp implements a branch-and-bound mixed-integer linear program
// solver over the simplex solver in internal/lp. It substitutes for the
// off-the-shelf MILP solver the paper uses to allocate rows to decomposition
// cells (Section 4.2).
//
// A property this package leans on: for the bounding use-case, the LP
// relaxation optimum is itself a sound outer bound on the integer optimum
// (relaxations only widen the feasible region). Solve therefore always
// returns both the best integer incumbent and the tightest proven relaxation
// bound, and internal/core uses the bound when the node budget expires —
// bounds get looser, never wrong.
package milp

import (
	"container/heap"
	"math"

	"pcbound/internal/lp"
)

// Problem is a mixed-integer LP: the base LP plus integrality flags.
type Problem struct {
	// LP is the underlying linear program (variables are non-negative;
	// bounds are rows). The problem takes ownership of it.
	LP *lp.Problem
	// Integer marks which variables must take integer values. A nil slice
	// means all variables are integral (the common case in this system,
	// where variables are row counts).
	Integer []bool
}

// Options tunes the search.
type Options struct {
	// MaxNodes caps the number of branch-and-bound nodes explored.
	// Zero means DefaultMaxNodes.
	MaxNodes int
	// IntTol is the integrality tolerance. Zero means 1e-6.
	IntTol float64
}

// DefaultMaxNodes is the node budget used when Options.MaxNodes is zero.
const DefaultMaxNodes = 20000

// Status describes the solve outcome.
type Status int

const (
	// Optimal means the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible means an integer solution was found but the node budget
	// expired before proving optimality; Bound still outer-bounds the
	// true optimum.
	Feasible
	// BoundOnly means no integer solution was found within the budget, but
	// Bound is a valid outer bound on the optimum (if one exists).
	BoundOnly
	// Infeasible means the LP relaxation (hence the MILP) has no solution.
	Infeasible
	// Unbounded means the relaxation is unbounded.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case BoundOnly:
		return "bound-only"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Solution is a MILP solve result.
type Solution struct {
	Status Status
	// Objective is the incumbent's objective (valid for Optimal/Feasible).
	Objective float64
	// Bound outer-bounds the true optimum: for maximization Bound >= opt,
	// for minimization Bound <= opt. Equal to Objective when Optimal.
	Bound float64
	// X is the incumbent point (nil unless Optimal/Feasible).
	X []float64
	// Nodes is the number of nodes explored.
	Nodes int
}

type node struct {
	prob  *lp.Problem
	bound float64 // LP relaxation objective (in maximization orientation)
	depth int
}

type nodeQueue []*node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound > q[j].bound } // best-first
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Maximize reports whether the problem's LP maximizes. The lp package does
// not expose orientation, so callers of Solve pass it explicitly via the
// constructor helpers below.
type orientation bool

// SolveMax solves a maximization MILP.
func SolveMax(p Problem, opts Options) Solution { return solve(p, opts, true) }

// SolveMin solves a minimization MILP.
func SolveMin(p Problem, opts Options) Solution { return solve(p, opts, false) }

func solve(p Problem, opts Options, maximize bool) Solution {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = DefaultMaxNodes
	}
	if opts.IntTol <= 0 {
		opts.IntTol = 1e-6
	}
	isInt := func(i int) bool {
		if p.Integer == nil {
			return true
		}
		return p.Integer[i]
	}
	// dir converts objectives into "maximization orientation" so the
	// best-first queue and pruning logic are direction-free.
	dir := 1.0
	if !maximize {
		dir = -1.0
	}

	root := &node{prob: p.LP}
	sol := lp.Solve(root.prob)
	switch sol.Status {
	case lp.Infeasible:
		return Solution{Status: Infeasible, Nodes: 1}
	case lp.Unbounded:
		return Solution{Status: Unbounded, Nodes: 1, Bound: dir * math.Inf(1)}
	case lp.IterLimit:
		// Extremely rare; treat conservatively as an unbounded relaxation.
		return Solution{Status: BoundOnly, Bound: dir * math.Inf(1), Nodes: 1}
	}
	root.bound = dir * sol.Objective

	var (
		best      []float64
		bestObj   = math.Inf(-1) // in maximization orientation
		haveBest  bool
		nodes     int
		openQueue = &nodeQueue{}
	)
	heap.Init(openQueue)

	process := func(n *node, lpSol lp.Solution) {
		// Find the most fractional integer variable.
		frac, fracIdx := -1.0, -1
		for i, v := range lpSol.X {
			if !isInt(i) {
				continue
			}
			f := math.Abs(v - math.Round(v))
			if f > opts.IntTol && f > frac {
				frac, fracIdx = f, i
			}
		}
		if fracIdx < 0 {
			// Integer-feasible.
			obj := dir * lpSol.Objective
			if obj > bestObj {
				bestObj = obj
				best = append([]float64(nil), lpSol.X...)
				// Snap near-integers exactly.
				for i := range best {
					if isInt(i) {
						best[i] = math.Round(best[i])
					}
				}
				haveBest = true
			}
			return
		}
		v := lpSol.X[fracIdx]
		down := n.prob.Clone()
		_ = down.AddSparse([]int{fracIdx}, []float64{1}, lp.LE, math.Floor(v))
		up := n.prob.Clone()
		_ = up.AddSparse([]int{fracIdx}, []float64{1}, lp.GE, math.Ceil(v))
		for _, child := range []*lp.Problem{down, up} {
			cs := lp.Solve(child)
			nodes++
			if cs.Status != lp.Optimal {
				continue
			}
			cb := dir * cs.Objective
			if haveBest && cb <= bestObj+1e-9 {
				continue // pruned by bound
			}
			heap.Push(openQueue, &node{prob: child, bound: cb, depth: n.depth + 1})
		}
	}

	nodes = 1
	process(root, sol)
	for openQueue.Len() > 0 && nodes < opts.MaxNodes {
		n := heap.Pop(openQueue).(*node)
		if haveBest && n.bound <= bestObj+1e-9 {
			continue
		}
		ns := lp.Solve(n.prob)
		if ns.Status != lp.Optimal {
			continue
		}
		process(n, ns)
	}

	// The global outer bound is the max of the incumbent and all open nodes.
	globalBound := bestObj
	if !haveBest {
		globalBound = math.Inf(-1)
	}
	if openQueue.Len() > 0 {
		for _, n := range *openQueue {
			if n.bound > globalBound {
				globalBound = n.bound
			}
		}
	} else if !haveBest {
		// Search exhausted with no incumbent: the MILP is integer-infeasible.
		return Solution{Status: Infeasible, Nodes: nodes}
	}
	if math.IsInf(globalBound, -1) {
		globalBound = root.bound
	}

	out := Solution{Nodes: nodes, Bound: dir * globalBound}
	if haveBest {
		out.Objective = dir * bestObj
		out.X = best
		if openQueue.Len() == 0 || globalBound <= bestObj+1e-9 {
			out.Status = Optimal
			out.Bound = out.Objective
		} else {
			out.Status = Feasible
		}
		return out
	}
	out.Status = BoundOnly
	return out
}
