// Package milp implements a branch-and-bound mixed-integer linear program
// solver over the simplex solver in internal/lp. It substitutes for the
// off-the-shelf MILP solver the paper uses to allocate rows to decomposition
// cells (Section 4.2).
//
// A property this package leans on: for the bounding use-case, the LP
// relaxation optimum is itself a sound outer bound on the integer optimum
// (relaxations only widen the feasible region). Solve therefore always
// returns both the best integer incumbent and the tightest proven relaxation
// bound, and internal/core uses the bound when the node budget expires —
// bounds get looser, never wrong.
//
// The search keeps one shared LP: each node records only its branch rows (a
// persistent path of single-variable bounds), materialized onto the base
// problem with PushRow/PopRow for the node's single LP solve, whose solution
// is cached on the node. Compared to the reference implementation
// (reference.go) this removes the per-child problem deep copy and the
// second, redundant solve of every expanded node, while visiting exactly the
// same tree and producing bit-identical solutions. Options.WarmStart
// additionally re-optimizes children from the parent's optimal basis via
// dual simplex — faster still, but pivot paths (and last-ulp rounding) may
// then differ from the cold path.
package milp

import (
	"container/heap"
	"math"

	"pcbound/internal/lp"
)

// Problem is a mixed-integer LP: the base LP plus integrality flags.
type Problem struct {
	// LP is the underlying linear program (variables are non-negative;
	// bounds are rows). The problem takes ownership of it; the solver may
	// temporarily push rows onto it during the search but always restores
	// it before returning.
	LP *lp.Problem
	// Integer marks which variables must take integer values. A nil slice
	// means all variables are integral (the common case in this system,
	// where variables are row counts).
	Integer []bool
}

// Options tunes the search.
type Options struct {
	// MaxNodes caps the number of branch-and-bound nodes explored.
	// Zero means DefaultMaxNodes.
	MaxNodes int
	// IntTol is the integrality tolerance. Zero means 1e-6.
	IntTol float64
	// WarmStart re-optimizes child relaxations from the parent node's
	// optimal basis (dual simplex) instead of solving cold. Off by default:
	// warm-started pivot sequences can differ in last-ulp rounding, and the
	// default configuration guarantees results bit-identical to Reference.
	WarmStart bool
	// Ctx optionally supplies a reusable LP solve context (one per worker);
	// nil allocates a private one per Solve call.
	Ctx *lp.Context
	// Work optionally supplies reusable branch-and-bound scratch (node
	// queue and path-materialization buffers). Like Ctx it is per-executor
	// state: one per scheduler worker / solve context, never shared between
	// concurrent solves. Reuse changes no arithmetic — results are
	// bit-identical with or without it.
	Work *Workspace
	// Reference forces the original clone-per-child, solve-twice
	// branch-and-bound (reference.go). It exists for differential testing
	// and benchmarking; results are bit-identical to the default path.
	Reference bool
}

// DefaultMaxNodes is the node budget used when Options.MaxNodes is zero.
const DefaultMaxNodes = 20000

// Status describes the solve outcome.
type Status int

const (
	// Optimal means the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible means an integer solution was found but the node budget
	// expired before proving optimality; Bound still outer-bounds the
	// true optimum.
	Feasible
	// BoundOnly means no integer solution was found within the budget, but
	// Bound is a valid outer bound on the optimum (if one exists).
	BoundOnly
	// Infeasible means the LP relaxation (hence the MILP) has no solution.
	Infeasible
	// Unbounded means the relaxation is unbounded.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case BoundOnly:
		return "bound-only"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Solution is a MILP solve result.
type Solution struct {
	Status Status
	// Objective is the incumbent's objective (valid for Optimal/Feasible).
	Objective float64
	// Bound outer-bounds the true optimum: for maximization Bound >= opt,
	// for minimization Bound <= opt. Equal to Objective when Optimal.
	Bound float64
	// X is the incumbent point (nil unless Optimal/Feasible).
	X []float64
	// Nodes is the number of nodes explored.
	Nodes int
}

// branchRow is one branching decision: x[idx] (sense) rhs. Nodes share their
// ancestors' rows through prev, so a node's constraint set is its root-to-
// node path — materialized onto the shared base LP only while the node's
// relaxation is being solved.
type branchRow struct {
	prev  *branchRow
	sense lp.Sense
	rhs   float64
	idx   [1]int
	val   [1]float64
	depth int
}

type node struct {
	path  *branchRow
	bound float64 // LP relaxation objective (in maximization orientation)
	depth int
	sol   lp.Solution // cached relaxation solution (solved once, at creation)
	basis []int       // optimal basis for warm-starting children (WarmStart only)
}

type nodeQueue []*node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound > q[j].bound } // best-first
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Workspace holds branch-and-bound scratch reused across Solve calls: the
// open-node queue's backing array and the root-first path buffer node
// materialization walks. The zero value is ready to use. A Workspace is not
// safe for concurrent use; pool one per executor alongside its lp.Context.
type Workspace struct {
	queue nodeQueue
	path  []*branchRow
}

// reset returns the workspace's buffers emptied for a fresh search. solve
// also clears node references on exit (see its defer), so a pooled idle
// workspace holds only empty backing arrays; the clear here is defensive.
func (w *Workspace) reset() (*nodeQueue, []*branchRow) {
	clear(w.queue)
	w.queue = w.queue[:0]
	return &w.queue, w.path[:0]
}

// SolveMax solves a maximization MILP.
func SolveMax(p Problem, opts Options) Solution { return solve(p, opts, true) }

// SolveMin solves a minimization MILP.
func SolveMin(p Problem, opts Options) Solution { return solve(p, opts, false) }

func solve(p Problem, opts Options, maximize bool) Solution {
	if opts.Reference {
		return solveReference(p, opts, maximize)
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = DefaultMaxNodes
	}
	if opts.IntTol <= 0 {
		opts.IntTol = 1e-6
	}
	cx := opts.Ctx
	if cx == nil {
		cx = &lp.Context{}
	}
	isInt := func(i int) bool {
		if p.Integer == nil {
			return true
		}
		return p.Integer[i]
	}
	// dir converts objectives into "maximization orientation" so the
	// best-first queue and pruning logic are direction-free.
	dir := 1.0
	if !maximize {
		dir = -1.0
	}

	sol := cx.Solve(p.LP)
	switch sol.Status {
	case lp.Infeasible:
		return Solution{Status: Infeasible, Nodes: 1}
	case lp.Unbounded:
		return Solution{Status: Unbounded, Nodes: 1, Bound: dir * math.Inf(1)}
	case lp.IterLimit:
		// Extremely rare; treat conservatively as an unbounded relaxation.
		return Solution{Status: BoundOnly, Bound: dir * math.Inf(1), Nodes: 1}
	}
	root := &node{bound: dir * sol.Objective, sol: sol}
	if opts.WarmStart {
		root.basis = cx.Basis()
	}

	work := opts.Work
	if work == nil {
		work = &Workspace{}
	}
	openQueue, pathBuf := work.reset()
	var (
		best     []float64
		bestObj  = math.Inf(-1) // in maximization orientation
		haveBest bool
		nodes    int
	)
	heap.Init(openQueue)
	defer func() {
		// Hand the (possibly grown) buffers back for the next search, and
		// drop every node reference now: a pooled workspace may sit idle
		// indefinitely, and leftover open nodes pin solution vectors and
		// warm-start bases. (The final bound scan above runs before this.)
		clear(work.queue)
		work.queue = work.queue[:0]
		clear(pathBuf[:cap(pathBuf)])
		work.path = pathBuf[:0]
	}()

	// solveNode materializes the node path onto the shared base LP, solves
	// the relaxation (warm-started from the parent basis when enabled), and
	// restores the LP.
	solveNode := func(path *branchRow, parentBasis []int) lp.Solution {
		pathBuf = pathBuf[:0]
		for r := path; r != nil; r = r.prev {
			pathBuf = append(pathBuf, r)
		}
		for i := len(pathBuf) - 1; i >= 0; i-- {
			r := pathBuf[i]
			_ = p.LP.PushRow(r.idx[:], r.val[:], r.sense, r.rhs)
		}
		var s lp.Solution
		if opts.WarmStart && parentBasis != nil {
			s = cx.SolveFrom(p.LP, parentBasis)
		} else {
			s = cx.Solve(p.LP)
		}
		for range pathBuf {
			p.LP.PopRow()
		}
		return s
	}

	process := func(n *node, lpSol lp.Solution) {
		// Find the most fractional integer variable.
		frac, fracIdx := -1.0, -1
		for i, v := range lpSol.X {
			if !isInt(i) {
				continue
			}
			f := math.Abs(v - math.Round(v))
			if f > opts.IntTol && f > frac {
				frac, fracIdx = f, i
			}
		}
		if fracIdx < 0 {
			// Integer-feasible.
			obj := dir * lpSol.Objective
			if obj > bestObj {
				bestObj = obj
				best = append([]float64(nil), lpSol.X...)
				// Snap near-integers exactly.
				for i := range best {
					if isInt(i) {
						best[i] = math.Round(best[i])
					}
				}
				haveBest = true
			}
			return
		}
		v := lpSol.X[fracIdx]
		for _, branch := range [2]struct {
			sense lp.Sense
			rhs   float64
		}{{lp.LE, math.Floor(v)}, {lp.GE, math.Ceil(v)}} {
			childPath := &branchRow{
				prev: n.path, sense: branch.sense, rhs: branch.rhs,
				idx: [1]int{fracIdx}, val: [1]float64{1}, depth: n.depth + 1,
			}
			cs := solveNode(childPath, n.basis)
			nodes++
			if cs.Status != lp.Optimal {
				continue
			}
			cb := dir * cs.Objective
			if haveBest && cb <= bestObj+1e-9 {
				continue // pruned by bound
			}
			child := &node{path: childPath, bound: cb, depth: n.depth + 1, sol: cs}
			if opts.WarmStart {
				child.basis = cx.Basis()
			}
			heap.Push(openQueue, child)
		}
	}

	nodes = 1
	process(root, sol)
	for openQueue.Len() > 0 && nodes < opts.MaxNodes {
		n := heap.Pop(openQueue).(*node)
		if haveBest && n.bound <= bestObj+1e-9 {
			continue
		}
		// The node's relaxation was solved when it was created; the cached
		// solution replaces the reference implementation's re-solve.
		process(n, n.sol)
	}

	// The global outer bound is the max of the incumbent and all open nodes.
	globalBound := bestObj
	if !haveBest {
		globalBound = math.Inf(-1)
	}
	if openQueue.Len() > 0 {
		for _, n := range *openQueue {
			if n.bound > globalBound {
				globalBound = n.bound
			}
		}
	} else if !haveBest {
		// Search exhausted with no incumbent: the MILP is integer-infeasible.
		return Solution{Status: Infeasible, Nodes: nodes}
	}
	if math.IsInf(globalBound, -1) {
		globalBound = root.bound
	}

	out := Solution{Nodes: nodes, Bound: dir * globalBound}
	if haveBest {
		out.Objective = dir * bestObj
		out.X = best
		if openQueue.Len() == 0 || globalBound <= bestObj+1e-9 {
			out.Status = Optimal
			out.Bound = out.Objective
		} else {
			out.Status = Feasible
		}
		return out
	}
	out.Status = BoundOnly
	return out
}
