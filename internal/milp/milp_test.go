package milp

import (
	"math"
	"math/rand"
	"testing"

	"pcbound/internal/lp"
)

func TestIntegerKnapsack(t *testing.T) {
	// max 5x + 4y s.t. 6x + 5y <= 23, x,y integer >= 0.
	// LP relaxation: x = 23/6 ≈ 3.83, obj ≈ 19.17.
	// Integer optimum: x=3, y=1 -> 19.
	p := lp.NewMaximize([]float64{5, 4})
	if err := p.AddDense([]float64{6, 5}, lp.LE, 23); err != nil {
		t.Fatal(err)
	}
	sol := SolveMax(Problem{LP: p}, Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-19) > 1e-6 {
		t.Errorf("objective = %v, want 19", sol.Objective)
	}
	if sol.X[0] != 3 || sol.X[1] != 1 {
		t.Errorf("X = %v, want [3 1]", sol.X)
	}
	if math.Abs(sol.Bound-19) > 1e-6 {
		t.Errorf("Bound = %v, want 19 at optimality", sol.Bound)
	}
}

func TestMinimization(t *testing.T) {
	// min 3x + 2y s.t. x + y >= 4.5, x,y integer -> total 5 rows at least;
	// optimum all-y: y=5 obj 10? x=0,y=5: 10. x=1,y=4: 11. x=2,y=3: 12.
	p := lp.NewMinimize([]float64{3, 2})
	if err := p.AddDense([]float64{1, 1}, lp.GE, 4.5); err != nil {
		t.Fatal(err)
	}
	sol := SolveMin(Problem{LP: p}, Options{})
	if sol.Status != Optimal || math.Abs(sol.Objective-10) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 10", sol.Status, sol.Objective)
	}
	// Bound must outer-bound from below for minimization.
	if sol.Bound > sol.Objective+1e-9 {
		t.Errorf("min Bound %v > Objective %v", sol.Bound, sol.Objective)
	}
}

func TestMixedInteger(t *testing.T) {
	// x integer, y continuous. max x + 10y s.t. x + 5y <= 7.5, x <= 3.
	// With x=3: y = 0.9 -> 12. With x=2: y=1.1 -> 13. x=0: y=1.5 -> 15.
	p := lp.NewMaximize([]float64{1, 10})
	if err := p.AddDense([]float64{1, 5}, lp.LE, 7.5); err != nil {
		t.Fatal(err)
	}
	if err := p.AddUpperBound(0, 3); err != nil {
		t.Fatal(err)
	}
	sol := SolveMax(Problem{LP: p, Integer: []bool{true, false}}, Options{})
	if sol.Status != Optimal || math.Abs(sol.Objective-15) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 15", sol.Status, sol.Objective)
	}
	if sol.X[0] != 0 {
		t.Errorf("x = %v, want 0", sol.X[0])
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := lp.NewMaximize([]float64{1})
	if err := p.AddDense([]float64{1}, lp.GE, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.AddDense([]float64{1}, lp.LE, 2); err != nil {
		t.Fatal(err)
	}
	sol := SolveMax(Problem{LP: p}, Options{})
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestIntegerInfeasibleButLPFeasible(t *testing.T) {
	// 0.4 <= x <= 0.6 has no integer point.
	p := lp.NewMaximize([]float64{1})
	if err := p.AddDense([]float64{1}, lp.GE, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddDense([]float64{1}, lp.LE, 0.6); err != nil {
		t.Fatal(err)
	}
	sol := SolveMax(Problem{LP: p}, Options{})
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible (no integer point)", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := lp.NewMaximize([]float64{1})
	sol := SolveMax(Problem{LP: p}, Options{})
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
	if !math.IsInf(sol.Bound, 1) {
		t.Errorf("Bound = %v, want +inf", sol.Bound)
	}
}

func TestPaperNumericalExample(t *testing.T) {
	// Section 4.4: max 129.99 x1 + 149.99 x2,
	// 50 <= x1 <= 100, 75 <= x1 + x2 <= 125 -> 17748.75 (integral already).
	p := lp.NewMaximize([]float64{129.99, 149.99})
	for _, c := range []struct {
		a     []float64
		sense lp.Sense
		rhs   float64
	}{
		{[]float64{1, 0}, lp.GE, 50},
		{[]float64{1, 0}, lp.LE, 100},
		{[]float64{1, 1}, lp.GE, 75},
		{[]float64{1, 1}, lp.LE, 125},
	} {
		if err := p.AddDense(c.a, c.sense, c.rhs); err != nil {
			t.Fatal(err)
		}
	}
	sol := SolveMax(Problem{LP: p}, Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-17748.75) > 1e-6 {
		t.Errorf("objective = %v, want 17748.75", sol.Objective)
	}
	if sol.X[0] != 50 || sol.X[1] != 75 {
		t.Errorf("X = %v, want [50 75]", sol.X)
	}
}

func TestNodeBudgetStillSound(t *testing.T) {
	// A problem needing branching, solved with a node budget of 2: the
	// returned Bound must still be >= the true integer optimum.
	p := lp.NewMaximize([]float64{5, 4, 3, 7, 6})
	if err := p.AddDense([]float64{6, 5, 4, 9, 7}, lp.LE, 23.5); err != nil {
		t.Fatal(err)
	}
	full := SolveMax(Problem{LP: p.Clone()}, Options{})
	if full.Status != Optimal {
		t.Fatalf("full solve status %v", full.Status)
	}
	tight := SolveMax(Problem{LP: p}, Options{MaxNodes: 2})
	if tight.Bound < full.Objective-1e-6 {
		t.Errorf("budgeted Bound %v < true optimum %v", tight.Bound, full.Objective)
	}
}

// TestRandomAgainstBruteForce cross-checks B&B against exhaustive integer
// enumeration on small random allocation problems shaped like the paper's
// cell MILPs (interval sum constraints over subsets).
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(3) // 2-4 cells
		c := make([]float64, n)
		for i := range c {
			c[i] = float64(rng.Intn(20)) / 2
		}
		p := lp.NewMaximize(c)
		type con struct {
			mask   []bool
			lo, hi float64
		}
		m := 1 + rng.Intn(3)
		var cons []con
		for k := 0; k < m; k++ {
			mask := make([]bool, n)
			var idx []int
			var val []float64
			for i := range mask {
				if rng.Intn(2) == 0 {
					mask[i] = true
					idx = append(idx, i)
					val = append(val, 1)
				}
			}
			if len(idx) == 0 {
				mask[0] = true
				idx = append(idx, 0)
				val = append(val, 1)
			}
			lo := float64(rng.Intn(4))
			hi := lo + float64(rng.Intn(6))
			cons = append(cons, con{mask, lo, hi})
			if err := p.AddSparse(idx, val, lp.GE, lo); err != nil {
				t.Fatal(err)
			}
			if err := p.AddSparse(idx, val, lp.LE, hi); err != nil {
				t.Fatal(err)
			}
		}
		// Global cap keeps brute force cheap.
		capAll := make([]float64, n)
		for i := range capAll {
			capAll[i] = 1
		}
		if err := p.AddDense(capAll, lp.LE, 10); err != nil {
			t.Fatal(err)
		}
		sol := SolveMax(Problem{LP: p}, Options{})

		// Brute force over x_i in [0,10].
		best := math.Inf(-1)
		var rec func(i int, x []int, sum int)
		rec = func(i int, x []int, sum int) {
			if sum > 10 {
				return
			}
			if i == n {
				for _, cn := range cons {
					s := 0
					for j := range x {
						if cn.mask[j] {
							s += x[j]
						}
					}
					if float64(s) < cn.lo || float64(s) > cn.hi {
						return
					}
				}
				v := 0.0
				for j := range x {
					v += c[j] * float64(x[j])
				}
				if v > best {
					best = v
				}
				return
			}
			for v := 0; v <= 10; v++ {
				x[i] = v
				rec(i+1, x, sum+v)
			}
			x[i] = 0
		}
		rec(0, make([]int, n), 0)

		if math.IsInf(best, -1) {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: brute infeasible but solver says %v (obj %v)", trial, sol.Status, sol.Objective)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, brute optimum %v", trial, sol.Status, best)
		}
		if math.Abs(sol.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: solver %v != brute %v", trial, sol.Objective, best)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []Status{Optimal, Feasible, BoundOnly, Infeasible, Unbounded, Status(42)} {
		if s.String() == "" {
			t.Errorf("empty string for %d", int(s))
		}
	}
}

func BenchmarkKnapsack(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 15
	c := make([]float64, n)
	w := make([]float64, n)
	for i := range c {
		c[i] = 1 + rng.Float64()*9
		w[i] = 1 + rng.Float64()*9
	}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		p := lp.NewMaximize(c)
		_ = p.AddDense(w, lp.LE, 30.5)
		for i := 0; i < n; i++ {
			_ = p.AddUpperBound(i, 4)
		}
		sol := SolveMax(Problem{LP: p}, Options{})
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}
