// Package summary maintains cheap, sound per-constraint summaries of a
// predicate-constraint store and answers aggregate bounds from them without
// touching the LP/MILP solver.
//
// The summary tier trades tightness for latency: every answer is a sound
// outer interval — it contains the interval the exact cell-decomposition
// engine would produce for the same query at the same epoch — but it is
// computed from per-constraint corner bounds alone, in O(n·dims) for a
// region-restricted query and O(dims) for a whole-domain query, where n is
// the number of live constraints. The exact engine escalates to the solver
// only when the loose interval exceeds the caller's width budget (see
// core.TierSpec).
//
// Maintenance follows the modular-update model of linear sketching: the
// store consumes the same Add/Remove/Replace mutation stream the WAL does,
// updating per-entry summaries (predicate box, value-row box, cardinality
// bounds, lattice-groundedness bits) and a whole-store coefficient sketch
// (per-attribute signed sums of value·cardinality corners, value hulls,
// non-emptiness witnesses, and the pairwise-overlap count that certifies
// disjointness). Sketch sums are recomputed in entry order on every
// mutation rather than adjusted in place: float addition does not have
// exact inverses, and a drifting sum could dip below the true bound and
// break soundness. The rebuild is O(n·dims), amortized into the write path,
// which is what buys the O(dims) read.
//
// Soundness fine print: intervals produced here are outer bounds for the
// exact engine's *default* configuration (no early-stopped decomposition).
// Early stopping coarsens cells beyond the per-constraint boxes this
// package sees, so core refuses to answer from summaries when it is
// enabled. Sum endpoints are additionally widened by one ulp per
// contributing term so that a different-but-equivalent accumulation order
// on the exact path can never land an ulp outside the summary interval.
package summary

import (
	"math"
	"sync"
	"sync/atomic"

	"pcbound/internal/domain"
)

// Agg enumerates the aggregates the summary tier can bound. The values
// deliberately mirror core.Agg but are redeclared here so the package
// depends only on domain.
type Agg int

const (
	Count Agg = iota
	Sum
	Avg
	Min
	Max
)

// Constraint is the summary tier's view of one predicate constraint: the
// predicate box ψ, the per-attribute value row ψ∩ν (the corner bounds every
// evaluation reads), and the cardinality interval [KLo, KHi].
type Constraint struct {
	Pred domain.Box
	Row  domain.Box
	KLo  float64
	KHi  float64
}

// entry is a live constraint plus its precomputed lattice bits.
type entry struct {
	c Constraint
	// predEmpty: ψ contains no point of the schema lattice. Such entries
	// produce no cells on any exact path and are skipped everywhere.
	predEmpty bool
	// grounded: ψ∩domain contains a lattice point. Only grounded entries
	// have their KLo enforced by the exact general path (ungrounded ones
	// never activate a cell there), so only they may contribute to lower
	// cardinality bounds.
	grounded bool
}

// sketch is the whole-store coefficient sketch serving whole-domain queries
// in O(dims). Rebuilt, not adjusted, on every mutation — see the package
// comment for why.
type sketch struct {
	khiTotal    float64 // Σ KHi over non-predEmpty entries
	kloGrounded float64 // Σ KLo over grounded entries with KLo > 0
	sumTerms    int     // entries contributing to posHi/negLo (ulp widening count)

	// Per-attribute, over non-predEmpty entries with KHi > 0 and a
	// plainly non-empty value row on that attribute:
	posHi []float64 // Σ max(0, Row[a].Hi)·KHi — SUM upper corner
	negLo []float64 // Σ min(0, Row[a].Lo)·KHi — SUM lower corner

	// Per-attribute value hulls over non-predEmpty entries with KHi ≥ 1
	// and a plainly non-empty value row on that attribute (the entries
	// that can yield a usable cell for AVG/MIN/MAX). Empty hull ⇒
	// hullLo=+Inf, hullHi=-Inf, matching the exact engine's empty range.
	hullLo []float64
	hullHi []float64

	// witness[a]: some grounded entry with KLo > 0, KHi ≥ 1 and a plainly
	// non-empty value row on a guarantees at least one row exists — the
	// MaybeEmpty=false certificate for whole-domain AVG/MIN/MAX (valid
	// only while the store is pairwise disjoint).
	witness []bool
}

// Result is one summary answer. Lo > Hi encodes the empty range (+Inf,
// -Inf), exactly as the exact engine encodes it.
type Result struct {
	Lo, Hi     float64
	MaybeEmpty bool
	// Entries is the number of live constraints consulted, the summary
	// tier's analogue of Range.Cells.
	Entries int
}

// Stats is a point-in-time snapshot of the store's state and counters.
type Stats struct {
	Entries      int
	Epoch        uint64
	Mutations    uint64
	OverlapPairs int
	Disjoint     bool
	Evals        int64
	SketchEvals  int64
}

// Store holds the live summaries. It is safe for concurrent use; reads take
// a read lock only.
type Store struct {
	schema *domain.Schema
	full   domain.Box

	mu      sync.RWMutex
	ids     []uint64 // guarded by mu; aligned with entries, insertion order
	entries []entry  // guarded by mu
	epoch   uint64   // guarded by mu; the store epoch these summaries reflect
	// overlapPairs counts unordered entry pairs whose predicate boxes share
	// a schema-lattice point. Zero certifies pairwise disjointness, which
	// is what makes summary lower cardinality bounds and non-emptiness
	// claims sound. Maintained incrementally: O(n·dims) per mutation.
	overlapPairs int    // guarded by mu
	mutations    uint64 // guarded by mu; mutations applied since Reset
	sk           sketch // guarded by mu

	evals       atomic.Int64 // total Eval calls that answered
	sketchEvals atomic.Int64 // Eval calls answered from the O(dims) sketch
}

// New creates an empty summary store over the schema.
func New(schema *domain.Schema) *Store {
	return &Store{schema: schema, full: schema.FullBox()}
}

// Schema returns the store's schema.
func (s *Store) Schema() *domain.Schema { return s.schema }

// Reset replaces the store's contents wholesale with the given constraints
// (aligned with ids, in store order) at the given epoch.
func (s *Store) Reset(ids []uint64, cs []Constraint, epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ids = append([]uint64(nil), ids...)
	s.entries = make([]entry, len(cs))
	for i, c := range cs {
		s.entries[i] = s.newEntry(c)
	}
	s.epoch = epoch
	s.mutations = 0
	s.overlapPairs = 0
	for i := range s.entries {
		for j := i + 1; j < len(s.entries); j++ {
			if s.overlapLocked(i, j) {
				s.overlapPairs++
			}
		}
	}
	s.rebuildSketchLocked()
}

// Add appends constraints (aligned with ids) and advances the summary epoch
// in one atomic step, mirroring a MutAdd record.
func (s *Store) Add(epoch uint64, ids []uint64, cs []Constraint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, c := range cs {
		e := s.newEntry(c)
		for j := range s.entries {
			if s.overlapEntries(e, s.entries[j]) {
				s.overlapPairs++
			}
		}
		s.ids = append(s.ids, ids[k])
		s.entries = append(s.entries, e)
	}
	s.commitLocked(epoch)
}

// Remove drops the constraint with the given id and advances the summary
// epoch, mirroring a MutRemove record. It reports whether the id was live.
func (s *Store) Remove(epoch uint64, id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.indexLocked(id)
	if i < 0 {
		return false
	}
	for j := range s.entries {
		if j != i && s.overlapLocked(i, j) {
			s.overlapPairs--
		}
	}
	s.ids = append(s.ids[:i], s.ids[i+1:]...)
	s.entries = append(s.entries[:i], s.entries[i+1:]...)
	s.commitLocked(epoch)
	return true
}

// Replace swaps the constraint under id in place (preserving store order)
// and advances the summary epoch, mirroring a MutReplace record.
func (s *Store) Replace(epoch uint64, id uint64, c Constraint) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.indexLocked(id)
	if i < 0 {
		return false
	}
	for j := range s.entries {
		if j != i && s.overlapLocked(i, j) {
			s.overlapPairs--
		}
	}
	s.entries[i] = s.newEntry(c)
	for j := range s.entries {
		if j != i && s.overlapLocked(i, j) {
			s.overlapPairs++
		}
	}
	s.commitLocked(epoch)
	return true
}

// SetEpoch records an epoch advance that did not change any constraint
// (e.g. a replayed no-op). Present for completeness; the core overlay uses
// the mutating calls above.
func (s *Store) SetEpoch(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch = epoch
}

// Epoch returns the store epoch the summaries currently reflect.
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Stats returns a snapshot of the store's state and counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Entries:      len(s.entries),
		Epoch:        s.epoch,
		Mutations:    s.mutations,
		OverlapPairs: s.overlapPairs,
		Disjoint:     s.overlapPairs == 0,
		Evals:        s.evals.Load(),
		SketchEvals:  s.sketchEvals.Load(),
	}
}

func (s *Store) commitLocked(epoch uint64) {
	s.epoch = epoch
	s.mutations++
	s.rebuildSketchLocked()
}

func (s *Store) indexLocked(id uint64) int {
	for i, v := range s.ids {
		if v == id {
			return i
		}
	}
	return -1
}

func (s *Store) newEntry(c Constraint) entry {
	return entry{
		c:         c,
		predEmpty: c.Pred.EmptyFor(s.schema),
		grounded:  !c.Pred.Intersect(s.full).EmptyFor(s.schema),
	}
}

func (s *Store) overlapLocked(i, j int) bool {
	return s.overlapEntries(s.entries[i], s.entries[j])
}

func (s *Store) overlapEntries(a, b entry) bool {
	if a.predEmpty || b.predEmpty {
		return false
	}
	return !a.c.Pred.Intersect(b.c.Pred).EmptyFor(s.schema)
}

// rebuildSketchLocked recomputes the whole-store sketch from the entries,
// in entry order (deterministic accumulation).
func (s *Store) rebuildSketchLocked() {
	dims := s.schema.Len()
	sk := sketch{
		posHi:   make([]float64, dims),
		negLo:   make([]float64, dims),
		hullLo:  make([]float64, dims),
		hullHi:  make([]float64, dims),
		witness: make([]bool, dims),
	}
	for a := 0; a < dims; a++ {
		sk.hullLo[a] = math.Inf(1)
		sk.hullHi[a] = math.Inf(-1)
	}
	for i := range s.entries {
		e := &s.entries[i]
		if e.predEmpty {
			continue
		}
		c := e.c
		sk.khiTotal += c.KHi
		if e.grounded && c.KLo > 0 {
			sk.kloGrounded += c.KLo
		}
		if c.KHi <= 0 {
			continue
		}
		sk.sumTerms++
		for a := 0; a < dims; a++ {
			row := c.Row[a]
			if row.Empty() {
				continue
			}
			if row.Hi > 0 {
				sk.posHi[a] += row.Hi * c.KHi
			}
			if row.Lo < 0 {
				sk.negLo[a] += row.Lo * c.KHi
			}
			if c.KHi >= 1 {
				sk.hullLo[a] = math.Min(sk.hullLo[a], row.Lo)
				sk.hullHi[a] = math.Max(sk.hullHi[a], row.Hi)
				if e.grounded && c.KLo > 0 {
					sk.witness[a] = true
				}
			}
		}
	}
	s.sk = sk
}

// Eval bounds the aggregate over the region where (nil means the whole
// domain) from summaries alone. attr indexes the aggregated attribute and
// is ignored for Count. The answer is only valid for the given store epoch:
// Eval reports ok=false when the summaries have moved past (or not reached)
// it, and the caller must escalate to the exact path.
func (s *Store) Eval(agg Agg, attr int, where domain.Box, epoch uint64) (Result, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if epoch != s.epoch {
		return Result{}, false
	}
	switch agg {
	case Count, Sum, Avg, Min, Max:
	default:
		return Result{}, false
	}
	if agg != Count && (attr < 0 || attr >= s.schema.Len()) {
		return Result{}, false
	}
	var res Result
	if where == nil {
		res = s.evalSketchLocked(agg, attr)
		s.sketchEvals.Add(1)
	} else {
		var ok bool
		res, ok = s.evalScanLocked(agg, attr, where)
		if !ok {
			return Result{}, false
		}
	}
	s.evals.Add(1)
	return res, true
}

// evalSketchLocked answers a whole-domain query from the precomputed
// sketch in O(dims).
func (s *Store) evalSketchLocked(agg Agg, attr int) Result {
	disjoint := s.overlapPairs == 0
	res := Result{Entries: len(s.entries)}
	switch agg {
	case Count:
		res.Hi = s.sk.khiTotal
		if disjoint {
			res.Lo = s.sk.kloGrounded
		}
	case Sum:
		res.Lo = inflateDown(s.sk.negLo[attr], s.sk.sumTerms+2)
		res.Hi = inflateUp(s.sk.posHi[attr], s.sk.sumTerms+2)
	case Avg, Min, Max:
		res.Lo = s.sk.hullLo[attr]
		res.Hi = s.sk.hullHi[attr]
		res.MaybeEmpty = !(disjoint && s.sk.witness[attr])
	}
	return res
}

// evalScanLocked answers a region-restricted query with one pass over the
// entries, O(n·dims).
func (s *Store) evalScanLocked(agg Agg, attr int, where domain.Box) (Result, bool) {
	if len(where) != s.schema.Len() {
		return Result{}, false
	}
	disjoint := s.overlapPairs == 0
	res := Result{}
	switch agg {
	case Avg, Min, Max:
		res.Lo = math.Inf(1)
		res.Hi = math.Inf(-1)
		res.MaybeEmpty = true
	}
	sumTerms := 0
	for i := range s.entries {
		e := &s.entries[i]
		if e.predEmpty {
			continue
		}
		c := e.c
		// Overlap test on the schema lattice, dimension by dimension —
		// entries whose predicate misses the region contribute nothing on
		// any exact path.
		overlaps := true
		for a := 0; a < len(where); a++ {
			if c.Pred[a].Intersect(where[a]).EmptyFor(s.schema.Attr(a).Kind) {
				overlaps = false
				break
			}
		}
		if !overlaps {
			continue
		}
		res.Entries++
		switch agg {
		case Count:
			res.Hi += c.KHi
			if disjoint && c.KLo > 0 && e.grounded && where.ContainsBox(c.Pred) {
				res.Lo += c.KLo
			}
		case Sum:
			if c.KHi <= 0 {
				continue
			}
			// The value corner of this entry inside the region: rows it
			// contributes to the region carry attr values in Row[attr]
			// clipped by the region, exactly the interval the fast
			// disjoint path assigns its cell.
			v := c.Row[attr].Intersect(where[attr])
			if v.Empty() {
				continue
			}
			sumTerms++
			if v.Hi > 0 {
				res.Hi += v.Hi * c.KHi
			}
			if v.Lo < 0 {
				res.Lo += v.Lo * c.KHi
			}
		case Avg, Min, Max:
			if c.KHi < 1 {
				continue
			}
			v := c.Row[attr].Intersect(where[attr])
			if v.Empty() {
				continue
			}
			res.Lo = math.Min(res.Lo, v.Lo)
			res.Hi = math.Max(res.Hi, v.Hi)
			if disjoint && c.KLo > 0 && e.grounded && where.ContainsBox(c.Pred) {
				res.MaybeEmpty = false
			}
		}
	}
	if agg == Sum {
		res.Lo = inflateDown(res.Lo, sumTerms+2)
		res.Hi = inflateUp(res.Hi, sumTerms+2)
	}
	return res, true
}

// inflateUp moves x a few ulps toward +Inf — outward rounding insurance for
// accumulated sums (see the package comment).
func inflateUp(x float64, steps int) float64 {
	if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return x
	}
	for k := 0; k < steps; k++ {
		x = math.Nextafter(x, math.Inf(1))
	}
	return x
}

// inflateDown moves x a few ulps toward -Inf.
func inflateDown(x float64, steps int) float64 {
	if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return x
	}
	for k := 0; k < steps; k++ {
		x = math.Nextafter(x, math.Inf(-1))
	}
	return x
}
