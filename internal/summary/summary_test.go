package summary

import (
	"math"
	"math/rand"
	"testing"

	"pcbound/internal/domain"
)

func testSchema() *domain.Schema {
	return domain.NewSchema(
		domain.Attr{Name: "utc", Kind: domain.Integral, Domain: domain.NewInterval(0, 30)},
		domain.Attr{Name: "price", Kind: domain.Continuous, Domain: domain.NewInterval(0, 1000)},
	)
}

// cons builds an in-domain constraint: predicate utc∈[plo,phi] (full price
// range), values price∈[vlo,vhi].
func cons(s *domain.Schema, plo, phi, vlo, vhi, klo, khi float64) Constraint {
	pred := domain.Box{domain.NewInterval(plo, phi), s.Attr(1).Domain}
	values := domain.Box{s.Attr(0).Domain, domain.NewInterval(vlo, vhi)}
	return Constraint{Pred: pred, Row: pred.Intersect(values), KLo: klo, KHi: khi}
}

// bruteOverlapPairs recomputes the pairwise-overlap count from scratch.
func bruteOverlapPairs(s *Store) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for i := range s.entries {
		for j := i + 1; j < len(s.entries); j++ {
			if s.overlapLocked(i, j) {
				n++
			}
		}
	}
	return n
}

// TestOverlapPairsIncremental: the incrementally maintained pair count must
// match a from-scratch recount after every random mutation.
func TestOverlapPairsIncremental(t *testing.T) {
	s := testSchema()
	st := New(s)
	rng := rand.New(rand.NewSource(11))
	randCons := func() Constraint {
		lo := rng.Float64() * 25
		return cons(s, lo, lo+1+rng.Float64()*8, 0, 100, float64(rng.Intn(2)), float64(1+rng.Intn(5)))
	}
	var ids []uint64
	next := uint64(0)
	epoch := uint64(0)
	for step := 0; step < 200; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(ids) < 3:
			next++
			epoch++
			st.Add(epoch, []uint64{next}, []Constraint{randCons()})
			ids = append(ids, next)
		case op == 1:
			k := rng.Intn(len(ids))
			epoch++
			if !st.Remove(epoch, ids[k]) {
				t.Fatalf("step %d: live id %d not found", step, ids[k])
			}
			ids = append(ids[:k], ids[k+1:]...)
		default:
			epoch++
			if !st.Replace(epoch, ids[rng.Intn(len(ids))], randCons()) {
				t.Fatalf("step %d: replace missed a live id", step)
			}
		}
		if got, want := st.Stats().OverlapPairs, bruteOverlapPairs(st); got != want {
			t.Fatalf("step %d: incremental overlap pairs %d != recount %d", step, got, want)
		}
	}
	if st.Stats().Epoch != epoch || st.Stats().Mutations != 200 {
		t.Fatalf("bookkeeping drifted: %+v (want epoch %d, 200 mutations)", st.Stats(), epoch)
	}
}

// TestSketchMatchesScan: for in-domain constraints, the O(dims) sketch
// answer must be bit-identical to the O(n·dims) scan over the full domain
// box — same terms, same order, same ulp widening.
func TestSketchMatchesScan(t *testing.T) {
	s := testSchema()
	st := New(s)
	rng := rand.New(rand.NewSource(3))
	var ids []uint64
	var cs []Constraint
	for i := 0; i < 20; i++ {
		lo := rng.Float64() * 25
		vlo := rng.Float64() * 80
		ids = append(ids, uint64(i+1))
		cs = append(cs, cons(s, lo, lo+1+rng.Float64()*6, vlo, vlo+rng.Float64()*100, float64(rng.Intn(2)), float64(rng.Intn(6))))
	}
	st.Reset(ids, cs, 5)
	full := s.FullBox()
	for agg := Count; agg <= Max; agg++ {
		sk, ok := st.Eval(agg, 1, nil, 5)
		if !ok {
			t.Fatalf("agg %d: sketch eval refused", agg)
		}
		scan, ok := st.Eval(agg, 1, full, 5)
		if !ok {
			t.Fatalf("agg %d: scan eval refused", agg)
		}
		if math.Float64bits(sk.Lo) != math.Float64bits(scan.Lo) ||
			math.Float64bits(sk.Hi) != math.Float64bits(scan.Hi) ||
			sk.MaybeEmpty != scan.MaybeEmpty {
			t.Fatalf("agg %d: sketch %+v != full-domain scan %+v", agg, sk, scan)
		}
	}
	stats := st.Stats()
	if stats.SketchEvals != 5 || stats.Evals != 10 {
		t.Fatalf("eval counters off: %+v", stats)
	}
}

// TestEpochGate: an Eval against any epoch other than the store's own must
// refuse rather than serve summaries for a different constraint multiset.
func TestEpochGate(t *testing.T) {
	s := testSchema()
	st := New(s)
	st.Reset([]uint64{1}, []Constraint{cons(s, 0, 5, 1, 2, 1, 3)}, 7)
	if _, ok := st.Eval(Count, -1, nil, 6); ok {
		t.Fatal("stale epoch served")
	}
	if _, ok := st.Eval(Count, -1, nil, 8); ok {
		t.Fatal("future epoch served")
	}
	if _, ok := st.Eval(Count, -1, nil, 7); !ok {
		t.Fatal("current epoch refused")
	}
	if _, ok := st.Eval(Sum, 7, nil, 7); ok {
		t.Fatal("out-of-range attribute served")
	}
	if _, ok := st.Eval(Agg(99), 1, nil, 7); ok {
		t.Fatal("unknown aggregate served from scan path")
	}
}

// TestDisjointCertificate: with pairwise-disjoint constraints the store
// certifies COUNT lower bounds and non-emptiness; one overlapping insert
// revokes both, and removing it restores them.
func TestDisjointCertificate(t *testing.T) {
	s := testSchema()
	st := New(s)
	st.Reset(
		[]uint64{1, 2},
		[]Constraint{cons(s, 0, 2, 10, 20, 2, 4), cons(s, 4, 6, 30, 40, 1, 5)},
		1,
	)
	r, ok := st.Eval(Count, -1, nil, 1)
	if !ok || r.Lo != 3 || r.Hi != 9 {
		t.Fatalf("disjoint count: got %+v ok=%v, want [3,9]", r, ok)
	}
	r, _ = st.Eval(Min, 1, nil, 1)
	if r.MaybeEmpty || r.Lo != 10 || r.Hi != 40 {
		t.Fatalf("disjoint min hull: got %+v, want certain [10,40]", r)
	}

	st.Add(2, []uint64{3}, []Constraint{cons(s, 1, 5, 0, 1, 1, 2)})
	if st.Stats().Disjoint {
		t.Fatal("overlapping insert kept the disjointness certificate")
	}
	r, _ = st.Eval(Count, -1, nil, 2)
	if r.Lo != 0 || r.Hi != 11 {
		t.Fatalf("overlapping count: got %+v, want [0,11]", r)
	}
	if r, _ = st.Eval(Min, 1, nil, 2); !r.MaybeEmpty {
		t.Fatal("overlapping store still claims non-emptiness")
	}

	st.Remove(3, 3)
	if !st.Stats().Disjoint {
		t.Fatal("removing the overlap did not restore the certificate")
	}
	if r, _ = st.Eval(Count, -1, nil, 3); r.Lo != 3 {
		t.Fatalf("restored count lower bound: got %+v, want Lo=3", r)
	}
}

// TestRegionScan: region-restricted answers clip values and respect
// containment for lower bounds.
func TestRegionScan(t *testing.T) {
	s := testSchema()
	st := New(s)
	st.Reset(
		[]uint64{1, 2},
		[]Constraint{cons(s, 0, 2, 10, 20, 2, 4), cons(s, 10, 14, 30, 40, 2, 5)},
		1,
	)
	// Region covers constraint 1 entirely, misses constraint 2.
	region := domain.Box{domain.NewInterval(0, 5), s.Attr(1).Domain}
	r, ok := st.Eval(Count, -1, region, 1)
	if !ok || r.Lo != 2 || r.Hi != 4 || r.Entries != 1 {
		t.Fatalf("contained region count: %+v ok=%v, want [2,4] over 1 entry", r, ok)
	}
	// Region straddles constraint 2: upper bound keeps its KHi, lower
	// bound gets nothing (the rows may live in the uncovered half).
	region = domain.Box{domain.NewInterval(12, 20), s.Attr(1).Domain}
	if r, _ = st.Eval(Count, -1, region, 1); r.Lo != 0 || r.Hi != 5 {
		t.Fatalf("straddling region count: %+v, want [0,5]", r)
	}
	if r, _ = st.Eval(Max, 1, region, 1); !r.MaybeEmpty || r.Lo != 30 || r.Hi != 40 {
		t.Fatalf("straddling region max: %+v, want uncertain [30,40]", r)
	}
	// Region touching nothing: empty hull, zero counts.
	region = domain.Box{domain.NewInterval(20, 25), s.Attr(1).Domain}
	if r, _ = st.Eval(Sum, 1, region, 1); r.Lo != 0 || r.Hi != 0 || r.Entries != 0 {
		t.Fatalf("void region sum: %+v, want [0,0]", r)
	}
	if r, _ = st.Eval(Avg, 1, region, 1); !math.IsInf(r.Lo, 1) || !math.IsInf(r.Hi, -1) {
		t.Fatalf("void region avg: %+v, want empty hull", r)
	}
	// Dimension-mismatched region is refused.
	if _, ok := st.Eval(Count, -1, domain.Box{domain.NewInterval(0, 1)}, 1); ok {
		t.Fatal("mismatched region dimensionality served")
	}
}

// TestInflateDirections: ulp widening only ever moves outward and leaves
// zeros and infinities alone.
func TestInflateDirections(t *testing.T) {
	for _, x := range []float64{1, -1, 1e-300, -1e17, 123.456} {
		if up := inflateUp(x, 3); up <= x {
			t.Fatalf("inflateUp(%v) = %v not above", x, up)
		}
		if down := inflateDown(x, 3); down >= x {
			t.Fatalf("inflateDown(%v) = %v not below", x, down)
		}
	}
	for _, x := range []float64{0, math.Inf(1), math.Inf(-1)} {
		if inflateUp(x, 3) != x && !math.IsNaN(x) {
			t.Fatalf("inflateUp moved %v", x)
		}
		if inflateDown(x, 3) != x && !math.IsNaN(x) {
			t.Fatalf("inflateDown moved %v", x)
		}
	}
}
