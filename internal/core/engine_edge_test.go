package core

import (
	"math"
	"sync"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// TestNegativeValueDomains exercises SUM/AVG with value constraints that
// cross zero: the upper bound must avoid allocating negative-value rows,
// and the lower bound must exploit them.
func TestNegativeValueDomains(t *testing.T) {
	s := domain.NewSchema(
		domain.Attr{Name: "k", Kind: domain.Integral, Domain: domain.NewInterval(0, 3)},
		domain.Attr{Name: "delta", Kind: domain.Continuous, Domain: domain.NewInterval(-100, 100)},
	)
	set := NewSet(s)
	set.MustAdd(
		// Losses: forced 2-5 rows in [-50, -10].
		MustPC(predicate.NewBuilder(s).Eq("k", 0).Build(),
			map[string]domain.Interval{"delta": domain.NewInterval(-50, -10)}, 2, 5),
		// Gains: optional rows in [5, 30].
		MustPC(predicate.NewBuilder(s).Eq("k", 1).Build(),
			map[string]domain.Interval{"delta": domain.NewInterval(5, 30)}, 0, 4),
	)
	for _, disableFast := range []bool{false, true} {
		e := NewEngine(set, nil, Options{DisableFastPath: disableFast})
		r, err := e.Sum("delta", nil)
		if err != nil {
			t.Fatal(err)
		}
		// Upper: 2 forced losses at -10 plus 4 gains at 30 = 100.
		if math.Abs(r.Hi-100) > 1e-6 {
			t.Errorf("fast=%v: SUM upper = %v, want 100", !disableFast, r.Hi)
		}
		// Lower: 5 losses at -50, no gains = -250.
		if math.Abs(r.Lo-(-250)) > 1e-6 {
			t.Errorf("fast=%v: SUM lower = %v, want -250", !disableFast, r.Lo)
		}
		avg, err := e.Avg("delta", nil)
		if err != nil {
			t.Fatal(err)
		}
		// Min avg: all 5 rows at -50. Max avg: (2·(-10) + 4·30)/6 = 16.67.
		if math.Abs(avg.Lo-(-50)) > 1e-3 {
			t.Errorf("fast=%v: AVG lower = %v, want -50", !disableFast, avg.Lo)
		}
		if math.Abs(avg.Hi-100.0/6.0) > 1e-3 {
			t.Errorf("fast=%v: AVG upper = %v, want %v", !disableFast, avg.Hi, 100.0/6.0)
		}
	}
}

// TestQueryConstrainsAggregateAttribute pushes the query predicate down onto
// the aggregated attribute itself: cell value projections must clip.
func TestQueryConstrainsAggregateAttribute(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(MustPC(predicate.True(s),
		map[string]domain.Interval{"price": domain.NewInterval(0, 500)}, 0, 10))
	e := NewEngine(set, nil, Options{})
	q := predicate.NewBuilder(s).Range("price", 100, 200).Build()
	r, err := e.Sum("price", q)
	if err != nil {
		t.Fatal(err)
	}
	// Rows counted by the query have price in [100, 200]: at most 10·200.
	if r.Hi != 2000 {
		t.Errorf("SUM upper = %v, want 2000 (query clips the value range)", r.Hi)
	}
	if r.Lo != 0 {
		t.Errorf("SUM lower = %v, want 0 (no forced rows)", r.Lo)
	}
	mx, err := e.Max("price", q)
	if err != nil {
		t.Fatal(err)
	}
	if mx.Hi != 200 {
		t.Errorf("MAX upper = %v, want 200", mx.Hi)
	}
}

// TestMILPNodeBudgetKeepsBoundsSound forces a tiny branch-and-bound budget:
// endpoints may lose exactness but must still contain the truth.
func TestMILPNodeBudgetKeepsBoundsSound(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Range("utc", 0, 10).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(1, 7)}, 3, 9),
		MustPC(predicate.NewBuilder(s).Range("utc", 5, 15).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(2, 11)}, 4, 8),
		MustPC(predicate.NewBuilder(s).Range("utc", 8, 20).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(1, 5)}, 2, 6),
	)
	exact := NewEngine(set, nil, Options{DisableFastPath: true})
	re, err := exact.Sum("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	tight := NewEngine(set, nil, Options{DisableFastPath: true})
	tight.opts.MILP.MaxNodes = 2
	rt, err := tight.Sum("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Hi < re.Hi-1e-9 || rt.Lo > re.Lo+1e-9 {
		t.Errorf("budgeted range %v does not contain exact %v", rt, re)
	}
}

// TestEngineConcurrentQueries checks the engine is safe for concurrent use
// (the SAT solver uses atomics; decomposition state is per-query).
func TestEngineConcurrentQueries(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Range("utc", 0, 15).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 100)}, 0, 50),
		MustPC(predicate.NewBuilder(s).Range("utc", 10, 30).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 200)}, 5, 60),
	)
	_ = set.Disjoint() // pre-compute the cached analysis before fan-out
	e := NewEngine(set, nil, Options{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := predicate.NewBuilder(s).Range("utc", float64(g%10), float64(g%10+8)).Build()
			for i := 0; i < 5; i++ {
				if _, err := e.Sum("price", q); err != nil {
					errs <- err
					return
				}
				if _, err := e.Count(q); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestZeroWidthFrequency (klo == khi == 0) constraints contribute value
// information without allowing rows.
func TestZeroWidthFrequency(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 100)}, 0, 0),
		MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 50)}, 1, 2),
	)
	e := NewEngine(set, nil, Options{})
	r, err := e.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hi != 2 || r.Lo != 1 {
		t.Errorf("COUNT = %v, want [1, 2] (branch 0 admits no rows)", r)
	}
	sum, err := e.Sum("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Hi != 100 {
		t.Errorf("SUM upper = %v, want 100 (2 rows at 50)", sum.Hi)
	}
}
