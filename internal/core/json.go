package core

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// This file implements a JSON wire format for schemas, constraint sets, and
// aggregate queries, so contingency assumptions can be "checked, versioned,
// and tested just like any other analysis code" (Section 1). cmd/pcrange
// consumes the same format, and internal/server speaks it over HTTP — one
// encoding for files, scripts, and the network.

// SpecJSON is the serialized form of a schema plus constraint set.
type SpecJSON struct {
	Schema      []AttrJSON `json:"schema"`
	Constraints []PCJSON   `json:"constraints"`
}

// AttrJSON serializes one schema attribute.
type AttrJSON struct {
	Name string  `json:"name"`
	Kind string  `json:"kind"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// PCJSON serializes one predicate-constraint. Predicate and value ranges
// map attribute name to [lo, hi]; attributes absent from a map are
// unconstrained. Infinite endpoints are encoded as missing maps entries
// (use the attribute domain instead).
type PCJSON struct {
	Name      string                `json:"name,omitempty"`
	Predicate map[string][2]float64 `json:"predicate"`
	Values    map[string][2]float64 `json:"values,omitempty"`
	KLo       int                   `json:"klo"`
	KHi       int                   `json:"khi"`
}

// EncodePC serializes one constraint against its schema. Predicate and value
// entries are emitted only for attributes narrower than the domain, matching
// what DecodePC/PCFromJSON reconstruct — encode→decode round-trips to an
// identical constraint.
func EncodePC(schema *domain.Schema, pc PC) PCJSON {
	pj := PCJSON{
		Name:      pc.Name,
		Predicate: map[string][2]float64{},
		Values:    map[string][2]float64{},
		KLo:       pc.KLo,
		KHi:       pc.KHi,
	}
	box := pc.Pred.Box()
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		if box[i] != a.Domain {
			pj.Predicate[a.Name] = [2]float64{box[i].Lo, box[i].Hi}
		}
		if pc.Values[i] != a.Domain {
			pj.Values[a.Name] = [2]float64{pc.Values[i].Lo, pc.Values[i].Hi}
		}
	}
	return pj
}

// Spec serializes the snapshot's schema and constraints. Unlike encoding the
// store directly, the result is consistent with the snapshot's epoch — the
// serving layer uses it to hand clients a frozen view they can rebuild
// bit-identically with DecodeSet.
func (sn *Snapshot) Spec() SpecJSON {
	schema := sn.Schema()
	spec := SpecJSON{}
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		kind := "continuous"
		if a.Kind == domain.Integral {
			kind = "integral"
		}
		spec.Schema = append(spec.Schema, AttrJSON{
			Name: a.Name, Kind: kind, Min: a.Domain.Lo, Max: a.Domain.Hi,
		})
	}
	for _, pc := range sn.pcs {
		spec.Constraints = append(spec.Constraints, EncodePC(schema, pc))
	}
	return spec
}

// EncodeSet serializes the set (with its schema) to JSON.
func EncodeSet(set *Set) ([]byte, error) {
	return json.MarshalIndent(set.Snapshot().Spec(), "", "  ")
}

// SchemaFromJSON materializes a schema from its wire form. The durability
// layer uses it to rebuild the schema recorded in a checkpoint without
// replaying any constraints.
func SchemaFromJSON(attrs []AttrJSON) (*domain.Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("core: spec has no schema")
	}
	out := make([]domain.Attr, len(attrs))
	for i, a := range attrs {
		kind := domain.Continuous
		switch a.Kind {
		case "integral", "int", "integer", "categorical":
			kind = domain.Integral
		case "continuous", "float", "":
		default:
			return nil, fmt.Errorf("core: unknown kind %q for attribute %q", a.Kind, a.Name)
		}
		if a.Min > a.Max || math.IsNaN(a.Min) || math.IsNaN(a.Max) {
			return nil, fmt.Errorf("core: invalid domain [%g, %g] for attribute %q", a.Min, a.Max, a.Name)
		}
		out[i] = domain.Attr{Name: a.Name, Kind: kind, Domain: domain.NewInterval(a.Min, a.Max)}
	}
	return domain.NewSchema(out...), nil
}

// DecodeSet parses a SpecJSON document into a fresh schema and set.
func DecodeSet(raw []byte) (*Set, *domain.Schema, error) {
	var spec SpecJSON
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, nil, fmt.Errorf("core: parsing spec: %w", err)
	}
	schema, err := SchemaFromJSON(spec.Schema)
	if err != nil {
		return nil, nil, err
	}
	set := NewSet(schema)
	for i, c := range spec.Constraints {
		pc, err := PCFromJSON(schema, c)
		if err != nil {
			return nil, nil, fmt.Errorf("core: constraint %d: %w", i, err)
		}
		if err := set.Add(pc); err != nil {
			return nil, nil, fmt.Errorf("core: constraint %d: %w", i, err)
		}
	}
	return set, schema, nil
}

// PCFromJSON materializes one already-parsed PCJSON against a schema. Its
// error messages carry no "core:" prefix — callers supply the context
// ("core: constraint %d: ..." in DecodeSet, a 400 body in the HTTP layer).
func PCFromJSON(schema *domain.Schema, c PCJSON) (PC, error) {
	b := predicate.NewBuilder(schema)
	// Iterate attribute names sorted: which unknown-attribute error wins,
	// and the builder's clause order, must not depend on map order.
	names := make([]string, 0, len(c.Predicate))
	for name := range c.Predicate {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rng := c.Predicate[name]
		if _, ok := schema.Index(name); !ok {
			return PC{}, fmt.Errorf("unknown predicate attribute %q", name)
		}
		b.Range(name, rng[0], rng[1])
	}
	values := map[string]domain.Interval{}
	//pcvet:ignore determinism map-to-map rebuild; per-key writes are independent, so order cannot reach the result
	for name, rng := range c.Values {
		values[name] = domain.NewInterval(rng[0], rng[1])
	}
	pc, err := NewPC(b.Build(), values, c.KLo, c.KHi)
	if err != nil {
		return PC{}, err
	}
	pc.Name = c.Name
	return pc, nil
}

// DecodePC parses a single PCJSON document (as used in the "constraints"
// array of a spec) into a constraint over an existing schema. cmd/pcrange's
// mutate-and-rebound script mode uses it to stream constraints into a live
// Store.
func DecodePC(schema *domain.Schema, raw []byte) (PC, error) {
	var c PCJSON
	if err := json.Unmarshal(raw, &c); err != nil {
		return PC{}, fmt.Errorf("core: parsing constraint: %w", err)
	}
	return PCFromJSON(schema, c)
}

// QueryJSON serializes one aggregate query. Where maps attribute name to
// [lo, hi]; attributes absent from the map are unconstrained, and an empty
// (or absent) map means no predicate.
type QueryJSON struct {
	Agg   string                `json:"agg"`
	Attr  string                `json:"attr,omitempty"`
	Where map[string][2]float64 `json:"where,omitempty"`
}

// String renders the wire query compactly for error messages — the serving
// layer includes it in 400 bodies so a client log line identifies the
// offending request (agg, attr, and where clause) without correlation work.
// Where attributes are listed in sorted order so the rendering is stable.
func (qj QueryJSON) String() string {
	var sb strings.Builder
	sb.WriteString(qj.Agg)
	sb.WriteByte('(')
	if qj.Attr == "" {
		sb.WriteByte('*')
	} else {
		sb.WriteString(qj.Attr)
	}
	sb.WriteByte(')')
	if len(qj.Where) > 0 {
		names := make([]string, 0, len(qj.Where))
		for name := range qj.Where {
			names = append(names, name)
		}
		sort.Strings(names)
		sb.WriteString(" WHERE ")
		for i, name := range names {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			rng := qj.Where[name]
			fmt.Fprintf(&sb, "%s in [%g, %g]", name, rng[0], rng[1])
		}
	}
	return sb.String()
}

// ParseAgg resolves an aggregate name (case-insensitively) to its Agg.
func ParseAgg(name string) (Agg, bool) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "COUNT":
		return Count, true
	case "SUM":
		return Sum, true
	case "AVG":
		return Avg, true
	case "MIN":
		return Min, true
	case "MAX":
		return Max, true
	default:
		return 0, false
	}
}

// QueryFromJSON materializes a wire query against a schema, validating the
// aggregate name, the aggregated attribute, and every where-clause attribute
// up front so the serving layer can turn any mistake into a 400 before
// engine work starts. Attr is ignored (and may be empty) for COUNT.
func QueryFromJSON(schema *domain.Schema, qj QueryJSON) (Query, error) {
	agg, ok := ParseAgg(qj.Agg)
	if !ok {
		return Query{}, fmt.Errorf("unknown aggregate %q (want COUNT, SUM, AVG, MIN or MAX)", qj.Agg)
	}
	q := Query{Agg: agg}
	if agg != Count {
		if qj.Attr == "" {
			return Query{}, fmt.Errorf("aggregate %s needs an attr", agg)
		}
		if _, ok := schema.Index(qj.Attr); !ok {
			return Query{}, fmt.Errorf("unknown attribute %q (schema has %s)",
				qj.Attr, strings.Join(schema.Names(), ", "))
		}
		q.Attr = qj.Attr
	}
	if len(qj.Where) > 0 {
		b := predicate.NewBuilder(schema)
		// Sorted for the same reason as PCFromJSON: error selection and
		// builder clause order must be independent of map iteration.
		names := make([]string, 0, len(qj.Where))
		for name := range qj.Where {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rng := qj.Where[name]
			if _, ok := schema.Index(name); !ok {
				return Query{}, fmt.Errorf("unknown where attribute %q (schema has %s)",
					name, strings.Join(schema.Names(), ", "))
			}
			if math.IsNaN(rng[0]) || math.IsNaN(rng[1]) {
				return Query{}, fmt.Errorf("NaN bound in where clause for %q", name)
			}
			b.Range(name, rng[0], rng[1])
		}
		q.Where = b.Build()
	}
	return q, nil
}

// QueryToJSON serializes a query in the form QueryFromJSON accepts. Where
// entries are emitted only for attributes the predicate narrows below the
// domain (the same convention EncodePC uses for ψ).
func QueryToJSON(schema *domain.Schema, q Query) QueryJSON {
	qj := QueryJSON{Agg: q.Agg.String()}
	if q.Agg != Count {
		qj.Attr = q.Attr
	}
	if q.Where != nil {
		box := q.Where.Box()
		for i := 0; i < schema.Len(); i++ {
			a := schema.Attr(i)
			if box[i] != a.Domain {
				if qj.Where == nil {
					qj.Where = map[string][2]float64{}
				}
				qj.Where[a.Name] = [2]float64{box[i].Lo, box[i].Hi}
			}
		}
	}
	return qj
}
