package core

import (
	"encoding/json"
	"fmt"
	"math"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// This file implements a JSON wire format for schemas and constraint sets,
// so contingency assumptions can be "checked, versioned, and tested just
// like any other analysis code" (Section 1). cmd/pcrange consumes the same
// format.

// SpecJSON is the serialized form of a schema plus constraint set.
type SpecJSON struct {
	Schema      []AttrJSON `json:"schema"`
	Constraints []PCJSON   `json:"constraints"`
}

// AttrJSON serializes one schema attribute.
type AttrJSON struct {
	Name string  `json:"name"`
	Kind string  `json:"kind"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// PCJSON serializes one predicate-constraint. Predicate and value ranges
// map attribute name to [lo, hi]; attributes absent from a map are
// unconstrained. Infinite endpoints are encoded as missing maps entries
// (use the attribute domain instead).
type PCJSON struct {
	Name      string                `json:"name,omitempty"`
	Predicate map[string][2]float64 `json:"predicate"`
	Values    map[string][2]float64 `json:"values,omitempty"`
	KLo       int                   `json:"klo"`
	KHi       int                   `json:"khi"`
}

// EncodeSet serializes the set (with its schema) to JSON.
func EncodeSet(set *Set) ([]byte, error) {
	schema := set.Schema()
	spec := SpecJSON{}
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		kind := "continuous"
		if a.Kind == domain.Integral {
			kind = "integral"
		}
		spec.Schema = append(spec.Schema, AttrJSON{
			Name: a.Name, Kind: kind, Min: a.Domain.Lo, Max: a.Domain.Hi,
		})
	}
	for _, pc := range set.PCs() {
		pj := PCJSON{
			Name:      pc.Name,
			Predicate: map[string][2]float64{},
			Values:    map[string][2]float64{},
			KLo:       pc.KLo,
			KHi:       pc.KHi,
		}
		box := pc.Pred.Box()
		for i := 0; i < schema.Len(); i++ {
			a := schema.Attr(i)
			if box[i] != a.Domain {
				pj.Predicate[a.Name] = [2]float64{box[i].Lo, box[i].Hi}
			}
			if pc.Values[i] != a.Domain {
				pj.Values[a.Name] = [2]float64{pc.Values[i].Lo, pc.Values[i].Hi}
			}
		}
		spec.Constraints = append(spec.Constraints, pj)
	}
	return json.MarshalIndent(spec, "", "  ")
}

// DecodeSet parses a SpecJSON document into a fresh schema and set.
func DecodeSet(raw []byte) (*Set, *domain.Schema, error) {
	var spec SpecJSON
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, nil, fmt.Errorf("core: parsing spec: %w", err)
	}
	if len(spec.Schema) == 0 {
		return nil, nil, fmt.Errorf("core: spec has no schema")
	}
	attrs := make([]domain.Attr, len(spec.Schema))
	for i, a := range spec.Schema {
		kind := domain.Continuous
		switch a.Kind {
		case "integral", "int", "integer", "categorical":
			kind = domain.Integral
		case "continuous", "float", "":
		default:
			return nil, nil, fmt.Errorf("core: unknown kind %q for attribute %q", a.Kind, a.Name)
		}
		if a.Min > a.Max || math.IsNaN(a.Min) || math.IsNaN(a.Max) {
			return nil, nil, fmt.Errorf("core: invalid domain [%g, %g] for attribute %q", a.Min, a.Max, a.Name)
		}
		attrs[i] = domain.Attr{Name: a.Name, Kind: kind, Domain: domain.NewInterval(a.Min, a.Max)}
	}
	schema := domain.NewSchema(attrs...)
	set := NewSet(schema)
	for i, c := range spec.Constraints {
		pc, err := decodePC(schema, c)
		if err != nil {
			return nil, nil, fmt.Errorf("core: constraint %d: %w", i, err)
		}
		if err := set.Add(pc); err != nil {
			return nil, nil, fmt.Errorf("core: constraint %d: %w", i, err)
		}
	}
	return set, schema, nil
}

// decodePC materializes one serialized constraint against a schema. Its own
// error messages carry no "core:" prefix — the callers supply the context
// ("core: constraint %d: ..." in DecodeSet).
func decodePC(schema *domain.Schema, c PCJSON) (PC, error) {
	b := predicate.NewBuilder(schema)
	for name, rng := range c.Predicate {
		if _, ok := schema.Index(name); !ok {
			return PC{}, fmt.Errorf("unknown predicate attribute %q", name)
		}
		b.Range(name, rng[0], rng[1])
	}
	values := map[string]domain.Interval{}
	for name, rng := range c.Values {
		values[name] = domain.NewInterval(rng[0], rng[1])
	}
	pc, err := NewPC(b.Build(), values, c.KLo, c.KHi)
	if err != nil {
		return PC{}, err
	}
	pc.Name = c.Name
	return pc, nil
}

// DecodePC parses a single PCJSON document (as used in the "constraints"
// array of a spec) into a constraint over an existing schema. cmd/pcrange's
// mutate-and-rebound script mode uses it to stream constraints into a live
// Store.
func DecodePC(schema *domain.Schema, raw []byte) (PC, error) {
	var c PCJSON
	if err := json.Unmarshal(raw, &c); err != nil {
		return PC{}, fmt.Errorf("core: parsing constraint: %w", err)
	}
	return decodePC(schema, c)
}
