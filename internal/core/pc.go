// Package core implements the Predicate-Constraint framework of "Fast and
// Reliable Missing Data Contingency Analysis with Predicate-Constraints"
// (SIGMOD 2020): hard, deterministic result ranges for aggregate queries
// over relations with missing rows, derived from user-specified constraints
// on the frequency and variation of the missing tuples.
//
// A predicate-constraint π = (ψ, ν, κ) states: every missing row satisfying
// the predicate ψ has attribute values inside the value constraint ν, and
// the number of such rows lies in the frequency window κ = [klo, khi]
// (Definition 3.1). A Store of such constraints, closed over the domain
// (Definition 3.2), determines a computable min/max range for SUM, COUNT,
// AVG, MIN and MAX queries; an Engine, bound to one of the store's
// copy-on-write Snapshots, computes those ranges via cell decomposition and
// mixed-integer programming (Section 4). The store is mutable and versioned
// (Add/Remove/Replace bump an epoch); engine-side caches invalidate by
// region scope rather than flushing, so constraint churn keeps unrelated
// cached work alive (see store.go and batch.go).
package core

import (
	"errors"
	"fmt"
	"sort"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// PC is a single predicate-constraint π = (ψ, ν, κ).
type PC struct {
	// Pred is ψ: the predicate selecting the missing rows this constraint
	// talks about.
	Pred *predicate.P
	// Values is ν: per-attribute value ranges for rows satisfying ψ,
	// positionally aligned with the schema. Attributes left unconstrained
	// should carry the attribute domain (see NewPC).
	Values domain.Box
	// KLo and KHi are κ: at least KLo and at most KHi rows satisfy ψ.
	KLo, KHi int
	// Name is an optional label used in error messages.
	Name string
}

// NewPC builds a predicate-constraint, filling unspecified value ranges with
// the attribute domains. values maps attribute name to allowed range;
// attributes absent from the map are unconstrained.
func NewPC(pred *predicate.P, values map[string]domain.Interval, klo, khi int) (PC, error) {
	if pred == nil {
		return PC{}, errors.New("core: predicate-constraint needs a predicate")
	}
	if klo < 0 || khi < 0 || klo > khi {
		return PC{}, fmt.Errorf("core: invalid frequency window [%d, %d]", klo, khi)
	}
	s := pred.Schema()
	vb := s.FullBox()
	// Iterate names sorted: the per-slot intersections commute, but which
	// unknown-attribute or empty-range error wins must not depend on map
	// iteration order.
	names := make([]string, 0, len(values))
	for name := range values {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		iv := values[name]
		i, ok := s.Index(name)
		if !ok {
			return PC{}, fmt.Errorf("core: value constraint on unknown attribute %q", name)
		}
		vb[i] = vb[i].Intersect(iv)
		if vb[i].EmptyFor(s.Attr(i).Kind) && khi > 0 {
			return PC{}, fmt.Errorf("core: empty value range for attribute %q", name)
		}
	}
	return PC{Pred: pred, Values: vb, KLo: klo, KHi: khi}, nil
}

// MustPC is NewPC that panics on error; intended for tests and examples.
func MustPC(pred *predicate.P, values map[string]domain.Interval, klo, khi int) PC {
	pc, err := NewPC(pred, values, klo, khi)
	if err != nil {
		panic(err)
	}
	return pc
}

func (pc PC) String() string {
	name := pc.Name
	if name == "" {
		name = pc.Pred.String()
	}
	return fmt.Sprintf("%s => values %v, freq [%d, %d]", name, pc.Values, pc.KLo, pc.KHi)
}

// SatisfiedBy reports whether a relation instance (a set of rows) satisfies
// the constraint per Definition 3.1, and if not, why.
func (pc PC) SatisfiedBy(rows []domain.Row) error {
	count := 0
	for _, r := range rows {
		if !pc.Pred.Eval(r) {
			continue
		}
		count++
		for i, iv := range pc.Values {
			if !iv.Contains(r[i]) {
				return fmt.Errorf("core: row %v violates value constraint on attribute %d of %s", r, i, pc)
			}
		}
	}
	if count < pc.KLo || count > pc.KHi {
		return fmt.Errorf("core: %d rows match predicate of %s, outside [%d, %d]", count, pc, pc.KLo, pc.KHi)
	}
	return nil
}

// The constraint container lives in store.go: Store is the versioned
// mutable predicate-constraint store (S = {π₁, …, πₙ} plus Add/Remove/
// Replace), and Snapshot is the immutable copy-on-write view engines bind
// to. Set/NewSet remain there as compatibility aliases.
