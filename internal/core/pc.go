// Package core implements the Predicate-Constraint framework of "Fast and
// Reliable Missing Data Contingency Analysis with Predicate-Constraints"
// (SIGMOD 2020): hard, deterministic result ranges for aggregate queries
// over relations with missing rows, derived from user-specified constraints
// on the frequency and variation of the missing tuples.
//
// A predicate-constraint π = (ψ, ν, κ) states: every missing row satisfying
// the predicate ψ has attribute values inside the value constraint ν, and
// the number of such rows lies in the frequency window κ = [klo, khi]
// (Definition 3.1). A Set of such constraints, closed over the domain
// (Definition 3.2), determines a computable min/max range for SUM, COUNT,
// AVG, MIN and MAX queries; Engine computes those ranges via cell
// decomposition and mixed-integer programming (Section 4).
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/sat"
)

// PC is a single predicate-constraint π = (ψ, ν, κ).
type PC struct {
	// Pred is ψ: the predicate selecting the missing rows this constraint
	// talks about.
	Pred *predicate.P
	// Values is ν: per-attribute value ranges for rows satisfying ψ,
	// positionally aligned with the schema. Attributes left unconstrained
	// should carry the attribute domain (see NewPC).
	Values domain.Box
	// KLo and KHi are κ: at least KLo and at most KHi rows satisfy ψ.
	KLo, KHi int
	// Name is an optional label used in error messages.
	Name string
}

// NewPC builds a predicate-constraint, filling unspecified value ranges with
// the attribute domains. values maps attribute name to allowed range;
// attributes absent from the map are unconstrained.
func NewPC(pred *predicate.P, values map[string]domain.Interval, klo, khi int) (PC, error) {
	if pred == nil {
		return PC{}, errors.New("core: predicate-constraint needs a predicate")
	}
	if klo < 0 || khi < 0 || klo > khi {
		return PC{}, fmt.Errorf("core: invalid frequency window [%d, %d]", klo, khi)
	}
	s := pred.Schema()
	vb := s.FullBox()
	for name, iv := range values {
		i, ok := s.Index(name)
		if !ok {
			return PC{}, fmt.Errorf("core: value constraint on unknown attribute %q", name)
		}
		vb[i] = vb[i].Intersect(iv)
		if vb[i].EmptyFor(s.Attr(i).Kind) && khi > 0 {
			return PC{}, fmt.Errorf("core: empty value range for attribute %q", name)
		}
	}
	return PC{Pred: pred, Values: vb, KLo: klo, KHi: khi}, nil
}

// MustPC is NewPC that panics on error; intended for tests and examples.
func MustPC(pred *predicate.P, values map[string]domain.Interval, klo, khi int) PC {
	pc, err := NewPC(pred, values, klo, khi)
	if err != nil {
		panic(err)
	}
	return pc
}

func (pc PC) String() string {
	name := pc.Name
	if name == "" {
		name = pc.Pred.String()
	}
	return fmt.Sprintf("%s => values %v, freq [%d, %d]", name, pc.Values, pc.KLo, pc.KHi)
}

// SatisfiedBy reports whether a relation instance (a set of rows) satisfies
// the constraint per Definition 3.1, and if not, why.
func (pc PC) SatisfiedBy(rows []domain.Row) error {
	count := 0
	for _, r := range rows {
		if !pc.Pred.Eval(r) {
			continue
		}
		count++
		for i, iv := range pc.Values {
			if !iv.Contains(r[i]) {
				return fmt.Errorf("core: row %v violates value constraint on attribute %d of %s", r, i, pc)
			}
		}
	}
	if count < pc.KLo || count > pc.KHi {
		return fmt.Errorf("core: %d rows match predicate of %s, outside [%d, %d]", count, pc, pc.KLo, pc.KHi)
	}
	return nil
}

// Set is a predicate-constraint set S = {π₁, …, πₙ} over one schema.
// A fully-built set is safe for concurrent readers (Engine.Bound,
// Engine.BoundBatch); Add must not race with readers.
type Set struct {
	schema *domain.Schema
	pcs    []PC

	// cached disjointness analysis (lazily computed, invalidated by Add).
	// Guarded by disjointMu so concurrent Bound calls may trigger it safely.
	disjointMu    sync.Mutex
	disjointKnown bool
	disjoint      bool

	// version counts mutations; engine-side caches use it to drop entries
	// derived from an older state of the set.
	version atomic.Uint64
}

// Version returns a counter that increases on every successful Add. Caches
// keyed on the set's contents compare versions to detect staleness.
func (s *Set) Version() uint64 { return s.version.Load() }

// NewSet creates an empty constraint set over the schema.
func NewSet(schema *domain.Schema) *Set { return &Set{schema: schema} }

// Add appends predicate-constraints to the set.
func (s *Set) Add(pcs ...PC) error {
	for _, pc := range pcs {
		if pc.Pred == nil {
			return errors.New("core: predicate-constraint with nil predicate")
		}
		if pc.Pred.Schema() != s.schema {
			return errors.New("core: predicate-constraint over a different schema")
		}
		if len(pc.Values) != s.schema.Len() {
			return fmt.Errorf("core: value box has %d dims, schema has %d", len(pc.Values), s.schema.Len())
		}
		if pc.KLo < 0 || pc.KLo > pc.KHi {
			return fmt.Errorf("core: invalid frequency window [%d, %d]", pc.KLo, pc.KHi)
		}
		s.pcs = append(s.pcs, pc)
	}
	s.disjointMu.Lock()
	s.disjointKnown = false
	s.disjointMu.Unlock()
	s.version.Add(1)
	return nil
}

// MustAdd is Add that panics on error.
func (s *Set) MustAdd(pcs ...PC) {
	if err := s.Add(pcs...); err != nil {
		panic(err)
	}
}

// Schema returns the set's schema.
func (s *Set) Schema() *domain.Schema { return s.schema }

// Len returns the number of constraints.
func (s *Set) Len() int { return len(s.pcs) }

// PCs returns the constraints (shared slice; treat as read-only).
func (s *Set) PCs() []PC { return s.pcs }

// Predicates returns the ψ of each constraint, in order.
func (s *Set) Predicates() []*predicate.P {
	out := make([]*predicate.P, len(s.pcs))
	for i, pc := range s.pcs {
		out[i] = pc.Pred
	}
	return out
}

// Closed reports whether the set is closed over the schema domain
// (Definition 3.2): every point of the domain satisfies at least one
// predicate. Closure is required for the ranges to bound all missing-data
// instances.
func (s *Set) Closed(solver *sat.Solver) bool {
	neg := make([]domain.Box, len(s.pcs))
	for i, pc := range s.pcs {
		neg[i] = pc.Pred.Box()
	}
	// Closed iff (domain \ ∪ψᵢ) is empty.
	return !solver.SatBoxes(s.schema.FullBox(), neg)
}

// Uncovered returns a witness point of the domain not covered by any
// predicate, if the set is not closed.
func (s *Set) Uncovered(solver *sat.Solver) (domain.Row, bool) {
	neg := make([]domain.Box, len(s.pcs))
	for i, pc := range s.pcs {
		neg[i] = pc.Pred.Box()
	}
	boxes := solver.RemainderBoxes(s.schema.FullBox(), neg)
	if len(boxes) == 0 {
		return nil, false
	}
	return boxes[0].Representative(s.schema), true
}

// Validate checks every constraint against a historical relation instance,
// returning one error per violated constraint. This implements the paper's
// "constraints are efficiently testable on historical data" property: a user
// can verify that proposed PCs held in the past before trusting them for
// contingency analysis.
func (s *Set) Validate(rows []domain.Row) []error {
	var errs []error
	for _, pc := range s.pcs {
		if err := pc.SatisfiedBy(rows); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// Disjoint reports whether all predicates are pairwise non-overlapping on
// the schema lattice. Disjoint sets qualify for the greedy fast path
// (Section 4.2 "Faster Algorithm in Special Cases", evaluated in Figure 8).
func (s *Set) Disjoint() bool {
	s.disjointMu.Lock()
	defer s.disjointMu.Unlock()
	if s.disjointKnown {
		return s.disjoint
	}
	s.disjointKnown = true
	s.disjoint = true
	boxes := make([]domain.Box, len(s.pcs))
	for i, pc := range s.pcs {
		boxes[i] = pc.Pred.Box()
	}
	for i := 0; i < len(boxes) && s.disjoint; i++ {
		for j := i + 1; j < len(boxes); j++ {
			if !boxes[i].Intersect(boxes[j]).EmptyFor(s.schema) {
				s.disjoint = false
				break
			}
		}
	}
	return s.disjoint
}

// TotalKLo returns the sum of frequency lower bounds — the minimum number of
// missing rows any valid instance must contain (only exact for disjoint
// sets; for overlapping sets it is an upper bound on that minimum).
func (s *Set) TotalKLo() int {
	t := 0
	for _, pc := range s.pcs {
		t += pc.KLo
	}
	return t
}

// MaxAbsValue returns the largest absolute value the named attribute can
// take under any constraint (used to scale AVG binary searches).
func (s *Set) MaxAbsValue(attr string) float64 {
	i := s.schema.MustIndex(attr)
	m := 0.0
	for _, pc := range s.pcs {
		m = math.Max(m, math.Abs(pc.Values[i].Lo))
		m = math.Max(m, math.Abs(pc.Values[i].Hi))
	}
	return m
}
