package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/sched"
)

// These tests pin the intra-query parallelism contract: Range results from
// the scheduler path (per-cell tasks fanned out over a shared cost-ordered
// scheduler, cell-bound cache on) are bit-identical to the sequential
// reference path (SequentialCells, no cell cache) at every parallelism
// level, for all five aggregates and for group-by.

// schedWorkerCounts are the scheduler widths the differential tests sweep:
// caller-only (parallelism 1), one worker (parallelism 2), and NumCPU.
func schedWorkerCounts() []int {
	counts := []int{0, 1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	} else {
		counts = append(counts, 4) // oversubscribed on 1 CPU: interleaving still must not matter
	}
	return counts
}

// coupledSet is overlappingSet: its frequency lower bounds survive pushdown
// for wide queries, exercising the problem-scoped (coupled) cache keys.
// uncoupledSet has kLo=0 everywhere, exercising the cell-scoped keys.
func uncoupledSet(t testing.TB) *Set {
	t.Helper()
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Range("utc", 0, 12).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(1, 40)}, 0, 9),
		MustPC(predicate.NewBuilder(s).Range("utc", 5, 20).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(3, 60)}, 0, 7),
		MustPC(predicate.NewBuilder(s).Range("utc", 10, 30).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 25)}, 0, 5),
		MustPC(predicate.NewBuilder(s).Range("branch", 1, 2).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(10, 100)}, 0, 6),
	)
	return set
}

// TestIntraQueryBitIdentical: for every aggregate and a mix of regions, the
// scheduler path at parallelism 1, 2, and NumCPU returns Ranges
// bit-identical to the sequential reference — cold and again warm (second
// pass served by the cell-bound cache).
func TestIntraQueryBitIdentical(t *testing.T) {
	for _, mk := range []struct {
		name string
		set  func(testing.TB) *Set
	}{{"coupled", overlappingSet}, {"uncoupled", uncoupledSet}} {
		t.Run(mk.name, func(t *testing.T) {
			set := mk.set(t)
			queries := batchWorkload(set.Schema())
			ref := NewEngine(set, nil, Options{
				DisableFastPath: true, SequentialCells: true, DisableCellCache: true,
			})
			want := make([]Range, len(queries))
			for i, q := range queries {
				var err error
				want[i], err = ref.Bound(q)
				if err != nil {
					t.Fatal(err)
				}
			}
			for _, workers := range schedWorkerCounts() {
				t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
					sch := sched.New(workers)
					defer sch.Close()
					eng := NewEngine(set, nil, Options{DisableFastPath: true, Scheduler: sch})
					for pass := 0; pass < 2; pass++ {
						for i, q := range queries {
							got, err := eng.Bound(q)
							if err != nil {
								t.Fatal(err)
							}
							if got != want[i] {
								t.Fatalf("pass %d query %d (%s): scheduler range %+v != sequential %+v",
									pass, i, q, got, want[i])
							}
						}
					}
					if pass2 := eng.CellCacheStats(); pass2.Hits == 0 {
						t.Fatalf("second pass produced no cell-cache hits: %+v", pass2)
					}
				})
			}
		})
	}
}

// TestGroupByBitIdenticalAndShared: group-by over the scheduler+cache path
// matches per-group sequential bounds bit-identically, and groups slicing an
// unconstrained attribute share cell-scoped cache entries (hits despite
// distinct group regions).
func TestGroupByBitIdenticalAndShared(t *testing.T) {
	set := uncoupledSet(t)
	s := set.Schema()
	// Groups slice the aggregated attribute; the constraints' predicates
	// live on utc/branch, so every group sees the same active sets and
	// frequency windows — the cell-scoped sharing case.
	var groups []*predicate.P
	for g := 0; g < 6; g++ {
		groups = append(groups, predicate.NewBuilder(s).
			Range("price", float64(g*100), float64(g*100+99)).Build())
	}
	q := Query{Agg: Min, Attr: "price",
		Where: predicate.NewBuilder(s).Range("utc", 2, 18).Build()}

	ref := NewEngine(set, nil, Options{
		DisableFastPath: true, SequentialCells: true, DisableCellCache: true,
	})
	want, err := ref.GroupBy(q, groups)
	if err != nil {
		t.Fatal(err)
	}

	sch := sched.New(2)
	defer sch.Close()
	eng := NewEngine(set, nil, Options{DisableFastPath: true, Scheduler: sch})
	got, err := eng.GroupBy(q, groups)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Range != want[i].Range {
			t.Fatalf("group %d: scheduler range %+v != sequential %+v", i, got[i].Range, want[i].Range)
		}
	}
	cs := eng.CellCacheStats()
	if cs.Hits == 0 {
		t.Fatalf("groups over shared cells produced no cell-cache hits: %+v", cs)
	}
}

// TestUnknownAggregateErrorNamesQuery: the Bound error for an out-of-range
// aggregate identifies the whole query, not just the aggregate code.
func TestUnknownAggregateErrorNamesQuery(t *testing.T) {
	set := overlappingSet(t)
	eng := NewEngine(set, nil, Options{})
	where := predicate.NewBuilder(set.Schema()).Range("utc", 1, 4).Build()
	_, err := eng.Bound(Query{Agg: Agg(42), Attr: "price", Where: where})
	if err == nil {
		t.Fatal("Bound accepted an unknown aggregate")
	}
	for _, frag := range []string{"Agg(42)", "price", "utc", "COUNT, SUM, AVG, MIN or MAX"} {
		if !contains(err.Error(), frag) {
			t.Fatalf("error %q does not mention %q", err, frag)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestCellCacheMutateReboundDifferential is the randomized correctness
// gauntlet for the epoch-scoped cell-bound cache: a store mutates through
// random add/remove/replace epochs while one warm engine lineage (Rebind,
// shared cell cache) keeps answering a fixed workload; after every epoch
// each Range must be bit-identical to a cold sequential engine built from
// scratch on the same store state.
func TestCellCacheMutateReboundDifferential(t *testing.T) {
	s := salesSchema()
	rng := rand.New(rand.NewSource(7))
	store := NewStore(s)
	newPC := func() PC {
		lo := rng.Float64() * 20
		w := 4 + rng.Float64()*12
		vlo := rng.Float64() * 50
		return MustPC(
			predicate.NewBuilder(s).Range("utc", lo, lo+w).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(vlo, vlo+10+rng.Float64()*40)},
			rng.Intn(2), 2+rng.Intn(6),
		)
	}
	var pcs []PC
	for i := 0; i < 8; i++ {
		pcs = append(pcs, newPC())
	}
	ids, err := store.AddPCs(pcs...)
	if err != nil {
		t.Fatal(err)
	}

	queries := batchWorkload(s)
	sch := sched.New(2)
	defer sch.Close()
	warm := NewEngine(store, nil, Options{DisableFastPath: true, Scheduler: sch})

	for epoch := 0; epoch < 12; epoch++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(ids) < 4:
			got, err := store.AddPCs(newPC())
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, got...)
		case op == 1:
			k := rng.Intn(len(ids))
			if err := store.Remove(ids[k]); err != nil {
				t.Fatal(err)
			}
			ids = append(ids[:k], ids[k+1:]...)
		default:
			k := rng.Intn(len(ids))
			if err := store.Replace(ids[k], newPC()); err != nil {
				t.Fatal(err)
			}
		}
		warm = warm.Rebind()
		cold := NewEngine(store, nil, Options{
			DisableFastPath: true, SequentialCells: true,
			DisableCellCache: true, DisableDecompCache: true,
		})
		for i, q := range queries {
			got, err := warm.Bound(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := cold.Bound(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("epoch %d query %d (%s): warm cached range %+v != cold range %+v",
					epoch, i, q, got, want)
			}
		}
	}
	cs := warm.CellCacheStats()
	if cs.Hits == 0 {
		t.Fatalf("mutate→rebound run produced no cell-cache hits: %+v", cs)
	}
	if cs.Retained == 0 {
		t.Fatalf("scoped invalidation never retained an entry across epochs: %+v", cs)
	}
}

// TestCellSigDifferentiates is the collision test on the cell signature
// key: constraint sets that differ only in value boxes, only in frequency
// windows, or only in verification status must produce different cell
// signatures — sharing across any of those differences could alias a
// future cell-local solve. Identical content must produce identical
// signatures (that equality is what group-by sharing rides on).
func TestCellSigDifferentiates(t *testing.T) {
	s := salesSchema()
	build := func(vhi float64, khi int) *cellProblem {
		set := NewSet(s)
		set.MustAdd(MustPC(
			predicate.NewBuilder(s).Range("utc", 0, 10).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, vhi)}, 0, khi,
		))
		eng := NewEngine(set, nil, Options{DisableFastPath: true})
		cp, err := eng.decompose(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(cp.cells) == 0 {
			t.Fatal("no cells")
		}
		return cp
	}
	base := build(50, 5)
	sameContent := build(50, 5)
	diffValues := build(60, 5)
	diffWindow := build(50, 4)

	if got, want := sameContent.cellSig(0), base.cellSig(0); got != want {
		t.Fatalf("identical content produced different signatures:\n%q\n%q", got, want)
	}
	if got := diffValues.cellSig(0); got == base.cellSig(0) {
		t.Fatalf("value-box change did not change the signature: %q", got)
	}
	if got := diffWindow.cellSig(0); got == base.cellSig(0) {
		t.Fatalf("frequency-window change did not change the signature: %q", got)
	}

	// Verified flag: an early-stopped (unverified) cell must never share
	// with a verified one.
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Range("utc", 0, 10).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 50)}, 0, 5),
		MustPC(predicate.NewBuilder(s).Range("utc", 5, 15).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 50)}, 0, 5),
	)
	opts := Options{DisableFastPath: true}
	opts.Cells.EarlyStopLayer = 1
	es := NewEngine(set, nil, opts)
	cpES, err := es.decompose(nil)
	if err != nil {
		t.Fatal(err)
	}
	foundUnverified := false
	for i := range cpES.cells {
		if !cpES.cells[i].Verified {
			foundUnverified = true
			if sig := cpES.cellSig(i); sig[0] != 'u' {
				t.Fatalf("unverified cell signature %q does not lead with the unverified marker", sig)
			}
		}
	}
	if !foundUnverified {
		t.Skip("early stopping produced no unverified cell in this configuration")
	}
}
