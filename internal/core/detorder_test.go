package core

import (
	"strings"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// These are the regression tests for the map-order leaks pcvet's
// determinism analyzer caught in the JSON decode path and NewPC: when an
// input names several bad attributes, which error wins was a function of
// map iteration order, so the same bad request produced different 400
// bodies on different runs. Attribute names are now visited sorted; the
// loops run enough times that Go's per-run map-order randomization would
// expose a regression.

func detSchema() *domain.Schema {
	return domain.NewSchema(
		domain.Attr{Name: "utc", Kind: domain.Integral, Domain: domain.NewInterval(0, 23)},
		domain.Attr{Name: "price", Kind: domain.Continuous, Domain: domain.NewInterval(0, 500)},
	)
}

func TestPCFromJSONErrorSelectionDeterministic(t *testing.T) {
	schema := detSchema()
	c := PCJSON{
		Predicate: map[string][2]float64{
			"zebra": {0, 1}, "alpha": {0, 1}, "mid": {0, 1},
		},
		KHi: 1,
	}
	for i := 0; i < 50; i++ {
		_, err := PCFromJSON(schema, c)
		if err == nil {
			t.Fatal("expected an unknown-attribute error")
		}
		if !strings.Contains(err.Error(), `"alpha"`) {
			t.Fatalf("run %d: error picked %v; want the sorted-first attribute alpha", i, err)
		}
	}
}

func TestQueryFromJSONErrorSelectionDeterministic(t *testing.T) {
	schema := detSchema()
	qj := QueryJSON{
		Agg: "COUNT",
		Where: map[string][2]float64{
			"zebra": {0, 1}, "alpha": {0, 1}, "mid": {0, 1},
		},
	}
	for i := 0; i < 50; i++ {
		_, err := QueryFromJSON(schema, qj)
		if err == nil {
			t.Fatal("expected an unknown-where-attribute error")
		}
		if !strings.Contains(err.Error(), `"alpha"`) {
			t.Fatalf("run %d: error picked %v; want the sorted-first attribute alpha", i, err)
		}
	}
}

func TestNewPCErrorSelectionDeterministic(t *testing.T) {
	schema := detSchema()
	values := map[string]domain.Interval{
		"zebra": domain.NewInterval(0, 1),
		"alpha": domain.NewInterval(0, 1),
	}
	for i := 0; i < 50; i++ {
		_, err := NewPC(predicate.True(schema), values, 0, 1)
		if err == nil {
			t.Fatal("expected an unknown-attribute error")
		}
		if !strings.Contains(err.Error(), `"alpha"`) {
			t.Fatalf("run %d: error picked %v; want the sorted-first attribute alpha", i, err)
		}
	}
}
