package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// overlappingSet builds a small constraint set with heavily overlapping
// predicates so every query exercises the general DFS+SAT+MILP path.
func overlappingSet(t testing.TB) *Set {
	t.Helper()
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Range("utc", 0, 12).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(1, 40)}, 2, 9),
		MustPC(predicate.NewBuilder(s).Range("utc", 5, 20).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(3, 60)}, 1, 7),
		MustPC(predicate.NewBuilder(s).Range("utc", 10, 30).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 25)}, 0, 5),
		MustPC(predicate.NewBuilder(s).Range("branch", 1, 2).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(10, 100)}, 0, 6),
	)
	return set
}

// batchWorkload covers all five aggregates over a mix of query regions,
// with deliberate repeats so the decomposition cache sees shared regions.
func batchWorkload(s *domain.Schema) []Query {
	regions := []*predicate.P{
		nil,
		predicate.NewBuilder(s).Range("utc", 0, 10).Build(),
		predicate.NewBuilder(s).Range("utc", 8, 22).Build(),
		predicate.NewBuilder(s).Range("utc", 3, 15).Range("branch", 0, 1).Build(),
		predicate.NewBuilder(s).Range("price", 5, 50).Build(),
	}
	var qs []Query
	for rep := 0; rep < 2; rep++ {
		for _, where := range regions {
			for _, agg := range []Agg{Count, Sum, Avg, Min, Max} {
				qs = append(qs, Query{Agg: agg, Attr: "price", Where: where})
			}
		}
	}
	return qs
}

// TestBoundBatchMatchesSequential checks BoundBatch at several parallelism
// levels against the plain uncached sequential path: every Range must be
// bit-identical, for all five aggregates, on both the general and the
// disjoint fast path.
func TestBoundBatchMatchesSequential(t *testing.T) {
	for _, disableFast := range []bool{false, true} {
		set := overlappingSet(t)
		queries := batchWorkload(set.Schema())
		ref := NewEngine(set, nil, Options{DisableFastPath: disableFast, DisableDecompCache: true})
		want := make([]Range, len(queries))
		for i, q := range queries {
			var err error
			want[i], err = ref.Bound(q)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, par := range []int{1, 2, 8} {
			e := NewEngine(set, nil, Options{DisableFastPath: disableFast})
			got, err := e.BoundBatch(queries, BatchOptions{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("fast=%v par=%d query %d (%v %v): got %+v, want %+v",
						!disableFast, par, i, queries[i].Agg, queries[i].Where, got[i], want[i])
				}
			}
		}
	}
}

// TestEngineConcurrentBoundAndBatch hammers one engine from many goroutines
// mixing Bound and BoundBatch over all five aggregates; run under -race it
// exercises the solver clones, the shared decomposition cache and the
// lazily-computed disjointness analysis.
func TestEngineConcurrentBoundAndBatch(t *testing.T) {
	set := overlappingSet(t)
	queries := batchWorkload(set.Schema())
	e := NewEngine(set, nil, Options{})
	want, err := e.BoundBatch(queries, BatchOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				got, err := e.BoundBatch(queries, BatchOptions{Parallelism: 4})
				if err != nil {
					errs <- err
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("goroutine %d: query %d diverged: %+v vs %+v", g, i, got[i], want[i])
						return
					}
				}
				return
			}
			for i, q := range queries {
				r, err := e.Bound(q)
				if err != nil {
					errs <- err
					return
				}
				if r != want[i] {
					t.Errorf("goroutine %d: query %d diverged: %+v vs %+v", g, i, r, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDecompositionCacheIdenticalRanges verifies the cache is a pure
// memoization: cached and uncached engines return identical ranges, and the
// repeated regions in the workload actually hit the cache.
func TestDecompositionCacheIdenticalRanges(t *testing.T) {
	set := overlappingSet(t)
	queries := batchWorkload(set.Schema())
	cached := NewEngine(set, nil, Options{DisableFastPath: true})
	uncached := NewEngine(set, nil, Options{DisableFastPath: true, DisableDecompCache: true})
	for i, q := range queries {
		rc, err := cached.Bound(q)
		if err != nil {
			t.Fatal(err)
		}
		ru, err := uncached.Bound(q)
		if err != nil {
			t.Fatal(err)
		}
		if rc != ru {
			t.Errorf("query %d (%v %v): cached %+v != uncached %+v", i, q.Agg, q.Where, rc, ru)
		}
	}
	st := cached.CacheStats()
	if st.Hits == 0 {
		t.Errorf("workload with repeated regions produced no cache hits (misses=%d)", st.Misses)
	}
	if ust := uncached.CacheStats(); ust != (CacheStats{}) {
		t.Errorf("disabled cache reported activity: %+v", ust)
	}
}

// TestSnapshotIsolationAndRebind checks the snapshot contract around store
// mutations: an engine keeps answering from the snapshot it bound (adding a
// constraint afterwards must NOT change its results — no stale-cache reads,
// no torn reads), while a rebound engine sees the new constraint and must
// not serve the old region's cached decomposition for the changed region.
func TestSnapshotIsolationAndRebind(t *testing.T) {
	s := salesSchema()
	set := NewStore(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Range("utc", 0, 12).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 40)}, 0, 9),
		MustPC(predicate.NewBuilder(s).Range("utc", 5, 20).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 60)}, 0, 7),
	)
	e := NewEngine(set, nil, Options{DisableFastPath: true})
	before, err := e.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	set.MustAdd(MustPC(predicate.NewBuilder(s).Range("utc", 21, 30).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(0, 10)}, 3, 5))
	// The old engine is pinned to its snapshot.
	pinned, err := e.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	if pinned != before {
		t.Errorf("snapshot-bound COUNT changed after Add: %v -> %v", before, pinned)
	}
	// A rebound engine reflects the mutation (and must not reuse the cached
	// full-domain decomposition, which the new predicate overlaps).
	re := e.Rebind()
	after, err := re.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.Hi != before.Hi+5 || after.Lo != before.Lo+3 {
		t.Errorf("COUNT after Add+Rebind = %v, want [%g, %g] (stale cache?)",
			after, before.Lo+3, before.Hi+5)
	}
	if st := re.CacheStats(); st.Invalidated == 0 {
		t.Errorf("mutation overlapping a cached region reported no invalidation: %+v", st)
	}
}

// TestDecompCacheEvictionAdmitsNewRegions checks the cache does not lock
// out fresh regions once full: with capacity 2 and a drifting 4-region
// workload, later regions must still produce hits on their second pass.
func TestDecompCacheEvictionAdmitsNewRegions(t *testing.T) {
	set := overlappingSet(t)
	s := set.Schema()
	e := NewEngine(set, nil, Options{DisableFastPath: true, DecompCacheSize: 2})
	regions := []*predicate.P{
		predicate.NewBuilder(s).Range("utc", 0, 6).Build(),
		predicate.NewBuilder(s).Range("utc", 7, 13).Build(),
		predicate.NewBuilder(s).Range("utc", 14, 20).Build(),
		predicate.NewBuilder(s).Range("utc", 21, 27).Build(),
	}
	// Fill past capacity, then revisit the LAST region twice: if full
	// inserts were refused, region 3 could never enter the cache.
	for _, where := range regions {
		if _, err := e.Count(where); err != nil {
			t.Fatal(err)
		}
	}
	before := e.CacheStats()
	if _, err := e.Count(regions[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Count(regions[3]); err != nil {
		t.Fatal(err)
	}
	after := e.CacheStats()
	if after.Hits == before.Hits {
		t.Errorf("region beyond capacity never became cacheable: before=%+v after=%+v", before, after)
	}
}

// TestBoundBatchErrorPropagation checks that a failing query does not abort
// the batch and that the first error is surfaced.
func TestBoundBatchErrorPropagation(t *testing.T) {
	set := overlappingSet(t)
	s := set.Schema()
	e := NewEngine(set, nil, Options{})
	queries := []Query{
		{Agg: Count},
		{Agg: Agg(99)},
		{Agg: Sum, Attr: "price", Where: predicate.NewBuilder(s).Range("utc", 0, 10).Build()},
	}
	for _, par := range []int{1, 3} {
		got, err := e.BoundBatch(queries, BatchOptions{Parallelism: par})
		if err == nil {
			t.Fatalf("par=%d: expected an error for the unknown aggregate", par)
		}
		if got[1] != (Range{}) {
			t.Errorf("par=%d: failed query returned non-zero range %+v", par, got[1])
		}
		want0, _ := e.Bound(queries[0])
		want2, _ := e.Bound(queries[2])
		if got[0] != want0 || got[2] != want2 {
			t.Errorf("par=%d: healthy queries not computed despite the failure", par)
		}
	}
	if res, err := e.BoundBatch(nil, BatchOptions{}); res != nil || err != nil {
		t.Errorf("empty batch: got (%v, %v), want (nil, nil)", res, err)
	}
}

// TestSolverStatsFoldedAfterBatch checks per-worker solver clones merge
// their counters back, so the engine's solver accounts for all batch work.
func TestSolverStatsFoldedAfterBatch(t *testing.T) {
	set := overlappingSet(t)
	queries := batchWorkload(set.Schema())

	seq := NewEngine(set, nil, Options{DisableFastPath: true})
	if _, err := seq.BoundBatch(queries, BatchOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	want := seq.Solver().Stats()

	par := NewEngine(set, nil, Options{DisableFastPath: true})
	if _, err := par.BoundBatch(queries, BatchOptions{Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	got := par.Solver().Stats()

	if want.Checks == 0 {
		t.Fatal("sequential batch issued no SAT checks; workload too trivial")
	}
	// Cache racing may duplicate a few decompositions across workers, so the
	// parallel run can only do at least as much attributed work, never less.
	if got.Checks < want.Checks {
		t.Errorf("parallel solver stats lost work: %d checks < sequential %d", got.Checks, want.Checks)
	}
}

// TestBoundBatchCtxCancel checks cooperative cancellation: a pre-cancelled
// context bounds nothing, returns the context error, and leaves every result
// zero — at sequential and parallel fan-out alike.
func TestBoundBatchCtxCancel(t *testing.T) {
	set := overlappingSet(t)
	queries := batchWorkload(set.Schema())
	for _, par := range []int{1, 4} {
		e := NewEngine(set, nil, Options{})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		results, err := e.BoundBatchCtx(ctx, queries, BatchOptions{Parallelism: par})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: err = %v, want context.Canceled", par, err)
		}
		for i, r := range results {
			if r != (Range{}) {
				t.Fatalf("par=%d: result %d = %v after pre-cancelled batch", par, i, r)
			}
		}
	}
}

// TestBoundBatchCtxBackground checks that the context-free path is untouched:
// BoundBatch must stay bit-identical to BoundBatchCtx with a live context.
func TestBoundBatchCtxBackground(t *testing.T) {
	set := overlappingSet(t)
	queries := batchWorkload(set.Schema())
	e := NewEngine(set, nil, Options{})
	want, err := e.BoundBatch(queries, BatchOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.BoundBatchCtx(context.Background(), queries, BatchOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("query %d: %v vs %v", i, want[i], got[i])
		}
	}
}

// TestBoundBatchCtxMidwayCancel cancels while a parallel batch is in flight:
// the batch must return promptly with the context error and partial results,
// and every completed Range must still be bit-identical to the sequential
// reference (an in-flight bound is finished, never corrupted).
func TestBoundBatchCtxMidwayCancel(t *testing.T) {
	set := overlappingSet(t)
	queries := batchWorkload(set.Schema())
	ref := NewEngine(set, nil, Options{DisableDecompCache: true})
	want := make([]Range, len(queries))
	for i, q := range queries {
		r, err := ref.Bound(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	e := NewEngine(set, nil, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	go cancel() // races with the batch: some queries may finish, some not
	results, err := e.BoundBatchCtx(ctx, queries, BatchOptions{Parallelism: 4})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	for i, r := range results {
		if r != (Range{}) && r != want[i] {
			t.Fatalf("query %d: completed result %v differs from reference %v", i, r, want[i])
		}
	}
}
