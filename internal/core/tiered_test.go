package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/sched"
)

// tieredWorkload is batchWorkload plus whole-domain queries (the sketch
// path) for every aggregate.
func tieredWorkload(s *domain.Schema) []Query {
	queries := batchWorkload(s)
	for _, agg := range []Agg{Count, Sum, Avg, Min, Max} {
		queries = append(queries, Query{Agg: agg, Attr: "price"})
	}
	return queries
}

// checkSummaryContains asserts the summary range is a sound outer bound of
// the exact range: endpoints contain it, and a summary non-emptiness claim
// implies an exact one.
func checkSummaryContains(t *testing.T, label string, q Query, sum, exact Range) {
	t.Helper()
	if sum.Lo > exact.Lo || sum.Hi < exact.Hi {
		t.Fatalf("%s %s: summary [%v, %v] does not contain exact [%v, %v]",
			label, q, sum.Lo, sum.Hi, exact.Lo, exact.Hi)
	}
	if !sum.MaybeEmpty && exact.MaybeEmpty {
		t.Fatalf("%s %s: summary claims non-empty but exact range %+v may be empty", label, q, exact)
	}
}

// TestSummarySoundnessDifferential is the randomized soundness gauntlet for
// the summary tier, mirroring TestCellCacheMutateReboundDifferential: a
// store mutates through random Add/Remove/Replace epochs while the attached
// overlay keeps its summaries in lockstep; after every epoch, for every
// aggregate over a workload of regions (plus whole-domain sketch queries),
// the summary interval must contain the exact interval — against the
// general MILP path and against the engine's default path (which takes the
// disjoint fast path when it can).
func TestSummarySoundnessDifferential(t *testing.T) {
	s := salesSchema()
	type scenario struct {
		name string
		// newPC returns the next constraint; slot is a stable per-id slot
		// index used by the disjoint scenario to keep predicates disjoint
		// across mutations.
		newPC func(rng *rand.Rand, slot int) PC
	}
	scenarios := []scenario{
		{
			name: "overlapping",
			newPC: func(rng *rand.Rand, _ int) PC {
				lo := rng.Float64() * 20
				w := 4 + rng.Float64()*12
				vlo := rng.Float64() * 50
				return MustPC(
					predicate.NewBuilder(s).Range("utc", lo, lo+w).Build(),
					map[string]domain.Interval{"price": domain.NewInterval(vlo, vlo+10+rng.Float64()*40)},
					rng.Intn(2), 2+rng.Intn(6),
				)
			},
		},
		{
			// Disjoint slots utc [4k, 4k+2]: lattice gaps at 4k+3 keep every
			// pair disjoint, so the overlay's disjointness certificate (and
			// with it summary COUNT lower bounds and non-emptiness claims)
			// stays live across mutations.
			name: "disjoint",
			newPC: func(rng *rand.Rand, slot int) PC {
				lo := float64(4 * slot)
				vlo := rng.Float64() * 50
				return MustPC(
					predicate.NewBuilder(s).Range("utc", lo, lo+2).Build(),
					map[string]domain.Interval{"price": domain.NewInterval(vlo, vlo+10+rng.Float64()*40)},
					rng.Intn(2), 2+rng.Intn(6),
				)
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			store := NewStore(s)
			// slots tracks which disjoint slot each live id occupies; the
			// overlapping scenario ignores it.
			slots := map[PCID]int{}
			freeSlot := func() int {
				used := map[int]bool{}
				for _, sl := range slots {
					used[sl] = true
				}
				for k := 0; ; k++ {
					if !used[k] {
						return k
					}
				}
			}
			var pcs []PC
			for i := 0; i < 6; i++ {
				pcs = append(pcs, sc.newPC(rng, i))
			}
			ids, err := store.AddPCs(pcs...)
			if err != nil {
				t.Fatal(err)
			}
			for i, id := range ids {
				slots[id] = i
			}

			ov := AttachSummary(store)
			defer ov.Detach()
			queries := tieredWorkload(s)
			sch := sched.New(2)
			defer sch.Close()
			// warm: general path with scheduler + caches across Rebind;
			// defaultPath: whatever the engine picks (fast path for the
			// disjoint scenario). Both must be contained.
			warm := NewEngine(store, nil, Options{DisableFastPath: true, Scheduler: sch, Summary: ov})

			for epoch := 0; epoch < 12; epoch++ {
				switch op := rng.Intn(3); {
				case op == 0 || len(ids) < 3:
					sl := freeSlot()
					got, err := store.AddPCs(sc.newPC(rng, sl))
					if err != nil {
						t.Fatal(err)
					}
					ids = append(ids, got...)
					slots[got[0]] = sl
				case op == 1:
					k := rng.Intn(len(ids))
					if err := store.Remove(ids[k]); err != nil {
						t.Fatal(err)
					}
					delete(slots, ids[k])
					ids = append(ids[:k], ids[k+1:]...)
				default:
					k := rng.Intn(len(ids))
					if err := store.Replace(ids[k], sc.newPC(rng, slots[ids[k]])); err != nil {
						t.Fatal(err)
					}
				}
				if got, want := ov.Stats().Epoch, store.Epoch(); got != want {
					t.Fatalf("epoch %d: overlay at epoch %d, store at %d", epoch, got, want)
				}
				if sc.name == "disjoint" && !ov.Stats().Disjoint {
					t.Fatalf("epoch %d: disjoint scenario lost the disjointness certificate: %+v", epoch, ov.Stats())
				}
				warm = warm.Rebind()
				defaultPath := NewEngine(store, nil, Options{Summary: ov})
				for _, q := range queries {
					sum, ok := warm.BoundSummary(q)
					if !ok {
						t.Fatalf("epoch %d %s: no summary answer for a current-epoch engine", epoch, q)
					}
					general, err := warm.Bound(q)
					if err != nil {
						t.Fatal(err)
					}
					checkSummaryContains(t, fmt.Sprintf("epoch %d general", epoch), q, sum, general)
					def, err := defaultPath.Bound(q)
					if err != nil {
						t.Fatal(err)
					}
					checkSummaryContains(t, fmt.Sprintf("epoch %d default", epoch), q, sum, def)
				}
			}
			st := ov.Stats()
			if st.Mutations != 12 {
				t.Fatalf("overlay saw %d mutations, want 12", st.Mutations)
			}
			if st.Evals == 0 || st.SketchEvals == 0 {
				t.Fatalf("summary eval counters never moved: %+v", st)
			}
		})
	}
}

// TestTieredExactBitIdentity: attaching an overlay must not perturb the
// exact path by a single bit, and TierExact must bypass the summary tier.
func TestTieredExactBitIdentity(t *testing.T) {
	set := overlappingSet(t)
	queries := tieredWorkload(set.Schema())
	plain := NewEngine(set, nil, Options{})
	ov := AttachSummary(set)
	defer ov.Detach()
	tiered := NewEngine(set, nil, Options{Summary: ov})
	for i, q := range queries {
		want, err := plain.Bound(q)
		if err != nil {
			t.Fatal(err)
		}
		got, prec, err := tiered.BoundTiered(q, TierSpec{Mode: TierExact})
		if err != nil {
			t.Fatal(err)
		}
		if prec != PrecisionExact {
			t.Fatalf("query %d: TierExact produced precision %v", i, prec)
		}
		if got != want {
			t.Fatalf("query %d (%s): overlay-carrying exact range %+v != plain %+v", i, q, got, want)
		}
		// A zero width budget escalates every non-degenerate query too.
		got, _, err = tiered.BoundTiered(q, TierSpec{Mode: TierAuto, MaxWidth: 0})
		if err != nil {
			t.Fatal(err)
		}
		if s, ok := tiered.BoundSummary(q); ok && s.Lo <= s.Hi && s.Hi-s.Lo > 0 && got != want {
			t.Fatalf("query %d (%s): zero-budget tiered range %+v != exact %+v", i, q, got, want)
		}
	}
}

// TestTieredForceSummary: TierForceSummary answers from the summary tier
// whenever one exists, and the answer contains the exact range.
func TestTieredForceSummary(t *testing.T) {
	set := overlappingSet(t)
	ov := AttachSummary(set)
	defer ov.Detach()
	eng := NewEngine(set, nil, Options{Summary: ov})
	for _, q := range tieredWorkload(set.Schema()) {
		got, prec, err := eng.BoundTiered(q, TierSpec{Mode: TierForceSummary})
		if err != nil {
			t.Fatal(err)
		}
		if prec != PrecisionSummary {
			t.Fatalf("%s: forced summary still escalated", q)
		}
		exact, err := eng.Bound(q)
		if err != nil {
			t.Fatal(err)
		}
		checkSummaryContains(t, "forced", q, got, exact)
	}
}

// TestTieredEpochMismatchEscalates: an engine pinned behind the store
// frontier gets no summary answer (the overlay only describes the current
// epoch), so tiered bounds silently escalate to the exact path.
func TestTieredEpochMismatchEscalates(t *testing.T) {
	set := overlappingSet(t)
	ov := AttachSummary(set)
	defer ov.Detach()
	pinned := NewEngine(set, nil, Options{Summary: ov})
	q := Query{Agg: Sum, Attr: "price"}
	if _, ok := pinned.BoundSummary(q); !ok {
		t.Fatal("current-epoch engine has no summary answer")
	}
	set.MustAdd(MustPC(
		predicate.NewBuilder(set.Schema()).Range("utc", 1, 2).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(1, 2)}, 0, 3))
	if _, ok := pinned.BoundSummary(q); ok {
		t.Fatal("pinned engine behind the frontier still got a summary answer")
	}
	r, prec, err := pinned.BoundTiered(q, TierSpec{Mode: TierForceSummary})
	if err != nil {
		t.Fatal(err)
	}
	if prec != PrecisionExact {
		t.Fatalf("pinned tiered bound did not escalate: %v %+v", prec, r)
	}
	// The rebound lineage is current again.
	if _, ok := pinned.Rebind().BoundSummary(q); !ok {
		t.Fatal("rebound engine has no summary answer")
	}
}

// TestTieredDetachStopsTracking: after Detach the overlay stays frozen, so
// the next mutation strands it and summary answers disappear instead of
// going stale.
func TestTieredDetachStopsTracking(t *testing.T) {
	set := overlappingSet(t)
	ov := AttachSummary(set)
	eng := NewEngine(set, nil, Options{Summary: ov})
	q := Query{Agg: Count}
	if _, ok := eng.BoundSummary(q); !ok {
		t.Fatal("no summary answer before detach")
	}
	ov.Detach()
	ov.Detach() // idempotent
	set.MustAdd(MustPC(
		predicate.NewBuilder(set.Schema()).Range("utc", 1, 2).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(1, 2)}, 0, 3))
	if _, ok := eng.Rebind().BoundSummary(q); ok {
		t.Fatal("detached overlay still answered for a post-detach epoch")
	}
}

// TestBoundBatchTiered: the batch form preserves input order across the
// summary/exact split, tags precisions correctly, and its exact sub-batch
// is bit-identical to a plain batch.
func TestBoundBatchTiered(t *testing.T) {
	set := overlappingSet(t)
	queries := tieredWorkload(set.Schema())
	ov := AttachSummary(set)
	defer ov.Detach()
	eng := NewEngine(set, nil, Options{Summary: ov})
	want, err := eng.BoundBatch(queries, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// TierExact: everything exact, bit-identical.
	got, prec, err := eng.BoundBatchTieredCtx(t.Context(), queries, TierSpec{Mode: TierExact}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if prec[i] != PrecisionExact || got[i] != want[i] {
			t.Fatalf("query %d: exact-mode batch diverged: %v %+v vs %+v", i, prec[i], got[i], want[i])
		}
	}

	// TierForceSummary: everything summary, everything containing exact.
	got, prec, err = eng.BoundBatchTieredCtx(t.Context(), queries, TierSpec{Mode: TierForceSummary}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if prec[i] != PrecisionSummary {
			t.Fatalf("query %d: forced summary batch escalated", i)
		}
		checkSummaryContains(t, "batch", queries[i], got[i], want[i])
	}

	// A budget between the extremes splits the batch; order and tagging
	// must survive the merge.
	budget := 0.0
	for _, q := range queries {
		if s, ok := eng.BoundSummary(q); ok && s.Lo <= s.Hi && s.Hi-s.Lo > budget {
			budget = s.Hi - s.Lo
		}
	}
	spec := TierSpec{Mode: TierAuto, MaxWidth: budget / 2}
	got, prec, err = eng.BoundBatchTieredCtx(t.Context(), queries, spec, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	summaries, exacts := 0, 0
	for i := range queries {
		switch prec[i] {
		case PrecisionSummary:
			summaries++
			checkSummaryContains(t, "split batch", queries[i], got[i], want[i])
		case PrecisionExact:
			exacts++
			if got[i] != want[i] {
				t.Fatalf("query %d: escalated batch entry %+v != plain %+v", i, got[i], want[i])
			}
		}
	}
	if summaries == 0 || exacts == 0 {
		t.Fatalf("mid budget did not split the batch: %d summary, %d exact", summaries, exacts)
	}
}

// BenchmarkTieredBound is the tentpole's latency claim in benchmark form:
// a within-budget summary answer vs the cold exact path (no decomposition
// cache, no cell cache — the cost a cache-miss burst or fresh epoch pays)
// on the same store and query. The pcbench "tiered" suite records the same
// comparison in BENCH_PR8.json with the speedup computed in process.
func BenchmarkTieredBound(b *testing.B) {
	set := overlappingSet(b)
	ov := AttachSummary(set)
	defer ov.Detach()
	q := Query{Agg: Sum, Attr: "price",
		Where: predicate.NewBuilder(set.Schema()).Range("utc", 2, 18).Build()}
	spec := TierSpec{Mode: TierForceSummary}

	b.Run("summary", func(b *testing.B) {
		eng := NewEngine(set, nil, Options{Summary: ov})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, prec, err := eng.BoundTiered(q, spec)
			if err != nil {
				b.Fatal(err)
			}
			if prec != PrecisionSummary {
				b.Fatal("summary tier did not answer")
			}
		}
	})
	b.Run("exact-cold", func(b *testing.B) {
		eng := NewEngine(set, nil, Options{
			DisableFastPath: true, SequentialCells: true,
			DisableCellCache: true, DisableDecompCache: true,
		})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Bound(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
