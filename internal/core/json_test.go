package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

func specFixture() *Set {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 149.99)}, 0, 5),
		MustPC(predicate.NewBuilder(s).Range("utc", 10, 13).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 999.99)}, 2, 100),
	)
	return set
}

func TestJSONRoundTrip(t *testing.T) {
	set := specFixture()
	raw, err := EncodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	got, schema, err := DecodeSet(raw)
	if err != nil {
		t.Fatal(err)
	}
	if schema.Len() != set.Schema().Len() {
		t.Fatalf("schema len = %d", schema.Len())
	}
	if got.Len() != set.Len() {
		t.Fatalf("constraints = %d, want %d", got.Len(), set.Len())
	}
	for i, pc := range got.PCs() {
		orig := set.PCs()[i]
		if pc.KLo != orig.KLo || pc.KHi != orig.KHi {
			t.Errorf("constraint %d frequency [%d,%d], want [%d,%d]",
				i, pc.KLo, pc.KHi, orig.KLo, orig.KHi)
		}
		for d := range pc.Values {
			if pc.Values[d] != orig.Values[d] {
				t.Errorf("constraint %d values dim %d: %v vs %v", i, d, pc.Values[d], orig.Values[d])
			}
			if pc.Pred.Box()[d] != orig.Pred.Box()[d] {
				t.Errorf("constraint %d predicate dim %d differs", i, d)
			}
		}
	}
	// Both sets must produce identical bounds.
	e1 := NewEngine(set, nil, Options{})
	e2 := NewEngine(got, nil, Options{})
	r1, err := e1.Sum("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Re-express the query over the decoded schema (same names).
	r2, err := e2.Sum("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Lo != r2.Lo || r1.Hi != r2.Hi {
		t.Errorf("bounds differ after round trip: %v vs %v", r1, r2)
	}
}

func TestDecodeSetErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"garbage", "not json"},
		{"no schema", `{"constraints": []}`},
		{"bad kind", `{"schema":[{"name":"x","kind":"complex","min":0,"max":1}]}`},
		{"inverted domain", `{"schema":[{"name":"x","kind":"continuous","min":5,"max":1}]}`},
		{"unknown predicate attr", `{"schema":[{"name":"x","kind":"continuous","min":0,"max":1}],
			"constraints":[{"predicate":{"y":[0,1]},"klo":0,"khi":1}]}`},
		{"bad frequency", `{"schema":[{"name":"x","kind":"continuous","min":0,"max":1}],
			"constraints":[{"predicate":{},"klo":5,"khi":1}]}`},
	}
	for _, tc := range cases {
		if _, _, err := DecodeSet([]byte(tc.raw)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestEncodeOmitsUnconstrainedAttrs(t *testing.T) {
	set := specFixture()
	raw, err := EncodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	// The first constraint predicates only on branch; utc must not appear in
	// its predicate map (spot-check the document mentions both attrs overall
	// but the encoding is sparse).
	if !strings.Contains(s, `"branch"`) || !strings.Contains(s, `"price"`) {
		t.Errorf("expected sparse maps mentioning branch and price:\n%s", s)
	}
	// Unconstrained humidity-like attributes: salesSchema has only 3 attrs,
	// all used somewhere; just assert the document parses back.
	if _, _, err := DecodeSet(raw); err != nil {
		t.Fatal(err)
	}
}

func TestGroupBy(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 100)}, 1, 5),
		MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 200)}, 2, 3),
	)
	e := NewEngine(set, nil, Options{})
	groups := []*predicate.P{
		predicate.NewBuilder(s).Eq("branch", 0).Build(),
		predicate.NewBuilder(s).Eq("branch", 1).Build(),
		predicate.NewBuilder(s).Eq("branch", 2).Build(),
	}
	out, err := e.GroupBy(Query{Agg: Count}, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("groups = %d", len(out))
	}
	if out[0].Range.Lo != 1 || out[0].Range.Hi != 5 {
		t.Errorf("group 0 = %v, want [1, 5]", out[0].Range)
	}
	if out[1].Range.Lo != 2 || out[1].Range.Hi != 3 {
		t.Errorf("group 1 = %v, want [2, 3]", out[1].Range)
	}
	if out[2].Range.Lo != 0 || out[2].Range.Hi != 0 {
		t.Errorf("group 2 (uncovered) = %v, want [0, 0]", out[2].Range)
	}
	// With an outer WHERE, the group conjoins.
	where := predicate.NewBuilder(s).Range("utc", 0, 30).Build()
	out2, err := e.GroupBy(Query{Agg: Sum, Attr: "price", Where: where}, groups[:1])
	if err != nil {
		t.Fatal(err)
	}
	if out2[0].Range.Hi != 500 {
		t.Errorf("group SUM upper = %v, want 500", out2[0].Range.Hi)
	}
}

// TestQueryJSONRoundTrip table-drives encode→decode over every aggregate and
// a mix of predicates: the reconstructed Query must be semantically identical
// (same aggregate, attribute, and predicate box).
func TestQueryJSONRoundTrip(t *testing.T) {
	s := salesSchema()
	cases := []struct {
		name string
		q    Query
	}{
		{"count no where", Query{Agg: Count}},
		{"sum full", Query{Agg: Sum, Attr: "price"}},
		{"avg one-dim", Query{Agg: Avg, Attr: "price",
			Where: predicate.NewBuilder(s).Range("utc", 11, 12).Build()}},
		{"min two-dim", Query{Agg: Min, Attr: "price",
			Where: predicate.NewBuilder(s).Range("utc", 0, 5).Eq("branch", 1).Build()}},
		{"max point", Query{Agg: Max, Attr: "utc",
			Where: predicate.NewBuilder(s).Eq("utc", 7).Build()}},
		{"count where", Query{Agg: Count,
			Where: predicate.NewBuilder(s).Range("price", 9.99, 200.5).Build()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			qj := QueryToJSON(s, tc.q)
			raw, err := json.Marshal(qj)
			if err != nil {
				t.Fatal(err)
			}
			var back QueryJSON
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatal(err)
			}
			got, err := QueryFromJSON(s, back)
			if err != nil {
				t.Fatal(err)
			}
			if got.Agg != tc.q.Agg || got.Attr != tc.q.Attr {
				t.Fatalf("round trip gave %v/%q, want %v/%q", got.Agg, got.Attr, tc.q.Agg, tc.q.Attr)
			}
			switch {
			case tc.q.Where == nil:
				if got.Where != nil {
					t.Fatalf("round trip grew a predicate: %v", got.Where)
				}
			case got.Where == nil:
				t.Fatalf("round trip lost the predicate %v", tc.q.Where)
			default:
				wb, gb := tc.q.Where.Box(), got.Where.Box()
				for d := range wb {
					if wb[d] != gb[d] {
						t.Fatalf("dim %d: %v vs %v", d, wb[d], gb[d])
					}
				}
			}
		})
	}
}

// TestQueryFromJSONErrors checks every validation the HTTP layer relies on
// to produce a 400 before engine work starts.
func TestQueryFromJSONErrors(t *testing.T) {
	s := salesSchema()
	cases := []struct {
		name string
		qj   QueryJSON
		want string
	}{
		{"unknown agg", QueryJSON{Agg: "MEDIAN"}, "unknown aggregate"},
		{"empty agg", QueryJSON{}, "unknown aggregate"},
		{"missing attr", QueryJSON{Agg: "SUM"}, "needs an attr"},
		{"unknown attr", QueryJSON{Agg: "SUM", Attr: "weight"}, "unknown attribute"},
		{"unknown where attr", QueryJSON{Agg: "COUNT",
			Where: map[string][2]float64{"weight": {0, 1}}}, "unknown where attribute"},
		{"nan where bound", QueryJSON{Agg: "COUNT",
			Where: map[string][2]float64{"utc": {math.NaN(), 3}}}, "NaN bound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := QueryFromJSON(s, tc.qj)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestParseAgg checks the case-insensitive aggregate-name mapping shared by
// pcrange and the HTTP wire format.
func TestParseAgg(t *testing.T) {
	for name, want := range map[string]Agg{
		"COUNT": Count, "sum": Sum, " Avg ": Avg, "min": Min, "MAX": Max,
	} {
		got, ok := ParseAgg(name)
		if !ok || got != want {
			t.Errorf("ParseAgg(%q) = %v, %v; want %v, true", name, got, ok, want)
		}
	}
	if _, ok := ParseAgg("median"); ok {
		t.Error("ParseAgg accepted MEDIAN")
	}
}

// TestEncodePCRoundTrip checks the exported per-constraint encoder against
// PCFromJSON on a constraint with mixed narrowed/unconstrained attributes.
func TestEncodePCRoundTrip(t *testing.T) {
	set := specFixture()
	s := set.Schema()
	for i, pc := range set.PCs() {
		back, err := PCFromJSON(s, EncodePC(s, pc))
		if err != nil {
			t.Fatalf("constraint %d: %v", i, err)
		}
		if back.KLo != pc.KLo || back.KHi != pc.KHi || back.Name != pc.Name {
			t.Fatalf("constraint %d: %v vs %v", i, back, pc)
		}
		for d := range pc.Values {
			if back.Values[d] != pc.Values[d] || back.Pred.Box()[d] != pc.Pred.Box()[d] {
				t.Fatalf("constraint %d dim %d differs", i, d)
			}
		}
	}
}
