package core

import (
	"math"
	"sort"

	"pcbound/internal/milp"
	"pcbound/internal/predicate"
)

// emptyRange is the range of an aggregate with no possible value (no rows
// can exist in the query region). Lo > Hi so Contains is always false.
func emptyRange() Range {
	return Range{Lo: math.Inf(1), Hi: math.Inf(-1), MaybeEmpty: true, LoExact: true, HiExact: true}
}

func (e *Engine) useFast() bool {
	return !e.opts.DisableFastPath && e.snap.Disjoint() &&
		e.opts.Cells.EarlyStopLayer == 0
}

// Count bounds COUNT(*) over the missing rows satisfying where.
func (e *Engine) Count(where *predicate.P) (Range, error) {
	if e.useFast() {
		r := e.fastCount(where)
		return r, nil
	}
	cp, err := e.decompose(where)
	if err != nil {
		return Range{}, err
	}
	if len(cp.cells) == 0 {
		return Range{LoExact: true, HiExact: true, SATChecks: cp.satChecks}, nil
	}
	sc := e.acquireCtx()
	defer e.releaseCtx(sc)
	mopts := e.milpOpts()
	obj := cp.ones()
	up := cp.solve(sc, obj, true, nil, false, mopts)
	lo := cp.solve(sc, obj, false, nil, false, mopts)
	return cp.newRange(lo, up), nil
}

// Sum bounds SUM(attr) over the missing rows satisfying where.
func (e *Engine) Sum(attr string, where *predicate.P) (Range, error) {
	if e.useFast() {
		r := e.fastSum(attr, where)
		return r, nil
	}
	cp, err := e.decompose(where)
	if err != nil {
		return Range{}, err
	}
	if len(cp.cells) == 0 {
		return Range{LoExact: true, HiExact: true, SATChecks: cp.satChecks}, nil
	}
	sc := e.acquireCtx()
	defer e.releaseCtx(sc)
	mopts := e.milpOpts()
	ai := e.snap.Schema().MustIndex(attr)
	u := cp.upperVec(ai)
	l := cp.lowerVec(ai)

	// Cells with an unbounded value range make the corresponding endpoint
	// infinite iff a row can actually be placed there.
	hiInf, loInf := false, false
	for i := range cp.cells {
		if math.IsInf(u[i], 1) {
			if cp.feasible(sc, nil, false, i, mopts) {
				hiInf = true
			}
			u[i] = 0 // unreachable cell: coefficient irrelevant
		}
		if math.IsInf(l[i], -1) {
			if cp.feasible(sc, nil, false, i, mopts) {
				loInf = true
			}
			l[i] = 0
		}
	}

	up := cp.solve(sc, u, true, nil, false, mopts)
	lo := cp.solve(sc, l, false, nil, false, mopts)
	r := cp.newRange(lo, up)
	if hiInf {
		r.Hi = math.Inf(1)
		r.HiExact = true
	}
	if loInf {
		r.Lo = math.Inf(-1)
		r.LoExact = true
	}
	return r, nil
}

// Avg bounds AVG(attr) over the missing rows satisfying where, via the
// paper's binary search over a parametric allocation problem (Section 4.2).
// The returned range is conditional on at least one missing row existing in
// the region; MaybeEmpty reports whether zero rows is also possible.
func (e *Engine) Avg(attr string, where *predicate.P) (Range, error) {
	if e.useFast() {
		r := e.fastAvg(attr, where)
		return r, nil
	}
	cp, err := e.decompose(where)
	if err != nil {
		return Range{}, err
	}
	if len(cp.cells) == 0 {
		r := emptyRange()
		r.SATChecks = cp.satChecks
		return r, nil
	}
	sc := e.acquireCtx()
	defer e.releaseCtx(sc)
	mopts := e.milpOpts()
	if !cp.feasible(sc, nil, true, -1, mopts) {
		r := emptyRange()
		r.SATChecks = cp.satChecks
		return r, nil
	}
	ai := e.snap.Schema().MustIndex(attr)
	u := cp.upperVec(ai)
	l := cp.lowerVec(ai)

	hi0, lo0 := math.Inf(-1), math.Inf(1)
	for i := range cp.cells {
		hi0 = math.Max(hi0, u[i])
		lo0 = math.Min(lo0, l[i])
	}
	r := Range{MaybeEmpty: cp.mayBeEmpty(), Cells: len(cp.cells), SATChecks: cp.satChecks}
	if math.IsInf(hi0, 1) || math.IsInf(lo0, -1) {
		// Unbounded value constraints: fall back to the trivial hull.
		r.Lo, r.Hi = lo0, hi0
		return r, nil
	}

	// One shared objective buffer serves every bisection probe: each probe
	// overwrites all entries, and cp.solve copies the objective into the LP.
	obj := make([]float64, len(u))
	// Upper: sup{r : max Σ (U_i - r)·x_i >= 0 over allocations with >=1 row}.
	r.Hi = binarySearchAvg(lo0, hi0, func(mid float64) bool {
		for i := range u {
			obj[i] = u[i] - mid
		}
		sol := cp.solve(sc, obj, true, nil, true, mopts)
		// sol.bound >= optimum: "< 0" proves mid is unachievable.
		return sol.feasible && sol.bound >= 0
	}, true)
	// Lower: inf{r : min Σ (L_i - r)·x_i <= 0 over allocations with >=1 row}.
	r.Lo = binarySearchAvg(lo0, hi0, func(mid float64) bool {
		for i := range l {
			obj[i] = l[i] - mid
		}
		sol := cp.solve(sc, obj, false, nil, true, mopts)
		// sol.bound <= optimum: "> 0" proves avg <= mid is impossible.
		return sol.feasible && sol.bound <= 0
	}, false)
	return r, nil
}

// binarySearchAvg searches [lo, hi]. For the upper endpoint (searchSup),
// ok(mid) means "average >= mid is possible" and the final hi is returned
// (sound from above). For the lower endpoint, ok(mid) means "average <= mid
// is possible" and the final lo is returned (sound from below).
func binarySearchAvg(lo, hi float64, ok func(float64) bool, searchSup bool) float64 {
	if lo >= hi {
		return lo
	}
	for iter := 0; iter < 60 && hi-lo > 1e-9*(1+math.Abs(hi)+math.Abs(lo)); iter++ {
		mid := lo + (hi-lo)/2
		if searchSup {
			if ok(mid) {
				lo = mid
			} else {
				hi = mid
			}
		} else {
			if ok(mid) {
				hi = mid
			} else {
				lo = mid
			}
		}
	}
	if searchSup {
		return hi
	}
	return lo
}

// Max bounds MAX(attr) over the missing rows satisfying where. Hi is the
// largest value any instance can exhibit; Lo is the smallest possible
// maximum among instances with at least one row.
func (e *Engine) Max(attr string, where *predicate.P) (Range, error) {
	if e.useFast() {
		r := e.fastMinMax(attr, where, true)
		return r, nil
	}
	return e.minMax(attr, where, true)
}

// Min bounds MIN(attr), dual to Max.
func (e *Engine) Min(attr string, where *predicate.P) (Range, error) {
	if e.useFast() {
		r := e.fastMinMax(attr, where, false)
		return r, nil
	}
	return e.minMax(attr, where, false)
}

func (e *Engine) minMax(attr string, where *predicate.P, isMax bool) (Range, error) {
	cp, err := e.decompose(where)
	if err != nil {
		return Range{}, err
	}
	if len(cp.cells) == 0 {
		r := emptyRange()
		r.SATChecks = cp.satChecks
		return r, nil
	}
	sc := e.acquireCtx()
	defer e.releaseCtx(sc)
	mopts := e.milpOpts()
	ai := e.snap.Schema().MustIndex(attr)
	u := cp.upperVec(ai)
	l := cp.lowerVec(ai)

	// Reachable cells: those that can host at least one row.
	reach := make([]bool, len(cp.cells))
	any := false
	for i := range cp.cells {
		reach[i] = cp.feasible(sc, nil, false, i, mopts)
		any = any || reach[i]
	}
	if !any {
		r := emptyRange()
		r.SATChecks = cp.satChecks
		return r, nil
	}

	r := Range{MaybeEmpty: cp.mayBeEmpty(), Cells: len(cp.cells), SATChecks: cp.satChecks, LoExact: true, HiExact: true}
	if isMax {
		// Hi: the largest upper value among reachable cells (a row placed
		// there at its cell maximum realizes it).
		r.Hi = math.Inf(-1)
		for i := range cp.cells {
			if reach[i] {
				r.Hi = math.Max(r.Hi, u[i])
			}
		}
		// Lo: minimize the largest lower-value among used cells. Search
		// thresholds ascending; the first feasible restriction wins.
		r.Lo = thresholdSearch(sc, cp, l, mopts, true)
	} else {
		r.Lo = math.Inf(1)
		for i := range cp.cells {
			if reach[i] {
				r.Lo = math.Min(r.Lo, l[i])
			}
		}
		r.Hi = thresholdSearch(sc, cp, u, mopts, false)
	}
	return r, nil
}

// thresholdSearch finds, for MAX (ascending=true), the smallest t such that
// an allocation using only cells with vals[i] <= t (and >= 1 row) is
// feasible; for MIN it finds the largest t over cells with vals[i] >= t.
func thresholdSearch(sc *solveCtx, cp *cellProblem, vals []float64, mopts milp.Options, ascending bool) float64 {
	uniq := append([]float64(nil), vals...)
	sort.Float64s(uniq)
	if !ascending {
		for i, j := 0, len(uniq)-1; i < j; i, j = i+1, j-1 {
			uniq[i], uniq[j] = uniq[j], uniq[i]
		}
	}
	forbid := make([]bool, len(vals))
	for _, t := range uniq {
		for i, v := range vals {
			forbid[i] = (ascending && v > t) || (!ascending && v < t)
		}
		if cp.feasible(sc, forbid, true, -1, mopts) {
			return t
		}
	}
	// Every restriction infeasible: the unrestricted extremum is the only
	// sound answer.
	if ascending {
		m := math.Inf(-1)
		for _, v := range vals {
			m = math.Max(m, v)
		}
		return m
	}
	m := math.Inf(1)
	for _, v := range vals {
		m = math.Min(m, v)
	}
	return m
}

// newRange assembles a Range from directional solve results.
func (cp *cellProblem) newRange(lo, up solveResult) Range {
	r := Range{
		Cells:     len(cp.cells),
		SATChecks: cp.satChecks,
	}
	if up.feasible {
		r.Hi = up.bound
		r.HiExact = up.exact
	} else {
		r.Hi = math.Inf(-1)
	}
	if lo.feasible {
		r.Lo = lo.bound
		r.LoExact = lo.exact
	} else {
		r.Lo = math.Inf(1)
	}
	r.Reconciled = lo.reconciled || up.reconciled
	// Unverified (early-stopped) cells mean the bound may be loose.
	for _, c := range cp.cells {
		if !c.Verified {
			r.LoExact, r.HiExact = false, false
			break
		}
	}
	return r
}
