package core

import (
	"math"
	"slices"
	"sort"

	"pcbound/internal/domain"
	"pcbound/internal/milp"
	"pcbound/internal/predicate"
	"pcbound/internal/sched"
)

// This file computes the five aggregate bounds over a cell decomposition.
// Since the intra-query parallelism rework, the unit of solver work is a
// *cell solve task*, not a query: per-cell feasibility checks, the two
// directional MILPs, AVG's bisection searches, and MIN/MAX threshold probes
// are routed through a cellRunner, which dispatches them on the engine's
// shared cost-ordered scheduler (internal/sched) and consults the
// epoch-scoped cell-bound cache (cellcache.go) first. Every task writes an
// index-addressed slot and every reduction below runs in fixed cell order,
// so results are bit-identical to the sequential path at any parallelism —
// the differential tests in intraquery_test.go pin exactly that.

// emptyRange is the range of an aggregate with no possible value (no rows
// can exist in the query region). Lo > Hi so Contains is always false.
func emptyRange() Range {
	return Range{Lo: math.Inf(1), Hi: math.Inf(-1), MaybeEmpty: true, LoExact: true, HiExact: true}
}

func (e *Engine) useFast() bool {
	return !e.opts.DisableFastPath && e.snap.Disjoint() &&
		e.opts.Cells.EarlyStopLayer == 0
}

// cellRunner coordinates one query's cell-level solve tasks: scheduling,
// caching, and caller-side deterministic reduction. It is cheap to build
// (no allocation beyond the struct) and lives for one aggregate call.
type cellRunner struct {
	e     *Engine
	cp    *cellProblem
	sc    *solveCtx
	mopts milp.Options
}

func (e *Engine) newRunner(cp *cellProblem, sc *solveCtx) cellRunner {
	return cellRunner{e: e, cp: cp, sc: sc, mopts: e.milpOpts()}
}

// seq reports whether tasks run inline on the caller (the sequential
// reference path: Options.SequentialCells or Options.Reference).
func (r *cellRunner) seq() bool { return r.e.sched == nil }

// taskCtx returns the solve context for a scheduler workspace, creating a
// worker-local one on first use. Solve contexts carry no constraint- or
// engine-derived state, so one context serves tasks from any engine, and
// which context runs a solve never changes its result bits.
func taskCtx(ws *sched.Workspace) *solveCtx {
	if sc, ok := ws.Local.(*solveCtx); ok {
		return sc
	}
	sc := &solveCtx{}
	ws.Local = sc
	return sc
}

// callerWS wraps the caller's own solve context as its helping workspace.
func (r *cellRunner) callerWS() *sched.Workspace {
	return &sched.Workspace{Local: r.sc}
}

// cellCost estimates a per-cell task's MILP heaviness for skew-aware
// dispatch: cells active in more constraints couple more rows into the
// solve and branch deeper. Costs only order dispatch; they never affect
// results.
func (cp *cellProblem) cellCost(i int) float64 {
	return float64(1 + len(cp.cells[i].Active))
}

// problemCost is the dispatch cost of a whole-problem solve.
func (cp *cellProblem) problemCost() float64 {
	return float64(1 + len(cp.cells) + len(cp.consIdx))
}

// cellFeas fills out[i], for every i in idx, with "cell i can host at least
// one row" (feasible with minOne=i): the skew-relevant per-cell MILP. Cached
// results are used first; misses run as scheduled tasks. out is
// index-addressed, so callers reduce deterministically whatever the
// completion order.
func (r *cellRunner) cellFeas(idx []int, out []bool) {
	if len(idx) == 0 {
		return
	}
	e, cp := r.e, r.cp
	cc := e.cellCache
	miss := idx
	var keys []string
	var bases []domain.Box
	if cc != nil {
		miss = make([]int, 0, len(idx))
		keys = make([]string, len(cp.cells))
		bases = make([]domain.Box, len(cp.cells))
		for _, i := range idx {
			key, base := cp.cellFeasKey(i, e.optsSig)
			if v, ok := cc.get(key, e.snap.epoch); ok {
				out[i] = v.(bool)
				continue
			}
			keys[i], bases[i] = key, base
			miss = append(miss, i)
		}
	}
	if len(miss) == 0 {
		return
	}
	// decided tracks budget-independence per solve: an undecided verdict (a
	// false from node-budget exhaustion) reflects the whole problem, so it
	// may ride a problem-scoped key but must never enter a cell-scoped key
	// another problem could hit (the verdicts could legitimately differ).
	var decided []bool
	if cc != nil {
		decided = make([]bool, len(cp.cells))
	}
	run := func(sc *solveCtx, i int) {
		ok, dec := cp.feasibleStatus(sc, nil, false, i, r.mopts)
		out[i] = ok
		if decided != nil {
			decided[i] = dec
		}
	}
	if r.seq() || len(miss) == 1 {
		for _, i := range miss {
			run(r.sc, i)
		}
	} else {
		g := e.sched.NewGroup()
		for _, i := range miss {
			i := i
			g.Submit(cp.cellCost(i), func(ws *sched.Workspace) { run(taskCtx(ws), i) })
		}
		g.Wait(r.callerWS())
	}
	if cc != nil {
		for _, i := range miss {
			if cp.coupled || decided[i] {
				cc.put(keys[i], bases[i], out[i], e.snap.epoch)
			}
		}
	}
}

// probFeas is the whole-problem feasibility check (can any allocation
// satisfy the constraints, optionally with at least one row), cached
// problem-scoped.
func (r *cellRunner) probFeas(atLeastOne bool) bool {
	e, cp := r.e, r.cp
	cc := e.cellCache
	var key string
	var base domain.Box
	if cc != nil {
		tag := "pf0"
		if atLeastOne {
			tag = "pf1"
		}
		key, base = cp.problemKey(tag, e.optsSig)
		if v, ok := cc.get(key, e.snap.epoch); ok {
			return v.(bool)
		}
	}
	ok := cp.feasible(r.sc, nil, atLeastOne, -1, r.mopts)
	if cc != nil {
		cc.put(key, base, ok, e.snap.epoch)
	}
	return ok
}

// solvePair runs the two directional whole-problem MILPs (maximize objHi,
// minimize objLo) as concurrent tasks, cached problem-scoped under tag
// (which must encode the aggregate and attribute shaping the objectives).
func (r *cellRunner) solvePair(tag string, objHi, objLo []float64, atLeastOne bool) (up, lo solveResult) {
	e, cp := r.e, r.cp
	cc := e.cellCache
	var hiKey, loKey string
	var base domain.Box
	haveHi, haveLo := false, false
	if cc != nil {
		hiKey, base = cp.problemKey("d+"+tag, e.optsSig)
		loKey, _ = cp.problemKey("d-"+tag, e.optsSig)
		if v, ok := cc.get(hiKey, e.snap.epoch); ok {
			up, haveHi = v.(solveResult), true
		}
		if v, ok := cc.get(loKey, e.snap.epoch); ok {
			lo, haveLo = v.(solveResult), true
		}
	}
	switch {
	case haveHi && haveLo:
		return up, lo
	case r.seq() || haveHi || haveLo:
		if !haveHi {
			up = cp.solve(r.sc, objHi, true, nil, atLeastOne, r.mopts)
		}
		if !haveLo {
			lo = cp.solve(r.sc, objLo, false, nil, atLeastOne, r.mopts)
		}
	default:
		g := e.sched.NewGroup()
		cost := cp.problemCost()
		g.Submit(cost, func(ws *sched.Workspace) {
			up = cp.solve(taskCtx(ws), objHi, true, nil, atLeastOne, r.mopts)
		})
		g.Submit(cost, func(ws *sched.Workspace) {
			lo = cp.solve(taskCtx(ws), objLo, false, nil, atLeastOne, r.mopts)
		})
		g.Wait(r.callerWS())
	}
	if cc != nil {
		if !haveHi {
			cc.put(hiKey, base, up, e.snap.epoch)
		}
		if !haveLo {
			cc.put(loKey, base, lo, e.snap.epoch)
		}
	}
	return up, lo
}

// Count bounds COUNT(*) over the missing rows satisfying where.
func (e *Engine) Count(where *predicate.P) (Range, error) {
	if e.useFast() {
		r := e.fastCount(where)
		return r, nil
	}
	cp, err := e.decompose(where)
	if err != nil {
		return Range{}, err
	}
	if len(cp.cells) == 0 {
		return Range{LoExact: true, HiExact: true, SATChecks: cp.satChecks}, nil
	}
	sc := e.acquireCtx()
	defer e.releaseCtx(sc)
	rn := e.newRunner(cp, sc)
	obj := cp.ones()
	up, lo := rn.solvePair("COUNT", obj, obj, false)
	return cp.newRange(lo, up), nil
}

// Sum bounds SUM(attr) over the missing rows satisfying where.
func (e *Engine) Sum(attr string, where *predicate.P) (Range, error) {
	if e.useFast() {
		r := e.fastSum(attr, where)
		return r, nil
	}
	cp, err := e.decompose(where)
	if err != nil {
		return Range{}, err
	}
	if len(cp.cells) == 0 {
		return Range{LoExact: true, HiExact: true, SATChecks: cp.satChecks}, nil
	}
	sc := e.acquireCtx()
	defer e.releaseCtx(sc)
	rn := e.newRunner(cp, sc)
	ai := e.snap.Schema().MustIndex(attr)
	u := cp.upperVec(ai)
	l := cp.lowerVec(ai)

	// Cells with an unbounded value range make the corresponding endpoint
	// infinite iff a row can actually be placed there — one per-cell
	// feasibility task per such cell.
	var infIdx []int
	for i := range cp.cells {
		if math.IsInf(u[i], 1) || math.IsInf(l[i], -1) {
			infIdx = append(infIdx, i)
		}
	}
	hiInf, loInf := false, false
	if len(infIdx) > 0 {
		reach := make([]bool, len(cp.cells))
		rn.cellFeas(infIdx, reach)
		for _, i := range infIdx {
			if math.IsInf(u[i], 1) {
				if reach[i] {
					hiInf = true
				}
				u[i] = 0 // unreachable cell: coefficient irrelevant
			}
			if math.IsInf(l[i], -1) {
				if reach[i] {
					loInf = true
				}
				l[i] = 0
			}
		}
	}

	up, lo := rn.solvePair("SUM:"+attr, u, l, false)
	r := cp.newRange(lo, up)
	if hiInf {
		r.Hi = math.Inf(1)
		r.HiExact = true
	}
	if loInf {
		r.Lo = math.Inf(-1)
		r.LoExact = true
	}
	return r, nil
}

// Avg bounds AVG(attr) over the missing rows satisfying where, via the
// paper's binary search over a parametric allocation problem (Section 4.2).
// The returned range is conditional on at least one missing row existing in
// the region; MaybeEmpty reports whether zero rows is also possible.
func (e *Engine) Avg(attr string, where *predicate.P) (Range, error) {
	if e.useFast() {
		r := e.fastAvg(attr, where)
		return r, nil
	}
	cp, err := e.decompose(where)
	if err != nil {
		return Range{}, err
	}
	if len(cp.cells) == 0 {
		r := emptyRange()
		r.SATChecks = cp.satChecks
		return r, nil
	}
	sc := e.acquireCtx()
	defer e.releaseCtx(sc)
	rn := e.newRunner(cp, sc)
	if !rn.probFeas(true) {
		r := emptyRange()
		r.SATChecks = cp.satChecks
		return r, nil
	}
	ai := e.snap.Schema().MustIndex(attr)
	u := cp.upperVec(ai)
	l := cp.lowerVec(ai)

	hi0, lo0 := math.Inf(-1), math.Inf(1)
	for i := range cp.cells {
		hi0 = math.Max(hi0, u[i])
		lo0 = math.Min(lo0, l[i])
	}
	r := Range{MaybeEmpty: cp.mayBeEmpty(), Cells: len(cp.cells), SATChecks: cp.satChecks}
	if math.IsInf(hi0, 1) || math.IsInf(lo0, -1) {
		// Unbounded value constraints: fall back to the trivial hull.
		r.Lo, r.Hi = lo0, hi0
		return r, nil
	}
	r.Hi, r.Lo = rn.avgEndpoints(attr, u, l, lo0, hi0)
	return r, nil
}

// avgEndpoints runs the two AVG bisection searches — each a sequential
// chain of parametric MILP probes, but independent of the other — as two
// concurrent tasks, cached problem-scoped per attribute.
func (r *cellRunner) avgEndpoints(attr string, u, l []float64, lo0, hi0 float64) (hiE, loE float64) {
	e, cp := r.e, r.cp
	mopts := r.mopts
	cc := e.cellCache
	var hiKey, loKey string
	var base domain.Box
	haveHi, haveLo := false, false
	if cc != nil {
		hiKey, base = cp.problemKey("a+"+attr, e.optsSig)
		loKey, _ = cp.problemKey("a-"+attr, e.optsSig)
		if v, ok := cc.get(hiKey, e.snap.epoch); ok {
			hiE, haveHi = v.(float64), true
		}
		if v, ok := cc.get(loKey, e.snap.epoch); ok {
			loE, haveLo = v.(float64), true
		}
	}
	// Each search owns its objective buffer: a probe overwrites every entry
	// and cp.solve copies the objective into the LP, so per-search buffers
	// are bit-identical to the old shared one — and safe to run concurrently.
	runHi := func(sc *solveCtx) float64 {
		obj := make([]float64, len(u))
		// Upper: sup{r : max Σ (U_i - r)·x_i >= 0 over allocations with >=1 row}.
		return binarySearchAvg(lo0, hi0, func(mid float64) bool {
			for i := range u {
				obj[i] = u[i] - mid
			}
			sol := cp.solve(sc, obj, true, nil, true, mopts)
			// sol.bound >= optimum: "< 0" proves mid is unachievable.
			return sol.feasible && sol.bound >= 0
		}, true)
	}
	runLo := func(sc *solveCtx) float64 {
		obj := make([]float64, len(l))
		// Lower: inf{r : min Σ (L_i - r)·x_i <= 0 over allocations with >=1 row}.
		return binarySearchAvg(lo0, hi0, func(mid float64) bool {
			for i := range l {
				obj[i] = l[i] - mid
			}
			sol := cp.solve(sc, obj, false, nil, true, mopts)
			// sol.bound <= optimum: "> 0" proves avg <= mid is impossible.
			return sol.feasible && sol.bound <= 0
		}, false)
	}
	switch {
	case haveHi && haveLo:
		return hiE, loE
	case r.seq() || haveHi || haveLo:
		if !haveHi {
			hiE = runHi(r.sc)
		}
		if !haveLo {
			loE = runLo(r.sc)
		}
	default:
		g := e.sched.NewGroup()
		cost := cp.problemCost() * 8 // a search issues ~60 probe solves
		g.Submit(cost, func(ws *sched.Workspace) { hiE = runHi(taskCtx(ws)) })
		g.Submit(cost, func(ws *sched.Workspace) { loE = runLo(taskCtx(ws)) })
		g.Wait(r.callerWS())
	}
	if cc != nil {
		if !haveHi {
			cc.put(hiKey, base, hiE, e.snap.epoch)
		}
		if !haveLo {
			cc.put(loKey, base, loE, e.snap.epoch)
		}
	}
	return hiE, loE
}

// binarySearchAvg searches [lo, hi]. For the upper endpoint (searchSup),
// ok(mid) means "average >= mid is possible" and the final hi is returned
// (sound from above). For the lower endpoint, ok(mid) means "average <= mid
// is possible" and the final lo is returned (sound from below).
func binarySearchAvg(lo, hi float64, ok func(float64) bool, searchSup bool) float64 {
	if lo >= hi {
		return lo
	}
	for iter := 0; iter < 60 && hi-lo > 1e-9*(1+math.Abs(hi)+math.Abs(lo)); iter++ {
		mid := lo + (hi-lo)/2
		if searchSup {
			if ok(mid) {
				lo = mid
			} else {
				hi = mid
			}
		} else {
			if ok(mid) {
				hi = mid
			} else {
				lo = mid
			}
		}
	}
	if searchSup {
		return hi
	}
	return lo
}

// Max bounds MAX(attr) over the missing rows satisfying where. Hi is the
// largest value any instance can exhibit; Lo is the smallest possible
// maximum among instances with at least one row.
func (e *Engine) Max(attr string, where *predicate.P) (Range, error) {
	if e.useFast() {
		r := e.fastMinMax(attr, where, true)
		return r, nil
	}
	return e.minMax(attr, where, true)
}

// Min bounds MIN(attr), dual to Max.
func (e *Engine) Min(attr string, where *predicate.P) (Range, error) {
	if e.useFast() {
		r := e.fastMinMax(attr, where, false)
		return r, nil
	}
	return e.minMax(attr, where, false)
}

func (e *Engine) minMax(attr string, where *predicate.P, isMax bool) (Range, error) {
	cp, err := e.decompose(where)
	if err != nil {
		return Range{}, err
	}
	if len(cp.cells) == 0 {
		r := emptyRange()
		r.SATChecks = cp.satChecks
		return r, nil
	}
	sc := e.acquireCtx()
	defer e.releaseCtx(sc)
	rn := e.newRunner(cp, sc)
	ai := e.snap.Schema().MustIndex(attr)
	u := cp.upperVec(ai)
	l := cp.lowerVec(ai)

	// Reachable cells: those that can host at least one row. One
	// independent MILP per cell — the dominant per-cell fan-out of the
	// whole engine, and the reduction below runs in fixed index order.
	reach := make([]bool, len(cp.cells))
	rn.cellFeas(cp.idxAll, reach)
	any := false
	for i := range cp.cells {
		any = any || reach[i]
	}
	if !any {
		r := emptyRange()
		r.SATChecks = cp.satChecks
		return r, nil
	}

	r := Range{MaybeEmpty: cp.mayBeEmpty(), Cells: len(cp.cells), SATChecks: cp.satChecks, LoExact: true, HiExact: true}
	if isMax {
		// Hi: the largest upper value among reachable cells (a row placed
		// there at its cell maximum realizes it).
		r.Hi = math.Inf(-1)
		for i := range cp.cells {
			if reach[i] {
				r.Hi = math.Max(r.Hi, u[i])
			}
		}
		// Lo: minimize the largest lower-value among used cells. Search
		// thresholds ascending; the first feasible restriction wins.
		r.Lo = rn.thresholdSearch("t+"+attr, l, true)
	} else {
		r.Lo = math.Inf(1)
		for i := range cp.cells {
			if reach[i] {
				r.Lo = math.Min(r.Lo, l[i])
			}
		}
		r.Hi = rn.thresholdSearch("t-"+attr, u, false)
	}
	return r, nil
}

// thresholdSearch finds, for MAX (ascending=true), the smallest t such that
// an allocation using only cells with vals[i] <= t (and >= 1 row) is
// feasible; for MIN it finds the largest t over cells with vals[i] >= t.
//
// The sequential reference walks thresholds in order and stops at the first
// feasible one. The scheduler path evaluates thresholds in waves sized to
// the scheduler width: every probe is an independent restricted MILP, and
// the answer — the first feasible threshold in order — is identical
// whichever probes actually ran, so results stay bit-identical while at
// most one wave of extra probes is spent. The final threshold is cached
// problem-scoped under tag (direction + attribute).
func (r *cellRunner) thresholdSearch(tag string, vals []float64, ascending bool) float64 {
	e, cp := r.e, r.cp
	cc := e.cellCache
	var key string
	var base domain.Box
	if cc != nil {
		key, base = cp.problemKey(tag, e.optsSig)
		if v, ok := cc.get(key, e.snap.epoch); ok {
			return v.(float64)
		}
	}
	t := r.thresholdSearchUncached(vals, ascending)
	if cc != nil {
		cc.put(key, base, t, e.snap.epoch)
	}
	return t
}

func (r *cellRunner) thresholdSearchUncached(vals []float64, ascending bool) float64 {
	cp := r.cp
	uniq := append([]float64(nil), vals...)
	sort.Float64s(uniq)
	// Deduplicate: decompositions routinely give many cells the same
	// attribute bound, and each duplicate would cost a full MILP probe (a
	// whole wave of them on the scheduler path). The first feasible
	// threshold VALUE is unchanged, so results are bit-identical.
	uniq = slices.Compact(uniq)
	if !ascending {
		for i, j := 0, len(uniq)-1; i < j; i, j = i+1, j-1 {
			uniq[i], uniq[j] = uniq[j], uniq[i]
		}
	}
	probe := func(sc *solveCtx, t float64, forbid []bool) bool {
		for i, v := range vals {
			forbid[i] = (ascending && v > t) || (!ascending && v < t)
		}
		return cp.feasible(sc, forbid, true, -1, r.mopts)
	}
	width := 1
	if !r.seq() {
		width = r.e.sched.Workers() + 1
	}
	if width <= 1 {
		forbid := make([]bool, len(vals))
		for _, t := range uniq {
			if probe(r.sc, t, forbid) {
				return t
			}
		}
	} else {
		feas := make([]bool, len(uniq))
		for w0 := 0; w0 < len(uniq); w0 += width {
			end := w0 + width
			if end > len(uniq) {
				end = len(uniq)
			}
			if end-w0 == 1 {
				forbid := make([]bool, len(vals))
				feas[w0] = probe(r.sc, uniq[w0], forbid)
			} else {
				g := r.e.sched.NewGroup()
				for k := w0; k < end; k++ {
					k := k
					g.Submit(cp.problemCost(), func(ws *sched.Workspace) {
						forbid := make([]bool, len(vals))
						feas[k] = probe(taskCtx(ws), uniq[k], forbid)
					})
				}
				g.Wait(r.callerWS())
			}
			for k := w0; k < end; k++ {
				if feas[k] {
					return uniq[k]
				}
			}
		}
	}
	// Every restriction infeasible: the unrestricted extremum is the only
	// sound answer.
	if ascending {
		m := math.Inf(-1)
		for _, v := range vals {
			m = math.Max(m, v)
		}
		return m
	}
	m := math.Inf(1)
	for _, v := range vals {
		m = math.Min(m, v)
	}
	return m
}

// newRange assembles a Range from directional solve results.
func (cp *cellProblem) newRange(lo, up solveResult) Range {
	r := Range{
		Cells:     len(cp.cells),
		SATChecks: cp.satChecks,
	}
	if up.feasible {
		r.Hi = up.bound
		r.HiExact = up.exact
	} else {
		r.Hi = math.Inf(-1)
	}
	if lo.feasible {
		r.Lo = lo.bound
		r.LoExact = lo.exact
	} else {
		r.Lo = math.Inf(1)
	}
	r.Reconciled = lo.reconciled || up.reconciled
	// Unverified (early-stopped) cells mean the bound may be loose.
	for _, c := range cp.cells {
		if !c.Verified {
			r.LoExact, r.HiExact = false, false
			break
		}
	}
	return r
}
