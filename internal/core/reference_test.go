package core

import (
	"testing"
)

// TestReferencePathBitIdentical runs the full five-aggregate workload through
// the optimized engine and through Options.Reference (recursive SAT,
// clone-based branch-and-bound, per-solve LP assembly) and requires every
// Range to be bit-identical. This is the engine-level contract the per-layer
// differential tests (sat/arena_test.go, milp/differential_test.go,
// lp/context_test.go) compose into.
func TestReferencePathBitIdentical(t *testing.T) {
	for _, disableFast := range []bool{false, true} {
		set := overlappingSet(t)
		queries := batchWorkload(set.Schema())

		opt := NewEngine(set, nil, Options{DisableFastPath: disableFast})
		ref := NewEngine(set, nil, Options{DisableFastPath: disableFast, Reference: true})

		for qi, q := range queries {
			got, err := opt.Bound(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Bound(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("fast=%v query %d (%v): optimized %+v != reference %+v",
					!disableFast, qi, q.Agg, got, want)
			}
		}

		// The solvers must also have issued identical SAT work.
		if g, w := opt.Solver().Stats().Checks, ref.Solver().Stats().Checks; g != w {
			t.Errorf("fast=%v: optimized issued %d SAT checks, reference %d", !disableFast, g, w)
		}
	}
}

// TestWarmStartEngineAgrees exercises the opt-in MILP warm start end to end:
// statuses and ranges must agree with the default engine up to LP tolerance.
func TestWarmStartEngineAgrees(t *testing.T) {
	set := overlappingSet(t)
	queries := batchWorkload(set.Schema())

	cold := NewEngine(set, nil, Options{DisableFastPath: true})
	warmOpts := Options{DisableFastPath: true}
	warmOpts.MILP.WarmStart = true
	warm := NewEngine(set, nil, warmOpts)

	for qi, q := range queries {
		cr, err := cold.Bound(q)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := warm.Bound(q)
		if err != nil {
			t.Fatal(err)
		}
		const tol = 1e-6
		if cr.MaybeEmpty != wr.MaybeEmpty ||
			diff(cr.Lo, wr.Lo) > tol || diff(cr.Hi, wr.Hi) > tol {
			t.Errorf("query %d (%v): warm %+v != cold %+v", qi, q.Agg, wr, cr)
		}
	}
}

func diff(a, b float64) float64 {
	if a == b { // covers equal infinities
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d
}
