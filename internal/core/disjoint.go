package core

import (
	"math"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// This file implements the greedy fast path for pairwise-disjoint predicate
// sets ("Faster Algorithm in Special Cases", Section 4.2): each predicate is
// its own cell, the MILP degenerates, and every aggregate is answered with a
// linear scan. Figure 8 evaluates this path's scalability.

// djCell is one disjoint predicate clipped to the query region.
type djCell struct {
	u, l     float64 // value bounds for the aggregated attribute
	kLo, kHi float64 // pushdown-adjusted frequency window
}

// disjointCells extracts the per-PC cells overlapping the query. attrIdx < 0
// means no aggregate attribute (COUNT).
func (e *Engine) disjointCells(attrIdx int, where *predicate.P) []djCell {
	schema := e.snap.Schema()
	var whereBox domain.Box
	if where != nil {
		whereBox = where.Box()
	}
	out := make([]djCell, 0, e.snap.Len())
	for _, pc := range e.snap.pcs {
		region := pc.Pred.Box()
		if whereBox != nil {
			region = region.Intersect(whereBox)
		}
		if region.EmptyFor(schema) {
			continue
		}
		c := djCell{kLo: float64(pc.KLo), kHi: float64(pc.KHi)}
		if whereBox != nil && !whereBox.ContainsBox(pc.Pred.Box()) {
			// Rows forced by the lower bound may live outside the query
			// region; only the upper bound survives (see decompose).
			c.kLo = 0
		}
		if attrIdx >= 0 {
			c.u = math.Min(pc.Values[attrIdx].Hi, region[attrIdx].Hi)
			c.l = math.Max(pc.Values[attrIdx].Lo, region[attrIdx].Lo)
			if c.l > c.u {
				// Value constraint conflicts with the region: no row can
				// exist here.
				continue
			}
		}
		out = append(out, c)
	}
	return out
}

func (e *Engine) fastCount(where *predicate.P) Range {
	cs := e.disjointCells(-1, where)
	r := Range{LoExact: true, HiExact: true, Cells: len(cs)}
	for _, c := range cs {
		r.Lo += c.kLo
		r.Hi += c.kHi
	}
	return r
}

func (e *Engine) fastSum(attr string, where *predicate.P) Range {
	ai := e.snap.Schema().MustIndex(attr)
	cs := e.disjointCells(ai, where)
	r := Range{LoExact: true, HiExact: true, Cells: len(cs)}
	for _, c := range cs {
		if c.kHi == 0 {
			continue
		}
		// Upper: take as many rows as allowed when the best value is
		// positive, as few as required when it is negative.
		if c.u > 0 {
			r.Hi += c.u * c.kHi
		} else {
			r.Hi += c.u * c.kLo
		}
		if c.l < 0 {
			r.Lo += c.l * c.kHi
		} else {
			r.Lo += c.l * c.kLo
		}
	}
	return r
}

func (e *Engine) fastAvg(attr string, where *predicate.P) Range {
	ai := e.snap.Schema().MustIndex(attr)
	cs := e.disjointCells(ai, where)
	usable := cs[:0:0]
	for _, c := range cs {
		if c.kHi >= 1 {
			usable = append(usable, c)
		}
	}
	if len(usable) == 0 {
		return emptyRange()
	}
	lo0, hi0 := math.Inf(1), math.Inf(-1)
	mayEmpty := true
	for _, c := range usable {
		lo0 = math.Min(lo0, c.l)
		hi0 = math.Max(hi0, c.u)
		if c.kLo > 0 {
			mayEmpty = false
		}
	}
	r := Range{MaybeEmpty: mayEmpty, Cells: len(usable), LoExact: true, HiExact: true}
	if math.IsInf(hi0, 1) || math.IsInf(lo0, -1) {
		r.Lo, r.Hi = lo0, hi0
		return r
	}
	// g(mid) = max Σ (u_j - mid)·x_j with kLo <= x_j <= kHi, Σx >= 1:
	// greedy per cell because cells are independent.
	gUpper := func(mid float64) bool {
		total, used := 0.0, 0.0
		bestSingle := math.Inf(-1)
		for _, c := range usable {
			d := c.u - mid
			if d > 0 {
				total += d * c.kHi
				used += c.kHi
			} else {
				total += d * c.kLo
				used += c.kLo
			}
			bestSingle = math.Max(bestSingle, d)
		}
		if used == 0 {
			total = bestSingle // forced to place one row somewhere
		}
		return total >= 0
	}
	gLower := func(mid float64) bool {
		total, used := 0.0, 0.0
		bestSingle := math.Inf(1)
		for _, c := range usable {
			d := c.l - mid
			if d < 0 {
				total += d * c.kHi
				used += c.kHi
			} else {
				total += d * c.kLo
				used += c.kLo
			}
			bestSingle = math.Min(bestSingle, d)
		}
		if used == 0 {
			total = bestSingle
		}
		return total <= 0
	}
	r.Hi = binarySearchAvg(lo0, hi0, gUpper, true)
	r.Lo = binarySearchAvg(lo0, hi0, gLower, false)
	return r
}

func (e *Engine) fastMinMax(attr string, where *predicate.P, isMax bool) Range {
	ai := e.snap.Schema().MustIndex(attr)
	cs := e.disjointCells(ai, where)
	usable := cs[:0:0]
	for _, c := range cs {
		if c.kHi >= 1 {
			usable = append(usable, c)
		}
	}
	if len(usable) == 0 {
		return emptyRange()
	}
	r := Range{Cells: len(usable), LoExact: true, HiExact: true, MaybeEmpty: true}
	var forced []djCell
	for _, c := range usable {
		if c.kLo > 0 {
			forced = append(forced, c)
			r.MaybeEmpty = false
		}
	}
	if isMax {
		r.Hi = math.Inf(-1)
		for _, c := range usable {
			r.Hi = math.Max(r.Hi, c.u)
		}
		if len(forced) > 0 {
			// Forced rows exist; the adversary sets them at their lowest
			// values, so the instance max is at least the largest forced low.
			r.Lo = math.Inf(-1)
			for _, c := range forced {
				r.Lo = math.Max(r.Lo, c.l)
			}
		} else {
			// A single row in the lowest cell minimizes the max.
			r.Lo = math.Inf(1)
			for _, c := range usable {
				r.Lo = math.Min(r.Lo, c.l)
			}
		}
	} else {
		r.Lo = math.Inf(1)
		for _, c := range usable {
			r.Lo = math.Min(r.Lo, c.l)
		}
		if len(forced) > 0 {
			r.Hi = math.Inf(1)
			for _, c := range forced {
				r.Hi = math.Min(r.Hi, c.u)
			}
		} else {
			r.Hi = math.Inf(-1)
			for _, c := range usable {
				r.Hi = math.Max(r.Hi, c.u)
			}
		}
	}
	return r
}
