package core

import (
	"math"

	"pcbound/internal/table"
)

// Analyzer answers aggregate queries over the FULL relation R = R* ∪ R?:
// the certain partition R* is scanned exactly, the missing partition R? is
// bounded by the engine, and the two are combined into a hard range for the
// whole-table result (the paper's partially-covered-query setup in
// Section 6.2: "if a query is partially covered by the missing data, we
// solve the part that is missing ... then combine the result with a
// 'partial ground truth' that is derived from the existing data").
type Analyzer struct {
	Present *table.T
	Engine  *Engine
}

// NewAnalyzer pairs the certain rows with a missing-data engine.
func NewAnalyzer(present *table.T, engine *Engine) *Analyzer {
	return &Analyzer{Present: present, Engine: engine}
}

// Bound returns the hard range of the query over the full relation.
func (a *Analyzer) Bound(q Query) (Range, error) {
	missing, err := a.Engine.Bound(q)
	if err != nil {
		return Range{}, err
	}
	switch q.Agg {
	case Count:
		c := a.Present.Count(q.Where)
		return shift(missing, c), nil
	case Sum:
		s := a.Present.Sum(q.Attr, q.Where)
		return shift(missing, s), nil
	case Min:
		v, ok := a.Present.Min(q.Attr, q.Where)
		return combineExtreme(missing, v, ok, false), nil
	case Max:
		v, ok := a.Present.Max(q.Attr, q.Where)
		return combineExtreme(missing, v, ok, true), nil
	case Avg:
		return a.avg(q)
	default:
		return Range{}, errUnknownAgg(q.Agg)
	}
}

func errUnknownAgg(a Agg) error {
	return &aggError{a}
}

type aggError struct{ agg Agg }

func (e *aggError) Error() string { return "core: unknown aggregate " + e.agg.String() }

// shift translates an additive (COUNT/SUM) missing range by the present
// partition's exact contribution.
func shift(r Range, v float64) Range {
	r.Lo += v
	r.Hi += v
	r.MaybeEmpty = false // the full-table aggregate is defined regardless
	return r
}

// combineExtreme merges a present extreme with the missing rows' extreme
// range. For MAX: the full max is max(present, missing); the missing side
// may contribute nothing if zero missing rows are allowed.
func combineExtreme(missing Range, present float64, havePresent bool, isMax bool) Range {
	missingPossible := missing.Lo <= missing.Hi
	if !havePresent {
		// Entirely determined by the missing rows.
		return missing
	}
	if !missingPossible {
		return Range{Lo: present, Hi: present, LoExact: true, HiExact: true}
	}
	out := Range{LoExact: missing.LoExact, HiExact: missing.HiExact}
	if isMax {
		// Upper: both sides at their best.
		out.Hi = math.Max(present, missing.Hi)
		// Lower: the present max always participates; the missing rows can
		// only raise the max, and contribute at least missing.Lo when they
		// must exist.
		if missing.MaybeEmpty {
			out.Lo = present
		} else {
			out.Lo = math.Max(present, missing.Lo)
		}
	} else {
		out.Lo = math.Min(present, missing.Lo)
		if missing.MaybeEmpty {
			out.Hi = present
		} else {
			out.Hi = math.Min(present, missing.Hi)
		}
	}
	return out
}

// avg combines exact present sum/count with the missing sum/count ranges.
// avg = (S0 + s) / (C0 + c) over s ∈ [sLo, sHi], c ∈ [cLo, cHi] with the
// coupling between s and c relaxed — the result is a sound outer range.
// The function s ↦ avg is increasing and (for S0+s and the denominator
// positive) c ↦ avg is monotone, so the extrema lie at box corners.
func (a *Analyzer) avg(q Query) (Range, error) {
	sumQ := q
	sumQ.Agg = Sum
	sumR, err := a.Engine.Bound(sumQ)
	if err != nil {
		return Range{}, err
	}
	cntQ := q
	cntQ.Agg = Count
	cntR, err := a.Engine.Bound(cntQ)
	if err != nil {
		return Range{}, err
	}
	s0 := a.Present.Sum(q.Attr, q.Where)
	c0 := a.Present.Count(q.Where)
	if c0+cntR.Hi == 0 {
		// No rows can match at all: undefined.
		return emptyRange(), nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	counts := []float64{cntR.Lo, cntR.Hi}
	if c0+cntR.Lo <= 0 {
		// The zero-denominator corner is excluded below, but the extremum
		// over integer counts then sits at the smallest positive count.
		counts = append(counts, 1)
	}
	for _, s := range []float64{sumR.Lo, sumR.Hi} {
		for _, c := range counts {
			den := c0 + c
			if den <= 0 {
				continue
			}
			v := (s0 + s) / den
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	r := Range{Lo: lo, Hi: hi}
	if c0 == 0 && cntR.Lo == 0 {
		r.MaybeEmpty = true
	}
	return r, nil
}
