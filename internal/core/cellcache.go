package core

import (
	"math"
	"strconv"
	"strings"

	"pcbound/internal/cells"
	"pcbound/internal/domain"
	"pcbound/internal/milp"
)

// This file implements the epoch-scoped per-cell bound cache: LP/MILP-level
// results of cell solve tasks, memoized so that repeated and overlapping
// server traffic — and group-by queries whose groups share cells — skip the
// solver entirely. It rides the same epoch-interval mechanism as the
// decomposition cache (epochcache.go): every entry carries the region box
// its inputs live in and a validity interval extended across mutations that
// touch no predicate box overlapping that region (scoped invalidation).
//
// Two key scopes, chosen per task so a hit is always bit-identical to
// recomputation:
//
//   - Cell-scoped ("C|" keys): for problems with no active frequency lower
//     bounds (cp.coupled == false) a per-cell feasibility solve depends only
//     on the cell itself — feasibility of "place one row in cell i" is
//     decided by the active constraints' frequency windows alone — so the
//     key is the cell's content signature (cellSig: verified flag, per-cell
//     cap, and every active constraint's value box and frequency window)
//     and entries are shared across *different* queries and group-by groups
//     whose decompositions produce content-identical cells. The signature
//     deliberately excludes the cell's region box: two groups' cells over
//     different slices of the group attribute but the same active
//     constraints admit exactly the same single-cell allocations, and that
//     region independence is what makes GroupBy skip re-solving shared
//     structure per group. The validity base is the cell's region. One
//     exception guards bit-identity: a "false" verdict produced by
//     exhausting the MILP node budget without an incumbent is a property of
//     the whole search, not the cell, so such verdicts are never inserted
//     under cell-scoped keys (see cellProblem.feasibleStatus).
//   - Problem-scoped ("P|" keys): tasks whose outcome couples all cells
//     (directional MILP solves, AVG binary searches, threshold searches,
//     and per-cell feasibility when frequency lower bounds are active) key
//     on the pushdown-normalized region box plus the task id. Same base box
//     + unchanged region across epochs ⇒ identical decomposition ⇒
//     identical LP ⇒ bit-identical result — exactly the decomposition
//     cache's validity argument, one level down the stack.
//
// Keys embed the aggregate/attribute (where the objective depends on them)
// and the engine's solver-option signature, so option changes can never
// alias results.

// DefaultCellCacheSize is the per-cell bound cache key capacity used when
// Options.CellCacheSize is zero. Cell-solve results are tiny (a bool, a
// float64, or a solveResult struct), so the cache is sized by key count,
// not bytes.
const DefaultCellCacheSize = 32768

// cellBoundCache memoizes cell-solve task results with epoch-interval
// validity. Values are bool (feasibility), float64 (search endpoints), or
// solveResult (directional solves).
type cellBoundCache struct{ ec *epochCache }

func newCellBoundCache(max int, store *Store) *cellBoundCache {
	return &cellBoundCache{ec: newEpochCache(max, store)}
}

func (c *cellBoundCache) get(key string, epoch uint64) (any, bool) {
	return c.ec.get(key, epoch)
}

func (c *cellBoundCache) put(key string, base domain.Box, val any, epoch uint64) {
	c.ec.put(key, base, val, epoch)
}

// milpOptsSig renders the solver options that can influence a solve result
// into a canonical key suffix. Defaults are normalized first so an explicit
// Options.MaxNodes equal to the default shares entries with the zero value.
func milpOptsSig(o milp.Options) string {
	nodes := o.MaxNodes
	if nodes <= 0 {
		nodes = milp.DefaultMaxNodes
	}
	tol := o.IntTol
	if tol <= 0 {
		tol = 1e-6
	}
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(nodes))
	sb.WriteByte(',')
	sb.WriteString(strconv.FormatUint(math.Float64bits(tol), 16))
	if o.WarmStart {
		sb.WriteString(",w")
	}
	return sb.String()
}

// cellSig returns the content signature of cell i: everything a cell-local
// feasibility solve can depend on. Two cells with equal signatures — from
// different queries, group-by groups, or epochs — admit exactly the same
// single-cell allocations:
//
//   - whether the solver verified the cell (early stopping admits
//     unverified cells),
//   - the per-cell cardinality cap (min of active frequency upper bounds),
//     which alone decides uncoupled feasibility, and
//   - for every active constraint, its value box and frequency window
//     (bit-exact float64 endpoints) — not needed by feasibility, but kept
//     so the signature stays collision-free for any future cell-local task
//     that reads values.
//
// Active constraints are identified by content, not by index: constraint
// positions shift across mutations, and the region box is deliberately
// excluded (see the file comment) so group-by groups slicing one attribute
// share entries.
func (cp *cellProblem) cellSig(i int) string {
	c := &cp.cells[i]
	var sb strings.Builder
	sb.Grow(32 + 48*len(c.Active))
	if c.Verified {
		sb.WriteByte('v')
	} else {
		sb.WriteByte('u')
	}
	sb.WriteString(strconv.FormatUint(math.Float64bits(cp.capHi[i]), 16))
	for _, j := range c.Active {
		sb.WriteByte('|')
		sb.WriteString(cells.BoxKey(cp.valueBoxes[j]))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(math.Float64bits(cp.kLo[j]), 16))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(math.Float64bits(cp.kHi[j]), 16))
	}
	return sb.String()
}

// cellFeasKey returns the cache key and validity base box for "can cell i
// host at least one row" (cp.feasible with minOne=i). In an uncoupled
// problem the answer depends only on the cell, so the key is cell-scoped
// and shareable across queries; with active frequency lower bounds the
// whole constraint system couples in and the key is problem-scoped.
func (cp *cellProblem) cellFeasKey(i int, optsSig string) (key string, base domain.Box) {
	if cp.coupled {
		return "P|" + cp.baseKey + "|f" + strconv.Itoa(i) + "|" + optsSig, cp.base
	}
	return "C|" + cp.cellSig(i) + "|f|" + optsSig, cp.cells[i].Region
}

// problemKey returns a problem-scoped cache key for a whole-problem task
// (directional solve, AVG search, threshold search, global feasibility).
// task must encode everything that shapes the objective: the task kind, the
// aggregate/attribute, and the direction.
func (cp *cellProblem) problemKey(task, optsSig string) (key string, base domain.Box) {
	return "P|" + cp.baseKey + "|" + task + "|" + optsSig, cp.base
}
