package core

import (
	"math"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/sat"
)

// salesSchema mirrors the paper's running example (Section 2.1):
// Sales(utc, branch, price). utc is a day number, branch a category code.
func salesSchema() *domain.Schema {
	return domain.NewSchema(
		domain.Attr{Name: "utc", Kind: domain.Integral, Domain: domain.NewInterval(0, 30)},
		domain.Attr{Name: "branch", Kind: domain.Integral, Domain: domain.NewInterval(0, 2)},
		domain.Attr{Name: "price", Kind: domain.Continuous, Domain: domain.NewInterval(0, 1000)},
	)
}

func TestNewPCValidation(t *testing.T) {
	s := salesSchema()
	pred := predicate.NewBuilder(s).Eq("branch", 0).Build()
	if _, err := NewPC(pred, map[string]domain.Interval{"price": domain.NewInterval(0, 149.99)}, 0, 5); err != nil {
		t.Fatalf("valid PC rejected: %v", err)
	}
	if _, err := NewPC(nil, nil, 0, 5); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := NewPC(pred, nil, -1, 5); err == nil {
		t.Error("negative klo accepted")
	}
	if _, err := NewPC(pred, nil, 6, 5); err == nil {
		t.Error("klo > khi accepted")
	}
	if _, err := NewPC(pred, map[string]domain.Interval{"nope": domain.Full}, 0, 5); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := NewPC(pred, map[string]domain.Interval{"price": domain.NewInterval(10, 5)}, 0, 5); err == nil {
		t.Error("empty value range with khi>0 accepted")
	}
	// Empty value range with khi == 0 is legal (vacuous constraint).
	if _, err := NewPC(pred, map[string]domain.Interval{"price": domain.NewInterval(10, 5)}, 0, 0); err != nil {
		t.Errorf("vacuous PC rejected: %v", err)
	}
}

func TestPCSatisfiedBy(t *testing.T) {
	s := salesSchema()
	// Paper's c1: branch = Chicago(0) => price <= 149.99, at most 5 rows.
	pc := MustPC(
		predicate.NewBuilder(s).Eq("branch", 0).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(0, 149.99)},
		0, 5)
	good := []domain.Row{
		{1, 0, 100}, {2, 0, 149.99}, {3, 1, 999}, // branch 1 unconstrained
	}
	if err := pc.SatisfiedBy(good); err != nil {
		t.Errorf("good instance rejected: %v", err)
	}
	badValue := []domain.Row{{1, 0, 200}}
	if err := pc.SatisfiedBy(badValue); err == nil {
		t.Error("value violation accepted")
	}
	badCount := make([]domain.Row, 6)
	for i := range badCount {
		badCount[i] = domain.Row{float64(i), 0, 10}
	}
	if err := pc.SatisfiedBy(badCount); err == nil {
		t.Error("count violation accepted")
	}
	// Lower-bound violation.
	pcLo := MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(), nil, 2, 10)
	if err := pcLo.SatisfiedBy([]domain.Row{{1, 1, 5}}); err == nil {
		t.Error("count below klo accepted")
	}
}

func TestSetAddValidation(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	other := salesSchema()
	pcOther := MustPC(predicate.True(other), nil, 0, 5)
	if err := set.Add(pcOther); err == nil {
		t.Error("PC over different schema accepted")
	}
	pc := MustPC(predicate.True(s), nil, 0, 5)
	if err := set.Add(pc); err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Errorf("Len = %d", set.Len())
	}
	bad := pc
	bad.KLo, bad.KHi = 3, 1
	if err := set.Add(bad); err == nil {
		t.Error("inverted frequency window accepted")
	}
}

func TestClosedAndUncovered(t *testing.T) {
	s := salesSchema()
	sv := sat.New(s)
	set := NewSet(s)
	// Branches 0 and 1 covered, branch 2 not: not closed.
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(), nil, 0, 5),
		MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(), nil, 0, 5),
	)
	if set.Closed(sv) {
		t.Error("incomplete set reported closed")
	}
	w, ok := set.Uncovered(sv)
	if !ok {
		t.Fatal("expected uncovered witness")
	}
	if w[s.MustIndex("branch")] != 2 {
		t.Errorf("witness branch = %v, want 2", w[s.MustIndex("branch")])
	}
	set.MustAdd(MustPC(predicate.NewBuilder(s).Eq("branch", 2).Build(), nil, 0, 5))
	if !set.Closed(sv) {
		t.Error("complete set reported open")
	}
	if _, ok := set.Uncovered(sv); ok {
		t.Error("closed set returned witness")
	}
}

func TestValidateAgainstHistory(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 100)}, 0, 2),
		MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 50)}, 0, 2),
	)
	ok := []domain.Row{{1, 0, 99}, {1, 1, 49}}
	if errs := set.Validate(ok); len(errs) != 0 {
		t.Errorf("valid history rejected: %v", errs)
	}
	bad := []domain.Row{{1, 0, 999}, {1, 1, 60}}
	if errs := set.Validate(bad); len(errs) != 2 {
		t.Errorf("want 2 violations, got %v", errs)
	}
}

func TestDisjointDetection(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(), nil, 0, 5),
		MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(), nil, 0, 5),
	)
	if !set.Disjoint() {
		t.Error("disjoint set not detected")
	}
	// Cached value must invalidate on Add.
	set.MustAdd(MustPC(predicate.True(s), nil, 0, 100))
	if set.Disjoint() {
		t.Error("overlapping set reported disjoint")
	}
}

func TestDisjointLatticeAware(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	// Overlap only in the integer-free region (0.2, 0.8) of an integral
	// attribute: still disjoint on the lattice.
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Range("branch", 0, 0.2).Build(), nil, 0, 5),
		MustPC(predicate.NewBuilder(s).Range("branch", 0.8, 2).Build(), nil, 0, 5),
	)
	if !set.Disjoint() {
		t.Error("lattice-disjoint set not detected")
	}
}

func TestTotalKLoAndMaxAbsValue(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(5, 100)}, 2, 5),
		MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 250)}, 3, 5),
	)
	if got := set.TotalKLo(); got != 5 {
		t.Errorf("TotalKLo = %d, want 5", got)
	}
	if got := set.MaxAbsValue("price"); got != 250 {
		t.Errorf("MaxAbsValue = %v, want 250", got)
	}
}

func TestPCString(t *testing.T) {
	s := salesSchema()
	pc := MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(), nil, 0, 5)
	if pc.String() == "" {
		t.Error("empty PC string")
	}
	pc.Name = "c1"
	if got := pc.String(); got[:2] != "c1" {
		t.Errorf("named PC string = %q", got)
	}
	if math.IsNaN(1.0) { // keep math import honest
		t.Fatal()
	}
}
