package core

import (
	"math"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// groupStore builds a small overlapping store for the GROUP BY edge cases:
// constraints live on branches 0 and 1 only, with overlapping utc windows so
// the general decomposition path runs.
func groupStore(t *testing.T) *Store {
	t.Helper()
	s := salesSchema()
	store := NewStore(s)
	store.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Range("utc", 0, 20).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(1, 100)}, 1, 5),
		MustPC(predicate.NewBuilder(s).Range("branch", 0, 1).Range("utc", 10, 30).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(2, 200)}, 0, 4),
	)
	return store
}

// TestGroupByEmptyGroupList checks the degenerate union: no groups in, no
// results out, no error — for every aggregate.
func TestGroupByEmptyGroupList(t *testing.T) {
	e := NewEngine(groupStore(t), nil, Options{})
	for _, agg := range []Agg{Count, Sum, Avg, Min, Max} {
		out, err := e.GroupBy(Query{Agg: agg, Attr: "price"}, nil)
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		if len(out) != 0 {
			t.Errorf("%v: empty group list produced %d results", agg, len(out))
		}
		out, err = e.GroupBy(Query{Agg: agg, Attr: "price"}, []*predicate.P{})
		if err != nil || len(out) != 0 {
			t.Errorf("%v: empty slice produced (%d results, %v)", agg, len(out), err)
		}
	}
}

// TestGroupByUnsatisfiableGroup checks a group whose region is unsatisfiable
// under the store's schema lattice (an integral attribute constrained to an
// integer-free window): every aggregate must return a well-defined
// empty/zero range rather than erroring.
func TestGroupByUnsatisfiableGroup(t *testing.T) {
	store := groupStore(t)
	s := store.Schema()
	e := NewEngine(store, nil, Options{})
	// branch strictly between 0 and 1: no lattice point satisfies it.
	hollow := predicate.NewBuilder(s).Range("branch", 0.2, 0.8).Build()
	groups := []*predicate.P{hollow}

	cnt, err := e.GroupBy(Query{Agg: Count}, groups)
	if err != nil {
		t.Fatal(err)
	}
	if cnt[0].Range.Lo != 0 || cnt[0].Range.Hi != 0 {
		t.Errorf("COUNT over unsatisfiable group = %v, want [0, 0]", cnt[0].Range)
	}
	for _, agg := range []Agg{Avg, Min, Max} {
		out, err := e.GroupBy(Query{Agg: agg, Attr: "price"}, groups)
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		r := out[0].Range
		if r.Lo <= r.Hi {
			t.Errorf("%v over unsatisfiable group = %v, want an empty (Lo > Hi) range", agg, r)
		}
		if !r.MaybeEmpty {
			t.Errorf("%v over unsatisfiable group not flagged MaybeEmpty: %+v", agg, r)
		}
	}
	sum, err := e.GroupBy(Query{Agg: Sum, Attr: "price"}, groups)
	if err != nil {
		t.Fatal(err)
	}
	if sum[0].Range.Lo != 0 || sum[0].Range.Hi != 0 {
		t.Errorf("SUM over unsatisfiable group = %v, want [0, 0]", sum[0].Range)
	}
}

// TestGroupByGroupMissingEveryPC checks a satisfiable group whose region no
// predicate-constraint touches: zero rows can exist there, so COUNT/SUM pin
// to zero and AVG/MIN/MAX are undefined-empty.
func TestGroupByGroupMissingEveryPC(t *testing.T) {
	store := groupStore(t)
	s := store.Schema()
	e := NewEngine(store, nil, Options{})
	// branch 2 is satisfiable but carries no constraints; with closure absent
	// the framework still answers (bounds hold for instances covered by S).
	uncovered := predicate.NewBuilder(s).Eq("branch", 2).Build()

	out, err := e.GroupBy(Query{Agg: Count}, []*predicate.P{uncovered})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Range.Lo != 0 || out[0].Range.Hi != 0 {
		t.Errorf("COUNT over uncovered group = %v, want [0, 0]", out[0].Range)
	}
	for _, agg := range []Agg{Avg, Min, Max} {
		res, err := e.GroupBy(Query{Agg: agg, Attr: "price"}, []*predicate.P{uncovered})
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		if r := res[0].Range; r.Lo <= r.Hi {
			t.Errorf("%v over uncovered group = %v, want empty", agg, r)
		}
	}
}

// TestAvgEdgeCases exercises AVG against the store states the binary search
// must survive: an empty store, a store whose every group is optional
// (kLo=0, MaybeEmpty), and a store where the query region admits exactly one
// forced cell (degenerate bisection interval).
func TestAvgEdgeCases(t *testing.T) {
	s := salesSchema()

	// Empty store: no cells at all.
	empty := NewStore(s)
	e := NewEngine(empty, nil, Options{DisableFastPath: true})
	r, err := e.Avg("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lo <= r.Hi || !r.MaybeEmpty {
		t.Errorf("AVG over empty store = %+v, want empty range", r)
	}

	// All-optional constraints: range defined, MaybeEmpty set.
	opt := NewStore(s)
	opt.MustAdd(
		MustPC(predicate.NewBuilder(s).Range("utc", 0, 12).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(10, 40)}, 0, 9),
		MustPC(predicate.NewBuilder(s).Range("utc", 5, 20).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(20, 60)}, 0, 7),
	)
	e = NewEngine(opt, nil, Options{DisableFastPath: true})
	r, err = e.Avg("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.MaybeEmpty {
		t.Errorf("all-optional AVG not MaybeEmpty: %+v", r)
	}
	if r.Lo < 10-1e-6 || r.Hi > 60+1e-6 || r.Lo > r.Hi {
		t.Errorf("AVG range %v outside value hull [10, 60]", r)
	}

	// Degenerate: a single point-valued forced constraint. The average of
	// any non-empty instance is exactly that value.
	point := NewStore(s)
	point.MustAdd(MustPC(predicate.NewBuilder(s).Range("utc", 3, 3).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(25, 25)}, 2, 2))
	e = NewEngine(point, nil, Options{DisableFastPath: true})
	r, err = e.Avg("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Lo-25) > 1e-6 || math.Abs(r.Hi-25) > 1e-6 {
		t.Errorf("point-valued AVG = %v, want [25, 25]", r)
	}
	if r.MaybeEmpty {
		t.Errorf("forced constraint still MaybeEmpty: %+v", r)
	}
}

// TestGroupByAcrossMutations ties GROUP BY to the store lifecycle: group
// results against a snapshot stay frozen, a rebind sees the mutation.
func TestGroupByAcrossMutations(t *testing.T) {
	store := groupStore(t)
	s := store.Schema()
	e := NewEngine(store, nil, Options{})
	groups := []*predicate.P{
		predicate.NewBuilder(s).Eq("branch", 0).Build(),
		predicate.NewBuilder(s).Eq("branch", 1).Build(),
	}
	before, err := e.GroupBy(Query{Agg: Count}, groups)
	if err != nil {
		t.Fatal(err)
	}
	// Tighten branch 1 with a new forced constraint.
	store.MustAdd(MustPC(predicate.NewBuilder(s).Eq("branch", 1).Range("utc", 0, 5).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(1, 10)}, 2, 3))

	pinned, err := e.GroupBy(Query{Agg: Count}, groups)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if pinned[i].Range != before[i].Range {
			t.Errorf("pinned group %d drifted: %+v -> %+v", i, before[i].Range, pinned[i].Range)
		}
	}
	after, err := e.Rebind().GroupBy(Query{Agg: Count}, groups)
	if err != nil {
		t.Fatal(err)
	}
	if after[1].Range.Lo < before[1].Range.Lo+2 {
		t.Errorf("rebound group 1 = %+v, want lower bound raised by the forced constraint (before %+v)",
			after[1].Range, before[1].Range)
	}
}
