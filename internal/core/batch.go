package core

import (
	"context"
	"runtime"

	"pcbound/internal/domain"
	"pcbound/internal/parallel"
)

// This file implements the concurrent batch-bounding subsystem: BoundBatch
// fans a query workload out across a worker pool. Each worker runs against
// its own SAT-solver clone (statistics are folded back into the engine's
// solver when the batch completes) and all workers share the engine's
// decomposition cache, so queries over the same pushdown-normalized region
// reuse one DFS+SAT decomposition no matter which worker lands them.
//
// BoundBatch is deterministic: results[i] is bit-identical to what
// e.Bound(queries[i]) returns, at every parallelism level. Decompositions
// are pure functions of the normalized region, so cache hits and races to
// populate an entry cannot change any Range.

// BatchOptions configures BoundBatch.
type BatchOptions struct {
	// Parallelism is the number of worker goroutines bounding queries;
	// <= 0 uses runtime.GOMAXPROCS(0). 1 runs the batch sequentially on the
	// calling goroutine.
	Parallelism int
}

// BoundBatch bounds every query and returns the ranges in input order.
// Individual query failures do not abort the batch: every query is
// attempted, and the error of the lowest-indexed failing query (if any) is
// returned alongside the partial results, whose failed entries are zero.
func (e *Engine) BoundBatch(queries []Query, opts BatchOptions) ([]Range, error) {
	return e.BoundBatchCtx(context.Background(), queries, opts)
}

// BoundBatchCtx is BoundBatch with cooperative cancellation: once ctx is
// done, queries that have not started are skipped (their results stay zero
// and their per-query error is ctx's error), while bounds already in flight
// run to completion — a Bound is never abandoned half-way, which is what
// lets a serving layer drain gracefully. Cancellation granularity is one
// query: the first error returned is the lowest-indexed failing query's,
// which may be the context error when cancellation cut the batch short.
func (e *Engine) BoundBatchCtx(ctx context.Context, queries []Query, opts BatchOptions) ([]Range, error) {
	n := len(queries)
	if n == 0 {
		return nil, nil
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	results := make([]Range, n)
	errs := make([]error, n)
	if par == 1 {
		for i, q := range queries {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			results[i], errs[i] = e.Bound(q)
		}
		return results, firstError(errs)
	}
	workers := make([]*Engine, par)
	parallel.For(n, par, func(w, i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		we := workers[w]
		if we == nil {
			we = e.workerClone()
			workers[w] = we
		}
		results[i], errs[i] = we.Bound(queries[i])
	})
	for _, we := range workers {
		if we != nil {
			e.solver.AddStats(we.solver.Stats())
		}
	}
	return results, firstError(errs)
}

// workerClone returns an engine view for one batch worker: same snapshot,
// options, decomposition cache, cell-bound cache, scheduler and
// solve-context pool, but a private SAT-solver clone so per-worker solver
// work is attributable without contending on shared counters.
func (e *Engine) workerClone() *Engine {
	return &Engine{
		snap: e.snap, solver: e.solver.Clone(), opts: e.opts, cache: e.cache,
		cellCache: e.cellCache, sched: e.sched, optsSig: e.optsSig, ctxPool: e.ctxPool,
	}
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CacheStats reports decomposition-cache activity since the cache was
// created. The cache is shared across Rebind generations, so the counters
// cover the whole engine lineage (all zero when the cache is disabled).
type CacheStats struct {
	// Hits counts queries served from a cached decomposition, including
	// entries revalidated across epochs (Retained).
	Hits int64
	// Misses counts queries that had to run DFS+SAT decomposition.
	Misses int64
	// Retained counts cross-epoch revalidations: a cached entry kept alive
	// after store mutations because no mutation touched its region.
	Retained int64
	// Invalidated counts stale-lookup events: a query found its best cached
	// candidate unusable because a mutation's predicate box overlapped the
	// region after the entry's validity window (scoped invalidation; the
	// old full-flush design would fire for every live entry on every
	// mutation). The entry itself stays resident — it is still exact over
	// its own epoch interval for snapshot-pinned engines — so concurrent
	// lookups may count the same entry more than once.
	Invalidated int64
}

// CacheStats returns the decomposition cache's counters.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.ec.stats()
}

// CellCacheStats returns the per-cell bound cache's counters (see
// cellcache.go). Like the decomposition cache, it is shared across Rebind
// generations, so the counters cover the whole engine lineage.
func (e *Engine) CellCacheStats() CacheStats {
	if e.cellCache == nil {
		return CacheStats{}
	}
	return e.cellCache.ec.stats()
}

// decompCache memoizes cell decompositions by pushdown-normalized region
// key, on the shared epoch-interval mechanism (epochcache.go): values are
// immutable *cellProblems shared by all readers and all engines in a Rebind
// lineage, each entry's base box is the pushdown-normalized query region,
// and validity extends across mutations that touch no predicate box
// overlapping it — a fresh decomposition would then see the identical kept
// predicate sequence and produce bit-identical cells.
type decompCache struct{ ec *epochCache }

func newDecompCache(max int, store *Store) *decompCache {
	return &decompCache{ec: newEpochCache(max, store)}
}

func (c *decompCache) get(key string, epoch uint64) (*cellProblem, bool) {
	v, ok := c.ec.get(key, epoch)
	if !ok {
		return nil, false
	}
	return v.(*cellProblem), true
}

func (c *decompCache) put(key string, base domain.Box, cp *cellProblem, epoch uint64) {
	c.ec.put(key, base, cp, epoch)
}
