package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"pcbound/internal/domain"
	"pcbound/internal/parallel"
)

// This file implements the concurrent batch-bounding subsystem: BoundBatch
// fans a query workload out across a worker pool. Each worker runs against
// its own SAT-solver clone (statistics are folded back into the engine's
// solver when the batch completes) and all workers share the engine's
// decomposition cache, so queries over the same pushdown-normalized region
// reuse one DFS+SAT decomposition no matter which worker lands them.
//
// BoundBatch is deterministic: results[i] is bit-identical to what
// e.Bound(queries[i]) returns, at every parallelism level. Decompositions
// are pure functions of the normalized region, so cache hits and races to
// populate an entry cannot change any Range.

// BatchOptions configures BoundBatch.
type BatchOptions struct {
	// Parallelism is the number of worker goroutines bounding queries;
	// <= 0 uses runtime.GOMAXPROCS(0). 1 runs the batch sequentially on the
	// calling goroutine.
	Parallelism int
}

// BoundBatch bounds every query and returns the ranges in input order.
// Individual query failures do not abort the batch: every query is
// attempted, and the error of the lowest-indexed failing query (if any) is
// returned alongside the partial results, whose failed entries are zero.
func (e *Engine) BoundBatch(queries []Query, opts BatchOptions) ([]Range, error) {
	return e.BoundBatchCtx(context.Background(), queries, opts)
}

// BoundBatchCtx is BoundBatch with cooperative cancellation: once ctx is
// done, queries that have not started are skipped (their results stay zero
// and their per-query error is ctx's error), while bounds already in flight
// run to completion — a Bound is never abandoned half-way, which is what
// lets a serving layer drain gracefully. Cancellation granularity is one
// query: the first error returned is the lowest-indexed failing query's,
// which may be the context error when cancellation cut the batch short.
func (e *Engine) BoundBatchCtx(ctx context.Context, queries []Query, opts BatchOptions) ([]Range, error) {
	n := len(queries)
	if n == 0 {
		return nil, nil
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	results := make([]Range, n)
	errs := make([]error, n)
	if par == 1 {
		for i, q := range queries {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			results[i], errs[i] = e.Bound(q)
		}
		return results, firstError(errs)
	}
	workers := make([]*Engine, par)
	parallel.For(n, par, func(w, i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		we := workers[w]
		if we == nil {
			we = e.workerClone()
			workers[w] = we
		}
		results[i], errs[i] = we.Bound(queries[i])
	})
	for _, we := range workers {
		if we != nil {
			e.solver.AddStats(we.solver.Stats())
		}
	}
	return results, firstError(errs)
}

// workerClone returns an engine view for one batch worker: same snapshot,
// options, decomposition cache and solve-context pool, but a private
// SAT-solver clone so per-worker solver work is attributable without
// contending on shared counters.
func (e *Engine) workerClone() *Engine {
	return &Engine{snap: e.snap, solver: e.solver.Clone(), opts: e.opts, cache: e.cache, ctxPool: e.ctxPool}
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CacheStats reports decomposition-cache activity since the cache was
// created. The cache is shared across Rebind generations, so the counters
// cover the whole engine lineage (all zero when the cache is disabled).
type CacheStats struct {
	// Hits counts queries served from a cached decomposition, including
	// entries revalidated across epochs (Retained).
	Hits int64
	// Misses counts queries that had to run DFS+SAT decomposition.
	Misses int64
	// Retained counts cross-epoch revalidations: a cached entry kept alive
	// after store mutations because no mutation touched its region.
	Retained int64
	// Invalidated counts stale-lookup events: a query found its best cached
	// candidate unusable because a mutation's predicate box overlapped the
	// region after the entry's validity window (scoped invalidation; the
	// old full-flush design would fire for every live entry on every
	// mutation). The entry itself stays resident — it is still exact over
	// its own epoch interval for snapshot-pinned engines — so concurrent
	// lookups may count the same entry more than once.
	Invalidated int64
}

// CacheStats returns the decomposition cache's counters.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:        e.cache.hits.Load(),
		Misses:      e.cache.misses.Load(),
		Retained:    e.cache.retained.Load(),
		Invalidated: e.cache.invalidated.Load(),
	}
}

// cacheEntry is one cached decomposition together with the epoch interval
// [lo, hi] over which it is known valid. base is the pushdown-normalized
// region the entry was decomposed for; validity extends across a mutation
// exactly when no touched predicate box overlaps base (the same lattice
// overlap test Decompose uses to drop predicates from the branching set, so
// "no overlap" means a fresh decomposition would see the identical kept
// predicate sequence and produce bit-identical cells).
type cacheEntry struct {
	cp     *cellProblem
	base   domain.Box
	lo, hi uint64 // guarded by decompCache.mu
	// used is the cache's logical clock at the entry's last hit, so per-key
	// eviction can drop the least-recently-used interval instead of
	// starving a still-active snapshot-pinned reader.
	used atomic.Int64
}

// maxEntriesPerKey bounds the epoch-interval entries kept per region key:
// one for the store's frontier plus one for an engine pinned to an older
// snapshot (the auditor pattern), so neither starves the other out of the
// cache when the region was mutated in between.
const maxEntriesPerKey = 2

// decompCache memoizes cell decompositions by pushdown-normalized region
// key. Entries are immutable cellProblems shared by all readers and all
// engines in a Rebind lineage. Store mutations do NOT flush the cache:
// get() consults the store's mutation log and retains every entry whose
// region no mutation touched (scoped invalidation), extending its validity
// interval; only entries overlapping a changed predicate box are dropped.
// Each key holds up to maxEntriesPerKey disjoint validity intervals, so a
// frontier engine and a snapshot-pinned one can both stay cached across a
// mutation that touched the region. When two goroutines race to decompose
// the same region, both compute it (the result is identical either way) and
// one insertion wins; this keeps the fast path lock-cheap without a per-key
// singleflight.
type decompCache struct {
	store   *Store
	mu      sync.RWMutex
	entries map[string][]*cacheEntry
	max     int
	clock   atomic.Int64 // logical time for LRU stamps

	hits, misses, retained, invalidated atomic.Int64
}

func newDecompCache(max int, store *Store) *decompCache {
	return &decompCache{store: store, entries: make(map[string][]*cacheEntry), max: max}
}

func (c *decompCache) get(key string, epoch uint64) (*cellProblem, bool) {
	// Direct containment: the steady-state hit path, allocation-free.
	c.mu.RLock()
	ens := c.entries[key]
	for _, en := range ens {
		if epoch >= en.lo && epoch <= en.hi {
			cp := en.cp
			en.used.Store(c.clock.Add(1))
			c.mu.RUnlock()
			c.hits.Add(1)
			return cp, true
		}
	}
	// No direct hit: snapshot the intervals for the extension decisions,
	// which run without the lock (they consult the store's mutation log).
	type view struct {
		en     *cacheEntry
		lo, hi uint64
	}
	views := make([]view, len(ens))
	for i, en := range ens {
		views[i] = view{en, en.lo, en.hi}
	}
	c.mu.RUnlock()
	// Forward extension from the entry ending closest below epoch.
	var fwd *view
	for i := range views {
		if views[i].hi < epoch && (fwd == nil || views[i].hi > fwd.hi) {
			fwd = &views[i]
		}
	}
	if fwd != nil {
		if c.store.unchangedWithin(fwd.en.base, fwd.hi, epoch) {
			c.extend(key, fwd.en, epoch, true)
			fwd.en.used.Store(c.clock.Add(1))
			c.retained.Add(1)
			c.hits.Add(1)
			return fwd.en.cp, true
		}
		// A mutation touched this region after the entry's validity window.
		// The entry is stale for this epoch but still exact over its own
		// [lo, hi] interval, so keep it for snapshot-pinned engines; the
		// per-key cap bounds accumulation when the frontier repopulates.
		c.invalidated.Add(1)
	}
	// Backward extension: an engine bound to an older snapshot probing an
	// entry created later. If nothing touching the region happened in
	// between, the decomposition is the same and validity extends backwards.
	var bwd *view
	for i := range views {
		if views[i].lo > epoch && (bwd == nil || views[i].lo < bwd.lo) {
			bwd = &views[i]
		}
	}
	if bwd != nil && c.store.unchangedWithin(bwd.en.base, epoch, bwd.lo) {
		c.extend(key, bwd.en, epoch, false)
		bwd.en.used.Store(c.clock.Add(1))
		c.retained.Add(1)
		c.hits.Add(1)
		return bwd.en.cp, true
	}
	c.misses.Add(1)
	return nil, false
}

// extend widens an entry's validity interval to include epoch, unless the
// entry was concurrently evicted.
func (c *decompCache) extend(key string, en *cacheEntry, epoch uint64, forward bool) {
	c.mu.Lock()
	for _, cur := range c.entries[key] {
		if cur == en {
			if forward && en.hi < epoch {
				en.hi = epoch
			} else if !forward && en.lo > epoch {
				en.lo = epoch
			}
			break
		}
	}
	c.mu.Unlock()
}

func (c *decompCache) put(key string, base domain.Box, cp *cellProblem, epoch uint64) {
	en := &cacheEntry{cp: cp, base: base, lo: epoch, hi: epoch}
	en.used.Store(c.clock.Add(1))
	c.mu.Lock()
	defer c.mu.Unlock()
	ens := c.entries[key]
	for _, cur := range ens {
		if epoch >= cur.lo && epoch <= cur.hi {
			return // a racer already covers this epoch
		}
	}
	if len(ens) == 0 && len(c.entries) >= c.max {
		// At capacity, evict an arbitrary key (map iteration order) rather
		// than refusing the insert: entries survive mutations, so a workload
		// whose region set drifts past the capacity would otherwise lock the
		// cache into regions it never queries again. Eviction can only cost
		// a recomputation, never change a result.
		for victim := range c.entries {
			delete(c.entries, victim)
			break
		}
	}
	ens = append(ens, en)
	if len(ens) > maxEntriesPerKey {
		// Drop the least-recently-used resident interval, but never the
		// entry just inserted — evicting the newcomer would permanently
		// starve the engine that computed it. LRU (rather than smallest-hi)
		// keeps a long-lived snapshot-pinned reader's entry alive across
		// frontier churn: a dead old frontier interval is untouched since
		// its last repopulation, while the pinned reader re-stamps its entry
		// on every hit.
		low := -1
		for i, cur := range ens {
			if cur == en {
				continue
			}
			if low < 0 || cur.used.Load() < ens[low].used.Load() {
				low = i
			}
		}
		ens = append(ens[:low], ens[low+1:]...)
	}
	c.entries[key] = ens
}
