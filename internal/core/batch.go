package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pcbound/internal/parallel"
)

// This file implements the concurrent batch-bounding subsystem: BoundBatch
// fans a query workload out across a worker pool. Each worker runs against
// its own SAT-solver clone (statistics are folded back into the engine's
// solver when the batch completes) and all workers share the engine's
// decomposition cache, so queries over the same pushdown-normalized region
// reuse one DFS+SAT decomposition no matter which worker lands them.
//
// BoundBatch is deterministic: results[i] is bit-identical to what
// e.Bound(queries[i]) returns, at every parallelism level. Decompositions
// are pure functions of the normalized region, so cache hits and races to
// populate an entry cannot change any Range.

// BatchOptions configures BoundBatch.
type BatchOptions struct {
	// Parallelism is the number of worker goroutines bounding queries;
	// <= 0 uses runtime.GOMAXPROCS(0). 1 runs the batch sequentially on the
	// calling goroutine.
	Parallelism int
}

// BoundBatch bounds every query and returns the ranges in input order.
// Individual query failures do not abort the batch: every query is
// attempted, and the error of the lowest-indexed failing query (if any) is
// returned alongside the partial results, whose failed entries are zero.
func (e *Engine) BoundBatch(queries []Query, opts BatchOptions) ([]Range, error) {
	n := len(queries)
	if n == 0 {
		return nil, nil
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	results := make([]Range, n)
	errs := make([]error, n)
	if par == 1 {
		for i, q := range queries {
			results[i], errs[i] = e.Bound(q)
		}
		return results, firstError(errs)
	}
	workers := make([]*Engine, par)
	parallel.For(n, par, func(w, i int) {
		we := workers[w]
		if we == nil {
			we = e.workerClone()
			workers[w] = we
		}
		results[i], errs[i] = we.Bound(queries[i])
	})
	for _, we := range workers {
		if we != nil {
			e.solver.AddStats(we.solver.Stats())
		}
	}
	return results, firstError(errs)
}

// workerClone returns an engine view for one batch worker: same set, options
// and decomposition cache, but a private SAT-solver clone so per-worker
// solver work is attributable without contending on shared counters.
func (e *Engine) workerClone() *Engine {
	return &Engine{set: e.set, solver: e.solver.Clone(), opts: e.opts, cache: e.cache}
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CacheStats reports decomposition-cache hits and misses since the engine
// was built (both zero when the cache is disabled).
func (e *Engine) CacheStats() (hits, misses int64) {
	if e.cache == nil {
		return 0, 0
	}
	return e.cache.hits.Load(), e.cache.misses.Load()
}

// decompCache memoizes cell decompositions by pushdown-normalized region
// key. Entries are immutable cellProblems shared by all readers, tagged with
// the constraint-set version they were derived from; a version bump
// (Set.Add after the engine was built) flushes the cache so stale problems
// can never produce unsound ranges. When two goroutines race to decompose
// the same region, both compute it (the result is identical either way) and
// one insertion wins; this keeps the fast path lock-cheap without a per-key
// singleflight.
type decompCache struct {
	mu      sync.RWMutex
	entries map[string]*cellProblem
	version uint64 // Set.Version the entries were computed against
	max     int

	hits, misses atomic.Int64
}

func newDecompCache(max int) *decompCache {
	return &decompCache{entries: make(map[string]*cellProblem), max: max}
}

func (c *decompCache) get(key string, version uint64) (*cellProblem, bool) {
	c.mu.RLock()
	cp, ok := c.entries[key]
	stale := c.version != version
	c.mu.RUnlock()
	if stale {
		c.mu.Lock()
		if c.version != version {
			c.entries = make(map[string]*cellProblem)
			c.version = version
		}
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return cp, ok
}

func (c *decompCache) put(key string, cp *cellProblem, version uint64) {
	c.mu.Lock()
	if c.version == version && len(c.entries) < c.max {
		c.entries[key] = cp
	}
	c.mu.Unlock()
}
