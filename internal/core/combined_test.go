package core

import (
	"math"
	"math/rand"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/table"
)

// analyzerFixture: present rows on branch 2, missing rows constrained on
// branches 0 and 1.
func analyzerFixture(t *testing.T) (*Analyzer, *table.T) {
	t.Helper()
	s := salesSchema()
	present := table.New(s)
	present.MustAppend(
		domain.Row{5, 2, 40},
		domain.Row{6, 2, 60},
	)
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(10, 100)}, 2, 4),
		MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(200, 300)}, 0, 2),
	)
	return NewAnalyzer(present, NewEngine(set, nil, Options{})), present
}

func TestAnalyzerCountSum(t *testing.T) {
	a, _ := analyzerFixture(t)
	r, err := a.Bound(Query{Agg: Count})
	if err != nil {
		t.Fatal(err)
	}
	// 2 present + [2, 6] missing.
	if r.Lo != 4 || r.Hi != 8 {
		t.Errorf("COUNT = %v, want [4, 8]", r)
	}
	s, err := a.Bound(Query{Agg: Sum, Attr: "price"})
	if err != nil {
		t.Fatal(err)
	}
	// 100 present + [2·10, 4·100 + 2·300].
	if s.Lo != 120 || s.Hi != 1100 {
		t.Errorf("SUM = %v, want [120, 1100]", s)
	}
}

func TestAnalyzerMinMax(t *testing.T) {
	a, _ := analyzerFixture(t)
	mx, err := a.Bound(Query{Agg: Max, Attr: "price"})
	if err != nil {
		t.Fatal(err)
	}
	// Present max 60; missing max range [10, 300] with forced rows:
	// full max ∈ [60, 300].
	if mx.Lo != 60 || mx.Hi != 300 {
		t.Errorf("MAX = %v, want [60, 300]", mx)
	}
	mn, err := a.Bound(Query{Agg: Min, Attr: "price"})
	if err != nil {
		t.Fatal(err)
	}
	// Present min 40; missing min ∈ [10, 100] forced: full min ∈ [10, 40].
	if mn.Lo != 10 || mn.Hi != 40 {
		t.Errorf("MIN = %v, want [10, 40]", mn)
	}
}

func TestAnalyzerMaxWithMaybeEmptyMissing(t *testing.T) {
	s := salesSchema()
	present := table.New(s)
	present.MustAppend(domain.Row{5, 2, 40})
	set := NewSet(s)
	set.MustAdd(MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(200, 300)}, 0, 2))
	a := NewAnalyzer(present, NewEngine(set, nil, Options{}))
	mx, err := a.Bound(Query{Agg: Max, Attr: "price"})
	if err != nil {
		t.Fatal(err)
	}
	// Missing rows optional: max ∈ [present max, 300].
	if mx.Lo != 40 || mx.Hi != 300 {
		t.Errorf("MAX = %v, want [40, 300]", mx)
	}
	if mx.MaybeEmpty {
		t.Error("full-table max is always defined here")
	}
}

func TestAnalyzerAvg(t *testing.T) {
	a, _ := analyzerFixture(t)
	r, err := a.Bound(Query{Agg: Avg, Attr: "price"})
	if err != nil {
		t.Fatal(err)
	}
	// Present: sum 100, count 2. Missing: sum [20,1000], count [2,6].
	// Interval-arithmetic corners: lo = (100+20)/(2+6) = 15,
	// hi = (100+1000)/(2+2) = 275.
	if math.Abs(r.Lo-15) > 1e-6 || math.Abs(r.Hi-275) > 1e-6 {
		t.Errorf("AVG = %v, want [15, 275]", r)
	}
}

func TestAnalyzerAvgZeroDenominatorCorner(t *testing.T) {
	s := salesSchema()
	present := table.New(s) // no present rows
	set := NewSet(s)
	set.MustAdd(MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(50, 100)}, 0, 10))
	a := NewAnalyzer(present, NewEngine(set, nil, Options{}))
	r, err := a.Bound(Query{Agg: Avg, Attr: "price"})
	if err != nil {
		t.Fatal(err)
	}
	// A single 100-price row gives avg 100; the count=1 corner must be
	// included even though the count lower bound is 0.
	if !r.Contains(100) {
		t.Errorf("AVG range %v must contain the single-row average 100", r)
	}
	if !r.MaybeEmpty {
		t.Error("zero rows possible: MaybeEmpty should be set")
	}
}

func TestAnalyzerNoRowsAtAll(t *testing.T) {
	s := salesSchema()
	a := NewAnalyzer(table.New(s), NewEngine(NewSet(s), nil, Options{}))
	r, err := a.Bound(Query{Agg: Avg, Attr: "price"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Lo <= r.Hi {
		t.Errorf("AVG over nothing should be the empty range, got %v", r)
	}
	mx, err := a.Bound(Query{Agg: Max, Attr: "price"})
	if err != nil {
		t.Fatal(err)
	}
	if mx.Lo <= mx.Hi {
		t.Errorf("MAX over nothing should be the empty range, got %v", mx)
	}
	if _, err := a.Bound(Query{Agg: Agg(77)}); err == nil {
		t.Error("unknown aggregate accepted")
	}
}

// TestAnalyzerSoundnessRandomized mirrors the engine soundness test but at
// the full-relation level: generate a complete instance, split it, derive
// constraints for the missing part, and check the combined range contains
// the full-table truth for every aggregate.
func TestAnalyzerSoundnessRandomized(t *testing.T) {
	s := domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Integral, Domain: domain.NewInterval(0, 9)},
		domain.Attr{Name: "v", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
	)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		full := table.New(s)
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			full.MustAppend(domain.Row{float64(rng.Intn(10)), rng.Float64() * 100})
		}
		present, missing := full.RemoveTopFraction("v", 0.3)
		set := NewSet(s)
		// Exact per-x constraints derived from the missing part.
		for x := 0; x < 10; x++ {
			pred := predicate.NewBuilder(s).Eq("x", float64(x)).Build()
			cnt := int(missing.Count(pred))
			vals := map[string]domain.Interval{}
			if cnt > 0 {
				lo, _ := missing.Min("v", pred)
				hi, _ := missing.Max("v", pred)
				vals["v"] = domain.NewInterval(lo, hi)
			}
			set.MustAdd(MustPC(pred, vals, cnt, cnt))
		}
		a := NewAnalyzer(present, NewEngine(set, nil, Options{}))
		for qi := 0; qi < 3; qi++ {
			var where *predicate.P
			if qi > 0 {
				lo := rng.Intn(10)
				hi := lo + rng.Intn(10-lo)
				where = predicate.NewBuilder(s).Range("x", float64(lo), float64(hi)).Build()
			}
			check := func(q Query, truth float64, defined bool) {
				t.Helper()
				r, err := a.Bound(q)
				if err != nil {
					t.Fatal(err)
				}
				if !defined {
					return
				}
				if !r.Contains(truth) {
					t.Fatalf("trial %d q%d %v: truth %v outside %v", trial, qi, q.Agg, truth, r)
				}
			}
			check(Query{Agg: Count, Where: where}, full.Count(where), true)
			check(Query{Agg: Sum, Attr: "v", Where: where}, full.Sum("v", where), true)
			avg, okA := full.Avg("v", where)
			check(Query{Agg: Avg, Attr: "v", Where: where}, avg, okA)
			mn, okN := full.Min("v", where)
			check(Query{Agg: Min, Attr: "v", Where: where}, mn, okN)
			mx, okX := full.Max("v", where)
			check(Query{Agg: Max, Attr: "v", Where: where}, mx, okX)
		}
	}
}
