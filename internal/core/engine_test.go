package core

import (
	"math"
	"math/rand"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// TestPaperDisjointExample reproduces Section 4.4's disjoint PC example:
//
//	t1: utc = 11 => 0.99 <= price <= 129.99, (50, 100)
//	t2: utc = 12 => 0.99 <= price <= 149.99, (50, 100)
//
// SUM(price) range must be [99.00, 27998.00].
func TestPaperDisjointExample(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("utc", 11).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0.99, 129.99)}, 50, 100),
		MustPC(predicate.NewBuilder(s).Eq("utc", 12).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0.99, 149.99)}, 50, 100),
	)
	for _, disableFast := range []bool{false, true} {
		e := NewEngine(set, nil, Options{DisableFastPath: disableFast})
		r, err := e.Sum("price", nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Lo-99.00) > 1e-6 || math.Abs(r.Hi-27998.00) > 1e-6 {
			t.Errorf("fast=%v: SUM range = %v, want [99, 27998]", !disableFast, r)
		}
		c, err := e.Count(nil)
		if err != nil {
			t.Fatal(err)
		}
		if c.Lo != 100 || c.Hi != 200 {
			t.Errorf("fast=%v: COUNT range = %v, want [100, 200]", !disableFast, c)
		}
	}
}

// TestPaperOverlappingExample reproduces Section 4.4's overlapping example:
//
//	t1: utc = 11        => 0.99 <= price <= 129.99, (50, 100)
//	t2: 11 <= utc <= 12 => 0.99 <= price <= 149.99, (75, 125)
//
// SUM(price) range must be [74.25, 17748.75].
func TestPaperOverlappingExample(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("utc", 11).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0.99, 129.99)}, 50, 100),
		MustPC(predicate.NewBuilder(s).Range("utc", 11, 12).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0.99, 149.99)}, 75, 125),
	)
	e := NewEngine(set, nil, Options{})
	r, err := e.Sum("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Lo-74.25) > 1e-6 {
		t.Errorf("SUM lower = %v, want 74.25", r.Lo)
	}
	if math.Abs(r.Hi-17748.75) > 1e-6 {
		t.Errorf("SUM upper = %v, want 17748.75", r.Hi)
	}
	if !r.LoExact || !r.HiExact {
		t.Errorf("expected exact endpoints, got %+v", r)
	}
	if r.Cells != 2 {
		t.Errorf("Cells = %d, want 2 (c3 unsatisfiable)", r.Cells)
	}
}

// TestInteractingConstraints reproduces the paper's c1/c2 interaction
// (Section 3.1): a global cap interacts with a per-branch cap.
func TestInteractingConstraints(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		// c1: Chicago (branch 0): price <= 149.99, at most 5 rows.
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 149.99)}, 0, 5),
		// c2: all branches: price <= 149.99, at most 100 rows.
		MustPC(predicate.True(s),
			map[string]domain.Interval{"price": domain.NewInterval(0, 149.99)}, 0, 100),
	)
	e := NewEngine(set, nil, Options{})
	// COUNT of Chicago rows is capped at 5 by c1 even though c2 allows 100.
	chicago := predicate.NewBuilder(s).Eq("branch", 0).Build()
	r, err := e.Count(chicago)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hi != 5 {
		t.Errorf("Chicago COUNT upper = %v, want 5 (most restrictive wins)", r.Hi)
	}
	// Global count is capped at 100.
	all, err := e.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	if all.Hi != 100 {
		t.Errorf("global COUNT upper = %v, want 100", all.Hi)
	}
	// Global SUM: 100 rows at 149.99.
	sum, err := e.Sum("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Hi-100*149.99) > 1e-6 {
		t.Errorf("SUM upper = %v, want %v", sum.Hi, 100*149.99)
	}
}

func TestQueryPushdownPartialOverlap(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	// One PC spanning days 10-13 with forced rows (klo=40).
	set.MustAdd(MustPC(predicate.NewBuilder(s).Range("utc", 10, 13).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(1, 10)}, 40, 40))
	e := NewEngine(set, nil, Options{})
	// Query covers only days 10-11: the 40 forced rows may all live on days
	// 12-13, so the COUNT lower bound must be 0 — but at most 40 can be in
	// range.
	q := predicate.NewBuilder(s).Range("utc", 10, 11).Build()
	r, err := e.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lo != 0 {
		t.Errorf("partial-overlap COUNT lower = %v, want 0", r.Lo)
	}
	if r.Hi != 40 {
		t.Errorf("partial-overlap COUNT upper = %v, want 40", r.Hi)
	}
	// Query covering the full predicate keeps the forced lower bound.
	qFull := predicate.NewBuilder(s).Range("utc", 9, 14).Build()
	r2, err := e.Count(qFull)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Lo != 40 || r2.Hi != 40 {
		t.Errorf("full-overlap COUNT = %v, want [40, 40]", r2)
	}
}

func TestQueryOutsideAllPCs(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(MustPC(predicate.NewBuilder(s).Range("utc", 10, 13).Build(), nil, 0, 10))
	e := NewEngine(set, nil, Options{})
	q := predicate.NewBuilder(s).Range("utc", 20, 25).Build()
	r, err := e.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lo != 0 || r.Hi != 0 {
		t.Errorf("no-overlap COUNT = %v, want [0, 0]", r)
	}
	sum, err := e.Sum("price", q)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Lo != 0 || sum.Hi != 0 {
		t.Errorf("no-overlap SUM = %v, want [0, 0]", sum)
	}
	// MIN/MAX/AVG have no possible value there.
	mx, err := e.Max("price", q)
	if err != nil {
		t.Fatal(err)
	}
	if mx.Contains(5) || !mx.MaybeEmpty {
		t.Errorf("no-overlap MAX = %+v, want empty range", mx)
	}
}

func TestAvgBinarySearch(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		// 10 forced cheap rows and up to 5 optional expensive rows.
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(1, 1)}, 10, 10),
		MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(100, 100)}, 0, 5),
	)
	for _, disableFast := range []bool{false, true} {
		e := NewEngine(set, nil, Options{DisableFastPath: disableFast})
		r, err := e.Avg("price", nil)
		if err != nil {
			t.Fatal(err)
		}
		// Max avg: (10·1 + 5·100)/15 = 34; min avg: all forced rows at 1.
		if math.Abs(r.Hi-34) > 1e-3 {
			t.Errorf("fast=%v: AVG upper = %v, want 34", !disableFast, r.Hi)
		}
		if math.Abs(r.Lo-1) > 1e-3 {
			t.Errorf("fast=%v: AVG lower = %v, want 1", !disableFast, r.Lo)
		}
		if r.MaybeEmpty {
			t.Errorf("fast=%v: 10 forced rows: not maybe-empty", !disableFast)
		}
	}
}

func TestMinMax(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(10, 150)}, 2, 5),
		MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(50, 300)}, 0, 5),
	)
	for _, disableFast := range []bool{false, true} {
		e := NewEngine(set, nil, Options{DisableFastPath: disableFast})
		mx, err := e.Max("price", nil)
		if err != nil {
			t.Fatal(err)
		}
		// Sup max: a row in branch 1 at 300. Inf max: forced branch-0 rows
		// at 10 and nothing else -> 10.
		if mx.Hi != 300 || mx.Lo != 10 {
			t.Errorf("fast=%v: MAX = %v, want [10, 300]", !disableFast, mx)
		}
		if mx.MaybeEmpty {
			t.Errorf("fast=%v: forced rows exist", !disableFast)
		}
		mn, err := e.Min("price", nil)
		if err != nil {
			t.Fatal(err)
		}
		// Inf min: branch-0 row at 10. Sup min: forced rows at 150 max, so
		// the minimum can be at most 150.
		if mn.Lo != 10 || mn.Hi != 150 {
			t.Errorf("fast=%v: MIN = %v, want [10, 150]", !disableFast, mn)
		}
	}
}

func TestMaxNoForcedRows(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(10, 150)}, 0, 5))
	for _, disableFast := range []bool{false, true} {
		e := NewEngine(set, nil, Options{DisableFastPath: disableFast})
		mx, err := e.Max("price", nil)
		if err != nil {
			t.Fatal(err)
		}
		if !mx.MaybeEmpty {
			t.Errorf("fast=%v: zero rows possible, MaybeEmpty should be set", !disableFast)
		}
		if mx.Hi != 150 || mx.Lo != 10 {
			t.Errorf("fast=%v: MAX = %v, want [10, 150] conditional on non-empty", !disableFast, mx)
		}
	}
}

func TestReconciliationOfConflictingConstraints(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	// Conflict: the inner PC forces at least 10 Chicago rows, the outer one
	// allows at most 5 rows anywhere.
	set.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 100)}, 10, 20),
		MustPC(predicate.True(s),
			map[string]domain.Interval{"price": domain.NewInterval(0, 100)}, 0, 5),
	)
	e := NewEngine(set, nil, Options{})
	r, err := e.Sum("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reconciled {
		t.Error("conflicting lower bounds should trigger reconciliation")
	}
	// The most restrictive upper bounds still apply: at most 5 rows at 100.
	if r.Hi != 500 {
		t.Errorf("SUM upper = %v, want 500", r.Hi)
	}
}

func TestFastPathMatchesGeneralOnRandomDisjointSets(t *testing.T) {
	s := salesSchema()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		set := NewSet(s)
		nPC := 2 + rng.Intn(4)
		day := 0
		for i := 0; i < nPC; i++ {
			span := 1 + rng.Intn(3)
			lo := 1 + rng.Float64()*50
			hi := lo + rng.Float64()*100
			klo := rng.Intn(5)
			khi := klo + rng.Intn(10)
			set.MustAdd(MustPC(
				predicate.NewBuilder(s).Range("utc", float64(day), float64(day+span-1)).Build(),
				map[string]domain.Interval{"price": domain.NewInterval(lo, hi)},
				klo, khi))
			day += span
		}
		if !set.Disjoint() {
			t.Fatal("construction should be disjoint")
		}
		var queries []*predicate.P
		queries = append(queries, nil,
			predicate.NewBuilder(s).Range("utc", 0, float64(rng.Intn(10))).Build())
		for _, q := range queries {
			fast := NewEngine(set, nil, Options{})
			slow := NewEngine(set, nil, Options{DisableFastPath: true})
			for _, agg := range []Agg{Count, Sum, Avg, Min, Max} {
				qy := Query{Agg: agg, Attr: "price", Where: q}
				rf, err := fast.Bound(qy)
				if err != nil {
					t.Fatal(err)
				}
				rs, err := slow.Bound(qy)
				if err != nil {
					t.Fatal(err)
				}
				tol := 1e-5 * (1 + math.Abs(rs.Hi) + math.Abs(rs.Lo))
				loDiff := math.Abs(rf.Lo - rs.Lo)
				hiDiff := math.Abs(rf.Hi - rs.Hi)
				// Empty ranges compare by emptiness.
				if rf.Lo > rf.Hi && rs.Lo > rs.Hi {
					continue
				}
				if loDiff > tol || hiDiff > tol {
					t.Errorf("trial %d agg %v: fast %v vs general %v", trial, agg, rf, rs)
				}
			}
		}
	}
}

// TestRandomizedSoundness generates random ground-truth instances, derives
// PCs that the instance satisfies by construction, and checks that every
// aggregate of the instance falls inside the engine's hard range — the
// paper's central guarantee.
func TestRandomizedSoundness(t *testing.T) {
	s := domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Integral, Domain: domain.NewInterval(0, 9)},
		domain.Attr{Name: "v", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
	)
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		// Ground-truth missing rows.
		n := 1 + rng.Intn(30)
		rows := make([]domain.Row, n)
		for i := range rows {
			rows[i] = domain.Row{float64(rng.Intn(10)), rng.Float64() * 100}
		}
		// Overlapping PCs derived from the instance: random x-ranges with
		// exact counts and value hulls.
		set := NewSet(s)
		nPC := 1 + rng.Intn(4)
		for i := 0; i < nPC; i++ {
			a, b := rng.Intn(10), rng.Intn(10)
			if a > b {
				a, b = b, a
			}
			pred := predicate.NewBuilder(s).Range("x", float64(a), float64(b)).Build()
			cnt := 0
			vlo, vhi := math.Inf(1), math.Inf(-1)
			for _, r := range rows {
				if pred.Eval(r) {
					cnt++
					vlo = math.Min(vlo, r[1])
					vhi = math.Max(vhi, r[1])
				}
			}
			if cnt == 0 {
				vlo, vhi = 0, 100
			}
			set.MustAdd(MustPC(pred, map[string]domain.Interval{"v": domain.NewInterval(vlo, vhi)}, cnt, cnt))
		}
		// Catch-all for closure.
		set.MustAdd(MustPC(predicate.True(s), nil, 0, n))
		if errs := set.Validate(rows); len(errs) != 0 {
			t.Fatalf("trial %d: derived PCs not satisfied: %v", trial, errs)
		}

		e := NewEngine(set, nil, Options{})
		// Random queries, including the full domain.
		for qi := 0; qi < 4; qi++ {
			var where *predicate.P
			if qi > 0 {
				a, b := rng.Intn(10), rng.Intn(10)
				if a > b {
					a, b = b, a
				}
				where = predicate.NewBuilder(s).Range("x", float64(a), float64(b)).Build()
			}
			var match []float64
			for _, r := range rows {
				if where == nil || where.Eval(r) {
					match = append(match, r[1])
				}
			}
			count := float64(len(match))
			sum := 0.0
			mn, mx := math.Inf(1), math.Inf(-1)
			for _, v := range match {
				sum += v
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
			}

			rc, err := e.Count(where)
			if err != nil {
				t.Fatal(err)
			}
			if !rc.Contains(count) {
				t.Fatalf("trial %d q%d: COUNT %v outside %v", trial, qi, count, rc)
			}
			rsum, err := e.Sum("v", where)
			if err != nil {
				t.Fatal(err)
			}
			if !rsum.Contains(sum) {
				t.Fatalf("trial %d q%d: SUM %v outside %v", trial, qi, sum, rsum)
			}
			if len(match) > 0 {
				ravg, err := e.Avg("v", where)
				if err != nil {
					t.Fatal(err)
				}
				if !ravg.Contains(sum / count) {
					t.Fatalf("trial %d q%d: AVG %v outside %v", trial, qi, sum/count, ravg)
				}
				rmin, err := e.Min("v", where)
				if err != nil {
					t.Fatal(err)
				}
				if !rmin.Contains(mn) {
					t.Fatalf("trial %d q%d: MIN %v outside %v", trial, qi, mn, rmin)
				}
				rmax, err := e.Max("v", where)
				if err != nil {
					t.Fatal(err)
				}
				if !rmax.Contains(mx) {
					t.Fatalf("trial %d q%d: MAX %v outside %v", trial, qi, mx, rmax)
				}
			}
		}
	}
}

func TestEarlyStoppingSoundButLooser(t *testing.T) {
	s := salesSchema()
	rng := rand.New(rand.NewSource(3))
	set := NewSet(s)
	for i := 0; i < 7; i++ {
		lo := float64(rng.Intn(20))
		set.MustAdd(MustPC(
			predicate.NewBuilder(s).Range("utc", lo, lo+float64(3+rng.Intn(8))).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(1, float64(10+rng.Intn(100)))},
			0, 10+rng.Intn(20)))
	}
	exact := NewEngine(set, nil, Options{DisableFastPath: true})
	re, err := exact.Sum("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	approx := NewEngine(set, nil, Options{DisableFastPath: true})
	approx.opts.Cells.EarlyStopLayer = 2
	ra, err := approx.Sum("price", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The approximation must contain the exact range.
	if ra.Hi < re.Hi-1e-6 || ra.Lo > re.Lo+1e-6 {
		t.Errorf("early-stop range %v does not contain exact %v", ra, re)
	}
	if ra.SATChecks >= re.SATChecks {
		t.Errorf("early stopping should reduce SAT checks: %d vs %d", ra.SATChecks, re.SATChecks)
	}
}

func TestBoundDispatchAndAggString(t *testing.T) {
	s := salesSchema()
	set := NewSet(s)
	set.MustAdd(MustPC(predicate.True(s), map[string]domain.Interval{"price": domain.NewInterval(0, 10)}, 0, 5))
	e := NewEngine(set, nil, Options{})
	for _, agg := range []Agg{Count, Sum, Avg, Min, Max} {
		if _, err := e.Bound(Query{Agg: agg, Attr: "price"}); err != nil {
			t.Errorf("%v: %v", agg, err)
		}
		if agg.String() == "" {
			t.Error("empty agg string")
		}
	}
	if _, err := e.Bound(Query{Agg: Agg(99)}); err == nil {
		t.Error("unknown aggregate accepted")
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{Lo: 1, Hi: 3}
	if !r.Contains(2) || !r.Contains(1) || !r.Contains(3) || r.Contains(4) {
		t.Error("Contains wrong")
	}
	if r.Width() != 2 {
		t.Error("Width wrong")
	}
	if r.String() == "" {
		t.Error("empty string")
	}
	er := emptyRange()
	if er.Contains(0) {
		t.Error("empty range contains value")
	}
}
