package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/sat"
)

// This file implements the versioned, mutable constraint store and its
// copy-on-write snapshots.
//
// Contingency analysis is dynamic: analysts add, tighten, and retract
// predicate-constraints as they learn more about the missing data. The Store
// supports Add, Remove, and Replace under a single writer lock, while
// Snapshot() hands out cheap immutable views. An Engine (and every worker in
// its BoundBatch pool) binds to one snapshot for its lifetime, so concurrent
// writers never perturb in-flight queries, and results computed against a
// snapshot are bit-identical to a freshly built engine over the same PC
// multiset.
//
// Versioning model:
//
//   - Every successful mutating call bumps the store epoch by one and
//     records the predicate boxes it touched in a bounded mutation log.
//   - A snapshot is pinned to the epoch it was taken at. Snapshots are
//     copy-on-write: taking one is O(1); the next mutation copies the PC
//     slice once so the snapshot's view stays frozen.
//   - Engine-side decomposition caches consult the mutation log to decide,
//     per cached region, whether any mutation between two epochs could have
//     changed that region's decomposition (scoped invalidation — see
//     decompCache in batch.go).
//
// The closure check (Definition 3.2) is maintained incrementally: the store
// keeps a sat.Incremental tracker of the uncovered remainder of the domain
// and applies predicate adds/removes to it as deltas instead of re-solving
// from scratch; Snapshot.Closed is the stateless reference implementation
// the tracker is differentially tested against.

// PCID is a stable handle for one constraint in a Store. It survives
// mutations of other constraints: Replace keeps the id, Remove retires it.
type PCID uint64

// Store is a versioned, mutable predicate-constraint store over one schema.
// All methods are safe for concurrent use; readers that need a stable view
// across multiple calls should take a Snapshot.
type Store struct {
	schema *domain.Schema

	// mu guards the fields below. Read-mostly accessors (Epoch, Len, Get,
	// and the cache's mutation-log checks) take the read side, so cache
	// revalidation bursts after a mutation do not serialize against each
	// other — only against writers, which is inherent.
	mu     sync.RWMutex
	pcs    []PC       // guarded by mu
	ids    []PCID     // guarded by mu
	shared bool       // guarded by mu; pcs/ids are aliased by the cached snapshot
	epoch  uint64     // guarded by mu
	nextID PCID       // guarded by mu
	snap   *Snapshot  // guarded by mu; cached snapshot of the current state (nil until asked)
	hook   CommitHook // guarded by mu; fired after every committed mutation
	// hooks are additional commit observers (AddCommitHook), fired after the
	// primary hook in registration order. Removed hooks leave a nil slot so
	// registration order — and therefore firing order — is stable.
	hooks []CommitHook // guarded by mu

	// log records, per epoch, the predicate boxes touched by that mutation;
	// it covers epochs (logFloor, epoch]. Bounded: once trimmed, scoped cache
	// validation over the trimmed range degrades to conservative invalidation.
	log      []mutRecord // guarded by mu
	logFloor uint64      // guarded by mu

	// Closure tracking is decoupled from mu so the (potentially expensive)
	// SAT work in Closed/Uncovered never blocks the serving path: mutators
	// only enqueue small delta records under opsMu; the tracker itself is
	// built lazily and brought up to date under closureMu when queried.
	opsMu       sync.Mutex
	closureOps  []closureOp // guarded by opsMu
	opsOverflow bool        // guarded by opsMu; queue was capped; next query rebuilds from a snapshot

	closureMu     sync.Mutex
	closure       *sat.Incremental // guarded by closureMu
	closureSolver *sat.Solver      // guarded by closureMu
	closureEpoch  uint64           // guarded by closureMu; store epoch the tracker reflects
}

// closureOp is one queued mutation delta for the closure tracker.
type closureOp struct {
	epoch uint64
	kind  opKind
	id    PCID
	box   domain.Box // add/replace only
}

type opKind uint8

const (
	opAdd opKind = iota
	opRemove
	opReplace
)

// maxClosureOps bounds the pending-delta queue when Closed is never called;
// past it the queue is dropped and the next query rebuilds from a snapshot.
const maxClosureOps = 4096

// mutRecord is one mutation's imprint: the epoch it produced and the
// predicate boxes of every constraint it added, removed, or replaced (both
// the old and the new box for Replace).
type mutRecord struct {
	epoch uint64
	boxes []domain.Box
}

// maxMutLog bounds the mutation log. Cache entries older than the log window
// are invalidated conservatively rather than revalidated.
const maxMutLog = 512

// MutKind discriminates replayable mutation records.
type MutKind uint8

const (
	// MutAdd records an AddPCs call: PCs are the added constraints, IDs the
	// stable ids they were assigned, positionally aligned.
	MutAdd MutKind = iota + 1
	// MutRemove records a Remove call: IDs holds the one retired id.
	MutRemove
	// MutReplace records a Replace call: IDs holds the kept id, PCs the one
	// new constraint.
	MutReplace
)

func (k MutKind) String() string {
	switch k {
	case MutAdd:
		return "add"
	case MutRemove:
		return "remove"
	case MutReplace:
		return "replace"
	default:
		return fmt.Sprintf("MutKind(%d)", int(k))
	}
}

// MutationRecord is the replayable description of one committed mutation:
// the epoch it produced, and enough payload to reproduce the exact same
// store transition — including id assignment — via ApplyRecord. A store
// rebuilt by replaying a record stream onto the pre-stream state is
// bit-identical (same PCs, ids, epoch, and future id allocation) to the
// store that emitted it; the durability layer (internal/wal) is built on
// exactly this property.
type MutationRecord struct {
	Epoch uint64
	Kind  MutKind
	IDs   []PCID // MutAdd: assigned ids (aligned with PCs); otherwise one id
	PCs   []PC   // MutAdd: added constraints; MutReplace: the new constraint
}

// CommitHook observes committed mutations. It is called synchronously under
// the store's write lock, immediately after the mutation commits and before
// the mutating call returns, so invocations are strictly ordered by epoch.
// Implementations must be fast and must not call back into the store; the
// record's slices are the hook's to keep (they alias nothing store-owned).
type CommitHook func(rec MutationRecord)

// SetCommitHook registers the hook fired on every committed mutation (nil
// unregisters). Replays via ApplyRecord do not fire it — the hook sees only
// new mutations, which is what a write-ahead log wants.
func (s *Store) SetCommitHook(h CommitHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// AddCommitHook registers an additional commit observer alongside the
// primary hook (SetCommitHook, owned by the WAL). Observers fire after the
// primary hook, in registration order, under the same CommitHook contract:
// synchronously under the store's write lock, with a private deep copy of
// the record. The returned function unregisters the observer; it is safe to
// call more than once.
func (s *Store) AddCommitHook(h CommitHook) (remove func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addCommitHookLocked(h)
}

// addCommitHookLocked is AddCommitHook for callers already holding mu, so a
// observer can snapshot the store's current state and start observing with
// no mutation slipping between the two.
func (s *Store) addCommitHookLocked(h CommitHook) (remove func()) {
	i := len(s.hooks)
	s.hooks = append(s.hooks, h)
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.hooks[i] = nil
	}
}

// NewStore creates an empty constraint store over the schema.
func NewStore(schema *domain.Schema) *Store { return &Store{schema: schema} }

// Schema returns the store's schema.
func (s *Store) Schema() *domain.Schema { return s.schema }

// Epoch returns the store's mutation counter: it increases by one on every
// successful Add, Remove, or Replace call.
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Version is an alias of Epoch, kept for callers of the pre-Store API.
func (s *Store) Version() uint64 { return s.Epoch() }

// Len returns the number of constraints.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pcs)
}

// clonePC returns a copy of the constraint that shares no mutable state
// with the original. Pred is immutable by API (predicate.P has no setters
// and Box() returns a clone), so sharing the pointer is safe; Values is a
// raw box slice and must be cloned on both ingest and egress, or a caller
// mutating it would silently corrupt the store, every outstanding snapshot,
// and every cached decomposition referencing it.
func clonePC(pc PC) PC {
	pc.Values = pc.Values.Clone()
	return pc
}

// clonePCs deep-copies a constraint slice (see clonePC).
func clonePCs(pcs []PC) []PC {
	out := make([]PC, len(pcs))
	for i, pc := range pcs {
		out[i] = clonePC(pc)
	}
	return out
}

// validatePC checks a constraint against the store's schema.
func (s *Store) validatePC(pc PC) error {
	if pc.Pred == nil {
		return errors.New("core: predicate-constraint with nil predicate")
	}
	if pc.Pred.Schema() != s.schema {
		return errors.New("core: predicate-constraint over a different schema")
	}
	if len(pc.Values) != s.schema.Len() {
		return fmt.Errorf("core: value box has %d dims, schema has %d", len(pc.Values), s.schema.Len())
	}
	if pc.KLo < 0 || pc.KLo > pc.KHi {
		return fmt.Errorf("core: invalid frequency window [%d, %d]", pc.KLo, pc.KHi)
	}
	return nil
}

// detachLocked makes the store sole owner of its PC slices (copying them if a
// snapshot aliases them) and drops the cached snapshot. Callers must hold mu
// and must be about to mutate.
func (s *Store) detachLocked() {
	if s.shared {
		s.pcs = append([]PC(nil), s.pcs...)
		s.ids = append([]PCID(nil), s.ids...)
		s.shared = false
	}
	s.snap = nil
}

// commitLocked finishes a mutation: bumps the epoch and appends the touched
// boxes to the mutation log.
func (s *Store) commitLocked(boxes []domain.Box) {
	s.epoch++
	s.log = append(s.log, mutRecord{epoch: s.epoch, boxes: boxes})
	if len(s.log) > maxMutLog {
		drop := len(s.log) - maxMutLog
		s.logFloor = s.log[drop-1].epoch
		s.log = append(s.log[:0], s.log[drop:]...)
	}
}

// recordClosureOps enqueues closure deltas for the epoch just committed.
// Cheap by design (no SAT work): the tracker catches up lazily on the next
// Closed/Uncovered call. Callers hold mu; lock order is mu → opsMu.
func (s *Store) recordClosureOps(ops ...closureOp) {
	s.opsMu.Lock()
	if len(s.closureOps)+len(ops) > maxClosureOps {
		s.closureOps = nil
		s.opsOverflow = true
	} else {
		s.closureOps = append(s.closureOps, ops...)
	}
	s.opsMu.Unlock()
}

// Add appends predicate-constraints to the store (one epoch bump for the
// whole call).
func (s *Store) Add(pcs ...PC) error {
	_, err := s.AddPCs(pcs...)
	return err
}

// AddPCs appends predicate-constraints and returns their stable ids.
func (s *Store) AddPCs(pcs ...PC) ([]PCID, error) {
	if len(pcs) == 0 {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pc := range pcs {
		if err := s.validatePC(pc); err != nil {
			return nil, err
		}
	}
	ids := make([]PCID, len(pcs))
	for i := range pcs {
		s.nextID++
		ids[i] = s.nextID
	}
	s.applyAddLocked(pcs, ids)
	s.fireHookLocked(MutAdd, ids, pcs)
	return ids, nil
}

// applyAddLocked appends validated constraints under the given ids and
// commits the epoch bump. Shared by AddPCs (fresh ids) and ApplyRecord
// (replayed ids); the id allocator's high-water mark follows the largest id
// seen either way.
func (s *Store) applyAddLocked(pcs []PC, ids []PCID) {
	s.detachLocked()
	boxes := make([]domain.Box, len(pcs))
	for i, pc := range pcs {
		s.pcs = append(s.pcs, clonePC(pc))
		s.ids = append(s.ids, ids[i])
		if ids[i] > s.nextID {
			s.nextID = ids[i]
		}
		boxes[i] = pc.Pred.Box()
	}
	s.commitLocked(boxes)
	ops := make([]closureOp, len(ids))
	for i, id := range ids {
		ops[i] = closureOp{epoch: s.epoch, kind: opAdd, id: id, box: boxes[i]}
	}
	s.recordClosureOps(ops...)
}

// fireHookLocked hands the commit hook its mutation record (see CommitHook).
// The payload is deep-copied so the hook may keep it without aliasing either
// the caller's or the store's state.
func (s *Store) fireHookLocked(kind MutKind, ids []PCID, pcs []PC) {
	if s.hook != nil {
		s.hook(s.recordLocked(kind, ids, pcs))
	}
	s.fireObserversLocked(kind, ids, pcs)
}

// fireObserversLocked notifies the commit observers (AddCommitHook) without
// touching the primary hook. Replication uses this directly: a follower's
// derived state (the summary overlay) must track replicated commits, but
// the primary hook is the WAL's — re-logging replayed history would fork it.
func (s *Store) fireObserversLocked(kind MutKind, ids []PCID, pcs []PC) {
	for _, h := range s.hooks {
		if h != nil {
			// Each observer gets its own copy: the record's slices are the
			// hook's to keep, so they cannot be shared between hooks.
			h(s.recordLocked(kind, ids, pcs))
		}
	}
}

// recordLocked builds a deep-copied mutation record at the current epoch.
func (s *Store) recordLocked(kind MutKind, ids []PCID, pcs []PC) MutationRecord {
	rec := MutationRecord{Epoch: s.epoch, Kind: kind, IDs: append([]PCID(nil), ids...)}
	if len(pcs) > 0 {
		rec.PCs = clonePCs(pcs)
	}
	return rec
}

// MustAdd is Add that panics on error.
func (s *Store) MustAdd(pcs ...PC) {
	if err := s.Add(pcs...); err != nil {
		panic(err)
	}
}

// indexOfLocked returns the position of id, or -1.
func (s *Store) indexOfLocked(id PCID) int {
	for i, got := range s.ids {
		if got == id {
			return i
		}
	}
	return -1
}

// Remove retracts the constraint with the given id.
func (s *Store) Remove(id PCID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.indexOfLocked(id)
	if i < 0 {
		return fmt.Errorf("core: no constraint with id %d", id)
	}
	s.applyRemoveLocked(i, id)
	s.fireHookLocked(MutRemove, []PCID{id}, nil)
	return nil
}

// applyRemoveLocked retracts the constraint at index i (holding id) and
// commits the epoch bump. Shared by Remove and ApplyRecord.
func (s *Store) applyRemoveLocked(i int, id PCID) {
	box := s.pcs[i].Pred.Box()
	s.detachLocked()
	s.pcs = append(s.pcs[:i], s.pcs[i+1:]...)
	s.ids = append(s.ids[:i], s.ids[i+1:]...)
	s.commitLocked([]domain.Box{box})
	s.recordClosureOps(closureOp{epoch: s.epoch, kind: opRemove, id: id})
}

// Replace swaps the constraint with the given id for a new one, keeping the
// id and the position (typical for tightening a constraint in place).
func (s *Store) Replace(id PCID, pc PC) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.indexOfLocked(id)
	if i < 0 {
		return fmt.Errorf("core: no constraint with id %d", id)
	}
	if err := s.validatePC(pc); err != nil {
		return err
	}
	s.applyReplaceLocked(i, id, pc)
	s.fireHookLocked(MutReplace, []PCID{id}, []PC{pc})
	return nil
}

// applyReplaceLocked swaps the constraint at index i (holding id) for the
// validated pc and commits the epoch bump. Shared by Replace and ApplyRecord.
func (s *Store) applyReplaceLocked(i int, id PCID, pc PC) {
	oldBox := s.pcs[i].Pred.Box()
	newBox := pc.Pred.Box()
	s.detachLocked()
	s.pcs[i] = clonePC(pc)
	s.commitLocked([]domain.Box{oldBox, newBox})
	s.recordClosureOps(closureOp{epoch: s.epoch, kind: opReplace, id: id, box: newBox})
}

// ApplyRecord replays one previously recorded mutation onto the store,
// reproducing the exact transition the record describes: the same
// constraints, the same stable ids, the same epoch, and the same future id
// allocation. Records must be applied in order — rec.Epoch must be exactly
// the store's epoch plus one — and must be consistent with the store (adds
// must not collide with live ids, removes and replaces must resolve). The
// commit hook is not fired: replay reconstructs history, it does not make
// new history.
func (s *Store) ApplyRecord(rec MutationRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyRecordLocked(rec)
}

// ApplyReplicated applies one record shipped from a primary's log onto a
// follower store. It validates and applies exactly like ApplyRecord, but
// fires the commit observers (AddCommitHook) so derived state — the summary
// overlay — tracks the replicated commit. The primary hook (SetCommitHook)
// still does not fire: that hook belongs to a WAL manager, and a follower
// must not re-log history it is receiving.
func (s *Store) ApplyReplicated(rec MutationRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.applyRecordLocked(rec); err != nil {
		return err
	}
	s.fireObserversLocked(rec.Kind, rec.IDs, rec.PCs)
	return nil
}

// applyRecordLocked validates and applies one replay/replication record.
func (s *Store) applyRecordLocked(rec MutationRecord) error {
	if rec.Epoch != s.epoch+1 {
		return fmt.Errorf("core: replay gap: record epoch %d does not follow store epoch %d", rec.Epoch, s.epoch)
	}
	switch rec.Kind {
	case MutAdd:
		if len(rec.PCs) == 0 || len(rec.IDs) != len(rec.PCs) {
			return fmt.Errorf("core: malformed add record at epoch %d: %d ids for %d constraints", rec.Epoch, len(rec.IDs), len(rec.PCs))
		}
		for _, pc := range rec.PCs {
			if err := s.validatePC(pc); err != nil {
				return fmt.Errorf("core: add record at epoch %d: %w", rec.Epoch, err)
			}
		}
		for i, id := range rec.IDs {
			if id == 0 {
				return fmt.Errorf("core: add record at epoch %d assigns id 0", rec.Epoch)
			}
			if s.indexOfLocked(id) >= 0 {
				return fmt.Errorf("core: add record at epoch %d reuses live id %d", rec.Epoch, id)
			}
			for _, prev := range rec.IDs[:i] {
				if prev == id {
					return fmt.Errorf("core: add record at epoch %d assigns id %d twice", rec.Epoch, id)
				}
			}
		}
		s.applyAddLocked(rec.PCs, rec.IDs)
	case MutRemove:
		if len(rec.IDs) != 1 || len(rec.PCs) != 0 {
			return fmt.Errorf("core: malformed remove record at epoch %d", rec.Epoch)
		}
		i := s.indexOfLocked(rec.IDs[0])
		if i < 0 {
			return fmt.Errorf("core: remove record at epoch %d names unknown id %d", rec.Epoch, rec.IDs[0])
		}
		s.applyRemoveLocked(i, rec.IDs[0])
	case MutReplace:
		if len(rec.IDs) != 1 || len(rec.PCs) != 1 {
			return fmt.Errorf("core: malformed replace record at epoch %d", rec.Epoch)
		}
		i := s.indexOfLocked(rec.IDs[0])
		if i < 0 {
			return fmt.Errorf("core: replace record at epoch %d names unknown id %d", rec.Epoch, rec.IDs[0])
		}
		if err := s.validatePC(rec.PCs[0]); err != nil {
			return fmt.Errorf("core: replace record at epoch %d: %w", rec.Epoch, err)
		}
		s.applyReplaceLocked(i, rec.IDs[0], rec.PCs[0])
	default:
		return fmt.Errorf("core: unknown mutation kind %d at epoch %d", rec.Kind, rec.Epoch)
	}
	return nil
}

// RestoreStore rebuilds a store from externally captured state: the
// constraint multiset with its stable ids, the epoch counter, and the id
// allocator's high-water mark — exactly what a durability checkpoint
// persists (see internal/wal). The restored store numbers epochs and ids
// exactly where the captured store would have, so applying the same
// mutations to both yields bit-identical stores. Its mutation log starts
// empty with the floor at the restored epoch, so engine caches revalidate
// conservatively across the restore boundary rather than trusting a window
// the restored store cannot vouch for.
func RestoreStore(schema *domain.Schema, pcs []PC, ids []PCID, epoch uint64, nextID PCID) (*Store, error) {
	if len(pcs) != len(ids) {
		return nil, fmt.Errorf("core: restore has %d constraints but %d ids", len(pcs), len(ids))
	}
	s := &Store{schema: schema, epoch: epoch, nextID: nextID, logFloor: epoch}
	seen := make(map[PCID]bool, len(ids))
	for i, pc := range pcs {
		if err := s.validatePC(pc); err != nil {
			return nil, fmt.Errorf("core: restore constraint %d: %w", i, err)
		}
		id := ids[i]
		if id == 0 || id > nextID {
			return nil, fmt.Errorf("core: restore constraint %d: id %d outside allocator high-water %d", i, id, nextID)
		}
		if seen[id] {
			return nil, fmt.Errorf("core: restore constraint %d: duplicate id %d", i, id)
		}
		seen[id] = true
	}
	s.pcs = clonePCs(pcs)
	s.ids = append([]PCID(nil), ids...)
	return s, nil
}

// Get returns a copy of the constraint with the given id (mutating the
// returned PC never affects the store).
func (s *Store) Get(id PCID) (PC, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i := s.indexOfLocked(id); i >= 0 {
		return clonePC(s.pcs[i]), true
	}
	return PC{}, false
}

// Snapshot returns an immutable view of the store's current state. Snapshots
// are copy-on-write: taking one is O(1) and repeated calls between mutations
// return the same object; the first mutation afterwards copies the PC slice
// once, so outstanding snapshots are never perturbed.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap == nil {
		s.snap = &Snapshot{
			store:  s,
			schema: s.schema,
			pcs:    s.pcs,
			ids:    s.ids,
			epoch:  s.epoch,
			nextID: s.nextID,
		}
		s.shared = true
	}
	return s.snap
}

// unchangedWithin reports whether no mutation with epoch in (from, to]
// touched a predicate box overlapping base on the schema lattice. It returns
// false conservatively when the mutation log no longer reaches back to from.
func (s *Store) unchangedWithin(base domain.Box, from, to uint64) bool {
	if from > to {
		from, to = to, from
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if from < s.logFloor {
		return false
	}
	// The log is epoch-sorted and append-only: binary-search the start of
	// the (from, to] window instead of scanning from the front.
	i := sort.Search(len(s.log), func(i int) bool { return s.log[i].epoch > from })
	for ; i < len(s.log) && s.log[i].epoch <= to; i++ {
		for _, b := range s.log[i].boxes {
			if !base.Intersect(b).EmptyFor(s.schema) {
				return false
			}
		}
	}
	return true
}

// syncClosure brings the incremental closure tracker up to date. Callers
// hold closureMu (never mu), so the SAT work here cannot block writers,
// Snapshot/Rebind, or the cache's mutation-log checks. Lock order:
// closureMu → {mu (via Snapshot), opsMu}; mutators take mu → opsMu; the
// graph is acyclic.
//
//pcvet:locked closureMu
func (s *Store) syncClosure(solver *sat.Solver) {
	s.opsMu.Lock()
	ops := s.closureOps
	s.closureOps = nil
	overflow := s.opsOverflow
	s.opsOverflow = false
	s.opsMu.Unlock()

	if s.closure == nil || s.closureSolver != solver || overflow {
		// Rebuild from a snapshot taken AFTER draining the queue: the drained
		// ops are all covered by the snapshot, and any op racing in between
		// stays queued — the epoch guard below skips it next time if the
		// snapshot already includes it.
		snap := s.Snapshot()
		s.closure = sat.NewIncremental(solver, s.schema.FullBox())
		s.closureSolver = solver
		for i, pc := range snap.pcs {
			s.closure.Add(uint64(snap.ids[i]), pc.Pred.Box())
		}
		s.closureEpoch = snap.epoch
		return
	}
	for _, op := range ops {
		if op.epoch <= s.closureEpoch {
			continue // already reflected by an earlier rebuild
		}
		switch op.kind {
		case opAdd:
			s.closure.Add(uint64(op.id), op.box)
		case opRemove:
			s.closure.Remove(uint64(op.id))
		case opReplace:
			s.closure.Replace(uint64(op.id), op.box)
		}
	}
	if n := len(ops); n > 0 && ops[n-1].epoch > s.closureEpoch {
		s.closureEpoch = ops[n-1].epoch
	}
}

// Closed reports whether the store is closed over the schema domain
// (Definition 3.2): every point of the domain satisfies at least one
// predicate. The check is maintained incrementally across mutations (see
// sat.Incremental); Snapshot.Closed is the stateless reference it is
// differentially tested against. The answer reflects every mutation that
// completed before the call.
func (s *Store) Closed(solver *sat.Solver) bool {
	s.closureMu.Lock()
	defer s.closureMu.Unlock()
	s.syncClosure(solver)
	return s.closure.Covered()
}

// Uncovered returns a witness point of the domain not covered by any
// predicate, if the store is not closed.
func (s *Store) Uncovered(solver *sat.Solver) (domain.Row, bool) {
	s.closureMu.Lock()
	defer s.closureMu.Unlock()
	s.syncClosure(solver)
	return s.closure.Witness()
}

// PCs returns a copy of the current constraints. Callers may mutate the
// returned slice freely; the store's own state is never exposed.
func (s *Store) PCs() []PC { return s.Snapshot().PCs() }

// IDs returns the stable ids of the current constraints, positionally
// aligned with PCs().
func (s *Store) IDs() []PCID { return s.Snapshot().IDs() }

// Predicates returns the ψ of each constraint, in order.
func (s *Store) Predicates() []*predicate.P { return s.Snapshot().Predicates() }

// Validate checks every constraint against a historical relation instance,
// returning one error per violated constraint.
func (s *Store) Validate(rows []domain.Row) []error { return s.Snapshot().Validate(rows) }

// Disjoint reports whether all predicates are pairwise non-overlapping on
// the schema lattice (the greedy fast-path qualification, Section 4.2).
func (s *Store) Disjoint() bool { return s.Snapshot().Disjoint() }

// TotalKLo returns the sum of frequency lower bounds.
func (s *Store) TotalKLo() int { return s.Snapshot().TotalKLo() }

// MaxAbsValue returns the largest absolute value the named attribute can
// take under any constraint.
func (s *Store) MaxAbsValue(attr string) float64 { return s.Snapshot().MaxAbsValue(attr) }

// Set is the pre-refactor name of the constraint store; prefer Store in new
// code. The alias keeps existing call sites compiling; the semantics differ
// in one way from the old append-only Set: engines bind to a Snapshot at
// construction time, so mutations after NewEngine are only visible through
// Engine.Rebind (or a new engine).
type Set = Store

// NewSet creates an empty constraint store over the schema (the
// pre-refactor name of NewStore; prefer NewStore in new code).
func NewSet(schema *domain.Schema) *Store { return NewStore(schema) }

// Snapshot is an immutable view of a Store at one epoch. It is safe for
// unlimited concurrent readers; all derived analyses (disjointness, bounds,
// decompositions) are pure functions of its contents.
//
// pcvet:immutable — no slice or map reachable from a Snapshot may be
// written after construction (enforced by the snapmut analyzer).
type Snapshot struct {
	store  *Store
	schema *domain.Schema
	pcs    []PC
	ids    []PCID
	epoch  uint64
	nextID PCID

	disjointOnce sync.Once
	disjoint     bool
}

// Store returns the store this snapshot was taken from.
func (sn *Snapshot) Store() *Store { return sn.store }

// Epoch returns the store epoch the snapshot is pinned to.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// NextID returns the id allocator's high-water mark at the snapshot's epoch:
// the largest PCID the store had ever assigned. Checkpoint/restore needs it
// (RestoreStore) so a restored store assigns future ids exactly as the
// captured one would have — removing the constraint with the highest id
// leaves the high-water mark above any live id.
func (sn *Snapshot) NextID() PCID { return sn.nextID }

// Schema returns the snapshot's schema.
func (sn *Snapshot) Schema() *domain.Schema { return sn.schema }

// Len returns the number of constraints.
func (sn *Snapshot) Len() int { return len(sn.pcs) }

// PCs returns a deep copy of the constraints (value boxes included), so the
// snapshot's own view stays immutable no matter what callers do with the
// copy. Predicates are shared: predicate.P is immutable by API.
func (sn *Snapshot) PCs() []PC { return clonePCs(sn.pcs) }

// IDs returns the constraints' stable ids, positionally aligned with PCs().
func (sn *Snapshot) IDs() []PCID { return append([]PCID(nil), sn.ids...) }

// Predicates returns the ψ of each constraint, in order.
func (sn *Snapshot) Predicates() []*predicate.P {
	out := make([]*predicate.P, len(sn.pcs))
	for i, pc := range sn.pcs {
		out[i] = pc.Pred
	}
	return out
}

// Closed reports whether the snapshot is closed over the schema domain. This
// is the stateless reference implementation: it re-solves coverage from
// scratch (the store-level incremental tracker is tested against it).
func (sn *Snapshot) Closed(solver *sat.Solver) bool {
	neg := make([]domain.Box, len(sn.pcs))
	for i, pc := range sn.pcs {
		neg[i] = pc.Pred.Box()
	}
	// Closed iff (domain \ ∪ψᵢ) is empty.
	return !solver.SatBoxes(sn.schema.FullBox(), neg)
}

// Uncovered returns a witness point of the domain not covered by any
// predicate, if the snapshot is not closed.
func (sn *Snapshot) Uncovered(solver *sat.Solver) (domain.Row, bool) {
	neg := make([]domain.Box, len(sn.pcs))
	for i, pc := range sn.pcs {
		neg[i] = pc.Pred.Box()
	}
	boxes := solver.RemainderBoxes(sn.schema.FullBox(), neg)
	if len(boxes) == 0 {
		return nil, false
	}
	return boxes[0].Representative(sn.schema), true
}

// Validate checks every constraint against a historical relation instance,
// returning one error per violated constraint. This implements the paper's
// "constraints are efficiently testable on historical data" property.
func (sn *Snapshot) Validate(rows []domain.Row) []error {
	var errs []error
	for _, pc := range sn.pcs {
		if err := pc.SatisfiedBy(rows); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// Disjoint reports whether all predicates are pairwise non-overlapping on
// the schema lattice. Disjoint snapshots qualify for the greedy fast path
// (Section 4.2 "Faster Algorithm in Special Cases"). Computed lazily, once
// per snapshot.
func (sn *Snapshot) Disjoint() bool {
	sn.disjointOnce.Do(func() {
		sn.disjoint = true
		boxes := make([]domain.Box, len(sn.pcs))
		for i, pc := range sn.pcs {
			boxes[i] = pc.Pred.Box()
		}
		for i := 0; i < len(boxes) && sn.disjoint; i++ {
			for j := i + 1; j < len(boxes); j++ {
				if !boxes[i].Intersect(boxes[j]).EmptyFor(sn.schema) {
					sn.disjoint = false
					break
				}
			}
		}
	})
	return sn.disjoint
}

// TotalKLo returns the sum of frequency lower bounds — the minimum number of
// missing rows any valid instance must contain (only exact for disjoint
// snapshots; for overlapping ones it is an upper bound on that minimum).
func (sn *Snapshot) TotalKLo() int {
	t := 0
	for _, pc := range sn.pcs {
		t += pc.KLo
	}
	return t
}

// MaxAbsValue returns the largest absolute value the named attribute can
// take under any constraint (used to scale AVG binary searches).
func (sn *Snapshot) MaxAbsValue(attr string) float64 {
	i := sn.schema.MustIndex(attr)
	m := 0.0
	for _, pc := range sn.pcs {
		m = math.Max(m, math.Abs(pc.Values[i].Lo))
		m = math.Max(m, math.Abs(pc.Values[i].Hi))
	}
	return m
}
