package core

import (
	"sync"
	"sync/atomic"

	"pcbound/internal/domain"
)

// This file implements the epoch-interval cache mechanism shared by the
// decomposition cache (decompCache in batch.go) and the per-cell bound cache
// (cellcache.go). Both memoize pure functions of a region of the constraint
// store: entries carry the region box they were computed over plus the epoch
// interval [lo, hi] they are known valid for, and validity extends across
// store mutations whose predicate boxes do not overlap the region (scoped
// invalidation, consulting the store's bounded mutation log). The cached
// value type is opaque here; each wrapper documents what it stores and why a
// hit is bit-identical to recomputation.

// epochEntry is one cached value together with the epoch interval [lo, hi]
// over which it is known valid. base is the region the value was computed
// over; validity extends across a mutation exactly when no touched predicate
// box overlaps base on the schema lattice (the same overlap test Decompose
// uses to drop predicates from the branching set, so "no overlap" means a
// fresh computation would see the identical inputs and produce a
// bit-identical value).
type epochEntry struct {
	val    any
	base   domain.Box
	lo, hi uint64 // guarded by epochCache.mu
	// used is the cache's logical clock at the entry's last hit, so per-key
	// eviction can drop the least-recently-used interval instead of
	// starving a still-active snapshot-pinned reader.
	used atomic.Int64
}

// maxEntriesPerKey bounds the epoch-interval entries kept per key: one for
// the store's frontier plus one for an engine pinned to an older snapshot
// (the auditor pattern), so neither starves the other out of the cache when
// the region was mutated in between.
const maxEntriesPerKey = 2

// epochCache memoizes values by string key with epoch-interval validity.
// Entries are immutable values shared by all readers and all engines in a
// Rebind lineage. Store mutations do NOT flush the cache: get() consults the
// store's mutation log and retains every entry whose region no mutation
// touched (scoped invalidation), extending its validity interval; only
// entries overlapping a changed predicate box are dropped from consideration
// for the new epoch. Each key holds up to maxEntriesPerKey disjoint validity
// intervals, so a frontier engine and a snapshot-pinned one can both stay
// cached across a mutation that touched the region. When two goroutines race
// to compute the same key, both compute it (the result is identical either
// way) and one insertion wins; this keeps the fast path lock-cheap without a
// per-key singleflight.
type epochCache struct {
	store   *Store
	mu      sync.RWMutex
	entries map[string][]*epochEntry
	max     int
	clock   atomic.Int64 // logical time for LRU stamps

	hits, misses, retained, invalidated atomic.Int64
}

func newEpochCache(max int, store *Store) *epochCache {
	return &epochCache{store: store, entries: make(map[string][]*epochEntry), max: max}
}

func (c *epochCache) get(key string, epoch uint64) (any, bool) {
	// Direct containment: the steady-state hit path, allocation-free.
	c.mu.RLock()
	ens := c.entries[key]
	for _, en := range ens {
		if epoch >= en.lo && epoch <= en.hi {
			val := en.val
			en.used.Store(c.clock.Add(1))
			c.mu.RUnlock()
			c.hits.Add(1)
			return val, true
		}
	}
	// No direct hit: snapshot the intervals for the extension decisions,
	// which run without the lock (they consult the store's mutation log).
	type view struct {
		en     *epochEntry
		lo, hi uint64
	}
	views := make([]view, len(ens))
	for i, en := range ens {
		views[i] = view{en, en.lo, en.hi}
	}
	c.mu.RUnlock()
	// Forward extension from the entry ending closest below epoch.
	var fwd *view
	for i := range views {
		if views[i].hi < epoch && (fwd == nil || views[i].hi > fwd.hi) {
			fwd = &views[i]
		}
	}
	if fwd != nil {
		if c.store.unchangedWithin(fwd.en.base, fwd.hi, epoch) {
			c.extend(key, fwd.en, epoch, true)
			fwd.en.used.Store(c.clock.Add(1))
			c.retained.Add(1)
			c.hits.Add(1)
			return fwd.en.val, true
		}
		// A mutation touched this region after the entry's validity window.
		// The entry is stale for this epoch but still exact over its own
		// [lo, hi] interval, so keep it for snapshot-pinned engines; the
		// per-key cap bounds accumulation when the frontier repopulates.
		c.invalidated.Add(1)
	}
	// Backward extension: an engine bound to an older snapshot probing an
	// entry created later. If nothing touching the region happened in
	// between, the value is the same and validity extends backwards.
	var bwd *view
	for i := range views {
		if views[i].lo > epoch && (bwd == nil || views[i].lo < bwd.lo) {
			bwd = &views[i]
		}
	}
	if bwd != nil && c.store.unchangedWithin(bwd.en.base, epoch, bwd.lo) {
		c.extend(key, bwd.en, epoch, false)
		bwd.en.used.Store(c.clock.Add(1))
		c.retained.Add(1)
		c.hits.Add(1)
		return bwd.en.val, true
	}
	c.misses.Add(1)
	return nil, false
}

// extend widens an entry's validity interval to include epoch, unless the
// entry was concurrently evicted.
func (c *epochCache) extend(key string, en *epochEntry, epoch uint64, forward bool) {
	c.mu.Lock()
	for _, cur := range c.entries[key] {
		if cur == en {
			if forward && en.hi < epoch {
				en.hi = epoch
			} else if !forward && en.lo > epoch {
				en.lo = epoch
			}
			break
		}
	}
	c.mu.Unlock()
}

func (c *epochCache) put(key string, base domain.Box, val any, epoch uint64) {
	en := &epochEntry{val: val, base: base, lo: epoch, hi: epoch}
	en.used.Store(c.clock.Add(1))
	c.mu.Lock()
	defer c.mu.Unlock()
	ens := c.entries[key]
	for _, cur := range ens {
		if epoch >= cur.lo && epoch <= cur.hi {
			return // a racer already covers this epoch
		}
	}
	if len(ens) == 0 && len(c.entries) >= c.max {
		// At capacity, evict an arbitrary key (map iteration order) rather
		// than refusing the insert: entries survive mutations, so a workload
		// whose region set drifts past the capacity would otherwise lock the
		// cache into regions it never queries again. Eviction can only cost
		// a recomputation, never change a result.
		//pcvet:ignore determinism eviction victim choice is deliberately arbitrary; a miss costs a recompute, never a different bound
		for victim := range c.entries {
			delete(c.entries, victim)
			break
		}
	}
	ens = append(ens, en)
	if len(ens) > maxEntriesPerKey {
		// Drop the least-recently-used resident interval, but never the
		// entry just inserted — evicting the newcomer would permanently
		// starve the engine that computed it. LRU (rather than smallest-hi)
		// keeps a long-lived snapshot-pinned reader's entry alive across
		// frontier churn: a dead old frontier interval is untouched since
		// its last repopulation, while the pinned reader re-stamps its entry
		// on every hit.
		low := -1
		for i, cur := range ens {
			if cur == en {
				continue
			}
			if low < 0 || cur.used.Load() < ens[low].used.Load() {
				low = i
			}
		}
		ens = append(ens[:low], ens[low+1:]...)
	}
	c.entries[key] = ens
}

// stats exports the cache's counters in the shared CacheStats shape.
func (c *epochCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Retained:    c.retained.Load(),
		Invalidated: c.invalidated.Load(),
	}
}
