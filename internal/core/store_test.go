package core

import (
	"math/rand"
	"sync"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/sat"
)

// randPC draws a random predicate-constraint over the sales schema: a random
// utc×branch predicate box, a random price value ceiling, and a random
// frequency window.
func randPC(rng *rand.Rand, s *domain.Schema) PC {
	uLo := rng.Intn(28)
	uHi := uLo + 1 + rng.Intn(30-uLo)
	b := predicate.NewBuilder(s).Range("utc", float64(uLo), float64(uHi))
	if rng.Intn(2) == 0 {
		bLo := rng.Intn(2)
		b = b.Range("branch", float64(bLo), float64(bLo+rng.Intn(3-bLo)))
	}
	vLo := rng.Float64() * 20
	vHi := vLo + 1 + rng.Float64()*80
	kLo := rng.Intn(4)
	kHi := kLo + rng.Intn(12)
	return MustPC(b.Build(), map[string]domain.Interval{"price": domain.NewInterval(vLo, vHi)}, kLo, kHi)
}

// mutationQueries is a compact all-aggregate workload over several regions,
// including regions a mutation stream will and will not touch.
func mutationQueries(s *domain.Schema) []Query {
	regions := []*predicate.P{
		nil,
		predicate.NewBuilder(s).Range("utc", 0, 10).Build(),
		predicate.NewBuilder(s).Range("utc", 8, 22).Build(),
		predicate.NewBuilder(s).Range("price", 5, 50).Build(),
	}
	var qs []Query
	for _, where := range regions {
		for _, agg := range []Agg{Count, Sum, Avg, Min, Max} {
			qs = append(qs, Query{Agg: agg, Attr: "price", Where: where})
		}
	}
	return qs
}

// TestStoreMutationDifferential is the acceptance differential: drive a
// randomized sequence of Add/Remove/Replace mutations, and after every
// mutation check that bounding every aggregate against the store's snapshot
// (through Rebind, i.e. with the shared, scoped-invalidation decomposition
// cache) is bit-identical to a freshly constructed Engine over the same PC
// multiset — at parallelism 1 and parallelism N.
func TestStoreMutationDifferential(t *testing.T) {
	s := salesSchema()
	rng := rand.New(rand.NewSource(20260727))
	store := NewStore(s)
	queries := mutationQueries(s)
	opts := Options{DisableFastPath: true}
	e := NewEngine(store, nil, opts)

	var ids []PCID
	steps := 14
	if testing.Short() {
		steps = 6
	}
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(ids) < 2: // add
			got, err := store.AddPCs(randPC(rng, s))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, got...)
		case op == 1: // remove
			i := rng.Intn(len(ids))
			if err := store.Remove(ids[i]); err != nil {
				t.Fatal(err)
			}
			ids = append(ids[:i], ids[i+1:]...)
		default: // replace (tighten in place)
			if err := store.Replace(ids[rng.Intn(len(ids))], randPC(rng, s)); err != nil {
				t.Fatal(err)
			}
		}

		e = e.Rebind()
		if e.Snapshot().Epoch() != store.Epoch() {
			t.Fatalf("step %d: rebound engine at epoch %d, store at %d",
				step, e.Snapshot().Epoch(), store.Epoch())
		}

		// Reference: a fresh engine (fresh solver, cold cache) over the same
		// PC multiset, bounded sequentially.
		fresh := NewStore(s)
		fresh.MustAdd(store.PCs()...)
		fe := NewEngine(fresh, nil, opts)
		want, err := fe.BoundBatch(queries, BatchOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}

		for _, par := range []int{1, 4} {
			got, err := e.BoundBatch(queries, BatchOptions{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d par=%d query %d (%v over %v): snapshot %+v != fresh %+v",
						step, par, i, queries[i].Agg, queries[i].Where, got[i], want[i])
				}
			}
		}
	}
	if st := e.CacheStats(); st.Retained == 0 {
		t.Errorf("a %d-step mutation stream retained no cache entries across epochs: %+v", steps, st)
	}
}

// TestScopedInvalidationRetainsUntouchedRegions pins down the cache
// contract: after a mutation, cached decompositions for regions the mutation
// cannot influence are retained (and produce identical ranges), while the
// touched region is invalidated and recomputed against the new constraints.
func TestScopedInvalidationRetainsUntouchedRegions(t *testing.T) {
	s := salesSchema()
	store := NewStore(s)
	// Two overlapping PCs in the "early" region and two in the "late" one.
	earlyA := MustPC(predicate.NewBuilder(s).Range("utc", 0, 8).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(0, 40)}, 1, 9)
	earlyB := MustPC(predicate.NewBuilder(s).Range("utc", 4, 12).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(0, 60)}, 0, 7)
	lateA := MustPC(predicate.NewBuilder(s).Range("utc", 18, 26).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(0, 50)}, 2, 8)
	lateB := MustPC(predicate.NewBuilder(s).Range("utc", 22, 30).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(0, 80)}, 0, 6)
	ids, err := store.AddPCs(earlyA, earlyB, lateA, lateB)
	if err != nil {
		t.Fatal(err)
	}

	early := predicate.NewBuilder(s).Range("utc", 0, 12).Build()
	late := predicate.NewBuilder(s).Range("utc", 18, 30).Build()
	e := NewEngine(store, nil, Options{DisableFastPath: true})

	earlyBefore, err := e.Sum("price", early)
	if err != nil {
		t.Fatal(err)
	}
	lateBefore, err := e.Sum("price", late)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("expected 2 cold misses, got %+v", st)
	}

	// Tighten lateB: only the late region's decomposition may be dropped.
	tightened := MustPC(predicate.NewBuilder(s).Range("utc", 22, 30).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(0, 20)}, 0, 4)
	if err := store.Replace(ids[3], tightened); err != nil {
		t.Fatal(err)
	}
	re := e.Rebind()

	earlyAfter, err := re.Sum("price", early)
	if err != nil {
		t.Fatal(err)
	}
	if earlyAfter != earlyBefore {
		t.Errorf("untouched region changed: %+v -> %+v", earlyBefore, earlyAfter)
	}
	st := re.CacheStats()
	if st.Retained != 1 {
		t.Errorf("untouched region not retained across the mutation: %+v", st)
	}
	if st.Invalidated != 0 {
		t.Errorf("invalidation before the touched region was queried: %+v", st)
	}

	lateAfter, err := re.Sum("price", late)
	if err != nil {
		t.Fatal(err)
	}
	if lateAfter.Hi >= lateBefore.Hi {
		t.Errorf("tightened region did not narrow: %+v -> %+v", lateBefore, lateAfter)
	}
	st = re.CacheStats()
	if st.Invalidated != 1 {
		t.Errorf("touched region not invalidated: %+v", st)
	}

	// The recomputed late range must equal a fresh engine's.
	fresh := NewStore(s)
	fresh.MustAdd(store.PCs()...)
	want, err := NewEngine(fresh, nil, Options{DisableFastPath: true}).Sum("price", late)
	if err != nil {
		t.Fatal(err)
	}
	if lateAfter != want {
		t.Errorf("recomputed range %+v != fresh engine %+v", lateAfter, want)
	}
}

// TestPinnedEngineStaysCacheable checks that an engine pinned to an old
// snapshot does not permanently lose caching for a region mutated after its
// epoch: its recomputed decomposition must be admitted alongside the
// frontier entry, so repeated pinned queries hit (the auditor pattern).
func TestPinnedEngineStaysCacheable(t *testing.T) {
	s := salesSchema()
	store := NewStore(s)
	ids, err := store.AddPCs(
		MustPC(predicate.NewBuilder(s).Range("utc", 0, 12).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 40)}, 1, 9),
		MustPC(predicate.NewBuilder(s).Range("utc", 5, 20).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 60)}, 0, 7),
	)
	if err != nil {
		t.Fatal(err)
	}
	region := predicate.NewBuilder(s).Range("utc", 0, 15).Build()
	pinned := NewEngine(store, nil, Options{DisableFastPath: true})
	want, err := pinned.Sum("price", region)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate the region and warm the frontier's cache entry for it.
	if err := store.Replace(ids[0], MustPC(predicate.NewBuilder(s).Range("utc", 0, 12).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(0, 30)}, 1, 8)); err != nil {
		t.Fatal(err)
	}
	frontier := pinned.Rebind()
	if _, err := frontier.Sum("price", region); err != nil {
		t.Fatal(err)
	}

	// The pinned engine's entry stays exact over its own epoch interval, so
	// it keeps hitting alongside the frontier's fresh entry.
	if _, err := pinned.Sum("price", region); err != nil {
		t.Fatal(err)
	}
	before := pinned.CacheStats()
	got, err := pinned.Sum("price", region)
	if err != nil {
		t.Fatal(err)
	}
	after := pinned.CacheStats()
	if after.Hits == before.Hits {
		t.Errorf("pinned engine's recomputed entry was not admitted to the cache: before=%+v after=%+v", before, after)
	}
	if got != want {
		t.Errorf("pinned engine drifted: %+v != %+v", got, want)
	}
	// And the frontier must still hit its own entry too.
	fb := frontier.CacheStats()
	if _, err := frontier.Sum("price", region); err != nil {
		t.Fatal(err)
	}
	if fa := frontier.CacheStats(); fa.Hits == fb.Hits {
		t.Errorf("frontier entry evicted by the pinned engine's insert: %+v -> %+v", fb, fa)
	}

	// Steady mutation churn: each round the frontier repopulates (evicting
	// the per-key LRU interval), and the actively-reading pinned engine must
	// keep hitting — its entry is re-stamped on every hit, so eviction takes
	// the dead old frontier interval instead. Read once first so the pinned
	// entry's LRU stamp reflects an active reader.
	if _, err := pinned.Sum("price", region); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := store.Replace(ids[0], MustPC(predicate.NewBuilder(s).Range("utc", 0, 12).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, float64(25-round))}, 1, 8)); err != nil {
			t.Fatal(err)
		}
		frontier = frontier.Rebind()
		if _, err := frontier.Sum("price", region); err != nil {
			t.Fatal(err)
		}
		hb := pinned.CacheStats().Hits
		got, err := pinned.Sum("price", region)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round %d: pinned engine drifted: %+v != %+v", round, got, want)
		}
		if pinned.CacheStats().Hits == hb {
			t.Errorf("round %d: pinned engine's entry evicted under frontier churn", round)
		}
	}
}

// TestStorePCsCopy is the regression test for the old Set.PCs leak: the
// returned slice must be a copy, so mutating it cannot corrupt engine-owned
// state.
func TestStorePCsCopy(t *testing.T) {
	s := salesSchema()
	store := NewStore(s)
	store.MustAdd(
		MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(0, 100)}, 1, 5),
	)
	snap := store.Snapshot()

	leaked := store.PCs()
	leaked[0].KHi = 99999
	leaked[0].Name = "mutated"
	if got := store.PCs()[0]; got.KHi != 5 || got.Name != "" {
		t.Errorf("store state mutated through PCs(): %+v", got)
	}
	// The copy must be deep: the Values box is a slice, and writing through
	// it must not reach the store, the snapshot, or cached decompositions.
	pi := s.MustIndex("price")
	leaked[0].Values[pi] = domain.NewInterval(0, 1e9)
	if got := store.PCs()[0].Values[pi]; got != domain.NewInterval(0, 100) {
		t.Errorf("store value box mutated through PCs(): %v", got)
	}
	if got := snap.PCs()[0].Values[pi]; got != domain.NewInterval(0, 100) {
		t.Errorf("snapshot value box mutated through store.PCs(): %v", got)
	}
	sl := snap.PCs()
	sl[0].KLo = 42
	sl[0].Values[pi] = domain.NewInterval(5, 6)
	if got := snap.PCs()[0]; got.KLo != 1 || got.Values[pi] != domain.NewInterval(0, 100) {
		t.Errorf("snapshot state mutated through PCs(): %+v", got)
	}
	// Get returns an unaliased copy too.
	gp, ok := store.Get(store.IDs()[0])
	if !ok {
		t.Fatal("Get failed")
	}
	gp.Values[pi] = domain.NewInterval(7, 8)
	if got := store.PCs()[0].Values[pi]; got != domain.NewInterval(0, 100) {
		t.Errorf("store value box mutated through Get(): %v", got)
	}
	// Ingest is defensive as well: mutating a PC after Add must not reach
	// the store.
	ext := MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(),
		map[string]domain.Interval{"price": domain.NewInterval(0, 50)}, 0, 2)
	extIDs, err := store.AddPCs(ext)
	if err != nil {
		t.Fatal(err)
	}
	ext.Values[pi] = domain.NewInterval(0, 1e9)
	if got, _ := store.Get(extIDs[0]); got.Values[pi] != domain.NewInterval(0, 50) {
		t.Errorf("store value box aliased with caller's PC after Add: %v", got.Values[pi])
	}
	idsA := store.IDs()
	idsA[0] = 777
	if store.IDs()[0] == 777 {
		t.Error("store ids mutated through IDs()")
	}
}

// TestStoreCopyOnWriteSnapshots checks the COW mechanics: repeated
// Snapshot() calls between mutations return one object, mutations detach
// without perturbing outstanding snapshots, Replace keeps ids while Remove
// retires them, and errors leave the epoch untouched.
func TestStoreCopyOnWriteSnapshots(t *testing.T) {
	s := salesSchema()
	store := NewStore(s)
	pcA := MustPC(predicate.NewBuilder(s).Eq("branch", 0).Build(), nil, 0, 5)
	pcB := MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(), nil, 1, 3)
	ids, err := store.AddPCs(pcA, pcB)
	if err != nil {
		t.Fatal(err)
	}
	if store.Epoch() != 1 {
		t.Fatalf("epoch after one Add call = %d, want 1", store.Epoch())
	}

	snap1 := store.Snapshot()
	if snap2 := store.Snapshot(); snap2 != snap1 {
		t.Error("Snapshot() between mutations returned distinct objects")
	}
	if snap1.Len() != 2 || snap1.Epoch() != 1 {
		t.Fatalf("snapshot: len=%d epoch=%d", snap1.Len(), snap1.Epoch())
	}

	if err := store.Remove(ids[0]); err != nil {
		t.Fatal(err)
	}
	if store.Epoch() != 2 || store.Len() != 1 {
		t.Fatalf("after remove: epoch=%d len=%d", store.Epoch(), store.Len())
	}
	// Outstanding snapshot unperturbed.
	if snap1.Len() != 2 || snap1.PCs()[0].KHi != 5 {
		t.Errorf("snapshot perturbed by Remove: %+v", snap1.PCs())
	}
	if store.Snapshot() == snap1 {
		t.Error("Snapshot() after mutation returned the stale snapshot")
	}

	// Replace keeps the id in place.
	tight := MustPC(predicate.NewBuilder(s).Eq("branch", 1).Build(), nil, 2, 2)
	if err := store.Replace(ids[1], tight); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Get(ids[1])
	if !ok || got.KLo != 2 || got.KHi != 2 {
		t.Errorf("Get after Replace: %+v ok=%v", got, ok)
	}
	if _, ok := store.Get(ids[0]); ok {
		t.Error("removed id still resolvable")
	}

	// Unknown ids and invalid PCs are errors and do not bump the epoch.
	before := store.Epoch()
	if err := store.Remove(ids[0]); err == nil {
		t.Error("Remove of retired id succeeded")
	}
	if err := store.Replace(PCID(999), tight); err == nil {
		t.Error("Replace of unknown id succeeded")
	}
	other := salesSchema()
	if err := store.Replace(ids[1], MustPC(predicate.True(other), nil, 0, 5)); err == nil {
		t.Error("Replace with foreign-schema PC succeeded")
	}
	if _, err := store.AddPCs(PC{}); err == nil {
		t.Error("AddPCs with nil predicate succeeded")
	}
	if store.Epoch() != before {
		t.Errorf("failed mutations bumped the epoch: %d -> %d", before, store.Epoch())
	}
}

// TestStoreClosedIncrementalMatchesSnapshot differentially tests the
// store-level incremental closure tracker against the stateless
// Snapshot.Closed reference across a mutation stream.
func TestStoreClosedIncrementalMatchesSnapshot(t *testing.T) {
	s := salesSchema()
	rng := rand.New(rand.NewSource(99))
	store := NewStore(s)
	solver := sat.New(s)
	refSolver := sat.New(s)
	var ids []PCID

	check := func(step int) {
		t.Helper()
		inc := store.Closed(solver)
		ref := store.Snapshot().Closed(refSolver)
		if inc != ref {
			t.Fatalf("step %d: incremental Closed=%v, snapshot reference=%v (len=%d)",
				step, inc, ref, store.Len())
		}
		if w, ok := store.Uncovered(solver); ok {
			if inc {
				t.Fatalf("step %d: closed store returned witness %v", step, w)
			}
			for _, pc := range store.PCs() {
				if pc.Pred.Eval(w) {
					t.Fatalf("step %d: witness %v covered by %v", step, w, pc)
				}
			}
		} else if !inc {
			t.Fatalf("step %d: open store returned no witness", step)
		}
	}

	check(-1)
	for step := 0; step < 40; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(ids) < 2:
			got, err := store.AddPCs(randPC(rng, s))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, got...)
		case op == 1:
			i := rng.Intn(len(ids))
			if err := store.Remove(ids[i]); err != nil {
				t.Fatal(err)
			}
			ids = append(ids[:i], ids[i+1:]...)
		default:
			if err := store.Replace(ids[rng.Intn(len(ids))], randPC(rng, s)); err != nil {
				t.Fatal(err)
			}
		}
		check(step)
	}
	// Force full coverage and check the closed answer too.
	if _, err := store.AddPCs(MustPC(predicate.True(s), nil, 0, 100)); err != nil {
		t.Fatal(err)
	}
	if !store.Closed(solver) || !store.Snapshot().Closed(refSolver) {
		t.Error("store with a True predicate not closed")
	}
}

// TestStoreConcurrentWritersAndReaders hammers a store with mutating writers
// while readers bound queries against pinned snapshots and freshly rebound
// engines; run under -race this exercises the COW path, the shared scoped
// cache, and the snapshot isolation guarantee (pinned results never change).
func TestStoreConcurrentWritersAndReaders(t *testing.T) {
	s := salesSchema()
	store := NewStore(s)
	store.MustAdd(
		MustPC(predicate.NewBuilder(s).Range("utc", 0, 12).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(1, 40)}, 2, 9),
		MustPC(predicate.NewBuilder(s).Range("utc", 5, 20).Build(),
			map[string]domain.Interval{"price": domain.NewInterval(3, 60)}, 1, 7),
	)
	pinned := NewEngine(store, nil, Options{DisableFastPath: true})
	queries := mutationQueries(s)[:10]
	want, err := pinned.BoundBatch(queries, BatchOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	rngMu := sync.Mutex{}
	rng := rand.New(rand.NewSource(5))
	nextPC := func() PC {
		rngMu.Lock()
		defer rngMu.Unlock()
		return randPC(rng, s)
	}

	// Writers: add/replace/remove concurrently.
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		writers.Add(1)
		go func() {
			defer wg.Done()
			defer writers.Done()
			var mine []PCID
			for i := 0; i < 30; i++ {
				ids, err := store.AddPCs(nextPC())
				if err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, ids...)
				if len(mine) > 2 {
					if err := store.Replace(mine[0], nextPC()); err != nil {
						t.Error(err)
						return
					}
					if err := store.Remove(mine[1]); err != nil {
						t.Error(err)
						return
					}
					mine = mine[2:]
				}
			}
		}()
	}
	// Readers on the pinned engine: results must stay bit-identical.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := pinned.BoundBatch(queries, BatchOptions{Parallelism: 2})
				if err != nil {
					t.Error(err)
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("pinned engine drifted on query %d: %+v != %+v", i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	// A rebinder: continuously rebinds and bounds whatever state it sees.
	wg.Add(1)
	go func() {
		defer wg.Done()
		e := pinned
		for i := 0; i < 10; i++ {
			e = e.Rebind()
			if _, err := e.BoundBatch(queries[:5], BatchOptions{Parallelism: 2}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// A closure checker: repeatedly syncs the incremental tracker (delta
	// path, one shared solver) while writers enqueue ops concurrently. The
	// strict equality check against the stateless reference only applies
	// when no mutation landed during the sequence (same epoch before and
	// after); racing iterations still exercise closureMu/opsMu under -race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		solver := sat.New(s)
		refSolver := sat.New(s)
		for i := 0; i < 15; i++ {
			e0 := store.Epoch()
			inc := store.Closed(solver)
			ref := store.Snapshot().Closed(refSolver)
			if store.Epoch() == e0 && inc != ref {
				t.Error("incremental closure diverged from snapshot reference")
				return
			}
		}
	}()

	// Release the readers once the writers' mutation stream has run dry, so
	// every reader iteration overlapped live mutations.
	writers.Wait()
	close(stop)
	wg.Wait()
}
