package core

import "pcbound/internal/predicate"

// GroupResult is one group's hard range in a GROUP BY query.
type GroupResult struct {
	Group *predicate.P
	Range Range
}

// GroupBy answers a GROUP BY query as a union of per-group queries
// (Section 2: "GROUP-BY clause can be considered as a union of such queries
// without GROUP-BY"). Each group predicate is conjoined with the query's
// own predicate. Groups whose region cannot contain missing rows still get
// a result (a zero/empty range), so callers can render every group.
//
// Each group's bound routes through the engine's shared scheduler (its cell
// solves fan out instead of serializing) and through the epoch-scoped
// cell-bound cache: groups whose regions decompose into content-identical
// cells — typical when groups slice one attribute while the constraints
// live on others — skip the shared per-cell LP/MILP work after the first
// group solves it (see cellcache.go's cell-scoped keys). Results are
// bit-identical to bounding each group on a fresh sequential engine.
func (e *Engine) GroupBy(q Query, groups []*predicate.P) ([]GroupResult, error) {
	out := make([]GroupResult, 0, len(groups))
	for _, g := range groups {
		gq := q
		if q.Where == nil {
			gq.Where = g
		} else {
			gq.Where = q.Where.And(g)
		}
		r, err := e.Bound(gq)
		if err != nil {
			return nil, err
		}
		out = append(out, GroupResult{Group: g, Range: r})
	}
	return out, nil
}
