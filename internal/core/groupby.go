package core

import "pcbound/internal/predicate"

// GroupResult is one group's hard range in a GROUP BY query.
type GroupResult struct {
	Group *predicate.P
	Range Range
}

// GroupBy answers a GROUP BY query as a union of per-group queries
// (Section 2: "GROUP-BY clause can be considered as a union of such queries
// without GROUP-BY"). Each group predicate is conjoined with the query's
// own predicate. Groups whose region cannot contain missing rows still get
// a result (a zero/empty range), so callers can render every group.
func (e *Engine) GroupBy(q Query, groups []*predicate.P) ([]GroupResult, error) {
	out := make([]GroupResult, 0, len(groups))
	for _, g := range groups {
		gq := q
		if q.Where == nil {
			gq.Where = g
		} else {
			gq.Where = q.Where.And(g)
		}
		r, err := e.Bound(gq)
		if err != nil {
			return nil, err
		}
		out = append(out, GroupResult{Group: g, Range: r})
	}
	return out, nil
}
