package core

import (
	"math"
	"math/rand"
	"testing"

	"pcbound/internal/domain"
)

// equalStores fails the test unless the two stores are bit-identical in
// everything replay is supposed to reproduce: epoch, id allocator, stable
// ids, and every constraint field (value boxes compared bitwise).
func equalStores(t *testing.T, want, got *Store) {
	t.Helper()
	wsn, gsn := want.Snapshot(), got.Snapshot()
	if wsn.Epoch() != gsn.Epoch() {
		t.Fatalf("epoch %d != %d", gsn.Epoch(), wsn.Epoch())
	}
	if wsn.NextID() != gsn.NextID() {
		t.Fatalf("next id %d != %d", gsn.NextID(), wsn.NextID())
	}
	wids, gids := wsn.IDs(), gsn.IDs()
	if len(wids) != len(gids) {
		t.Fatalf("%d constraints, want %d", len(gids), len(wids))
	}
	wpcs, gpcs := wsn.PCs(), gsn.PCs()
	for i := range wids {
		if wids[i] != gids[i] {
			t.Fatalf("constraint %d: id %d != %d", i, gids[i], wids[i])
		}
		w, g := wpcs[i], gpcs[i]
		if w.Name != g.Name || w.KLo != g.KLo || w.KHi != g.KHi {
			t.Fatalf("constraint %d: %+v != %+v", i, g, w)
		}
		wb, gb := w.Pred.Box(), g.Pred.Box()
		for d := range w.Values {
			if math.Float64bits(w.Values[d].Lo) != math.Float64bits(g.Values[d].Lo) ||
				math.Float64bits(w.Values[d].Hi) != math.Float64bits(g.Values[d].Hi) {
				t.Fatalf("constraint %d dim %d: values %v != %v", i, d, g.Values[d], w.Values[d])
			}
			if math.Float64bits(wb[d].Lo) != math.Float64bits(gb[d].Lo) ||
				math.Float64bits(wb[d].Hi) != math.Float64bits(gb[d].Hi) {
				t.Fatalf("constraint %d dim %d: predicate %v != %v", i, d, gb[d], wb[d])
			}
		}
	}
}

// mutateRandomly performs one random mutation, returning the updated live-id
// slice. Identical call sequences on identical stores produce identical
// transitions, which is what the replay tests lean on.
func mutateRandomly(t *testing.T, rng *rand.Rand, s *domain.Schema, store *Store, ids []PCID) []PCID {
	t.Helper()
	switch op := rng.Intn(4); {
	case op <= 1 || len(ids) < 2: // add (batch of 1-2)
		pcs := make([]PC, 1+rng.Intn(2))
		for i := range pcs {
			pcs[i] = randPC(rng, s)
		}
		got, err := store.AddPCs(pcs...)
		if err != nil {
			t.Fatal(err)
		}
		return append(ids, got...)
	case op == 2: // remove
		i := rng.Intn(len(ids))
		if err := store.Remove(ids[i]); err != nil {
			t.Fatal(err)
		}
		return append(ids[:i], ids[i+1:]...)
	default: // replace
		i := rng.Intn(len(ids))
		if err := store.Replace(ids[i], randPC(rng, s)); err != nil {
			t.Fatal(err)
		}
		return ids
	}
}

// TestCommitHookReplay drives a random mutation stream with a commit hook
// attached and replays the captured records onto a second store: the replica
// must be bit-identical after every single record, and keep being so when
// both stores mutate onward — the property the WAL's recovery path rests on.
func TestCommitHookReplay(t *testing.T) {
	s := salesSchema()
	rng := rand.New(rand.NewSource(20260808))
	primary, replica := NewStore(s), NewStore(s)
	var recs []MutationRecord
	primary.SetCommitHook(func(rec MutationRecord) { recs = append(recs, rec) })

	var ids []PCID
	for step := 0; step < 40; step++ {
		ids = mutateRandomly(t, rng, s, primary, ids)
		for _, rec := range recs {
			if err := replica.ApplyRecord(rec); err != nil {
				t.Fatalf("step %d: replay: %v", step, err)
			}
		}
		recs = recs[:0]
		equalStores(t, primary, replica)
	}

	// Post-replay divergence check: the replica's id allocator must continue
	// exactly where the primary's does.
	primary.SetCommitHook(nil)
	pids, err := primary.AddPCs(randPC(rng, s))
	if err != nil {
		t.Fatal(err)
	}
	rids, err := replica.AddPCs(randPC(rng, s))
	if err != nil {
		t.Fatal(err)
	}
	if pids[0] != rids[0] {
		t.Fatalf("diverged id allocation after replay: %d vs %d", rids[0], pids[0])
	}
}

// TestRestoreStoreRoundTrip captures a snapshot's state, restores a store
// from it, and checks the restored store is bit-identical and evolves
// identically under further mutations.
func TestRestoreStoreRoundTrip(t *testing.T) {
	s := salesSchema()
	rng := rand.New(rand.NewSource(7))
	store := NewStore(s)
	var ids []PCID
	for step := 0; step < 20; step++ {
		ids = mutateRandomly(t, rng, s, store, ids)
	}
	sn := store.Snapshot()
	restored, err := RestoreStore(s, sn.PCs(), sn.IDs(), sn.Epoch(), sn.NextID())
	if err != nil {
		t.Fatal(err)
	}
	equalStores(t, store, restored)

	// Identical mutation streams on both sides stay identical (same epochs,
	// same assigned ids), including through removes of the max id.
	rng2 := rand.New(rand.NewSource(11))
	idsA := append([]PCID(nil), ids...)
	idsB := append([]PCID(nil), ids...)
	for step := 0; step < 15; step++ {
		idsA = mutateRandomly(t, rand.New(rand.NewSource(int64(step))), s, store, idsA)
		idsB = mutateRandomly(t, rand.New(rand.NewSource(int64(step))), s, restored, idsB)
		equalStores(t, store, restored)
	}
	_ = rng2
}

// TestApplyRecordRejectsGapsAndMalformed pins the replay-integrity errors:
// out-of-order epochs, id collisions, and malformed payloads must all be
// refused without mutating the store.
func TestApplyRecordRejectsGapsAndMalformed(t *testing.T) {
	s := salesSchema()
	rng := rand.New(rand.NewSource(3))
	store := NewStore(s)
	ids, err := store.AddPCs(randPC(rng, s))
	if err != nil {
		t.Fatal(err)
	}
	epochBefore := store.Epoch()
	pc := randPC(rng, s)

	cases := []struct {
		name string
		rec  MutationRecord
	}{
		{"epoch gap", MutationRecord{Epoch: epochBefore + 2, Kind: MutAdd, IDs: []PCID{9}, PCs: []PC{pc}}},
		{"stale epoch", MutationRecord{Epoch: epochBefore, Kind: MutAdd, IDs: []PCID{9}, PCs: []PC{pc}}},
		{"id reuse", MutationRecord{Epoch: epochBefore + 1, Kind: MutAdd, IDs: []PCID{ids[0]}, PCs: []PC{pc}}},
		{"id zero", MutationRecord{Epoch: epochBefore + 1, Kind: MutAdd, IDs: []PCID{0}, PCs: []PC{pc}}},
		{"duplicate ids", MutationRecord{Epoch: epochBefore + 1, Kind: MutAdd, IDs: []PCID{7, 7}, PCs: []PC{pc, pc}}},
		{"add arity", MutationRecord{Epoch: epochBefore + 1, Kind: MutAdd, IDs: []PCID{7, 8}, PCs: []PC{pc}}},
		{"remove unknown", MutationRecord{Epoch: epochBefore + 1, Kind: MutRemove, IDs: []PCID{42}}},
		{"remove arity", MutationRecord{Epoch: epochBefore + 1, Kind: MutRemove, IDs: []PCID{ids[0]}, PCs: []PC{pc}}},
		{"replace unknown", MutationRecord{Epoch: epochBefore + 1, Kind: MutReplace, IDs: []PCID{42}, PCs: []PC{pc}}},
		{"unknown kind", MutationRecord{Epoch: epochBefore + 1, Kind: MutKind(99), IDs: []PCID{1}}},
	}
	for _, tc := range cases {
		if err := store.ApplyRecord(tc.rec); err == nil {
			t.Errorf("%s: ApplyRecord accepted %+v", tc.name, tc.rec)
		}
		if store.Epoch() != epochBefore {
			t.Fatalf("%s: rejected record mutated the store (epoch %d -> %d)", tc.name, epochBefore, store.Epoch())
		}
	}
}

// TestRestoreStoreValidation pins the restore-time consistency checks.
func TestRestoreStoreValidation(t *testing.T) {
	s := salesSchema()
	rng := rand.New(rand.NewSource(5))
	pc := randPC(rng, s)
	if _, err := RestoreStore(s, []PC{pc}, []PCID{1, 2}, 3, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := RestoreStore(s, []PC{pc}, []PCID{0}, 3, 2); err == nil {
		t.Error("id 0 accepted")
	}
	if _, err := RestoreStore(s, []PC{pc}, []PCID{5}, 3, 2); err == nil {
		t.Error("id above high-water accepted")
	}
	if _, err := RestoreStore(s, []PC{pc, pc}, []PCID{1, 1}, 3, 2); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := RestoreStore(s, []PC{pc}, []PCID{1}, 3, 2); err != nil {
		t.Errorf("valid restore rejected: %v", err)
	}
}
