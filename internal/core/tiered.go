// Tiered-precision bounding: a summary tier under the exact solver.
//
// AttachSummary mirrors a Store into an internal/summary.Store, kept in
// lockstep by observing the same MutationRecord stream the WAL consumes
// (Store.AddCommitHook). Engines carrying the overlay in Options.Summary
// can then answer a query two ways:
//
//   - BoundSummary: a sound-but-loose interval from per-constraint corner
//     bounds, O(dims) whole-domain / O(n·dims) region-restricted, never
//     touching decomposition or LP/MILP.
//   - The exact path, unchanged and bit-identical to an engine without the
//     overlay.
//
// BoundTiered glues them together under an escalation policy (TierSpec): a
// query may carry a width budget; if the summary interval fits the budget
// the answer is served from the summary tier and tagged PrecisionSummary,
// otherwise the engine escalates to the exact path — which still reuses the
// shared scheduler and the epoch-scoped cell cache, so escalated cells are
// solved in parallel and remembered.
package core

import (
	"context"

	"pcbound/internal/domain"
	"pcbound/internal/summary"
)

// Precision tags which tier produced a Range.
type Precision int

const (
	// PrecisionExact: the range came from the exact cell-decomposition
	// solver (bit-identical to the pre-tiering engine).
	PrecisionExact Precision = iota
	// PrecisionSummary: the range is a sound outer interval from the
	// summary tier; it contains the exact range but may be looser.
	PrecisionSummary
)

func (p Precision) String() string {
	if p == PrecisionSummary {
		return "summary"
	}
	return "exact"
}

// TierMode selects the escalation policy for a tiered bound.
type TierMode int

const (
	// TierExact bypasses the summary tier entirely.
	TierExact TierMode = iota
	// TierAuto answers from the summary tier when the loose interval's
	// width fits the budget, and escalates to the exact path otherwise.
	TierAuto
	// TierForceSummary answers from the summary tier whenever it can
	// (regardless of width), escalating only when no summary answer exists
	// (overlay missing, epoch mismatch, unknown attribute…).
	TierForceSummary
)

// TierSpec is a query's tiering request: the mode plus the width budget
// TierAuto compares against. An empty-range summary answer (Lo > Hi) has
// width zero and fits any budget; infinite widths fit only an infinite one.
type TierSpec struct {
	Mode     TierMode
	MaxWidth float64
}

// SummaryOverlay keeps an internal/summary.Store in lockstep with a core
// Store. Attach once per store (typically next to the WAL hook) and share
// the overlay across every engine via Options.Summary; all methods are safe
// for concurrent use.
type SummaryOverlay struct {
	store  *Store
	sum    *summary.Store
	detach func()
}

// AttachSummary builds a summary overlay for the store: it snapshots the
// current constraints and registers a commit observer, atomically under the
// store's lock, so the summaries track every future mutation with no gap.
func AttachSummary(st *Store) *SummaryOverlay {
	ov := &SummaryOverlay{store: st, sum: summary.New(st.Schema())}
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]uint64, len(st.ids))
	cs := make([]summary.Constraint, len(st.pcs))
	for i, pc := range st.pcs {
		ids[i] = uint64(st.ids[i])
		cs[i] = summaryConstraint(pc)
	}
	ov.sum.Reset(ids, cs, st.epoch)
	ov.detach = st.addCommitHookLocked(ov.onCommit)
	return ov
}

// Detach unregisters the overlay's commit observer. The overlay stops
// tracking the store; Eval will fail epoch checks as soon as the store
// moves on. Safe to call more than once.
func (ov *SummaryOverlay) Detach() {
	if ov.detach != nil {
		ov.detach()
		ov.detach = nil
	}
}

// Store returns the core store the overlay tracks.
func (ov *SummaryOverlay) Store() *Store { return ov.store }

// Stats returns the summary store's state and counters.
func (ov *SummaryOverlay) Stats() summary.Stats { return ov.sum.Stats() }

// onCommit applies one committed mutation to the summary store. Called
// synchronously under the core store's write lock (CommitHook contract), so
// summaries and store can never be observed mid-divergence: the summary
// epoch always identifies exactly the constraint multiset it summarizes.
func (ov *SummaryOverlay) onCommit(rec MutationRecord) {
	switch rec.Kind {
	case MutAdd:
		ids := make([]uint64, len(rec.IDs))
		cs := make([]summary.Constraint, len(rec.PCs))
		for i := range rec.PCs {
			ids[i] = uint64(rec.IDs[i])
			cs[i] = summaryConstraint(rec.PCs[i])
		}
		ov.sum.Add(rec.Epoch, ids, cs)
	case MutRemove:
		ov.sum.Remove(rec.Epoch, uint64(rec.IDs[0]))
	case MutReplace:
		ov.sum.Replace(rec.Epoch, uint64(rec.IDs[0]), summaryConstraint(rec.PCs[0]))
	}
}

// summaryConstraint projects a predicate-constraint to its summary: the
// predicate box ψ, the value row ψ∩ν (whose per-attribute corners are
// exactly the clipped value intervals the disjoint fast path assigns its
// cells), and κ as floats.
func summaryConstraint(pc PC) summary.Constraint {
	pred := pc.Pred.Box()
	return summary.Constraint{
		Pred: pred,
		Row:  pred.Intersect(pc.Values),
		KLo:  float64(pc.KLo),
		KHi:  float64(pc.KHi),
	}
}

// BoundSummary answers the query from the summary tier alone: a sound
// outer interval for what Bound would return, computed without touching
// decomposition or the solver. ok=false means no summary answer exists —
// no overlay configured, overlay tracking a different store, summaries not
// at this engine's snapshot epoch (pinned or stale reads must escalate), an
// unknown attribute, or an engine configuration (early-stopped
// decomposition) whose exact answers the summaries do not outer-bound.
func (e *Engine) BoundSummary(q Query) (Range, bool) {
	ov := e.opts.Summary
	if ov == nil || ov.store != e.snap.Store() || e.opts.Cells.EarlyStopLayer != 0 {
		return Range{}, false
	}
	sa, ok := summaryAgg(q.Agg)
	if !ok {
		return Range{}, false
	}
	attr := -1
	if q.Agg != Count {
		i, ok := e.snap.Schema().Index(q.Attr)
		if !ok {
			return Range{}, false
		}
		attr = i
	}
	var wbox domain.Box
	if q.Where != nil {
		wbox = q.Where.Box()
	}
	res, ok := ov.sum.Eval(sa, attr, wbox, e.snap.Epoch())
	if !ok {
		return Range{}, false
	}
	// LoExact/HiExact stay false: summary endpoints are never proven
	// optimal. Cells reports the entries consulted, the tier's analogue of
	// decomposition cells.
	return Range{Lo: res.Lo, Hi: res.Hi, MaybeEmpty: res.MaybeEmpty, Cells: res.Entries}, true
}

func summaryAgg(a Agg) (summary.Agg, bool) {
	switch a {
	case Count:
		return summary.Count, true
	case Sum:
		return summary.Sum, true
	case Avg:
		return summary.Avg, true
	case Min:
		return summary.Min, true
	case Max:
		return summary.Max, true
	default:
		return 0, false
	}
}

// summaryFits decides whether a summary answer satisfies the spec without
// escalation.
func summaryFits(r Range, spec TierSpec) bool {
	switch spec.Mode {
	case TierForceSummary:
		return true
	case TierAuto:
		if r.Lo > r.Hi {
			// Empty range (e.g. provably zero usable rows): width zero.
			return true
		}
		// NaN widths (never-constrained endpoints) fail every comparison
		// and escalate, which is the safe direction.
		return r.Hi-r.Lo <= spec.MaxWidth
	default:
		return false
	}
}

// BoundTiered is BoundTieredCtx with a background context.
func (e *Engine) BoundTiered(q Query, spec TierSpec) (Range, Precision, error) {
	return e.BoundTieredCtx(context.Background(), q, spec)
}

// BoundTieredCtx bounds the query under the tiering policy: it answers from
// the summary tier when spec allows and the loose interval fits, and
// escalates to the exact path (scheduler + cell cache and all) otherwise.
// The returned Precision tags which tier produced the range.
func (e *Engine) BoundTieredCtx(ctx context.Context, q Query, spec TierSpec) (Range, Precision, error) {
	if spec.Mode != TierExact {
		if r, ok := e.BoundSummary(q); ok && summaryFits(r, spec) {
			return r, PrecisionSummary, nil
		}
	}
	r, err := e.BoundCtx(ctx, q)
	return r, PrecisionExact, err
}

// BoundBatchTieredCtx is the batch form of BoundTieredCtx: each query is
// answered from the summary tier when it fits the spec, and the escalated
// remainder runs through BoundBatchCtx as one sub-batch (parallel cell
// solving, shared caches). Results and precisions are in input order.
func (e *Engine) BoundBatchTieredCtx(ctx context.Context, queries []Query, spec TierSpec, opts BatchOptions) ([]Range, []Precision, error) {
	if len(queries) == 0 {
		return nil, nil, nil
	}
	out := make([]Range, len(queries))
	prec := make([]Precision, len(queries))
	var exactQ []Query
	var exactIdx []int
	for i, q := range queries {
		if spec.Mode != TierExact {
			if r, ok := e.BoundSummary(q); ok && summaryFits(r, spec) {
				out[i] = r
				prec[i] = PrecisionSummary
				continue
			}
		}
		exactIdx = append(exactIdx, i)
		exactQ = append(exactQ, q)
	}
	var err error
	if len(exactQ) > 0 {
		var rs []Range
		rs, err = e.BoundBatchCtx(ctx, exactQ, opts)
		for k, i := range exactIdx {
			out[i] = rs[k]
			prec[i] = PrecisionExact
		}
	}
	return out, prec, err
}
