package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"pcbound/internal/cells"
	"pcbound/internal/domain"
	"pcbound/internal/lp"
	"pcbound/internal/milp"
	"pcbound/internal/predicate"
	"pcbound/internal/sat"
	"pcbound/internal/sched"
)

// Agg identifies an aggregate function.
type Agg int

const (
	// Count is COUNT(*).
	Count Agg = iota
	// Sum is SUM(attr).
	Sum
	// Avg is AVG(attr).
	Avg
	// Min is MIN(attr).
	Min
	// Max is MAX(attr).
	Max
)

func (a Agg) String() string {
	switch a {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// Query is an aggregate query over the missing partition:
// SELECT Agg(Attr) FROM R? WHERE Where.
type Query struct {
	Agg   Agg
	Attr  string       // aggregated attribute; ignored for COUNT
	Where *predicate.P // nil means no predicate
}

// String renders the query SQL-ishly for error messages and logs, e.g.
// "SUM(price) WHERE region=[0,10]".
func (q Query) String() string {
	attr := q.Attr
	if q.Agg == Count && attr == "" {
		attr = "*"
	}
	if q.Where == nil {
		return fmt.Sprintf("%s(%s)", q.Agg, attr)
	}
	return fmt.Sprintf("%s(%s) WHERE %s", q.Agg, attr, q.Where)
}

// Range is a hard result range: the aggregate of every missing-data instance
// satisfying the constraint set lies in [Lo, Hi].
type Range struct {
	Lo, Hi float64
	// LoExact / HiExact report whether the endpoint was proven optimal
	// (tight) by the MILP, as opposed to a sound-but-looser relaxation or
	// early-stopping bound.
	LoExact, HiExact bool
	// MaybeEmpty is set for MIN/MAX/AVG when the constraints admit an
	// instance with zero missing rows, on which the aggregate is undefined;
	// Lo/Hi then bound the aggregate over non-empty instances.
	MaybeEmpty bool
	// Reconciled is set when the frequency lower bounds were mutually
	// unsatisfiable and were relaxed to zero to produce a (sound) range,
	// per the paper's "reconcile conflicting constraints" behaviour.
	Reconciled bool
	// Cells is the number of satisfiable decomposition cells used.
	Cells int
	// SATChecks counts satisfiability queries issued for this bound.
	SATChecks int64
}

// Contains reports whether v lies in the range.
func (r Range) Contains(v float64) bool { return v >= r.Lo-1e-9 && v <= r.Hi+1e-9 }

// Width returns Hi - Lo.
func (r Range) Width() float64 { return r.Hi - r.Lo }

func (r Range) String() string {
	return fmt.Sprintf("[%g, %g]", r.Lo, r.Hi)
}

// Options configures an Engine.
type Options struct {
	// Cells configures cell decomposition (strategy, early stopping…).
	// The Pushdown field is managed per query and must be left nil.
	Cells cells.Options
	// MILP configures the branch-and-bound search. The Ctx field is managed
	// per query by the engine and must be left nil; WarmStart may be set to
	// re-optimize branch-and-bound children from their parent basis (faster,
	// but last-ulp rounding may differ from the default cold solves).
	MILP milp.Options
	// DisableFastPath forces the general MILP path even for disjoint sets.
	DisableFastPath bool
	// DisableDecompCache turns off the decomposition cache, forcing every
	// query to re-run DFS+SAT even when another query already decomposed the
	// same pushdown-normalized region.
	DisableDecompCache bool
	// DecompCacheSize caps the number of cached query regions
	// (0 = DefaultDecompCacheSize). Each region may hold up to two
	// epoch-interval entries — the store frontier's and a snapshot-pinned
	// reader's — so resident decompositions are bounded by twice this value.
	// Once full, inserting a new region evicts an arbitrary resident one,
	// keeping memory bounded; eviction can only cost recomputation, never
	// change a result.
	DecompCacheSize int
	// Scheduler supplies the shared cell-solve scheduler for intra-query
	// parallelism: per-cell LP/MILP tasks from every in-flight query on this
	// engine (and every other engine sharing the scheduler, e.g. a server
	// pool) are dispatched cost-ordered across one worker pool, so a single
	// MILP-heavy query fans its cells out instead of pegging one core. nil
	// uses the process-wide sched.Shared() scheduler. Results are
	// bit-identical to the sequential path at any worker count: tasks write
	// index-addressed slots and every reduction runs in fixed cell order.
	Scheduler *sched.Scheduler
	// SequentialCells disables intra-query parallelism: cell solves run
	// inline on the calling goroutine in index order. This is the reference
	// path the differential tests pin the scheduler path against; results
	// are bit-identical either way.
	SequentialCells bool
	// DisableCellCache turns off the epoch-scoped per-cell bound cache,
	// forcing every query to re-run its cell-level LP/MILP solves even when
	// an earlier query (or group-by group) already solved content-identical
	// cells. See cellcache.go.
	DisableCellCache bool
	// CellCacheSize caps the number of cached cell-solve keys
	// (0 = DefaultCellCacheSize). Entries are small scalar results; like the
	// decomposition cache, each key may hold up to two epoch-interval
	// entries and eviction only ever costs recomputation.
	CellCacheSize int
	// Reference routes every optimized hot-path layer to its preserved
	// pre-optimization implementation: the recursive SAT search, the
	// clone-per-child branch-and-bound, and per-solve LP assembly, with
	// sequential cell solving and no cell-bound cache. Results are
	// bit-identical to the default configuration; the flag exists for
	// differential testing and benchmarking (see BenchmarkHotPath). It only
	// takes effect for solvers the engine creates itself (pass solver=nil).
	Reference bool
	// Summary supplies the tiered-precision overlay (see AttachSummary):
	// sound O(dims) interval answers maintained from the store's mutation
	// stream, with escalation to the exact path when the loose interval
	// exceeds a width budget. nil disables the summary tier. The overlay is
	// a strict overlay — every exact-path entry point (Bound, BoundBatch,
	// BoundTiered with TierExact, …) is bit-identical with or without it.
	Summary *SummaryOverlay
}

// DefaultDecompCacheSize is the decomposition-cache capacity used when
// Options.DecompCacheSize is zero.
const DefaultDecompCacheSize = 1024

// Engine computes hard aggregate ranges for one constraint-store snapshot.
// An engine binds to the snapshot for its lifetime: concurrent Store writers
// never perturb its results, and everything it computes is bit-identical to
// a freshly built engine over the same PC multiset. An engine is safe for
// concurrent use: Bound may be called from many goroutines, and BoundBatch
// fans a whole workload out across workers (each bound to the same
// snapshot).
type Engine struct {
	snap   *Snapshot
	solver *sat.Solver
	opts   Options
	cache  *decompCache // nil when DisableDecompCache is set
	// cellCache memoizes cell-solve results (per-cell feasibility,
	// directional solves, search endpoints) with epoch-interval validity;
	// nil when DisableCellCache or Reference is set. Shared across the
	// Rebind lineage like the decomposition cache.
	cellCache *cellBoundCache
	// sched dispatches per-cell solve tasks; nil runs cells sequentially
	// (SequentialCells or Reference).
	sched *sched.Scheduler
	// optsSig tags cell-cache keys with the solver options that can shape a
	// solve result, so entries can never alias across configurations.
	optsSig string
	// ctxPool recycles per-query solve contexts (LP tableau arenas plus a
	// reusable problem shell), so the two-direction × relax-retry pattern and
	// the feasibility/threshold searches stop reallocating the LP. Solve
	// contexts carry no constraint-derived state, so the pool is shared
	// across batch workers and across epochs after Rebind — pooling survives
	// store mutations instead of being keyed away per epoch.
	ctxPool *sync.Pool // of *solveCtx
}

// NewEngine builds an engine bound to the store's current snapshot. A fresh
// SAT solver is created if solver is nil. Mutations to the store after this
// call are invisible to the engine; use Rebind to bind a successor engine to
// the store's latest state while keeping the decomposition cache warm.
func NewEngine(set *Store, solver *sat.Solver, opts Options) *Engine {
	return NewEngineAt(set.Snapshot(), solver, opts)
}

// NewEngineAt builds an engine bound to a specific snapshot.
func NewEngineAt(snap *Snapshot, solver *sat.Solver, opts Options) *Engine {
	if solver == nil {
		solver = sat.New(snap.Schema())
		solver.UseReference(opts.Reference)
	}
	e := &Engine{snap: snap, solver: solver, opts: opts, ctxPool: &sync.Pool{}}
	if !opts.DisableDecompCache {
		size := opts.DecompCacheSize
		if size <= 0 {
			size = DefaultDecompCacheSize
		}
		e.cache = newDecompCache(size, snap.Store())
	}
	if !opts.DisableCellCache && !opts.Reference {
		size := opts.CellCacheSize
		if size <= 0 {
			size = DefaultCellCacheSize
		}
		e.cellCache = newCellBoundCache(size, snap.Store())
		e.optsSig = milpOptsSig(opts.MILP)
	}
	if !opts.SequentialCells && !opts.Reference {
		e.sched = opts.Scheduler
		if e.sched == nil {
			e.sched = sched.Shared()
		}
	}
	return e
}

// Rebind returns an engine bound to the store's current snapshot, sharing
// this engine's SAT solver, options, solve-context pool, and decomposition
// cache. Cached decompositions whose regions were untouched by the
// intervening mutations stay live (scoped invalidation — see decompCache),
// which is what makes mutate→rebound much cheaper than building a fresh
// engine. If the store has not changed, the receiver itself is returned.
func (e *Engine) Rebind() *Engine {
	snap := e.snap.Store().Snapshot()
	if snap == e.snap {
		return e
	}
	return &Engine{
		snap: snap, solver: e.solver, opts: e.opts, cache: e.cache,
		cellCache: e.cellCache, sched: e.sched, optsSig: e.optsSig, ctxPool: e.ctxPool,
	}
}

// solveCtx is one executor's solve workspace: an LP context (tableau
// arenas), a branch-and-bound workspace (node queue and path scratch), and
// a problem shell rebuilt row-set by row-set via cellProblem.buildInto. It
// carries no constraint- or engine-derived state, so contexts are freely
// shared across queries, epochs, and engines: one lives per scheduler
// worker (sched.Workspace.Local), and callers pool theirs via ctxPool.
type solveCtx struct {
	lp    lp.Context
	work  milp.Workspace
	prob  lp.Problem
	zeros []float64
}

// zeroObj returns an all-zero objective of length n from the context's
// scratch (Problem.Reset copies it, so sharing the buffer is safe).
func (sc *solveCtx) zeroObj(n int) []float64 {
	if cap(sc.zeros) < n {
		sc.zeros = make([]float64, n)
	}
	sc.zeros = sc.zeros[:n]
	clear(sc.zeros)
	return sc.zeros
}

// acquireCtx returns a pooled solve context, or nil in Reference mode (the
// reference path assembles a fresh LP per solve, like the seed did).
func (e *Engine) acquireCtx() *solveCtx {
	if e.opts.Reference {
		return nil
	}
	if v := e.ctxPool.Get(); v != nil {
		return v.(*solveCtx)
	}
	return &solveCtx{}
}

func (e *Engine) releaseCtx(sc *solveCtx) {
	if sc != nil {
		e.ctxPool.Put(sc)
	}
}

// milpOpts returns the per-query MILP options with the engine-level
// reference flag applied. The per-executor Ctx/Work are attached at solve
// time from whichever solve context runs the task.
func (e *Engine) milpOpts() milp.Options {
	m := e.opts.MILP
	m.Ctx = nil
	m.Work = nil
	m.Reference = e.opts.Reference
	return m
}

// Snapshot returns the store snapshot the engine is bound to.
func (e *Engine) Snapshot() *Snapshot { return e.snap }

// Solver returns the engine's SAT solver (for stats inspection).
func (e *Engine) Solver() *sat.Solver { return e.solver }

// Scheduler returns the cell-solve scheduler the engine dispatches to, or
// nil when cell solves run sequentially (SequentialCells or Reference).
func (e *Engine) Scheduler() *sched.Scheduler { return e.sched }

// Bound dispatches on the aggregate kind.
func (e *Engine) Bound(q Query) (Range, error) {
	switch q.Agg {
	case Count:
		return e.Count(q.Where)
	case Sum:
		return e.Sum(q.Attr, q.Where)
	case Avg:
		return e.Avg(q.Attr, q.Where)
	case Min:
		return e.Min(q.Attr, q.Where)
	case Max:
		return e.Max(q.Attr, q.Where)
	default:
		// Name the whole query, not just the aggregate code: this error
		// surfaces as a serving-layer 400, and "unknown aggregate Agg(7)"
		// alone gives the client nothing to find the offending request by.
		return Range{}, fmt.Errorf("core: unknown aggregate %v in query %s (want COUNT, SUM, AVG, MIN or MAX)", q.Agg, q)
	}
}

// BoundCtx is Bound with pre-flight cancellation: a query whose context is
// already done is not started. Cancellation is checked at query
// granularity, matching BoundBatchCtx — an in-flight bound runs to
// completion so partial cell reductions never escape.
func (e *Engine) BoundCtx(ctx context.Context, q Query) (Range, error) {
	if err := ctx.Err(); err != nil {
		return Range{}, err
	}
	return e.Bound(q)
}

// cellProblem is the optimization problem extracted from a decomposition:
// one integer variable per cell, one frequency window per constraint.
//
// pcvet:immutable — a cellProblem is shared across queries and workers via
// the decomposition cache; after decomposeUncached returns it, no slice or
// map hanging off it may be written (enforced by the snapmut analyzer).
type cellProblem struct {
	schema *domain.Schema
	cells  []cells.Cell
	// cellsOf[j] lists cell indices in which constraint j is active.
	cellsOf map[int][]int
	// kLo/kHi are the (pushdown-adjusted) frequency windows by original
	// constraint index.
	kLo, kHi map[int]float64
	// valueBoxes[j] is constraint j's ν.
	valueBoxes []domain.Box
	// capHi[i] is the per-cell cardinality cap (min of active KHi).
	capHi []float64

	// Immutable row-assembly data precomputed once per decomposition, shared
	// by every query and worker that reuses this problem: the sorted
	// constraint indices, a shared all-ones coefficient vector, and the
	// identity index vector whose sub-slices serve as single-cell rows.
	consIdx []int
	onesVal []float64
	idxAll  []int

	// base is the pushdown-normalized query region this problem was
	// decomposed for, and baseKey its bit-exact string form (nil/"" when no
	// cache needs them); they anchor problem-scoped cell-cache keys and
	// their epoch validity. coupled records whether any active frequency
	// lower bound survived pushdown — when false, per-cell feasibility is a
	// cell-local fact and cacheable across problems (see cellcache.go).
	base    domain.Box
	baseKey string
	coupled bool

	satChecks int64
}

// decompose runs cell decomposition for a query predicate and assembles the
// optimization problem. Queries sharing a pushdown-normalized region reuse
// the cached problem: a cellProblem is immutable after construction, so one
// instance may serve any number of queries and goroutines. A cached hit
// reports the SAT checks spent when the decomposition was first computed.
func (e *Engine) decompose(where *predicate.P) (*cellProblem, error) {
	var key string
	var base domain.Box
	if e.cache != nil || e.cellCache != nil {
		base = cells.PushdownBox(e.snap.Schema(), where)
		key = cells.BoxKey(base)
	}
	if e.cache != nil {
		if cp, ok := e.cache.get(key, e.snap.epoch); ok {
			return cp, nil
		}
	}
	cp, err := e.decomposeUncached(where, base, key)
	if err != nil {
		return nil, err
	}
	if e.cache != nil {
		e.cache.put(key, base, cp, e.snap.epoch)
	}
	return cp, nil
}

func (e *Engine) decomposeUncached(where *predicate.P, base domain.Box, baseKey string) (*cellProblem, error) {
	opts := e.opts.Cells
	opts.Pushdown = where
	res, err := cells.Decompose(e.solver, e.snap.Predicates(), opts)
	if err != nil {
		return nil, err
	}
	cp := &cellProblem{
		schema:  e.snap.Schema(),
		cells:   res.Cells,
		cellsOf: make(map[int][]int),
		kLo:     make(map[int]float64),
		kHi:     make(map[int]float64),
		base:    base,
		baseKey: baseKey,
	}
	cp.satChecks = res.Checks
	cp.valueBoxes = make([]domain.Box, e.snap.Len())
	for j, pc := range e.snap.pcs {
		cp.valueBoxes[j] = pc.Values
	}
	for i, c := range res.Cells {
		for _, j := range c.Active {
			cp.cellsOf[j] = append(cp.cellsOf[j], i)
		}
	}
	var whereBox domain.Box
	if where != nil {
		whereBox = where.Box()
	}
	for j, pc := range e.snap.pcs {
		if len(cp.cellsOf[j]) == 0 {
			continue // dropped by pushdown or fully pruned
		}
		cp.kHi[j] = float64(pc.KHi)
		lo := float64(pc.KLo)
		// A frequency lower bound forces rows to exist somewhere in ψ. Those
		// rows are only forced INTO the query region when ψ lies entirely
		// inside it; otherwise they may live outside and the lower bound
		// must be relaxed to keep the range sound.
		if whereBox != nil && !whereBox.ContainsBox(pc.Pred.Box()) {
			lo = 0
		}
		cp.kLo[j] = lo
		if lo > 0 {
			cp.coupled = true
		}
	}
	cp.capHi = make([]float64, len(cp.cells))
	khiVec := make([]float64, e.snap.Len())
	for j, pc := range e.snap.pcs {
		khiVec[j] = float64(pc.KHi)
	}
	for i := range cp.cells {
		cp.capHi[i] = cp.cells[i].MaxCount(khiVec)
	}
	cp.consIdx = cp.constraintIdx()
	size := len(cp.cells)
	for _, j := range cp.consIdx {
		if l := len(cp.cellsOf[j]); l > size {
			size = l
		}
	}
	cp.onesVal = make([]float64, size)
	for i := range cp.onesVal {
		cp.onesVal[i] = 1
	}
	cp.idxAll = make([]int, len(cp.cells))
	for i := range cp.idxAll {
		cp.idxAll[i] = i
	}
	return cp, nil
}

// constraintIdx returns the sorted constraint indices with at least one cell.
func (cp *cellProblem) constraintIdx() []int {
	idx := make([]int, 0, len(cp.cellsOf))
	for j := range cp.cellsOf {
		idx = append(idx, j)
	}
	sort.Ints(idx)
	return idx
}

// buildInto assembles the same LP buildLP does, but into the context's
// reused problem shell: rows are pushed as references to the cellProblem's
// immutable index/coefficient slices, so assembling a variant (direction,
// relaxation, forbidden cells) costs no row allocation. The row order is
// identical to buildLP's, which keeps solves bit-identical.
func (cp *cellProblem) buildInto(sc *solveCtx, obj []float64, maximize bool, forbidZero []bool, atLeastOne bool, relaxKLo bool) *lp.Problem {
	p := &sc.prob
	p.Reset(obj, maximize)
	for _, j := range cp.consIdx {
		idx := cp.cellsOf[j]
		val := cp.onesVal[:len(idx)]
		if !math.IsInf(cp.kHi[j], 1) {
			_ = p.PushRow(idx, val, lp.LE, cp.kHi[j])
		}
		if !relaxKLo && cp.kLo[j] > 0 {
			_ = p.PushRow(idx, val, lp.GE, cp.kLo[j])
		}
	}
	for i := range cp.cells {
		if forbidZero != nil && forbidZero[i] {
			_ = p.PushRow(cp.idxAll[i:i+1], cp.onesVal[:1], lp.LE, 0)
			continue
		}
		if !math.IsInf(cp.capHi[i], 1) {
			_ = p.PushRow(cp.idxAll[i:i+1], cp.onesVal[:1], lp.LE, cp.capHi[i])
		}
	}
	if atLeastOne {
		_ = p.PushRow(cp.idxAll, cp.onesVal[:len(cp.cells)], lp.GE, 1)
	}
	return p
}

// buildLP assembles the base LP (no objective semantics; obj must have one
// coefficient per cell). forbidZero lists cells constrained to x=0, and
// atLeastOne adds Σx ≥ 1. relaxKLo drops frequency lower bounds. It is the
// reference-path assembly; hot paths use buildInto.
func (cp *cellProblem) buildLP(obj []float64, maximize bool, forbidZero []bool, atLeastOne bool, relaxKLo bool) *lp.Problem {
	var p *lp.Problem
	if maximize {
		p = lp.NewMaximize(obj)
	} else {
		p = lp.NewMinimize(obj)
	}
	for _, j := range cp.constraintIdx() {
		idx := cp.cellsOf[j]
		val := make([]float64, len(idx))
		for k := range val {
			val[k] = 1
		}
		if !math.IsInf(cp.kHi[j], 1) {
			_ = p.AddSparse(idx, val, lp.LE, cp.kHi[j])
		}
		if !relaxKLo && cp.kLo[j] > 0 {
			_ = p.AddSparse(idx, val, lp.GE, cp.kLo[j])
		}
	}
	for i := range cp.cells {
		if forbidZero != nil && forbidZero[i] {
			_ = p.AddSparse([]int{i}, []float64{1}, lp.LE, 0)
			continue
		}
		_ = p.AddUpperBound(i, cp.capHi[i])
	}
	if atLeastOne {
		all := make([]float64, len(cp.cells))
		for i := range all {
			all[i] = 1
		}
		_ = p.AddDense(all, lp.GE, 1)
	}
	return p
}

// solveResult carries a directional MILP outcome.
type solveResult struct {
	bound      float64 // sound outer bound in the requested direction
	exact      bool    // proven optimal
	reconciled bool    // kLo relaxation was needed
	feasible   bool
	nodes      int
}

// solve optimizes obj over the cell problem in the given direction, relaxing
// frequency lower bounds if the system is infeasible (constraint
// reconciliation). sc supplies the reusable assembly/solve workspace; nil
// (Reference mode) rebuilds the LP from scratch per attempt, as the seed
// implementation did.
func (cp *cellProblem) solve(sc *solveCtx, obj []float64, maximize bool, forbidZero []bool, atLeastOne bool, mopts milp.Options) solveResult {
	for _, relax := range []bool{false, true} {
		var p *lp.Problem
		if sc != nil {
			p = cp.buildInto(sc, obj, maximize, forbidZero, atLeastOne, relax)
			mopts.Ctx = &sc.lp
			mopts.Work = &sc.work
		} else {
			p = cp.buildLP(obj, maximize, forbidZero, atLeastOne, relax)
		}
		var sol milp.Solution
		if maximize {
			sol = milp.SolveMax(milp.Problem{LP: p}, mopts)
		} else {
			sol = milp.SolveMin(milp.Problem{LP: p}, mopts)
		}
		switch sol.Status {
		case milp.Optimal:
			return solveResult{bound: sol.Objective, exact: true, reconciled: relax, feasible: true, nodes: sol.Nodes}
		case milp.Feasible, milp.BoundOnly:
			return solveResult{bound: sol.Bound, exact: false, reconciled: relax, feasible: true, nodes: sol.Nodes}
		case milp.Unbounded:
			inf := math.Inf(1)
			if !maximize {
				inf = math.Inf(-1)
			}
			return solveResult{bound: inf, exact: true, reconciled: relax, feasible: true, nodes: sol.Nodes}
		case milp.Infeasible:
			// fall through to the relaxed attempt
		}
	}
	return solveResult{feasible: false}
}

// feasible reports whether any allocation satisfies the constraints with the
// given cell restrictions.
func (cp *cellProblem) feasible(sc *solveCtx, forbidZero []bool, atLeastOne bool, minOne int, mopts milp.Options) bool {
	ok, _ := cp.feasibleStatus(sc, forbidZero, atLeastOne, minOne, mopts)
	return ok
}

// feasibleStatus is feasible plus whether the verdict is budget-independent.
// A true verdict always is (an incumbent or proven-optimal solution exists),
// as is a false from a proven-infeasible relaxation; a false from a
// BoundOnly exit — node budget exhausted with no incumbent found — depends
// on how much of the search tree the budget covered, which depends on the
// WHOLE problem. Undecided verdicts must not be cached under cell-scoped
// keys shared by other problems (see cellcache.go).
func (cp *cellProblem) feasibleStatus(sc *solveCtx, forbidZero []bool, atLeastOne bool, minOne int, mopts milp.Options) (ok, decided bool) {
	var p *lp.Problem
	if sc != nil {
		zeros := sc.zeroObj(len(cp.cells))
		p = cp.buildInto(sc, zeros, true, forbidZero, atLeastOne, false)
		if minOne >= 0 {
			_ = p.PushRow(cp.idxAll[minOne:minOne+1], cp.onesVal[:1], lp.GE, 1)
		}
		mopts.Ctx = &sc.lp
		mopts.Work = &sc.work
	} else {
		obj := make([]float64, len(cp.cells))
		p = cp.buildLP(obj, true, forbidZero, atLeastOne, false)
		if minOne >= 0 {
			_ = p.AddSparse([]int{minOne}, []float64{1}, lp.GE, 1)
		}
	}
	sol := milp.SolveMax(milp.Problem{LP: p}, mopts)
	ok = sol.Status == milp.Optimal || sol.Status == milp.Feasible
	decided = ok || sol.Status == milp.Infeasible
	return ok, decided
}

// mayBeEmpty reports whether the zero allocation is feasible (no forced
// rows inside the query region).
func (cp *cellProblem) mayBeEmpty() bool {
	for _, j := range cp.consIdx {
		if cp.kLo[j] > 0 {
			return false
		}
	}
	return true
}

// upperVec / lowerVec compute per-cell extreme values for an attribute.
func (cp *cellProblem) upperVec(attrIdx int) []float64 {
	u := make([]float64, len(cp.cells))
	for i := range cp.cells {
		u[i] = cp.cells[i].UpperValue(attrIdx, cp.valueBoxes)
	}
	return u
}

func (cp *cellProblem) lowerVec(attrIdx int) []float64 {
	l := make([]float64, len(cp.cells))
	for i := range cp.cells {
		l[i] = cp.cells[i].LowerValue(attrIdx, cp.valueBoxes)
	}
	return l
}

func (cp *cellProblem) ones() []float64 {
	o := make([]float64, len(cp.cells))
	for i := range o {
		o[i] = 1
	}
	return o
}
