// Package router implements pcrouter's failover front door for a
// primary+follower pcserved fleet: one address clients point at, behind
// which mutations always reach the primary and reads load-balance across
// every healthy backend without violating the fleet's consistency contract.
//
// The router is deliberately thin — it holds no constraint state and makes
// no consistency promises of its own. Correctness comes from routing around
// the backends' honest answers:
//
//   - Mutations (POST /v1/store/*) go to the primary, full stop. When the
//     primary is unhealthy they fail fast with 503, a Retry-After, and the
//     primary's address in the structured error — never a silent retry that
//     could double-apply a non-idempotent write.
//   - Reads (POST /v1/bound, /v1/batch) are idempotent against a pinned
//     snapshot, so they balance across followers first (power-of-two-choices
//     on in-flight load), keeping the primary's capacity for writes. A
//     request with epoch/min_epoch demands is routed to a follower whose
//     applied frontier — tracked from health polls — already covers it,
//     falling back to the primary, and only then to a lagging follower
//     (whose own staleness gate waits or 412s honestly).
//   - A connection error or 5xx from one backend ejects it and the read
//     retries transparently on another; the client sees one answer.
//   - Ejected backends are re-probed on an exponential backoff with jitter
//     and rejoin the pool the moment /healthz says ok again.
//
// GET /v1/store prefers the primary (its snapshot is the frontier) but
// serves from any healthy backend when the primary is down. The router's own
// /healthz reports per-backend state; /metrics exports routed counts,
// retries, and ejections.
package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Router. Primary is required.
type Options struct {
	// Primary is the primary pcserved's base URL (mutations go here).
	Primary string
	// Replicas are follower base URLs reads balance across.
	Replicas []string
	// CheckInterval is the health-poll period for healthy backends
	// (<= 0 means 500ms).
	CheckInterval time.Duration
	// CheckTimeout bounds one health probe (<= 0 means 2s).
	CheckTimeout time.Duration
	// MaxProbeBackoff caps the probe backoff for ejected backends
	// (<= 0 means 8s).
	MaxProbeBackoff time.Duration
	// Client issues proxied requests and health probes. Defaults to a fresh
	// client with no global timeout: proxied reads are bounded by the
	// client's own request context, probes by CheckTimeout.
	Client *http.Client
	// Logf, when set, receives routing events (ejections, recoveries).
	Logf func(format string, args ...any)
}

// maxBodyBytes mirrors the backend's request-body cap; a body the backend
// would reject anyway is not worth buffering here.
const maxBodyBytes = 8 << 20

// backend is one routed pcserved instance and its tracked health.
type backend struct {
	url     string
	primary bool

	mu      sync.Mutex
	healthy bool // guarded by mu
	// epoch is the backend's serving frontier as of the last successful
	// probe (a follower's applied epoch; the primary's store epoch). It can
	// trail reality by up to one poll interval, which is why epoch-qualified
	// routing falls back to the primary rather than 412ing here. guarded by mu
	epoch uint64
	role  string // guarded by mu
	// fails counts consecutive probe failures, driving the backoff. guarded by mu
	fails int
	// ejections counts healthy→unhealthy transitions. guarded by mu
	ejections uint64
	lastErr   string // guarded by mu

	inflight atomic.Int64
	routed   atomic.Uint64
}

// qualified reports whether the backend is healthy and its tracked frontier
// covers target (target 0 qualifies any healthy backend).
func (b *backend) qualified(target uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy && b.epoch >= target
}

func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// markUp records a successful probe.
func (b *backend) markUp(role string, epoch uint64) (recovered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	recovered = !b.healthy && b.fails > 0
	b.healthy = true
	b.fails = 0
	b.role = role
	b.epoch = epoch
	b.lastErr = ""
	return recovered
}

// markDown records a failed probe (or a request-path failure when suspect)
// and returns the consecutive failure count. ejected is true on the
// healthy→unhealthy transition.
func (b *backend) markDown(err error) (fails int, ejected bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.healthy {
		b.healthy = false
		b.ejections++
		ejected = true
	}
	b.fails++
	if err != nil {
		b.lastErr = err.Error()
	}
	return b.fails, ejected
}

// BackendStatus is one backend's state in the router's /healthz document.
type BackendStatus struct {
	URL       string `json:"url"`
	Role      string `json:"role,omitempty"`
	Primary   bool   `json:"primary"`
	Healthy   bool   `json:"healthy"`
	Epoch     uint64 `json:"epoch"`
	Inflight  int64  `json:"inflight"`
	Routed    uint64 `json:"routed"`
	Ejections uint64 `json:"ejections"`
	LastError string `json:"last_error,omitempty"`
}

func (b *backend) status() BackendStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStatus{
		URL: b.url, Role: b.role, Primary: b.primary,
		Healthy: b.healthy, Epoch: b.epoch,
		Inflight: b.inflight.Load(), Routed: b.routed.Load(),
		Ejections: b.ejections, LastError: b.lastErr,
	}
}

// HealthResponse is the router's own /healthz document.
type HealthResponse struct {
	// Status is "ok" (all roles available), "degraded" (reads serve but the
	// primary is down, so mutations fail fast), or "unavailable".
	Status   string          `json:"status"`
	Backends []BackendStatus `json:"backends"`
}

// Router routes one fleet. Create with New, mount Handler, Close to stop
// the health loops.
type Router struct {
	opts     Options
	client   *http.Client
	primary  *backend
	backends []*backend // primary first, then replicas
	mux      *http.ServeMux

	stop    chan struct{}
	stopped sync.WaitGroup

	reads     atomic.Uint64
	mutations atomic.Uint64
	retries   atomic.Uint64
	noBackend atomic.Uint64
}

// New builds a router and starts its health loops.
func New(opts Options) (*Router, error) {
	if opts.Primary == "" {
		return nil, errors.New("router: no primary configured")
	}
	if opts.CheckInterval <= 0 {
		opts.CheckInterval = 500 * time.Millisecond
	}
	if opts.CheckTimeout <= 0 {
		opts.CheckTimeout = 2 * time.Second
	}
	if opts.MaxProbeBackoff <= 0 {
		opts.MaxProbeBackoff = 8 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	r := &Router{opts: opts, client: client, stop: make(chan struct{})}
	r.primary = &backend{url: trimSlash(opts.Primary), primary: true}
	r.backends = append(r.backends, r.primary)
	for _, u := range opts.Replicas {
		if u == "" {
			continue
		}
		r.backends = append(r.backends, &backend{url: trimSlash(u)})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/bound", r.handleRead)
	mux.HandleFunc("POST /v1/batch", r.handleRead)
	mux.HandleFunc("GET /v1/store", r.handleStoreGet)
	mux.HandleFunc("POST /v1/store/add", r.handleMutation)
	mux.HandleFunc("POST /v1/store/remove", r.handleMutation)
	mux.HandleFunc("POST /v1/store/replace", r.handleMutation)
	mux.HandleFunc("GET /healthz", r.handleHealth)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	r.mux = mux
	for _, b := range r.backends {
		r.stopped.Add(1)
		go r.healthLoop(b)
	}
	return r, nil
}

func trimSlash(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler { return r.mux }

// Close stops the health loops. In-flight proxied requests finish.
func (r *Router) Close() {
	close(r.stop)
	r.stopped.Wait()
}

// Snapshot returns every backend's tracked state, primary first.
func (r *Router) Snapshot() []BackendStatus {
	out := make([]BackendStatus, len(r.backends))
	for i, b := range r.backends {
		out[i] = b.status()
	}
	return out
}

func (r *Router) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// backendHealth is the slice of a backend's /healthz the router reads.
type backendHealth struct {
	Status      string `json:"status"`
	Role        string `json:"role"`
	Epoch       uint64 `json:"epoch"`
	Replication *struct {
		AppliedEpoch uint64 `json:"applied_epoch"`
	} `json:"replication"`
}

// probe checks one backend's health and updates its tracked state.
func (r *Router) probe(b *backend) {
	req, err := http.NewRequest(http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		b.markDown(err)
		return
	}
	client := *r.client
	client.Timeout = r.opts.CheckTimeout
	resp, err := client.Do(req)
	if err != nil {
		if _, ejected := b.markDown(err); ejected {
			r.logf("router: ejecting %s: %v", b.url, err)
		}
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
		if _, ejected := b.markDown(err); ejected {
			r.logf("router: ejecting %s: %v", b.url, err)
		}
		return
	}
	var h backendHealth
	if err := json.Unmarshal(body, &h); err != nil {
		if _, ejected := b.markDown(fmt.Errorf("healthz: %w", err)); ejected {
			r.logf("router: ejecting %s: %v", b.url, err)
		}
		return
	}
	epoch := h.Epoch
	if h.Replication != nil && h.Replication.AppliedEpoch > epoch {
		epoch = h.Replication.AppliedEpoch
	}
	if b.markUp(h.Role, epoch) {
		r.logf("router: %s healthy again (role %s, epoch %d)", b.url, h.Role, epoch)
	}
}

// healthLoop probes one backend forever: every CheckInterval while healthy,
// on an exponential backoff with full jitter on the upper half while
// ejected — so a flapping fleet's probes spread out instead of synchronizing
// into thundering herds.
func (r *Router) healthLoop(b *backend) {
	defer r.stopped.Done()
	for {
		r.probe(b)
		delay := r.opts.CheckInterval
		b.mu.Lock()
		fails := b.fails
		b.mu.Unlock()
		if fails > 0 {
			shift := fails
			if shift > 5 {
				shift = 5
			}
			delay = r.opts.CheckInterval << shift
			if delay > r.opts.MaxProbeBackoff {
				delay = r.opts.MaxProbeBackoff
			}
			delay = delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		}
		select {
		case <-r.stop:
			return
		case <-time.After(delay):
		}
	}
}

// epochDemand is the slice of a read body naming its consistency demands.
type epochDemand struct {
	Epoch    *uint64 `json:"epoch"`
	MinEpoch *uint64 `json:"min_epoch"`
}

func (d epochDemand) target() uint64 {
	var t uint64
	if d.MinEpoch != nil {
		t = *d.MinEpoch
	}
	if d.Epoch != nil && *d.Epoch > t {
		t = *d.Epoch
	}
	return t
}

// pick chooses the next read backend: qualified followers first (p2c on
// in-flight load), then the healthy primary, then lagging-but-healthy
// followers whose own staleness gate answers honestly. tried excludes
// backends this request already failed on. primaryFirst flips the order for
// frontier-affine reads (GET /v1/store).
func (r *Router) pick(target uint64, tried map[*backend]bool, primaryFirst bool) *backend {
	if primaryFirst && !tried[r.primary] && r.primary.isHealthy() {
		return r.primary
	}
	var qualified, lagging []*backend
	for _, b := range r.backends {
		if b.primary || tried[b] {
			continue
		}
		switch {
		case b.qualified(target):
			qualified = append(qualified, b)
		case b.isHealthy():
			lagging = append(lagging, b)
		}
	}
	if b := p2c(qualified); b != nil {
		return b
	}
	if !tried[r.primary] && r.primary.isHealthy() {
		return r.primary
	}
	return p2c(lagging)
}

// p2c is power-of-two-choices: sample two candidates, take the one with
// less in-flight work. Cheap, and it sidesteps the stampede a strict
// least-loaded policy causes when every router instance agrees on the
// "least loaded" backend.
func p2c(cands []*backend) *backend {
	switch len(cands) {
	case 0:
		return nil
	case 1:
		return cands[0]
	}
	i := rand.Intn(len(cands))
	j := rand.Intn(len(cands) - 1)
	if j >= i {
		j++
	}
	if cands[j].inflight.Load() < cands[i].inflight.Load() {
		return cands[j]
	}
	return cands[i]
}

// forward proxies one request (with a replayable body) to a backend and
// returns the response with its body fully read.
func (r *Router) forward(req *http.Request, b *backend, body []byte) (*http.Response, []byte, error) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	out, err := http.NewRequestWithContext(req.Context(), req.Method, b.url+req.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	resp, err := r.client.Do(out)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, rb, nil
}

// writeProxied relays a backend response to the client, tagging which
// backend answered.
func writeProxied(w http.ResponseWriter, resp *http.Response, body []byte, b *backend) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Pcrouter-Backend", b.url)
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// errorJSON is the router's own error document, shaped like the backends'
// (an "error" string plus an optional "primary" hint) so clients need one
// decoder.
type errorJSON struct {
	Error   string `json:"error"`
	Primary string `json:"primary,omitempty"`
}

func writeRouterError(w http.ResponseWriter, code int, e errorJSON) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(e)
}

// retryableRead reports whether a read should fail over to another backend:
// transport errors and gateway-ish 5xxs mean this backend can't serve, not
// that the request is bad. Everything else (including 412 and 429) is the
// backend's honest answer and passes through.
func retryableRead(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	switch resp.StatusCode {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

func (r *Router) handleRead(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err != nil {
		writeRouterError(w, http.StatusRequestEntityTooLarge, errorJSON{Error: err.Error()})
		return
	}
	var d epochDemand
	// A malformed body routes like an unpinned read; the backend owns the 400.
	_ = json.Unmarshal(body, &d)
	r.serveRead(w, req, body, d.target(), false)
}

func (r *Router) handleStoreGet(w http.ResponseWriter, req *http.Request) {
	// The primary's snapshot is the frontier; prefer it, but a follower's
	// snapshot is a consistent (if slightly stale) fallback when the
	// primary is down.
	r.serveRead(w, req, nil, 0, true)
}

// serveRead routes one idempotent read, failing over across backends until
// one answers or no candidates remain.
func (r *Router) serveRead(w http.ResponseWriter, req *http.Request, body []byte, target uint64, primaryFirst bool) {
	r.reads.Add(1)
	tried := make(map[*backend]bool, len(r.backends))
	for attempt := 0; attempt < len(r.backends); attempt++ {
		b := r.pick(target, tried, primaryFirst)
		if b == nil {
			break
		}
		tried[b] = true
		resp, rb, err := r.forward(req, b, body)
		if retryableRead(resp, err) {
			if req.Context().Err() != nil {
				return // the client went away; nothing to fail over for
			}
			if err == nil {
				err = fmt.Errorf("read: HTTP %d", resp.StatusCode)
			}
			if _, ejected := b.markDown(err); ejected {
				r.logf("router: ejecting %s: %v", b.url, err)
			}
			r.retries.Add(1)
			continue
		}
		b.routed.Add(1)
		writeProxied(w, resp, rb, b)
		return
	}
	r.noBackend.Add(1)
	writeRouterError(w, http.StatusServiceUnavailable,
		errorJSON{Error: "no healthy backend can serve this read", Primary: r.primary.url})
}

// handleMutation forwards a write to the primary, or fails fast. Mutations
// are not idempotent, so the router never retries them — an ambiguous
// transport failure surfaces to the client, which owns the dedup decision.
func (r *Router) handleMutation(w http.ResponseWriter, req *http.Request) {
	r.mutations.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err != nil {
		writeRouterError(w, http.StatusRequestEntityTooLarge, errorJSON{Error: err.Error()})
		return
	}
	if !r.primary.isHealthy() {
		r.noBackend.Add(1)
		writeRouterError(w, http.StatusServiceUnavailable,
			errorJSON{Error: "primary is unhealthy; mutations are unavailable", Primary: r.primary.url})
		return
	}
	resp, rb, err := r.forward(req, r.primary, body)
	if err != nil {
		if _, ejected := r.primary.markDown(err); ejected {
			r.logf("router: ejecting %s: %v", r.primary.url, err)
		}
		r.noBackend.Add(1)
		writeRouterError(w, http.StatusServiceUnavailable,
			errorJSON{Error: fmt.Sprintf("primary unreachable: %v", err), Primary: r.primary.url})
		return
	}
	r.primary.routed.Add(1)
	writeProxied(w, resp, rb, r.primary)
}

func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	sts := r.Snapshot()
	healthyReads, primaryUp := 0, false
	for _, st := range sts {
		if st.Healthy {
			healthyReads++
			if st.Primary {
				primaryUp = true
			}
		}
	}
	resp := HealthResponse{Backends: sts}
	code := http.StatusOK
	switch {
	case healthyReads == 0:
		resp.Status = "unavailable"
		code = http.StatusServiceUnavailable
	case !primaryUp:
		resp.Status = "degraded"
	default:
		resp.Status = "ok"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	sts := r.Snapshot()
	healthy := 0
	for _, st := range sts {
		if st.Healthy {
			healthy++
		}
	}
	fmt.Fprintf(w, "pcrouter_backends %d\n", len(sts))
	fmt.Fprintf(w, "pcrouter_backends_healthy %d\n", healthy)
	fmt.Fprintf(w, "pcrouter_reads_total %d\n", r.reads.Load())
	fmt.Fprintf(w, "pcrouter_mutations_total %d\n", r.mutations.Load())
	fmt.Fprintf(w, "pcrouter_read_retries_total %d\n", r.retries.Load())
	fmt.Fprintf(w, "pcrouter_no_backend_total %d\n", r.noBackend.Load())
	// Deterministic label order: sorted by URL, primary's flag in the line.
	sorted := append([]BackendStatus(nil), sts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].URL < sorted[j].URL })
	for _, st := range sorted {
		up := 0
		if st.Healthy {
			up = 1
		}
		fmt.Fprintf(w, "pcrouter_backend_healthy{backend=%q} %d\n", st.URL, up)
		fmt.Fprintf(w, "pcrouter_backend_epoch{backend=%q} %d\n", st.URL, st.Epoch)
		fmt.Fprintf(w, "pcrouter_backend_inflight{backend=%q} %d\n", st.URL, st.Inflight)
		fmt.Fprintf(w, "pcrouter_backend_routed_total{backend=%q} %d\n", st.URL, st.Routed)
		fmt.Fprintf(w, "pcrouter_backend_ejections_total{backend=%q} %d\n", st.URL, st.Ejections)
	}
}
