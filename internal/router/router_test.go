package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeBackend is a scriptable pcserved stand-in: health status, role, and
// epoch are mutable, and per-path hit counts record what the router sent.
type fakeBackend struct {
	ts *httptest.Server

	mu         sync.Mutex
	role       string         // guarded by mu
	epoch      uint64         // guarded by mu
	healthCode int            // guarded by mu
	hits       map[string]int // guarded by mu
}

func newFakeBackend(t *testing.T, role string, epoch uint64) *fakeBackend {
	t.Helper()
	f := &fakeBackend{role: role, epoch: epoch, healthCode: http.StatusOK, hits: map[string]int{}}
	f.ts = httptest.NewServer(http.HandlerFunc(f.serve))
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeBackend) serve(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.hits[r.URL.Path]++
	role, epoch, code := f.role, f.epoch, f.healthCode
	f.mu.Unlock()
	switch r.URL.Path {
	case "/healthz":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		doc := map[string]any{"status": "ok", "role": role, "epoch": epoch}
		if role == "follower" {
			doc["replication"] = map[string]any{"applied_epoch": epoch}
		}
		_ = json.NewEncoder(w).Encode(doc)
	case "/v1/bound", "/v1/batch":
		fmt.Fprintf(w, `{"range":{"lo":1,"hi":2},"epoch":%d}`, epoch)
	case "/v1/store":
		fmt.Fprintf(w, `{"epoch":%d}`, epoch)
	case "/v1/store/add", "/v1/store/remove", "/v1/store/replace":
		fmt.Fprintf(w, `{"epoch":%d}`, epoch+1)
	default:
		http.NotFound(w, r)
	}
}

func (f *fakeBackend) setHealthCode(code int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.healthCode = code
}

func (f *fakeBackend) hitCount(path string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits[path]
}

// newTestRouter builds a router over the fakes with fast health polls and
// waits until every backend has been probed healthy.
func newTestRouter(t *testing.T, primary *fakeBackend, replicas ...*fakeBackend) (*Router, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, f := range replicas {
		urls[i] = f.ts.URL
	}
	r, err := New(Options{
		Primary: primary.ts.URL, Replicas: urls,
		CheckInterval: 10 * time.Millisecond, CheckTimeout: time.Second,
		MaxProbeBackoff: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)
	waitBackends(t, r, func(sts []BackendStatus) bool {
		for _, st := range sts {
			if !st.Healthy {
				return false
			}
		}
		return true
	})
	return r, ts
}

func waitBackends(t *testing.T, r *Router, ok func([]BackendStatus) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ok(r.Snapshot()) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("backends never reached the expected state: %+v", r.Snapshot())
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestMutationsRouteToPrimary: writes only ever reach the primary, and the
// backend's response (with the router's backend tag) passes through.
func TestMutationsRouteToPrimary(t *testing.T) {
	p := newFakeBackend(t, "primary", 10)
	f := newFakeBackend(t, "follower", 10)
	_, ts := newTestRouter(t, p, f)

	for i := 0; i < 5; i++ {
		resp, raw := post(t, ts.URL+"/v1/store/add", `{"constraints":[]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("add via router: %d (%s)", resp.StatusCode, raw)
		}
		if got := resp.Header.Get("X-Pcrouter-Backend"); got != p.ts.URL {
			t.Fatalf("mutation answered by %q, want primary %q", got, p.ts.URL)
		}
	}
	if got := f.hitCount("/v1/store/add"); got != 0 {
		t.Fatalf("follower saw %d mutations, want 0", got)
	}
	if got := p.hitCount("/v1/store/add"); got != 5 {
		t.Fatalf("primary saw %d mutations, want 5", got)
	}
}

// TestReadsPreferFollowers: unpinned reads land on followers, keeping the
// primary's capacity for writes.
func TestReadsPreferFollowers(t *testing.T) {
	p := newFakeBackend(t, "primary", 10)
	f1 := newFakeBackend(t, "follower", 10)
	f2 := newFakeBackend(t, "follower", 10)
	_, ts := newTestRouter(t, p, f1, f2)

	for i := 0; i < 10; i++ {
		resp, raw := post(t, ts.URL+"/v1/bound", `{"query":{"agg":"COUNT"}}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bound via router: %d (%s)", resp.StatusCode, raw)
		}
	}
	if got := p.hitCount("/v1/bound"); got != 0 {
		t.Fatalf("primary served %d reads with healthy followers available", got)
	}
	if f1.hitCount("/v1/bound")+f2.hitCount("/v1/bound") != 10 {
		t.Fatal("reads did not all land on followers")
	}
}

// TestMinEpochRoutesToQualifiedBackend: a read demanding an epoch ahead of
// every follower's tracked frontier goes to the primary instead of a
// follower that would stall or 412.
func TestMinEpochRoutesToQualifiedBackend(t *testing.T) {
	p := newFakeBackend(t, "primary", 10)
	lag := newFakeBackend(t, "follower", 5)
	_, ts := newTestRouter(t, p, lag)

	resp, raw := post(t, ts.URL+"/v1/bound", `{"query":{"agg":"COUNT"},"min_epoch":8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("min_epoch read: %d (%s)", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Pcrouter-Backend"); got != p.ts.URL {
		t.Fatalf("min_epoch 8 read answered by %q (follower tracked at 5), want primary", got)
	}
	if got := lag.hitCount("/v1/bound"); got != 0 {
		t.Fatalf("lagging follower saw %d epoch-demanding reads, want 0", got)
	}

	// An epoch pin behind the follower's frontier stays on the follower.
	resp, raw = post(t, ts.URL+"/v1/bound", `{"query":{"agg":"COUNT"},"epoch":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned read: %d (%s)", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Pcrouter-Backend"); got != lag.ts.URL {
		t.Fatalf("epoch 3 read answered by %q, want the qualified follower", got)
	}
}

// TestReadFailoverOnDeadBackend: a follower that dies between health polls
// is ejected by the first read that hits it, and that read retries on
// another backend — the client never sees the failure.
func TestReadFailoverOnDeadBackend(t *testing.T) {
	p := newFakeBackend(t, "primary", 10)
	f1 := newFakeBackend(t, "follower", 10)
	f2 := newFakeBackend(t, "follower", 10)

	urls := []string{f1.ts.URL, f2.ts.URL}
	r, err := New(Options{
		Primary: p.ts.URL, Replicas: urls,
		// A long interval so the router cannot learn of the death from a
		// probe first: the read path must discover and eject it.
		CheckInterval: time.Hour, CheckTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)
	waitBackends(t, r, func(sts []BackendStatus) bool {
		for _, st := range sts {
			if !st.Healthy {
				return false
			}
		}
		return true
	})

	f1.ts.Close() // SIGKILL stand-in: connections now refuse

	for i := 0; i < 50; i++ {
		resp, raw := post(t, ts.URL+"/v1/bound", `{"query":{"agg":"COUNT"}}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d failed through failover: %d (%s)", i, resp.StatusCode, raw)
		}
	}
	if r.retries.Load() == 0 {
		t.Fatal("no read ever hit the dead follower; failover untested (retry counter 0)")
	}
	var dead BackendStatus
	for _, st := range r.Snapshot() {
		if st.URL == f1.ts.URL {
			dead = st
		}
	}
	if dead.Healthy || dead.Ejections == 0 {
		t.Fatalf("dead follower not ejected: %+v", dead)
	}
}

// TestPrimaryDownFailFastAndReadsServe: with the primary gone, mutations
// fail fast with Retry-After and the primary's address while reads keep
// serving from followers, and the router reports itself degraded.
func TestPrimaryDownFailFastAndReadsServe(t *testing.T) {
	p := newFakeBackend(t, "primary", 10)
	f := newFakeBackend(t, "follower", 10)
	r, ts := newTestRouter(t, p, f)

	p.ts.Close()
	waitBackends(t, r, func(sts []BackendStatus) bool { return !sts[0].Healthy })

	resp, raw := post(t, ts.URL+"/v1/store/add", `{"constraints":[]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutation with primary down: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fail-fast mutation 503 missing Retry-After")
	}
	var e errorJSON
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	if e.Primary != p.ts.URL {
		t.Fatalf("error primary hint %q, want %q", e.Primary, p.ts.URL)
	}

	resp, raw = post(t, ts.URL+"/v1/bound", `{"query":{"agg":"COUNT"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read with primary down: %d (%s)", resp.StatusCode, raw)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK || hr.Status != "degraded" {
		t.Fatalf("router health = %d %q, want 200 degraded", hresp.StatusCode, hr.Status)
	}
}

// TestEjectionAndRecovery: an unhealthy backend is ejected, re-probed on a
// backoff, and rejoins the read pool once its health flips back.
func TestEjectionAndRecovery(t *testing.T) {
	p := newFakeBackend(t, "primary", 10)
	f := newFakeBackend(t, "follower", 10)
	r, ts := newTestRouter(t, p, f)

	f.setHealthCode(http.StatusServiceUnavailable)
	waitBackends(t, r, func(sts []BackendStatus) bool { return !sts[1].Healthy && sts[1].Ejections >= 1 })

	// Ejected: reads fall back to the primary.
	resp, raw := post(t, ts.URL+"/v1/bound", `{"query":{"agg":"COUNT"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read with follower ejected: %d (%s)", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Pcrouter-Backend"); got != p.ts.URL {
		t.Fatalf("read answered by %q with the only follower ejected, want primary", got)
	}

	f.setHealthCode(http.StatusOK)
	waitBackends(t, r, func(sts []BackendStatus) bool { return sts[1].Healthy })

	resp, raw = post(t, ts.URL+"/v1/bound", `{"query":{"agg":"COUNT"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read after recovery: %d (%s)", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Pcrouter-Backend"); got != f.ts.URL {
		t.Fatalf("read answered by %q after recovery, want the follower back in the pool", got)
	}
}

// TestRouterMetrics: the router exports per-backend health and routing
// counters in prometheus text form.
func TestRouterMetrics(t *testing.T) {
	p := newFakeBackend(t, "primary", 10)
	f := newFakeBackend(t, "follower", 10)
	_, ts := newTestRouter(t, p, f)

	post(t, ts.URL+"/v1/bound", `{"query":{"agg":"COUNT"}}`)
	post(t, ts.URL+"/v1/store/add", `{"constraints":[]}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		"pcrouter_backends 2\n",
		"pcrouter_backends_healthy 2\n",
		"pcrouter_reads_total 1\n",
		"pcrouter_mutations_total 1\n",
		"pcrouter_read_retries_total 0\n",
		fmt.Sprintf("pcrouter_backend_healthy{backend=%q} 1\n", f.ts.URL),
		fmt.Sprintf("pcrouter_backend_routed_total{backend=%q} 1\n", p.ts.URL),
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}
