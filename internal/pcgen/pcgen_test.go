package pcgen

import (
	"math"
	"math/rand"
	"testing"

	"pcbound/internal/core"
	"pcbound/internal/data"
	"pcbound/internal/sat"
)

func TestCorrPCValidAndClosed(t *testing.T) {
	tb := data.Intel(3000, 1)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	set, err := CorrPC(missing, []string{"device", "time"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Derived constraints must hold on the data they were derived from.
	if errs := set.Validate(missing.Rows()); len(errs) != 0 {
		t.Fatalf("Corr-PC violates its own data: %v", errs[0])
	}
	// And must tile the domain.
	sv := sat.New(missing.Schema())
	if !set.Closed(sv) {
		w, _ := set.Uncovered(sv)
		t.Fatalf("Corr-PC not closed; uncovered point %v", w)
	}
	// Grid partitions are disjoint: the engine can use the fast path.
	if !set.Disjoint() {
		t.Error("Corr-PC grid should be disjoint")
	}
	// Total frequency mass equals the missing cardinality.
	total := 0
	for _, pc := range set.PCs() {
		total += pc.KHi
	}
	if total != missing.Len() {
		t.Errorf("total KHi = %d, want %d", total, missing.Len())
	}
}

func TestCorrPC1D(t *testing.T) {
	tb := data.Intel(2000, 2)
	_, missing := tb.RemoveTopFraction("light", 0.2)
	set, err := CorrPC(missing, []string{"time"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 || set.Len() > 50 {
		t.Errorf("1-D partition size = %d", set.Len())
	}
	if errs := set.Validate(missing.Rows()); len(errs) != 0 {
		t.Fatalf("violations: %v", errs[0])
	}
	if !set.Closed(sat.New(missing.Schema())) {
		t.Error("1-D partition not closed")
	}
}

func TestCorrPCErrors(t *testing.T) {
	tb := data.Intel(100, 3)
	if _, err := CorrPC(tb, nil, 10); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := CorrPC(tb, []string{"a", "b", "c"}, 10); err == nil {
		t.Error("3 attributes accepted")
	}
	if _, err := CorrPC(tb, []string{"device"}, 0); err == nil {
		t.Error("0 buckets accepted")
	}
	if _, err := CorrPC(tb, []string{"nope"}, 10); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestRandPCValidAndClosed(t *testing.T) {
	tb := data.Intel(3000, 4)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	rng := rand.New(rand.NewSource(5))
	set, err := RandPC(missing, []string{"device", "time"}, 64, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if errs := set.Validate(missing.Rows()); len(errs) != 0 {
		t.Fatalf("Rand-PC violates its own data: %v", errs[0])
	}
	if !set.Closed(sat.New(missing.Schema())) {
		t.Error("Rand-PC not closed")
	}
	// The overlap layer must actually overlap.
	if set.Disjoint() {
		t.Error("Rand-PC with overlap boxes should not be disjoint")
	}
}

func TestOverlappingLayered(t *testing.T) {
	tb := data.Intel(2000, 6)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	set, err := Overlapping(missing, []string{"device", "time"}, 36)
	if err != nil {
		t.Fatal(err)
	}
	if set.Disjoint() {
		t.Error("Overlapping-PC should overlap")
	}
	if errs := set.Validate(missing.Rows()); len(errs) != 0 {
		t.Fatalf("violations: %v", errs[0])
	}
	if !set.Closed(sat.New(missing.Schema())) {
		t.Error("Overlapping-PC not closed")
	}
}

func TestNoisePerturbsOnlyValues(t *testing.T) {
	tb := data.Intel(2000, 7)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	set, err := CorrPC(missing, []string{"device", "time"}, 25)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	noisy := Noise(set, map[string]float64{"light": 100}, rng)
	if noisy.Len() != set.Len() {
		t.Fatalf("noise changed set size")
	}
	li := missing.Schema().MustIndex("light")
	changed := 0
	for i, pc := range noisy.PCs() {
		orig := set.PCs()[i]
		if pc.KLo != orig.KLo || pc.KHi != orig.KHi {
			t.Error("noise must not change frequency windows")
		}
		if pc.Values[li] != orig.Values[li] {
			changed++
		}
		// Untouched attributes unchanged.
		di := missing.Schema().MustIndex("device")
		if pc.Values[di] != orig.Values[di] {
			t.Error("noise leaked to device attribute")
		}
	}
	if changed == 0 {
		t.Error("noise changed nothing")
	}
	// With large noise, some constraints should now be violated by the data.
	if errs := noisy.Validate(missing.Rows()); len(errs) == 0 {
		t.Error("expected violations under heavy noise")
	}
}

// TestCorrPCBoundsAreSound runs the full loop: derive Corr-PC from missing
// rows, then check engine ranges contain the ground truth for aggregate
// queries.
func TestCorrPCBoundsAreSound(t *testing.T) {
	tb := data.Intel(4000, 9)
	_, missing := tb.RemoveTopFraction("light", 0.25)
	set, err := CorrPC(missing, []string{"device", "time"}, 81)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(set, nil, core.Options{})
	// Full-domain queries.
	truthCount := float64(missing.Len())
	truthSum := missing.Sum("light", nil)
	rc, err := e.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Contains(truthCount) {
		t.Errorf("COUNT truth %v outside %v", truthCount, rc)
	}
	rs, err := e.Sum("light", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Contains(truthSum) {
		t.Errorf("SUM truth %v outside %v", truthSum, rs)
	}
	// Exact counts mean the COUNT range must be tight.
	if rc.Lo != truthCount || rc.Hi != truthCount {
		t.Errorf("COUNT with exact frequencies should be exact: %v", rc)
	}
	// MIN/MAX hard bounds: truth inside.
	mx, err := e.Max("light", nil)
	if err != nil {
		t.Fatal(err)
	}
	truthMax, _ := missing.Max("light", nil)
	if !mx.Contains(truthMax) {
		t.Errorf("MAX truth %v outside %v", truthMax, mx)
	}
	if math.Abs(mx.Hi-truthMax) > 1e-9 {
		t.Errorf("MAX upper should equal the hull max: %v vs %v", mx.Hi, truthMax)
	}
}
