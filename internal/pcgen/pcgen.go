// Package pcgen constructs the predicate-constraint sets the paper's
// evaluation uses (Section 6.1.4):
//
//   - Corr-PC: an equi-cardinality grid partition over the attributes most
//     correlated with the aggregate, with exact per-bucket counts and value
//     hulls — the "reasonably best performance one could expect".
//   - Rand-PC: a randomly-placed grid (boundaries uniform over the domain,
//     ignoring the data distribution) plus randomly generated overlapping
//     boxes — the worst case.
//   - Overlapping-PC: a partition plus a coarser overlapping layer, used in
//     the noise-robustness experiment (Figure 6) to show that overlapping
//     constraints reject mis-specification.
//   - Noise: Gaussian perturbation of the value bounds, for Figure 6.
//
// All generators derive frequency windows and value hulls from the true
// missing rows, matching the paper's idealized setup in which every
// framework receives accurate information about the missing data.
package pcgen

import (
	"fmt"
	"math"
	"math/rand"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/table"
)

// CorrPC builds an equi-cardinality grid partition of the missing rows over
// the given attributes (1 or 2), with roughly n buckets. Buckets tile the
// full domain, so the resulting set is closed.
func CorrPC(missing *table.T, attrs []string, n int) (*core.Set, error) {
	bounds, err := gridBoundaries(missing, attrs, n, nil)
	if err != nil {
		return nil, err
	}
	return gridSet(missing, attrs, bounds)
}

// RandPC builds a randomly placed grid of roughly n buckets (boundaries
// uniform over the attribute domains) plus nOverlap random overlapping
// boxes. Counts and hulls still come from the data, so the set is accurate —
// just poorly aligned with the data's structure.
func RandPC(missing *table.T, attrs []string, n, nOverlap int, rng *rand.Rand) (*core.Set, error) {
	bounds, err := gridBoundaries(missing, attrs, n, rng)
	if err != nil {
		return nil, err
	}
	set, err := gridSet(missing, attrs, bounds)
	if err != nil {
		return nil, err
	}
	schema := missing.Schema()
	for i := 0; i < nOverlap; i++ {
		b := predicate.NewBuilder(schema)
		for _, a := range attrs {
			ai := schema.MustIndex(a)
			dom := schema.Attr(ai).Domain
			w := dom.Width() * (0.05 + 0.25*rng.Float64())
			lo := dom.Lo + rng.Float64()*(dom.Width()-w)
			b.Range(a, lo, lo+w)
		}
		pred := b.Build()
		if err := set.Add(pcFromData(missing, pred)); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// Overlapping builds a Corr-PC partition of n buckets plus a coarser layer
// of overlapping merged buckets on the first attribute, giving every region
// two independent constraints (Figure 6's Overlapping-PC).
func Overlapping(missing *table.T, attrs []string, n int) (*core.Set, error) {
	set, err := CorrPC(missing, attrs, n)
	if err != nil {
		return nil, err
	}
	// Coarse layer: partition the first attribute alone into n/4 pieces.
	coarse := n / 4
	if coarse < 1 {
		coarse = 1
	}
	coarseSet, err := CorrPC(missing, attrs[:1], coarse)
	if err != nil {
		return nil, err
	}
	if err := set.Add(coarseSet.PCs()...); err != nil {
		return nil, err
	}
	return set, nil
}

// Noise returns a copy of the set whose value-constraint endpoints are
// perturbed by independent Gaussian noise: sigmas maps attribute name to the
// noise standard deviation (Figure 6 uses k × the attribute's standard
// deviation). Frequency windows are unchanged. The result may no longer
// hold on the true data — that is the point of the experiment.
func Noise(set *core.Set, sigmas map[string]float64, rng *rand.Rand) *core.Set {
	schema := set.Schema()
	out := core.NewSet(schema)
	for _, pc := range set.PCs() {
		values := pc.Values.Clone()
		for name, sigma := range sigmas {
			i := schema.MustIndex(name)
			if values[i] == schema.Attr(i).Domain {
				continue // unconstrained attribute: nothing to corrupt
			}
			lo := values[i].Lo + rng.NormFloat64()*sigma
			hi := values[i].Hi + rng.NormFloat64()*sigma
			if lo > hi {
				lo, hi = hi, lo
			}
			values[i] = domain.NewInterval(lo, hi)
		}
		noisy := pc
		noisy.Values = values
		// Bypass Add-side validation deliberately: noisy constraints are
		// allowed to be wrong.
		if err := out.Add(noisy); err != nil {
			// Frequency windows are untouched, so Add can only fail on
			// schema mismatch, which cannot happen here.
			panic(err)
		}
	}
	return out
}

// gridBoundaries computes per-attribute bucket boundaries. With rng == nil
// the boundaries are data quantiles (equi-cardinality, Corr-PC); otherwise
// they are uniform random points over the domain (Rand-PC).
func gridBoundaries(missing *table.T, attrs []string, n int, rng *rand.Rand) ([][]float64, error) {
	if len(attrs) == 0 || len(attrs) > 2 {
		return nil, fmt.Errorf("pcgen: grid over %d attributes unsupported (want 1 or 2)", len(attrs))
	}
	if n < 1 {
		return nil, fmt.Errorf("pcgen: need at least 1 bucket, got %d", n)
	}
	schema := missing.Schema()
	parts := make([]int, len(attrs))
	if len(attrs) == 1 {
		parts[0] = n
	} else {
		g := int(math.Round(math.Sqrt(float64(n))))
		if g < 1 {
			g = 1
		}
		parts[0], parts[1] = g, g
	}
	bounds := make([][]float64, len(attrs))
	for d, a := range attrs {
		ai, ok := schema.Index(a)
		if !ok {
			return nil, fmt.Errorf("pcgen: unknown attribute %q", a)
		}
		if rng == nil {
			bounds[d] = missing.Quantiles(a, parts[d])
		} else {
			dom := schema.Attr(ai).Domain
			bs := make([]float64, parts[d]+1)
			bs[0], bs[parts[d]] = dom.Lo, dom.Hi
			for k := 1; k < parts[d]; k++ {
				bs[k] = dom.Lo + rng.Float64()*dom.Width()
			}
			sortFloats(bs)
			bounds[d] = bs
		}
	}
	return bounds, nil
}

// gridSet tiles the domain with boxes from the boundary lists and derives
// one PC per bucket from the missing rows.
func gridSet(missing *table.T, attrs []string, bounds [][]float64) (*core.Set, error) {
	schema := missing.Schema()
	set := core.NewSet(schema)
	var build func(d int, cur domain.Box) error
	boxes := []*predicate.P{}
	build = func(d int, cur domain.Box) error {
		if d == len(attrs) {
			boxes = append(boxes, predicate.FromBox(schema, cur))
			return nil
		}
		ai := schema.MustIndex(attrs[d])
		kind := schema.Attr(ai).Kind
		bs := bounds[d]
		for k := 0; k+1 < len(bs); k++ {
			lo := bs[k]
			if k > 0 {
				lo = succ(bs[k], kind) // half-open tiling: (b_k, b_{k+1}]
			}
			hi := bs[k+1]
			if lo > hi {
				continue // duplicate boundary: empty piece
			}
			next := cur.Clone()
			next[ai] = domain.NewInterval(lo, hi)
			if err := build(d+1, next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(0, schema.FullBox()); err != nil {
		return nil, err
	}
	for _, pred := range boxes {
		if err := set.Add(pcFromData(missing, pred)); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// pcFromData derives the exact PC for a predicate from the missing rows:
// frequency window (count, count) and value box equal to the hull of the
// matching rows (the full domain when no row matches).
func pcFromData(missing *table.T, pred *predicate.P) core.PC {
	schema := missing.Schema()
	cnt := int(missing.Count(pred))
	values := schema.FullBox()
	if cnt > 0 {
		values = missing.Hull(pred)
	}
	return core.PC{Pred: pred, Values: values, KLo: cnt, KHi: cnt}
}

func succ(v float64, k domain.Kind) float64 {
	if k == domain.Integral {
		return math.Floor(v) + 1
	}
	return math.Nextafter(v, math.Inf(1))
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
