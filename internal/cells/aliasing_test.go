package cells

import (
	"fmt"
	"sort"
	"testing"

	"pcbound/internal/predicate"
	"pcbound/internal/sat"
)

// The pre-optimization dfs threaded its active/neg path state through
// append(active, k) / append(neg, boxes[k]) call arguments. When an append
// had spare capacity, the include and exclude branches of one node shared a
// backing array, so a deeper include could overwrite a slot another branch's
// slice still referenced — latent only because the traversal was strictly
// sequential and emit copied what escaped. The decomposer now keeps a single
// explicit push/pop stack per path structure. These tests force the
// aliasing-prone shape — long include chains followed by exclude branches at
// every depth, so appends repeatedly land in spare capacity — and verify the
// enumeration against the naive strategy, which shares no path state.

// chainedPreds builds n nested predicates: predicate i covers [i, 100] in x.
// Every prefix is satisfiable, so the DFS walks a maximal include chain
// first, then unwinds through exclude branches at every depth — exactly the
// pattern that re-used spare append capacity across branches.
func chainedPreds(n int) (*sat.Solver, []*predicate.P) {
	s := schema2D()
	var preds []*predicate.P
	for i := 0; i < n; i++ {
		preds = append(preds, box(s, float64(i), 100, 0, 100))
	}
	return sat.New(s), preds
}

func cellKey(c Cell) string {
	return fmt.Sprintf("%v", c.Active)
}

func sortedKeys(cs []Cell) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = cellKey(c)
	}
	sort.Strings(out)
	return out
}

func TestDFSAliasingPatternMatchesNaive(t *testing.T) {
	for _, strat := range []Strategy{DFS, DFSRewrite} {
		for _, n := range []int{4, 9, 12} {
			solver, preds := chainedPreds(n)
			got, err := Decompose(solver, preds, Options{Strategy: strat, SkipProjections: true})
			if err != nil {
				t.Fatal(err)
			}
			want, err := Decompose(solver, preds, Options{Strategy: Naive, SkipProjections: true})
			if err != nil {
				t.Fatal(err)
			}
			g, w := sortedKeys(got.Cells), sortedKeys(want.Cells)
			if len(g) != len(w) {
				t.Fatalf("%v n=%d: %d cells, naive found %d", strat, n, len(g), len(w))
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("%v n=%d: cell sets diverge: %s vs %s", strat, n, g[i], w[i])
				}
			}
		}
	}
}

// TestEmittedCellsAreIndependent verifies no two emitted cells share Active
// backing storage and every Active list is strictly ascending — the
// invariants an aliasing bug would break first.
func TestEmittedCellsAreIndependent(t *testing.T) {
	solver, preds := chainedPreds(10)
	res, err := Decompose(solver, preds, Options{Strategy: DFSRewrite, SkipProjections: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 10 {
		// Nested predicates: exactly one cell per chain prefix.
		t.Fatalf("got %d cells, want 10", len(res.Cells))
	}
	seen := map[string]bool{}
	for _, c := range res.Cells {
		for j := 1; j < len(c.Active); j++ {
			if c.Active[j] <= c.Active[j-1] {
				t.Fatalf("cell %v: Active not strictly ascending", c.Active)
			}
		}
		k := cellKey(c)
		if seen[k] {
			t.Fatalf("duplicate cell %s — path state leaked between branches", k)
		}
		seen[k] = true
	}
	// Mutating one cell's Active must not disturb any other cell.
	if len(res.Cells) >= 2 && len(res.Cells[0].Active) > 0 {
		before := cellKey(res.Cells[1])
		res.Cells[0].Active[0] = -999
		if cellKey(res.Cells[1]) != before {
			t.Fatal("cells share Active backing arrays")
		}
	}
}

// TestEarlyStopCellsAreIndependent covers the same invariant for the
// early-stop expansion, whose act slices also grew via shared-capacity
// appends in the old implementation.
func TestEarlyStopCellsAreIndependent(t *testing.T) {
	solver, preds := chainedPreds(8)
	res, err := Decompose(solver, preds, Options{
		Strategy: DFSRewrite, EarlyStopLayer: 3, SkipProjections: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, c := range res.Cells {
		k := cellKey(c)
		if seen[k] {
			t.Fatalf("duplicate cell %s after early-stop expansion", k)
		}
		seen[k] = true
	}
}
