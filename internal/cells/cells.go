// Package cells implements cell decomposition (Section 4.1 of the paper):
// splitting a set of possibly-overlapping predicate boxes into disjoint
// satisfiable cells, each identified by the subset of predicates that hold
// inside it.
//
// It implements all four of the paper's optimizations:
//
//  1. Predicate pushdown — the target query's predicate is conjoined into
//     every satisfiability check, and predicates that cannot overlap the
//     query are removed from the branching set entirely.
//  2. DFS pruning — cells are enumerated by a depth-first search over
//     include/exclude decisions; an unsatisfiable prefix prunes its whole
//     subtree.
//  3. Expression rewriting — if a prefix X is satisfiable and X∧Y is not,
//     then X∧¬Y is satisfiable without consulting the solver
//     ((X ∧ ¬(X∧Y)) ⇒ X∧¬Y).
//  4. Approximate early stopping — below DFS layer K, stop verifying and
//     admit every remaining combination as satisfiable. This may admit
//     false-positive cells, which loosens but never invalidates the bounds
//     (the true problem is a sub-problem of the approximation).
package cells

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/sat"
)

// Strategy selects the enumeration algorithm.
type Strategy int

const (
	// DFSRewrite is the paper's full optimization stack (default).
	DFSRewrite Strategy = iota
	// DFS prunes unsatisfiable prefixes but re-checks every branch.
	DFS
	// Naive enumerates and checks all 2^n cells sequentially.
	Naive
)

func (s Strategy) String() string {
	switch s {
	case DFSRewrite:
		return "dfs+rewrite"
	case DFS:
		return "dfs"
	case Naive:
		return "naive"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a decomposition.
type Options struct {
	// Strategy selects naive/DFS/DFS+rewrite enumeration.
	Strategy Strategy
	// Pushdown, when non-nil, restricts the decomposition to the region
	// satisfying the query predicate (Optimization 1).
	Pushdown *predicate.P
	// EarlyStopLayer > 0 enables Optimization 4: below this DFS depth all
	// surviving combinations are admitted without solver checks.
	EarlyStopLayer int
	// MaxCells caps the number of emitted cells as a safety valve
	// (0 = unlimited). Decompose returns ErrTooManyCells beyond it.
	MaxCells int
	// SkipProjections disables exact per-cell attribute projections
	// (cheaper; value bounds then come only from the cell's positive boxes).
	SkipProjections bool
}

// ErrTooManyCells is returned when MaxCells is exceeded.
var ErrTooManyCells = fmt.Errorf("cells: decomposition exceeded MaxCells")

// PushdownBox returns the pushdown-normalized query region: the schema
// domain clipped by the pushdown predicate's box (the full domain when nil).
// This is the box Decompose intersects every satisfiability check with, and
// the box scoped cache invalidation tests mutated predicates against: a
// predicate box that does not overlap it on the schema lattice is dropped
// from the branching set, so it cannot influence the decomposition.
func PushdownBox(schema *domain.Schema, pushdown *predicate.P) domain.Box {
	b := schema.FullBox()
	if pushdown != nil {
		b = b.Intersect(pushdown.Box())
	}
	return b
}

// BoxKey renders a box bit-exactly as a string, suitable as a cache key:
// two boxes yield the same key iff they have identical float64 endpoints.
func BoxKey(b domain.Box) string {
	var sb strings.Builder
	sb.Grow(len(b) * 34)
	for _, iv := range b {
		sb.WriteString(strconv.FormatUint(math.Float64bits(iv.Lo), 16))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(math.Float64bits(iv.Hi), 16))
		sb.WriteByte(';')
	}
	return sb.String()
}

// PushdownKey returns a canonical key for the pushdown-normalized query
// region: BoxKey(PushdownBox(schema, pushdown)). Two pushdown predicates
// with the same clipped box yield the same key, and Decompose (and
// everything derived from it) produces identical results for them, so the
// key is safe to use for caching decompositions.
func PushdownKey(schema *domain.Schema, pushdown *predicate.P) string {
	return BoxKey(PushdownBox(schema, pushdown))
}

// Cell is one satisfiable region of the decomposition: the set of points
// satisfying every predicate in Active, no predicate outside it, and the
// pushdown predicate if one was given.
type Cell struct {
	// Active lists indices (into the decomposed predicate set) of the
	// predicates that hold in this cell, ascending.
	Active []int
	// Region is the cell's positive bounding box: the intersection of the
	// active predicate boxes and the pushdown box. The cell's true region is
	// Region minus the inactive predicate boxes.
	Region domain.Box
	// Projection is the tightest per-attribute interval over the true cell
	// region (equal to Region when SkipProjections is set or the cell was
	// admitted unverified by early stopping).
	Projection domain.Box
	// Verified records whether the solver proved the cell satisfiable
	// (false only under early stopping).
	Verified bool
}

// Result is a decomposition outcome.
type Result struct {
	Cells []Cell
	// Checks is the number of satisfiability queries issued (the paper's
	// Figure 7 "number of evaluated cells" metric).
	Checks int64
	// RewriteSkips counts solver calls avoided by Optimization 3.
	RewriteSkips int64
	// PrunedSubtrees counts DFS subtrees cut by an unsatisfiable prefix.
	PrunedSubtrees int64
	// DroppedByPushdown counts predicates removed from the branching set by
	// Optimization 1.
	DroppedByPushdown int
}

// Decompose splits the predicate set into disjoint satisfiable cells.
// The indices in Cell.Active refer to positions in preds.
func Decompose(solver *sat.Solver, preds []*predicate.P, opts Options) (Result, error) {
	schema := solver.Schema()
	var res Result

	base := schema.FullBox()
	if opts.Pushdown != nil {
		base = base.Intersect(opts.Pushdown.Box())
	}

	// Optimization 1: drop predicates that cannot intersect the query box.
	kept := make([]int, 0, len(preds))
	for i, p := range preds {
		if base.Intersect(p.Box()).EmptyFor(schema) {
			res.DroppedByPushdown++
			continue
		}
		kept = append(kept, i)
	}
	n := len(kept)
	if n == 0 {
		return res, nil
	}

	boxes := make([]domain.Box, n)
	for k, i := range kept {
		boxes[k] = preds[i].Box()
	}

	dims := len(base)
	dc := &decomposer{
		solver: solver,
		boxes:  boxes,
		kept:   kept,
		opts:   opts,
		res:    &res,
		// The DFS pushes at most one prefix box per include decision plus the
		// root, so the arena's capacity is fixed up front and prefix slices
		// stay valid for the lifetime of their subtree.
		posArena:   make([]domain.Interval, 0, (n+1)*dims),
		active:     make([]int, 0, n),
		neg:        make([]domain.Box, 0, n),
		negScratch: make([]domain.Box, 0, n),
		esAct:      make([]int, 0, n),
		esBox:      make(domain.Box, dims),
	}

	switch opts.Strategy {
	case Naive:
		if err := dc.naive(base); err != nil {
			return res, err
		}
	case DFS, DFSRewrite:
		dc.rewrite = opts.Strategy == DFSRewrite
		// Root must be satisfiable for the rewrite invariant ("prefix is
		// known sat") to hold from the start.
		res.Checks++
		if !solver.SatBoxes(base, nil) {
			return res, nil
		}
		root := dc.pushPos(base)
		if err := dc.dfs(root, 0); err != nil {
			return res, err
		}
	default:
		return res, fmt.Errorf("cells: unknown strategy %v", opts.Strategy)
	}
	return res, nil
}

// decomposer carries the working state of one decomposition. The DFS path
// state lives in shared push/pop stacks rather than per-node slices: that
// removes the per-node allocations of the appended active/neg lists and the
// re-intersected prefix boxes, and it eliminates the slice-aliasing hazard
// of sharing append-grown backing arrays between the include and exclude
// branches (emit copies whatever escapes into a Cell).
type decomposer struct {
	solver  *sat.Solver
	boxes   []domain.Box
	kept    []int
	opts    Options
	res     *Result
	rewrite bool

	// posArena stacks the DFS prefix regions (one box pushed per include
	// decision); fixed capacity, so subslices never move.
	posArena []domain.Interval
	// active holds the local indices of included predicates on the DFS path.
	active []int
	// neg holds the boxes of excluded predicates on the DFS path.
	neg []domain.Box

	negScratch []domain.Box // emit's inactive-box list (reused per cell)
	esAct      []int        // early-stop scratch active list
	esBox      domain.Box   // early-stop scratch region
}

// pushPos copies b onto the prefix arena and returns the stacked copy.
func (dc *decomposer) pushPos(b domain.Box) domain.Box {
	off := len(dc.posArena)
	dc.posArena = append(dc.posArena, b...)
	return domain.Box(dc.posArena[off : off+len(b)])
}

// pushPosIntersect stacks pos ∩ box without heap allocation.
func (dc *decomposer) pushPosIntersect(pos, box domain.Box) domain.Box {
	off := len(dc.posArena)
	dc.posArena = append(dc.posArena, pos...)
	out := domain.Box(dc.posArena[off : off+len(pos)])
	for d := range out {
		out[d] = out[d].Intersect(box[d])
	}
	return out
}

func (dc *decomposer) popPos(b domain.Box) {
	dc.posArena = dc.posArena[:len(dc.posArena)-len(b)]
}

// naive checks each of the 2^n cells independently (no pruning); cells with
// an empty active set are skipped (they lie outside every predicate, which
// closure excludes).
func (dc *decomposer) naive(base domain.Box) error {
	n := len(dc.boxes)
	if n > 30 {
		return fmt.Errorf("cells: naive enumeration of 2^%d cells refused", n)
	}
	// Dedicated buffers: emit reuses the decomposer scratch slices, so the
	// enumeration state must not share them.
	activeBuf := make([]int, 0, n)
	posBuf := make(domain.Box, 0, len(base))
	negBuf := make([]domain.Box, 0, n)
	for mask := 1; mask < (1 << n); mask++ {
		active := activeBuf[:0]
		pos := append(posBuf[:0], base...)
		neg := negBuf[:0]
		for k := 0; k < n; k++ {
			if mask&(1<<k) != 0 {
				active = append(active, k)
				for d := range pos {
					pos[d] = pos[d].Intersect(dc.boxes[k][d])
				}
			} else {
				neg = append(neg, dc.boxes[k])
			}
		}
		dc.res.Checks++
		if dc.solver.SatBoxes(pos, neg) {
			if err := dc.emit(pos, active, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// dfs explores include/exclude decisions for predicate k given a satisfiable
// prefix (pos region minus dc.neg). The prefix is always known satisfiable
// on entry.
func (dc *decomposer) dfs(pos domain.Box, k int) error {
	n := len(dc.boxes)
	if k == n {
		if len(dc.active) == 0 {
			// Outside every predicate: excluded by closure.
			return nil
		}
		return dc.emit(pos, dc.active, true)
	}
	if dc.opts.EarlyStopLayer > 0 && k >= dc.opts.EarlyStopLayer {
		// Optimization 4: admit all remaining combinations unverified.
		return dc.earlyStopExpand(pos, k)
	}

	// Include branch: prefix ∧ ψk.
	incPos := dc.pushPosIntersect(pos, dc.boxes[k])
	dc.res.Checks++
	incSat := dc.solver.SatBoxes(incPos, dc.neg)
	if incSat {
		dc.active = append(dc.active, k)
		err := dc.dfs(incPos, k+1)
		dc.active = dc.active[:len(dc.active)-1]
		if err != nil {
			return err
		}
	} else {
		dc.res.PrunedSubtrees++
	}
	dc.popPos(incPos)

	// Exclude branch: prefix ∧ ¬ψk.
	dc.neg = append(dc.neg, dc.boxes[k])
	var err error
	switch {
	case !incSat && dc.rewrite:
		// Optimization 3: X sat ∧ (X∧Y unsat) ⇒ X∧¬Y sat; skip the check.
		dc.res.RewriteSkips++
		err = dc.dfs(pos, k+1)
	default:
		dc.res.Checks++
		if dc.solver.SatBoxes(pos, dc.neg) {
			err = dc.dfs(pos, k+1)
		} else {
			dc.res.PrunedSubtrees++
		}
	}
	dc.neg = dc.neg[:len(dc.neg)-1]
	return err
}

// earlyStopExpand emits every completion of the current prefix as an
// unverified cell.
func (dc *decomposer) earlyStopExpand(pos domain.Box, k int) error {
	n := len(dc.boxes)
	rem := n - k
	if rem > 30 {
		return fmt.Errorf("cells: early stop would expand 2^%d cells", rem)
	}
	for mask := 0; mask < (1 << rem); mask++ {
		act := append(dc.esAct[:0], dc.active...)
		cur := append(dc.esBox[:0], pos...)
		empty := false
		for j := 0; j < rem; j++ {
			if mask&(1<<j) != 0 {
				act = append(act, k+j)
				for d := range cur {
					cur[d] = cur[d].Intersect(dc.boxes[k+j][d])
				}
				if cur.Empty() {
					// Cheap local reject: positive intersection already empty
					// (this is not a solver call).
					empty = true
					break
				}
			}
		}
		if empty || len(act) == 0 {
			continue
		}
		if err := dc.emit(cur, act, false); err != nil {
			return err
		}
	}
	return nil
}

// emit records one satisfiable cell. region is the prefix box maintained
// incrementally by the search (bit-identical to re-intersecting the active
// boxes from scratch, since interval intersection is exact min/max);
// activeLocal lists the included predicates by local index, ascending.
func (dc *decomposer) emit(region domain.Box, activeLocal []int, verified bool) error {
	if dc.opts.MaxCells > 0 && len(dc.res.Cells) >= dc.opts.MaxCells {
		return ErrTooManyCells
	}
	n := len(dc.boxes)
	active := make([]int, len(activeLocal))
	neg := dc.negScratch[:0]
	// Two-pointer merge over the ascending activeLocal list: predicates not
	// on it are the cell's negated boxes.
	ai := 0
	for k := 0; k < n; k++ {
		if ai < len(activeLocal) && activeLocal[ai] == k {
			active[ai] = dc.kept[k]
			ai++
		} else {
			neg = append(neg, dc.boxes[k])
		}
	}
	regionOut := region.Clone()
	proj := region.Clone()
	if !dc.opts.SkipProjections && verified {
		boxesRem := dc.solver.RemainderBoxes(regionOut, neg)
		if len(boxesRem) == 0 {
			// Region became empty under exact projection: skip the cell.
			return nil
		}
		for d := range proj {
			iv := boxesRem[0][d]
			for _, rb := range boxesRem[1:] {
				iv = iv.Hull(rb[d])
			}
			proj[d] = iv
		}
	}
	dc.res.Cells = append(dc.res.Cells, Cell{
		Active:     active,
		Region:     regionOut,
		Projection: proj,
		Verified:   verified,
	})
	return nil
}

// UpperValue returns the tightest upper bound on attribute attr for rows in
// the cell, combining the active PCs' value-constraint bounds with the
// cell's exact region projection. valueBoxes[i] is predicate i's value
// constraint ν.
func (c *Cell) UpperValue(attrIdx int, valueBoxes []domain.Box) float64 {
	u := c.Projection[attrIdx].Hi
	for _, i := range c.Active {
		if h := valueBoxes[i][attrIdx].Hi; h < u {
			u = h
		}
	}
	return u
}

// LowerValue is the dual of UpperValue.
func (c *Cell) LowerValue(attrIdx int, valueBoxes []domain.Box) float64 {
	l := c.Projection[attrIdx].Lo
	for _, i := range c.Active {
		if lo := valueBoxes[i][attrIdx].Lo; lo > l {
			l = lo
		}
	}
	return l
}

// MaxCount returns the tightest per-cell cardinality cap implied by the
// active PCs' frequency upper bounds.
func (c *Cell) MaxCount(kHi []float64) float64 {
	u := math.Inf(1)
	for _, i := range c.Active {
		if kHi[i] < u {
			u = kHi[i]
		}
	}
	return u
}
