package cells

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/sat"
)

func schema2D() *domain.Schema {
	return domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
		domain.Attr{Name: "y", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
	)
}

func box(s *domain.Schema, xlo, xhi, ylo, yhi float64) *predicate.P {
	return predicate.NewBuilder(s).Range("x", xlo, xhi).Range("y", ylo, yhi).Build()
}

func keys(cs []Cell) []string {
	var out []string
	for _, c := range cs {
		k := ""
		for _, a := range c.Active {
			k += string(rune('a' + a))
		}
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestDecomposeDisjoint(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	preds := []*predicate.P{
		box(s, 0, 10, 0, 10),
		box(s, 20, 30, 0, 10),
		box(s, 40, 50, 0, 10),
	}
	for _, strat := range []Strategy{Naive, DFS, DFSRewrite} {
		res, err := Decompose(sv, preds, Options{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		got := keys(res.Cells)
		want := []string{"a", "b", "c"}
		if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
			t.Errorf("%v: cells = %v, want %v", strat, got, want)
		}
	}
}

func TestDecomposeOverlappingPair(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	// Figure-2-style overlap: A and B overlap; cells: A\B, A∩B, B\A.
	preds := []*predicate.P{
		box(s, 0, 50, 0, 50),
		box(s, 30, 80, 30, 80),
	}
	for _, strat := range []Strategy{Naive, DFS, DFSRewrite} {
		res, err := Decompose(sv, preds, Options{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		got := keys(res.Cells)
		want := []string{"a", "ab", "b"}
		if len(got) != 3 {
			t.Fatalf("%v: got %v, want %v", strat, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v: cells = %v, want %v", strat, got, want)
			}
		}
	}
}

func TestDecomposeNestedPredicate(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	// B strictly inside A: cells are A\B and A∩B; "B without A" is
	// unsatisfiable.
	preds := []*predicate.P{
		box(s, 0, 50, 0, 50),
		box(s, 10, 20, 10, 20),
	}
	res, err := Decompose(sv, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := keys(res.Cells)
	if len(got) != 2 || got[0] != "a" || got[1] != "ab" {
		t.Errorf("cells = %v, want [a ab]", got)
	}
}

func TestStrategiesAgreeOnRandomInstances(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		preds := make([]*predicate.P, n)
		for i := range preds {
			xl := rng.Float64() * 70
			yl := rng.Float64() * 70
			preds[i] = box(s, xl, xl+10+rng.Float64()*30, yl, yl+10+rng.Float64()*30)
		}
		var results [][]string
		var checks []int64
		for _, strat := range []Strategy{Naive, DFS, DFSRewrite} {
			res, err := Decompose(sv, preds, Options{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, keys(res.Cells))
			checks = append(checks, res.Checks)
		}
		for i := 1; i < len(results); i++ {
			if len(results[i]) != len(results[0]) {
				t.Fatalf("trial %d: strategy %d found %d cells, naive %d",
					trial, i, len(results[i]), len(results[0]))
			}
			for j := range results[0] {
				if results[i][j] != results[0][j] {
					t.Fatalf("trial %d: cell sets differ: %v vs %v", trial, results[i], results[0])
				}
			}
		}
		// DFS checks internal prefix nodes as well as leaves, so without any
		// pruning it can do up to ~2x the naive leaf checks; it must never
		// exceed that. Rewriting never checks more than plain DFS.
		if checks[1] > 2*checks[0]+2 {
			t.Errorf("trial %d: DFS checks %d > 2x naive %d", trial, checks[1], checks[0])
		}
		if checks[2] > checks[1] {
			t.Errorf("trial %d: rewrite checks %d > DFS %d", trial, checks[2], checks[1])
		}
	}
}

func TestPushdownDropsAndRestricts(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	preds := []*predicate.P{
		box(s, 0, 10, 0, 10),   // inside query
		box(s, 60, 90, 60, 90), // outside query
		box(s, 5, 25, 0, 10),   // straddles the query boundary
	}
	query := box(s, 0, 20, 0, 20)
	res, err := Decompose(sv, preds, Options{Pushdown: query})
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedByPushdown != 1 {
		t.Errorf("DroppedByPushdown = %d, want 1", res.DroppedByPushdown)
	}
	for _, c := range res.Cells {
		for _, a := range c.Active {
			if a == 1 {
				t.Error("cell active on predicate outside query")
			}
		}
		if !query.Box().ContainsBox(c.Region) {
			t.Errorf("cell region %v escapes query box", c.Region)
		}
	}
	// Indices must refer to the ORIGINAL predicate slice.
	seen := map[int]bool{}
	for _, c := range res.Cells {
		for _, a := range c.Active {
			seen[a] = true
		}
	}
	if !seen[0] || !seen[2] {
		t.Errorf("expected original indices 0 and 2 active somewhere, got %v", seen)
	}
}

func TestRewriteSkipsCounted(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	// Disjoint predicates maximize "include branch unsat" events, so the
	// rewrite rule fires often.
	var preds []*predicate.P
	for i := 0; i < 6; i++ {
		lo := float64(i) * 15
		preds = append(preds, box(s, lo, lo+10, 0, 10))
	}
	plain, err := Decompose(sv, preds, Options{Strategy: DFS})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Decompose(sv, preds, Options{Strategy: DFSRewrite})
	if err != nil {
		t.Fatal(err)
	}
	if rw.RewriteSkips == 0 {
		t.Error("expected rewrite skips > 0 on disjoint predicates")
	}
	if rw.Checks >= plain.Checks {
		t.Errorf("rewrite checks %d >= plain %d", rw.Checks, plain.Checks)
	}
	if len(rw.Cells) != len(plain.Cells) {
		t.Errorf("cell counts differ: %d vs %d", len(rw.Cells), len(plain.Cells))
	}
}

func TestEarlyStopAdmitsSuperset(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	rng := rand.New(rand.NewSource(17))
	n := 6
	preds := make([]*predicate.P, n)
	for i := range preds {
		xl := rng.Float64() * 60
		yl := rng.Float64() * 60
		preds[i] = box(s, xl, xl+30, yl, yl+30)
	}
	exact, err := Decompose(sv, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Decompose(sv, preds, Options{EarlyStopLayer: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(approx.Cells) < len(exact.Cells) {
		t.Errorf("early stop found %d cells < exact %d", len(approx.Cells), len(exact.Cells))
	}
	if approx.Checks >= exact.Checks {
		t.Errorf("early stop checks %d >= exact %d", approx.Checks, exact.Checks)
	}
	// Every exact cell must appear in the approximation.
	approxSet := map[string]bool{}
	for _, k := range keys(approx.Cells) {
		approxSet[k] = true
	}
	for _, k := range keys(exact.Cells) {
		if !approxSet[k] {
			t.Errorf("exact cell %q missing from early-stop result", k)
		}
	}
	// Unverified cells must be flagged.
	anyUnverified := false
	for _, c := range approx.Cells {
		if !c.Verified {
			anyUnverified = true
		}
	}
	if len(approx.Cells) > len(exact.Cells) && !anyUnverified {
		t.Error("extra admitted cells must be unverified")
	}
}

func TestMaxCells(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	var preds []*predicate.P
	for i := 0; i < 8; i++ {
		preds = append(preds, box(s, float64(i), float64(i)+50, 0, 100))
	}
	_, err := Decompose(sv, preds, Options{MaxCells: 3})
	if err != ErrTooManyCells {
		t.Fatalf("err = %v, want ErrTooManyCells", err)
	}
}

func TestNaiveRefusesHugeN(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	preds := make([]*predicate.P, 31)
	for i := range preds {
		preds[i] = box(s, 0, 100, 0, 100)
	}
	if _, err := Decompose(sv, preds, Options{Strategy: Naive}); err == nil {
		t.Fatal("want refusal for n=31 naive enumeration")
	}
}

func TestCellValueHelpers(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	preds := []*predicate.P{
		box(s, 0, 50, 0, 50),
		box(s, 30, 80, 0, 50),
	}
	valueBoxes := []domain.Box{
		{domain.NewInterval(0, 100), domain.NewInterval(0, 10)},
		{domain.NewInterval(0, 100), domain.NewInterval(5, 8)},
	}
	kHi := []float64{100, 50}
	res, err := Decompose(sv, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if len(c.Active) == 2 {
			// Overlap cell: most restrictive value bound on y is [5, 8],
			// count cap is 50.
			if u := c.UpperValue(1, valueBoxes); u != 8 {
				t.Errorf("overlap UpperValue = %v, want 8", u)
			}
			if l := c.LowerValue(1, valueBoxes); l != 5 {
				t.Errorf("overlap LowerValue = %v, want 5", l)
			}
			if mc := c.MaxCount(kHi); mc != 50 {
				t.Errorf("overlap MaxCount = %v, want 50", mc)
			}
		}
		if len(c.Active) == 1 && c.Active[0] == 0 {
			// Region projection clips x to [0, 50] even though ν allows 100.
			if u := c.UpperValue(0, valueBoxes); u > 50 {
				t.Errorf("cell-a UpperValue(x) = %v, want <= 50", u)
			}
			if mc := c.MaxCount(kHi); mc != 100 {
				t.Errorf("cell-a MaxCount = %v, want 100", mc)
			}
		}
	}
}

func TestProjectionTighterThanRegion(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	// Cell "a only" has a bite taken out of the middle-right by b: the exact
	// projection of x over a\b is still [0,50] (left edge uncovered), but
	// the y projection stays [0,50]. Use a construction where projection is
	// strictly tighter: b covers the whole right half of a.
	preds := []*predicate.P{
		box(s, 0, 50, 0, 50),
		box(s, 25, 50, 0, 50),
	}
	res, err := Decompose(sv, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if len(c.Active) == 1 && c.Active[0] == 0 {
			// a\b: x must project to [0, 25).
			if c.Projection[0].Hi >= 25 {
				t.Errorf("a\\b x projection = %v, want < 25", c.Projection[0])
			}
		}
	}
}

func TestDecomposeEmptyInputs(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	res, err := Decompose(sv, nil, Options{})
	if err != nil || len(res.Cells) != 0 {
		t.Fatalf("empty input: %v %v", res, err)
	}
	// Pushdown excluding everything.
	pred := box(s, 0, 10, 0, 10)
	q := box(s, 90, 100, 90, 100)
	res, err = Decompose(sv, []*predicate.P{pred}, Options{Pushdown: q})
	if err != nil || len(res.Cells) != 0 || res.DroppedByPushdown != 1 {
		t.Fatalf("pushdown exclusion: %+v %v", res, err)
	}
}

func TestDecomposeIdenticalPredicates(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	p := box(s, 0, 10, 0, 10)
	res, err := Decompose(sv, []*predicate.P{p, p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Only the both-active cell is satisfiable.
	if len(res.Cells) != 1 || len(res.Cells[0].Active) != 2 {
		t.Fatalf("identical predicates: cells = %v", keys(res.Cells))
	}
}

func TestMaxCountInfinityWhenUnbounded(t *testing.T) {
	c := Cell{Active: []int{0}}
	if mc := c.MaxCount([]float64{math.Inf(1)}); !math.IsInf(mc, 1) {
		t.Errorf("MaxCount = %v, want +inf", mc)
	}
}

func TestStrategyString(t *testing.T) {
	for _, st := range []Strategy{Naive, DFS, DFSRewrite, Strategy(9)} {
		if st.String() == "" {
			t.Error("empty strategy string")
		}
	}
}
