package cells

import (
	"testing"

	"pcbound/internal/predicate"
	"pcbound/internal/sat"
)

func TestEarlyStopMaxCellsRespected(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	var preds []*predicate.P
	for i := 0; i < 8; i++ {
		preds = append(preds, box(s, float64(i), float64(i)+60, 0, 100))
	}
	_, err := Decompose(sv, preds, Options{EarlyStopLayer: 1, MaxCells: 2})
	if err != ErrTooManyCells {
		t.Fatalf("err = %v, want ErrTooManyCells", err)
	}
}

func TestEarlyStopLayerZeroMeansExact(t *testing.T) {
	s := schema2D()
	sv := sat.New(s)
	preds := []*predicate.P{
		box(s, 0, 50, 0, 50),
		box(s, 30, 80, 30, 80),
	}
	exact, err := Decompose(sv, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Decompose(sv, preds, Options{EarlyStopLayer: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Cells) != len(zero.Cells) {
		t.Errorf("layer 0 should disable early stopping: %d vs %d cells",
			len(zero.Cells), len(exact.Cells))
	}
	for _, c := range zero.Cells {
		if !c.Verified {
			t.Error("all cells must be verified without early stopping")
		}
	}
}

func TestEarlyStopDeepLayerEqualsExact(t *testing.T) {
	// A stop layer at or beyond n never fires: results identical to exact.
	s := schema2D()
	sv := sat.New(s)
	preds := []*predicate.P{
		box(s, 0, 50, 0, 50),
		box(s, 30, 80, 30, 80),
		box(s, 60, 100, 0, 40),
	}
	exact, err := Decompose(sv, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Decompose(sv, preds, Options{EarlyStopLayer: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Cells) != len(deep.Cells) {
		t.Errorf("deep stop layer changed the result: %d vs %d", len(deep.Cells), len(exact.Cells))
	}
}

func TestEarlyStopPositiveIntersectionPruning(t *testing.T) {
	// Early-stopped expansion still drops combinations whose positive boxes
	// have empty intersection (a cheap local check, not a solver call).
	s := schema2D()
	sv := sat.New(s)
	preds := []*predicate.P{
		box(s, 0, 10, 0, 10),
		box(s, 90, 100, 90, 100), // disjoint from the first
	}
	res, err := Decompose(sv, preds, Options{EarlyStopLayer: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if len(c.Active) == 2 {
			t.Error("disjoint pair admitted as a joint cell by early stopping")
		}
	}
}
