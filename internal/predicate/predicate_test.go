package predicate

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pcbound/internal/domain"
)

func testSchema() *domain.Schema {
	return domain.NewSchema(
		domain.Attr{Name: "price", Kind: domain.Continuous, Domain: domain.NewInterval(0, 1000)},
		domain.Attr{Name: "branch", Kind: domain.Integral, Domain: domain.NewInterval(0, 4)},
		domain.Attr{Name: "utc", Kind: domain.Integral, Domain: domain.NewInterval(0, 1e9)},
	)
}

func TestTrueEvalsEverything(t *testing.T) {
	s := testSchema()
	p := True(s)
	rows := []domain.Row{{0, 0, 0}, {999, 4, 5}, {1000, 0, 1e9}}
	for _, r := range rows {
		if !p.Eval(r) {
			t.Errorf("TRUE rejected %v", r)
		}
	}
	if p.String() != "TRUE" {
		t.Errorf("String = %q", p.String())
	}
	if p.IsEmpty() {
		t.Error("TRUE is empty")
	}
}

func TestBuilderRangeEqEval(t *testing.T) {
	s := testSchema()
	p := NewBuilder(s).Range("price", 0, 149.99).Eq("branch", 1).Build()
	tests := []struct {
		row  domain.Row
		want bool
	}{
		{domain.Row{100, 1, 5}, true},
		{domain.Row{149.99, 1, 5}, true},
		{domain.Row{150, 1, 5}, false},
		{domain.Row{100, 2, 5}, false},
		{domain.Row{0, 1, 0}, true},
	}
	for _, tt := range tests {
		if got := p.Eval(tt.row); got != tt.want {
			t.Errorf("Eval(%v) = %v, want %v", tt.row, got, tt.want)
		}
	}
}

func TestBuilderLtGtIntegral(t *testing.T) {
	s := testSchema()
	// branch < 3 on an integral attribute means branch <= 2.
	p := NewBuilder(s).Lt("branch", 3).Build()
	if !p.Eval(domain.Row{0, 2, 0}) || p.Eval(domain.Row{0, 3, 0}) {
		t.Error("Lt on integral attribute wrong")
	}
	q := NewBuilder(s).Gt("branch", 1).Build()
	if !q.Eval(domain.Row{0, 2, 0}) || q.Eval(domain.Row{0, 1, 0}) {
		t.Error("Gt on integral attribute wrong")
	}
	// Fractional thresholds: branch < 2.5 means branch <= 2.
	r := NewBuilder(s).Lt("branch", 2.5).Build()
	if r.Interval("branch").Hi != 2 {
		t.Errorf("Lt(2.5) Hi = %v, want 2", r.Interval("branch").Hi)
	}
}

func TestBuilderLtGtContinuous(t *testing.T) {
	s := testSchema()
	p := NewBuilder(s).Lt("price", 100).Build()
	if p.Eval(domain.Row{100, 0, 0}) {
		t.Error("price < 100 accepted 100")
	}
	if !p.Eval(domain.Row{99.999999, 0, 0}) {
		t.Error("price < 100 rejected 99.999999")
	}
	q := NewBuilder(s).Gt("price", 100).Build()
	if q.Eval(domain.Row{100, 0, 0}) || !q.Eval(domain.Row{100.000001, 0, 0}) {
		t.Error("price > 100 boundary wrong")
	}
}

func TestAndIntersects(t *testing.T) {
	s := testSchema()
	a := NewBuilder(s).Range("price", 0, 200).Build()
	b := NewBuilder(s).Range("price", 100, 300).Build()
	c := a.And(b)
	iv := c.Interval("price")
	if iv.Lo != 100 || iv.Hi != 200 {
		t.Errorf("And interval = %v", iv)
	}
}

func TestAndDifferentSchemasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	True(testSchema()).And(True(testSchema()))
}

func TestImpliesAndOverlaps(t *testing.T) {
	s := testSchema()
	narrow := NewBuilder(s).Range("price", 10, 20).Eq("branch", 1).Build()
	wide := NewBuilder(s).Range("price", 0, 100).Build()
	if !narrow.Implies(wide) {
		t.Error("narrow should imply wide")
	}
	if wide.Implies(narrow) {
		t.Error("wide should not imply narrow")
	}
	if !narrow.Overlaps(wide) {
		t.Error("expected overlap")
	}
	disjoint := NewBuilder(s).Range("price", 500, 600).Build()
	if narrow.Overlaps(disjoint) {
		t.Error("unexpected overlap")
	}
}

func TestOverlapsLatticeAware(t *testing.T) {
	s := testSchema()
	// branch in [1.2, 1.8] contains no integer; predicates overlap over the
	// reals but not on the lattice.
	a := NewBuilder(s).Range("branch", 0, 1.8).Build()
	b := NewBuilder(s).Range("branch", 1.2, 4).Build()
	if a.Overlaps(b) {
		t.Error("lattice-aware Overlaps should reject integer-free intersection")
	}
}

func TestIsEmpty(t *testing.T) {
	s := testSchema()
	if NewBuilder(s).Range("price", 10, 5).Build().IsEmpty() != true {
		t.Error("inverted range should be empty")
	}
	if NewBuilder(s).Range("branch", 1.2, 1.8).Build().IsEmpty() != true {
		t.Error("integer-free integral range should be empty")
	}
	if NewBuilder(s).Range("price", 1.2, 1.8).Build().IsEmpty() {
		t.Error("continuous range should not be empty")
	}
}

func TestClippedToDomain(t *testing.T) {
	s := testSchema()
	p := NewBuilder(s).Range("price", -100, 2000).Build()
	iv := p.Interval("price")
	if iv.Lo != 0 || iv.Hi != 1000 {
		t.Errorf("predicate not clipped to domain: %v", iv)
	}
}

func TestStringForms(t *testing.T) {
	s := testSchema()
	tests := []struct {
		p    *P
		want string
	}{
		{NewBuilder(s).Eq("branch", 2).Build(), "branch = 2"},
		{NewBuilder(s).Range("price", 1, 2).Build(), "1 <= price <= 2"},
		{NewBuilder(s).Le("price", 5).Build(), "price <= 5"},
		{NewBuilder(s).Ge("price", 5).Build(), "price >= 5"},
		{True(s), "TRUE"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
	named := True(s).Named("c1")
	if named.String() != "c1" {
		t.Errorf("Named String = %q", named.String())
	}
	multi := NewBuilder(s).Eq("branch", 1).Range("price", 1, 2).Build()
	if !strings.Contains(multi.String(), " AND ") {
		t.Errorf("conjunction should join with AND: %q", multi.String())
	}
}

func TestConstrained(t *testing.T) {
	s := testSchema()
	p := NewBuilder(s).Eq("branch", 1).Range("utc", 0, 100).Build()
	got := p.Constrained()
	if len(got) != 2 || got[0] != "branch" || got[1] != "utc" {
		t.Errorf("Constrained = %v", got)
	}
	if len(True(s).Constrained()) != 0 {
		t.Error("TRUE should constrain nothing")
	}
}

func TestEqual(t *testing.T) {
	s := testSchema()
	a := NewBuilder(s).Range("price", 1, 2).Build()
	b := NewBuilder(s).Range("price", 1, 2).Build()
	c := NewBuilder(s).Range("price", 1, 3).Build()
	if !a.Equal(b) {
		t.Error("identical predicates not Equal")
	}
	if a.Equal(c) {
		t.Error("different predicates Equal")
	}
	// Two differently-written empty predicates are equal as regions.
	e1 := NewBuilder(s).Range("price", 5, 1).Build()
	e2 := NewBuilder(s).Range("price", 9, 2).Build()
	if !e1.Equal(e2) {
		t.Error("empty predicates should compare equal")
	}
}

// Property: And is the set intersection — a row satisfies p.And(q) iff it
// satisfies both.
func TestAndMatchesEvalProperty(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewSource(42))
	randPred := func() *P {
		b := NewBuilder(s)
		lo := rng.Float64() * 500
		b.Range("price", lo, lo+rng.Float64()*500)
		if rng.Intn(2) == 0 {
			b.Eq("branch", float64(rng.Intn(5)))
		}
		return b.Build()
	}
	f := func(priceScaled uint16, branch uint8, utc uint32) bool {
		row := domain.Row{float64(priceScaled) / 65535 * 1000, float64(branch % 5), float64(utc)}
		p, q := randPred(), randPred()
		return p.And(q).Eval(row) == (p.Eval(row) && q.Eval(row))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFromBoxDimensionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromBox(testSchema(), domain.Box{domain.Full})
}

func TestSortStable(t *testing.T) {
	s := testSchema()
	ps := []*P{
		NewBuilder(s).Eq("branch", 2).Build(),
		NewBuilder(s).Eq("branch", 1).Build(),
		NewBuilder(s).Eq("branch", 0).Build(),
	}
	SortStable(ps)
	if ps[0].String() != "branch = 0" || ps[2].String() != "branch = 2" {
		t.Errorf("not sorted: %v %v %v", ps[0], ps[1], ps[2])
	}
}

func TestIntervalUnknownAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	True(testSchema()).Interval("nope")
}

func TestEvalInfDomain(t *testing.T) {
	s := domain.NewSchema(domain.Attr{Name: "x", Kind: domain.Continuous, Domain: domain.Full})
	p := NewBuilder(s).Ge("x", 0).Build()
	if !p.Eval(domain.Row{math.Inf(1)}) {
		t.Error("x >= 0 should accept +inf")
	}
	if p.Eval(domain.Row{-1}) {
		t.Error("x >= 0 accepted -1")
	}
}
