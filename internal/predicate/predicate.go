// Package predicate implements the conjunctive predicate language of the
// predicate-constraint framework: Boolean functions over rows built from
// conjunctions of attribute ranges, equalities, and inequalities
// (Section 3.1 of the paper).
//
// Every predicate in this language is geometrically an axis-aligned box over
// the schema domain, which is what makes cell-decomposition satisfiability
// decidable exactly and quickly (see internal/sat).
package predicate

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pcbound/internal/domain"
)

// P is a conjunctive predicate over a schema. The zero value is not usable;
// construct with True or Builder.
type P struct {
	schema *domain.Schema
	box    domain.Box
	// name is an optional human-readable label used in String output.
	name string
}

// True returns the always-true predicate over the schema (the full box).
func True(s *domain.Schema) *P {
	return &P{schema: s, box: s.FullBox()}
}

// FromBox wraps a box (clipped to the schema domain) as a predicate.
func FromBox(s *domain.Schema, b domain.Box) *P {
	if len(b) != s.Len() {
		panic("predicate: box dimension does not match schema")
	}
	return &P{schema: s, box: s.FullBox().Intersect(b)}
}

// Schema returns the schema the predicate is defined over.
func (p *P) Schema() *domain.Schema { return p.schema }

// Box returns the predicate's box (a copy).
func (p *P) Box() domain.Box { return p.box.Clone() }

// Named returns a copy of the predicate carrying a display name.
func (p *P) Named(name string) *P {
	q := *p
	q.name = name
	return &q
}

// Name returns the display name, if any.
func (p *P) Name() string { return p.name }

// Eval reports whether the row satisfies the predicate.
func (p *P) Eval(r domain.Row) bool { return p.box.Contains(r) }

// IsEmpty reports whether no row of the schema lattice can satisfy the
// predicate.
func (p *P) IsEmpty() bool { return p.box.EmptyFor(p.schema) }

// And returns the conjunction of two predicates over the same schema.
func (p *P) And(q *P) *P {
	if p.schema != q.schema {
		panic("predicate: conjunction across different schemas")
	}
	return &P{schema: p.schema, box: p.box.Intersect(q.box)}
}

// Implies reports whether p ⊆ q as regions (every row satisfying p
// satisfies q).
func (p *P) Implies(q *P) bool { return q.box.ContainsBox(p.box) }

// Overlaps reports whether p ∧ q is satisfiable over the reals. For exact
// lattice-aware satisfiability use internal/sat.
func (p *P) Overlaps(q *P) bool { return !p.box.Intersect(q.box).EmptyFor(p.schema) }

// Equal reports whether two predicates denote the same box.
func (p *P) Equal(q *P) bool {
	if p.schema != q.schema {
		return false
	}
	for i := range p.box {
		if p.box[i] != q.box[i] {
			// Two empty boxes denote the same (empty) region.
			if p.box[i].Empty() && q.box[i].Empty() {
				continue
			}
			return false
		}
	}
	return true
}

// Interval returns the constraint interval on the named attribute.
func (p *P) Interval(attr string) domain.Interval {
	return p.box[p.schema.MustIndex(attr)]
}

// Constrained returns the names of attributes the predicate restricts below
// their full domain, in schema order.
func (p *P) Constrained() []string {
	var out []string
	for i := 0; i < p.schema.Len(); i++ {
		if p.box[i] != p.schema.Attr(i).Domain {
			out = append(out, p.schema.Attr(i).Name)
		}
	}
	return out
}

func (p *P) String() string {
	if p.name != "" {
		return p.name
	}
	var parts []string
	for i := 0; i < p.schema.Len(); i++ {
		a := p.schema.Attr(i)
		iv := p.box[i]
		if iv == a.Domain {
			continue
		}
		switch {
		case iv.Empty():
			parts = append(parts, "FALSE")
		case iv.Lo == iv.Hi:
			parts = append(parts, fmt.Sprintf("%s = %g", a.Name, iv.Lo))
		case math.IsInf(iv.Lo, -1) || iv.Lo == a.Domain.Lo:
			parts = append(parts, fmt.Sprintf("%s <= %g", a.Name, iv.Hi))
		case math.IsInf(iv.Hi, 1) || iv.Hi == a.Domain.Hi:
			parts = append(parts, fmt.Sprintf("%s >= %g", a.Name, iv.Lo))
		default:
			parts = append(parts, fmt.Sprintf("%g <= %s <= %g", iv.Lo, a.Name, iv.Hi))
		}
	}
	if len(parts) == 0 {
		return "TRUE"
	}
	return strings.Join(parts, " AND ")
}

// Builder incrementally constructs a conjunctive predicate. Methods return
// the builder for chaining; Build returns the predicate. Conflicting atoms
// intersect (the builder never errors: an unsatisfiable conjunction is a
// legal, empty predicate).
type Builder struct {
	schema *domain.Schema
	box    domain.Box
}

// NewBuilder starts a predicate over the schema with no constraints.
func NewBuilder(s *domain.Schema) *Builder {
	return &Builder{schema: s, box: s.FullBox()}
}

func (b *Builder) at(attr string) int { return b.schema.MustIndex(attr) }

// Range constrains lo <= attr <= hi.
func (b *Builder) Range(attr string, lo, hi float64) *Builder {
	i := b.at(attr)
	b.box[i] = b.box[i].Intersect(domain.NewInterval(lo, hi))
	return b
}

// Eq constrains attr = v.
func (b *Builder) Eq(attr string, v float64) *Builder { return b.Range(attr, v, v) }

// Le constrains attr <= v.
func (b *Builder) Le(attr string, v float64) *Builder {
	return b.Range(attr, math.Inf(-1), v)
}

// Ge constrains attr >= v.
func (b *Builder) Ge(attr string, v float64) *Builder {
	return b.Range(attr, v, math.Inf(1))
}

// Lt constrains attr < v. For Integral attributes this is exact (attr <= v-1
// when v is an integer); for Continuous attributes it is approximated by the
// closed bound attr <= prevAfter(v), which preserves soundness of bounds.
func (b *Builder) Lt(attr string, v float64) *Builder {
	i := b.at(attr)
	var hi float64
	if b.schema.Attr(i).Kind == domain.Integral {
		hi = math.Ceil(v) - 1
	} else {
		hi = math.Nextafter(v, math.Inf(-1))
	}
	return b.Range(attr, math.Inf(-1), hi)
}

// Gt constrains attr > v, dual to Lt.
func (b *Builder) Gt(attr string, v float64) *Builder {
	i := b.at(attr)
	var lo float64
	if b.schema.Attr(i).Kind == domain.Integral {
		lo = math.Floor(v) + 1
	} else {
		lo = math.Nextafter(v, math.Inf(1))
	}
	return b.Range(attr, lo, math.Inf(1))
}

// Build returns the constructed predicate.
func (b *Builder) Build() *P {
	return FromBox(b.schema, b.box)
}

// SortStable sorts predicates by their string form; used to make test output
// and decomposition order deterministic.
func SortStable(ps []*P) {
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].String() < ps[j].String() })
}
