// Package workload generates the random aggregate-query workloads the
// paper's evaluation uses ("1000 randomly chosen predicates", Table 2):
// range predicates over chosen attributes with an aggregate over a target
// attribute.
package workload

import (
	"math"
	"math/rand"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// Gen produces deterministic random queries over a schema.
type Gen struct {
	schema *domain.Schema
	// PredAttrs are the attributes queries place range predicates on.
	PredAttrs []string
	// AggAttr is the aggregated attribute (for SUM/AVG/MIN/MAX).
	AggAttr string
	// MinWidthFrac/MaxWidthFrac bound each predicate range's width as a
	// fraction of the attribute domain. Defaults: [0.05, 0.25] — selective
	// but non-degenerate queries (a 1x sample still sees a few matches).
	MinWidthFrac, MaxWidthFrac float64
	rng                        *rand.Rand
}

// New creates a generator with the default selectivity.
func New(schema *domain.Schema, predAttrs []string, aggAttr string, seed int64) *Gen {
	return &Gen{
		schema:       schema,
		PredAttrs:    predAttrs,
		AggAttr:      aggAttr,
		MinWidthFrac: 0.05,
		MaxWidthFrac: 0.25,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// Where generates one random conjunctive range predicate.
func (g *Gen) Where() *predicate.P {
	b := predicate.NewBuilder(g.schema)
	for _, a := range g.PredAttrs {
		ai := g.schema.MustIndex(a)
		dom := g.schema.Attr(ai).Domain
		frac := g.MinWidthFrac + g.rng.Float64()*(g.MaxWidthFrac-g.MinWidthFrac)
		w := dom.Width() * frac
		lo := dom.Lo + g.rng.Float64()*(dom.Width()-w)
		hi := lo + w
		if g.schema.Attr(ai).Kind == domain.Integral {
			lo = math.Floor(lo)
			hi = math.Ceil(hi)
		}
		b.Range(a, lo, hi)
	}
	return b.Build()
}

// Query generates one random query with the given aggregate.
func (g *Gen) Query(agg core.Agg) core.Query {
	return core.Query{Agg: agg, Attr: g.AggAttr, Where: g.Where()}
}

// Queries generates n random queries with the given aggregate.
func (g *Gen) Queries(n int, agg core.Agg) []core.Query {
	out := make([]core.Query, n)
	for i := range out {
		out[i] = g.Query(agg)
	}
	return out
}
