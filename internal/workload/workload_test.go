package workload

import (
	"math"
	"testing"

	"pcbound/internal/core"
	"pcbound/internal/data"
)

func TestQueriesAreSelectiveAndInDomain(t *testing.T) {
	tb := data.Intel(10, 1)
	s := tb.Schema()
	g := New(s, []string{"device", "time"}, "light", 42)
	qs := g.Queries(200, core.Sum)
	if len(qs) != 200 {
		t.Fatalf("len = %d", len(qs))
	}
	for i, q := range qs {
		if q.Agg != core.Sum || q.Attr != "light" || q.Where == nil {
			t.Fatalf("query %d malformed: %+v", i, q)
		}
		box := q.Where.Box()
		for _, a := range []string{"device", "time"} {
			ai := s.MustIndex(a)
			dom := s.Attr(ai).Domain
			iv := box[ai]
			if iv.Lo < dom.Lo || iv.Hi > dom.Hi {
				t.Fatalf("query %d escapes domain on %s: %v", i, a, iv)
			}
			frac := iv.Width() / dom.Width()
			// Integral snapping can stretch the range by up to one lattice
			// step on each side.
			if frac > g.MaxWidthFrac+2.0/dom.Width()+1e-9 {
				t.Fatalf("query %d too wide on %s: frac %v", i, a, frac)
			}
		}
		// Unlisted attributes unconstrained.
		li := s.MustIndex("light")
		if box[li] != s.Attr(li).Domain {
			t.Fatalf("query %d constrains the aggregate attribute", i)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	s := data.Intel(10, 1).Schema()
	a := New(s, []string{"time"}, "light", 7).Queries(20, core.Count)
	b := New(s, []string{"time"}, "light", 7).Queries(20, core.Count)
	for i := range a {
		if !a[i].Where.Equal(b[i].Where) {
			t.Fatal("same seed produced different queries")
		}
	}
	c := New(s, []string{"time"}, "light", 8).Queries(20, core.Count)
	same := true
	for i := range a {
		if !a[i].Where.Equal(c[i].Where) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestIntegralSnapping(t *testing.T) {
	s := data.Intel(10, 1).Schema()
	g := New(s, []string{"device"}, "light", 3)
	for i := 0; i < 50; i++ {
		w := g.Where()
		iv := w.Interval("device")
		if iv.Lo != math.Floor(iv.Lo) || iv.Hi != math.Ceil(iv.Hi) {
			t.Fatalf("integral bounds not snapped: %v", iv)
		}
	}
}

func TestWidthFracConfigurable(t *testing.T) {
	s := data.Intel(10, 1).Schema()
	g := New(s, []string{"time"}, "light", 5)
	g.MinWidthFrac, g.MaxWidthFrac = 0.5, 0.5
	w := g.Where()
	iv := w.Interval("time")
	dom := s.Attr(s.MustIndex("time")).Domain
	if frac := iv.Width() / dom.Width(); math.Abs(frac-0.5) > 0.01 {
		t.Errorf("width frac = %v, want 0.5", frac)
	}
}
