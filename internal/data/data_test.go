package data

import (
	"math"
	"testing"

	"pcbound/internal/predicate"
	"pcbound/internal/stats"
)

func TestIntelShape(t *testing.T) {
	tb := Intel(5000, 1)
	if tb.Len() != 5000 {
		t.Fatalf("len = %d", tb.Len())
	}
	s := tb.Schema()
	for _, name := range []string{"device", "time", "light", "temperature", "humidity", "voltage"} {
		if _, ok := s.Index(name); !ok {
			t.Errorf("missing attribute %q", name)
		}
	}
	// All rows inside the domain box.
	full := s.FullBox()
	for i := 0; i < tb.Len(); i++ {
		if !full.Contains(tb.Row(i)) {
			t.Fatalf("row %v escapes domain", tb.Row(i))
		}
	}
	// Light must correlate with time-of-day (diurnal signal): correlation of
	// light with the day-phase cosine should be clearly positive.
	light := tb.Column("light")
	phase := make([]float64, tb.Len())
	ti := s.MustIndex("time")
	for i := 0; i < tb.Len(); i++ {
		tm := tb.Row(i)[ti]
		hour := math.Mod(tm/60, 24)
		phase[i] = math.Max(0, math.Cos((hour-13)/24*2*math.Pi))
	}
	if r := stats.Pearson(light, phase); r < 0.3 {
		t.Errorf("light/diurnal correlation = %v, want > 0.3", r)
	}
}

func TestIntelDeterministic(t *testing.T) {
	a := Intel(100, 7)
	b := Intel(100, 7)
	for i := 0; i < 100; i++ {
		for j := range a.Row(i) {
			if a.Row(i)[j] != b.Row(i)[j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c := Intel(100, 8)
	same := true
	for i := 0; i < 100 && same; i++ {
		for j := range a.Row(i) {
			if a.Row(i)[j] != c.Row(i)[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestAirbnbSkew(t *testing.T) {
	tb := Airbnb(20000, 2)
	if tb.Len() != 20000 {
		t.Fatalf("len = %d", tb.Len())
	}
	price := tb.Column("price")
	mean := stats.Mean(price)
	med := stats.Median(price)
	// Lognormal prices: mean well above median (right skew).
	if mean < med*1.15 {
		t.Errorf("price mean %v vs median %v: not right-skewed", mean, med)
	}
	// Manhattan cluster must be more expensive than the rest.
	s := tb.Schema()
	manhattan := predicate.NewBuilder(s).
		Range("latitude", 40.74, 40.82).Range("longitude", -74.02, -73.93).Build()
	inAvg, ok1 := tb.Avg("price", manhattan)
	allAvg, ok2 := tb.Avg("price", nil)
	if !ok1 || !ok2 || inAvg <= allAvg {
		t.Errorf("Manhattan avg %v should exceed overall %v", inAvg, allAvg)
	}
	full := s.FullBox()
	for i := 0; i < tb.Len(); i++ {
		if !full.Contains(tb.Row(i)) {
			t.Fatalf("row %v escapes domain", tb.Row(i))
		}
	}
}

func TestBorderSkew(t *testing.T) {
	tb := Border(20000, 3)
	if tb.Len() != 20000 {
		t.Fatalf("len = %d", tb.Len())
	}
	value := tb.Column("value")
	mean := stats.Mean(value)
	med := stats.Median(value)
	if mean < med*1.5 {
		t.Errorf("value mean %v vs median %v: not heavy-tailed", mean, med)
	}
	// Busiest port (0) must dominate a quiet port (100).
	s := tb.Schema()
	p0 := predicate.NewBuilder(s).Eq("port", 0).Build()
	p100 := predicate.NewBuilder(s).Eq("port", 100).Build()
	a0, ok0 := tb.Avg("value", p0)
	a100, ok100 := tb.Avg("value", p100)
	if !ok0 || !ok100 || a0 <= a100 {
		t.Errorf("port 0 avg %v should exceed port 100 avg %v", a0, a100)
	}
	// Values are integral counts.
	for i := 0; i < 100; i++ {
		v := tb.Row(i)[s.MustIndex("value")]
		if v != math.Floor(v) {
			t.Errorf("value %v not integral", v)
		}
	}
}

func TestEdges(t *testing.T) {
	tb := Edges(500, 20, 4)
	if tb.Len() != 500 {
		t.Fatalf("len = %d", tb.Len())
	}
	s := tb.Schema()
	for i := 0; i < tb.Len(); i++ {
		r := tb.Row(i)
		if r[0] < 0 || r[0] > 19 || r[1] < 0 || r[1] > 19 {
			t.Fatalf("edge %v out of vertex range", r)
		}
	}
	if _, ok := s.Index("src"); !ok {
		t.Error("missing src")
	}
}

func TestRemoveRandomFraction(t *testing.T) {
	tb := Intel(1000, 5)
	present, missing := RemoveRandomFraction(tb, 0.3, 9)
	if missing.Len() != 300 || present.Len() != 700 {
		t.Fatalf("split = %d/%d", present.Len(), missing.Len())
	}
	// Random removal should NOT be value-correlated: missing light mean close
	// to overall mean (within 15%).
	allMean := stats.Mean(tb.Column("light"))
	missMean := stats.Mean(missing.Column("light"))
	if math.Abs(missMean-allMean) > 0.15*allMean {
		t.Errorf("random removal looks correlated: %v vs %v", missMean, allMean)
	}
}

func TestCorrelatedRemovalIsCorrelated(t *testing.T) {
	tb := Intel(2000, 6)
	_, missing := tb.RemoveTopFraction("light", 0.2)
	allMean := stats.Mean(tb.Column("light"))
	missMean := stats.Mean(missing.Column("light"))
	if missMean < 1.5*allMean {
		t.Errorf("top-fraction removal should skew high: missing mean %v vs all %v", missMean, allMean)
	}
}
