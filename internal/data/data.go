// Package data generates the synthetic twins of the paper's evaluation
// datasets (Section 6). The real datasets (Intel Wireless from the MIT lab
// data page, the Airbnb NYC and Border Crossing Kaggle dumps) are not
// available offline, so each generator reproduces the properties the
// experiments actually exercise:
//
//   - Intel Wireless: 54 devices, a diurnal + per-device light signal that
//     is strongly correlated with the time and device attributes (this
//     correlation is what Corr-PC partitions on and what the correlated
//     missing-row mechanism removes).
//   - Airbnb NYC: five borough-like spatial clusters on (latitude,
//     longitude) with heavy-tailed (lognormal) prices — the "significantly
//     skewed" dataset of Section 6.6.1.
//   - Border Crossing: ~116 ports × monthly dates with port-level
//     heavy-tailed crossing counts — the skewed dataset of Section 6.6.2.
//
// All generators are deterministic given a seed.
package data

import (
	"math"
	"math/rand"

	"pcbound/internal/domain"
	"pcbound/internal/table"
)

// IntelRows is the scaled default size of the Intel twin (the original has
// 3M rows; experiments in the paper summarize it with ~2000 PCs, which the
// scaled twin preserves at 1/15 the rows).
const IntelRows = 200000

// Intel generates the Intel-Wireless twin with n rows.
//
// Schema: device (1..54), time (minute index over ~5 weeks), light,
// temperature, humidity, voltage. Light follows a diurnal curve scaled by a
// per-device factor with lognormal noise, so it correlates with both device
// and time-of-day.
func Intel(n int, seed int64) *table.T {
	rng := rand.New(rand.NewSource(seed))
	const devices = 54
	const minutes = 5 * 7 * 24 * 60 // 5 weeks
	schema := domain.NewSchema(
		domain.Attr{Name: "device", Kind: domain.Integral, Domain: domain.NewInterval(1, devices)},
		domain.Attr{Name: "time", Kind: domain.Integral, Domain: domain.NewInterval(0, minutes)},
		domain.Attr{Name: "light", Kind: domain.Continuous, Domain: domain.NewInterval(0, 2000)},
		domain.Attr{Name: "temperature", Kind: domain.Continuous, Domain: domain.NewInterval(-10, 60)},
		domain.Attr{Name: "humidity", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
		domain.Attr{Name: "voltage", Kind: domain.Continuous, Domain: domain.NewInterval(1.8, 3.2)},
	)
	// Per-device light gain: devices near windows see much more light.
	gain := make([]float64, devices+1)
	for d := 1; d <= devices; d++ {
		gain[d] = 0.2 + 1.8*rng.Float64()*rng.Float64() // skewed toward low
	}
	t := table.New(schema)
	for i := 0; i < n; i++ {
		dev := 1 + rng.Intn(devices)
		tm := rng.Intn(minutes + 1)
		hour := float64(tm/60) - 24*math.Floor(float64(tm)/(60*24))
		// Diurnal curve peaking at 13:00.
		diurnal := math.Max(0, math.Cos((hour-13)/24*2*math.Pi))
		base := 30 + 900*diurnal*gain[dev]
		light := base * math.Exp(rng.NormFloat64()*0.4)
		light = clamp(light, 0, 2000)
		temp := clamp(18+6*diurnal+rng.NormFloat64()*2, -10, 60)
		hum := clamp(45-10*diurnal+rng.NormFloat64()*6, 0, 100)
		volt := clamp(2.6+rng.NormFloat64()*0.08, 1.8, 3.2)
		t.MustAppend(domain.Row{float64(dev), float64(tm), light, temp, hum, volt})
	}
	return t
}

// AirbnbRows is the scaled default size of the Airbnb twin (original: ~49k).
const AirbnbRows = 49000

// Airbnb generates the Airbnb-NYC twin: borough-like spatial clusters with
// lognormal prices whose scale varies by cluster.
//
// Schema: latitude, longitude, price, reviews, room_type (0..2).
func Airbnb(n int, seed int64) *table.T {
	rng := rand.New(rand.NewSource(seed))
	schema := domain.NewSchema(
		domain.Attr{Name: "latitude", Kind: domain.Continuous, Domain: domain.NewInterval(40.49, 40.92)},
		domain.Attr{Name: "longitude", Kind: domain.Continuous, Domain: domain.NewInterval(-74.25, -73.68)},
		domain.Attr{Name: "price", Kind: domain.Continuous, Domain: domain.NewInterval(0, 10000)},
		domain.Attr{Name: "reviews", Kind: domain.Integral, Domain: domain.NewInterval(0, 700)},
		domain.Attr{Name: "room_type", Kind: domain.Integral, Domain: domain.NewInterval(0, 2)},
	)
	// Borough clusters: Manhattan, Brooklyn, Queens, Bronx, Staten Island.
	type cluster struct {
		lat, lon, spread, priceMu, weight float64
	}
	clusters := []cluster{
		{40.78, -73.97, 0.035, 5.2, 0.42}, // Manhattan, expensive
		{40.68, -73.95, 0.045, 4.7, 0.35}, // Brooklyn
		{40.73, -73.82, 0.050, 4.4, 0.14}, // Queens
		{40.85, -73.88, 0.030, 4.2, 0.05}, // Bronx
		{40.58, -74.12, 0.040, 4.3, 0.04}, // Staten Island
	}
	t := table.New(schema)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		var c cluster
		for _, cand := range clusters {
			if u < cand.weight {
				c = cand
				break
			}
			u -= cand.weight
			c = cand
		}
		lat := clamp(c.lat+rng.NormFloat64()*c.spread, 40.49, 40.92)
		lon := clamp(c.lon+rng.NormFloat64()*c.spread*1.2, -74.25, -73.68)
		price := clamp(math.Exp(c.priceMu+rng.NormFloat64()*0.7), 0, 10000)
		reviews := float64(int(math.Min(700, rng.ExpFloat64()*30)))
		room := float64(rng.Intn(3))
		t.MustAppend(domain.Row{lat, lon, price, reviews, room})
	}
	return t
}

// BorderRows is the scaled default size of the Border Crossing twin
// (original: ~300k; scaled to keep the experiment loop fast).
const BorderRows = 100000

// Border generates the Border-Crossing twin: per-(port, month, measure)
// summary rows with heavy-tailed crossing counts dominated by a few busy
// ports.
//
// Schema: port (0..115), date (month index 0..250), measure (0..11), value.
func Border(n int, seed int64) *table.T {
	rng := rand.New(rand.NewSource(seed))
	const ports = 116
	const months = 251
	const measures = 12
	schema := domain.NewSchema(
		domain.Attr{Name: "port", Kind: domain.Integral, Domain: domain.NewInterval(0, ports-1)},
		domain.Attr{Name: "date", Kind: domain.Integral, Domain: domain.NewInterval(0, months-1)},
		domain.Attr{Name: "measure", Kind: domain.Integral, Domain: domain.NewInterval(0, measures-1)},
		domain.Attr{Name: "value", Kind: domain.Continuous, Domain: domain.NewInterval(0, 5_000_000)},
	)
	// Zipf-ish port activity: a handful of ports carry most traffic.
	activity := make([]float64, ports)
	for p := range activity {
		activity[p] = 1.0 / math.Pow(float64(p+1), 1.1)
	}
	t := table.New(schema)
	for i := 0; i < n; i++ {
		port := rng.Intn(ports)
		month := rng.Intn(months)
		measure := rng.Intn(measures)
		seasonal := 1 + 0.3*math.Sin(2*math.Pi*float64(month%12)/12)
		scale := 40000 * activity[port] * seasonal
		value := clamp(scale*math.Exp(rng.NormFloat64()*1.0), 0, 5_000_000)
		value = math.Floor(value)
		t.MustAppend(domain.Row{float64(port), float64(month), float64(measure), value})
	}
	return t
}

// EdgeSchema returns the two-column schema of a directed edge relation over
// the given vertex count.
func EdgeSchema(vertices int) *domain.Schema {
	return domain.NewSchema(
		domain.Attr{Name: "src", Kind: domain.Integral, Domain: domain.NewInterval(0, float64(vertices-1))},
		domain.Attr{Name: "dst", Kind: domain.Integral, Domain: domain.NewInterval(0, float64(vertices-1))},
	)
}

// Edges generates a randomly populated directed edge table with n edges over
// the given vertex count (Section 6.6.3's join experiments).
func Edges(n, vertices int, seed int64) *table.T {
	rng := rand.New(rand.NewSource(seed))
	t := table.New(EdgeSchema(vertices))
	for i := 0; i < n; i++ {
		t.MustAppend(domain.Row{float64(rng.Intn(vertices)), float64(rng.Intn(vertices))})
	}
	return t
}

// RemoveRandomFraction removes a uniformly random frac of rows — the
// uncorrelated missingness mechanism. Returns (present, missing).
func RemoveRandomFraction(t *table.T, frac float64, seed int64) (*table.T, *table.T) {
	rng := rand.New(rand.NewSource(seed))
	n := t.Len()
	k := int(math.Round(frac * float64(n)))
	removed := make([]bool, n)
	perm := rng.Perm(n)
	for _, j := range perm[:min(k, n)] {
		removed[j] = true
	}
	return t.SplitByMask(removed)
}

func clamp(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
