package experiments

import (
	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// IntraQueryScenario builds the single-huge-query benchmark workload shared
// by BenchmarkIntraQuery (bench_test.go) and `pcbench -bench intraquery`:
// one store of heavily overlapping constraint chains with active frequency
// lower bounds — so per-cell feasibility is a genuinely coupled MILP, not a
// cap check — and one wide MIN query whose decomposition yields dozens of
// cells. The per-cell reachability solves are the skewed, independently
// schedulable unit the shared scheduler (internal/sched) exists for.
func IntraQueryScenario() (*core.Store, core.Query) {
	schema := domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Integral, Domain: domain.NewInterval(0, 79)},
		domain.Attr{Name: "v", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
	)
	store := core.NewStore(schema)
	var pcs []core.PC
	for i := 0; i < 26; i++ {
		lo := float64(3 * i)
		pcs = append(pcs, core.MustPC(
			predicate.NewBuilder(schema).Range("x", lo, lo+11).Build(),
			map[string]domain.Interval{"v": domain.NewInterval(float64(i%5)*5, 45+float64(i%7)*7)},
			1+i%2, 5+i%4,
		))
	}
	if err := store.Add(pcs...); err != nil {
		panic(err)
	}
	q := core.Query{Agg: core.Min, Attr: "v",
		Where: predicate.NewBuilder(schema).Range("x", 0, 70).Build()}
	return store, q
}
