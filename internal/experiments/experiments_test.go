package experiments

import (
	"strings"
	"testing"
)

// quickCfg keeps experiment smoke tests fast.
func quickCfg() Config { return Quick() }

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"fig1", "fig10", "fig11", "fig12", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9", "table1", "table2"}
	if len(names) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(names), len(want), names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
		if Title(want[i]) == "" {
			t.Errorf("missing title for %s", want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	res, err := Run("fig1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Error must grow with the missing fraction (correlated removal).
	if res.Series["relerr/0.1"] >= res.Series["relerr/0.9"] {
		t.Errorf("extrapolation error should grow: 0.1 -> %v, 0.9 -> %v",
			res.Series["relerr/0.1"], res.Series["relerr/0.9"])
	}
	if !strings.Contains(res.Table, "fraction missing") {
		t.Error("table missing header")
	}
}

func TestFig3PCsNeverFail(t *testing.T) {
	res, err := Run("fig3", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []string{"0.1", "0.3", "0.5", "0.7", "0.9"} {
		for _, fw := range []string{"Corr-PC", "Rand-PC", "Histogram"} {
			if v := res.Series["fail/"+fw+"/"+frac]; v != 0 {
				t.Errorf("%s at frac %s: failure rate %v, want 0 (hard bounds)", fw, frac, v)
			}
		}
	}
	// Informed PCs materially tighter than random ones on COUNT at some
	// fraction.
	if res.Series["over/Corr-PC/0.5"] > res.Series["over/Rand-PC/0.5"] {
		t.Errorf("Corr-PC (%v) should be at most Rand-PC (%v)",
			res.Series["over/Corr-PC/0.5"], res.Series["over/Rand-PC/0.5"])
	}
}

func TestFig4SumShapes(t *testing.T) {
	res, err := Run("fig4", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []string{"0.1", "0.5", "0.9"} {
		if v := res.Series["fail/Corr-PC/"+frac]; v != 0 {
			t.Errorf("Corr-PC SUM failure at %s: %v", frac, v)
		}
	}
}

func TestTable1TradeOff(t *testing.T) {
	res, err := Run("table1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Series["fail/Corr-PC"] != 0 {
		t.Errorf("Corr-PC failures = %v", res.Series["fail/Corr-PC"])
	}
	// With an identical sample per level, failures shrink (weakly) as the
	// interval widens with confidence.
	if res.Series["fail/US-1n/80"] < res.Series["fail/US-1n/99.99"] {
		t.Errorf("failures should shrink with confidence: %v vs %v",
			res.Series["fail/US-1n/80"], res.Series["fail/US-1n/99.99"])
	}
}

func TestFig5Convergence(t *testing.T) {
	res, err := Run("fig5", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Larger samples tighten the bound (weakly: tiny quick-config samples
	// cover few queries at 1N, so compare 2N against 10N).
	if res.Series["over/SUM/US-2N"]+1e-9 < res.Series["over/SUM/US-10N"] {
		t.Errorf("10N sample (%v) should be tighter than 2N (%v)",
			res.Series["over/SUM/US-10N"], res.Series["over/SUM/US-2N"])
	}
}

func TestFig6NoiseShapes(t *testing.T) {
	res, err := Run("fig6", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Noise-free PCs cannot fail.
	if res.Series["fail/Corr-PC/0sd"] != 0 || res.Series["fail/Overlapping-PC/0sd"] != 0 {
		t.Errorf("noise-free PCs failed: %v / %v",
			res.Series["fail/Corr-PC/0sd"], res.Series["fail/Overlapping-PC/0sd"])
	}
	// Heavy noise must break some PC constraints.
	if res.Series["fail/Corr-PC/3sd"] <= 0 {
		t.Errorf("3SD noise should cause Corr-PC failures, got %v",
			res.Series["fail/Corr-PC/3sd"])
	}
}

func TestFig7OptimizationRatios(t *testing.T) {
	cfg := quickCfg()
	cfg.PCs = 12 // keep the 2^n naive pass tiny in CI
	res, err := Run("fig7", cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive := res.Series["checks/No Optimization"]
	dfs := res.Series["checks/DFS"]
	rw := res.Series["checks/DFS + Re-writing"]
	if naive != (1<<12)-1 {
		t.Errorf("naive checks = %v, want 2^12-1", naive)
	}
	if !(rw <= dfs) {
		t.Errorf("rewriting (%v) must not exceed DFS (%v)", rw, dfs)
	}
	if dfs >= naive {
		t.Errorf("DFS (%v) should beat naive (%v) on overlapping PCs", dfs, naive)
	}
	// All variants agree on the satisfiable cells.
	if res.Series["cells/No Optimization"] != res.Series["cells/DFS + Re-writing"] {
		t.Errorf("cell counts differ: %v vs %v",
			res.Series["cells/No Optimization"], res.Series["cells/DFS + Re-writing"])
	}
}

func TestFig8Scales(t *testing.T) {
	res, err := Run("fig8", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Latency at 2000 PCs must stay well under the paper's 50ms (we are on
	// the greedy path); allow 25ms for CI noise.
	if v := res.Series["latency_us/2000"]; v > 25000 {
		t.Errorf("per-query latency at 2000 PCs = %vus", v)
	}
}

func TestFig9Bounds(t *testing.T) {
	res, err := Run("fig9", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []string{"MIN", "MAX", "AVG"} {
		if v := res.Series["fail/"+agg]; v != 0 {
			t.Errorf("%s failure rate = %v, want 0", agg, v)
		}
	}
	// MIN and MAX bounds track the per-bucket hulls: near-optimal, far
	// tighter than typical AVG/SUM over-estimation. (Exactly 1.0 needs
	// bucket-aligned queries; random queries clip buckets partially.)
	if v := res.Series["over/MAX"]; v > 2 {
		t.Errorf("MAX over-estimation = %v, want near-optimal (< 2)", v)
	}
	if v := res.Series["over/MIN"]; v > 2 {
		t.Errorf("MIN over-estimation = %v, want near-optimal (< 2)", v)
	}
}

func TestFig12Shapes(t *testing.T) {
	res, err := Run("fig12", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"10", "100", "1000", "10000"} {
		pc := res.Series["triangle/pc/"+n]
		es := res.Series["triangle/es/"+n]
		if pc > es {
			t.Errorf("n=%s: PC triangle bound %v exceeds elastic %v", n, pc, es)
		}
		cpc := res.Series["chain/pc/"+n]
		ces := res.Series["chain/es/"+n]
		if cpc > ces {
			t.Errorf("n=%s: PC chain bound %v exceeds elastic %v", n, cpc, ces)
		}
	}
	// The gap must grow with table size (orders of magnitude at n=10000).
	gapSmall := res.Series["triangle/es/10"] / res.Series["triangle/pc/10"]
	gapLarge := res.Series["triangle/es/10000"] / res.Series["triangle/pc/10000"]
	if gapLarge <= gapSmall {
		t.Errorf("gap should grow with size: %v -> %v", gapSmall, gapLarge)
	}
	if gapLarge < 50 {
		t.Errorf("gap at n=10000 = %vx, want orders of magnitude", gapLarge)
	}
}

func TestTable2HardBoundRows(t *testing.T) {
	cfg := quickCfg()
	cfg.Queries = 25 // Gen + 9 estimators × 3 datasets: keep small
	cfg.Rows = 3000
	res, err := Run("table2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// PC columns must be all-zero.
	for k, v := range res.Series {
		if strings.HasSuffix(k, "/PC") && v != 0 {
			t.Errorf("%s = %v, want 0", k, v)
		}
	}
	if !strings.Contains(res.Table, "Gen") {
		t.Error("table missing Gen column")
	}
}

func TestConfigDefaults(t *testing.T) {
	var zero Config
	d := zero.orDefault()
	if d.Rows == 0 || d.Queries == 0 || d.PCs == 0 || d.Seed == 0 {
		t.Errorf("defaults not applied: %+v", d)
	}
	custom := Config{Rows: 10}.orDefault()
	if custom.Rows != 10 || custom.Queries != Default().Queries {
		t.Errorf("partial override wrong: %+v", custom)
	}
	if p := (Config{Parallelism: 4}).orDefault().Parallelism; p != 4 {
		t.Errorf("Parallelism not preserved: %d", p)
	}
}

// TestParallelismDeterministic checks that fanning query bounding out over
// workers does not change any experiment outcome: the accuracy/tightness
// series of a parallel run must equal the sequential run's exactly.
func TestParallelismDeterministic(t *testing.T) {
	for _, name := range []string{"fig9", "fig8"} {
		seq := quickCfg()
		par := quickCfg()
		par.Parallelism = 4
		rs, err := Run(name, seq)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := Run(name, par)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range rs.Series {
			if strings.HasPrefix(k, "latency") {
				continue // wall-clock, legitimately differs
			}
			if rp.Series[k] != v {
				t.Errorf("%s: series %q differs under parallelism: %v vs %v", name, k, rp.Series[k], v)
			}
		}
	}
}
