package experiments

import (
	"fmt"

	"pcbound/internal/core"
	"pcbound/internal/data"
	"pcbound/internal/join"
	"pcbound/internal/pcgen"
)

// Fig12 reproduces Figure 12: bounds on the triangle-counting query (TOP)
// and the acyclic 5-chain join (BOTTOM) as the edge-table size grows,
// comparing the Corr-PC fractional-edge-cover bound against the elastic
// sensitivity baseline and the true query result on the generated tables.
func Fig12(cfg Config) (Result, error) {
	series := map[string]float64{}
	var rows [][]string
	sizes := []int{10, 100, 1000, 10000}
	for _, n := range sizes {
		// Derive the per-relation COUNT bound from an actual PC set over a
		// randomly populated edge table (the bound is exact: partitions
		// carry exact counts).
		edges := data.Edges(n, maxInt(4, n/3), cfg.Seed)
		set, err := pcgen.CorrPC(edges, []string{"src"}, minInt(64, n))
		if err != nil {
			return Result{}, err
		}
		engine := core.NewEngine(set, nil, core.Options{})
		cr, err := engine.Count(nil)
		if err != nil {
			return Result{}, err
		}

		tri := join.Triangle(cr.Hi)
		triPC, err := join.CountBound(tri)
		if err != nil {
			return Result{}, err
		}
		triES := join.ElasticCountBound(tri)
		series[fmt.Sprintf("triangle/pc/%d", n)] = triPC
		series[fmt.Sprintf("triangle/es/%d", n)] = triES
		rows = append(rows, []string{"triangle", fmt.Sprintf("%d", n), sci(triPC), sci(triES)})

		chain := join.Chain(5, cr.Hi)
		chainPC, err := join.CountBound(chain)
		if err != nil {
			return Result{}, err
		}
		chainES := join.ElasticCountBound(chain)
		series[fmt.Sprintf("chain/pc/%d", n)] = chainPC
		series[fmt.Sprintf("chain/es/%d", n)] = chainES
		rows = append(rows, []string{"5-chain", fmt.Sprintf("%d", n), sci(chainPC), sci(chainES)})
	}
	return Result{
		Table: renderTable(
			[]string{"query", "table size", "Corr-PC (FEC) bound", "elastic sensitivity"},
			rows),
		Series: series,
	}, nil
}
