package experiments

import (
	"fmt"
	"math/rand"

	"pcbound/internal/baselines"
	"pcbound/internal/core"
	"pcbound/internal/data"
	"pcbound/internal/pcgen"
	"pcbound/internal/stats"
	"pcbound/internal/table"
	"pcbound/internal/workload"
)

// Fig1 reproduces Figure 1: relative error of simple extrapolation on a SUM
// query as the fraction of (value-correlated) missing rows grows.
func Fig1(cfg Config) (Result, error) {
	tb := data.Intel(cfg.Rows, cfg.Seed)
	truth := tb.Sum("light", nil)
	series := map[string]float64{}
	var rows [][]string
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		present, _ := tb.RemoveTopFraction("light", frac)
		est := baselines.ExtrapolateSum(present, "light", nil, tb.Len())
		re := baselines.RelativeError(est, truth)
		key := fmt.Sprintf("relerr/%.1f", frac)
		series[key] = re
		rows = append(rows, []string{fmt.Sprintf("%.1f", frac), f3(re)})
	}
	return Result{
		Table:  renderTable([]string{"fraction missing", "relative error"}, rows),
		Series: series,
	}, nil
}

// intelScenario bundles the Intel twin split into present/missing plus the
// standard constraint sets and baselines at a given missing fraction.
type scenario struct {
	missing   *table.T
	queryGen  *workload.Gen
	corrPC    *baselines.PCEstimator
	estimates []baselines.Estimator
}

// intelEstimators builds Corr-PC, Rand-PC, US-1n, ST-1n and Histogram over
// the Intel missing rows, as in Figures 3 and 4.
func intelEstimators(cfg Config, frac float64) (*scenario, error) {
	tb := data.Intel(cfg.Rows, cfg.Seed)
	_, missing := tb.RemoveTopFraction("light", frac)
	return buildScenario(cfg, missing, []string{"device", "time"}, "light", 1)
}

// buildScenario derives the standard estimator suite for a missing table.
// sampleScale multiplies the sample size (1 → "1n").
func buildScenario(cfg Config, missing *table.T, predAttrs []string, aggAttr string, sampleScale int) (*scenario, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	corrSet, err := pcgen.CorrPC(missing, predAttrs, cfg.PCs)
	if err != nil {
		return nil, err
	}
	randSet, err := pcgen.RandPC(missing, predAttrs, cfg.PCs, 12, rng)
	if err != nil {
		return nil, err
	}
	corr := &baselines.PCEstimator{Label: "Corr-PC", Engine: core.NewEngine(corrSet, nil, core.Options{})}
	randE := &baselines.PCEstimator{Label: "Rand-PC", Engine: core.NewEngine(randSet, nil, core.Options{})}
	us := baselines.NewUniformSample(fmt.Sprintf("US-%dn", sampleScale),
		missing, sampleScale*cfg.PCs, false, 0.9999, rng)
	// Stratified sampling uses a coarser partition than the PCs so each
	// stratum receives several sample rows (1 row per stratum degenerates
	// every per-stratum spread estimate to zero width).
	strataSet, err := pcgen.CorrPC(missing, predAttrs, maxInt(8, cfg.PCs/8))
	if err != nil {
		return nil, err
	}
	st := baselines.NewStratifiedSample(fmt.Sprintf("ST-%dn", sampleScale),
		missing, strataSet.Predicates(), sampleScale*cfg.PCs, false, 0.9999, rng)
	hist := baselines.NewHistogram("Histogram", missing, append(append([]string{}, predAttrs...), aggAttr), 64)
	hist.Frechet = true
	sc := &scenario{
		missing:  missing,
		queryGen: workload.New(missing.Schema(), predAttrs, aggAttr, cfg.Seed+7),
		corrPC:   corr,
		estimates: []baselines.Estimator{
			corr, st, us, randE, hist,
		},
	}
	return sc, nil
}

// accuracyByFraction is the shared harness of Figures 3 and 4.
func accuracyByFraction(cfg Config, agg core.Agg) (Result, error) {
	fracs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	series := map[string]float64{}
	var rows [][]string
	for _, frac := range fracs {
		sc, err := intelEstimators(cfg, frac)
		if err != nil {
			return Result{}, err
		}
		queries := sc.queryGen.Queries(cfg.Queries, agg)
		for _, est := range sc.estimates {
			out := evaluate(est, queries, sc.missing, cfg.Parallelism)
			series[fmt.Sprintf("fail/%s/%.1f", est.Name(), frac)] = out.FailureRate()
			series[fmt.Sprintf("over/%s/%.1f", est.Name(), frac)] = out.MedianOverEst()
			rows = append(rows, []string{
				fmt.Sprintf("%.1f", frac), est.Name(),
				f2(out.FailureRate()), f2(out.MedianOverEst()),
			})
		}
	}
	return Result{
		Table: renderTable(
			[]string{"fraction missing", "framework", "failure rate (%)", "median over-estimation"},
			rows),
		Series: series,
	}, nil
}

// Fig3 reproduces Figure 3 (COUNT(*) accuracy on Intel Wireless).
func Fig3(cfg Config) (Result, error) { return accuracyByFraction(cfg, core.Count) }

// Fig4 reproduces Figure 4 (SUM(light) accuracy on Intel Wireless).
func Fig4(cfg Config) (Result, error) { return accuracyByFraction(cfg, core.Sum) }

// Table1 reproduces Table 1: uniform sampling's failure/over-estimation
// trade-off across confidence levels, against Corr-PC's zero-failure line.
func Table1(cfg Config) (Result, error) {
	sc, err := intelEstimators(cfg, 0.3)
	if err != nil {
		return Result{}, err
	}
	queries := sc.queryGen.Queries(cfg.Queries, core.Sum)
	series := map[string]float64{}
	var rows [][]string
	for _, conf := range []float64{0.80, 0.85, 0.90, 0.95, 0.99, 0.999, 0.9999} {
		// Re-seed per confidence level so every level sees the SAME sample
		// and only the interval width varies.
		rng := rand.New(rand.NewSource(cfg.Seed + 55))
		us := baselines.NewUniformSample("US-1n", sc.missing, cfg.PCs, false, conf, rng)
		out := evaluate(us, queries, sc.missing, cfg.Parallelism)
		series[fmt.Sprintf("fail/US-1n/%g", conf*100)] = out.FailureRate()
		series[fmt.Sprintf("over/US-1n/%g", conf*100)] = out.MedianOverEst()
		rows = append(rows, []string{
			fmt.Sprintf("%g%%", conf*100), "US-1n",
			f2(out.FailureRate()), f2(out.MedianOverEst()),
		})
	}
	pcOut := evaluate(sc.corrPC, queries, sc.missing, cfg.Parallelism)
	series["fail/Corr-PC"] = pcOut.FailureRate()
	series["over/Corr-PC"] = pcOut.MedianOverEst()
	rows = append(rows, []string{"—", "Corr-PC", f2(pcOut.FailureRate()), f2(pcOut.MedianOverEst())})
	return Result{
		Table: renderTable(
			[]string{"confidence", "framework", "failure rate (%)", "over-estimation"},
			rows),
		Series: series,
	}, nil
}

// Fig5 reproduces Figure 5: uniform sampling with 1N/2N/5N/10N samples vs
// Corr-PC, for COUNT and SUM.
func Fig5(cfg Config) (Result, error) {
	sc, err := intelEstimators(cfg, 0.3)
	if err != nil {
		return Result{}, err
	}
	series := map[string]float64{}
	var rows [][]string
	rng := rand.New(rand.NewSource(cfg.Seed + 56))
	for _, agg := range []core.Agg{core.Count, core.Sum} {
		queries := sc.queryGen.Queries(cfg.Queries, agg)
		pcOut := evaluate(sc.corrPC, queries, sc.missing, cfg.Parallelism)
		series[fmt.Sprintf("over/%v/Corr-PC", agg)] = pcOut.MedianOverEst()
		for _, scale := range []int{1, 2, 5, 10} {
			us := baselines.NewUniformSample(fmt.Sprintf("US-%dN", scale),
				sc.missing, scale*cfg.PCs, false, 0.9999, rng)
			out := evaluate(us, queries, sc.missing, cfg.Parallelism)
			series[fmt.Sprintf("over/%v/US-%dN", agg, scale)] = out.MedianOverEst()
			rows = append(rows, []string{
				agg.String(), fmt.Sprintf("%dN", scale),
				f2(out.MedianOverEst()), f2(pcOut.MedianOverEst()),
			})
		}
	}
	return Result{
		Table: renderTable(
			[]string{"query", "sample size", "US-n over-estimation", "Corr-PC over-estimation"},
			rows),
		Series: series,
	}, nil
}

// Fig6 reproduces Figure 6: failure rate of Corr-PC, Overlapping-PC and
// US-10n as the constraints/bounds are corrupted with 0-3 SD of noise.
func Fig6(cfg Config) (Result, error) {
	tb := data.Intel(cfg.Rows, cfg.Seed)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	lightSD := stats.StdDev(missing.Column("light"))
	gen := workload.New(missing.Schema(), []string{"device", "time"}, "light", cfg.Seed+7)
	queries := gen.Queries(cfg.Queries, core.Sum)

	corrSet, err := pcgen.CorrPC(missing, []string{"device", "time"}, cfg.PCs)
	if err != nil {
		return Result{}, err
	}
	// A small overlapping set: partition plus a coarse second layer.
	overSet, err := pcgen.Overlapping(missing, []string{"device", "time"}, minInt(cfg.PCs, 64))
	if err != nil {
		return Result{}, err
	}

	series := map[string]float64{}
	var rows [][]string
	for _, sd := range []float64{0, 1, 2, 3} {
		// The PC noise draws differ per level, but the sampler uses the same
		// sample at every level so only the corruption magnitude varies.
		rng := rand.New(rand.NewSource(cfg.Seed + 60 + int64(sd)))
		sigma := sd * lightSD
		var corrEst, overEst baselines.Estimator
		if sd == 0 {
			corrEst = &baselines.PCEstimator{Label: "Corr-PC", Engine: core.NewEngine(corrSet, nil, core.Options{})}
			overEst = &baselines.PCEstimator{Label: "Overlapping-PC", Engine: core.NewEngine(overSet, nil, core.Options{})}
		} else {
			noisyCorr := pcgen.Noise(corrSet, map[string]float64{"light": sigma}, rng)
			noisyOver := pcgen.Noise(overSet, map[string]float64{"light": sigma}, rng)
			corrEst = &baselines.PCEstimator{Label: "Corr-PC", Engine: core.NewEngine(noisyCorr, nil, core.Options{})}
			overEst = &baselines.PCEstimator{Label: "Overlapping-PC", Engine: core.NewEngine(noisyOver, nil, core.Options{})}
		}
		usRng := rand.New(rand.NewSource(cfg.Seed + 61))
		us := baselines.NewUniformSample("US-10n", missing, 10*cfg.PCs, false, 0.9999, usRng)
		us.SpreadNoise = sigma
		for _, est := range []baselines.Estimator{corrEst, overEst, us} {
			out := evaluate(est, queries, missing, cfg.Parallelism)
			series[fmt.Sprintf("fail/%s/%gsd", est.Name(), sd)] = out.FailureRate()
			rows = append(rows, []string{
				fmt.Sprintf("%gSD", sd), est.Name(), f2(out.FailureRate()),
			})
		}
	}
	return Result{
		Table:  renderTable([]string{"noise", "framework", "failure rate (%)"}, rows),
		Series: series,
	}, nil
}

// Fig9 reproduces Figure 9: MIN/MAX/AVG over-estimation under a
// DeviceID×Time partition.
func Fig9(cfg Config) (Result, error) {
	tb := data.Intel(cfg.Rows, cfg.Seed)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	set, err := pcgen.CorrPC(missing, []string{"device", "time"}, cfg.PCs)
	if err != nil {
		return Result{}, err
	}
	engine := core.NewEngine(set, nil, core.Options{})
	gen := workload.New(missing.Schema(), []string{"device", "time"}, "light", cfg.Seed+7)
	series := map[string]float64{}
	var rows [][]string
	for _, agg := range []core.Agg{core.Min, core.Max, core.Avg} {
		var rates []float64
		failures := 0
		// Queries whose ground truth is undefined (no missing rows match the
		// predicate) are dropped before bounding.
		var truths []float64
		var defined []core.Query
		for _, q := range gen.Queries(cfg.Queries, agg) {
			var truth float64
			var ok bool
			switch agg {
			case core.Min:
				truth, ok = missing.Min("light", q.Where)
			case core.Max:
				truth, ok = missing.Max("light", q.Where)
			case core.Avg:
				truth, ok = missing.Avg("light", q.Where)
			}
			if !ok {
				continue
			}
			truths = append(truths, truth)
			defined = append(defined, q)
		}
		// BoundBatch with parallelism 1 is the plain sequential Bound loop.
		ranges, err := engine.BoundBatch(defined, core.BatchOptions{Parallelism: max(cfg.Parallelism, 1)})
		if err != nil {
			return Result{}, err
		}
		evaluated := len(defined)
		for qi := range defined {
			truth := truths[qi]
			r := ranges[qi]
			if !r.Contains(truth) {
				failures++
			}
			switch agg {
			case core.Min:
				// For MIN the informative endpoint is the lower bound.
				rates = append(rates, baselines.OverEstimationRate(truth+1, r.Lo+1))
			default:
				rates = append(rates, baselines.OverEstimationRate(r.Hi, truth))
			}
		}
		med := stats.Median(rates)
		series[fmt.Sprintf("over/%v", agg)] = med
		series[fmt.Sprintf("fail/%v", agg)] = 100 * float64(failures) / float64(maxInt(evaluated, 1))
		rows = append(rows, []string{agg.String(), f3(med), fmt.Sprintf("%d/%d", failures, evaluated)})
	}
	return Result{
		Table:  renderTable([]string{"aggregate", "median over-estimation", "failures"}, rows),
		Series: series,
	}, nil
}

// skewedDataset is the shared harness of Figures 10 and 11.
func skewedDataset(cfg Config, build func() *table.T, removeAttr string, predAttrs []string, aggAttr string) (Result, error) {
	tb := build()
	_, missing := tb.RemoveTopFraction(removeAttr, 0.3)
	sc, err := buildScenario(cfg, missing, predAttrs, aggAttr, 10)
	if err != nil {
		return Result{}, err
	}
	series := map[string]float64{}
	var rows [][]string
	for _, agg := range []core.Agg{core.Count, core.Sum} {
		queries := sc.queryGen.Queries(cfg.Queries, agg)
		for _, est := range sc.estimates {
			out := evaluate(est, queries, sc.missing, cfg.Parallelism)
			series[fmt.Sprintf("over/%v/%s", agg, est.Name())] = out.MedianOverEst()
			series[fmt.Sprintf("fail/%v/%s", agg, est.Name())] = out.FailureRate()
			rows = append(rows, []string{
				agg.String(), est.Name(), f2(out.MedianOverEst()), f2(out.FailureRate()),
			})
		}
	}
	return Result{
		Table: renderTable(
			[]string{"query", "framework", "median over-estimation", "failure rate (%)"},
			rows),
		Series: series,
	}, nil
}

// Fig10 reproduces Figure 10 (Airbnb NYC, predicates on latitude/longitude).
func Fig10(cfg Config) (Result, error) {
	return skewedDataset(cfg,
		func() *table.T { return data.Airbnb(cfg.Rows, cfg.Seed) },
		"price", []string{"latitude", "longitude"}, "price")
}

// Fig11 reproduces Figure 11 (Border Crossing, predicates on port/date).
func Fig11(cfg Config) (Result, error) {
	return skewedDataset(cfg,
		func() *table.T { return data.Border(cfg.Rows, cfg.Seed) },
		"value", []string{"port", "date"}, "value")
}

// Table2 reproduces Table 2: failure counts of every framework over random
// predicates across the three datasets, COUNT and SUM.
func Table2(cfg Config) (Result, error) {
	type dataset struct {
		name      string
		build     func() *table.T
		rmAttr    string
		predAttrs []string
		aggAttr   string
	}
	datasets := []dataset{
		{"Intel Wireless", func() *table.T { return data.Intel(cfg.Rows, cfg.Seed) },
			"light", []string{"device", "time"}, "light"},
		{"Airbnb@NYC", func() *table.T { return data.Airbnb(cfg.Rows, cfg.Seed) },
			"price", []string{"latitude", "longitude"}, "price"},
		{"Border Cross", func() *table.T { return data.Border(cfg.Rows, cfg.Seed) },
			"value", []string{"port", "date"}, "value"},
	}
	header := []string{"dataset", "query", "PC", "Hist", "US-1p", "US-10p", "US-1n", "US-10n", "ST-1n", "ST-10n", "Gen"}
	series := map[string]float64{}
	var rows [][]string
	for _, ds := range datasets {
		tb := ds.build()
		_, missing := tb.RemoveTopFraction(ds.rmAttr, 0.3)
		rng := rand.New(rand.NewSource(cfg.Seed + 200))
		corrSet, err := pcgen.CorrPC(missing, ds.predAttrs, cfg.PCs)
		if err != nil {
			return Result{}, err
		}
		strataSet, err := pcgen.CorrPC(missing, ds.predAttrs, maxInt(8, cfg.PCs/8))
		if err != nil {
			return Result{}, err
		}
		strata := strataSet.Predicates()
		ests := []baselines.Estimator{
			&baselines.PCEstimator{Label: "PC", Engine: core.NewEngine(corrSet, nil, core.Options{})},
			baselines.NewHistogram("Hist", missing, append(append([]string{}, ds.predAttrs...), ds.aggAttr), 64),
			baselines.NewUniformSample("US-1p", missing, cfg.PCs, true, 0.99, rng),
			baselines.NewUniformSample("US-10p", missing, 10*cfg.PCs, true, 0.99, rng),
			baselines.NewUniformSample("US-1n", missing, cfg.PCs, false, 0.99, rng),
			baselines.NewUniformSample("US-10n", missing, 10*cfg.PCs, false, 0.99, rng),
			baselines.NewStratifiedSample("ST-1n", missing, strata, cfg.PCs, false, 0.99, rng),
			baselines.NewStratifiedSample("ST-10n", missing, strata, 10*cfg.PCs, false, 0.99, rng),
			baselines.NewGenerative("Gen", missing, 8, 15, 10, rng),
		}
		gen := workload.New(missing.Schema(), ds.predAttrs, ds.aggAttr, cfg.Seed+7)
		for _, agg := range []core.Agg{core.Count, core.Sum} {
			queries := gen.Queries(cfg.Queries, agg)
			label := "COUNT(*)"
			if agg == core.Sum {
				label = "SUM(" + ds.aggAttr + ")"
			}
			row := []string{ds.name, label}
			for _, est := range ests {
				out := evaluate(est, queries, missing, cfg.Parallelism)
				row = append(row, fmt.Sprintf("%d", out.Failures))
				series[fmt.Sprintf("failures/%s/%s/%s", ds.name, label, est.Name())] = float64(out.Failures)
			}
			rows = append(rows, row)
		}
	}
	return Result{Table: renderTable(header, rows), Series: series}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
