// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6). Each experiment is a named runner that builds the
// dataset twin, the missing-data scenario, the predicate-constraint sets and
// the baselines, executes the query workload, and renders the same
// rows/series the paper reports as a text table.
//
// README.md carries the experiment index (id → paper figure); bench_test.go
// at the repository root re-runs every experiment as a benchmark.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"pcbound/internal/baselines"
	"pcbound/internal/core"
	"pcbound/internal/parallel"
	"pcbound/internal/stats"
	"pcbound/internal/table"
)

// Config scales an experiment. The zero value is replaced by Default().
type Config struct {
	// Rows is the dataset size (per dataset twin).
	Rows int
	// Queries is the workload size per measurement point (the paper uses
	// 1000; the default trades a little smoothing for speed).
	Queries int
	// PCs is the constraint-set size n (the paper uses 1500-2000).
	PCs int
	// Seed drives all randomness.
	Seed int64
	// Parallelism is the number of worker goroutines used to bound queries
	// (0 or 1 = sequential). Only concurrency-safe estimators — the
	// predicate-constraint engines — are fanned out; sampler baselines stay
	// sequential regardless. Results are independent of the setting.
	Parallelism int
}

// Default returns the standard configuration used by cmd/pcbench.
func Default() Config {
	return Config{Rows: 30000, Queries: 300, PCs: 400, Seed: 1}
}

// Quick returns a reduced configuration for unit tests and benchmarks.
func Quick() Config {
	return Config{Rows: 4000, Queries: 40, PCs: 64, Seed: 1}
}

func (c Config) orDefault() Config {
	d := Default()
	if c.Rows > 0 {
		d.Rows = c.Rows
	}
	if c.Queries > 0 {
		d.Queries = c.Queries
	}
	if c.PCs > 0 {
		d.PCs = c.PCs
	}
	if c.Seed != 0 {
		d.Seed = c.Seed
	}
	d.Parallelism = c.Parallelism
	return d
}

// Result is a rendered experiment outcome.
type Result struct {
	Name  string
	Title string
	// Table is the human-readable reproduction of the paper's figure/table.
	Table string
	// Series holds the numeric outcome keyed by "row/column" labels, for
	// benchmarks and tests to assert on shapes.
	Series map[string]float64
}

// Runner executes one experiment.
type Runner func(Config) (Result, error)

var registry = map[string]struct {
	title string
	run   Runner
}{
	"fig1":   {"Figure 1 — simple extrapolation error vs fraction missing", Fig1},
	"fig3":   {"Figure 3 — COUNT failure rate and over-estimation vs fraction missing (Intel)", Fig3},
	"fig4":   {"Figure 4 — SUM failure rate and over-estimation vs fraction missing (Intel)", Fig4},
	"table1": {"Table 1 — failure/accuracy trade-off vs confidence level", Table1},
	"fig5":   {"Figure 5 — uniform sampling with larger samples vs Corr-PC", Fig5},
	"fig6":   {"Figure 6 — robustness to noisy constraints", Fig6},
	"fig7":   {"Figure 7 — cells evaluated during decomposition (optimizations ablation)", Fig7},
	"fig8":   {"Figure 8 — query latency vs partition size (disjoint fast path)", Fig8},
	"fig9":   {"Figure 9 — MIN/MAX/AVG over-estimation (Intel)", Fig9},
	"fig10":  {"Figure 10 — COUNT/SUM over-estimation (Airbnb NYC)", Fig10},
	"fig11":  {"Figure 11 — COUNT/SUM over-estimation (Border Crossing)", Fig11},
	"fig12":  {"Figure 12 — join bounds: Corr-PC (FEC) vs elastic sensitivity", Fig12},
	"table2": {"Table 2 — failure events over random predicates, all frameworks", Table2},
}

// Names returns the registered experiment ids in a stable order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's display title.
func Title(name string) string { return registry[name].title }

// Run executes a registered experiment.
func Run(name string, cfg Config) (Result, error) {
	e, ok := registry[name]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	res, err := e.run(cfg.orDefault())
	if err != nil {
		return Result{}, fmt.Errorf("experiments: %s: %w", name, err)
	}
	res.Name = name
	res.Title = e.title
	return res, nil
}

// evalOutcome aggregates a workload evaluation for one estimator.
type evalOutcome struct {
	Failures  int
	Evaluated int
	OverEst   []float64
}

// FailureRate returns failures as a percentage of evaluated queries.
func (o evalOutcome) FailureRate() float64 {
	if o.Evaluated == 0 {
		return 0
	}
	return 100 * float64(o.Failures) / float64(o.Evaluated)
}

// MedianOverEst returns the median over-estimation rate.
func (o evalOutcome) MedianOverEst() float64 {
	if len(o.OverEst) == 0 {
		return 1
	}
	return stats.Median(o.OverEst)
}

// evaluate runs the workload against one estimator, comparing to the ground
// truth held in the missing table (the paper's setup: all frameworks model
// the missing rows only). When par > 1 and the estimator declares itself
// safe for concurrent use, the per-query work fans out across par worker
// goroutines; aggregation stays in query order, so the outcome is identical
// to the sequential evaluation.
func evaluate(est baselines.Estimator, queries []core.Query, missing *table.T, par int) evalOutcome {
	type obs struct {
		truth float64
		e     baselines.Estimate
		skip  bool
	}
	results := make([]obs, len(queries))
	one := func(i int) {
		q := queries[i]
		switch q.Agg {
		case core.Count:
			results[i].truth = missing.Count(q.Where)
			results[i].e = est.Count(q.Where)
		case core.Sum:
			results[i].truth = missing.Sum(q.Attr, q.Where)
			results[i].e = est.Sum(q.Attr, q.Where)
		default:
			results[i].skip = true
		}
	}
	if !baselines.ConcurrentSafe(est) {
		par = 1
	}
	parallel.For(len(queries), par, func(_, i int) { one(i) })
	var out evalOutcome
	for _, r := range results {
		if r.skip {
			continue
		}
		out.Evaluated++
		if !r.e.Contains(r.truth) {
			out.Failures++
			continue
		}
		// Tightness is only meaningful for bounds that actually hold
		// (Section 6.1: "only meaningful if the failure rate is low").
		if r.truth > 0 {
			out.OverEst = append(out.OverEst, baselines.OverEstimationRate(r.e.Hi, r.truth))
		}
	}
	return out
}

// renderTable renders rows with a header through a tabwriter.
func renderTable(header []string, rows [][]string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(w, strings.Join(sep, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return sb.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func sci(v float64) string {
	if v == 0 {
		return "0"
	}
	exp := math.Floor(math.Log10(math.Abs(v)))
	return fmt.Sprintf("%.2fe%+03.0f", v/math.Pow(10, exp), exp)
}
