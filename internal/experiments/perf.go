package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"pcbound/internal/cells"
	"pcbound/internal/core"
	"pcbound/internal/data"
	"pcbound/internal/domain"
	"pcbound/internal/pcgen"
	"pcbound/internal/predicate"
	"pcbound/internal/sat"
	"pcbound/internal/workload"
)

// Fig7 reproduces Figure 7: the number of satisfiability checks issued
// during cell decomposition of heavily overlapping random PCs, for the
// naive enumeration, DFS pruning, and DFS + expression rewriting.
//
// The paper uses 20 PCs; the default configuration uses 16 so the naive
// 2^n enumeration stays fast in CI — pass a larger Config.PCs (≤ 20) to
// match the paper exactly. The >1000x naive-to-optimized ratio holds at
// both sizes.
func Fig7(cfg Config) (Result, error) {
	n := 16
	if cfg.PCs > 0 && cfg.PCs <= 22 {
		n = cfg.PCs
	}
	schema := domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
		domain.Attr{Name: "y", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
	)
	rng := rand.New(rand.NewSource(cfg.Seed))
	preds := make([]*predicate.P, n)
	for i := range preds {
		// Large boxes overlap heavily ("20 random PCs that are very
		// significantly overlapping").
		w := 40 + rng.Float64()*40
		h := 40 + rng.Float64()*40
		xl := rng.Float64() * (100 - w)
		yl := rng.Float64() * (100 - h)
		preds[i] = predicate.NewBuilder(schema).
			Range("x", xl, xl+w).Range("y", yl, yl+h).Build()
	}
	solver := sat.New(schema)
	series := map[string]float64{}
	var rows [][]string
	type variant struct {
		name  string
		strat cells.Strategy
	}
	for _, v := range []variant{
		{"No Optimization", cells.Naive},
		{"DFS", cells.DFS},
		{"DFS + Re-writing", cells.DFSRewrite},
	} {
		start := time.Now()
		res, err := cells.Decompose(solver, preds, cells.Options{
			Strategy: v.strat, SkipProjections: true,
		})
		if err != nil {
			return Result{}, err
		}
		el := time.Since(start)
		series["checks/"+v.name] = float64(res.Checks)
		series["cells/"+v.name] = float64(len(res.Cells))
		rows = append(rows, []string{
			v.name, fmt.Sprintf("%d", res.Checks), fmt.Sprintf("%d", len(res.Cells)),
			el.Round(time.Microsecond).String(),
		})
	}
	return Result{
		Table: renderTable(
			[]string{"variant", "SAT checks (cells evaluated)", "satisfiable cells", "time"},
			rows),
		Series: series,
	}, nil
}

// Fig8 reproduces Figure 8: per-query latency of the disjoint-partition fast
// path as the partition size grows from 50 to 2000 PCs.
func Fig8(cfg Config) (Result, error) {
	tb := data.Intel(cfg.Rows, cfg.Seed)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	series := map[string]float64{}
	var rows [][]string
	for _, n := range []int{50, 100, 500, 1000, 2000} {
		set, err := pcgen.CorrPC(missing, []string{"time"}, n)
		if err != nil {
			return Result{}, err
		}
		if !set.Disjoint() {
			return Result{}, fmt.Errorf("fig8: partition of size %d not disjoint", n)
		}
		engine := core.NewEngine(set, nil, core.Options{})
		gen := workload.New(missing.Schema(), []string{"time"}, "light", cfg.Seed+7)
		queries := gen.Queries(minInt(cfg.Queries, 100), core.Sum)
		par := max(cfg.Parallelism, 1)
		start := time.Now()
		if _, err := engine.BoundBatch(queries, core.BatchOptions{Parallelism: par}); err != nil {
			return Result{}, err
		}
		per := time.Since(start) / time.Duration(len(queries))
		series[fmt.Sprintf("latency_us/%d", n)] = float64(per.Microseconds())
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), per.Round(time.Microsecond).String(),
		})
	}
	return Result{
		Table:  renderTable([]string{"partition size", "per-query latency"}, rows),
		Series: series,
	}, nil
}
