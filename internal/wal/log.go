package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode selects what an acknowledged mutation survives.
type Mode int

const (
	// SyncAlways fsyncs before acknowledging: an acked mutation survives a
	// machine crash (power loss), subject to the group-commit window
	// batching concurrent acks into one fsync.
	SyncAlways Mode = iota
	// SyncNone acknowledges after write(2) reaches the OS cache: an acked
	// mutation survives a process kill (SIGKILL) but not a machine crash.
	SyncNone
)

// ParseMode resolves a -fsync-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync mode %q (want always or none)", s)
	}
}

func (m Mode) String() string {
	if m == SyncNone {
		return "none"
	}
	return "always"
}

// errClosed wedges a cleanly closed log so stray appends fail loudly.
var errClosed = errors.New("wal: log closed")

// Log is the append side of one WAL: a current segment file plus
// leader-based group commit. Mutation commit hooks stage encoded frames
// under mu (they run under the store's lock and must not block on disk);
// WaitDurable callers elect a flush leader that writes and fsyncs the whole
// staged batch while later arrivals pile more on. Any write or fsync
// failure wedges the log permanently — the in-memory store may then be
// ahead of disk, so the serving layer must stop acknowledging mutations
// (Err reports the wedge) until a restart re-opens from what is durable.
type Log struct {
	fs     FS
	clock  Clock
	dir    string
	mode   Mode
	window time.Duration // group-commit window; leader sleeps this long before flushing

	mu   sync.Mutex
	cond *sync.Cond // signaled on flush completion and wedge

	staged      []byte // guarded by mu — encoded frames not yet handed to a flush
	stagedEpoch uint64 // guarded by mu — highest epoch ever staged
	durable     uint64 // guarded by mu — highest epoch durable per mode
	flushing    bool   // guarded by mu — a flush leader is running
	err         error  // guarded by mu — sticky wedge
	f           File   // guarded by mu — current segment (leaders write via a copy taken under mu)
	segStart    uint64 // guarded by mu — current segment's start epoch

	appends   uint64 // guarded by mu
	flushes   uint64 // guarded by mu
	fsyncs    uint64 // guarded by mu
	rotations uint64 // guarded by mu
	bytes     uint64 // guarded by mu
}

// newLog opens the segment wal-<segStart>.log for appending. lastEpoch is
// the recovered store epoch — the next record must carry lastEpoch+1.
func newLog(fsys FS, clock Clock, dir string, mode Mode, window time.Duration, segStart, lastEpoch uint64) (*Log, error) {
	f, err := fsys.OpenAppend(dir + "/" + segmentName(segStart))
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment %d: %w", segStart, err)
	}
	l := &Log{
		fs: fsys, clock: clock, dir: dir, mode: mode, window: window,
		f: f, segStart: segStart, stagedEpoch: lastEpoch, durable: lastEpoch,
	}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// createSegment creates wal-<start>.log with its magic header. In SyncAlways
// mode the header and the directory entry are made durable before return.
func createSegment(fsys FS, dir string, start uint64, mode Mode) (File, error) {
	f, err := fsys.Create(dir + "/" + segmentName(start))
	if err != nil {
		return nil, fmt.Errorf("wal: creating segment %d: %w", start, err)
	}
	if _, err := f.Write([]byte(segmentMagic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: writing segment %d header: %w", start, err)
	}
	if mode == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing segment %d header: %w", start, err)
		}
		if err := fsys.SyncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// Append stages one encoded record payload. It never touches the disk —
// commit hooks call it under the store's mutex, and the epoch order of
// those calls is exactly the store's commit order. Appending to a wedged
// log is dropped: the wedge already guarantees no ack will be issued.
func (l *Log) Append(epoch uint64, payload []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.staged = appendFrame(l.staged, payload)
	l.stagedEpoch = epoch
	l.appends++
}

// WaitDurable blocks until every record up to epoch is durable per the
// configured mode, electing this goroutine flush leader if none is running.
// Returns the sticky wedge error if the log has failed.
func (l *Log) WaitDurable(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.durable >= epoch {
			return nil
		}
		if l.flushing {
			l.cond.Wait()
			continue
		}
		l.leadFlushLocked()
	}
}

// leadFlushLocked runs one group-commit round as the elected leader. Called
// with mu held; releases it during the window sleep and the disk write so
// appenders keep staging and the next batch accumulates.
func (l *Log) leadFlushLocked() {
	l.flushing = true
	if l.window > 0 {
		l.mu.Unlock()
		l.clock.Sleep(l.window)
		l.mu.Lock()
	}
	buf, top, f := l.staged, l.stagedEpoch, l.f
	l.staged = nil
	l.mu.Unlock()

	var err error
	synced := false
	if len(buf) > 0 {
		if _, err = f.Write(buf); err == nil && l.mode == SyncAlways {
			err = f.Sync()
			synced = err == nil
		}
	}

	l.mu.Lock()
	l.flushing = false
	l.flushes++
	if synced {
		l.fsyncs++
	}
	if err != nil {
		l.err = fmt.Errorf("wal: flush to epoch %d: %w", top, err)
	} else {
		l.bytes += uint64(len(buf))
		if top > l.durable {
			l.durable = top
		}
	}
	l.cond.Broadcast()
}

// Rotate drains and closes the current segment and opens a fresh one. It
// returns the boundary epoch R: the old segment holds epochs up to R, the
// new segment (wal-<R>.log) holds epochs > R. The checkpoint path rotates
// FIRST, then snapshots, so the checkpoint epoch C is always >= R and
// deleting segments with start < R never loses records beyond C.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if l.err != nil {
		return 0, l.err
	}
	// Drain staged frames into the old segment. No leader can start (mu is
	// held and flushing is false) and hooks only stage, so writing under mu
	// here is race-free.
	if len(l.staged) > 0 {
		if _, err := l.f.Write(l.staged); err != nil {
			return 0, l.failLocked(fmt.Errorf("wal: rotate drain: %w", err))
		}
		l.bytes += uint64(len(l.staged))
		l.staged = nil
	}
	if l.mode == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return 0, l.failLocked(fmt.Errorf("wal: rotate sync: %w", err))
		}
		l.fsyncs++
	}
	if err := l.f.Close(); err != nil {
		return 0, l.failLocked(fmt.Errorf("wal: rotate close: %w", err))
	}
	boundary := l.stagedEpoch
	f, err := createSegment(l.fs, l.dir, boundary, l.mode)
	if err != nil {
		return 0, l.failLocked(err)
	}
	l.f = f
	l.segStart = boundary
	l.durable = boundary
	l.rotations++
	return boundary, nil
}

// failLocked wedges the log and wakes every waiter. Returns the wedge.
func (l *Log) failLocked(err error) error {
	l.err = err
	l.cond.Broadcast()
	return err
}

// Wedge injects a sticky failure from outside the flush path (e.g. a
// record that failed to encode). No-op if already wedged.
func (l *Log) Wedge(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = err
		l.cond.Broadcast()
	}
}

// Err reports the sticky wedge, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close drains staged frames, syncs per mode, and closes the segment. The
// log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if l.err != nil {
		l.f.Close()
		return l.err
	}
	if len(l.staged) > 0 {
		if _, err := l.f.Write(l.staged); err != nil {
			l.f.Close()
			return l.failLocked(fmt.Errorf("wal: close drain: %w", err))
		}
		l.bytes += uint64(len(l.staged))
		l.staged = nil
	}
	if l.mode == SyncAlways {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return l.failLocked(fmt.Errorf("wal: close sync: %w", err))
		}
		l.fsyncs++
	}
	if err := l.f.Close(); err != nil {
		return l.failLocked(fmt.Errorf("wal: close: %w", err))
	}
	l.err = errClosed
	return nil
}

// logStats is a consistent snapshot of the log counters for /metrics.
type logStats struct {
	appends, flushes, fsyncs, rotations, bytes uint64
	durable, segStart                          uint64
}

func (l *Log) stats() logStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return logStats{
		appends: l.appends, flushes: l.flushes, fsyncs: l.fsyncs,
		rotations: l.rotations, bytes: l.bytes,
		durable: l.durable, segStart: l.segStart,
	}
}
