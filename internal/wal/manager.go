package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pcbound/internal/core"
	"pcbound/internal/domain"
)

// Options configures a Manager.
type Options struct {
	// Dir is the data directory (created if absent). Required.
	Dir string
	// FS defaults to the real filesystem (OSFS). Tests inject MemFS.
	FS FS
	// Clock defaults to the real clock. Drives the group-commit window.
	Clock Clock
	// Mode selects the ack durability contract (fsync vs OS cache).
	Mode Mode
	// Window is the group-commit window: how long a flush leader waits for
	// concurrent mutations to pile on before one write+fsync covers all.
	Window time.Duration
	// CheckpointEvery takes a checkpoint (and truncates the log) after this
	// many committed mutations. 0 disables automatic checkpoints.
	CheckpointEvery int
	// Boot is adopted as the initial store when Dir holds no prior state.
	// It is ignored — with a warning left to the caller via Info.BootIgnored
	// — when the directory already has a checkpoint or segments.
	Boot *core.Store
	// LeaseExpiry drops a replica lease whose follower stopped heartbeating
	// (see LeaseRegistry). <= 0 means DefaultLeaseExpiry.
	LeaseExpiry time.Duration
	// MaxReplicaLag caps how many epochs behind the frontier a live lease
	// may hold truncation; a slower lease is overridden and its follower
	// re-bootstraps. 0 = unlimited (lease expiry is still the backstop).
	MaxReplicaLag uint64
}

// Info describes what recovery found and did.
type Info struct {
	// CheckpointEpoch is the checkpoint recovery started from.
	CheckpointEpoch uint64
	// Epoch is the recovered store epoch after replaying the tail.
	Epoch uint64
	// Replayed counts log records applied on top of the checkpoint.
	Replayed int
	// Segments counts log segments scanned.
	Segments int
	// TornTail reports a partial final record (or torn segment header) at
	// the log tail — expected after a crash mid-append, healed by Open.
	TornTail bool
	// SkippedCheckpoints counts unreadable checkpoints passed over before
	// one decoded cleanly.
	SkippedCheckpoints int
	// BootIgnored is set when Options.Boot was supplied but the directory
	// already held state, which took precedence.
	BootIgnored bool
}

// Metrics is a consistent snapshot of WAL counters for /metrics.
type Metrics struct {
	Appends, Flushes, Fsyncs, Rotations, BytesWritten uint64
	DurableEpoch, SegmentStart                        uint64
	Checkpoints, CheckpointFailures                   uint64
	LastCheckpointEpoch                               uint64
	Replayed                                          uint64
	Wedged                                            bool
	// Replica-lease truncation accounting (see LeaseRegistry).
	LeasesActive     uint64 // live leases right now
	LeaseMinAcked    uint64 // minimum acked epoch among live leases (0 when none)
	LeaseExpirations uint64 // leases dropped for missing heartbeats
	HeldSegments     uint64 // segments the last checkpoint kept for lagging leases
	TruncationsHeld  uint64 // checkpoints that held at least one segment
}

// errEmpty distinguishes a fresh data directory during recovery.
var errEmpty = errors.New("wal: empty data directory")

// Manager owns one data directory: it recovers the store from it, hooks the
// store's commit stream into the log, and takes checkpoints. One Manager
// per directory; concurrent use of its methods is safe.
type Manager struct {
	fsys   FS
	dir    string
	log    *Log
	store  *core.Store
	schema *domain.Schema
	info   Info
	leases *LeaseRegistry

	ckptMu sync.Mutex // serializes Checkpoint end to end

	mu              sync.Mutex
	checkpointEvery int    // guarded by mu
	mutsSince       int    // guarded by mu — commits since the last checkpoint
	ckptCount       uint64 // guarded by mu
	ckptFailures    uint64 // guarded by mu
	lastCkptEpoch   uint64 // guarded by mu
	heldSegments    uint64 // guarded by mu — segments the last checkpoint held for leases
	truncHeld       uint64 // guarded by mu — checkpoints that held at least one segment
}

// Open recovers the data directory (healing torn tails and leftover
// temporaries), opens the log for appending, and attaches the commit hook
// to the recovered store. On a fresh directory it adopts Options.Boot,
// writing its state as checkpoint zero-point before any mutation can be
// acknowledged.
func Open(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	fsys, clock := opts.FS, opts.Clock
	if fsys == nil {
		fsys = OSFS{}
	}
	if clock == nil {
		clock = realClock{}
	}
	if err := fsys.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}

	store, schema, info, segs, err := recoverDir(fsys, opts.Dir, true)
	switch {
	case errors.Is(err, errEmpty):
		if opts.Boot == nil {
			return nil, fmt.Errorf("wal: %s is empty and no boot store was supplied", opts.Dir)
		}
		store = opts.Boot
		sn := store.Snapshot()
		schema = sn.Schema()
		info = Info{CheckpointEpoch: sn.Epoch(), Epoch: sn.Epoch()}
		// Checkpoint before segment: recovery tolerates a checkpoint with no
		// segments (it creates one), but not segments with no checkpoint.
		if err := writeCheckpoint(fsys, opts.Dir, sn); err != nil {
			return nil, err
		}
		segs = nil
	case err != nil:
		return nil, err
	default:
		info.BootIgnored = opts.Boot != nil
	}

	epoch := store.Epoch()
	segStart := epoch
	if n := len(segs); n > 0 {
		segStart = segs[n-1]
	} else {
		f, err := createSegment(fsys, opts.Dir, epoch, opts.Mode)
		if err != nil {
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("wal: closing fresh segment: %w", err)
		}
	}

	l, err := newLog(fsys, clock, opts.Dir, opts.Mode, opts.Window, segStart, epoch)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		fsys: fsys, dir: opts.Dir, log: l, store: store, schema: schema,
		info: info, checkpointEvery: opts.CheckpointEvery,
		lastCkptEpoch: info.CheckpointEpoch,
		leases:        NewLeaseRegistry(opts.LeaseExpiry, opts.MaxReplicaLag, nil),
	}
	store.SetCommitHook(m.onCommit)
	return m, nil
}

// Recover replays a data directory read-only — no healing, no truncation,
// no hook — and returns the recovered store. cmd/pcwal uses it to inspect
// or verify a log, possibly while a server is restarting on it.
func Recover(dir string, fsys FS) (*core.Store, Info, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	store, _, info, _, err := recoverDir(fsys, dir, false)
	if err != nil {
		return nil, Info{}, err
	}
	return store, info, nil
}

// recoverDir loads the newest readable checkpoint and replays the segment
// chain on top. With heal set it also removes checkpoint temporaries,
// truncates a torn final segment to its last valid frame, and removes a
// final segment whose header never fully made it to disk. Returns the
// surviving segment start epochs in ascending order.
func recoverDir(fsys FS, dir string, heal bool) (*core.Store, *domain.Schema, Info, []uint64, error) {
	l, err := listDir(fsys, dir)
	if err != nil {
		return nil, nil, Info{}, nil, err
	}
	if heal {
		for _, n := range l.tmps {
			if err := fsys.Remove(dir + "/" + checkpointTmpName(n)); err != nil {
				return nil, nil, Info{}, nil, fmt.Errorf("wal: removing checkpoint temp %d: %w", n, err)
			}
		}
	}
	if len(l.checkpoints) == 0 && len(l.segments) == 0 {
		return nil, nil, Info{}, nil, errEmpty
	}

	// Newest checkpoint that decodes wins. A torn or bit-flipped one is
	// skipped: its predecessor is still on disk together with every segment
	// it needs, because supersession deletes happen only after the newer
	// checkpoint is durable.
	var (
		store  *core.Store
		schema *domain.Schema
		info   Info
	)
	var ckptErr error
	for i := len(l.checkpoints) - 1; i >= 0; i-- {
		c := l.checkpoints[i]
		store, schema, ckptErr = readCheckpoint(fsys, dir, c)
		if ckptErr == nil {
			info.CheckpointEpoch = c
			break
		}
		info.SkippedCheckpoints++
	}
	if store == nil {
		if ckptErr == nil {
			ckptErr = errors.New("segments present but no checkpoint")
		}
		return nil, nil, Info{}, nil, fmt.Errorf("wal: no usable checkpoint in %s: %w", dir, ckptErr)
	}

	segs := l.segments
	for i, start := range segs {
		last := i == len(segs)-1
		name := segmentName(start)
		if start > store.Epoch() {
			return nil, nil, Info{}, nil, fmt.Errorf(
				"wal: segment gap: %s starts past recovered epoch %d", name, store.Epoch())
		}
		data, err := fsys.ReadFile(dir + "/" + name)
		if err != nil {
			return nil, nil, Info{}, nil, fmt.Errorf("wal: reading %s: %w", name, err)
		}
		res, err := scanFile(data, segmentMagic)
		if err != nil {
			return nil, nil, Info{}, nil, fmt.Errorf("wal: %s: %w", name, err)
		}
		if res.torn && !last {
			return nil, nil, Info{}, nil, fmt.Errorf("wal: %s: torn record before the final segment", name)
		}
		info.Segments++
		for _, payload := range res.payloads {
			rec, err := decodeRecord(schema, payload)
			if err != nil {
				return nil, nil, Info{}, nil, fmt.Errorf("wal: %s: %w", name, err)
			}
			if rec.Epoch <= store.Epoch() {
				continue // covered by the checkpoint
			}
			if err := store.ApplyRecord(rec); err != nil {
				return nil, nil, Info{}, nil, fmt.Errorf("wal: %s: %w", name, err)
			}
			info.Replayed++
		}
		if res.torn {
			info.TornTail = true
			if heal {
				if res.validLen < int64(len(segmentMagic)) {
					// The header itself is partial: the segment was being
					// created when the crash hit and holds no records.
					if err := fsys.Remove(dir + "/" + name); err != nil {
						return nil, nil, Info{}, nil, fmt.Errorf("wal: removing torn %s: %w", name, err)
					}
					segs = segs[:i]
				} else if err := fsys.Truncate(dir+"/"+name, res.validLen); err != nil {
					return nil, nil, Info{}, nil, fmt.Errorf("wal: healing %s: %w", name, err)
				}
			}
		}
	}
	info.Epoch = store.Epoch()
	return store, schema, info, segs, nil
}

// onCommit is the store commit hook: it runs under the store's mutex, so it
// only encodes and stages — flushing happens on WaitDurable callers.
func (m *Manager) onCommit(rec core.MutationRecord) {
	payload, err := encodeRecord(m.schema, rec)
	if err != nil {
		// Unencodable records cannot happen for store-validated mutations;
		// wedge rather than silently diverge disk from memory.
		m.log.Wedge(err)
		return
	}
	m.log.Append(rec.Epoch, payload)
	m.mu.Lock()
	m.mutsSince++
	m.mu.Unlock()
}

// Store returns the recovered (live) store.
func (m *Manager) Store() *core.Store { return m.store }

// Schema returns the recovered schema.
func (m *Manager) Schema() *domain.Schema { return m.schema }

// Dir returns the data directory the manager owns.
func (m *Manager) Dir() string { return m.dir }

// FS returns the filesystem the manager reads and writes through. Together
// with Dir it lets the serving layer expose the directory read-only to
// followers (a DirSource over the same FS): segments are append-only and
// checkpoints rename-published, so concurrent reads need no locking.
func (m *Manager) FS() FS { return m.fsys }

// Info returns what recovery found.
func (m *Manager) Info() Info { return m.info }

// Mode returns the configured ack durability contract.
func (m *Manager) Mode() Mode { return m.log.mode }

// Err reports the sticky log wedge, if any. While wedged the in-memory
// store may be ahead of disk; the serving layer must refuse mutations.
func (m *Manager) Err() error { return m.log.Err() }

// WaitDurable blocks until the given epoch is durable per the configured
// mode, then takes an automatic checkpoint if one is due. Mutation acks
// gate on it: a mutation whose WaitDurable fails was never acknowledged.
func (m *Manager) WaitDurable(epoch uint64) error {
	if err := m.log.WaitDurable(epoch); err != nil {
		return err
	}
	if m.checkpointDue() {
		// The mutation is durable either way; a failed checkpoint only
		// delays truncation and is reported via metrics.
		_ = m.Checkpoint()
	}
	return nil
}

func (m *Manager) checkpointDue() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.checkpointEvery <= 0 || m.mutsSince < m.checkpointEvery {
		return false
	}
	m.mutsSince = 0
	return true
}

// Checkpoint rotates the log, snapshots the store, persists the snapshot as
// a checkpoint, and deletes superseded segments and checkpoints. The order
// matters: rotating first pins the boundary R, and only segments strictly
// below R are deleted — every record past the checkpoint's epoch lives in
// wal-<R>.log or later, so recovery always has a complete chain.
//
// Truncation is replica-aware: a live lease acked at epoch A still needs
// every segment from the largest start <= A on (the record at A+1 lives
// there), so the deletion limit is lowered from R to that segment. Lease
// expiry and the max-lag clamp (see LeaseRegistry.Floor) bound how long a
// broken or hopeless follower can hold the log.
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	boundary, err := m.log.Rotate()
	if err != nil {
		m.noteCheckpoint(0, 0, err)
		return err
	}
	sn := m.store.Snapshot() // taken after Rotate, so sn.Epoch() >= boundary
	if err := writeCheckpoint(m.fsys, m.dir, sn); err != nil {
		m.noteCheckpoint(0, 0, err)
		return err
	}
	// Best-effort cleanup: a leftover file never confuses recovery, it only
	// wastes space, so cleanup failures don't fail the checkpoint.
	var held uint64
	if l, err := listDir(m.fsys, m.dir); err == nil {
		limit := boundary
		if floor, ok := m.leases.Floor(sn.Epoch()); ok {
			if hold, ok := PinnedSegment(l.segments, floor); ok && hold < limit {
				limit = hold
			}
		}
		for _, s := range l.segments {
			switch {
			case s < limit:
				_ = m.fsys.Remove(m.dir + "/" + segmentName(s))
			case s < boundary:
				held++
			}
		}
		for _, c := range l.checkpoints {
			if c < sn.Epoch() {
				_ = m.fsys.Remove(m.dir + "/" + checkpointName(c))
			}
		}
	}
	// Advisory snapshot for offline inspection (pcwal info): which leases
	// existed, at what progress, when this checkpoint decided truncation.
	_ = writeLeaseFile(m.fsys, m.dir, m.leases.Snapshot())
	m.noteCheckpoint(sn.Epoch(), held, nil)
	return nil
}

func (m *Manager) noteCheckpoint(epoch, held uint64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.ckptFailures++
		return
	}
	m.ckptCount++
	m.lastCkptEpoch = epoch
	m.heldSegments = held
	if held > 0 {
		m.truncHeld++
	}
}

// Leases returns the replica-lease registry followers heartbeat into.
func (m *Manager) Leases() *LeaseRegistry { return m.leases }

// Metrics returns a consistent snapshot of the WAL counters.
func (m *Manager) Metrics() Metrics {
	ls := m.log.stats()
	leases := m.leases.Snapshot()
	var minAcked uint64
	for i, l := range leases {
		if i == 0 || l.Acked < minAcked {
			minAcked = l.Acked
		}
	}
	expired := m.leases.Expirations()
	m.mu.Lock()
	defer m.mu.Unlock()
	return Metrics{
		Appends: ls.appends, Flushes: ls.flushes, Fsyncs: ls.fsyncs,
		Rotations: ls.rotations, BytesWritten: ls.bytes,
		DurableEpoch: ls.durable, SegmentStart: ls.segStart,
		Checkpoints: m.ckptCount, CheckpointFailures: m.ckptFailures,
		LastCheckpointEpoch: m.lastCkptEpoch,
		Replayed:            uint64(m.info.Replayed),
		Wedged:              m.log.Err() != nil,
		LeasesActive:        uint64(len(leases)),
		LeaseMinAcked:       minAcked,
		LeaseExpirations:    expired,
		HeldSegments:        m.heldSegments,
		TruncationsHeld:     m.truncHeld,
	}
}

// Close detaches the commit hook and closes the log, draining staged
// records first. The Manager is unusable afterwards.
func (m *Manager) Close() error {
	m.store.SetCommitHook(nil)
	return m.log.Close()
}
