package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"
)

// MemFS is the fault-injection filesystem behind the crash tests. It models
// the two layers a real crash distinguishes:
//
//   - the cached state: what the process (and the OS page cache) sees —
//     every completed write, create, rename, remove;
//   - the durable state: what survives power loss — file contents as of the
//     last Sync, directory entries as of the last SyncDir.
//
// ProcessImage returns the cached state (what a SIGKILL leaves: the OS
// cache survives the process). DurableImage returns the durable state (what
// a machine crash leaves), including torn tails when the crash interrupts a
// write or fsync mid-flight.
//
// Fault injection: every mutating operation increments an op counter.
// CrashAt(n) makes op n and everything after fail with ErrCrashed — the
// crash-point differential test sweeps n across a whole workload. SetOpHook
// intercepts ops for targeted failures (fail the Nth fsync, error a
// specific rename) without crashing the filesystem.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile // guarded by mu — cached namespace
	durable map[string]*memFile // guarded by mu — dirent-durable namespace
	dirs    map[string]bool     // guarded by mu
	ops     int                 // guarded by mu — mutating ops so far
	hook    func(Op) error      // guarded by mu
	crashAt int                 // guarded by mu — 0 disables
	tornLen int                 // guarded by mu — bytes of in-flight data a crashing write/sync still lands
	crashed bool                // guarded by mu
}

// memFile's fields are protected by the owning MemFS's mu.
type memFile struct {
	cached []byte
	synced []byte
}

// Op describes one mutating filesystem operation, for SetOpHook.
type Op struct {
	N    int // 1-based running index of mutating ops
	Kind string
	Path string
}

// ErrCrashed is returned by every mutating op at and after the crash point.
var ErrCrashed = errors.New("memfs: machine crashed")

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files:   map[string]*memFile{},
		durable: map[string]*memFile{},
		dirs:    map[string]bool{},
	}
}

// CrashAt arms a crash at mutating op n (1-based): that op and every later
// one fail with ErrCrashed. tornLen is how many bytes of the interrupted
// write or fsync still reach their destination — the torn-tail generator.
func (m *MemFS) CrashAt(n, tornLen int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashAt = n
	m.tornLen = tornLen
}

// SetOpHook installs an interceptor consulted before each mutating op; a
// non-nil return fails that op with the hook's error.
func (m *MemFS) SetOpHook(h func(Op) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hook = h
}

// Ops reports how many mutating ops have run.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// stepLocked gates one mutating op; the caller holds m.mu. first reports
// whether this op is the one that tripped the crash (its in-flight data may
// partially land, per tornLen).
func (m *MemFS) stepLocked(kind, path string) (first bool, err error) {
	if m.crashed {
		return false, ErrCrashed
	}
	m.ops++
	if m.crashAt > 0 && m.ops >= m.crashAt {
		m.crashed = true
		return true, ErrCrashed
	}
	if m.hook != nil {
		if err := m.hook(Op{N: m.ops, Kind: kind, Path: path}); err != nil {
			return false, err
		}
	}
	return false, nil
}

func (m *MemFS) MkdirAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.dirs[path] = true
	return nil
}

func (m *MemFS) ReadDir(path string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := path + "/"
	var names []string
	for name := range m.files {
		if rest, ok := strings.CutPrefix(name, prefix); ok && !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.cached...), nil
}

func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.stepLocked("create", path); err != nil {
		return nil, err
	}
	f := &memFile{}
	m.files[path] = f
	return &memHandle{fs: m, path: path, f: f}, nil
}

func (m *MemFS) OpenAppend(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		if _, err := m.stepLocked("append-create", path); err != nil {
			return nil, err
		}
		f = &memFile{}
		m.files[path] = f
	}
	return &memHandle{fs: m, path: path, f: f}, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.stepLocked("rename", oldpath); err != nil {
		return err
	}
	f, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	return nil
}

func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.stepLocked("remove", path); err != nil {
		return err
	}
	if _, ok := m.files[path]; !ok {
		return &fs.PathError{Op: "remove", Path: path, Err: fs.ErrNotExist}
	}
	delete(m.files, path)
	return nil
}

func (m *MemFS) Truncate(path string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.stepLocked("truncate", path); err != nil {
		return err
	}
	f, ok := m.files[path]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: path, Err: fs.ErrNotExist}
	}
	if int64(len(f.cached)) > size {
		f.cached = f.cached[:size]
	}
	return nil
}

// SyncDir commits the cached namespace of one directory to the durable
// namespace: creations, renames, and removals in that directory survive a
// machine crash only after this.
func (m *MemFS) SyncDir(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.stepLocked("syncdir", path); err != nil {
		return err
	}
	prefix := path + "/"
	for name := range m.durable {
		if strings.HasPrefix(name, prefix) {
			if _, ok := m.files[name]; !ok {
				delete(m.durable, name)
			}
		}
	}
	for name, f := range m.files {
		if strings.HasPrefix(name, prefix) {
			m.durable[name] = f
		}
	}
	return nil
}

// Corrupt flips one bit in both the cached and durable content of a file —
// the bit-rot injector for checkpoint/segment corruption tests.
func (m *MemFS) Corrupt(path string, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return &fs.PathError{Op: "corrupt", Path: path, Err: fs.ErrNotExist}
	}
	if off < 0 || off >= int64(len(f.cached)) {
		return fmt.Errorf("memfs: corrupt %s: offset %d out of range", path, off)
	}
	f.cached[off] ^= 0x40
	if off < int64(len(f.synced)) {
		f.synced[off] ^= 0x40
	}
	return nil
}

// DurableImage returns a fresh MemFS holding only what survives a machine
// crash right now: dirent-durable names with their last-synced contents.
func (m *MemFS) DurableImage() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	out.mu.Lock()
	defer out.mu.Unlock()
	for name, f := range m.durable {
		c := append([]byte(nil), f.synced...)
		nf := &memFile{cached: c, synced: append([]byte(nil), c...)}
		out.files[name] = nf
		out.durable[name] = nf
	}
	for d := range m.dirs {
		out.dirs[d] = true
	}
	return out
}

// ProcessImage returns a fresh MemFS holding what survives a process kill:
// the full cached state (the OS outlives the process and will flush it).
func (m *MemFS) ProcessImage() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	out.mu.Lock()
	defer out.mu.Unlock()
	for name, f := range m.files {
		c := append([]byte(nil), f.cached...)
		nf := &memFile{cached: c, synced: append([]byte(nil), c...)}
		out.files[name] = nf
		out.durable[name] = nf
	}
	for d := range m.dirs {
		out.dirs[d] = true
	}
	return out
}

// memHandle is an open MemFS file. Field access goes through fs.mu.
type memHandle struct {
	fs   *MemFS
	path string
	f    *memFile
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	first, err := h.fs.stepLocked("write", h.path)
	if err != nil {
		if first && h.fs.tornLen > 0 {
			k := min(h.fs.tornLen, len(p))
			h.f.cached = append(h.f.cached, p[:k]...)
		}
		return 0, err
	}
	h.f.cached = append(h.f.cached, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	first, err := h.fs.stepLocked("sync", h.path)
	if err != nil {
		if first && h.fs.tornLen > 0 && len(h.f.cached) > len(h.f.synced) {
			// The interrupted fsync persisted a prefix of the unsynced data.
			pending := h.f.cached[len(h.f.synced):]
			k := min(h.fs.tornLen, len(pending))
			h.f.synced = append(h.f.synced, pending[:k]...)
		}
		return err
	}
	h.f.synced = append(h.f.synced[:0], h.f.cached...)
	return nil
}

func (h *memHandle) Close() error { return nil }
