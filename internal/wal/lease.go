package wal

// Replica leases: how a primary's checkpoint truncation becomes
// replica-aware. Every follower names a lease (an opaque id) and its tail
// piggybacks the lease id plus its applied epoch onto the /v1/wal requests
// it already makes — listing, checkpoint fetch, segment long-poll — so the
// primary learns each follower's progress for free, with no extra RPC. At
// checkpoint time, truncation then holds every segment a live lease still
// needs instead of cutting the log out from under a lagging replica.
//
// Two escape hatches keep a broken follower from pinning the log forever:
// a lease that stops heartbeating expires after LeaseExpiry, and a live but
// hopelessly slow lease is overridden once it trails the frontier by more
// than MaxReplicaLag epochs. A follower truncated past either limit hits
// ErrFellBehind on its next poll and re-bootstraps from the newest
// checkpoint — the design makes that recovery path rare, not impossible.

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultLeaseExpiry is how long a replica lease survives without a
// heartbeat when Options.LeaseExpiry is zero. Long-poll requests heartbeat
// at least once per poll, so a live follower refreshes far more often.
const DefaultLeaseExpiry = 30 * time.Second

// Lease is one follower's registered replication progress.
type Lease struct {
	// ID is the follower-chosen lease name (stable across its restarts).
	ID string
	// Acked is the highest epoch the follower reported applied.
	Acked uint64
	// Age is the time since the last heartbeat.
	Age time.Duration
}

// LeaseJSON is the wire/disk form of a Lease, served in the /v1/wal listing
// and persisted to leases.json for offline inspection (cmd/pcwal info).
type LeaseJSON struct {
	ID         string  `json:"id"`
	Acked      uint64  `json:"acked"`
	AgeSeconds float64 `json:"age_seconds"`
}

// leaseFile is the leases.json document: the registry as of the last
// checkpoint, so an operator can see why truncation held segments even when
// the primary is down.
type leaseFile struct {
	Leases []LeaseJSON `json:"leases"`
}

// leaseFileName is the registry's on-disk snapshot in the data directory.
// The name matches neither the segment nor the checkpoint pattern, so
// recovery and listings ignore it.
const leaseFileName = "leases.json"

type leaseEntry struct {
	acked uint64
	seen  time.Time
}

// LeaseRegistry tracks follower leases on a primary. Heartbeats arrive from
// HTTP handler goroutines and the floor is read under the checkpoint lock,
// so the registry is safe for concurrent use.
type LeaseRegistry struct {
	expiry time.Duration
	maxLag uint64 // 0 = unlimited
	now    func() time.Time

	mu          sync.Mutex
	leases      map[string]*leaseEntry // guarded by mu
	expirations uint64                 // guarded by mu — leases dropped for missing heartbeats
}

// NewLeaseRegistry builds a registry. expiry <= 0 means DefaultLeaseExpiry;
// maxLag 0 means a lease may trail the frontier without limit; now is for
// tests (nil = time.Now).
func NewLeaseRegistry(expiry time.Duration, maxLag uint64, now func() time.Time) *LeaseRegistry {
	if expiry <= 0 {
		expiry = DefaultLeaseExpiry
	}
	if now == nil {
		now = time.Now
	}
	return &LeaseRegistry{
		expiry: expiry,
		maxLag: maxLag,
		now:    now,
		leases: make(map[string]*leaseEntry),
	}
}

// Heartbeat registers or refreshes a lease. Acked is monotone per lease:
// requests can race each other through the HTTP mux, and a stale heartbeat
// must not roll a follower's recorded progress backwards.
func (r *LeaseRegistry) Heartbeat(id string, acked uint64) {
	if id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.leases[id]
	if !ok {
		e = &leaseEntry{}
		r.leases[id] = e
	}
	if acked > e.acked {
		e.acked = acked
	}
	e.seen = r.now()
}

// pruneLocked drops leases whose last heartbeat is older than the expiry.
func (r *LeaseRegistry) pruneLocked(now time.Time) {
	for id, e := range r.leases {
		if now.Sub(e.seen) > r.expiry {
			delete(r.leases, id)
			r.expirations++
		}
	}
}

// Snapshot returns the live leases sorted by id, pruning expired ones.
func (r *LeaseRegistry) Snapshot() []Lease {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.pruneLocked(now)
	out := make([]Lease, 0, len(r.leases))
	for id, e := range r.leases {
		out = append(out, Lease{ID: id, Acked: e.acked, Age: now.Sub(e.seen)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Expirations returns how many leases have been dropped for missing
// heartbeats since the registry was created.
func (r *LeaseRegistry) Expirations() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.expirations
}

// Floor returns the truncation floor the live leases demand: the minimum
// acked epoch across them, raised to frontier-maxLag when a lease trails
// the frontier beyond the lag cap. ok is false when no live lease exists
// (truncation proceeds unheld). Expired leases are pruned first.
func (r *LeaseRegistry) Floor(frontier uint64) (floor uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(r.now())
	if len(r.leases) == 0 {
		return 0, false
	}
	first := true
	for _, e := range r.leases {
		if first || e.acked < floor {
			floor = e.acked
			first = false
		}
	}
	if r.maxLag > 0 && frontier > r.maxLag && floor < frontier-r.maxLag {
		floor = frontier - r.maxLag
	}
	return floor, true
}

// SnapshotJSON returns the live leases in wire form, for the /v1/wal listing.
func (r *LeaseRegistry) SnapshotJSON() []LeaseJSON {
	ls := r.Snapshot()
	if len(ls) == 0 {
		return nil
	}
	return leasesToJSON(ls)
}

// leasesToJSON converts a Snapshot for the wire/disk forms.
func leasesToJSON(ls []Lease) []LeaseJSON {
	out := make([]LeaseJSON, len(ls))
	for i, l := range ls {
		out[i] = LeaseJSON{ID: l.ID, Acked: l.Acked, AgeSeconds: l.Age.Seconds()}
	}
	return out
}

// writeLeaseFile persists the registry snapshot to leases.json (tmp +
// rename, no fsync): the file is advisory — cmd/pcwal info reads it to show
// an operator why truncation held — so losing it in a crash costs nothing.
func writeLeaseFile(fsys FS, dir string, ls []Lease) error {
	raw, err := json.Marshal(leaseFile{Leases: leasesToJSON(ls)})
	if err != nil {
		return err
	}
	tmp := dir + "/" + leaseFileName + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, dir+"/"+leaseFileName)
}

// ReadLeaseFile loads the leases.json snapshot a primary's checkpoints
// leave in the data directory. A missing file returns no leases: the
// primary never checkpointed with the registry populated.
func ReadLeaseFile(fsys FS, dir string) ([]LeaseJSON, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	raw, err := fsys.ReadFile(dir + "/" + leaseFileName)
	if err != nil {
		return nil, err
	}
	var lf leaseFile
	if err := json.Unmarshal(raw, &lf); err != nil {
		return nil, fmt.Errorf("wal: parsing %s: %w", leaseFileName, err)
	}
	return lf.Leases, nil
}

// PinnedSegment returns the oldest segment a lease acked at the given epoch
// still needs: the largest start <= acked (segment wal-<s> holds epochs
// > s, so the record at acked+1 lives there). ok is false when no segment
// covers it — the lease has fallen behind the truncation horizon.
func PinnedSegment(segments []uint64, acked uint64) (start uint64, ok bool) {
	for _, s := range segments {
		if s <= acked {
			start, ok = s, true
		}
	}
	return start, ok
}
