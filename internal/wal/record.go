package wal

import (
	"encoding/json"
	"fmt"

	"pcbound/internal/core"
	"pcbound/internal/domain"
)

// recordJSON is the payload of one log frame: exactly one committed Store
// mutation. IDs carry the PCIDs the primary assigned, so replay reproduces
// id allocation bit-identically (core.ApplyRecord enforces it).
type recordJSON struct {
	Epoch uint64        `json:"epoch"`
	Kind  string        `json:"kind"` // "add" | "remove" | "replace"
	IDs   []uint64      `json:"ids"`
	PCs   []core.PCJSON `json:"pcs,omitempty"`
}

// encodeRecord serializes a mutation record for appending to the log.
func encodeRecord(schema *domain.Schema, rec core.MutationRecord) ([]byte, error) {
	switch rec.Kind {
	case core.MutAdd, core.MutRemove, core.MutReplace:
	default:
		return nil, fmt.Errorf("wal: unencodable mutation kind %d", rec.Kind)
	}
	rj := recordJSON{
		Epoch: rec.Epoch,
		Kind:  rec.Kind.String(),
		IDs:   make([]uint64, len(rec.IDs)),
	}
	for i, id := range rec.IDs {
		rj.IDs[i] = uint64(id)
	}
	for _, pc := range rec.PCs {
		rj.PCs = append(rj.PCs, core.EncodePC(schema, pc))
	}
	return json.Marshal(rj)
}

// decodeRecord parses one log frame payload back into a mutation record.
func decodeRecord(schema *domain.Schema, payload []byte) (core.MutationRecord, error) {
	var rj recordJSON
	if err := json.Unmarshal(payload, &rj); err != nil {
		return core.MutationRecord{}, fmt.Errorf("wal: parsing record: %w", err)
	}
	rec := core.MutationRecord{Epoch: rj.Epoch, IDs: make([]core.PCID, len(rj.IDs))}
	switch rj.Kind {
	case "add":
		rec.Kind = core.MutAdd
	case "remove":
		rec.Kind = core.MutRemove
	case "replace":
		rec.Kind = core.MutReplace
	default:
		return core.MutationRecord{}, fmt.Errorf("wal: record epoch %d: unknown kind %q", rj.Epoch, rj.Kind)
	}
	for i, id := range rj.IDs {
		rec.IDs[i] = core.PCID(id)
	}
	for i, pj := range rj.PCs {
		pc, err := core.PCFromJSON(schema, pj)
		if err != nil {
			return core.MutationRecord{}, fmt.Errorf("wal: record epoch %d constraint %d: %w", rj.Epoch, i, err)
		}
		rec.PCs = append(rec.PCs, pc)
	}
	return rec, nil
}
