package wal

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"pcbound/internal/core"
)

// fakeNow is a manually advanced clock for lease expiry tests.
type fakeNow struct{ t time.Time }

func (f *fakeNow) now() time.Time          { return f.t }
func (f *fakeNow) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestLeaseRegistryHeartbeatAndFloor(t *testing.T) {
	clk := &fakeNow{t: time.Unix(1000, 0)}
	r := NewLeaseRegistry(10*time.Second, 0, clk.now)

	if _, ok := r.Floor(100); ok {
		t.Fatal("empty registry should report no floor")
	}
	r.Heartbeat("a", 40)
	r.Heartbeat("b", 70)
	if floor, ok := r.Floor(100); !ok || floor != 40 {
		t.Fatalf("floor = %d, %v; want 40, true", floor, ok)
	}

	// Acked is monotone: a racing stale heartbeat must not move it back.
	r.Heartbeat("a", 30)
	if floor, _ := r.Floor(100); floor != 40 {
		t.Fatalf("stale heartbeat rolled acked back: floor = %d", floor)
	}
	r.Heartbeat("a", 90)
	if floor, _ := r.Floor(100); floor != 70 {
		t.Fatalf("floor = %d, want 70 (b is now the laggard)", floor)
	}

	// Empty ids are ignored: an unleased follower never registers.
	r.Heartbeat("", 5)
	if got := len(r.Snapshot()); got != 2 {
		t.Fatalf("got %d leases, want 2", got)
	}
}

func TestLeaseRegistryExpiry(t *testing.T) {
	clk := &fakeNow{t: time.Unix(1000, 0)}
	r := NewLeaseRegistry(10*time.Second, 0, clk.now)
	r.Heartbeat("dead", 10)
	clk.advance(5 * time.Second)
	r.Heartbeat("live", 50)

	clk.advance(6 * time.Second) // dead is 11s stale, live 6s
	if floor, ok := r.Floor(100); !ok || floor != 50 {
		t.Fatalf("floor = %d, %v; want 50, true after expiry", floor, ok)
	}
	if got := r.Expirations(); got != 1 {
		t.Fatalf("expirations = %d, want 1", got)
	}
	ls := r.Snapshot()
	if len(ls) != 1 || ls[0].ID != "live" {
		t.Fatalf("snapshot = %+v, want only the live lease", ls)
	}

	clk.advance(11 * time.Second)
	if _, ok := r.Floor(100); ok {
		t.Fatal("all leases expired; floor should report none")
	}
	if got := r.Expirations(); got != 2 {
		t.Fatalf("expirations = %d, want 2", got)
	}
}

func TestLeaseRegistryMaxLagClamp(t *testing.T) {
	clk := &fakeNow{t: time.Unix(1000, 0)}
	r := NewLeaseRegistry(time.Hour, 25, clk.now)
	r.Heartbeat("slow", 10)
	if floor, _ := r.Floor(30); floor != 10 {
		t.Fatalf("floor = %d, want 10 (lag 20 within cap)", floor)
	}
	if floor, _ := r.Floor(100); floor != 75 {
		t.Fatalf("floor = %d, want 75 (clamped to frontier-25)", floor)
	}
}

func TestPinnedSegment(t *testing.T) {
	segs := []uint64{10, 50, 90}
	if s, ok := PinnedSegment(segs, 60); !ok || s != 50 {
		t.Fatalf("PinnedSegment(60) = %d, %v; want 50, true", s, ok)
	}
	if s, ok := PinnedSegment(segs, 10); !ok || s != 10 {
		t.Fatalf("PinnedSegment(10) = %d, %v; want 10, true", s, ok)
	}
	if _, ok := PinnedSegment(segs, 9); ok {
		t.Fatal("acked below the oldest segment must report no coverage")
	}
	if _, ok := PinnedSegment(nil, 5); ok {
		t.Fatal("no segments, no coverage")
	}
}

// mutateDurable drives n scripted mutations through a manager's store,
// waiting each durable, and returns the updated live-id list.
func mutateDurable(t *testing.T, m *Manager, ids []core.PCID, seed int64, n int) []core.PCID {
	t.Helper()
	store := m.Store()
	rng := rand.New(rand.NewSource(seed))
	var err error
	for _, op := range makeScript(rng, store.Schema(), n, len(ids)) {
		if ids, err = applyOp(store, ids, op); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitDurable(store.Epoch()); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

// TestCheckpointHoldsSegmentsForLease proves replica-aware truncation end to
// end: a lagging live lease keeps its segments on disk across a checkpoint,
// and once the lease advances past the boundary the next checkpoint
// truncates normally.
func TestCheckpointHoldsSegmentsForLease(t *testing.T) {
	memfs := NewMemFS()
	m, err := Open(Options{
		Dir: "data", FS: memfs, Mode: SyncAlways,
		Boot: buildBoot(t, testSchema()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ids := append([]core.PCID(nil), m.Store().Snapshot().IDs()...)
	ids = mutateDurable(t, m, ids, 7, 10)
	lagAt := m.Store().Epoch()
	m.Leases().Heartbeat("f1", lagAt)

	ids = mutateDurable(t, m, ids, 8, 10)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	l, err := listDir(memfs, "data")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := PinnedSegment(l.segments, lagAt); !ok {
		t.Fatalf("checkpoint truncated past the live lease: segments %v, lease acked %d", l.segments, lagAt)
	}
	met := m.Metrics()
	if met.HeldSegments == 0 || met.TruncationsHeld == 0 {
		t.Fatalf("expected held-segment accounting, got %+v", met)
	}
	if met.LeasesActive != 1 || met.LeaseMinAcked != lagAt {
		t.Fatalf("lease metrics = %+v, want 1 active acked at %d", met, lagAt)
	}

	// leases.json is persisted at checkpoint for offline inspection.
	leases, err := ReadLeaseFile(memfs, "data")
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 1 || leases[0].ID != "f1" || leases[0].Acked != lagAt {
		t.Fatalf("leases.json = %+v, want f1 acked %d", leases, lagAt)
	}

	// The follower catches up; the next checkpoint truncates normally.
	m.Leases().Heartbeat("f1", m.Store().Epoch())
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	l, err = listDir(memfs, "data")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.segments) != 1 {
		t.Fatalf("caught-up lease should not hold segments: %v", l.segments)
	}
	if met := m.Metrics(); met.HeldSegments != 0 {
		t.Fatalf("HeldSegments = %d after a clean truncation", met.HeldSegments)
	}
}

// TestCheckpointMaxLagOverridesLease pins the lag cap: a live lease that
// trails the frontier beyond MaxReplicaLag no longer holds truncation (at
// segment granularity — rotations define the release points), and a tailer
// resuming from its stalled position hits ErrFellBehind.
func TestCheckpointMaxLagOverridesLease(t *testing.T) {
	memfs := NewMemFS()
	m, err := Open(Options{
		Dir: "data", FS: memfs, Mode: SyncAlways,
		Boot:          buildBoot(t, testSchema()),
		MaxReplicaLag: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ids := append([]core.PCID(nil), m.Store().Snapshot().IDs()...)
	stalledAt := m.Store().Epoch()
	stalledSeg := stalledAt // the open segment is named by the boot epoch
	m.Leases().Heartbeat("stalled", stalledAt)

	// Each mutate+checkpoint round adds a rotation boundary; once the floor
	// (frontier - maxLag) passes the stalled lease's segment, it is removed
	// even though the lease is alive.
	for round := int64(0); round < 4; round++ {
		ids = mutateDurable(t, m, ids, 9+round, 5)
		m.Leases().Heartbeat("stalled", stalledAt) // keep the lease live
		if err := m.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	l, err := listDir(memfs, "data")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.segments) > 0 && l.segments[0] <= stalledSeg {
		t.Fatalf("lag cap should have released the stalled lease's segment %d: %v", stalledSeg, l.segments)
	}

	// The stalled follower's next poll cannot find its segment and must be
	// told to re-bootstrap.
	tl := NewTailer(DirSource{FS: memfs, Dir: "data"})
	tl.schema = testSchema()
	tl.applied = stalledAt
	tl.segStart = stalledSeg
	if _, perr := tl.Poll(0); !errors.Is(perr, ErrFellBehind) {
		t.Fatalf("stalled tail error = %v, want ErrFellBehind", perr)
	}
}

// leaseRecordingSource wraps a Source and records the lease reports a
// Tailer pushes — the hook HTTPSource implements for real.
type leaseRecordingSource struct {
	Source
	id    string
	acked uint64
}

func (l *leaseRecordingSource) SetLease(id string, acked uint64) { l.id, l.acked = id, acked }

// TestTailerReportsLease pins the tailer half of the lease contract: the
// applied epoch is pushed to a lease-aware source at bootstrap and as polls
// surface records, so every request the source makes heartbeats honestly.
func TestTailerReportsLease(t *testing.T) {
	memfs := NewMemFS()
	m, err := Open(Options{
		Dir: "data", FS: memfs, Mode: SyncAlways,
		Boot: buildBoot(t, testSchema()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	src := &leaseRecordingSource{Source: DirSource{FS: memfs, Dir: "data"}}
	tl := NewTailer(src)
	tl.SetLease("f1")
	store, _, err := tl.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if src.id != "f1" || src.acked != store.Epoch() {
		t.Fatalf("after bootstrap lease = %q@%d, want f1@%d", src.id, src.acked, store.Epoch())
	}

	mutateDurable(t, m, append([]core.PCID(nil), m.Store().Snapshot().IDs()...), 11, 5)
	for i := 0; i < 50 && src.acked < m.Store().Epoch(); i++ {
		if _, err := tl.Poll(0); err != nil {
			t.Fatal(err)
		}
	}
	if src.acked != m.Store().Epoch() {
		t.Fatalf("after polling lease acked = %d, want frontier %d", src.acked, m.Store().Epoch())
	}
}
