package wal

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pcbound/internal/core"
	"pcbound/internal/domain"
)

// Checkpoints are full snapshots of the store at one epoch, written so log
// segments below that epoch can be deleted. A checkpoint file is the
// checkpoint magic plus a single frame holding checkpointJSON. It is written
// to a temporary name, synced, then renamed into place — readers never see a
// partially written checkpoint under its final name (a torn or bit-flipped
// one still fails the frame CRC, and recovery falls back to the previous
// checkpoint while earlier segments survive until the new one is durable).
//
// File naming inside the data directory:
//
//	wal-<start>.log    log segment holding records with epochs > start
//	ckpt-<epoch>.ckpt  checkpoint of the store at exactly <epoch>
//	ckpt-<epoch>.tmp   checkpoint being written (ignored, cleaned at open)
//
// Numbers are zero-padded to fixed width so lexical directory order is
// numeric order.

// checkpointJSON is the frame payload of a checkpoint file.
type checkpointJSON struct {
	Epoch  uint64        `json:"epoch"`
	NextID uint64        `json:"next_id"`
	IDs    []uint64      `json:"ids"`
	Spec   core.SpecJSON `json:"spec"`
}

const numWidth = 20 // enough for any uint64

func segmentName(start uint64) string {
	return fmt.Sprintf("wal-%0*d.log", numWidth, start)
}

func checkpointName(epoch uint64) string {
	return fmt.Sprintf("ckpt-%0*d.ckpt", numWidth, epoch)
}

func checkpointTmpName(epoch uint64) string {
	return fmt.Sprintf("ckpt-%0*d.tmp", numWidth, epoch)
}

// parseName classifies a data-directory entry. kind is "segment", "ckpt",
// "tmp", or "" for unrelated files.
func parseName(name string) (kind string, num uint64) {
	var prefix, suffix string
	switch {
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
		kind, prefix, suffix = "segment", "wal-", ".log"
	case strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".ckpt"):
		kind, prefix, suffix = "ckpt", "ckpt-", ".ckpt"
	case strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".tmp"):
		kind, prefix, suffix = "tmp", "ckpt-", ".tmp"
	default:
		return "", 0
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	n, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return "", 0
	}
	return kind, n
}

// dirListing is the parsed, numerically sorted contents of a data directory.
type dirListing struct {
	segments    []uint64 // segment start epochs, ascending
	checkpoints []uint64 // checkpoint epochs, ascending
	tmps        []uint64 // leftover checkpoint temporaries
}

func listDir(fsys FS, dir string) (dirListing, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return dirListing{}, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var l dirListing
	for _, name := range names {
		switch kind, n := parseName(name); kind {
		case "segment":
			l.segments = append(l.segments, n)
		case "ckpt":
			l.checkpoints = append(l.checkpoints, n)
		case "tmp":
			l.tmps = append(l.tmps, n)
		}
	}
	sort.Slice(l.segments, func(i, j int) bool { return l.segments[i] < l.segments[j] })
	sort.Slice(l.checkpoints, func(i, j int) bool { return l.checkpoints[i] < l.checkpoints[j] })
	return l, nil
}

// writeCheckpoint persists a snapshot as checkpoint <epoch> via the
// tmp+sync+rename+syncdir dance. The caller deletes superseded files.
func writeCheckpoint(fsys FS, dir string, sn *core.Snapshot) error {
	ids := sn.IDs()
	cj := checkpointJSON{
		Epoch:  sn.Epoch(),
		NextID: uint64(sn.NextID()),
		IDs:    make([]uint64, len(ids)),
		Spec:   sn.Spec(),
	}
	for i, id := range ids {
		cj.IDs[i] = uint64(id)
	}
	payload, err := json.Marshal(cj)
	if err != nil {
		return fmt.Errorf("wal: encoding checkpoint %d: %w", cj.Epoch, err)
	}
	buf := append([]byte(checkpointMagic), appendFrame(nil, payload)...)

	tmp := dir + "/" + checkpointTmpName(cj.Epoch)
	final := dir + "/" + checkpointName(cj.Epoch)
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing checkpoint %d: %w", cj.Epoch, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing checkpoint %d: %w", cj.Epoch, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: closing checkpoint %d: %w", cj.Epoch, err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publishing checkpoint %d: %w", cj.Epoch, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: syncing dir after checkpoint %d: %w", cj.Epoch, err)
	}
	return nil
}

// readCheckpoint loads and validates checkpoint <epoch>, rebuilding the
// store state it froze. Any framing, checksum, or semantic failure is an
// error — the caller falls back to an older checkpoint.
func readCheckpoint(fsys FS, dir string, epoch uint64) (*core.Store, *domain.Schema, error) {
	data, err := fsys.ReadFile(dir + "/" + checkpointName(epoch))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: reading checkpoint %d: %w", epoch, err)
	}
	return decodeCheckpoint(data, epoch)
}

// decodeCheckpoint validates raw checkpoint-file bytes (however they were
// fetched — local read or a follower's HTTP pull) and rebuilds the store
// state they froze.
func decodeCheckpoint(data []byte, epoch uint64) (*core.Store, *domain.Schema, error) {
	res, err := scanFile(data, checkpointMagic)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: checkpoint %d: %w", epoch, err)
	}
	if res.torn || len(res.payloads) != 1 {
		return nil, nil, fmt.Errorf("wal: checkpoint %d: torn or malformed (%d frames)", epoch, len(res.payloads))
	}
	var cj checkpointJSON
	if err := json.Unmarshal(res.payloads[0], &cj); err != nil {
		return nil, nil, fmt.Errorf("wal: parsing checkpoint %d: %w", epoch, err)
	}
	if cj.Epoch != epoch {
		return nil, nil, fmt.Errorf("wal: checkpoint file %d records epoch %d", epoch, cj.Epoch)
	}
	if len(cj.IDs) != len(cj.Spec.Constraints) {
		return nil, nil, fmt.Errorf("wal: checkpoint %d: %d ids for %d constraints",
			epoch, len(cj.IDs), len(cj.Spec.Constraints))
	}
	schema, err := core.SchemaFromJSON(cj.Spec.Schema)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: checkpoint %d: %w", epoch, err)
	}
	pcs := make([]core.PC, len(cj.Spec.Constraints))
	ids := make([]core.PCID, len(cj.IDs))
	for i, pj := range cj.Spec.Constraints {
		pc, err := core.PCFromJSON(schema, pj)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: checkpoint %d constraint %d: %w", epoch, i, err)
		}
		pcs[i] = pc
		ids[i] = core.PCID(cj.IDs[i])
	}
	store, err := core.RestoreStore(schema, pcs, ids, cj.Epoch, core.PCID(cj.NextID))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: checkpoint %d: %w", epoch, err)
	}
	return store, schema, nil
}
