package wal

import (
	"errors"
	"io"
	"io/fs"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHTTPSourceErrorPaths pins how the HTTP transport's failures classify:
// everything here must stay retryable (IsTerminal false) — the tailer's
// terminal verdicts (fell behind, diverged) come from its own positioning
// logic, never from a transport error. A 404 must satisfy fs.ErrNotExist so
// that missing-file handling works identically across DirSource and
// HTTPSource.
func TestHTTPSourceErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		handler http.HandlerFunc
		call    func(h *HTTPSource) error
		// wantNotExist: the error must satisfy errors.Is(err, fs.ErrNotExist).
		wantNotExist bool
		// wantInMsg, when non-empty, must appear in the error text.
		wantInMsg string
	}{
		{
			name:         "404 checkpoint is ErrNotExist",
			handler:      func(w http.ResponseWriter, r *http.Request) { http.NotFound(w, r) },
			call:         func(h *HTTPSource) error { _, err := h.ReadCheckpoint(7); return err },
			wantNotExist: true,
		},
		{
			name:         "404 segment is ErrNotExist",
			handler:      func(w http.ResponseWriter, r *http.Request) { http.NotFound(w, r) },
			call:         func(h *HTTPSource) error { _, err := h.ReadSegment(3, 0, 0); return err },
			wantNotExist: true,
		},
		{
			name: "500 surfaces the status and body",
			handler: func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "disk on fire", http.StatusInternalServerError)
			},
			call:      func(h *HTTPSource) error { _, err := h.List(); return err },
			wantInMsg: "HTTP 500",
		},
		{
			name: "mid-read connection drop is a transport error",
			handler: func(w http.ResponseWriter, r *http.Request) {
				// Promise more bytes than arrive: the server closes the
				// connection short and the client's body read tears.
				w.Header().Set("Content-Length", "4096")
				_, _ = w.Write([]byte("torn"))
			},
			call: func(h *HTTPSource) error { _, err := h.ReadSegment(3, 0, 0); return err },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(tc.handler)
			defer ts.Close()
			err := tc.call(&HTTPSource{Base: ts.URL})
			if err == nil {
				t.Fatal("expected an error")
			}
			if IsTerminal(err) {
				t.Fatalf("transport error classified terminal: %v", err)
			}
			if got := errors.Is(err, fs.ErrNotExist); got != tc.wantNotExist {
				t.Fatalf("errors.Is(err, fs.ErrNotExist) = %v, want %v (err: %v)", got, tc.wantNotExist, err)
			}
			if tc.wantInMsg != "" && !strings.Contains(err.Error(), tc.wantInMsg) {
				t.Fatalf("error %q missing %q", err, tc.wantInMsg)
			}
		})
	}
}

// TestHTTPSourceLongPollTimeout: a segment long-poll that outlives the
// client's own timeout fails as a retryable timeout, not a terminal fault —
// the tailer treats it like any transient blip and polls again.
func TestHTTPSourceLongPollTimeout(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // park until the client hangs up
	}))
	defer ts.Close()

	h := &HTTPSource{Base: ts.URL, Client: &http.Client{Timeout: 50 * time.Millisecond}}
	_, err := h.ReadSegment(3, 0, 10*time.Second)
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if IsTerminal(err) {
		t.Fatalf("long-poll timeout classified terminal: %v", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want a net.Error timeout, got %v", err)
	}
}

// TestHTTPSourceMidBodyDropRetryable: the torn-body error satisfies the
// io.ErrUnexpectedEOF family, which retry layers classify as transient.
func TestHTTPSourceMidBodyDropRetryable(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "4096")
		_, _ = w.Write([]byte("torn"))
	}))
	defer ts.Close()

	_, err := (&HTTPSource{Base: ts.URL}).ReadCheckpoint(9)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn body should surface io.ErrUnexpectedEOF, got %v", err)
	}
}

// TestHTTPSourceLeaseParams: once SetLease names a lease, every endpoint the
// source touches carries lease_id/acked — including the segment path that
// already has query parameters — so each request doubles as a heartbeat.
func TestHTTPSourceLeaseParams(t *testing.T) {
	type seen struct{ path, leaseID, acked string }
	var got []seen
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, seen{r.URL.Path, r.URL.Query().Get("lease_id"), r.URL.Query().Get("acked")})
		switch {
		case r.URL.Path == "/v1/wal":
			_, _ = w.Write([]byte(`{"segments":[],"checkpoints":[],"epoch":0,"durable_epoch":0}`))
		default:
			_, _ = w.Write([]byte("x"))
		}
	}))
	defer ts.Close()

	h := &HTTPSource{Base: ts.URL}
	h.SetLease("node a/1", 42)
	if _, err := h.List(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReadCheckpoint(7); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReadSegment(3, 5, 0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("saw %d requests, want 3", len(got))
	}
	for _, s := range got {
		if s.leaseID != "node a/1" || s.acked != "42" {
			t.Fatalf("%s heartbeat = %q@%q, want the escaped lease at 42", s.path, s.leaseID, s.acked)
		}
	}

	// An unleased source adds nothing: DirSource-parity for primaries that
	// tail a shared directory without the lease protocol.
	got = nil
	if _, err := (&HTTPSource{Base: ts.URL}).List(); err != nil {
		t.Fatal(err)
	}
	if got[0].leaseID != "" {
		t.Fatalf("unleased request carried lease_id %q", got[0].leaseID)
	}
}
