package wal

// Log shipping: a follower replays a primary's data directory as a live
// stream. The Tailer below extends recovery's read-only replay (Recover)
// into a resumable tail — bootstrap from the newest readable checkpoint,
// then Poll for records as the primary appends them — over a Source that is
// either the directory itself (shared disk) or the primary's /v1/wal HTTP
// endpoints (separate hosts; see httpsource.go).
//
// The live edge is the hard part. The primary's flush leader may be
// mid-write when a poll reads the segment, so a torn final frame is not
// corruption — it is a record being group-committed right now, and the next
// poll re-reads it completed. The tailer therefore never trusts bytes past
// the last intact frame, never advances its committed offset past a frame
// it has not surfaced, and treats "sealed" (a successor segment exists) as
// the only state in which a short tail can be declared a real fault: sealed
// segments never grow, so a handful of fresh re-reads separates a racing
// rotation from actual damage.
//
// When the source reports the primary's durable epoch (the HTTP source
// does), the tailer also refuses to surface records beyond it: a record
// written but not yet fsynced was never acknowledged, and a follower must
// not apply history the primary could still lose. On a shared-disk source
// the durable horizon is unknown and the tailer streams written bytes —
// the same contract as the primary's own SIGKILL tolerance.

import (
	"errors"
	"fmt"
	"io/fs"
	"time"

	"pcbound/internal/core"
	"pcbound/internal/domain"
)

// Terminal tailer errors. Everything else out of Poll (filesystem hiccups,
// network failures from an HTTP source) is transient: the caller logs,
// backs off, and polls again. These three mean the tail cannot continue.
var (
	// ErrFellBehind: the primary's checkpoint truncation removed records the
	// follower had not applied yet. Re-bootstrap from a fresh checkpoint.
	ErrFellBehind = errors.New("wal: tailer fell behind the primary's log truncation")
	// ErrDiverged: the source's log contradicts what the tailer already
	// applied (a segment shrank below the committed offset, a sealed segment
	// stops short of its rotation boundary, a record fails to decode). After
	// a primary lost acknowledged history — a machine crash under fsync-mode
	// none — the follower's state is not a prefix of the primary's and must
	// be rebuilt from scratch.
	ErrDiverged = errors.New("wal: tailer diverged from the source log")
)

// IsTerminal reports whether a Poll or Bootstrap error is unrecoverable by
// retrying: the follower must re-bootstrap (ErrFellBehind) or be rebuilt
// (ErrDiverged) rather than keep polling.
func IsTerminal(err error) bool {
	return errors.Is(err, ErrFellBehind) || errors.Is(err, ErrDiverged)
}

// Listing is a Source's view of the primary's data directory, plus the
// primary's epochs when the source knows them (zero = unknown).
type Listing struct {
	Segments      []uint64 // segment start epochs, ascending
	Checkpoints   []uint64 // checkpoint epochs, ascending
	FrontierEpoch uint64   // the primary store's current epoch
	DurableEpoch  uint64   // the primary's durable epoch
}

// SegmentChunk is one ReadSegment result: the segment's bytes from the
// requested offset, with the same optional epoch annotations as Listing.
type SegmentChunk struct {
	Data          []byte
	Size          int64 // total segment size at read time
	FrontierEpoch uint64
	DurableEpoch  uint64
}

// Source abstracts where a follower reads the primary's WAL from. Reads
// must be wrapped-ErrNotExist-transparent: a missing segment or checkpoint
// surfaces as an error satisfying errors.Is(err, fs.ErrNotExist), which the
// tailer distinguishes from transient failures.
type Source interface {
	List() (Listing, error)
	// ReadCheckpoint returns the raw bytes of checkpoint <epoch>.
	ReadCheckpoint(epoch uint64) ([]byte, error)
	// ReadSegment returns segment <start>'s bytes from byte offset off. A
	// source that can block (HTTP long-poll) waits up to wait for new bytes
	// past off before returning an empty chunk; others return immediately.
	ReadSegment(start uint64, off int64, wait time.Duration) (SegmentChunk, error)
}

// DirSource reads a primary's data directory in place: the follower shares
// the disk (or a replica of it). Segments are append-only and checkpoints
// rename-published, so lock-free concurrent reads see either a prefix or
// the published file — exactly what the tailer's scanning tolerates.
type DirSource struct {
	// FS defaults to the real filesystem.
	FS FS
	// Dir is the primary's data directory.
	Dir string
}

func (d DirSource) fsys() FS {
	if d.FS == nil {
		return OSFS{}
	}
	return d.FS
}

// List implements Source. A directory source cannot see the primary's
// in-memory epochs; both report as unknown.
func (d DirSource) List() (Listing, error) {
	l, err := listDir(d.fsys(), d.Dir)
	if err != nil {
		return Listing{}, err
	}
	return Listing{Segments: l.segments, Checkpoints: l.checkpoints}, nil
}

// ReadCheckpoint implements Source.
func (d DirSource) ReadCheckpoint(epoch uint64) ([]byte, error) {
	return d.fsys().ReadFile(d.Dir + "/" + checkpointName(epoch))
}

// ReadSegment implements Source. It never blocks: a directory has no
// notification primitive, so the caller's poll cadence is the wait.
func (d DirSource) ReadSegment(start uint64, off int64, _ time.Duration) (SegmentChunk, error) {
	data, err := d.fsys().ReadFile(d.Dir + "/" + segmentName(start))
	if err != nil {
		return SegmentChunk{}, err
	}
	chunk := SegmentChunk{Size: int64(len(data))}
	if off >= 0 && off < int64(len(data)) {
		chunk.Data = data[off:]
	}
	return chunk, nil
}

// tailerMaxStalls is how many consecutive no-progress re-reads of a sealed
// segment the tailer tolerates before declaring it damaged. A sealed
// segment never grows, so each re-read either completes the racing final
// group commit or confirms the tail really is short.
const tailerMaxStalls = 8

// Tailer streams a primary's committed mutations in order: Bootstrap
// restores the newest readable checkpoint, then each Poll returns the next
// batch of records (possibly none) while tracking the segment chain across
// rotations and checkpoint truncations. Methods must be called from one
// goroutine; the returned records are the caller's to keep.
type Tailer struct {
	src    Source
	schema *domain.Schema

	segStart uint64 // current segment's start epoch
	off      int64  // committed offset: just past the last surfaced frame
	applied  uint64 // epoch of the last record Poll returned
	frontier uint64 // primary's frontier epoch when known (monotone max)
	durable  uint64 // primary's durable epoch when known (monotone max)
	stalls   int    // consecutive no-progress polls on a sealed segment
	leaseID  string // replication lease reported to lease-aware sources
}

// NewTailer returns a tailer over the source. Call Bootstrap before Poll.
func NewTailer(src Source) *Tailer {
	return &Tailer{src: src}
}

// leaseReporter is the optional Source extension a lease-aware transport
// (HTTPSource) implements: the tailer pushes its lease id and applied epoch
// so subsequent requests heartbeat the primary's lease registry.
type leaseReporter interface {
	SetLease(id string, acked uint64)
}

// SetLease names this tailer's replication lease. When the source supports
// it (the HTTP source does; a shared-disk directory has no one to tell),
// every request thereafter carries the lease id and the applied epoch, and
// the primary's checkpoint truncation holds segments this tail still needs.
func (t *Tailer) SetLease(id string) {
	t.leaseID = id
	t.reportLease()
}

// reportLease pushes the current applied epoch to a lease-aware source.
func (t *Tailer) reportLease() {
	if t.leaseID == "" {
		return
	}
	if lr, ok := t.src.(leaseReporter); ok {
		lr.SetLease(t.leaseID, t.applied)
	}
}

// Bootstrap restores the newest readable checkpoint from the source and
// positions the tail so Poll streams every record past it. Like recovery,
// unreadable checkpoints are skipped toward older ones. Safe to call again
// to restart a fallen-behind tail from the primary's current checkpoint.
func (t *Tailer) Bootstrap() (*core.Store, *domain.Schema, error) {
	l, err := t.src.List()
	if err != nil {
		return nil, nil, err
	}
	t.noteEpochs(l.FrontierEpoch, l.DurableEpoch)
	if len(l.Checkpoints) == 0 {
		return nil, nil, errors.New("wal: source has no checkpoint to bootstrap a follower from")
	}
	var (
		store   *core.Store
		schema  *domain.Schema
		ckpt    uint64
		lastErr error
	)
	for i := len(l.Checkpoints) - 1; i >= 0; i-- {
		c := l.Checkpoints[i]
		data, err := t.src.ReadCheckpoint(c)
		if err != nil {
			lastErr = err
			continue
		}
		if store, schema, err = decodeCheckpoint(data, c); err == nil {
			ckpt = c
			break
		}
		lastErr = err
		store = nil
	}
	if store == nil {
		return nil, nil, fmt.Errorf("wal: no usable checkpoint at the source: %w", lastErr)
	}

	// Start at the newest segment that can contain records past the
	// checkpoint: the largest start <= ckpt (segment wal-<s> holds epochs
	// > s). Earlier records are skipped by the epoch filter in Poll.
	pos, ok := uint64(0), false
	for _, s := range l.Segments {
		if s <= ckpt {
			pos, ok = s, true
		}
	}
	if !ok {
		if len(l.Segments) > 0 {
			return nil, nil, fmt.Errorf("%w: checkpoint %d decoded but the oldest segment starts at %d",
				ErrFellBehind, ckpt, l.Segments[0])
		}
		// No segments yet (a checkpoint-only directory): poll where the
		// primary will create one.
		pos = ckpt
	}
	t.schema = schema
	t.applied = ckpt
	t.segStart, t.off, t.stalls = pos, 0, 0
	t.reportLease()
	return store, schema, nil
}

// Applied returns the epoch of the last record Poll surfaced (the
// checkpoint epoch right after Bootstrap).
func (t *Tailer) Applied() uint64 { return t.applied }

// Frontier returns the primary's last known frontier epoch (0 when the
// source cannot report it, e.g. a shared directory).
func (t *Tailer) Frontier() uint64 { return t.frontier }

// Durable returns the primary's last known durable epoch (0 when unknown).
func (t *Tailer) Durable() uint64 { return t.durable }

// Position returns the current segment start and committed byte offset —
// diagnostics for logs and tests.
func (t *Tailer) Position() (segment uint64, off int64) { return t.segStart, t.off }

// Poll reads forward from the committed position and returns the next
// records in epoch order (none when the tail is idle). wait is handed to
// the source; a long-polling source blocks that long for new bytes. A nil
// error with no records means "live edge, try again"; terminal conditions
// wrap ErrFellBehind or ErrDiverged (see IsTerminal), anything else is
// transient and polling may simply continue.
func (t *Tailer) Poll(wait time.Duration) ([]core.MutationRecord, error) {
	chunk, err := t.src.ReadSegment(t.segStart, t.off, wait)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, t.reposition()
		}
		return nil, err
	}
	t.noteEpochs(chunk.FrontierEpoch, chunk.DurableEpoch)
	if chunk.Size < t.off {
		return nil, fmt.Errorf("%w: %s is %d bytes, shorter than the %d already applied (the primary lost acknowledged history)",
			ErrDiverged, segmentName(t.segStart), chunk.Size, t.off)
	}
	data := chunk.Data
	base := t.off
	if base == 0 {
		// Fresh segment: the magic header must land before any frame. A
		// short header is the file-creation race, not damage — unless the
		// segment is sealed and stays short (settle decides).
		if len(data) < len(segmentMagic) {
			return nil, t.settle(false)
		}
		if string(data[:len(segmentMagic)]) != segmentMagic {
			return nil, fmt.Errorf("%w: %s: bad magic", ErrDiverged, segmentName(t.segStart))
		}
		data = data[len(segmentMagic):]
		base = int64(len(segmentMagic))
	}

	res := scanFrames(data)
	var recs []core.MutationRecord
	var consumed int64
	heldBack := false
	for i, payload := range res.payloads {
		rec, err := decodeRecord(t.schema, payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrDiverged, segmentName(t.segStart), err)
		}
		if rec.Epoch <= t.applied {
			// Bootstrap overlap: the checkpoint already covers this record.
			consumed = res.ends[i]
			continue
		}
		if rec.Epoch != t.applied+1 {
			return nil, fmt.Errorf("%w: %s: record epoch %d does not follow applied epoch %d",
				ErrDiverged, segmentName(t.segStart), rec.Epoch, t.applied)
		}
		if t.durable != 0 && rec.Epoch > t.durable {
			// Written but not yet acknowledged durable by the primary; hold
			// it back — a follower must never apply history the primary
			// could still lose. The frame is re-read once durable advances.
			heldBack = true
			break
		}
		recs = append(recs, rec)
		t.applied = rec.Epoch
		consumed = res.ends[i]
	}
	t.off = base + consumed
	if len(recs) > 0 {
		t.stalls = 0
		t.reportLease()
		return recs, nil
	}
	if heldBack {
		t.stalls = 0
		return nil, nil
	}
	drained := !res.torn && t.off == chunk.Size
	return nil, t.settle(drained)
}

// settle decides what a no-progress poll means: a rotation to chase, a live
// tail still being written, or — after repeated fresh re-reads of a sealed
// segment — real damage. drained reports that every byte read so far parsed
// and was consumed.
func (t *Tailer) settle(drained bool) error {
	l, err := t.src.List()
	if err != nil {
		return err
	}
	t.noteEpochs(l.FrontierEpoch, l.DurableEpoch)
	next, sealed := uint64(0), false
	for _, s := range l.Segments {
		if s > t.segStart && (!sealed || s < next) {
			next, sealed = s, true
		}
	}
	if !sealed {
		// Live edge: the writer just hasn't flushed more yet.
		t.stalls = 0
		return nil
	}
	if drained && t.applied == next {
		// The rotation boundary is exactly the frontier we reached: this
		// segment is fully applied, follow the chain.
		t.segStart, t.off, t.stalls = next, 0, 0
		return nil
	}
	// Sealed but short of its boundary. Either the poll raced the segment's
	// final group commit (a re-read sees it completed) or the sealed bytes
	// really are torn or gapped; sealed segments never grow, so a bounded
	// number of re-reads decides which.
	t.stalls++
	if t.stalls > tailerMaxStalls {
		return fmt.Errorf("%w: %s is sealed at rotation boundary %d but stops at applied epoch %d after %d re-reads",
			ErrDiverged, segmentName(t.segStart), next, t.applied, t.stalls)
	}
	return nil
}

// reposition handles the current segment disappearing underneath the tail:
// the primary's checkpoint truncated the log. If a surviving segment still
// covers the next record we need, continue from it; otherwise the follower
// has fallen behind the truncation horizon for good.
func (t *Tailer) reposition() error {
	l, err := t.src.List()
	if err != nil {
		return err
	}
	t.noteEpochs(l.FrontierEpoch, l.DurableEpoch)
	pos, ok := uint64(0), false
	for _, s := range l.Segments {
		if s <= t.applied {
			pos, ok = s, true
		}
	}
	if !ok {
		oldest := uint64(0)
		if len(l.Segments) > 0 {
			oldest = l.Segments[0]
		}
		return fmt.Errorf("%w: applied epoch %d but the oldest surviving segment starts at %d; re-bootstrap from a checkpoint",
			ErrFellBehind, t.applied, oldest)
	}
	if pos == t.segStart {
		// Still listed: the read raced a removal or the listing is stale.
		// Transient; the next poll re-reads or re-lists.
		return nil
	}
	t.segStart, t.off, t.stalls = pos, 0, 0
	return nil
}

func (t *Tailer) noteEpochs(frontier, durable uint64) {
	if frontier > t.frontier {
		t.frontier = frontier
	}
	if durable > t.durable {
		t.durable = durable
	}
}
