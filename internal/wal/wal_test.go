package wal

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// Test fixtures: the same sales schema and random-constraint shape the core
// differential tests use, so the crash tests exercise familiar stores.

func testSchema() *domain.Schema {
	return domain.NewSchema(
		domain.Attr{Name: "utc", Kind: domain.Integral, Domain: domain.NewInterval(0, 30)},
		domain.Attr{Name: "branch", Kind: domain.Integral, Domain: domain.NewInterval(0, 2)},
		domain.Attr{Name: "price", Kind: domain.Continuous, Domain: domain.NewInterval(0, 1000)},
	)
}

func testPC(rng *rand.Rand, s *domain.Schema) core.PC {
	uLo := rng.Intn(28)
	uHi := uLo + 1 + rng.Intn(30-uLo)
	b := predicate.NewBuilder(s).Range("utc", float64(uLo), float64(uHi))
	if rng.Intn(2) == 0 {
		bLo := rng.Intn(2)
		b = b.Range("branch", float64(bLo), float64(bLo+rng.Intn(3-bLo)))
	}
	vLo := rng.Float64() * 20
	vHi := vLo + 1 + rng.Float64()*80
	kLo := rng.Intn(4)
	kHi := kLo + rng.Intn(12)
	return core.MustPC(b.Build(), map[string]domain.Interval{"price": domain.NewInterval(vLo, vHi)}, kLo, kHi)
}

// buildBoot makes the deterministic boot store every test run starts from.
func buildBoot(t *testing.T, s *domain.Schema) *core.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	store := core.NewStore(s)
	for i := 0; i < 3; i++ {
		if _, err := store.AddPCs(testPC(rng, s)); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

// scriptOp is one pre-generated mutation; a script applies identically to
// any store that starts from the same state, which is what lets the crash
// sweep compare a crashed-and-recovered run against a never-crashed one.
type scriptOp struct {
	kind core.MutKind
	pcs  []core.PC
	pick int // index into the live-id list, modulo its length
}

func makeScript(rng *rand.Rand, s *domain.Schema, n, bootLive int) []scriptOp {
	live := bootLive
	ops := make([]scriptOp, 0, n)
	for len(ops) < n {
		switch k := rng.Intn(4); {
		case k <= 1 || live < 3: // add 1-2
			count := 1 + rng.Intn(2)
			pcs := make([]core.PC, count)
			for i := range pcs {
				pcs[i] = testPC(rng, s)
			}
			ops = append(ops, scriptOp{kind: core.MutAdd, pcs: pcs})
			live += count
		case k == 2:
			ops = append(ops, scriptOp{kind: core.MutRemove, pick: rng.Intn(1 << 30)})
			live--
		default:
			ops = append(ops, scriptOp{kind: core.MutReplace, pick: rng.Intn(1 << 30), pcs: []core.PC{testPC(rng, s)}})
		}
	}
	return ops
}

func applyOp(store *core.Store, ids []core.PCID, op scriptOp) ([]core.PCID, error) {
	switch op.kind {
	case core.MutAdd:
		got, err := store.AddPCs(op.pcs...)
		if err != nil {
			return ids, err
		}
		return append(ids, got...), nil
	case core.MutRemove:
		i := op.pick % len(ids)
		if err := store.Remove(ids[i]); err != nil {
			return ids, err
		}
		return append(ids[:i], ids[i+1:]...), nil
	default:
		if err := store.Replace(ids[op.pick%len(ids)], op.pcs[0]); err != nil {
			return ids, err
		}
		return ids, nil
	}
}

// storeFingerprint renders everything recovery must reproduce bit-identically
// — epoch, id allocator, stable ids, and the full constraint set with floats
// at exact round-trip precision — as comparable bytes.
func storeFingerprint(t *testing.T, store *core.Store) []byte {
	t.Helper()
	sn := store.Snapshot()
	blob, err := json.Marshal(struct {
		Epoch  uint64
		NextID core.PCID
		IDs    []core.PCID
		Spec   core.SpecJSON
	}{sn.Epoch(), sn.NextID(), sn.IDs(), sn.Spec()})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func requireSameStore(t *testing.T, label string, want, got *core.Store) {
	t.Helper()
	w, g := storeFingerprint(t, want), storeFingerprint(t, got)
	if !bytes.Equal(w, g) {
		t.Fatalf("%s: stores differ\nwant %s\ngot  %s", label, w, g)
	}
}

// openTestManager opens a Manager over fs with the test defaults.
func openTestManager(t *testing.T, fs *MemFS, boot *core.Store, checkpointEvery int, mode Mode) (*Manager, error) {
	t.Helper()
	return Open(Options{
		Dir: "data", FS: fs, Mode: mode,
		CheckpointEvery: checkpointEvery, Boot: boot,
	})
}

// TestManagerRoundTrip drives mutations through a Manager, closes it, and
// reopens the directory: the recovered store must be bit-identical.
func TestManagerRoundTrip(t *testing.T) {
	s := testSchema()
	fs := NewMemFS()
	m, err := openTestManager(t, fs, buildBoot(t, s), 6, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	store := m.Store()
	ids := append([]core.PCID(nil), store.Snapshot().IDs()...)
	rng := rand.New(rand.NewSource(1))
	for _, op := range makeScript(rng, s, 25, len(ids)) {
		if ids, err = applyOp(store, ids, op); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitDurable(store.Epoch()); err != nil {
			t.Fatal(err)
		}
	}
	met := m.Metrics()
	if met.Appends == 0 || met.Fsyncs == 0 || met.Checkpoints == 0 {
		t.Fatalf("expected activity in metrics, got %+v", met)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := openTestManager(t, fs, nil, 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	requireSameStore(t, "reopen", store, m2.Store())
	if info := m2.Info(); info.Epoch != store.Epoch() {
		t.Fatalf("info epoch %d, store epoch %d", info.Epoch, store.Epoch())
	}
}

// TestBootIgnoredWhenDirHasState pins the precedence rule: on-disk state
// wins over the -spec boot store, and Info says so.
func TestBootIgnoredWhenDirHasState(t *testing.T) {
	s := testSchema()
	fs := NewMemFS()
	m, err := openTestManager(t, fs, buildBoot(t, s), 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	store := m.Store()
	ids := append([]core.PCID(nil), store.Snapshot().IDs()...)
	rng := rand.New(rand.NewSource(2))
	for _, op := range makeScript(rng, s, 5, len(ids)) {
		if ids, err = applyOp(store, ids, op); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.WaitDurable(store.Epoch()); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	other := core.NewStore(s) // different, would-be boot store
	m2, err := openTestManager(t, fs, other, 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !m2.Info().BootIgnored {
		t.Fatal("expected BootIgnored")
	}
	if m2.Store() == other {
		t.Fatal("boot store adopted over on-disk state")
	}
	requireSameStore(t, "disk precedence", store, m2.Store())
}

// TestFsyncFailureWedges injects an fsync error mid-run: the failing
// mutation's WaitDurable must error, the wedge must be sticky, and recovery
// from the durable image must land on a consistent prefix.
func TestFsyncFailureWedges(t *testing.T) {
	s := testSchema()
	fs := NewMemFS()
	m, err := openTestManager(t, fs, buildBoot(t, s), 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	store := m.Store()
	ids := append([]core.PCID(nil), store.Snapshot().IDs()...)
	rng := rand.New(rand.NewSource(3))
	script := makeScript(rng, s, 10, len(ids))
	for _, op := range script[:5] {
		if ids, err = applyOp(store, ids, op); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitDurable(store.Epoch()); err != nil {
			t.Fatal(err)
		}
	}
	acked := store.Epoch()

	injected := errInjected()
	fs.SetOpHook(func(op Op) error {
		if op.Kind == "sync" {
			return injected
		}
		return nil
	})
	if ids, err = applyOp(store, ids, script[5]); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitDurable(store.Epoch()); err == nil {
		t.Fatal("WaitDurable succeeded past an fsync failure")
	}
	if m.Err() == nil {
		t.Fatal("wedge not sticky")
	}
	fs.SetOpHook(nil)
	if err := m.WaitDurable(store.Epoch()); err == nil {
		t.Fatal("wedge cleared itself")
	}
	if !m.Metrics().Wedged {
		t.Fatal("metrics do not report the wedge")
	}

	m2, err := openTestManager(t, fs.DurableImage(), nil, 0, SyncAlways)
	if err != nil {
		t.Fatalf("recovery after wedge: %v", err)
	}
	defer m2.Close()
	if got := m2.Store().Epoch(); got != acked {
		t.Fatalf("recovered epoch %d, want last acked %d", got, acked)
	}
}

func errInjected() error { return &injectedErr{} }

type injectedErr struct{}

func (*injectedErr) Error() string { return "injected fault" }

// TestCheckpointFallback corrupts the newest checkpoint while its
// predecessor and the full segment chain are still on disk (cleanup was
// made to fail): recovery must skip the bad checkpoint and still reach the
// exact head state.
func TestCheckpointFallback(t *testing.T) {
	s := testSchema()
	fs := NewMemFS()
	m, err := openTestManager(t, fs, buildBoot(t, s), 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	store := m.Store()
	ids := append([]core.PCID(nil), store.Snapshot().IDs()...)
	rng := rand.New(rand.NewSource(4))
	for _, op := range makeScript(rng, s, 12, len(ids)) {
		if ids, err = applyOp(store, ids, op); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.WaitDurable(store.Epoch()); err != nil {
		t.Fatal(err)
	}
	// Fail every Remove so the superseded checkpoint and segments survive.
	fs.SetOpHook(func(op Op) error {
		if op.Kind == "remove" {
			return errInjected()
		}
		return nil
	})
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fs.SetOpHook(nil)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	l, err := listDir(fs, "data")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.checkpoints) < 2 {
		t.Fatalf("want >= 2 checkpoints on disk, got %v", l.checkpoints)
	}
	newest := l.checkpoints[len(l.checkpoints)-1]
	if err := fs.Corrupt("data/"+checkpointName(newest), int64(len(checkpointMagic))+20); err != nil {
		t.Fatal(err)
	}

	m2, err := openTestManager(t, fs, nil, 0, SyncAlways)
	if err != nil {
		t.Fatalf("recovery with corrupt newest checkpoint: %v", err)
	}
	defer m2.Close()
	if m2.Info().SkippedCheckpoints != 1 {
		t.Fatalf("skipped %d checkpoints, want 1", m2.Info().SkippedCheckpoints)
	}
	requireSameStore(t, "fallback", store, m2.Store())
}

// TestCorruptOnlyCheckpointFails pins the refusal path: when the one
// checkpoint is corrupt and segments below it are gone, recovery must error
// rather than serve wrong data.
func TestCorruptOnlyCheckpointFails(t *testing.T) {
	s := testSchema()
	fs := NewMemFS()
	m, err := openTestManager(t, fs, buildBoot(t, s), 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := listDir(fs, "data")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Corrupt("data/"+checkpointName(l.checkpoints[0]), int64(len(checkpointMagic))+4); err != nil {
		t.Fatal(err)
	}
	if _, err := openTestManager(t, fs, nil, 0, SyncAlways); err == nil {
		t.Fatal("recovery accepted a corrupt sole checkpoint")
	}
}

// TestProcessKillSyncNone pins the SyncNone contract: everything written
// (acked) before a SIGKILL survives in the OS cache image, even though
// nothing was fsynced.
func TestProcessKillSyncNone(t *testing.T) {
	s := testSchema()
	fs := NewMemFS()
	m, err := openTestManager(t, fs, buildBoot(t, s), 0, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	store := m.Store()
	ids := append([]core.PCID(nil), store.Snapshot().IDs()...)
	rng := rand.New(rand.NewSource(5))
	for _, op := range makeScript(rng, s, 15, len(ids)) {
		if ids, err = applyOp(store, ids, op); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitDurable(store.Epoch()); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.Metrics().Fsyncs; n != 0 {
		t.Fatalf("SyncNone ran %d fsyncs", n)
	}
	// No Close: the process is killed here.
	m2, err := openTestManager(t, fs.ProcessImage(), nil, 0, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	requireSameStore(t, "sigkill", store, m2.Store())
}

// TestReadOnlyRecover checks cmd/pcwal's path: Recover yields the same
// store as Open but performs no healing writes.
func TestReadOnlyRecover(t *testing.T) {
	s := testSchema()
	fs := NewMemFS()
	m, err := openTestManager(t, fs, buildBoot(t, s), 5, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	store := m.Store()
	ids := append([]core.PCID(nil), store.Snapshot().IDs()...)
	rng := rand.New(rand.NewSource(6))
	for _, op := range makeScript(rng, s, 20, len(ids)) {
		if ids, err = applyOp(store, ids, op); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitDurable(store.Epoch()); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	img := fs.ProcessImage()
	before := img.Ops()
	recovered, info, err := Recover("data", img)
	if err != nil {
		t.Fatal(err)
	}
	if img.Ops() != before {
		t.Fatalf("read-only Recover performed %d mutating ops", img.Ops()-before)
	}
	if info.Epoch != store.Epoch() {
		t.Fatalf("recovered epoch %d, want %d", info.Epoch, store.Epoch())
	}
	requireSameStore(t, "read-only", store, recovered)
}

// TestGroupCommitConcurrent races many writers through WaitDurable under a
// real group-commit window; the race detector patrols the leader handoff,
// and recovery must see every acked mutation.
func TestGroupCommitConcurrent(t *testing.T) {
	s := testSchema()
	fs := NewMemFS()
	m, err := Open(Options{
		Dir: "data", FS: fs, Mode: SyncAlways, Window: 500 * time.Microsecond,
		Boot: buildBoot(t, s),
	})
	if err != nil {
		t.Fatal(err)
	}
	store := m.Store()
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 12; i++ {
				if _, err := store.AddPCs(testPC(rng, s)); err != nil {
					done <- err
					return
				}
				if err := m.WaitDurable(store.Epoch()); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := openTestManager(t, fs.DurableImage(), nil, 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	requireSameStore(t, "concurrent", store, m2.Store())
}
