package wal

import (
	"bytes"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("a"), {}, []byte("hello world"), bytes.Repeat([]byte{0xAB}, 4096)}
	buf := []byte(segmentMagic)
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	res, err := scanFile(buf, segmentMagic)
	if err != nil {
		t.Fatal(err)
	}
	if res.torn {
		t.Fatal("clean file reported torn")
	}
	if res.validLen != int64(len(buf)) {
		t.Fatalf("validLen %d, want %d", res.validLen, len(buf))
	}
	if len(res.payloads) != len(payloads) {
		t.Fatalf("%d payloads, want %d", len(res.payloads), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(res.payloads[i], payloads[i]) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
}

func TestFrameTornTail(t *testing.T) {
	full := appendFrame(appendFrame([]byte(segmentMagic), []byte("first")), []byte("second record"))
	wholeFirst := int64(len(segmentMagic) + frameHeaderLen + len("first"))
	// Cut at every byte boundary inside the second frame: exactly the first
	// record must survive, and the scan must flag the tear.
	for cut := wholeFirst + 1; cut < int64(len(full)); cut++ {
		res, err := scanFile(full[:cut], segmentMagic)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !res.torn {
			t.Fatalf("cut %d: tear not detected", cut)
		}
		if res.validLen != wholeFirst || len(res.payloads) != 1 {
			t.Fatalf("cut %d: validLen %d payloads %d", cut, res.validLen, len(res.payloads))
		}
	}
	// Cut inside the magic header: torn at zero, no payloads.
	res, err := scanFile(full[:3], segmentMagic)
	if err != nil || !res.torn || res.validLen != 0 {
		t.Fatalf("short header: res %+v err %v", res, err)
	}
}

func TestFrameBitFlip(t *testing.T) {
	full := appendFrame(appendFrame([]byte(segmentMagic), []byte("first")), []byte("second"))
	for off := len(segmentMagic); off < len(full); off++ {
		flipped := append([]byte(nil), full...)
		flipped[off] ^= 0x10
		res, err := scanFile(flipped, segmentMagic)
		if err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
		// A flip in frame i invalidates i and everything after; earlier
		// frames survive untouched.
		if len(res.payloads) > 0 && !bytes.Equal(res.payloads[0], []byte("first")) {
			t.Fatalf("off %d: first payload corrupted silently", off)
		}
		if !res.torn && len(res.payloads) != 2 {
			t.Fatalf("off %d: flip neither detected nor harmless", off)
		}
		if res.torn == (len(res.payloads) == 2) {
			t.Fatalf("off %d: torn=%v with %d payloads", off, res.torn, len(res.payloads))
		}
	}
	// A flip inside the magic is a hard error, not a tear.
	flipped := append([]byte(nil), full...)
	flipped[1] ^= 0x01
	if _, err := scanFile(flipped, segmentMagic); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFrameLengthBomb(t *testing.T) {
	// A corrupt length field pointing past maxFrameLen must read as torn,
	// not attempt the allocation.
	buf := []byte(segmentMagic)
	buf = append(buf, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0)
	res, err := scanFile(buf, segmentMagic)
	if err != nil || !res.torn || len(res.payloads) != 0 {
		t.Fatalf("length bomb: res %+v err %v", res, err)
	}
}
