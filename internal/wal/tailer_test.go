package wal

import (
	"errors"
	"io/fs"
	"math/rand"
	"sort"
	"testing"
	"time"

	"pcbound/internal/core"
)

// drain polls the tailer until the follower store reaches the target epoch,
// applying every surfaced record. It fails the test on any error — these
// tests' tailers are never supposed to hit one while catching up.
func drain(t *testing.T, tl *Tailer, follower *core.Store, target uint64) {
	t.Helper()
	for i := 0; follower.Epoch() < target; i++ {
		if i > 10_000 {
			t.Fatalf("no progress: follower stuck at epoch %d, want %d", follower.Epoch(), target)
		}
		recs, err := tl.Poll(0)
		if err != nil {
			t.Fatalf("poll at follower epoch %d: %v", follower.Epoch(), err)
		}
		for _, rec := range recs {
			if err := follower.ApplyReplicated(rec); err != nil {
				t.Fatalf("apply epoch %d: %v", rec.Epoch, err)
			}
		}
	}
}

// TestTailerStreamsLiveMutations is the end-to-end shape of replication: a
// follower bootstraps from the primary's checkpoint and keeps pace with a
// scripted mutation stream, across checkpoints that rotate and truncate the
// log underneath it. The follower that keeps up must end bit-identical.
func TestTailerStreamsLiveMutations(t *testing.T) {
	memfs := NewMemFS()
	schema := testSchema()
	boot := buildBoot(t, schema)
	m, err := openTestManager(t, memfs, boot, 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	primary := m.Store()

	tl := NewTailer(DirSource{FS: memfs, Dir: "data"})
	follower, _, err := tl.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if follower.Epoch() != primary.Epoch() {
		t.Fatalf("bootstrap at epoch %d, primary at %d", follower.Epoch(), primary.Epoch())
	}

	rng := rand.New(rand.NewSource(7))
	ids := append([]core.PCID(nil), primary.IDs()...)
	for i, op := range makeScript(rng, schema, 60, len(ids)) {
		if ids, err = applyOp(primary, ids, op); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitDurable(primary.Epoch()); err != nil {
			t.Fatal(err)
		}
		drain(t, tl, follower, primary.Epoch())
		if i%13 == 12 {
			// The follower is at parity, so the checkpoint's rotation and
			// segment truncation land exactly at its frontier: the next poll
			// repositions onto the fresh segment and keeps streaming.
			if err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	requireSameStore(t, "follower after live tail", primary, follower)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTailerTornFinalRecordMidRead reads a log whose final record is torn —
// exactly what a poll racing the primary's group commit sees. The torn
// frame must be held back without error, and the re-read after the append
// completes must surface it.
func TestTailerTornFinalRecordMidRead(t *testing.T) {
	memfs := NewMemFS()
	schema := testSchema()
	m, err := openTestManager(t, memfs, buildBoot(t, schema), 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	primary := m.Store()
	ids := append([]core.PCID(nil), primary.IDs()...)
	rng := rand.New(rand.NewSource(11))
	for _, op := range makeScript(rng, schema, 4, len(ids)) {
		if ids, err = applyOp(primary, ids, op); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.WaitDurable(primary.Epoch()); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final frame mid-payload: keep the full bytes, truncate the
	// file to somewhere strictly inside the last record.
	seg := "data/" + segmentName(3)
	full, err := memfs.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scanFile(full, segmentMagic)
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.ends)
	if n < 2 {
		t.Fatalf("want at least 2 frames, got %d", n)
	}
	cut := res.ends[n-2] + (res.ends[n-1]-res.ends[n-2])/2
	if err := memfs.Truncate(seg, cut); err != nil {
		t.Fatal(err)
	}

	tl := NewTailer(DirSource{FS: memfs, Dir: "data"})
	follower, _, err := tl.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	// Mid-commit view: every intact record streams, the torn one does not,
	// and repeated polls at the live edge stay error-free (a torn tail with
	// no successor segment is a record in flight, not corruption).
	drain(t, tl, follower, primary.Epoch()-1)
	for i := 0; i < 2*tailerMaxStalls; i++ {
		recs, err := tl.Poll(0)
		if err != nil || len(recs) != 0 {
			t.Fatalf("torn live edge: poll %d returned %d records, err %v", i, len(recs), err)
		}
	}

	// The writer finishes the append; the next poll completes the stream.
	f, err := memfs.OpenAppend(seg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[cut:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	drain(t, tl, follower, primary.Epoch())
	requireSameStore(t, "follower after torn-tail completion", primary, follower)
}

// TestTailerFallsBehindTruncation pins the other side of the checkpoint
// contract: a follower that has NOT applied records the primary's
// checkpoint truncates away is irrecoverably behind, and the tailer says so
// with ErrFellBehind instead of streaming a gapped history.
func TestTailerFallsBehindTruncation(t *testing.T) {
	memfs := NewMemFS()
	schema := testSchema()
	m, err := openTestManager(t, memfs, buildBoot(t, schema), 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	primary := m.Store()

	tl := NewTailer(DirSource{FS: memfs, Dir: "data"})
	follower, _, err := tl.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}

	// The primary commits and checkpoints while the follower never polls:
	// the records between its frontier and the checkpoint are deleted with
	// the old segment — the segment the tailer was still holding open.
	ids := append([]core.PCID(nil), primary.IDs()...)
	rng := rand.New(rand.NewSource(13))
	for _, op := range makeScript(rng, schema, 5, len(ids)) {
		if ids, err = applyOp(primary, ids, op); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.WaitDurable(primary.Epoch()); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	_, err = tl.Poll(0)
	if !errors.Is(err, ErrFellBehind) {
		t.Fatalf("poll after truncation: got %v, want ErrFellBehind", err)
	}
	if !IsTerminal(err) {
		t.Fatalf("ErrFellBehind must be terminal")
	}
	if follower.Epoch() != 3 {
		t.Fatalf("follower advanced to %d without records", follower.Epoch())
	}
}

// fakeSource serves hand-held segment/checkpoint bytes, with full control
// over the reported frontier and durable epochs — the live-edge states a
// real directory only passes through for microseconds.
type fakeSource struct {
	segs     map[uint64][]byte
	ckpts    map[uint64][]byte
	frontier uint64
	durable  uint64
}

func (f *fakeSource) List() (Listing, error) {
	l := Listing{FrontierEpoch: f.frontier, DurableEpoch: f.durable}
	for s := range f.segs {
		l.Segments = append(l.Segments, s)
	}
	for c := range f.ckpts {
		l.Checkpoints = append(l.Checkpoints, c)
	}
	sort.Slice(l.Segments, func(i, j int) bool { return l.Segments[i] < l.Segments[j] })
	sort.Slice(l.Checkpoints, func(i, j int) bool { return l.Checkpoints[i] < l.Checkpoints[j] })
	return l, nil
}

func (f *fakeSource) ReadCheckpoint(epoch uint64) ([]byte, error) {
	data, ok := f.ckpts[epoch]
	if !ok {
		return nil, fs.ErrNotExist
	}
	return data, nil
}

func (f *fakeSource) ReadSegment(start uint64, off int64, _ time.Duration) (SegmentChunk, error) {
	data, ok := f.segs[start]
	if !ok {
		return SegmentChunk{}, fs.ErrNotExist
	}
	chunk := SegmentChunk{Size: int64(len(data)), FrontierEpoch: f.frontier, DurableEpoch: f.durable}
	if off >= 0 && off < int64(len(data)) {
		chunk.Data = data[off:]
	}
	return chunk, nil
}

// buildFakeSource runs a real manager and captures its directory state as
// it evolves: the boot checkpoint, the first segment's full bytes (read
// before the rotation deletes it), and the post-rotation segment. The
// result is a two-segment history 3 →(wal-3)→ rotEpoch →(wal-rot)→ end.
func buildFakeSource(t *testing.T) (src *fakeSource, primary *core.Store, rotEpoch uint64) {
	t.Helper()
	memfs := NewMemFS()
	schema := testSchema()
	m, err := openTestManager(t, memfs, buildBoot(t, schema), 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	primary = m.Store()
	src = &fakeSource{segs: map[uint64][]byte{}, ckpts: map[uint64][]byte{}}

	ckpt, err := memfs.ReadFile("data/" + checkpointName(3))
	if err != nil {
		t.Fatal(err)
	}
	src.ckpts[3] = ckpt

	ids := append([]core.PCID(nil), primary.IDs()...)
	rng := rand.New(rand.NewSource(17))
	for _, op := range makeScript(rng, schema, 4, len(ids)) {
		if ids, err = applyOp(primary, ids, op); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.WaitDurable(primary.Epoch()); err != nil {
		t.Fatal(err)
	}
	seg3, err := memfs.ReadFile("data/" + segmentName(3))
	if err != nil {
		t.Fatal(err)
	}
	src.segs[3] = seg3

	rotEpoch = primary.Epoch()
	if err := m.Checkpoint(); err != nil { // rotates to wal-<rotEpoch>
		t.Fatal(err)
	}
	for _, op := range makeScript(rng, schema, 3, len(ids)) {
		if ids, err = applyOp(primary, ids, op); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.WaitDurable(primary.Epoch()); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	segR, err := memfs.ReadFile("data/" + segmentName(rotEpoch))
	if err != nil {
		t.Fatal(err)
	}
	src.segs[rotEpoch] = segR
	src.frontier = primary.Epoch()
	return src, primary, rotEpoch
}

// TestTailerAdvancesAcrossSealedSegment replays a history where the rotated
// segment still exists (an HTTP source, or cleanup lagging): the tailer
// must drain the sealed segment, notice the successor via the listing, and
// advance without a byte of overlap or loss.
func TestTailerAdvancesAcrossSealedSegment(t *testing.T) {
	src, primary, _ := buildFakeSource(t)
	tl := NewTailer(src)
	follower, _, err := tl.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	drain(t, tl, follower, primary.Epoch())
	requireSameStore(t, "follower across sealed segment", primary, follower)
	if tl.Frontier() != primary.Epoch() {
		t.Fatalf("frontier %d, want %d", tl.Frontier(), primary.Epoch())
	}
}

// TestTailerHoldsBackPastDurable: when the source reports the primary's
// durable epoch, the tailer must not surface written-but-unacknowledged
// records — a follower may never apply history the primary could lose.
func TestTailerHoldsBackPastDurable(t *testing.T) {
	src, primary, rotEpoch := buildFakeSource(t)
	cap := rotEpoch - 1 // strictly inside the first segment
	src.durable = cap
	tl := NewTailer(src)
	follower, _, err := tl.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	drain(t, tl, follower, cap)
	for i := 0; i < 2*tailerMaxStalls; i++ {
		recs, err := tl.Poll(0)
		if err != nil || len(recs) != 0 {
			t.Fatalf("beyond durable cap: poll %d returned %d records, err %v", i, len(recs), err)
		}
	}
	if follower.Epoch() != cap {
		t.Fatalf("follower at %d, want durable cap %d", follower.Epoch(), cap)
	}
	src.durable = primary.Epoch()
	drain(t, tl, follower, primary.Epoch())
	requireSameStore(t, "follower after durable advance", primary, follower)
}

// TestTailerSealedShortSegmentDiverges: a sealed segment can never grow, so
// one that stops short of its rotation boundary is damage, not a live edge
// — after a bounded number of fresh re-reads the tailer must give up with
// a terminal error instead of waiting forever.
func TestTailerSealedShortSegmentDiverges(t *testing.T) {
	src, _, rotEpoch := buildFakeSource(t)
	full := src.segs[3]
	res, err := scanFile(full, segmentMagic)
	if err != nil {
		t.Fatal(err)
	}
	src.segs[3] = full[:res.ends[len(res.ends)-1]-3] // tear the sealed segment's last frame

	tl := NewTailer(src)
	follower, _, err := tl.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	drain(t, tl, follower, rotEpoch-1)
	var last error
	for i := 0; i < 4*tailerMaxStalls && last == nil; i++ {
		_, last = tl.Poll(0)
	}
	if !errors.Is(last, ErrDiverged) {
		t.Fatalf("sealed short segment: got %v, want ErrDiverged", last)
	}
}

// TestTailerShrunkSegmentDiverges: a segment shorter than what the tailer
// already applied means the source lost acknowledged history (a primary
// that came back from a machine crash under fsync-mode none).
func TestTailerShrunkSegmentDiverges(t *testing.T) {
	src, primary, _ := buildFakeSource(t)
	tl := NewTailer(src)
	follower, _, err := tl.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	drain(t, tl, follower, primary.Epoch())
	seg, off := tl.Position()
	src.segs[seg] = src.segs[seg][:off-1]
	if _, err := tl.Poll(0); !errors.Is(err, ErrDiverged) {
		t.Fatalf("shrunk segment: got %v, want ErrDiverged", err)
	}
}

// TestTailerBootstrapSkipsUnreadableCheckpoint: like recovery, bootstrap
// falls past a corrupt newest checkpoint to an older readable one.
func TestTailerBootstrapSkipsUnreadableCheckpoint(t *testing.T) {
	src, primary, rotEpoch := buildFakeSource(t)
	// Add a corrupt "newer" checkpoint above the good one at 3.
	good := src.ckpts[3]
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x40
	src.ckpts[rotEpoch] = bad

	tl := NewTailer(src)
	follower, _, err := tl.Bootstrap()
	if err != nil {
		t.Fatalf("bootstrap should fall back past the corrupt checkpoint: %v", err)
	}
	if follower.Epoch() != 3 {
		t.Fatalf("bootstrapped at %d, want fallback checkpoint 3", follower.Epoch())
	}
	drain(t, tl, follower, primary.Epoch())
	requireSameStore(t, "follower after checkpoint fallback", primary, follower)
}

// TestTailerBootstrapGapFails: a decodable checkpoint whose replay segments
// are gone (newer checkpoints unreadable, old segments truncated) must be
// ErrFellBehind, not a silent gap.
func TestTailerBootstrapGapFails(t *testing.T) {
	src, _, rotEpoch := buildFakeSource(t)
	delete(src.segs, 3) // checkpoint 3 survives but its replay segment is gone
	_ = rotEpoch
	tl := NewTailer(src)
	if _, _, err := tl.Bootstrap(); !errors.Is(err, ErrFellBehind) {
		t.Fatalf("bootstrap over a gap: got %v, want ErrFellBehind", err)
	}
}
