package wal

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// TestCrashPointDifferential is the acceptance differential for the
// durability layer: one deterministic mutation workload (including periodic
// checkpoints) is run to completion once to count filesystem operations,
// then re-run with a machine crash injected at EVERY mutating-op boundary —
// cycling torn-tail lengths so interrupted writes and fsyncs leave partial
// frames on disk. After each crash, recovery from the durable image must
// produce a store that is bit-identical (epoch, PCIDs, constraint floats)
// to the never-crashed reference at the recovered epoch, must never lose an
// acknowledged mutation, and must answer a fixed query battery with
// bit-identical bounds.
func TestCrashPointDifferential(t *testing.T) {
	s := testSchema()
	boot := buildBoot(t, s)
	bootLive := len(boot.Snapshot().IDs())
	script := makeScript(rand.New(rand.NewSource(20260808)), s, 30, bootLive)

	// Reference trajectory: the same script on a plain store, with every
	// mutation record captured so any epoch's state can be rebuilt.
	refBoot := buildBoot(t, s)
	refBootSn := refBoot.Snapshot()
	var recs []core.MutationRecord
	refBoot.SetCommitHook(func(rec core.MutationRecord) { recs = append(recs, rec) })
	refIDs := append([]core.PCID(nil), refBootSn.IDs()...)
	var err error
	for _, op := range script {
		if refIDs, err = applyOp(refBoot, refIDs, op); err != nil {
			t.Fatal(err)
		}
	}
	refBoot.SetCommitHook(nil)
	finalEpoch := refBoot.Epoch()

	refCache := map[uint64]*core.Store{finalEpoch: refBoot}
	refAt := func(epoch uint64) *core.Store {
		if st, ok := refCache[epoch]; ok {
			return st
		}
		st, err := core.RestoreStore(s, refBootSn.PCs(), refBootSn.IDs(), refBootSn.Epoch(), refBootSn.NextID())
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if rec.Epoch > epoch {
				break
			}
			if err := st.ApplyRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
		if st.Epoch() != epoch {
			t.Fatalf("reference has no epoch %d (reached %d)", epoch, st.Epoch())
		}
		refCache[epoch] = st
		return st
	}

	queries := crashBattery(s)
	boundCache := map[uint64][]core.Range{}
	refBoundsAt := func(epoch uint64) []core.Range {
		if b, ok := boundCache[epoch]; ok {
			return b
		}
		b := batteryBounds(t, refAt(epoch), queries)
		boundCache[epoch] = b
		return b
	}

	// runWorkload replays the scripted server life against fs, stopping at
	// the first durability failure. Returns the highest acknowledged epoch.
	runWorkload := func(fs *MemFS) (acked uint64, err error) {
		m, err := openTestManager(t, fs, buildBoot(t, s), 7, SyncAlways)
		if err != nil {
			return 0, err
		}
		store := m.Store()
		acked = store.Epoch()
		ids := append([]core.PCID(nil), store.Snapshot().IDs()...)
		for _, op := range script {
			if ids, err = applyOp(store, ids, op); err != nil {
				return acked, err
			}
			if err := m.WaitDurable(store.Epoch()); err != nil {
				return acked, err
			}
			acked = store.Epoch()
		}
		return acked, m.Close()
	}

	// Dry run: count the workload's mutating filesystem ops.
	dry := NewMemFS()
	acked, err := runWorkload(dry)
	if err != nil {
		t.Fatalf("dry run: %v", err)
	}
	if acked != finalEpoch {
		t.Fatalf("dry run acked %d, reference reached %d", acked, finalEpoch)
	}
	total := dry.Ops()
	if total < 50 {
		t.Fatalf("workload too small to be interesting: %d ops", total)
	}

	stride := 1
	if testing.Short() {
		stride = 9
	}
	torn := []int{0, 1, 13}
	for n := 1; n <= total; n += stride {
		fs := NewMemFS()
		fs.CrashAt(n, torn[n%len(torn)])
		acked, _ := runWorkload(fs) // the error is the crash itself

		img := fs.DurableImage()
		m, err := openTestManager(t, img, buildBoot(t, s), 0, SyncAlways)
		if err != nil {
			t.Fatalf("crash at op %d: recovery failed: %v", n, err)
		}
		got := m.Store()
		epoch := got.Epoch()
		if epoch < acked {
			t.Fatalf("crash at op %d: recovered epoch %d lost acked mutations (acked %d)", n, epoch, acked)
		}
		if epoch > finalEpoch {
			t.Fatalf("crash at op %d: recovered epoch %d past reference %d", n, epoch, finalEpoch)
		}
		requireSameStore(t, "crash", refAt(epoch), got)

		want := refBoundsAt(epoch)
		if gotB := batteryBounds(t, got, queries); !sameRanges(want, gotB) {
			t.Fatalf("crash at op %d: bounds differ at epoch %d\nwant %+v\ngot  %+v", n, epoch, want, gotB)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("crash at op %d: closing recovered manager: %v", n, err)
		}
	}
}

// TestCrashDuringRecovery layers a second crash on top of the first: the
// healing pass (truncate, temp cleanup, fresh segment) is itself
// interrupted at every boundary, and recovery from THAT image must still
// reach a consistent state — recovery must be idempotent.
func TestCrashDuringRecovery(t *testing.T) {
	s := testSchema()
	boot := buildBoot(t, s)
	bootLive := len(boot.Snapshot().IDs())
	script := makeScript(rand.New(rand.NewSource(31)), s, 12, bootLive)

	// Build a crashed image: a healthy mid-run state plus the debris a
	// crash leaves behind — a torn record on the last segment and a
	// checkpoint temporary — so healing has real work to interrupt.
	fs := NewMemFS()
	var err error
	m, err := openTestManager(t, fs, buildBoot(t, s), 5, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	store := m.Store()
	ids := append([]core.PCID(nil), store.Snapshot().IDs()...)
	for _, op := range script {
		if ids, err = applyOp(store, ids, op); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitDurable(store.Epoch()); err != nil {
			t.Fatal(err)
		}
	}
	_ = m.Close()
	crashed := fs.DurableImage()
	l, err := listDir(crashed, "data")
	if err != nil {
		t.Fatal(err)
	}
	seg, err := crashed.OpenAppend("data/" + segmentName(l.segments[len(l.segments)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Write([]byte{0x07, 0x00, 0x00}); err != nil { // partial frame header
		t.Fatal(err)
	}
	if err := seg.Sync(); err != nil {
		t.Fatal(err)
	}
	tmp, err := crashed.Create("data/" + checkpointTmpName(999))
	if err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := crashed.SyncDir("data"); err != nil {
		t.Fatal(err)
	}

	// First recovery, interrupted at every op boundary.
	probe := crashed.ProcessImage()
	if _, err := openTestManager(t, probe, nil, 0, SyncAlways); err != nil {
		t.Fatal(err)
	}
	healOps := probe.Ops()
	if healOps < 2 {
		t.Fatalf("healing performed only %d ops; the image was not dirty enough", healOps)
	}

	wantStore, _, err := Recover("data", crashed.ProcessImage())
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= healOps; n++ {
		img := crashed.ProcessImage()
		img.CrashAt(n, n%7)
		if _, err := openTestManager(t, img, nil, 0, SyncAlways); err == nil {
			// The crash landed after all healing writes; nothing to retry.
			continue
		} else if !errors.Is(err, ErrCrashed) {
			t.Fatalf("heal crash at %d: unexpected error: %v", n, err)
		}
		final, err := openTestManager(t, img.DurableImage(), nil, 0, SyncAlways)
		if err != nil {
			t.Fatalf("heal crash at %d: second recovery failed: %v", n, err)
		}
		requireSameStore(t, "second recovery", wantStore, final.Store())
		final.Close()
	}
}

// crashBattery is the fixed query battery the differential compares bounds
// on: every aggregate, over a touched and an untouched region.
func crashBattery(s *domain.Schema) []core.Query {
	regions := []*predicate.P{
		nil,
		predicate.NewBuilder(s).Range("utc", 4, 18).Build(),
	}
	var qs []core.Query
	for _, where := range regions {
		for _, agg := range []core.Agg{core.Count, core.Sum, core.Avg} {
			qs = append(qs, core.Query{Agg: agg, Attr: "price", Where: where})
		}
	}
	return qs
}

func batteryBounds(t *testing.T, store *core.Store, queries []core.Query) []core.Range {
	t.Helper()
	e := core.NewEngine(store, nil, core.Options{})
	out := make([]core.Range, len(queries))
	for i, q := range queries {
		r, err := e.Bound(q)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

func sameRanges(a, b []core.Range) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].Lo) != math.Float64bits(b[i].Lo) ||
			math.Float64bits(a[i].Hi) != math.Float64bits(b[i].Hi) ||
			a[i].LoExact != b[i].LoExact || a[i].HiExact != b[i].HiExact ||
			a[i].MaybeEmpty != b[i].MaybeEmpty {
			return false
		}
	}
	return true
}
