// Package wal is the durability layer under core.Store: a write-ahead log
// of mutation records appended before any mutation is acknowledged, periodic
// snapshot checkpoints with log truncation, and a recovery path that replays
// the log tail onto the latest checkpoint to a bit-identical store.
//
// Everything talks to the filesystem and the clock through the small FS and
// Clock interfaces below, so the fault-injection harness (MemFS) can crash
// the "machine" at any operation boundary, tear the final record, or flip
// bits — and the recovery tests can prove bit-identity under all of it.
//
// The same log doubles as the replication stream: Tailer incrementally
// reads a live directory (or a primary's /v1/wal endpoints via HTTPSource)
// — bootstrapping from the newest checkpoint, surfacing only durable,
// fully-framed records, holding at a torn live edge until the group commit
// completes, and advancing across sealed segments — so a follower applies
// exactly the records recovery would replay, in the same order.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// File is the writable handle the log and checkpoint writers use. Writes go
// to the OS cache; Sync forces them to stable storage.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the handful of filesystem operations durability needs. Paths
// are slash-separated and interpreted relative to the implementation's root.
//
// The POSIX subtleties the interface preserves: creating or renaming a file
// makes it durable only after SyncDir on its parent directory, and Sync on a
// file persists its contents but not its directory entry.
type FS interface {
	// MkdirAll creates the directory (and parents) if absent.
	MkdirAll(path string) error
	// ReadDir lists the names of directory entries, sorted.
	ReadDir(path string) ([]string, error)
	// ReadFile reads a whole file.
	ReadFile(path string) ([]byte, error)
	// Create opens a new truncated file for writing.
	Create(path string) (File, error)
	// OpenAppend opens a file for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// Truncate shortens a file to size bytes.
	Truncate(path string, size int64) error
	// SyncDir fsyncs a directory, persisting entry creations/renames/removes.
	SyncDir(path string) error
}

// Clock abstracts sleeping so tests can run the group-commit window without
// real time passing.
type Clock interface {
	Sleep(d time.Duration)
}

// OSFS is the production FS over the real filesystem, rooted at a directory.
type OSFS struct {
	Root string
}

func (o OSFS) join(path string) string { return filepath.Join(o.Root, filepath.FromSlash(path)) }

func (o OSFS) MkdirAll(path string) error { return os.MkdirAll(o.join(path), 0o755) }

func (o OSFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(o.join(path))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (o OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(o.join(path)) }

func (o OSFS) Create(path string) (File, error) {
	return os.OpenFile(o.join(path), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (o OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(o.join(path), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (o OSFS) Rename(oldpath, newpath string) error {
	return os.Rename(o.join(oldpath), o.join(newpath))
}

func (o OSFS) Remove(path string) error { return os.Remove(o.join(path)) }

func (o OSFS) Truncate(path string, size int64) error { return os.Truncate(o.join(path), size) }

func (o OSFS) SyncDir(path string) error {
	d, err := os.Open(o.join(path))
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: sync dir %s: %w", path, serr)
	}
	return cerr
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Sleep(d time.Duration) { time.Sleep(d) }
