package wal

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The HTTP replication wire format, shared between the primary's /v1/wal
// handlers (internal/server) and the follower-side HTTPSource here:
//
//	GET /v1/wal                          -> ListingJSON
//	GET /v1/wal/checkpoint/{epoch}       -> raw checkpoint file bytes
//	GET /v1/wal/segment/{start}?off=N&wait_ms=M
//	                                     -> raw segment bytes from offset N,
//	                                        long-polling up to M ms for new
//	                                        bytes; headers carry the epochs
//
// Segment and checkpoint responses are the on-disk bytes verbatim — the
// same CRC framing protects both transports, so a follower validates an
// HTTP-fetched chunk exactly as it would a shared-disk read.

// ListingJSON is the GET /v1/wal document a primary serves to followers.
type ListingJSON struct {
	Segments     []uint64 `json:"segments"`
	Checkpoints  []uint64 `json:"checkpoints"`
	Epoch        uint64   `json:"epoch"`
	DurableEpoch uint64   `json:"durable_epoch"`
	// Leases lists the live replica leases, so operators (and cmd/pcwal
	// info against a URL) can see which followers pin truncation.
	Leases []LeaseJSON `json:"leases,omitempty"`
}

// Headers annotating /v1/wal segment responses.
const (
	HeaderFrontierEpoch = "X-Pcwal-Frontier-Epoch"
	HeaderDurableEpoch  = "X-Pcwal-Durable-Epoch"
	HeaderSegmentSize   = "X-Pcwal-Segment-Size"
)

// HTTPSource reads a primary's WAL over its /v1/wal endpoints, letting a
// follower run on a separate host. Unlike DirSource it learns the primary's
// frontier and durable epochs from every response, so the tailer holds back
// records the primary has written but not yet acknowledged durable.
type HTTPSource struct {
	// Base is the primary's base URL, e.g. "http://primary:8080".
	Base string
	// Client defaults to a fresh client with no global timeout — segment
	// fetches long-poll, so each request is bounded by a per-call context
	// deadline instead.
	Client *http.Client

	mu      sync.Mutex
	leaseID string // guarded by mu — replication lease piggybacked on every request
	acked   uint64 // guarded by mu — applied epoch reported with the lease
}

// SetLease names the replication lease and applied epoch this source
// attaches to every request (as lease_id/acked query parameters), so the
// primary's checkpoint truncation can hold segments this follower still
// needs. The Tailer calls it as its applied frontier advances.
func (h *HTTPSource) SetLease(id string, acked uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.leaseID = id
	h.acked = acked
}

// withLease appends the lease heartbeat parameters to a request path.
func (h *HTTPSource) withLease(path string) string {
	h.mu.Lock()
	id, acked := h.leaseID, h.acked
	h.mu.Unlock()
	if id == "" {
		return path
	}
	sep := "?"
	if strings.Contains(path, "?") {
		sep = "&"
	}
	return path + sep + "lease_id=" + url.QueryEscape(id) + "&acked=" + strconv.FormatUint(acked, 10)
}

// SourceFor returns the Source for a follow target: an http(s):// base URL
// becomes an HTTPSource, anything else is a data directory on local disk.
func SourceFor(target string) Source {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		return &HTTPSource{Base: strings.TrimRight(target, "/")}
	}
	return DirSource{Dir: target}
}

func (h *HTTPSource) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return &http.Client{}
}

// get issues one GET bounded by timeout and returns the body. A 404 is
// reported as an error satisfying errors.Is(err, fs.ErrNotExist) so the
// tailer's missing-file handling works across transports.
func (h *HTTPSource) get(path string, timeout time.Duration) (*http.Response, []byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.Base+path, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: building request for %s: %w", path, err)
	}
	resp, err := h.client().Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: fetching %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, nil, fmt.Errorf("wal: %s: %w", path, fs.ErrNotExist)
	case resp.StatusCode != http.StatusOK:
		msg := strings.TrimSpace(string(body))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return nil, nil, fmt.Errorf("wal: %s: HTTP %d: %s", path, resp.StatusCode, msg)
	}
	return resp, body, nil
}

// List implements Source.
func (h *HTTPSource) List() (Listing, error) {
	_, body, err := h.get(h.withLease("/v1/wal"), 30*time.Second)
	if err != nil {
		return Listing{}, err
	}
	var lj ListingJSON
	if err := json.Unmarshal(body, &lj); err != nil {
		return Listing{}, fmt.Errorf("wal: parsing /v1/wal listing: %w", err)
	}
	return Listing{
		Segments:      lj.Segments,
		Checkpoints:   lj.Checkpoints,
		FrontierEpoch: lj.Epoch,
		DurableEpoch:  lj.DurableEpoch,
	}, nil
}

// ReadCheckpoint implements Source.
func (h *HTTPSource) ReadCheckpoint(epoch uint64) ([]byte, error) {
	_, body, err := h.get(h.withLease(fmt.Sprintf("/v1/wal/checkpoint/%d", epoch)), 60*time.Second)
	return body, err
}

// ReadSegment implements Source. The request long-polls: the primary holds
// it open up to wait for bytes past off, so an idle tail costs one slow
// request instead of a tight poll loop.
func (h *HTTPSource) ReadSegment(start uint64, off int64, wait time.Duration) (SegmentChunk, error) {
	path := h.withLease(fmt.Sprintf("/v1/wal/segment/%d?off=%d&wait_ms=%d", start, off, wait.Milliseconds()))
	resp, body, err := h.get(path, wait+30*time.Second)
	if err != nil {
		return SegmentChunk{}, err
	}
	chunk := SegmentChunk{Data: body, Size: off + int64(len(body))}
	if v := resp.Header.Get(HeaderSegmentSize); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			chunk.Size = n
		}
	}
	if v := resp.Header.Get(HeaderFrontierEpoch); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			chunk.FrontierEpoch = n
		}
	}
	if v := resp.Header.Get(HeaderDurableEpoch); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			chunk.DurableEpoch = n
		}
	}
	return chunk, nil
}
