package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk framing shared by log segments and checkpoints.
//
// A file is a magic header followed by frames. Each frame is:
//
//	u32 LE payload length | u32 LE CRC-32C of payload | payload bytes
//
// A frame is valid only if the full payload is present and its checksum
// matches. Scanning stops at the first invalid frame: in the last log
// segment that is a torn tail from a crash mid-append (expected, healed by
// truncation); anywhere else it is corruption.

const (
	// segmentMagic opens every log segment.
	segmentMagic = "PCWAL1\n\x00"
	// checkpointMagic opens every checkpoint file.
	checkpointMagic = "PCCKPT1\x00"

	frameHeaderLen = 8
	// maxFrameLen bounds a single payload so a corrupt length field cannot
	// drive a giant allocation during recovery.
	maxFrameLen = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// scanResult reports one file scan. Payloads alias the scanned data.
type scanResult struct {
	payloads [][]byte
	// ends[i] is the byte offset just past payloads[i]'s frame, so a
	// resumable reader (the tailer) can commit its position frame by frame.
	ends []int64
	// validLen is the byte offset just past the last valid frame (including
	// the magic header). Bytes beyond it are torn or corrupt.
	validLen int64
	// torn is true when trailing bytes past validLen failed to parse.
	torn bool
}

// scanFrames walks frames in data — which must start at a frame boundary,
// i.e. just past the magic header or past a previously validated frame —
// until the first invalid one. Offsets in the result are relative to the
// start of data.
func scanFrames(data []byte) scanResult {
	var res scanResult
	off := 0
	for off < len(data) {
		if off+frameHeaderLen > len(data) {
			res.torn = true
			return res
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxFrameLen || off+frameHeaderLen+n > len(data) {
			res.torn = true
			return res
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			res.torn = true
			return res
		}
		res.payloads = append(res.payloads, payload)
		off += frameHeaderLen + n
		res.ends = append(res.ends, int64(off))
		res.validLen = int64(off)
	}
	return res
}

// scanFile validates a file's magic header and walks its frames until the
// first invalid one. It only errors when the header itself is wrong — a
// file that never got its full magic written (crash during creation) is
// reported as torn-at-zero rather than an error, because the caller decides
// whether a torn file is tolerable (last segment) or fatal (anything else).
func scanFile(data []byte, magic string) (scanResult, error) {
	if len(data) < len(magic) {
		// Short header: torn during file creation.
		return scanResult{validLen: 0, torn: len(data) > 0}, nil
	}
	if string(data[:len(magic)]) != magic {
		return scanResult{}, fmt.Errorf("wal: bad magic %q", data[:len(magic)])
	}
	res := scanFrames(data[len(magic):])
	res.validLen += int64(len(magic))
	for i := range res.ends {
		res.ends[i] += int64(len(magic))
	}
	return res, nil
}
