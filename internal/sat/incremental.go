package sat

import (
	"pcbound/internal/domain"
)

// Incremental maintains the uncovered remainder of a base region under a
// mutable set of predicate boxes, applying adds and removes as deltas
// instead of re-solving coverage from scratch.
//
// Invariant: rem is a list of pairwise-disjoint boxes, each non-empty on the
// schema lattice, whose union is exactly the lattice points of base outside
// every registered box (base \ ∪boxes). The deltas preserve it:
//
//   - Add(b): every remainder box overlapping b is carved against b
//     (rem' = rem \ b). Boxes already disjoint from b pass through
//     untouched, so the cost scales with the overlap, not the set size.
//   - Remove(id): the retired box is carved against the remaining boxes and
//     the pieces join the remainder (rem' = rem ∪ (b \ ∪others)). The
//     pieces lie inside b while every existing remainder box lies outside
//     all boxes including b, so disjointness is preserved.
//
// Repeated mutation can fragment the remainder, so the tracker compacts
// (rebuilds from scratch) once the fragment count outgrows the box count.
// The from-scratch rebuild also serves as the differential-test reference
// for the delta path: SetRebuildMode(true) makes every mutation rebuild
// instead, and the two modes must always agree on coverage.
//
// The constraint store (internal/core) uses one Incremental to answer
// closure checks (Definition 3.2) across its mutation stream.
//
// An Incremental is NOT safe for concurrent use; callers serialize access
// (the constraint store guards its tracker with a dedicated closure mutex —
// see core.Store.closureMu — so closure SAT work never blocks writers).
type Incremental struct {
	solver *Solver
	base   domain.Box
	boxes  map[uint64]domain.Box
	// order keeps registered ids in insertion order so rebuilds and removals
	// subtract boxes deterministically (map iteration order is randomized).
	order []uint64
	rem   []domain.Box

	rebuildMode bool

	// Deltas and Rebuilds count mutations applied incrementally vs via a
	// full recomputation (compactions and rebuild-mode operations).
	Deltas, Rebuilds int64
}

// NewIncremental returns a tracker for the given base region with no boxes
// registered: the remainder starts as the whole base.
func NewIncremental(solver *Solver, base domain.Box) *Incremental {
	inc := &Incremental{
		solver: solver,
		base:   base.Clone(),
		boxes:  make(map[uint64]domain.Box),
	}
	inc.rem = solver.RemainderBoxes(inc.base, nil)
	return inc
}

// SetRebuildMode switches the tracker to the reference path: every mutation
// recomputes the remainder from scratch instead of applying a delta.
// Coverage answers are identical either way; the mode exists for
// differential testing and benchmarking.
func (inc *Incremental) SetRebuildMode(on bool) { inc.rebuildMode = on }

// Len returns the number of registered boxes.
func (inc *Incremental) Len() int { return len(inc.boxes) }

// orderedBoxes returns the registered boxes in insertion order, excluding
// the given id (0 — a reserved, never-registered id — excludes nothing).
func (inc *Incremental) orderedBoxes(excludeID uint64) []domain.Box {
	out := make([]domain.Box, 0, len(inc.boxes))
	for _, id := range inc.order {
		if id == excludeID {
			continue
		}
		out = append(out, inc.boxes[id])
	}
	return out
}

// Add registers a box under the given id (which must be non-zero and not in
// use — 0 is reserved as the internal "no exclusion" sentinel) and subtracts
// it from the remainder.
func (inc *Incremental) Add(id uint64, box domain.Box) {
	if id == 0 {
		panic("sat: Incremental box id 0 is reserved")
	}
	if _, dup := inc.boxes[id]; dup {
		panic("sat: Incremental.Add with duplicate id")
	}
	inc.boxes[id] = box.Clone()
	inc.order = append(inc.order, id)
	if inc.rebuildMode {
		inc.Rebuild()
		return
	}
	inc.Deltas++
	inc.rem = inc.carve(box)
	inc.maybeCompact()
}

// carve returns the remainder with box subtracted (rem \ box): fragments
// disjoint from box pass through untouched, overlapping ones are split by
// box subtraction. Shared by the Add and Replace delta paths.
func (inc *Incremental) carve(box domain.Box) []domain.Box {
	schema := inc.solver.Schema()
	out := inc.rem[:0:0]
	for _, r := range inc.rem {
		if r.Intersect(box).EmptyFor(schema) {
			out = append(out, r)
			continue
		}
		out = append(out, inc.solver.RemainderBoxes(r, []domain.Box{box})...)
	}
	return out
}

// Remove retires the box registered under id and returns whether it was
// present. The freed region (minus the other boxes) rejoins the remainder.
func (inc *Incremental) Remove(id uint64) bool {
	box, ok := inc.boxes[id]
	if !ok {
		return false
	}
	delete(inc.boxes, id)
	for i, got := range inc.order {
		if got == id {
			inc.order = append(inc.order[:i], inc.order[i+1:]...)
			break
		}
	}
	if inc.rebuildMode {
		inc.Rebuild()
		return true
	}
	inc.Deltas++
	// Clip the freed box to the base region first: registered boxes may
	// extend beyond base, but only the part inside it belongs to the
	// remainder (rem = base \ ∪boxes).
	pieces := inc.solver.RemainderBoxes(box.Intersect(inc.base), inc.orderedBoxes(0))
	inc.rem = append(inc.rem, pieces...)
	inc.maybeCompact()
	return true
}

// Replace swaps the box registered under id for a new one in place (the
// insertion order is preserved), as one delta:
//
//	rem' = (rem \ new) ∪ ((old ∩ base) \ ∪current)
//
// where ∪current already includes the new box. The first term keeps every
// point still outside all boxes; the second returns the part of the old box
// freed by the swap. For a tighten-in-place (new ⊆ old) the first term is a
// no-op, since rem was already disjoint from old.
func (inc *Incremental) Replace(id uint64, box domain.Box) bool {
	old, ok := inc.boxes[id]
	if !ok {
		return false
	}
	inc.boxes[id] = box.Clone()
	if inc.rebuildMode {
		inc.Rebuild()
		return true
	}
	inc.Deltas++
	out := inc.carve(box)
	pieces := inc.solver.RemainderBoxes(old.Intersect(inc.base), inc.orderedBoxes(0))
	inc.rem = append(out, pieces...)
	inc.maybeCompact()
	return true
}

// maybeCompact rebuilds the remainder when fragmentation outgrows the
// registered set, keeping Covered/Witness costs bounded.
func (inc *Incremental) maybeCompact() {
	if len(inc.rem) > 64 && len(inc.rem) > 8*len(inc.boxes) {
		inc.Rebuild()
	}
}

// Rebuild recomputes the remainder from scratch. Semantically a no-op; it
// defragments the remainder decomposition.
func (inc *Incremental) Rebuild() {
	inc.Rebuilds++
	inc.rem = inc.solver.RemainderBoxes(inc.base, inc.orderedBoxes(0))
}

// Covered reports whether the registered boxes cover every lattice point of
// the base region (the constraint-closure condition).
func (inc *Incremental) Covered() bool { return len(inc.rem) == 0 }

// Witness returns a lattice point of the base region outside every
// registered box, if one exists. The choice is deterministic for a given
// remainder decomposition (the lexicographically smallest fragment's
// representative); trackers that reached the same region through different
// mutation histories may fragment it differently and return different —
// equally valid — witnesses.
func (inc *Incremental) Witness() (domain.Row, bool) {
	if len(inc.rem) == 0 {
		return nil, false
	}
	best := 0
	for i := 1; i < len(inc.rem); i++ {
		if lessBox(inc.rem[i], inc.rem[best]) {
			best = i
		}
	}
	return inc.rem[best].Representative(inc.solver.Schema()), true
}

// RemainderCount returns the current number of remainder fragments
// (diagnostic; 0 iff covered).
func (inc *Incremental) RemainderCount() int { return len(inc.rem) }

// lessBox orders boxes lexicographically by (Lo, Hi) per dimension.
func lessBox(a, b domain.Box) bool {
	for d := range a {
		if a[d].Lo != b[d].Lo {
			return a[d].Lo < b[d].Lo
		}
		if a[d].Hi != b[d].Hi {
			return a[d].Hi < b[d].Hi
		}
	}
	return false
}
