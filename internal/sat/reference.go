package sat

import "pcbound/internal/domain"

// This file preserves the original recursive box-subtraction search as a
// reference implementation. The optimized engine in arena.go visits regions
// in exactly the same order, so the two produce bit-identical witnesses,
// remainder decompositions and satisfiability verdicts; differential tests
// in arena_test.go and the BenchmarkHotPath suite rely on this path (enable
// it with Solver.UseReference).

// uncoveredRec searches for a lattice point of b outside every box in neg.
func (s *Solver) uncoveredRec(b domain.Box, neg []domain.Box) (domain.Row, bool) {
	s.nodes.Add(1)
	if b.EmptyFor(s.schema) {
		return nil, false
	}
	for i, n := range neg {
		inter := b.Intersect(n)
		if inter.EmptyFor(s.schema) {
			continue
		}
		if n.ContainsBox(b) {
			return nil, false
		}
		// Subtract n from b. Sweep the dimensions; at each dimension peel off
		// the parts of the current box lying strictly below / above n's
		// interval, recursing into each remainder. What is left after the
		// sweep is contained in n and therefore covered.
		//
		// Negative boxes with index < i do not overlap b (checked above), so
		// remainders only need to be tested against neg[i+1:].
		rest := neg[i+1:]
		cur := b.Clone()
		for d := range cur {
			kind := s.schema.Attr(d).Kind
			if cur[d].Lo < n[d].Lo {
				piece := cur.Clone()
				piece[d] = domain.Interval{Lo: cur[d].Lo, Hi: pred(n[d].Lo, kind)}
				if w, ok := s.uncoveredRec(piece, rest); ok {
					return w, true
				}
				cur[d].Lo = n[d].Lo
			}
			if cur[d].Hi > n[d].Hi {
				piece := cur.Clone()
				piece[d] = domain.Interval{Lo: succ(n[d].Hi, kind), Hi: cur[d].Hi}
				if w, ok := s.uncoveredRec(piece, rest); ok {
					return w, true
				}
				cur[d].Hi = n[d].Hi
			}
		}
		return nil, false
	}
	// No negative box overlaps b: any representative point is a witness.
	return b.Representative(s.schema), true
}

// remainderRec appends a disjoint box decomposition of b \ ∪neg to out.
func (s *Solver) remainderRec(b domain.Box, neg []domain.Box, out *[]domain.Box) {
	s.nodes.Add(1)
	if b.EmptyFor(s.schema) {
		return
	}
	for i, n := range neg {
		inter := b.Intersect(n)
		if inter.EmptyFor(s.schema) {
			continue
		}
		if n.ContainsBox(b) {
			return
		}
		rest := neg[i+1:]
		cur := b.Clone()
		for d := range cur {
			kind := s.schema.Attr(d).Kind
			if cur[d].Lo < n[d].Lo {
				piece := cur.Clone()
				piece[d] = domain.Interval{Lo: cur[d].Lo, Hi: pred(n[d].Lo, kind)}
				s.remainderRec(piece, rest, out)
				cur[d].Lo = n[d].Lo
			}
			if cur[d].Hi > n[d].Hi {
				piece := cur.Clone()
				piece[d] = domain.Interval{Lo: succ(n[d].Hi, kind), Hi: cur[d].Hi}
				s.remainderRec(piece, rest, out)
				cur[d].Hi = n[d].Hi
			}
		}
		return
	}
	*out = append(*out, b)
}
