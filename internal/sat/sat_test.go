package sat

import (
	"math/rand"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

func schema2D() *domain.Schema {
	return domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
		domain.Attr{Name: "y", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
	)
}

func box(s *domain.Schema, xlo, xhi, ylo, yhi float64) *predicate.P {
	return predicate.NewBuilder(s).Range("x", xlo, xhi).Range("y", ylo, yhi).Build()
}

func TestSatTrivial(t *testing.T) {
	s := schema2D()
	sv := New(s)
	if !sv.Sat(nil, nil) {
		t.Error("empty conjunction over non-empty domain should be sat")
	}
	if !sv.Sat([]*predicate.P{predicate.True(s)}, nil) {
		t.Error("TRUE should be sat")
	}
	empty := predicate.NewBuilder(s).Range("x", 5, 1).Build()
	if sv.Sat([]*predicate.P{empty}, nil) {
		t.Error("empty positive predicate should be unsat")
	}
}

func TestSatPositiveConjunction(t *testing.T) {
	s := schema2D()
	sv := New(s)
	a := box(s, 0, 50, 0, 50)
	b := box(s, 40, 90, 40, 90)
	if !sv.Sat([]*predicate.P{a, b}, nil) {
		t.Error("overlapping boxes should be sat")
	}
	c := box(s, 60, 90, 0, 100)
	if sv.Sat([]*predicate.P{a, c}, nil) {
		t.Error("disjoint boxes should be unsat")
	}
}

func TestSatWithNegation(t *testing.T) {
	s := schema2D()
	sv := New(s)
	a := box(s, 0, 50, 0, 50)
	cover := box(s, 0, 50, 0, 50)
	if sv.Sat([]*predicate.P{a}, []*predicate.P{cover}) {
		t.Error("A ∧ ¬A should be unsat")
	}
	partial := box(s, 0, 25, 0, 50)
	if !sv.Sat([]*predicate.P{a}, []*predicate.P{partial}) {
		t.Error("A minus a strict subset should be sat")
	}
	w, ok := sv.Witness([]*predicate.P{a}, []*predicate.P{partial})
	if !ok {
		t.Fatal("expected witness")
	}
	if !a.Eval(w) || partial.Eval(w) {
		t.Errorf("witness %v does not satisfy A ∧ ¬partial", w)
	}
}

func TestSatUnionCovers(t *testing.T) {
	s := schema2D()
	sv := New(s)
	a := box(s, 0, 10, 0, 10)
	// Two halves cover a completely.
	left := box(s, 0, 5, 0, 10)
	right := box(s, 5, 10, 0, 10)
	if sv.Sat([]*predicate.P{a}, []*predicate.P{left, right}) {
		t.Error("A covered by union should be unsat")
	}
	// Leave a gap: the two quarters do not cover the corners.
	q1 := box(s, 0, 5, 0, 5)
	q2 := box(s, 5, 10, 5, 10)
	w, ok := sv.Witness([]*predicate.P{a}, []*predicate.P{q1, q2})
	if !ok {
		t.Fatal("corners uncovered, expected sat")
	}
	if !a.Eval(w) || q1.Eval(w) || q2.Eval(w) {
		t.Errorf("bad witness %v", w)
	}
}

func TestSatGapBetweenNegatives(t *testing.T) {
	s := schema2D()
	sv := New(s)
	a := box(s, 0, 100, 0, 100)
	// Cover all but a thin vertical strip x in (40, 60).
	left := box(s, 0, 40, 0, 100)
	right := box(s, 60, 100, 0, 100)
	w, ok := sv.Witness([]*predicate.P{a}, []*predicate.P{left, right})
	if !ok {
		t.Fatal("strip uncovered, expected sat")
	}
	if w[0] <= 40 || w[0] >= 60 {
		t.Errorf("witness x = %v, want in (40, 60)", w[0])
	}
}

func TestSatIntegralLattice(t *testing.T) {
	s := domain.NewSchema(
		domain.Attr{Name: "k", Kind: domain.Integral, Domain: domain.NewInterval(0, 10)},
	)
	sv := New(s)
	a := predicate.NewBuilder(s).Range("k", 0, 10).Build()
	// Negatives cover the integers 0..10 but leave real gaps like (2.2, 2.8):
	// over the integer lattice this must be UNSAT.
	n1 := predicate.NewBuilder(s).Range("k", 0, 2.2).Build()  // covers 0,1,2
	n2 := predicate.NewBuilder(s).Range("k", 2.8, 10).Build() // covers 3..10
	if sv.Sat([]*predicate.P{a}, []*predicate.P{n1, n2}) {
		t.Error("no integer in the gap (2.2, 2.8): should be unsat")
	}
	// Widen the gap to include 3.
	n3 := predicate.NewBuilder(s).Range("k", 3.5, 10).Build()
	w, ok := sv.Witness([]*predicate.P{a}, []*predicate.P{n1, n3})
	if !ok {
		t.Fatal("integer 3 is uncovered, expected sat")
	}
	if w[0] != 3 {
		t.Errorf("witness = %v, want 3", w[0])
	}
}

func TestSatContinuousBoundary(t *testing.T) {
	s := domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Continuous, Domain: domain.NewInterval(0, 1)},
	)
	sv := New(s)
	a := predicate.NewBuilder(s).Range("x", 0, 1).Build()
	// [0, 0.5] and [0.5, 1] cover [0,1] with touching closed endpoints.
	n1 := predicate.NewBuilder(s).Range("x", 0, 0.5).Build()
	n2 := predicate.NewBuilder(s).Range("x", 0.5, 1).Build()
	if sv.Sat([]*predicate.P{a}, []*predicate.P{n1, n2}) {
		t.Error("touching closed covers leave no gap: should be unsat")
	}
}

func TestStatsCounting(t *testing.T) {
	s := schema2D()
	sv := New(s)
	if st := sv.Stats(); st.Checks != 0 || st.Nodes != 0 {
		t.Fatalf("fresh solver stats = %+v", st)
	}
	sv.Sat([]*predicate.P{box(s, 0, 10, 0, 10)}, nil)
	sv.Sat([]*predicate.P{box(s, 0, 10, 0, 10)}, []*predicate.P{box(s, 0, 5, 0, 10)})
	st := sv.Stats()
	if st.Checks != 2 {
		t.Errorf("Checks = %d, want 2", st.Checks)
	}
	if st.Nodes < 2 {
		t.Errorf("Nodes = %d, want >= 2", st.Nodes)
	}
	sv.ResetStats()
	if st := sv.Stats(); st.Checks != 0 || st.Nodes != 0 {
		t.Errorf("after reset stats = %+v", st)
	}
}

// TestSatAgainstBruteForce cross-validates the solver on random instances
// against exhaustive lattice enumeration over a small integral grid.
func TestSatAgainstBruteForce(t *testing.T) {
	s := domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Integral, Domain: domain.NewInterval(0, 7)},
		domain.Attr{Name: "y", Kind: domain.Integral, Domain: domain.NewInterval(0, 7)},
	)
	sv := New(s)
	rng := rand.New(rand.NewSource(7))
	randBox := func() *predicate.P {
		x1, x2 := rng.Intn(8), rng.Intn(8)
		y1, y2 := rng.Intn(8), rng.Intn(8)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		return predicate.NewBuilder(s).
			Range("x", float64(x1), float64(x2)).
			Range("y", float64(y1), float64(y2)).Build()
	}
	for trial := 0; trial < 500; trial++ {
		npos := 1 + rng.Intn(2)
		nneg := rng.Intn(4)
		var pos, neg []*predicate.P
		for i := 0; i < npos; i++ {
			pos = append(pos, randBox())
		}
		for i := 0; i < nneg; i++ {
			neg = append(neg, randBox())
		}
		want := false
	brute:
		for x := 0; x <= 7; x++ {
			for y := 0; y <= 7; y++ {
				r := domain.Row{float64(x), float64(y)}
				ok := true
				for _, p := range pos {
					if !p.Eval(r) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				for _, n := range neg {
					if n.Eval(r) {
						ok = false
						break
					}
				}
				if ok {
					want = true
					break brute
				}
			}
		}
		got := sv.Sat(pos, neg)
		if got != want {
			t.Fatalf("trial %d: Sat = %v, brute force = %v\npos=%v\nneg=%v", trial, got, want, pos, neg)
		}
		if got {
			w, ok := sv.Witness(pos, neg)
			if !ok {
				t.Fatalf("trial %d: Sat true but no witness", trial)
			}
			for _, p := range pos {
				if !p.Eval(w) {
					t.Fatalf("trial %d: witness %v violates positive %v", trial, w, p)
				}
			}
			for _, n := range neg {
				if n.Eval(w) {
					t.Fatalf("trial %d: witness %v inside negative %v", trial, w, n)
				}
			}
			// Integral schema: witness coordinates must be integers.
			for d, v := range w {
				if v != float64(int(v)) {
					t.Fatalf("trial %d: witness dim %d = %v not integral", trial, d, v)
				}
			}
		}
	}
}

func TestSatManyNegativesPerformanceShape(t *testing.T) {
	// A sanity check that the solver handles a realistic DFS workload:
	// 1 positive box and 20 negatives.
	s := schema2D()
	sv := New(s)
	rng := rand.New(rand.NewSource(11))
	pos := []*predicate.P{box(s, 0, 100, 0, 100)}
	var neg []*predicate.P
	for i := 0; i < 20; i++ {
		xl := rng.Float64() * 80
		yl := rng.Float64() * 80
		neg = append(neg, box(s, xl, xl+30, yl, yl+30))
	}
	// Random 30x30 boxes cannot cover the 100x100 square's corners reliably;
	// whatever the answer, the call must terminate quickly and agree with a
	// Monte-Carlo check when sat.
	got := sv.Sat(pos, neg)
	if got {
		w, _ := sv.Witness(pos, neg)
		for _, n := range neg {
			if n.Eval(w) {
				t.Fatalf("witness %v covered by %v", w, n)
			}
		}
	}
}

func BenchmarkSat20Negatives(b *testing.B) {
	s := schema2D()
	sv := New(s)
	rng := rand.New(rand.NewSource(3))
	pos := []*predicate.P{box(s, 0, 100, 0, 100)}
	var neg []*predicate.P
	for i := 0; i < 20; i++ {
		xl := rng.Float64() * 70
		yl := rng.Float64() * 70
		neg = append(neg, box(s, xl, xl+40, yl, yl+40))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv.Sat(pos, neg)
	}
}
