package sat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pcbound/internal/domain"
)

// randomSchema builds a mixed continuous/integral schema of the given width.
func randomSchema(dims int, rng *rand.Rand) *domain.Schema {
	attrs := make([]domain.Attr, dims)
	for d := range attrs {
		kind := domain.Continuous
		if rng.Intn(2) == 0 {
			kind = domain.Integral
		}
		attrs[d] = domain.Attr{
			Name:   fmt.Sprintf("a%d", d),
			Kind:   kind,
			Domain: domain.NewInterval(0, 100),
		}
	}
	return domain.NewSchema(attrs...)
}

// randomBox draws a box inside the schema domain; small boxes and
// boundary-touching boxes are both likely.
func randomBox(dims int, rng *rand.Rand) domain.Box {
	b := make(domain.Box, dims)
	for d := range b {
		lo := rng.Float64() * 90
		w := rng.Float64() * 40
		if rng.Intn(4) == 0 {
			lo = math.Floor(lo) // integer-aligned edges hit lattice boundaries
			w = math.Floor(w)
		}
		b[d] = domain.NewInterval(lo, lo+w)
	}
	return b
}

func boxesEqual(a, b []domain.Box) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				return false
			}
		}
	}
	return true
}

// TestSearchMatchesReference differentially fuzzes the iterative arena engine
// against the recursive reference: satisfiability verdicts, witness rows and
// remainder decompositions (boxes and their order) must be bit-identical.
// Negation sets straddle negIndexMin so both the plain and the
// sorted-index-accelerated candidate filters are exercised.
func TestSearchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		dims := 1 + rng.Intn(4)
		schema := randomSchema(dims, rng)
		opt := New(schema)
		ref := New(schema)
		ref.UseReference(true)

		nNeg := rng.Intn(2 * negIndexMin)
		b := randomBox(dims, rng)
		neg := make([]domain.Box, nNeg)
		for i := range neg {
			neg[i] = randomBox(dims, rng)
		}

		gotW, gotOK := opt.uncovered(b, neg)
		wantW, wantOK := ref.uncoveredRec(b, neg)
		if gotOK != wantOK {
			t.Fatalf("trial %d: sat verdict %v != reference %v", trial, gotOK, wantOK)
		}
		if gotOK {
			for d := range gotW {
				if gotW[d] != wantW[d] {
					t.Fatalf("trial %d: witness %v != reference %v", trial, gotW, wantW)
				}
			}
		}

		gotR := opt.RemainderBoxes(b, neg)
		var wantR []domain.Box
		ref.remainderRec(b.Clone(), neg, &wantR)
		if !boxesEqual(gotR, wantR) {
			t.Fatalf("trial %d: remainder mismatch\n got %v\nwant %v", trial, gotR, wantR)
		}
	}
}

// TestSearchMatchesReferenceDenseOverlap stresses deep subtraction stacks:
// many mutually overlapping negations over a shared region, with enough boxes
// to force the per-dimension sorted index on.
func TestSearchMatchesReferenceDenseOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		dims := 2 + rng.Intn(2)
		schema := randomSchema(dims, rng)
		opt := New(schema)
		ref := New(schema)
		ref.UseReference(true)

		b := schema.FullBox()
		neg := make([]domain.Box, negIndexMin+16)
		for i := range neg {
			neg[i] = make(domain.Box, dims)
			for d := range neg[i] {
				lo := rng.Float64() * 60
				neg[i][d] = domain.NewInterval(lo, lo+20+rng.Float64()*30)
			}
		}

		if got, want := opt.SatBoxes(b, neg), ref.SatBoxes(b, neg); got != want {
			t.Fatalf("trial %d: verdict %v != %v", trial, got, want)
		}
		gotR := opt.RemainderBoxes(b, neg)
		wantR := ref.RemainderBoxes(b, neg)
		if !boxesEqual(gotR, wantR) {
			t.Fatalf("trial %d: remainder mismatch (%d vs %d boxes)", trial, len(gotR), len(wantR))
		}
	}
}

// TestScratchReuse runs many queries through one solver to confirm pooled
// scratch state does not leak between calls.
func TestScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	schema := randomSchema(3, rng)
	opt := New(schema)
	ref := New(schema)
	ref.UseReference(true)
	for q := 0; q < 200; q++ {
		b := randomBox(3, rng)
		neg := make([]domain.Box, rng.Intn(40))
		for i := range neg {
			neg[i] = randomBox(3, rng)
		}
		if got, want := opt.SatBoxes(b, neg), ref.SatBoxes(b, neg); got != want {
			t.Fatalf("query %d: verdict diverged after reuse", q)
		}
	}
}

// TestSearchAllocFree verifies the steady-state satisfiability check performs
// no per-node heap allocation.
func TestSearchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse")
	}
	rng := rand.New(rand.NewSource(9))
	schema := randomSchema(3, rng)
	s := New(schema)
	b := schema.FullBox()
	neg := make([]domain.Box, 12)
	for i := range neg {
		neg[i] = randomBox(3, rng)
	}
	s.SatBoxes(b, neg) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		s.SatBoxes(b, neg)
	})
	// Only the witness row (when satisfiable) may allocate; the reference
	// allocates per search node (hundreds on this workload).
	if allocs > 2 {
		t.Errorf("SatBoxes allocates %.1f objects per call, want <= 2", allocs)
	}
}

func TestCloneKeepsReferenceMode(t *testing.T) {
	s := New(randomSchema(2, rand.New(rand.NewSource(1))))
	s.UseReference(true)
	if c := s.Clone(); !c.reference {
		t.Error("Clone dropped reference mode")
	}
}
