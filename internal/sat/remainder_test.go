package sat

import (
	"math/rand"
	"testing"

	"pcbound/internal/domain"
)

func TestRemainderBoxesFullCover(t *testing.T) {
	s := schema2D()
	sv := New(s)
	b := domain.Box{domain.NewInterval(0, 10), domain.NewInterval(0, 10)}
	cover := domain.Box{domain.NewInterval(0, 10), domain.NewInterval(0, 10)}
	if got := sv.RemainderBoxes(b, []domain.Box{cover}); len(got) != 0 {
		t.Errorf("fully covered: got %d remainder boxes", len(got))
	}
}

func TestRemainderBoxesNoNegatives(t *testing.T) {
	s := schema2D()
	sv := New(s)
	b := domain.Box{domain.NewInterval(0, 10), domain.NewInterval(0, 10)}
	got := sv.RemainderBoxes(b, nil)
	if len(got) != 1 || !boxEq(got[0], b) {
		t.Errorf("no negatives: got %v", got)
	}
}

func TestRemainderBoxesDisjointAndExact(t *testing.T) {
	// Integral grid lets us verify point-exactness by enumeration.
	s := domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Integral, Domain: domain.NewInterval(0, 9)},
		domain.Attr{Name: "y", Kind: domain.Integral, Domain: domain.NewInterval(0, 9)},
	)
	sv := New(s)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		b := randIntBox(rng)
		var neg []domain.Box
		for i := 0; i < rng.Intn(4); i++ {
			neg = append(neg, randIntBox(rng))
		}
		rem := sv.RemainderBoxes(b, neg)
		// Disjointness.
		for i := 0; i < len(rem); i++ {
			for j := i + 1; j < len(rem); j++ {
				if !rem[i].Intersect(rem[j]).EmptyFor(s) {
					t.Fatalf("trial %d: remainder boxes %v and %v overlap", trial, rem[i], rem[j])
				}
			}
		}
		// Point-exactness.
		for x := 0.0; x <= 9; x++ {
			for y := 0.0; y <= 9; y++ {
				r := domain.Row{x, y}
				inRegion := b.Contains(r)
				if inRegion {
					for _, n := range neg {
						if n.Contains(r) {
							inRegion = false
							break
						}
					}
				}
				inRem := false
				for _, rb := range rem {
					if rb.Contains(r) {
						inRem = true
						break
					}
				}
				if inRegion != inRem {
					t.Fatalf("trial %d: point %v region=%v remainder=%v\nb=%v neg=%v rem=%v",
						trial, r, inRegion, inRem, b, neg, rem)
				}
			}
		}
	}
}

func TestProjection(t *testing.T) {
	s := schema2D()
	sv := New(s)
	b := domain.Box{domain.NewInterval(0, 10), domain.NewInterval(0, 10)}
	// Remove the top slab y in [6,10]: projection of y shrinks, x unchanged.
	neg := []domain.Box{{domain.NewInterval(0, 10), domain.NewInterval(6, 10)}}
	ivy, ok := sv.Projection(b, neg, 1)
	if !ok {
		t.Fatal("region non-empty")
	}
	if ivy.Hi >= 6 || ivy.Lo != 0 {
		t.Errorf("y projection = %v, want [0, <6)", ivy)
	}
	ivx, _ := sv.Projection(b, neg, 0)
	if ivx.Lo != 0 || ivx.Hi != 10 {
		t.Errorf("x projection = %v, want [0,10]", ivx)
	}
	// Fully covered region.
	if _, ok := sv.Projection(b, []domain.Box{b}, 0); ok {
		t.Error("projection of empty region should report not-ok")
	}
}

func boxEq(a, b domain.Box) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randIntBox(rng *rand.Rand) domain.Box {
	mk := func() domain.Interval {
		a, b := rng.Intn(10), rng.Intn(10)
		if a > b {
			a, b = b, a
		}
		return domain.NewInterval(float64(a), float64(b))
	}
	return domain.Box{mk(), mk()}
}
