// Package sat decides satisfiability of cell expressions arising in
// predicate-constraint cell decomposition. It replaces the Z3 SMT solver the
// paper uses (Section 4.1).
//
// The paper restricts predicates to conjunctions of ranges and inequalities
// (Section 3.1), so every predicate is an axis-aligned box and every cell
// expression has the form
//
//	B ∧ ¬N₁ ∧ … ∧ ¬Nₖ
//
// where B is the intersection of the non-negated predicates and the Nᵢ are
// negated predicate boxes. Such an expression is satisfiable iff the region
// B \ (N₁ ∪ … ∪ Nₖ) contains a point of the schema lattice (continuous
// attributes: any real; integral attributes: an integer). The solver decides
// this exactly by box subtraction: it carves B against each overlapping Nᵢ
// into at most 2·dims disjoint remainder boxes and continues into each,
// exiting early on the first witness point found. This is a complete
// decision procedure for the fragment; unlike a generic SMT encoding it is
// allocation-free on the hot path (see arena.go) and typically runs in
// microseconds.
package sat

import (
	"math"
	"sync"
	"sync/atomic"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// Stats counts solver work, mirroring the "number of evaluated cells"
// metric of the paper's Figure 7.
type Stats struct {
	// Checks is the number of top-level satisfiability queries.
	Checks int64
	// Nodes is the number of box-subtraction search nodes visited.
	Nodes int64
}

// Solver decides satisfiability of conjunction/negation cell expressions
// over a fixed schema. Solvers are safe for concurrent use.
type Solver struct {
	schema *domain.Schema
	// kinds caches the per-dimension attribute kinds so lattice-aware
	// emptiness/overlap tests skip the Attr struct copy on every probe.
	kinds       []domain.Kind
	reference   bool
	checks      atomic.Int64
	nodes       atomic.Int64
	scratchPool sync.Pool // of *scratch
}

// New returns a solver for the schema.
func New(s *domain.Schema) *Solver {
	kinds := make([]domain.Kind, s.Len())
	for i := range kinds {
		kinds[i] = s.Attr(i).Kind
	}
	return &Solver{schema: s, kinds: kinds}
}

// UseReference switches the solver to the recursive reference implementation
// (the pre-optimization search in reference.go). It exists for differential
// testing and for benchmarking the optimized engine against its baseline;
// results are bit-identical either way. Must be called before the solver is
// shared across goroutines.
func (s *Solver) UseReference(on bool) { s.reference = on }

// Clone returns a fresh solver over the same schema with zeroed counters.
// Batch engines hand each worker its own clone so per-worker statistics stay
// attributable, then fold them back with AddStats.
func (s *Solver) Clone() *Solver {
	c := New(s.schema)
	c.reference = s.reference
	return c
}

// AddStats folds another solver's counters into this one.
func (s *Solver) AddStats(st Stats) {
	s.checks.Add(st.Checks)
	s.nodes.Add(st.Nodes)
}

// Schema returns the solver's schema.
func (s *Solver) Schema() *domain.Schema { return s.schema }

// Stats returns a snapshot of the solver's counters.
func (s *Solver) Stats() Stats {
	return Stats{Checks: s.checks.Load(), Nodes: s.nodes.Load()}
}

// ResetStats zeroes the counters.
func (s *Solver) ResetStats() {
	s.checks.Store(0)
	s.nodes.Store(0)
}

// Sat reports whether the conjunction of the pos predicates and the
// negations of the neg predicates is satisfiable over the schema lattice.
func (s *Solver) Sat(pos, neg []*predicate.P) bool {
	_, ok := s.Witness(pos, neg)
	return ok
}

// Witness returns a row satisfying all pos predicates and none of the neg
// predicates, and whether one exists.
func (s *Solver) Witness(pos, neg []*predicate.P) (domain.Row, bool) {
	s.checks.Add(1)
	b := s.schema.FullBox()
	for _, p := range pos {
		b = b.Intersect(p.Box())
	}
	boxes := make([]domain.Box, 0, len(neg))
	for _, n := range neg {
		boxes = append(boxes, n.Box())
	}
	return s.uncovered(b, boxes)
}

// SatBoxes is Sat over raw boxes.
func (s *Solver) SatBoxes(b domain.Box, neg []domain.Box) bool {
	s.checks.Add(1)
	_, ok := s.uncovered(b, neg)
	return ok
}

// uncovered searches for a lattice point of b outside every box in neg.
func (s *Solver) uncovered(b domain.Box, neg []domain.Box) (domain.Row, bool) {
	if s.reference {
		return s.uncoveredRec(b, neg)
	}
	sc := s.getScratch()
	sc.mode = modeWitness
	found := s.search(sc, b, neg)
	w := sc.witness
	sc.witness = nil
	s.nodes.Add(sc.nodes)
	s.putScratch(sc)
	return w, found
}

// pred returns the largest lattice value strictly below v.
func pred(v float64, k domain.Kind) float64 {
	if k == domain.Integral {
		return math.Ceil(v) - 1
	}
	return math.Nextafter(v, math.Inf(-1))
}

// succ returns the smallest lattice value strictly above v.
func succ(v float64, k domain.Kind) float64 {
	if k == domain.Integral {
		return math.Floor(v) + 1
	}
	return math.Nextafter(v, math.Inf(1))
}
