// Package sat decides satisfiability of cell expressions arising in
// predicate-constraint cell decomposition. It replaces the Z3 SMT solver the
// paper uses (Section 4.1).
//
// The paper restricts predicates to conjunctions of ranges and inequalities
// (Section 3.1), so every predicate is an axis-aligned box and every cell
// expression has the form
//
//	B ∧ ¬N₁ ∧ … ∧ ¬Nₖ
//
// where B is the intersection of the non-negated predicates and the Nᵢ are
// negated predicate boxes. Such an expression is satisfiable iff the region
// B \ (N₁ ∪ … ∪ Nₖ) contains a point of the schema lattice (continuous
// attributes: any real; integral attributes: an integer). The solver decides
// this exactly by recursive box subtraction: it carves B against each
// overlapping Nᵢ into at most 2·dims disjoint remainder boxes and recurses,
// exiting early on the first witness point found. This is a complete
// decision procedure for the fragment, unlike a generic SMT encoding it is
// allocation-light and typically runs in microseconds.
package sat

import (
	"math"
	"sync/atomic"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// Stats counts solver work, mirroring the "number of evaluated cells"
// metric of the paper's Figure 7.
type Stats struct {
	// Checks is the number of top-level satisfiability queries.
	Checks int64
	// Nodes is the number of box-subtraction recursion nodes visited.
	Nodes int64
}

// Solver decides satisfiability of conjunction/negation cell expressions
// over a fixed schema. Solvers are safe for concurrent use.
type Solver struct {
	schema *domain.Schema
	checks atomic.Int64
	nodes  atomic.Int64
}

// New returns a solver for the schema.
func New(s *domain.Schema) *Solver { return &Solver{schema: s} }

// Clone returns a fresh solver over the same schema with zeroed counters.
// Batch engines hand each worker its own clone so per-worker statistics stay
// attributable, then fold them back with AddStats.
func (s *Solver) Clone() *Solver { return New(s.schema) }

// AddStats folds another solver's counters into this one.
func (s *Solver) AddStats(st Stats) {
	s.checks.Add(st.Checks)
	s.nodes.Add(st.Nodes)
}

// Schema returns the solver's schema.
func (s *Solver) Schema() *domain.Schema { return s.schema }

// Stats returns a snapshot of the solver's counters.
func (s *Solver) Stats() Stats {
	return Stats{Checks: s.checks.Load(), Nodes: s.nodes.Load()}
}

// ResetStats zeroes the counters.
func (s *Solver) ResetStats() {
	s.checks.Store(0)
	s.nodes.Store(0)
}

// Sat reports whether the conjunction of the pos predicates and the
// negations of the neg predicates is satisfiable over the schema lattice.
func (s *Solver) Sat(pos, neg []*predicate.P) bool {
	_, ok := s.Witness(pos, neg)
	return ok
}

// Witness returns a row satisfying all pos predicates and none of the neg
// predicates, and whether one exists.
func (s *Solver) Witness(pos, neg []*predicate.P) (domain.Row, bool) {
	s.checks.Add(1)
	b := s.schema.FullBox()
	for _, p := range pos {
		b = b.Intersect(p.Box())
	}
	boxes := make([]domain.Box, 0, len(neg))
	for _, n := range neg {
		boxes = append(boxes, n.Box())
	}
	return s.uncovered(b, boxes)
}

// SatBoxes is Sat over raw boxes.
func (s *Solver) SatBoxes(b domain.Box, neg []domain.Box) bool {
	s.checks.Add(1)
	_, ok := s.uncovered(b, neg)
	return ok
}

// uncovered searches for a lattice point of b outside every box in neg.
func (s *Solver) uncovered(b domain.Box, neg []domain.Box) (domain.Row, bool) {
	s.nodes.Add(1)
	if b.EmptyFor(s.schema) {
		return nil, false
	}
	for i, n := range neg {
		inter := b.Intersect(n)
		if inter.EmptyFor(s.schema) {
			continue
		}
		if n.ContainsBox(b) {
			return nil, false
		}
		// Subtract n from b. Sweep the dimensions; at each dimension peel off
		// the parts of the current box lying strictly below / above n's
		// interval, recursing into each remainder. What is left after the
		// sweep is contained in n and therefore covered.
		//
		// Negative boxes with index < i do not overlap b (checked above), so
		// remainders only need to be tested against neg[i+1:].
		rest := neg[i+1:]
		cur := b.Clone()
		for d := range cur {
			kind := s.schema.Attr(d).Kind
			if cur[d].Lo < n[d].Lo {
				piece := cur.Clone()
				piece[d] = domain.Interval{Lo: cur[d].Lo, Hi: pred(n[d].Lo, kind)}
				if w, ok := s.uncovered(piece, rest); ok {
					return w, true
				}
				cur[d].Lo = n[d].Lo
			}
			if cur[d].Hi > n[d].Hi {
				piece := cur.Clone()
				piece[d] = domain.Interval{Lo: succ(n[d].Hi, kind), Hi: cur[d].Hi}
				if w, ok := s.uncovered(piece, rest); ok {
					return w, true
				}
				cur[d].Hi = n[d].Hi
			}
		}
		return nil, false
	}
	// No negative box overlaps b: any representative point is a witness.
	return b.Representative(s.schema), true
}

// pred returns the largest lattice value strictly below v.
func pred(v float64, k domain.Kind) float64 {
	if k == domain.Integral {
		return math.Ceil(v) - 1
	}
	return math.Nextafter(v, math.Inf(-1))
}

// succ returns the smallest lattice value strictly above v.
func succ(v float64, k domain.Kind) float64 {
	if k == domain.Integral {
		return math.Floor(v) + 1
	}
	return math.Nextafter(v, math.Inf(1))
}
