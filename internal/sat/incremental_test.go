package sat

import (
	"math/rand"
	"testing"

	"pcbound/internal/domain"
)

func incSchema() *domain.Schema {
	return domain.NewSchema(
		domain.Attr{Name: "utc", Kind: domain.Integral, Domain: domain.NewInterval(0, 20)},
		domain.Attr{Name: "price", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
	)
}

// randBox draws a random sub-box of the schema domain.
func randBox(rng *rand.Rand, s *domain.Schema) domain.Box {
	b := s.FullBox()
	for d := range b {
		lo := b[d].Lo + rng.Float64()*b[d].Width()
		hi := lo + rng.Float64()*(b[d].Hi-lo)
		if s.Attr(d).Kind == domain.Integral {
			lo = float64(int(lo))
			hi = float64(int(hi))
		}
		b[d] = domain.NewInterval(lo, hi)
	}
	return b
}

// checkInvariants asserts the tracker's remainder is disjoint from every
// registered box, agrees with the solver on coverage, and that sampled
// lattice points are classified consistently (covered by a box iff not in
// the remainder).
func checkInvariants(t *testing.T, inc *Incremental, solver *Solver, base domain.Box, boxes map[uint64]domain.Box, rng *rand.Rand) {
	t.Helper()
	schema := solver.Schema()
	all := make([]domain.Box, 0, len(boxes))
	for _, b := range boxes {
		all = append(all, b)
	}
	wantUncovered := solver.SatBoxes(base, all)
	if got := !inc.Covered(); got != wantUncovered {
		t.Fatalf("coverage diverged: incremental uncovered=%v, reference=%v (boxes=%d, rem=%d)",
			got, wantUncovered, len(boxes), inc.RemainderCount())
	}
	if w, ok := inc.Witness(); ok {
		if !base.Contains(w) {
			t.Fatalf("witness %v outside base %v", w, base)
		}
		for id, b := range boxes {
			if b.Contains(w) {
				t.Fatalf("witness %v inside registered box %d %v", w, id, b)
			}
		}
	} else if wantUncovered {
		t.Fatal("reference says uncovered but tracker has no witness")
	}
	// Remainder boxes must not overlap any registered box on the lattice.
	for _, r := range inc.rem {
		for id, b := range boxes {
			if !r.Intersect(b).EmptyFor(schema) {
				t.Fatalf("remainder box %v overlaps registered box %d %v", r, id, b)
			}
		}
	}
	// Sampled lattice points: in remainder ⟺ outside all boxes.
	for i := 0; i < 32; i++ {
		p := make(domain.Row, schema.Len())
		for d := 0; d < schema.Len(); d++ {
			iv := base[d]
			v := iv.Lo + rng.Float64()*iv.Width()
			if schema.Attr(d).Kind == domain.Integral {
				v = float64(int(v))
			}
			p[d] = v
		}
		if !base.Contains(p) {
			continue
		}
		inBox := false
		for _, b := range boxes {
			if b.Contains(p) {
				inBox = true
				break
			}
		}
		inRem := false
		for _, r := range inc.rem {
			if r.Contains(p) {
				inRem = true
				break
			}
		}
		if inBox == inRem {
			t.Fatalf("point %v: inBox=%v inRem=%v (must be complementary)", p, inBox, inRem)
		}
	}
}

// TestIncrementalDifferential drives a random add/remove/replace stream
// through the delta path and cross-checks every step against (a) the
// solver's from-scratch coverage answer and (b) a second tracker running in
// rebuild mode (the reference path).
func TestIncrementalDifferential(t *testing.T) {
	schema := incSchema()
	solver := New(schema)
	base := schema.FullBox()
	rng := rand.New(rand.NewSource(42))

	delta := NewIncremental(solver, base)
	ref := NewIncremental(solver, base)
	ref.SetRebuildMode(true)

	boxes := make(map[uint64]domain.Box)
	var ids []uint64
	nextID := uint64(0)

	for step := 0; step < 200; step++ {
		op := rng.Intn(3)
		switch {
		case op == 0 || len(ids) == 0: // add
			nextID++
			b := randBox(rng, schema)
			boxes[nextID] = b
			ids = append(ids, nextID)
			delta.Add(nextID, b)
			ref.Add(nextID, b)
		case op == 1: // remove
			i := rng.Intn(len(ids))
			id := ids[i]
			ids = append(ids[:i], ids[i+1:]...)
			delete(boxes, id)
			if !delta.Remove(id) || !ref.Remove(id) {
				t.Fatalf("step %d: Remove(%d) reported absent", step, id)
			}
		default: // replace
			id := ids[rng.Intn(len(ids))]
			b := randBox(rng, schema)
			boxes[id] = b
			if !delta.Replace(id, b) || !ref.Replace(id, b) {
				t.Fatalf("step %d: Replace(%d) reported absent", step, id)
			}
		}
		if delta.Covered() != ref.Covered() {
			t.Fatalf("step %d: delta covered=%v, rebuild-mode covered=%v",
				step, delta.Covered(), ref.Covered())
		}
		if step%10 == 0 {
			checkInvariants(t, delta, solver, base, boxes, rng)
		}
	}
	if delta.Deltas == 0 {
		t.Error("delta tracker applied no deltas (everything rebuilt?)")
	}
	if ref.Rebuilds == 0 {
		t.Error("rebuild-mode tracker performed no rebuilds")
	}
}

// TestIncrementalCoverageTransitions walks a deterministic scenario through
// full coverage and back: covering the domain box by box, then retracting
// one and re-tightening it.
func TestIncrementalCoverageTransitions(t *testing.T) {
	schema := incSchema()
	solver := New(schema)
	inc := NewIncremental(solver, schema.FullBox())

	if inc.Covered() {
		t.Fatal("empty tracker reports covered")
	}
	half := schema.FullBox()
	half[0] = domain.NewInterval(0, 10)
	inc.Add(1, half)
	if inc.Covered() {
		t.Fatal("half-covered domain reports covered")
	}
	w, ok := inc.Witness()
	if !ok || half.Contains(w) {
		t.Fatalf("witness %v (ok=%v) should be outside the first half", w, ok)
	}
	rest := schema.FullBox()
	rest[0] = domain.NewInterval(10, 20)
	inc.Add(2, rest)
	if !inc.Covered() {
		t.Fatal("fully covered domain reports uncovered")
	}
	if _, ok := inc.Witness(); ok {
		t.Fatal("covered tracker returned a witness")
	}
	// Retract the second half: uncovered again.
	if !inc.Remove(2) {
		t.Fatal("Remove(2) reported absent")
	}
	if inc.Covered() {
		t.Fatal("covered after retraction")
	}
	// Replace the first half with the whole domain: covered via one box.
	if !inc.Replace(1, schema.FullBox()) {
		t.Fatal("Replace(1) reported absent")
	}
	if !inc.Covered() {
		t.Fatal("whole-domain box does not cover")
	}
	if inc.Remove(99) {
		t.Fatal("Remove of unknown id reported present")
	}
}

// TestIncrementalSubBaseRegion pins the rem = base \ ∪boxes invariant when
// base is a strict sub-box of the domain and registered boxes extend beyond
// it: removing such a box must only return the part inside base to the
// remainder.
func TestIncrementalSubBaseRegion(t *testing.T) {
	schema := incSchema()
	solver := New(schema)
	base := schema.FullBox()
	base[0] = domain.NewInterval(5, 10) // strict sub-box of utc's [0, 20]
	inc := NewIncremental(solver, base)

	inc.Add(1, base.Clone()) // covers the whole base exactly
	if !inc.Covered() {
		t.Fatal("base-sized box does not cover base")
	}
	// A box far outside base, and one straddling its boundary.
	outside := schema.FullBox()
	outside[0] = domain.NewInterval(15, 20)
	inc.Add(2, outside)
	straddle := schema.FullBox()
	straddle[0] = domain.NewInterval(8, 18)
	inc.Add(3, straddle)
	if !inc.Covered() {
		t.Fatal("extra boxes cannot uncover a covered base")
	}
	// Removing them frees nothing inside base: box 1 still covers it all.
	inc.Remove(2)
	if !inc.Covered() {
		t.Fatalf("removing a box outside base uncovered it (rem=%d)", inc.RemainderCount())
	}
	inc.Remove(3)
	if !inc.Covered() {
		t.Fatalf("removing a straddling box uncovered a still-covered base (rem=%d)", inc.RemainderCount())
	}
	// And once the covering box goes, the remainder is exactly base again,
	// never anything outside it.
	inc.Remove(1)
	if inc.Covered() {
		t.Fatal("empty tracker reports covered")
	}
	w, ok := inc.Witness()
	if !ok || !base.Contains(w) {
		t.Fatalf("witness %v (ok=%v) outside base %v", w, ok, base)
	}
}

// TestIncrementalAddOnlyCompaction checks that a pure Add stream (the
// streaming-audit pattern: constraints only arrive) also triggers
// compaction, rather than fragmenting the remainder without bound.
func TestIncrementalAddOnlyCompaction(t *testing.T) {
	schema := incSchema()
	solver := New(schema)
	inc := NewIncremental(solver, schema.FullBox())
	rng := rand.New(rand.NewSource(11))
	covered := false
	for i := 0; i < 200 && !covered; i++ {
		// Thin stripes maximize carving; never cover the domain entirely.
		b := schema.FullBox()
		lo := float64(rng.Intn(20))
		b[0] = domain.NewInterval(lo, lo)
		b[1] = domain.NewInterval(rng.Float64()*40, 50+rng.Float64()*49)
		inc.Add(uint64(i+1), b)
		covered = inc.Covered()
	}
	if covered {
		t.Fatal("stripe stream unexpectedly covered the domain")
	}
	if inc.Rebuilds == 0 && inc.RemainderCount() > 8*inc.Len()+64 {
		t.Fatalf("add-only stream fragmented to %d boxes (%d registered) without ever compacting",
			inc.RemainderCount(), inc.Len())
	}
}

// TestIncrementalCompaction forces heavy fragmentation and checks the
// tracker compacts without changing its answers.
func TestIncrementalCompaction(t *testing.T) {
	schema := incSchema()
	solver := New(schema)
	inc := NewIncremental(solver, schema.FullBox())
	rng := rand.New(rand.NewSource(7))

	// Add/remove thin stripes repeatedly to fragment the remainder.
	for round := 0; round < 30; round++ {
		id := uint64(round + 1)
		b := schema.FullBox()
		lo := float64(rng.Intn(20))
		b[0] = domain.NewInterval(lo, lo+1)
		b[1] = domain.NewInterval(rng.Float64()*50, 50+rng.Float64()*50)
		inc.Add(id, b)
		if round%2 == 0 {
			inc.Remove(id)
		}
	}
	if inc.Covered() {
		t.Fatal("stripes should not cover the domain")
	}
	if inc.Rebuilds == 0 {
		t.Log("no compaction triggered (acceptable, but fragmentation stayed low)")
	}
	// Answer must match a from-scratch rebuild.
	before := inc.Covered()
	inc.Rebuild()
	if inc.Covered() != before {
		t.Fatal("Rebuild changed the coverage answer")
	}
}
