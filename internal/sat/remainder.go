package sat

import "pcbound/internal/domain"

// RemainderBoxes returns a disjoint box decomposition of b \ (n₁ ∪ … ∪ nₖ),
// restricted to boxes that are non-empty over the schema lattice. The union
// of the returned boxes contains exactly the lattice points of b outside all
// negative boxes.
//
// Cell decomposition uses this to compute exact per-cell projections: the
// tightest value interval an attribute can take inside a cell is the hull of
// the attribute's intervals across the cell's remainder boxes.
func (s *Solver) RemainderBoxes(b domain.Box, neg []domain.Box) []domain.Box {
	s.checks.Add(1)
	var out []domain.Box
	s.remainder(b, neg, &out)
	return out
}

func (s *Solver) remainder(b domain.Box, neg []domain.Box, out *[]domain.Box) {
	s.nodes.Add(1)
	if b.EmptyFor(s.schema) {
		return
	}
	for i, n := range neg {
		inter := b.Intersect(n)
		if inter.EmptyFor(s.schema) {
			continue
		}
		if n.ContainsBox(b) {
			return
		}
		rest := neg[i+1:]
		cur := b.Clone()
		for d := range cur {
			kind := s.schema.Attr(d).Kind
			if cur[d].Lo < n[d].Lo {
				piece := cur.Clone()
				piece[d] = domain.Interval{Lo: cur[d].Lo, Hi: pred(n[d].Lo, kind)}
				s.remainder(piece, rest, out)
				cur[d].Lo = n[d].Lo
			}
			if cur[d].Hi > n[d].Hi {
				piece := cur.Clone()
				piece[d] = domain.Interval{Lo: succ(n[d].Hi, kind), Hi: cur[d].Hi}
				s.remainder(piece, rest, out)
				cur[d].Hi = n[d].Hi
			}
		}
		return
	}
	*out = append(*out, b)
}

// Projection returns the tightest interval attribute dim can take over
// b \ ∪neg, and whether the region is non-empty.
func (s *Solver) Projection(b domain.Box, neg []domain.Box, dim int) (domain.Interval, bool) {
	boxes := s.RemainderBoxes(b, neg)
	if len(boxes) == 0 {
		return domain.Interval{Lo: 1, Hi: 0}, false
	}
	iv := boxes[0][dim]
	for _, rb := range boxes[1:] {
		iv = iv.Hull(rb[dim])
	}
	return iv, true
}
