package sat

import "pcbound/internal/domain"

// RemainderBoxes returns a disjoint box decomposition of b \ (n₁ ∪ … ∪ nₖ),
// restricted to boxes that are non-empty over the schema lattice. The union
// of the returned boxes contains exactly the lattice points of b outside all
// negative boxes.
//
// Cell decomposition uses this to compute exact per-cell projections: the
// tightest value interval an attribute can take inside a cell is the hull of
// the attribute's intervals across the cell's remainder boxes.
func (s *Solver) RemainderBoxes(b domain.Box, neg []domain.Box) []domain.Box {
	s.checks.Add(1)
	var out []domain.Box
	if s.reference {
		s.remainderRec(b, neg, &out)
		return out
	}
	sc := s.getScratch()
	sc.mode = modeCollect
	sc.collected = nil
	s.search(sc, b, neg)
	out = sc.collected
	sc.collected = nil
	s.nodes.Add(sc.nodes)
	s.putScratch(sc)
	return out
}

// Projection returns the tightest interval attribute dim can take over
// b \ ∪neg, and whether the region is non-empty.
func (s *Solver) Projection(b domain.Box, neg []domain.Box, dim int) (domain.Interval, bool) {
	boxes := s.RemainderBoxes(b, neg)
	if len(boxes) == 0 {
		return domain.Interval{Lo: 1, Hi: 0}, false
	}
	iv := boxes[0][dim]
	for _, rb := range boxes[1:] {
		iv = iv.Hull(rb[dim])
	}
	return iv, true
}
