//go:build race

package sat

// raceEnabled reports that the race detector is active; it defeats
// sync.Pool reuse, so allocation-count assertions are skipped.
const raceEnabled = true
