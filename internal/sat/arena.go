package sat

import (
	"math"
	"sort"

	"pcbound/internal/domain"
)

// This file holds the allocation-free box-subtraction engine behind Sat,
// Witness and RemainderBoxes. It replaces the recursive, Clone()-per-piece
// search in reference.go with an explicit-stack DFS over a per-call scratch
// arena: box storage, candidate lists and frames all live in reusable flat
// buffers drawn from a sync.Pool, so a satisfiability check performs no
// per-node heap allocation.
//
// The engine visits regions in exactly the order the recursive reference
// does, so witnesses, remainder decompositions and their box order are
// bit-identical across the two implementations (tested in arena_test.go).
// Two prunings accelerate it without changing that order:
//
//  1. Candidate filtering: each frame keeps only the negated boxes that
//     overlap its region (a subset of the parent's candidates, in the same
//     ascending order). Boxes that cannot overlap a region are never looked
//     at again anywhere below it, replacing the reference's linear scan of
//     the full suffix at every node.
//  2. A per-dimension sorted index over the negated boxes (built once per
//     call for large negation sets): a piece carved at dimension d has a
//     tightened interval there, so a binary search over the boxes sorted by
//     their d-th interval bounds the candidate scan to the boxes that can
//     still reach the piece.

// negIndexMin is the negation-set size from which building the per-dimension
// sorted index pays for itself.
const negIndexMin = 24

// indexGain requires the index prescreen to eliminate at least this fraction
// of the parent's candidates before the indexed path is taken over the plain
// ascending scan.
const indexGain = 4

// frame is one suspended subtraction node: a region being carved against its
// selected negated box, with a cursor over the (dimension, side) pieces still
// to generate.
type frame struct {
	boxOff  int // region storage: sc.boxArena[boxOff : boxOff+dims]
	candOff int // candidate list: sc.candArena[candOff : candOff+candLen]
	candLen int
	d       int  // next dimension to carve
	phase   int8 // 0 = low side of d pending, 1 = high side pending

	// boxMark/candMark are the arena lengths at frame creation; popping the
	// frame truncates the arenas back to them, freeing the region, the
	// candidate list and everything allocated by the frame's children.
	boxMark, candMark int
}

// scratch is the per-call arena. Solvers pool scratches, so steady-state
// satisfiability checks allocate nothing.
type scratch struct {
	frames    []frame
	boxArena  []domain.Interval
	candArena []int32

	// Per-dimension sorted index (only built when len(neg) >= negIndexMin):
	// sortedLo[d] holds neg indices ascending by neg[i][d].Lo, sortedHi[d]
	// ascending by neg[i][d].Hi.
	sortedLo, sortedHi [][]int32
	indexBuilt         bool

	// stamp marks candidate membership during indexed filtering; a generation
	// counter avoids clearing it between uses.
	stamp    []uint32
	stampGen uint32

	collect []int32 // reusable buffer for indexed candidate collection
	nodes   int64   // local node counter, folded into Solver stats once per call

	// Per-call emit state. A mode switch instead of a callback keeps the
	// search loop closure-free (a closure plus its captures would otherwise
	// be heap-allocated on every satisfiability check).
	mode      int8
	witness   domain.Row   // modeWitness: representative of the first region
	collected []domain.Box // modeCollect: cloned uncovered regions
}

const (
	modeWitness int8 = iota // stop at the first uncovered region
	modeCollect             // collect every uncovered region
)

func (s *Solver) getScratch() *scratch {
	if v := s.scratchPool.Get(); v != nil {
		return v.(*scratch)
	}
	return &scratch{}
}

func (s *Solver) putScratch(sc *scratch) {
	sc.frames = sc.frames[:0]
	sc.boxArena = sc.boxArena[:0]
	sc.candArena = sc.candArena[:0]
	sc.indexBuilt = false
	sc.nodes = 0
	s.scratchPool.Put(sc)
}

// overlapsFor reports whether a and b share a lattice point, without
// materializing the intersection.
func overlapsFor(kinds []domain.Kind, a, b domain.Box) bool {
	for d := range a {
		lo, hi := a[d].Lo, a[d].Hi
		if b[d].Lo > lo {
			lo = b[d].Lo
		}
		if b[d].Hi < hi {
			hi = b[d].Hi
		}
		if emptyIntervalFor(lo, hi, kinds[d]) {
			return false
		}
	}
	return true
}

// emptyIntervalFor reports whether [lo, hi] holds no lattice point of kind k.
func emptyIntervalFor(lo, hi float64, k domain.Kind) bool {
	if lo > hi {
		return true
	}
	if k == domain.Integral {
		return math.Ceil(lo) > math.Floor(hi)
	}
	return false
}

// search runs the iterative subtraction DFS over b \ ∪neg, visiting maximal
// uncovered regions in the reference implementation's order. Depending on
// sc.mode it either stops at the first region (recording its representative
// in sc.witness) or clones every region into sc.collected. It reports
// whether the search was stopped early by a witness.
func (s *Solver) search(sc *scratch, b domain.Box, neg []domain.Box) bool {
	dims := len(b)
	kinds := s.kinds
	sc.nodes++
	if boxEmptyFor(kinds, b) {
		return false
	}
	if len(neg) >= negIndexMin {
		sc.buildIndex(neg, dims)
	}

	// Root: copy the region into the arena and filter the full negation set.
	boxMark, candMark := len(sc.boxArena), len(sc.candArena)
	sc.boxArena = append(sc.boxArena, b...)
	for i := range neg {
		if overlapsFor(kinds, b, neg[i]) {
			sc.candArena = append(sc.candArena, int32(i))
		}
	}
	candLen := len(sc.candArena) - candMark
	if candLen == 0 {
		return s.emitRegion(sc, b)
	}
	if neg[sc.candArena[candMark]].ContainsBox(b) {
		sc.boxArena = sc.boxArena[:boxMark]
		sc.candArena = sc.candArena[:candMark]
		return false
	}
	sc.frames = append(sc.frames, frame{
		boxOff: boxMark, candOff: candMark, candLen: candLen,
		boxMark: boxMark, candMark: candMark,
	})

	for len(sc.frames) > 0 {
		top := len(sc.frames) - 1
		f := &sc.frames[top]
		// The selected negated box is always the frame's first candidate:
		// candidates are filtered at creation, so the first is the first
		// overlapping box, exactly as the reference's scan selects it.
		n := neg[sc.candArena[f.candOff]]
		pushed := false
		for f.d < dims {
			d := f.d
			region := sc.boxArena[f.boxOff : f.boxOff+dims]
			var pieceLo, pieceHi float64
			var carved bool
			if f.phase == 0 {
				f.phase = 1
				if region[d].Lo < n[d].Lo {
					pieceLo, pieceHi = region[d].Lo, pred(n[d].Lo, kinds[d])
					region[d].Lo = n[d].Lo
					carved = true
				}
			} else {
				f.phase = 0
				f.d++
				if region[d].Hi > n[d].Hi {
					pieceLo, pieceHi = succ(n[d].Hi, kinds[d]), region[d].Hi
					region[d].Hi = n[d].Hi
					carved = true
				}
			}
			if !carved {
				continue
			}
			stop, child := s.pushPiece(sc, f, neg, d, pieceLo, pieceHi)
			if stop {
				return true
			}
			if child {
				pushed = true
				break
			}
			// Frame storage may have moved if pushPiece grew an arena; the
			// loop re-slices region from the offset, and f stays valid because
			// nothing was pushed.
			f = &sc.frames[top]
		}
		if pushed {
			continue
		}
		// Cursor exhausted: the rest of the region is covered by n. Pop.
		f = &sc.frames[top]
		sc.boxArena = sc.boxArena[:f.boxMark]
		sc.candArena = sc.candArena[:f.candMark]
		sc.frames = sc.frames[:top]
	}
	return false
}

// pushPiece materializes one carved piece (the parent's region with dimension
// d overridden to [lo, hi]), tests it, and either discards it, emits it, or
// pushes it as a new frame. Returns (stop, pushed).
func (s *Solver) pushPiece(sc *scratch, parent *frame, neg []domain.Box, d int, lo, hi float64) (bool, bool) {
	kinds := s.kinds
	dims := len(kinds)
	sc.nodes++
	if emptyIntervalFor(lo, hi, kinds[d]) {
		return false, false
	}
	parentRegion := sc.boxArena[parent.boxOff : parent.boxOff+dims]
	for dd := 0; dd < dims; dd++ {
		if dd == d {
			continue
		}
		if emptyIntervalFor(parentRegion[dd].Lo, parentRegion[dd].Hi, kinds[dd]) {
			return false, false
		}
	}

	// Allocate the piece's region at the arena top.
	boxMark := len(sc.boxArena)
	sc.boxArena = append(sc.boxArena, parentRegion...)
	piece := sc.boxArena[boxMark : boxMark+dims]
	piece[d] = domain.Interval{Lo: lo, Hi: hi}

	// Filter the parent's remaining candidates (everything after the selected
	// box) down to those overlapping the piece, preserving ascending order.
	candMark := len(sc.candArena)
	rest := sc.candArena[parent.candOff+1 : parent.candOff+parent.candLen]
	if !s.filterIndexed(sc, neg, rest, piece, d) {
		for _, ci := range rest {
			if overlapsFor(kinds, piece, neg[ci]) {
				sc.candArena = append(sc.candArena, ci)
			}
		}
	}
	candLen := len(sc.candArena) - candMark

	if candLen == 0 {
		stop := s.emitRegion(sc, piece)
		sc.boxArena = sc.boxArena[:boxMark]
		sc.candArena = sc.candArena[:candMark]
		return stop, false
	}
	if neg[sc.candArena[candMark]].ContainsBox(piece) {
		sc.boxArena = sc.boxArena[:boxMark]
		sc.candArena = sc.candArena[:candMark]
		return false, false
	}
	sc.frames = append(sc.frames, frame{
		boxOff: boxMark, candOff: candMark, candLen: candLen,
		boxMark: boxMark, candMark: candMark,
	})
	return false, true
}

// buildIndex sorts the negated boxes by each dimension's interval bounds.
func (sc *scratch) buildIndex(neg []domain.Box, dims int) {
	if sc.indexBuilt {
		return
	}
	sc.indexBuilt = true
	k := len(neg)
	if cap(sc.sortedLo) < dims {
		sc.sortedLo = make([][]int32, dims)
		sc.sortedHi = make([][]int32, dims)
	}
	sc.sortedLo = sc.sortedLo[:dims]
	sc.sortedHi = sc.sortedHi[:dims]
	if cap(sc.stamp) < k {
		sc.stamp = make([]uint32, k)
		sc.stampGen = 0
	}
	sc.stamp = sc.stamp[:k]
	for d := 0; d < dims; d++ {
		lo, hi := sc.sortedLo[d], sc.sortedHi[d]
		if cap(lo) < k {
			lo = make([]int32, k)
			hi = make([]int32, k)
		}
		lo, hi = lo[:k], hi[:k]
		for i := 0; i < k; i++ {
			lo[i], hi[i] = int32(i), int32(i)
		}
		sortByKey(lo, neg, d, false)
		sortByKey(hi, neg, d, true)
		sc.sortedLo[d], sc.sortedHi[d] = lo, hi
	}
}

// filterIndexed attempts the index-accelerated candidate filter for a piece
// carved at dimension d. It reports whether it handled the filtering (false
// means the caller should fall back to the plain ascending scan). The carved
// dimension's tightened interval bounds which negated boxes can still reach
// the piece: boxes whose d-th interval starts above piece[d].Hi (or ends
// below piece[d].Lo) are eliminated by binary search before any full overlap
// test runs.
func (s *Solver) filterIndexed(sc *scratch, neg []domain.Box, rest []int32, piece domain.Box, d int) bool {
	if !sc.indexBuilt || len(rest) < 16 {
		return false
	}
	loIdx := sc.sortedLo[d]
	hiIdx := sc.sortedHi[d]
	// Eligible by low side: neg[i][d].Lo <= piece[d].Hi (prefix of loIdx).
	pHi := piece[d].Hi
	nLo := sort.Search(len(loIdx), func(j int) bool { return neg[loIdx[j]][d].Lo > pHi })
	// Eligible by high side: neg[i][d].Hi >= piece[d].Lo (suffix of hiIdx).
	pLo := piece[d].Lo
	sHi := sort.Search(len(hiIdx), func(j int) bool { return neg[hiIdx[j]][d].Hi >= pLo })
	nHi := len(hiIdx) - sHi

	var eligible []int32
	if nLo <= nHi {
		eligible = loIdx[:nLo]
	} else {
		eligible = hiIdx[sHi:]
	}
	if len(eligible)*indexGain > len(rest) {
		return false
	}

	// Stamp the rest set, walk the (small) eligible list, then restore
	// ascending order — candidate lists are ascending neg-index lists, which
	// is what keeps the visit order identical to the reference.
	if sc.stampGen == math.MaxUint32 {
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.stampGen = 0
	}
	sc.stampGen++
	gen := sc.stampGen
	for _, ci := range rest {
		sc.stamp[ci] = gen
	}
	sc.collect = sc.collect[:0]
	kinds := s.kinds
	for _, ci := range eligible {
		if sc.stamp[ci] != gen {
			continue
		}
		if overlapsFor(kinds, piece, neg[ci]) {
			sc.collect = append(sc.collect, ci)
		}
	}
	sortInt32(sc.collect)
	sc.candArena = append(sc.candArena, sc.collect...)
	return true
}

// emitRegion handles one maximal uncovered region according to the scratch
// mode; it returns true to stop the search.
func (s *Solver) emitRegion(sc *scratch, r domain.Box) bool {
	if sc.mode == modeWitness {
		sc.witness = r.Representative(s.schema)
		return true
	}
	sc.collected = append(sc.collected, append(domain.Box(nil), r...))
	return false
}

// sortByKey insertion-sorts idx by neg[idx][d].Lo (or .Hi when byHi), ties by
// index. Negation sets are at most a few dozen boxes, where insertion sort
// beats sort.Slice and allocates nothing.
func sortByKey(idx []int32, neg []domain.Box, d int, byHi bool) {
	key := func(i int32) float64 {
		if byHi {
			return neg[i][d].Hi
		}
		return neg[i][d].Lo
	}
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		kv := key(v)
		j := i - 1
		for j >= 0 && (key(idx[j]) > kv || (key(idx[j]) == kv && idx[j] > v)) {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
}

// sortInt32 insertion-sorts a small ascending index list.
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// boxEmptyFor is Box.EmptyFor with the solver's cached kind table.
func boxEmptyFor(kinds []domain.Kind, b domain.Box) bool {
	for d := range b {
		if emptyIntervalFor(b[d].Lo, b[d].Hi, kinds[d]) {
			return true
		}
	}
	return false
}
