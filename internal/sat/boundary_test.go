package sat

import (
	"math"
	"testing"

	"pcbound/internal/domain"
)

// pred/succ define the lattice neighbours used to carve remainder boxes;
// their boundary behaviour decides whether subtraction is exact. These tests
// pin down integral values exactly on interval endpoints, Nextafter at ±Inf,
// and degenerate single-point intervals.

func TestPredSuccIntegral(t *testing.T) {
	cases := []struct {
		v          float64
		pred, succ float64
	}{
		{5, 4, 6},      // exactly on a lattice point
		{5.3, 5, 6},    // interior: floor/ceil neighbours
		{-5, -6, -4},   // negative lattice point
		{-5.7, -6, -5}, // negative interior
		{0, -1, 1},
	}
	for _, c := range cases {
		if got := pred(c.v, domain.Integral); got != c.pred {
			t.Errorf("pred(%v, Integral) = %v, want %v", c.v, got, c.pred)
		}
		if got := succ(c.v, domain.Integral); got != c.succ {
			t.Errorf("succ(%v, Integral) = %v, want %v", c.v, got, c.succ)
		}
	}
}

func TestPredSuccContinuous(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 5.3, 1e300, -1e300, math.SmallestNonzeroFloat64} {
		p, s := pred(v, domain.Continuous), succ(v, domain.Continuous)
		if !(p < v) || math.Nextafter(p, math.Inf(1)) != v {
			t.Errorf("pred(%v) = %v is not the immediate float predecessor", v, p)
		}
		if !(s > v) || math.Nextafter(s, math.Inf(-1)) != v {
			t.Errorf("succ(%v) = %v is not the immediate float successor", v, s)
		}
	}
}

func TestPredSuccAtInfinity(t *testing.T) {
	// Nextafter from +Inf toward -Inf is MaxFloat64; from -Inf toward +Inf is
	// -MaxFloat64. Toward the same infinity it stays infinite. Subtraction
	// against half-infinite negation boxes relies on these identities.
	if got := pred(math.Inf(1), domain.Continuous); got != math.MaxFloat64 {
		t.Errorf("pred(+Inf) = %v, want MaxFloat64", got)
	}
	if got := succ(math.Inf(-1), domain.Continuous); got != -math.MaxFloat64 {
		t.Errorf("succ(-Inf) = %v, want -MaxFloat64", got)
	}
	if got := succ(math.Inf(1), domain.Continuous); !math.IsInf(got, 1) {
		t.Errorf("succ(+Inf) = %v, want +Inf", got)
	}
	if got := pred(math.Inf(-1), domain.Continuous); !math.IsInf(got, -1) {
		t.Errorf("pred(-Inf) = %v, want -Inf", got)
	}
}

// TestSubtractionAtIntegralEndpoints checks witnesses around negation boxes
// whose endpoints land exactly on lattice points: [3,7] minus [4,6] must
// leave exactly {3, 7} for an integral attribute.
func TestSubtractionAtIntegralEndpoints(t *testing.T) {
	schema := domain.NewSchema(domain.Attr{
		Name: "k", Kind: domain.Integral, Domain: domain.NewInterval(3, 7),
	})
	for _, reference := range []bool{false, true} {
		s := New(schema)
		s.UseReference(reference)
		b := schema.FullBox()
		neg := []domain.Box{{domain.NewInterval(4, 6)}}
		boxes := s.RemainderBoxes(b, neg)
		if len(boxes) != 2 {
			t.Fatalf("ref=%v: got %d remainder boxes, want 2 (%v)", reference, len(boxes), boxes)
		}
		if boxes[0][0] != domain.NewInterval(3, 3) || boxes[1][0] != domain.NewInterval(7, 7) {
			t.Errorf("ref=%v: remainder = %v, want [3,3] and [7,7]", reference, boxes)
		}
		// Covering the endpoints too must leave nothing.
		negAll := []domain.Box{
			{domain.NewInterval(4, 6)},
			{domain.NewInterval(2.5, 3.4)}, // covers lattice point 3
			{domain.NewInterval(6.7, 7.2)}, // covers lattice point 7
		}
		if s.SatBoxes(b, negAll) {
			t.Errorf("ref=%v: endpoints covered but still satisfiable", reference)
		}
	}
}

// TestSubtractionSinglePointIntervals covers degenerate [v,v] regions and
// negations: a point minus itself is empty, a point minus a disjoint point
// is a witness, and a continuous interval minus a point stays satisfiable.
func TestSubtractionSinglePointIntervals(t *testing.T) {
	schema := domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Continuous, Domain: domain.NewInterval(0, 10)},
	)
	for _, reference := range []bool{false, true} {
		s := New(schema)
		s.UseReference(reference)
		point := domain.Box{domain.NewInterval(4, 4)}
		if s.SatBoxes(point, []domain.Box{{domain.NewInterval(4, 4)}}) {
			t.Errorf("ref=%v: point minus itself should be unsat", reference)
		}
		w, ok := s.uncovered(point, []domain.Box{{domain.NewInterval(5, 5)}})
		if !ok || w[0] != 4 {
			t.Errorf("ref=%v: point minus disjoint point: got (%v, %v), want (4, true)", reference, w, ok)
		}
		// A continuous interval with one interior point removed keeps
		// uncountably many witnesses on either side of the hole.
		full := domain.Box{domain.NewInterval(0, 10)}
		if !s.SatBoxes(full, []domain.Box{point}) {
			t.Errorf("ref=%v: interval minus interior point should be sat", reference)
		}
		// For an integral attribute the analogous hole removes the only
		// lattice point in a width-<1 region.
		ischema := domain.NewSchema(
			domain.Attr{Name: "k", Kind: domain.Integral, Domain: domain.NewInterval(0, 10)},
		)
		is := New(ischema)
		is.UseReference(reference)
		narrow := domain.Box{domain.NewInterval(3.5, 4.5)}
		if !is.SatBoxes(narrow, nil) {
			t.Fatalf("ref=%v: [3.5,4.5] holds lattice point 4", reference)
		}
		if is.SatBoxes(narrow, []domain.Box{{domain.NewInterval(4, 4)}}) {
			t.Errorf("ref=%v: removing the only lattice point should be unsat", reference)
		}
	}
}
