package table

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

func schema() *domain.Schema {
	return domain.NewSchema(
		domain.Attr{Name: "id", Kind: domain.Integral, Domain: domain.NewInterval(0, 99)},
		domain.Attr{Name: "v", Kind: domain.Continuous, Domain: domain.NewInterval(0, 1000)},
	)
}

func sample(t *testing.T) *T {
	t.Helper()
	tb := New(schema())
	tb.MustAppend(
		domain.Row{0, 10},
		domain.Row{1, 20},
		domain.Row{2, 30},
		domain.Row{3, 40},
	)
	return tb
}

func TestAppendValidation(t *testing.T) {
	tb := New(schema())
	if err := tb.Append(domain.Row{1}); err == nil {
		t.Error("short row accepted")
	}
	if err := tb.Append(domain.Row{1, 2}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestAggregates(t *testing.T) {
	tb := sample(t)
	if c := tb.Count(nil); c != 4 {
		t.Errorf("Count = %v", c)
	}
	if s := tb.Sum("v", nil); s != 100 {
		t.Errorf("Sum = %v", s)
	}
	if a, ok := tb.Avg("v", nil); !ok || a != 25 {
		t.Errorf("Avg = %v %v", a, ok)
	}
	if m, ok := tb.Min("v", nil); !ok || m != 10 {
		t.Errorf("Min = %v", m)
	}
	if m, ok := tb.Max("v", nil); !ok || m != 40 {
		t.Errorf("Max = %v", m)
	}
	p := predicate.NewBuilder(schemaOf(tb)).Ge("v", 25).Build()
	if c := tb.Count(p); c != 2 {
		t.Errorf("filtered Count = %v", c)
	}
	if s := tb.Sum("v", p); s != 70 {
		t.Errorf("filtered Sum = %v", s)
	}
	empty := predicate.NewBuilder(schemaOf(tb)).Ge("v", 999).Build()
	if _, ok := tb.Avg("v", empty); ok {
		t.Error("Avg over empty selection should report !ok")
	}
	if _, ok := tb.Min("v", empty); ok {
		t.Error("Min over empty selection should report !ok")
	}
	if _, ok := tb.Max("v", empty); ok {
		t.Error("Max over empty selection should report !ok")
	}
}

func schemaOf(tb *T) *domain.Schema { return tb.Schema() }

func TestFilterAndColumn(t *testing.T) {
	tb := sample(t)
	p := predicate.NewBuilder(tb.Schema()).Le("v", 20).Build()
	f := tb.Filter(p)
	if f.Len() != 2 {
		t.Errorf("Filter len = %d", f.Len())
	}
	if f2 := tb.Filter(nil); f2.Len() != 4 {
		t.Error("nil filter should keep all")
	}
	col := tb.Column("v")
	if len(col) != 4 || col[2] != 30 {
		t.Errorf("Column = %v", col)
	}
}

func TestHull(t *testing.T) {
	tb := sample(t)
	h := tb.Hull(nil)
	if h[0].Lo != 0 || h[0].Hi != 3 || h[1].Lo != 10 || h[1].Hi != 40 {
		t.Errorf("Hull = %v", h)
	}
	empty := tb.Hull(predicate.NewBuilder(tb.Schema()).Ge("v", 999).Build())
	if !empty.Empty() {
		t.Errorf("hull of nothing should be empty, got %v", empty)
	}
}

func TestSplitByMask(t *testing.T) {
	tb := sample(t)
	keep, gone := tb.SplitByMask([]bool{false, true, false, true})
	if keep.Len() != 2 || gone.Len() != 2 {
		t.Fatalf("split = %d/%d", keep.Len(), gone.Len())
	}
	if gone.Row(0)[1] != 20 || gone.Row(1)[1] != 40 {
		t.Errorf("wrong rows removed")
	}
	defer func() {
		if recover() == nil {
			t.Error("mask length mismatch should panic")
		}
	}()
	tb.SplitByMask([]bool{true})
}

func TestRemoveTopFraction(t *testing.T) {
	tb := sample(t)
	present, missing := tb.RemoveTopFraction("v", 0.5)
	if present.Len() != 2 || missing.Len() != 2 {
		t.Fatalf("split = %d/%d", present.Len(), missing.Len())
	}
	// The two largest v values must be missing.
	if m, _ := missing.Min("v", nil); m != 30 {
		t.Errorf("missing min = %v, want 30", m)
	}
	if m, _ := present.Max("v", nil); m != 20 {
		t.Errorf("present max = %v, want 20", m)
	}
	// Degenerate fractions.
	p0, m0 := tb.RemoveTopFraction("v", 0)
	if p0.Len() != 4 || m0.Len() != 0 {
		t.Error("frac=0 should remove nothing")
	}
	p1, m1 := tb.RemoveTopFraction("v", 1)
	if p1.Len() != 0 || m1.Len() != 4 {
		t.Error("frac=1 should remove everything")
	}
}

func TestQuantiles(t *testing.T) {
	tb := New(schema())
	for i := 0; i < 100; i++ {
		tb.MustAppend(domain.Row{float64(i), float64(i * 10)})
	}
	qs := tb.Quantiles("v", 4)
	if len(qs) != 5 {
		t.Fatalf("len = %d", len(qs))
	}
	// Boundaries extended to the domain.
	if qs[0] != 0 || qs[4] != 1000 {
		t.Errorf("boundaries = %v, %v", qs[0], qs[4])
	}
	// Interior boundaries roughly at quartiles of the data.
	if math.Abs(qs[2]-495) > 20 {
		t.Errorf("median boundary = %v", qs[2])
	}
	// Monotone.
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Errorf("non-monotone quantiles %v", qs)
		}
	}
	// Empty table still tiles the domain.
	qe := New(schema()).Quantiles("v", 2)
	if qe[0] != 0 || qe[2] != 1000 || qe[1] <= 0 || qe[1] >= 1000 {
		t.Errorf("empty-table quantiles = %v", qe)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := sample(t)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(tb.Schema(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tb.Len() {
		t.Fatalf("round trip len = %d", got.Len())
	}
	for i := 0; i < tb.Len(); i++ {
		for j := range tb.Row(i) {
			if got.Row(i)[j] != tb.Row(i)[j] {
				t.Errorf("row %d differs: %v vs %v", i, got.Row(i), tb.Row(i))
			}
		}
	}
}

func TestReadCSVColumnReorderAndErrors(t *testing.T) {
	s := schema()
	// Reordered columns are fine.
	tb, err := ReadCSV(s, strings.NewReader("v,id\n10,0\n20,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Row(0)[0] != 0 || tb.Row(0)[1] != 10 {
		t.Errorf("reorder failed: %v", tb.Row(0))
	}
	// Missing column.
	if _, err := ReadCSV(s, strings.NewReader("id\n1\n")); err == nil {
		t.Error("missing column accepted")
	}
	// Bad number.
	if _, err := ReadCSV(s, strings.NewReader("id,v\n1,abc\n")); err == nil {
		t.Error("non-numeric accepted")
	}
	// Empty input.
	if _, err := ReadCSV(s, strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}
