// Package table provides the in-memory relational substrate the evaluation
// runs on: a typed row store with predicate filtering, exact aggregate
// execution (the experiments' ground truth), partitioning into
// present/missing halves, and CSV import/export.
package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// T is an in-memory relation over a schema. Rows are stored row-major.
type T struct {
	schema *domain.Schema
	rows   []domain.Row
}

// New creates an empty table.
func New(schema *domain.Schema) *T { return &T{schema: schema} }

// FromRows wraps rows (not copied) in a table.
func FromRows(schema *domain.Schema, rows []domain.Row) *T {
	return &T{schema: schema, rows: rows}
}

// Schema returns the table's schema.
func (t *T) Schema() *domain.Schema { return t.schema }

// Len returns the number of rows.
func (t *T) Len() int { return len(t.rows) }

// Row returns the i-th row (shared storage).
func (t *T) Row(i int) domain.Row { return t.rows[i] }

// Rows returns the underlying row slice (shared; treat as read-only).
func (t *T) Rows() []domain.Row { return t.rows }

// Append adds rows, validating their arity.
func (t *T) Append(rows ...domain.Row) error {
	for _, r := range rows {
		if len(r) != t.schema.Len() {
			return fmt.Errorf("table: row has %d values, schema has %d", len(r), t.schema.Len())
		}
		t.rows = append(t.rows, r)
	}
	return nil
}

// MustAppend is Append that panics on error.
func (t *T) MustAppend(rows ...domain.Row) {
	if err := t.Append(rows...); err != nil {
		panic(err)
	}
}

// Column returns a copy of the named attribute's values.
func (t *T) Column(attr string) []float64 {
	i := t.schema.MustIndex(attr)
	out := make([]float64, len(t.rows))
	for j, r := range t.rows {
		out[j] = r[i]
	}
	return out
}

// Filter returns a new table with the rows satisfying p (rows shared).
func (t *T) Filter(p *predicate.P) *T {
	if p == nil {
		return FromRows(t.schema, t.rows)
	}
	var out []domain.Row
	for _, r := range t.rows {
		if p.Eval(r) {
			out = append(out, r)
		}
	}
	return FromRows(t.schema, out)
}

// Count returns the number of rows satisfying p (nil = all).
func (t *T) Count(p *predicate.P) float64 {
	if p == nil {
		return float64(len(t.rows))
	}
	n := 0
	for _, r := range t.rows {
		if p.Eval(r) {
			n++
		}
	}
	return float64(n)
}

// Sum returns SUM(attr) over rows satisfying p.
func (t *T) Sum(attr string, p *predicate.P) float64 {
	i := t.schema.MustIndex(attr)
	s := 0.0
	for _, r := range t.rows {
		if p == nil || p.Eval(r) {
			s += r[i]
		}
	}
	return s
}

// Avg returns AVG(attr) over rows satisfying p and whether any row matched.
func (t *T) Avg(attr string, p *predicate.P) (float64, bool) {
	i := t.schema.MustIndex(attr)
	s, n := 0.0, 0
	for _, r := range t.rows {
		if p == nil || p.Eval(r) {
			s += r[i]
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return s / float64(n), true
}

// Min returns MIN(attr) over rows satisfying p and whether any row matched.
func (t *T) Min(attr string, p *predicate.P) (float64, bool) {
	i := t.schema.MustIndex(attr)
	m, ok := math.Inf(1), false
	for _, r := range t.rows {
		if p == nil || p.Eval(r) {
			if r[i] < m {
				m = r[i]
			}
			ok = true
		}
	}
	return m, ok
}

// Max returns MAX(attr) over rows satisfying p and whether any row matched.
func (t *T) Max(attr string, p *predicate.P) (float64, bool) {
	i := t.schema.MustIndex(attr)
	m, ok := math.Inf(-1), false
	for _, r := range t.rows {
		if p == nil || p.Eval(r) {
			if r[i] > m {
				m = r[i]
			}
			ok = true
		}
	}
	return m, ok
}

// Hull returns the bounding box of the rows satisfying p (empty box when no
// row matches).
func (t *T) Hull(p *predicate.P) domain.Box {
	box := make(domain.Box, t.schema.Len())
	for d := range box {
		box[d] = domain.Interval{Lo: math.Inf(1), Hi: math.Inf(-1)}
	}
	for _, r := range t.rows {
		if p != nil && !p.Eval(r) {
			continue
		}
		for d, v := range r {
			if v < box[d].Lo {
				box[d].Lo = v
			}
			if v > box[d].Hi {
				box[d].Hi = v
			}
		}
	}
	return box
}

// SplitByMask partitions the table into (kept, removed) by a boolean mask.
func (t *T) SplitByMask(removed []bool) (*T, *T) {
	if len(removed) != len(t.rows) {
		panic("table: mask length mismatch")
	}
	var keep, gone []domain.Row
	for i, r := range t.rows {
		if removed[i] {
			gone = append(gone, r)
		} else {
			keep = append(keep, r)
		}
	}
	return FromRows(t.schema, keep), FromRows(t.schema, gone)
}

// RemoveTopFraction removes the frac of rows with the largest values of
// attr — the paper's correlated missing-data mechanism ("removing those
// rows [with] maximum values of the light attribute", Section 6.2). Ties
// are broken by row order for determinism. It returns (present, missing).
func (t *T) RemoveTopFraction(attr string, frac float64) (*T, *T) {
	n := len(t.rows)
	k := int(math.Round(frac * float64(n)))
	if k <= 0 {
		return FromRows(t.schema, t.rows), New(t.schema)
	}
	if k >= n {
		return New(t.schema), FromRows(t.schema, t.rows)
	}
	i := t.schema.MustIndex(attr)
	idx := make([]int, n)
	for j := range idx {
		idx[j] = j
	}
	sort.SliceStable(idx, func(a, b int) bool { return t.rows[idx[a]][i] > t.rows[idx[b]][i] })
	removed := make([]bool, n)
	for _, j := range idx[:k] {
		removed[j] = true
	}
	return t.SplitByMask(removed)
}

// Quantiles returns nq+1 boundary values splitting attr's distribution into
// nq equal-cardinality pieces; boundaries are extended to the attribute's
// domain at both ends so the pieces tile the domain.
func (t *T) Quantiles(attr string, nq int) []float64 {
	i := t.schema.MustIndex(attr)
	vals := make([]float64, len(t.rows))
	for j, r := range t.rows {
		vals[j] = r[i]
	}
	sort.Float64s(vals)
	dom := t.schema.Attr(i).Domain
	out := make([]float64, nq+1)
	out[0] = dom.Lo
	out[nq] = dom.Hi
	for k := 1; k < nq; k++ {
		if len(vals) == 0 {
			out[k] = dom.Lo + (dom.Hi-dom.Lo)*float64(k)/float64(nq)
			continue
		}
		pos := float64(k) / float64(nq) * float64(len(vals)-1)
		out[k] = vals[int(pos)]
	}
	return out
}

// WriteCSV writes the table with a header row.
func (t *T) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return err
	}
	rec := make([]string, t.schema.Len())
	for _, r := range t.rows {
		for i, v := range r {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads rows matching the schema from CSV with a header row whose
// column names must match the schema (in any order).
func ReadCSV(schema *domain.Schema, r io.Reader) (*T, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading header: %w", err)
	}
	colOf := make([]int, schema.Len()) // schema index -> csv column
	for i := range colOf {
		colOf[i] = -1
	}
	for c, name := range header {
		if i, ok := schema.Index(name); ok {
			colOf[i] = c
		}
	}
	for i, c := range colOf {
		if c < 0 {
			return nil, fmt.Errorf("table: CSV missing column %q", schema.Attr(i).Name)
		}
	}
	t := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: line %d: %w", line, err)
		}
		row := make(domain.Row, schema.Len())
		for i, c := range colOf {
			v, err := strconv.ParseFloat(rec[c], 64)
			if err != nil {
				return nil, fmt.Errorf("table: line %d column %q: %w", line, schema.Attr(i).Name, err)
			}
			row[i] = v
		}
		t.rows = append(t.rows, row)
	}
	return t, nil
}
