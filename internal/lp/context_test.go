package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem builds a bounded random LP with mixed dense/sparse rows.
func randomProblem(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(5)
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.Float64()*20 - 10
	}
	var p *Problem
	if rng.Intn(2) == 0 {
		p = NewMaximize(c)
	} else {
		p = NewMinimize(c)
	}
	m := 1 + rng.Intn(6)
	for i := 0; i < m; i++ {
		sense := Sense(rng.Intn(3)) // LE, GE or EQ
		rhs := rng.Float64()*20 - 4 // negative rhs exercises normalization
		if rng.Intn(2) == 0 {
			a := make([]float64, n)
			for j := range a {
				a[j] = rng.Float64()*4 - 1
			}
			_ = p.AddDense(a, sense, rhs)
		} else {
			nnz := 1 + rng.Intn(n)
			idx := make([]int, nnz)
			val := make([]float64, nnz)
			for k := 0; k < nnz; k++ {
				idx[k] = rng.Intn(n) // duplicates allowed: they must accumulate
				val[k] = rng.Float64()*4 - 1
			}
			_ = p.AddSparse(idx, val, sense, rhs)
		}
	}
	for j := 0; j < n; j++ {
		_ = p.AddUpperBound(j, 50)
	}
	return p
}

func sameSolution(a, b Solution) bool {
	if a.Status != b.Status || a.Objective != b.Objective || a.Iterations != b.Iterations {
		return false
	}
	if len(a.X) != len(b.X) {
		return false
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			return false
		}
	}
	return true
}

// TestContextSolveBitIdentical verifies a reused Context produces results
// bit-identical to fresh Solve calls — the property the decomposition cache
// and the engine's bit-identity guarantees are built on.
func TestContextSolveBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var cx Context
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng)
		cold := Solve(p)
		warmStorage := cx.Solve(p)
		if !sameSolution(cold, warmStorage) {
			t.Fatalf("trial %d: context solve diverged:\n cold %+v\n ctx  %+v", trial, cold, warmStorage)
		}
	}
}

// TestPushPopRow verifies PushRow/PopRow leave the problem exactly as it was.
func TestPushPopRow(t *testing.T) {
	p := NewMaximize([]float64{3, 2})
	mustAdd(t, p.AddDense([]float64{1, 1}, LE, 4))
	mustAdd(t, p.AddDense([]float64{1, 3}, LE, 6))
	base := Solve(p)

	idx, val := []int{0}, []float64{1}
	mustAdd(t, p.PushRow(idx, val, LE, 1))
	restricted := Solve(p)
	if restricted.Objective >= base.Objective {
		t.Fatalf("pushed bound not honored: %v >= %v", restricted.Objective, base.Objective)
	}
	p.PopRow()
	if p.NumConstraints() != 2 {
		t.Fatalf("PopRow left %d rows, want 2", p.NumConstraints())
	}
	if again := Solve(p); !sameSolution(base, again) {
		t.Fatalf("solve after PopRow diverged: %+v vs %+v", base, again)
	}
	if err := p.PushRow([]int{7}, []float64{1}, LE, 1); err == nil {
		t.Error("PushRow accepted an out-of-range index")
	}
	p.PopRow()
	p.PopRow()
	p.PopRow() // popping past empty must not panic
}

// TestSolveFromMatchesCold checks the dual-simplex warm start against cold
// solves on branch-and-bound-shaped extensions: solve a base LP, push a
// bound row cutting off the optimum, and re-optimize from the parent basis.
func TestSolveFromMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var cx Context
	warmStarted := 0
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng)
		root := cx.Solve(p)
		if root.Status != Optimal {
			continue
		}
		basis := cx.Basis()
		if basis == nil {
			continue
		}
		// Branch like the MILP does: floor/ceil bound on a fractional-ish var.
		v := rng.Intn(p.N())
		var sense Sense
		var rhs float64
		if rng.Intn(2) == 0 {
			sense, rhs = LE, math.Floor(root.X[v])
		} else {
			sense, rhs = GE, math.Ceil(root.X[v])+1
		}
		idx, val := []int{v}, []float64{1}
		mustAdd(t, p.PushRow(idx, val, sense, rhs))
		cold := Solve(p)
		warm := cx.SolveFrom(p, basis)
		p.PopRow()
		warmStarted++
		if cold.Status != warm.Status {
			t.Fatalf("trial %d: status %v != cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status != Optimal {
			continue
		}
		if math.Abs(cold.Objective-warm.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: warm objective %v != cold %v", trial, warm.Objective, cold.Objective)
		}
	}
	if warmStarted < 100 {
		t.Fatalf("only %d warm starts exercised; generator too restrictive", warmStarted)
	}
}

// TestSolveFromFallbacks covers the paths that must quietly degrade to a
// cold solve rather than mis-solve.
func TestSolveFromFallbacks(t *testing.T) {
	var cx Context
	p := NewMaximize([]float64{1, 1})
	mustAdd(t, p.AddDense([]float64{1, 1}, LE, 4))
	cold := Solve(p)

	// Nil/empty/oversized or corrupt bases.
	for _, basis := range [][]int{nil, {}, {0, 1, 2}, {-5}, {99}} {
		got := cx.SolveFrom(p, basis)
		if got.Status != cold.Status || math.Abs(got.Objective-cold.Objective) > 1e-9 {
			t.Fatalf("basis %v: got %+v, want like %+v", basis, got, cold)
		}
	}
	// Duplicate basis entries.
	q := NewMaximize([]float64{1, 1})
	mustAdd(t, q.AddDense([]float64{1, 0}, LE, 2))
	mustAdd(t, q.AddDense([]float64{0, 1}, LE, 3))
	got := cx.SolveFrom(q, []int{0, 0})
	if got.Status != Optimal || math.Abs(got.Objective-5) > 1e-9 {
		t.Fatalf("duplicate basis: got %+v, want optimal 5", got)
	}
	// Infeasible extension must be detected by the dual simplex.
	r := NewMaximize([]float64{1})
	mustAdd(t, r.AddDense([]float64{1}, LE, 10))
	root := cx.Solve(r)
	if root.Status != Optimal {
		t.Fatal("root not optimal")
	}
	basis := cx.Basis()
	mustAdd(t, r.PushRow([]int{0}, []float64{1}, GE, 20))
	if inf := cx.SolveFrom(r, basis); inf.Status != Infeasible {
		t.Fatalf("infeasible extension: got %v, want infeasible", inf.Status)
	}
}

// TestContextSteadyStateAllocs confirms the pooled tableau makes repeat
// solves allocate only the solution vector.
func TestContextSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng)
	var cx Context
	cx.Solve(p)
	allocs := testing.AllocsPerRun(100, func() {
		cx.Solve(p)
	})
	if allocs > 2 {
		t.Errorf("context solve allocates %.1f objects per call, want <= 2 (X + header)", allocs)
	}
}
