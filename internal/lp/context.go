package lp

import "math"

const (
	eps = 1e-9
	// blandAfter switches pivoting from Dantzig's rule to Bland's rule after
	// this many pivots, guaranteeing termination on degenerate problems.
	blandAfter = 2000
)

// Context is a reusable solve workspace: the dense tableau, objective row,
// basis and scratch buffers are kept across calls, so steady-state solves
// allocate only the Solution.X vector. A Context is not safe for concurrent
// use; pool one per worker. Context.Solve performs exactly the arithmetic
// lp.Solve performs, so results are bit-identical whether or not a context
// is reused.
type Context struct {
	t         tableau
	rowBuf    []float64 // flat backing for the tableau rows
	objBuf    []float64 // objective scratch (phase-1 / phase-2 rows)
	cBuf      []float64 // sign-adjusted structural costs
	flipBuf   []bool    // per-row rhs-negation flags
	senseBuf  []Sense   // per-row normalized senses
	basisOut  []int     // last optimal basis (warm-start handoff)
	haveBasis bool
	seen      []uint32 // column-membership stamps for basis validation
	seenGen   uint32
}

// Basis returns the optimal basis of the context's most recent successful
// Solve/SolveFrom, or nil when the last solve did not end at an optimal
// basic solution free of artificial variables. The returned slice is copied;
// it can seed SolveFrom on a problem extending the solved one.
func (cx *Context) Basis() []int {
	if !cx.haveBasis {
		return nil
	}
	return append([]int(nil), cx.basisOut...)
}

// prepare normalizes rows (non-negative rhs) and sizes the tableau for the
// given number of auxiliary columns. It returns the total column count and
// the first artificial column index.
func (cx *Context) prepare(p *Problem, withArtificials bool) (total, artStart int, needPhase1 bool, ok bool) {
	m := len(p.cons)
	cx.flipBuf = resizeBools(cx.flipBuf, m)
	cx.senseBuf = resizeSenses(cx.senseBuf, m)
	nSlack, nArt := 0, 0
	for i := range p.cons {
		con := &p.cons[i]
		sense := con.sense
		flip := con.rhs < 0
		if flip {
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		cx.flipBuf[i] = flip
		cx.senseBuf[i] = sense
		switch sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	if !withArtificials {
		nArt = 0
	}
	total = p.n + nSlack
	artStart = total
	total += nArt

	// Lay out the tableau over the flat arena.
	need := m * (total + 1)
	if cap(cx.rowBuf) < need {
		cx.rowBuf = make([]float64, need)
	}
	cx.rowBuf = cx.rowBuf[:need]
	clear(cx.rowBuf)
	if cap(cx.t.rows) < m {
		cx.t.rows = make([][]float64, m)
	}
	cx.t.rows = cx.t.rows[:m]
	for i := 0; i < m; i++ {
		cx.t.rows[i] = cx.rowBuf[i*(total+1) : (i+1)*(total+1)]
	}
	cx.t.m, cx.t.n = m, total
	cx.t.basis = resizeInts(cx.t.basis, m)

	// Fill coefficients, slacks and artificials.
	slackCol, artCol := p.n, artStart
	for i := range p.cons {
		con := &p.cons[i]
		row := cx.t.rows[i]
		if con.dense != nil {
			copy(row[:p.n], con.dense)
		} else {
			for k, j := range con.idx {
				row[j] += con.val[k]
			}
		}
		rhs := con.rhs
		if cx.flipBuf[i] {
			for j := 0; j < p.n; j++ {
				row[j] = -row[j]
			}
			rhs = -rhs
		}
		row[total] = rhs
		switch cx.senseBuf[i] {
		case LE:
			row[slackCol] = 1
			cx.t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			if withArtificials {
				row[artCol] = 1
				cx.t.basis[i] = artCol
				artCol++
			} else {
				// Warm-start mode: the row's own (surplus) slack stands in as
				// the basic variable until the caller's basis is installed.
				cx.t.basis[i] = slackCol
			}
			slackCol++
			needPhase1 = true
		case EQ:
			if withArtificials {
				row[artCol] = 1
				cx.t.basis[i] = artCol
				artCol++
			} else {
				// No auxiliary column to make basic: the caller must supply a
				// basis entry for this row.
				cx.t.basis[i] = -1
			}
			needPhase1 = true
		}
	}
	return total, artStart, needPhase1, true
}

// Solve runs two-phase primal simplex and returns the solution. The
// algorithm, pivot rules and arithmetic are identical to the original
// allocating implementation; only the storage is pooled.
func (cx *Context) Solve(p *Problem) Solution {
	cx.haveBasis = false
	m := len(p.cons)
	if p.n == 0 {
		return Solution{Status: Optimal, Objective: 0, X: nil}
	}
	// Internally always maximize; flip sign for minimization problems.
	cx.cBuf = resizeFloats(cx.cBuf, p.n)
	sign := 1.0
	if !p.maximize {
		sign = -1.0
	}
	for i, v := range p.c {
		cx.cBuf[i] = sign * v
	}

	total, artStart, needPhase1, _ := cx.prepare(p, true)
	t := &cx.t

	iters := 0
	if needPhase1 {
		// Phase 1: maximize -Σ artificials.
		cx.objBuf = resizeFloats(cx.objBuf, total+1)
		clear(cx.objBuf)
		for j := artStart; j < total; j++ {
			cx.objBuf[j] = -1
		}
		t.setObjective(cx.objBuf)
		st, it := t.optimize(artStart)
		iters += it
		if st == Unbounded {
			// Phase 1 objective is bounded above by 0; unbounded means a bug.
			return Solution{Status: Infeasible, Iterations: iters}
		}
		if st == IterLimit {
			return Solution{Status: IterLimit, Iterations: iters}
		}
		if -t.objValue() > eps {
			return Solution{Status: Infeasible, Objective: 0, Iterations: iters}
		}
		// Drive remaining artificial variables out of the basis.
		for i := 0; i < t.m; i++ {
			if t.basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(t.rows[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it out; keep the artificial basic at 0.
				for j := 0; j < artStart; j++ {
					t.rows[i][j] = 0
				}
				t.rows[i][total] = 0
			}
		}
	}

	// Phase 2: real objective; artificial columns are frozen out.
	cx.objBuf = resizeFloats(cx.objBuf, total+1)
	clear(cx.objBuf)
	copy(cx.objBuf, cx.cBuf)
	t.setObjective(cx.objBuf)
	st, it := t.optimize(artStart)
	iters += it
	switch st {
	case Unbounded:
		return Solution{Status: Unbounded, Iterations: iters}
	case IterLimit:
		return Solution{Status: IterLimit, Iterations: iters}
	}
	return cx.extract(p, m, artStart, iters)
}

// extract reads the optimal solution out of the tableau and records the
// basis for warm-start handoff.
func (cx *Context) extract(p *Problem, m, artStart, iters int) Solution {
	t := &cx.t
	x := make([]float64, p.n)
	for i, b := range t.basis {
		if b < p.n {
			x[b] = t.rows[i][t.n]
		}
	}
	objVal := 0.0
	for i := range x {
		objVal += p.c[i] * x[i]
	}
	cx.haveBasis = true
	cx.basisOut = append(cx.basisOut[:0], t.basis...)
	for _, b := range t.basis {
		if b >= artStart {
			// A leftover artificial (redundant row) cannot seed a warm start.
			cx.haveBasis = false
			break
		}
	}
	return Solution{Status: Optimal, Objective: objVal, X: x, Iterations: iters}
}

// SolveFrom re-optimizes the problem starting from a basis of a previously
// solved problem that this one extends by appended rows (dual-simplex warm
// start). The basis must cover the first len(basis) rows; appended rows must
// be inequalities (their slacks complete the basis). Any structural
// mismatch, singular basis, or iteration stall falls back to a cold Solve —
// the result is always a correctly solved LP, but the pivot path (and hence
// last-ulp rounding) may differ from a cold solve's.
func (cx *Context) SolveFrom(p *Problem, basis []int) Solution {
	m := len(p.cons)
	if p.n == 0 || m == 0 || len(basis) == 0 || len(basis) > m {
		return cx.Solve(p)
	}
	cx.haveBasis = false
	cx.cBuf = resizeFloats(cx.cBuf, p.n)
	sign := 1.0
	if !p.maximize {
		sign = -1.0
	}
	for i, v := range p.c {
		cx.cBuf[i] = sign * v
	}

	total, _, _, _ := cx.prepare(p, false)
	t := &cx.t

	// Install the warm basis: inherited entries for the covered rows, own
	// slacks for the appended rows.
	for i := 0; i < m; i++ {
		if i < len(basis) {
			if basis[i] < 0 || basis[i] >= total {
				return cx.Solve(p)
			}
			t.basis[i] = basis[i]
		} else if t.basis[i] < 0 {
			// Appended EQ row without a slack: cannot warm start.
			return cx.Solve(p)
		}
	}
	// Basis entries must be distinct (generation-stamped membership check:
	// O(m), no clearing between solves).
	if cap(cx.seen) < total {
		cx.seen = make([]uint32, total)
		cx.seenGen = 0
	}
	cx.seen = cx.seen[:total]
	if cx.seenGen == math.MaxUint32 {
		clear(cx.seen)
		cx.seenGen = 0
	}
	cx.seenGen++
	for i := 0; i < m; i++ {
		if cx.seen[t.basis[i]] == cx.seenGen {
			return cx.Solve(p)
		}
		cx.seen[t.basis[i]] = cx.seenGen
	}

	// Canonicalize: Gauss-Jordan on each (row, basis column). The objective
	// row is installed afterwards, so pivots here only touch constraints.
	cx.objBuf = resizeFloats(cx.objBuf, total+1)
	clear(cx.objBuf)
	t.obj = cx.objBuf
	for i := 0; i < m; i++ {
		pv := t.rows[i][t.basis[i]]
		if math.Abs(pv) < 1e-7 {
			return cx.Solve(p) // numerically singular warm basis
		}
		t.pivot(i, t.basis[i])
	}

	// Price out the real objective against the warm basis.
	clear(cx.objBuf)
	copy(cx.objBuf, cx.cBuf)
	t.setObjective(cx.objBuf)

	// The parent basis was optimal for the parent problem and appended slacks
	// have zero cost, so reduced costs should already be non-positive (dual
	// feasible). Numerical drift can break that; re-optimize primally if the
	// point is primal feasible, otherwise restart cold.
	dualFeasible := true
	for j := 0; j < total; j++ {
		if t.obj[j] > eps {
			dualFeasible = false
			break
		}
	}
	primalFeasible := true
	for i := 0; i < m; i++ {
		if t.rows[i][total] < -eps {
			primalFeasible = false
			break
		}
	}
	iters := 0
	if !dualFeasible {
		if !primalFeasible {
			return cx.Solve(p)
		}
		st, it := t.optimize(total)
		iters += it
		switch st {
		case Unbounded:
			return Solution{Status: Unbounded, Iterations: iters}
		case IterLimit:
			return cx.Solve(p)
		}
		return cx.extract(p, m, total, iters)
	}

	// Dual simplex: repair primal feasibility while keeping dual feasibility.
	maxIters := 10000 + 50*(t.m+t.n)
	for iter := 0; iter < maxIters; iter++ {
		bland := iter >= blandAfter
		// Leaving row: most negative rhs (Bland: smallest row index). The
		// entering rule below always runs the dual ratio test — skipping it
		// would break dual feasibility and could certify a suboptimal basis.
		pr := -1
		worst := -eps
		for i := 0; i < t.m; i++ {
			rhs := t.rows[i][total]
			if rhs < worst {
				worst = rhs
				pr = i
				if bland {
					break
				}
			}
		}
		if pr < 0 {
			// Primal feasible. Dual feasibility is maintained by the ratio
			// test up to eps, but guard against numerical drift before
			// certifying optimality; the basis is primal feasible here, so a
			// primal clean-up pass is always sound.
			for j := 0; j < total; j++ {
				if t.obj[j] > eps {
					st, it := t.optimize(total)
					iters += iter + it
					switch st {
					case Unbounded:
						return Solution{Status: Unbounded, Iterations: iters}
					case IterLimit:
						return cx.Solve(p)
					}
					return cx.extract(p, m, total, iters)
				}
			}
			return cx.extract(p, m, total, iters+iter)
		}
		// Entering column: the dual ratio test — minimize |reduced cost /
		// coefficient| over negative coefficients in the leaving row. Strict
		// < keeps the smallest index on ties (Bland's rule for the entering
		// side), so the pivot sequence is deterministic and anti-cycling.
		pc := -1
		bestRatio := math.Inf(1)
		row := t.rows[pr]
		for j := 0; j < total; j++ {
			a := row[j]
			if a >= -eps {
				continue
			}
			ratio := t.obj[j] / a // obj[j] <= eps, a < 0 → ratio >= ~0
			if pc < 0 || ratio < bestRatio {
				bestRatio = ratio
				pc = j
			}
		}
		if pc < 0 {
			// No entering column: the row proves primal infeasibility.
			return Solution{Status: Infeasible, Iterations: iters + iter}
		}
		t.pivot(pr, pc)
	}
	return cx.Solve(p) // stalled; cold restart is always sound
}

// tableau is a dense simplex tableau with an explicit reduced-cost row.
type tableau struct {
	m, n  int
	rows  [][]float64 // m rows of n+1 entries (rhs last)
	obj   []float64   // n+1: reduced costs, obj[n] = -objectiveValue
	basis []int
}

func (t *tableau) objValue() float64 { return -t.obj[t.n] }

// setObjective installs a fresh objective c (length n+1, rhs entry ignored)
// and prices it out against the current basis. c is captured as the
// tableau's objective row storage.
func (t *tableau) setObjective(c []float64) {
	t.obj = c
	t.obj[t.n] = 0
	for i, b := range t.basis {
		cb := c[b]
		if cb == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j <= t.n; j++ {
			t.obj[j] -= cb * row[j]
		}
	}
}

// pivot performs a Gauss-Jordan pivot at (pr, pc).
func (t *tableau) pivot(pr, pc int) {
	prow := t.rows[pr]
	pv := prow[pc]
	inv := 1 / pv
	for j := 0; j <= t.n; j++ {
		prow[j] *= inv
	}
	prow[pc] = 1 // kill residual rounding
	for i := 0; i < t.m; i++ {
		if i == pr {
			continue
		}
		row := t.rows[i]
		f := row[pc]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.n; j++ {
			row[j] -= f * prow[j]
		}
		row[pc] = 0
	}
	f := t.obj[pc]
	if f != 0 {
		for j := 0; j <= t.n; j++ {
			t.obj[j] -= f * prow[j]
		}
		t.obj[pc] = 0
	}
	t.basis[pr] = pc
}

// optimize runs primal simplex until optimal/unbounded/limit. Columns with
// index >= colLimit are not allowed to enter the basis (used to freeze
// artificials in phase 2).
func (t *tableau) optimize(colLimit int) (Status, int) {
	maxIters := 10000 + 50*(t.m+t.n)
	for iter := 0; iter < maxIters; iter++ {
		bland := iter >= blandAfter
		// Entering column: positive reduced cost (we maximize, obj row holds
		// c - z).
		pc := -1
		best := eps
		for j := 0; j < colLimit; j++ {
			if t.obj[j] > eps {
				if bland {
					pc = j
					break
				}
				if t.obj[j] > best {
					best = t.obj[j]
					pc = j
				}
			}
		}
		if pc < 0 {
			return Optimal, iter
		}
		// Ratio test.
		pr := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][pc]
			if a <= eps {
				continue
			}
			ratio := t.rows[i][t.n] / a
			if ratio < bestRatio-eps ||
				(ratio < bestRatio+eps && pr >= 0 && t.basis[i] < t.basis[pr]) {
				bestRatio = ratio
				pr = i
			}
		}
		if pr < 0 {
			return Unbounded, iter
		}
		t.pivot(pr, pc)
	}
	return IterLimit, maxIters
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func resizeSenses(s []Sense, n int) []Sense {
	if cap(s) < n {
		return make([]Sense, n)
	}
	return s[:n]
}
